//! Cross-crate integration tests: the coupled model exercising mesh, dycore,
//! physics, ML suite, and diagnostics together.

use grist_core::{
    add_tropical_cyclone, precision_gate, spatial_correlation, GristModel, RunConfig,
    TropicalCyclone,
};
use grist_dycore::PrecisionMode;

#[test]
fn coupled_model_conserves_dry_mass_over_a_day() {
    let mut m = GristModel::<f64>::new(RunConfig::for_level(2, 10));
    let m0 = m.solver.total_dry_mass(&m.state);
    m.advance(86_400.0 / 4.0); // 6 hours with physics cycling
    let m1 = m.solver.total_dry_mass(&m.state);
    assert!(
        ((m1 - m0) / m0).abs() < 1e-11,
        "dry mass drifted by {}",
        (m1 - m0) / m0
    );
}

#[test]
fn conventional_physics_rains_in_the_tropics() {
    let mut m = GristModel::<f64>::new(RunConfig::for_level(3, 12));
    m.advance(8.0 * m.config.dt_phy);
    // Area-weighted tropical vs polar rain.
    let mut trop = 0.0;
    let mut polar = 0.0;
    let (mut wt, mut wp) = (0.0, 0.0);
    for c in 0..m.n_cells() {
        let a = m.solver.mesh.cell_area[c];
        let lat = m.lats[c].to_degrees().abs();
        if lat < 20.0 {
            trop += m.precip_accum[c] * a;
            wt += a;
        } else if lat > 55.0 {
            polar += m.precip_accum[c] * a;
            wp += a;
        }
    }
    assert!(
        trop / wt > 3.0 * (polar / wp + 1e-9),
        "tropical rain {} should dominate polar {}",
        trop / wt,
        polar / wp
    );
}

#[test]
fn full_scheme_matrix_runs_stably() {
    // Table 3: all four (precision × physics) combinations integrate.
    for precision in [PrecisionMode::Double, PrecisionMode::Mixed] {
        for ml in [false, true] {
            let cfg = RunConfig::for_level(2, 8)
                .with_precision(precision)
                .with_ml_physics(ml);
            let label = cfg.scheme_label();
            match precision {
                PrecisionMode::Double => {
                    let mut m = GristModel::<f64>::new(cfg);
                    m.advance(2.0 * m.config.dt_phy);
                    assert!(
                        m.state.u.as_slice().iter().all(|x| x.is_finite()),
                        "{label} (f64) went non-finite"
                    );
                }
                PrecisionMode::Mixed => {
                    let mut m = GristModel::<f32>::new(cfg);
                    m.advance(2.0 * m.config.dt_phy);
                    assert!(
                        m.state.u.as_slice().iter().all(|x| x.is_finite()),
                        "{label} (f32) went non-finite"
                    );
                }
            }
        }
    }
}

#[test]
fn mixed_precision_gate_passes_on_the_cyclone_case() {
    let cfg = RunConfig::for_level(2, 10);
    let gate = precision_gate(&cfg, 4.0 * 3600.0, |m| {
        add_tropical_cyclone(
            m,
            &TropicalCyclone {
                rmax: 0.2,
                ..Default::default()
            },
        )
    });
    assert!(
        gate.passes(),
        "ps err {}, vor err {} exceed the 5% threshold",
        gate.ps_error,
        gate.vor_error
    );
}

#[test]
fn precision_gate_errors_match_the_golden_values() {
    // Golden regression pin for the §3.4.1 gate: the cyclone case at G2L8
    // over 2 h is bitwise deterministic, so the mixed-precision errors are
    // fixed numbers. A drift outside the ±20% band means the f32 numerics
    // changed — re-measure and re-pin consciously, don't widen the band.
    const GOLDEN_PS_ERROR: f64 = 3.0904564119585553e-10;
    const GOLDEN_VOR_ERROR: f64 = 3.3532194322149024e-7;
    let cfg = RunConfig::for_level(2, 8);
    let gate = precision_gate(&cfg, 2.0 * 3600.0, |m| {
        add_tropical_cyclone(
            m,
            &TropicalCyclone {
                rmax: 0.2,
                ..Default::default()
            },
        )
    });
    for (what, got, golden) in [
        ("ps", gate.ps_error, GOLDEN_PS_ERROR),
        ("vor", gate.vor_error, GOLDEN_VOR_ERROR),
    ] {
        assert!(
            (got - golden).abs() <= 0.2 * golden,
            "{what} error drifted from the golden pin: got {got:e}, golden {golden:e}"
        );
    }
    assert_eq!(gate.threshold, 5e-2, "gate threshold changed");
}

#[test]
fn cyclone_rainfall_pattern_is_reproducible_across_precisions() {
    let run = |_mixed: bool| -> (grist_mesh::HexMesh, Vec<f64>) {
        let cfg = RunConfig::for_level(3, 10);
        let mut m = GristModel::<f64>::new(cfg);
        add_tropical_cyclone(
            &mut m,
            &TropicalCyclone {
                rmax: 0.12,
                ..Default::default()
            },
        );
        m.advance(4.0 * m.config.dt_phy);
        (m.solver.mesh.clone(), m.precip_accum.clone())
    };
    let (mesh, rain_a) = run(false);
    let (_, rain_b) = run(false);
    // Determinism within one precision.
    let corr = spatial_correlation(&mesh, &rain_a, &rain_b);
    assert!(corr > 0.9999, "same-config runs must agree: corr = {corr}");
}

#[test]
fn sixty_layer_stretched_configuration_is_stable() {
    // The G11L60 configurations of Fig. 7: 60 layers on a stretched
    // coordinate, coupled physics, short integration.
    use grist_dycore::hevi::{NhConfig, NhSolver};
    use grist_dycore::VerticalCoord;
    use grist_mesh::HexMesh;
    let mut solver = NhSolver::<f64>::new(
        HexMesh::build(2),
        VerticalCoord::stretched(60, 1.4),
        NhConfig::default(),
    );
    let mut state = solver.isothermal_rest_state(285.0, 1.0e5);
    for e in 0..solver.mesh.n_edges() {
        let m = solver.mesh.edge_mid[e];
        let zonal = grist_mesh::Vec3::new(0.0, 0.0, 1.0).cross(m);
        for k in 0..60 {
            state.u.set(
                k,
                e,
                12.0 * m.lat().cos() * zonal.dot(solver.mesh.edge_normal[e]),
            );
        }
    }
    let m0 = solver.total_dry_mass(&state);
    for _ in 0..30 {
        solver.step(&mut state, 120.0);
    }
    assert!(state.u.as_slice().iter().all(|x| x.is_finite()));
    assert!(state.w.as_slice().iter().all(|x| x.is_finite()));
    let m1 = solver.total_dry_mass(&state);
    assert!(((m1 - m0) / m0).abs() < 1e-12);
}

#[test]
fn trained_suite_survives_a_disk_roundtrip_into_a_coupled_run() {
    // Train tiny, save, load, couple — the artifact's "download the weights
    // and run" path.
    use grist_core::datagen::{generate_training_data, train_ml_suite, DataGenConfig};
    use grist_core::MlSuite;
    let data = generate_training_data(&DataGenConfig {
        fine_level: 2,
        coarse_level: 1,
        nlev: 8,
        steps_per_day: 8,
        days_per_period: 1,
        n_periods: 1,
        cell_stride: 1,
    });
    let (suite, _) = train_ml_suite(&data, 8, 5, 3);
    let dir = std::env::temp_dir().join(format!("grist-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("suite.gml");
    suite.save(&path).unwrap();
    let loaded = MlSuite::load(&path).unwrap();
    let mut m = GristModel::<f64>::new(RunConfig::for_level(2, 8));
    m.set_ml_suite(loaded);
    m.advance(2.0 * m.config.dt_phy);
    assert!(m.state.u.as_slice().iter().all(|x| x.is_finite()));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sun_declination_shifts_the_insolation_hemisphere() {
    let mut north = GristModel::<f64>::new(RunConfig::for_level(2, 8));
    north.declination = 0.4; // boreal summer
    north.advance(2.0 * north.config.dt_phy);
    let gsw_by_hemi = |m: &GristModel<f64>| -> (f64, f64) {
        let mut n = 0.0;
        let mut s = 0.0;
        let (mut wn, mut ws) = (0.0, 0.0);
        for c in 0..m.n_cells() {
            let a = m.solver.mesh.cell_area[c];
            if m.lats[c] > 0.3 {
                n += m.last_diag[c].gsw * a;
                wn += a;
            } else if m.lats[c] < -0.3 {
                s += m.last_diag[c].gsw * a;
                ws += a;
            }
        }
        (n / wn, s / ws)
    };
    let (n, s) = gsw_by_hemi(&north);
    assert!(
        n > 1.5 * s,
        "boreal summer should light the north: N {n} vs S {s}"
    );
}
