//! Property-style tests on the core invariants DESIGN.md §5 calls out:
//! discrete operator identities, FCT monotonicity/conservation,
//! partition/halo exactness, cache-model laws, and limiter/physics
//! positivity — each checked over many seeded random inputs.
//!
//! (These used to be `proptest!` properties; the workspace now builds fully
//! offline, so they enumerate a fixed seed set with the local `rand` shim
//! instead of shrinking. Coverage per property matches the old
//! `ProptestConfig::with_cases` counts.)

use grist_dycore::operators::{self as op, ScaledGeometry};
use grist_dycore::tracer::{fct_transport_step, total_tracer, FctWorkspace};
use grist_dycore::Field2;
use grist_mesh::{HaloLayout, HexMesh, Partition};
use rand::{Rng, SeedableRng};
use sunway_sim::{Access, LdCache, Substrate};

fn mesh_and_geom() -> (HexMesh, ScaledGeometry<f64>) {
    let mesh = HexMesh::build(3);
    let geom = ScaledGeometry::new(&mesh, grist_mesh::EARTH_RADIUS_M, grist_mesh::EARTH_OMEGA);
    (mesh, geom)
}

fn sub() -> Substrate {
    Substrate::serial()
}

/// ∮ div F dA = 0 exactly for any edge flux field.
#[test]
fn divergence_theorem_holds_for_random_fluxes() {
    let (mesh, geom) = mesh_and_geom();
    for seed in 0..16u64 {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let flux = Field2::<f64>::from_fn(2, mesh.n_edges(), |_, _| rng.gen_range(-10.0..10.0));
        let mut div = Field2::<f64>::zeros(2, mesh.n_cells());
        op::divergence(&sub(), &mesh, &geom, &flux, &mut div);
        for lev in 0..2 {
            let total: f64 = (0..mesh.n_cells())
                .map(|c| div.at(lev, c) * mesh.cell_area[c])
                .sum();
            assert!(total.abs() < 1e-16, "seed {seed}: ∮div = {total}");
        }
    }
}

/// curl(grad h) = 0 to round-off for any cell scalar.
#[test]
fn curl_of_gradient_vanishes_for_random_scalars() {
    let (mesh, geom) = mesh_and_geom();
    for seed in 0..16u64 {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let h = Field2::<f64>::from_fn(1, mesh.n_cells(), |_, _| rng.gen_range(-100.0..100.0));
        let mut g = Field2::<f64>::zeros(1, mesh.n_edges());
        op::gradient(&sub(), &mesh, &geom, &h, &mut g);
        let mut vor = Field2::<f64>::zeros(1, mesh.n_verts());
        op::vorticity(&sub(), &mesh, &geom, &g, &mut vor);
        let gmax = g.as_slice().iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        let vmax = vor.as_slice().iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        assert!(
            vmax <= gmax * 1e-8 + 1e-20,
            "seed {seed}: curl(grad) = {vmax} vs grad {gmax}"
        );
    }
}

/// Kinetic energy is non-negative and zero only for zero wind.
#[test]
fn kinetic_energy_is_positive_semidefinite() {
    let (mesh, geom) = mesh_and_geom();
    for seed in 0..16u64 {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let u = Field2::<f64>::from_fn(1, mesh.n_edges(), |_, _| rng.gen_range(-50.0..50.0));
        let mut ke = Field2::<f64>::zeros(1, mesh.n_cells());
        op::kinetic_energy(&sub(), &mesh, &geom, &u, &mut ke);
        assert!(ke.as_slice().iter().all(|&k| k >= 0.0), "seed {seed}");
        assert!(ke.as_slice().iter().any(|&k| k > 0.0), "seed {seed}");
    }
}

/// FCT transport: conservation and monotonicity for random wind fields,
/// random initial tracers, CFL-safe steps.
#[test]
fn fct_is_conservative_and_monotone() {
    let (mesh, geom) = mesh_and_geom();
    for seed in 0..16u64 {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let r2 = grist_mesh::EARTH_RADIUS_M * grist_mesh::EARTH_RADIUS_M;
        let mut mass =
            Field2::<f64>::from_fn(1, mesh.n_cells(), |_, c| 1000.0 * mesh.cell_area[c] * r2);
        let flux = Field2::<f64>::from_fn(1, mesh.n_edges(), |_, _| {
            1000.0 * rng.gen_range(-20.0..20.0)
        });
        let mut q = Field2::<f64>::from_fn(1, mesh.n_cells(), |_, _| rng.gen_range(0.0..1.0));
        let (q_min, q_max) = (q.min_value(), q.max_value());
        let t0 = total_tracer(&mass, &q);
        let mut ws = FctWorkspace::new(1, &mesh);
        for _ in 0..5 {
            fct_transport_step(
                &sub(),
                &mesh,
                &geom,
                &mut mass,
                &flux,
                &mut q,
                200.0,
                &mut ws,
            );
        }
        let t1 = total_tracer(&mass, &q);
        assert!(
            ((t1 - t0) / t0).abs() < 1e-12,
            "seed {seed}: tracer drift {}",
            (t1 - t0) / t0
        );
        assert!(
            q.min_value() >= q_min - 1e-12,
            "seed {seed}: undershoot {}",
            q.min_value()
        );
        assert!(
            q.max_value() <= q_max + 1e-12,
            "seed {seed}: overshoot {}",
            q.max_value()
        );
    }
}

/// Partitions are exact covers for any part count, and the halo send/recv
/// schedule is a bijection onto owned cells.
#[test]
fn partition_and_halo_are_exact() {
    let mesh = HexMesh::build(3);
    for parts in 2usize..20 {
        let p = Partition::build(&mesh, parts, 1);
        let mut seen = vec![0u32; mesh.n_cells()];
        for r in 0..parts {
            for c in p.cells_of(r) {
                seen[c as usize] += 1;
            }
        }
        assert!(
            seen.iter().all(|&s| s == 1),
            "{parts} parts: cells multiply assigned or missed"
        );

        let layout = HaloLayout::build(&mesh, &p, 1);
        for loc in &layout.locales {
            for (peer, cells) in &loc.send {
                for &c in cells {
                    assert_eq!(p.part[c as usize] as usize, loc.rank);
                    assert!(layout.locales[*peer]
                        .recv
                        .iter()
                        .any(|(src, list)| *src == loc.rank && list.contains(&c)));
                }
            }
        }
    }
}

/// LRU cache laws: hits+misses equals accesses; every distinct line misses
/// at least once; hit ratio never exceeds 1.
#[test]
fn ldcache_accounting_laws() {
    for seed in 0..16u64 {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = rng.gen_range(1usize..200);
        let addrs: Vec<u64> = (0..n).map(|_| rng.gen_range(0u64..100_000)).collect();
        let mut cache = LdCache::new(4, 64, 64);
        let mut first_line_seen = std::collections::HashSet::new();
        let mut cold_misses = 0u64;
        for &a in &addrs {
            let line = a / 64;
            if first_line_seen.insert(line) {
                cold_misses += 1;
            }
            cache.access(a);
        }
        assert_eq!(cache.hits + cache.misses, addrs.len() as u64, "seed {seed}");
        // Every distinct line must miss at least once (compulsory misses).
        assert!(
            cache.misses >= cold_misses,
            "seed {seed}: {} < {cold_misses}",
            cache.misses
        );
        assert!(cache.hit_ratio() <= 1.0, "seed {seed}");
    }
}

/// Repeated access to a working set within capacity is all hits after the
/// first pass (LRU inclusion property for a single set-stream).
#[test]
fn ldcache_small_working_set_converges_to_hits() {
    for n_lines in 1usize..16 {
        let mut cache = LdCache::new(4, 16, 64);
        // n_lines ≤ 4 per set guaranteed by striding across sets.
        let addrs: Vec<u64> = (0..n_lines).map(|i| (i * 64) as u64).collect();
        for _ in 0..3 {
            for &a in &addrs {
                cache.access(a);
            }
        }
        cache.reset_stats();
        for &a in &addrs {
            let r = cache.access(a);
            assert_eq!(r, Access::Hit, "{n_lines} lines");
        }
    }
}

/// Physics positivity: random columns never yield negative moisture after
/// applying suite tendencies.
#[test]
fn physics_preserves_moisture_positivity() {
    use grist_physics::{Column, ColumnPhysicsState, ConventionalSuite};
    for seed in 0..16u64 {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut col = Column::reference(20);
        for k in 0..20 {
            col.t[k] += rng.gen_range(-5.0..5.0);
            col.qv[k] *= rng.gen_range(0.2..1.5);
            col.qc[k] = rng.gen_range(0.0..5e-4);
            col.qr[k] = rng.gen_range(0.0..5e-4);
        }
        col.coszr = rng.gen_range(0.0..1.0);
        col.tskin = col.t[19] + rng.gen_range(-3.0..5.0);
        let suite = ConventionalSuite::default();
        let mut st = ColumnPhysicsState::new(20, true, col.tskin);
        let dt = 600.0;
        for _ in 0..3 {
            let out = suite.step_column(&col, &mut st, dt, 1800.0);
            out.tend.apply(&mut col, dt);
            assert!(col.qv.iter().all(|&q| q >= 0.0), "seed {seed}");
            assert!(col.qc.iter().all(|&q| q >= 0.0), "seed {seed}");
            assert!(col.qr.iter().all(|&q| q >= 0.0), "seed {seed}");
            assert!(
                col.t
                    .iter()
                    .all(|&t| t.is_finite() && t > 100.0 && t < 400.0),
                "seed {seed}"
            );
            assert!(out.diag.precip >= 0.0, "seed {seed}");
        }
    }
}
