//! Cross-crate acceptance tests for the event-tracing subsystem: a traced
//! resilient multi-rank run exporting Perfetto-loadable Chrome JSON with
//! per-rank lanes (halo waits and fault injections included), bitwise
//! agreement between the `ml.flops_*` counters and the exact GEMM op
//! accounting, CPE chunk-lane rank attribution, ring bounds under the
//! epoch toggle, and the end-to-end `GristModel::trace_report` path.

use grist_core::{GristModel, MlSuite, RunConfig, DEFAULT_ML_BLOCK};
use grist_mesh::{HaloLayout, HexMesh, Partition};
use grist_physics::Column;
use grist_runtime::{exchange_gathered_chaos, halo_fault_key, run_world, VarList};
use sunway_sim::{
    analyze, trace, validate_chrome, EventKind, FaultPlan, FaultSite, Json, Metrics,
    RooflineInputs, Substrate, SunwaySpec,
};

const RANKS: usize = 4;
const NLEV: usize = 8;

/// The `trace_report` binary's scenario in miniature: every rank drives a
/// resilient ML-physics window on its own CPE-teams substrate over one
/// shared registry, under a dispatch-fault storm with one pinned
/// degrade-to-serial fault per rank, then swaps halos once with a pinned
/// in-flight truncation.
fn run_traced_world() -> Metrics {
    let metrics = Metrics::default();
    metrics.tracer().enable();

    let mesh = HexMesh::build(3);
    let partition = Partition::build(&mesh, RANKS, 2);
    let layout = HaloLayout::build(&mesh, &partition, 1);
    let n = mesh.n_cells();
    let victim = layout
        .locales
        .iter()
        .find(|l| !l.recv.is_empty())
        .expect("some rank has halos");
    let (vrank, vsrc) = (victim.rank, victim.recv[0].0);
    let halo_plan = FaultPlan::new(42).pin(FaultSite::HaloExchange, halo_fault_key(vrank, vsrc, 7));

    let metrics_ref = &metrics;
    run_world(RANKS, move |mut ctx| {
        trace::set_thread_rank(ctx.rank as u32);
        let sub = Substrate::cpe_teams_with_metrics(8, metrics_ref.clone());
        sub.arm_faults(
            FaultPlan::new(42 + ctx.rank as u64)
                .with_rate(FaultSite::Dispatch, 0.02)
                .pin(FaultSite::Dispatch, 11),
        );
        let cfg = RunConfig::for_level(2, NLEV).with_ml_physics(true);
        let window = cfg.dt_dyn * cfg.dyn_per_phy() as f64;
        let mut model = GristModel::<f64>::with_substrate(cfg, sub);
        model.advance_resilient(window);

        let locale = &layout.locales[ctx.rank];
        let mut h = vec![0.0f64; n * NLEV];
        let mut list = VarList::new();
        list.push("h", NLEV, &mut h);
        let r = exchange_gathered_chaos(&mut ctx, locale, &mut list, 7, metrics_ref, &halo_plan);
        assert_eq!(r.is_err(), ctx.rank == vrank, "only the victim rank fails");
    });
    metrics.tracer().disable();
    metrics
}

#[test]
fn traced_resilient_world_exports_valid_perfetto_json_with_attribution() {
    let metrics = run_traced_world();
    let snap = metrics.tracer().snapshot();

    // Per-rank process lanes with the acceptance events present.
    assert!(snap.ranks().len() >= RANKS, "ranks: {:?}", snap.ranks());
    assert!(snap.count_kind(EventKind::HaloWait) > 0, "no halo waits");
    assert!(snap.count_kind(EventKind::HaloExchange) > 0);
    assert!(
        snap.count_kind(EventKind::Fault) >= 1,
        "no fault injections"
    );
    assert!(
        snap.count_kind(EventKind::Degradation) >= 1,
        "pinned dispatch faults must force degrade-to-serial"
    );
    assert!(snap.count_kind(EventKind::Chunk) > 0, "no CPE chunk lanes");

    // The export validates, and survives a serialize -> parse round trip
    // with identical stats (what a Perfetto load would see).
    let stats = validate_chrome(&snap.to_chrome_json()).expect("schema-valid trace");
    assert!(stats.ranks >= RANKS);
    assert_eq!(stats.begins, stats.ends, "balanced B/E");
    let reparsed = Json::parse(&snap.to_chrome_string()).expect("chrome JSON parses");
    assert_eq!(validate_chrome(&reparsed).expect("round trip"), stats);

    // Attribution: the exact ML FLOP counter flows through to the report
    // row bitwise, the halo split and rank loads are populated.
    let mut inputs = RooflineInputs::from_arch(&SunwaySpec::next_gen());
    let batched = metrics.counter("ml.flops_batched");
    assert!(batched > 0, "ML physics must tick the exact FLOP counter");
    inputs
        .flops_by_kernel
        .insert("ml_physics_blocks".into(), batched);
    let report = analyze(&snap, &inputs);
    let ml = report
        .kernels
        .iter()
        .find(|k| k.name.ends_with("/ml_physics_blocks"))
        .expect("ML kernel attributed");
    assert_eq!(ml.flops, Some(batched), "bitwise FLOP attribution");
    assert!(ml.ai.is_some() && ml.gflops.is_some() && ml.bound.is_some());
    assert!(report.halo.waits > 0);
    assert!(report.halo.wait_ns + report.halo.transfer_ns <= report.halo.total_ns + 1);
    assert_eq!(report.ranks.len(), snap.ranks().len());
    assert!(report.imbalance >= 1.0);

    // The report document round-trips its schema tag.
    let doc = Json::parse(&report.to_json().pretty()).expect("report JSON parses");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("grist-trace-report-v1")
    );
}

#[test]
fn ml_flops_counters_match_exact_gemm_accounting_bitwise() {
    let metrics = Metrics::default();
    metrics.tracer().enable();
    let mut suite = MlSuite::untrained(12, 16, 0xB10C);
    suite.sub = Substrate::serial_with_metrics(metrics.clone());
    let n = 2 * DEFAULT_ML_BLOCK + 5; // multi-block with a tail
    let cols: Vec<Column> = (0..n).map(|_| Column::reference(12)).collect();

    suite.step_columns(&cols);
    let expected: u64 = (0..n.div_ceil(DEFAULT_ML_BLOCK))
        .map(|bi| {
            let lo = bi * DEFAULT_ML_BLOCK;
            suite.batch_flops((lo + DEFAULT_ML_BLOCK).min(n) - lo)
        })
        .sum();
    assert_eq!(
        metrics.counter("ml.flops_batched"),
        expected,
        "counter must equal the summed per-block GEMM accounting bitwise"
    );

    suite.step_columns_per_column(&cols);
    assert_eq!(
        metrics.counter("ml.flops_percol"),
        n as u64 * suite.flops_per_column()
    );

    // And the analyzer hands the exact totals to the matching kernel rows.
    let mut inputs = RooflineInputs::from_arch(&SunwaySpec::next_gen());
    inputs
        .flops_by_kernel
        .insert("ml_physics_blocks".into(), expected);
    let report = analyze(&metrics.tracer().snapshot(), &inputs);
    let row = report
        .kernels
        .iter()
        .find(|k| k.name.ends_with("ml_physics_blocks"))
        .expect("batched kernel traced");
    assert_eq!(row.flops, Some(expected));
}

#[test]
fn cpe_chunk_lanes_attribute_to_the_dispatching_rank() {
    let metrics = Metrics::default();
    metrics.tracer().enable();
    trace::set_thread_rank(9);
    let sub = Substrate::cpe_teams_with_metrics(4, metrics.clone());
    sub.run("stencil", 1_000, |_| {});
    let snap = metrics.tracer().snapshot();

    assert!(snap.count_kind(EventKind::Kernel) >= 1);
    let chunks = snap.count_kind(EventKind::Chunk);
    assert!(chunks > 1, "offload target must trace worker chunks");
    // Every lane — driver and CPE workers alike — carries the driver's rank.
    for lane in &snap.lanes {
        assert_eq!(lane.rank, 9, "lane {} ({})", lane.thread, lane.label);
    }
    // Chunks land on worker lanes, not the driver's.
    let driver_lane = trace::thread_lane();
    assert!(snap
        .lanes
        .iter()
        .filter(|l| l.thread != driver_lane)
        .any(|l| l.events.iter().any(|e| e.kind == EventKind::Chunk)));
    // Chunk items sum back to the dispatch size.
    let items: u64 = snap
        .lanes
        .iter()
        .flat_map(|l| &l.events)
        .filter(|e| e.kind == EventKind::Chunk)
        .map(|e| e.items)
        .sum();
    assert_eq!(items, 1_000);
}

#[test]
fn ring_bounds_hold_and_epoch_toggle_discards_cheaply() {
    let metrics = Metrics::default();
    let sub = Substrate::serial_with_metrics(metrics.clone());

    // Off by default: nothing recorded.
    sub.run("warm", 4, |_| {});
    assert_eq!(metrics.tracer().snapshot().total_events(), 0);

    // Tiny rings: events bounded per lane, eviction counted.
    metrics.tracer().enable_with_capacity(8);
    for _ in 0..100 {
        sub.run("k", 4, |_| {});
    }
    let snap = metrics.tracer().snapshot();
    assert!(snap.lanes.iter().all(|l| l.events.len() <= 8));
    assert!(snap.dropped > 0, "eviction must be accounted");

    // Disable: recording stops but the rings stay readable.
    metrics.tracer().disable();
    let kept = metrics.tracer().snapshot().total_events();
    sub.run("k", 4, |_| {});
    assert_eq!(metrics.tracer().snapshot().total_events(), kept);

    // Re-enable: a fresh epoch discards the old rings.
    metrics.tracer().enable();
    sub.run("fresh", 4, |_| {});
    let snap = metrics.tracer().snapshot();
    assert!(snap
        .lanes
        .iter()
        .flat_map(|l| &l.events)
        .all(|e| !e.name.contains("/k")));
    assert_eq!(snap.dropped, 0);
}

#[test]
fn grist_model_trace_report_runs_end_to_end() {
    let cfg = RunConfig::for_level(2, NLEV).with_ml_physics(true);
    let window = cfg.dt_dyn * cfg.dyn_per_phy() as f64;
    let mut model = GristModel::<f64>::with_substrate(cfg, Substrate::cpe_teams(8));
    model.metrics().tracer().enable();
    model.advance(window);
    let report = model.trace_report();
    assert!(report.wall_ns > 0);
    assert!(!report.kernels.is_empty());
    let ml = report
        .kernels
        .iter()
        .find(|k| k.name.ends_with("/ml_physics_blocks"))
        .expect("ML kernel attributed via GristModel::roofline_inputs");
    assert_eq!(ml.flops, Some(model.metrics().counter("ml.flops_batched")));
    assert!(ml.peak_fraction.is_some());
}
