//! Cross-crate integration tests of halo/compute overlap: the phased
//! distributed SWE step in both [`DynStepMode`]s must be bitwise identical
//! to each other and to a serial run, faults must surface through the async
//! begin/complete path, a panicking rank must abort blocked peers with a
//! descriptive error, and the `GristModel` halo hook must bracket every
//! dyn step with a Begin/Complete pair.

use grist_core::{DynStepMode, GristModel, HaloPhase, RunConfig};
use grist_dycore::swe::{williamson_tc2, SwePhases, SweSolver};
use grist_mesh::{HaloLayout, HexMesh, Partition};
use grist_runtime::{
    exchange_gathered, exchange_gathered_begin, exchange_gathered_complete, halo_fault_key,
    run_world, VarList,
};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use sunway_sim::{FaultPlan, FaultSite, Substrate};

const LEVEL: u32 = 3;
const DT: f64 = 400.0;
const STEPS: usize = 3;

/// Named substrate constructors to sweep each scenario over.
type SubstrateCases = [(&'static str, fn() -> Substrate); 2];

/// Run the distributed phased SWE step for `steps` steps in `mode` and
/// return each rank's full post-run `(h, u)` bit patterns. Before every
/// step the recv-halo `h` cells are poisoned with NaN, so the run only
/// survives if (a) the interior phase really reads owned data only and
/// (b) the exchange restores the halos before the remainder phase needs
/// them — in both modes.
fn run_phased_world(
    n_ranks: usize,
    mode: DynStepMode,
    make_sub: fn() -> Substrate,
) -> Vec<(Vec<u64>, Vec<u64>)> {
    let mesh = HexMesh::build(LEVEL);
    let partition = Partition::build(&mesh, n_ranks, 2);
    let layout = HaloLayout::build(&mesh, &partition, 2);

    let (results, _) = run_world(n_ranks, |mut ctx| {
        let mesh = HexMesh::build(LEVEL);
        let locale = &layout.locales[ctx.rank];
        let split = locale.phase_split(&mesh, 1);
        let mut solver = SweSolver::<f64>::with_substrate(mesh, make_sub());
        let phases = SwePhases::build(&solver.mesh, &split.interior_cells);
        let mut state = williamson_tc2::<f64>(&solver.mesh);
        for step in 0..STEPS {
            for (_, cells) in &locale.recv {
                for &c in cells {
                    state.h.set(0, c as usize, f64::NAN);
                }
            }
            let receipt = grist_core::swe_dyn_step(
                &mut solver,
                &mut state,
                DT,
                &mut ctx,
                locale,
                &phases,
                100 + step as u32,
                mode,
                None,
                None,
            )
            .expect("fault-free exchange");
            if !locale.recv.is_empty() {
                assert!(receipt.messages_sent > 0, "rank exchanged no messages");
            }
            for (_, cells) in &locale.recv {
                for &c in cells {
                    assert!(
                        state.h.at(0, c as usize).is_finite(),
                        "halo cell {c} still poisoned after step {step}"
                    );
                }
            }
        }
        let h_bits: Vec<u64> = state.h.as_slice().iter().map(|v| v.to_bits()).collect();
        let u_bits: Vec<u64> = state.u.as_slice().iter().map(|v| v.to_bits()).collect();
        (h_bits, u_bits)
    });
    results
}

/// Both modes, both substrate targets: every rank's full state must be
/// bitwise identical between the modes, and the owned cells must be
/// bitwise identical to an unphased serial run (the phased split plus the
/// halo restore changes nothing at all).
fn overlap_is_bitwise(n_ranks: usize) {
    let mesh = HexMesh::build(LEVEL);
    let mut serial = SweSolver::<f64>::new(mesh.clone());
    let mut sstate = williamson_tc2::<f64>(&serial.mesh);
    for _ in 0..STEPS {
        serial.step_rk3(&mut sstate, DT);
    }
    let serial_h: Vec<u64> = sstate.h.as_slice().iter().map(|v| v.to_bits()).collect();

    let partition = Partition::build(&mesh, n_ranks, 2);
    let subs: SubstrateCases = [
        ("serial", Substrate::serial),
        ("cpe_teams", || Substrate::cpe_teams(8)),
    ];
    for (name, make_sub) in subs {
        let sync = run_phased_world(n_ranks, DynStepMode::Synchronous, make_sub);
        let ovl = run_phased_world(n_ranks, DynStepMode::Overlapped, make_sub);
        for rank in 0..n_ranks {
            assert_eq!(
                sync[rank], ovl[rank],
                "rank {rank}/{n_ranks} ({name}): overlapped state differs from synchronous"
            );
            for c in partition.cells_of(rank) {
                assert_eq!(
                    ovl[rank].0[c as usize], serial_h[c as usize],
                    "rank {rank}/{n_ranks} ({name}): owned cell {c} differs from serial"
                );
            }
        }
    }
}

#[test]
fn overlapped_step_is_bitwise_identical_across_2_ranks() {
    overlap_is_bitwise(2);
}

#[test]
fn overlapped_step_is_bitwise_identical_across_4_ranks() {
    overlap_is_bitwise(4);
}

#[test]
fn overlapped_step_is_bitwise_identical_across_7_ranks() {
    overlap_is_bitwise(7);
}

/// A pinned halo truncation must surface through the overlapped driver as
/// a descriptive `ExchangeError` on the victim rank only, with the fault
/// counted on the victim's metrics.
#[test]
fn pinned_halo_fault_surfaces_through_the_overlapped_driver() {
    let n_ranks = 4;
    let victim = 1;
    let mesh = HexMesh::build(2);
    let partition = Partition::build(&mesh, n_ranks, 2);
    let layout = HaloLayout::build(&mesh, &partition, 2);
    let pinned_src = layout.locales[victim]
        .recv
        .first()
        .expect("victim has halos")
        .0;
    let tag = 300;
    let plan = FaultPlan::new(99).pin(
        FaultSite::HaloExchange,
        halo_fault_key(victim, pinned_src, tag),
    );
    let plan = &plan;
    let layout = &layout;

    let (results, _) = run_world(n_ranks, move |mut ctx| {
        let mesh = HexMesh::build(2);
        let locale = &layout.locales[ctx.rank];
        let split = locale.phase_split(&mesh, 1);
        let sub = Substrate::serial();
        let mut solver = SweSolver::<f64>::with_substrate(mesh, sub.clone());
        let phases = SwePhases::build(&solver.mesh, &split.interior_cells);
        let mut state = williamson_tc2::<f64>(&solver.mesh);
        let res = grist_core::swe_dyn_step(
            &mut solver,
            &mut state,
            DT,
            &mut ctx,
            locale,
            &phases,
            tag,
            DynStepMode::Overlapped,
            Some(sub.metrics()),
            Some(plan),
        );
        let err = res.err().map(|e| (e.src, e.expected_values - e.got_values));
        (err, sub.metrics().counter("fault.injected"))
    });

    for (rank, (err, injected)) in results.into_iter().enumerate() {
        if rank == victim {
            assert_eq!(err, Some((pinned_src, 1)), "victim must see the truncation");
            assert_eq!(injected, 1, "victim metrics must count the injection");
        } else {
            assert_eq!(err, None, "rank {rank} must complete cleanly");
            assert_eq!(injected, 0, "rank {rank} must inject nothing");
        }
    }
}

/// Rank-death regression: when one rank panics while its peers are blocked
/// inside a gathered exchange, the world must abort promptly with an error
/// naming the dead rank — not hang in `recv`.
#[test]
fn rank_death_aborts_peers_blocked_in_a_gathered_exchange() {
    let n_ranks = 4;
    let mesh = HexMesh::build(2);
    let partition = Partition::build(&mesh, n_ranks, 2);
    let layout = HaloLayout::build(&mesh, &partition, 1);
    let layout = &layout;

    let res = std::panic::catch_unwind(|| {
        run_world(n_ranks, move |mut ctx| {
            if ctx.rank == 2 {
                panic!("simulated node loss");
            }
            let locale = &layout.locales[ctx.rank];
            let mesh = HexMesh::build(2);
            let mut field = vec![1.0f64; mesh.n_cells()];
            let mut list = VarList::new();
            list.push("phi", 1, &mut field);
            // Rank 2 never sends: without the abort protocol this blocks
            // forever waiting for its message.
            exchange_gathered(&mut ctx, locale, &mut list, 7).ok();
        })
    });
    let msg = match res {
        Ok(_) => panic!("world must not survive a dead rank"),
        Err(p) => p
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default(),
    };
    assert!(
        msg.contains("rank 2"),
        "error must name the dead rank: {msg}"
    );
    assert!(
        msg.contains("simulated node loss"),
        "error must carry the original panic message: {msg}"
    );
}

/// The `GristModel` halo hook must be called with Begin before and
/// Complete after every dyn step, carry a live async exchange across the
/// step, and leave the trajectory bitwise identical to a hook-less model.
#[test]
fn model_halo_hook_brackets_every_dyn_step() {
    let n_ranks = 2;
    let steps = 3;
    let cfg = RunConfig::for_level(2, 8);

    // Hook-less reference trajectory.
    let mut reference = GristModel::<f64>::new(cfg.clone());
    for _ in 0..steps {
        reference.step_dyn();
    }
    let ref_bits: Vec<u64> = reference
        .state
        .dpi
        .as_slice()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    let ref_bits = &ref_bits;

    let mesh = HexMesh::build(2);
    let partition = Partition::build(&mesh, n_ranks, 2);
    let layout = HaloLayout::build(&mesh, &partition, 2);
    let layout = &layout;
    let cfg = &cfg;

    let (results, _) = run_world(n_ranks, move |ctx| {
        let rank = ctx.rank;
        let locale = layout.locales[rank].clone();
        let begins = Arc::new(AtomicUsize::new(0));
        let completes = Arc::new(AtomicUsize::new(0));
        let messages = Arc::new(AtomicU64::new(0));
        let (b, c, m) = (begins.clone(), completes.clone(), messages.clone());

        let mut model = GristModel::<f64>::new(cfg.clone());
        let mut ctx = ctx;
        let mut pending = None;
        let mut step = 0u32;
        model.set_halo_hook(Box::new(move |phase, state| match phase {
            HaloPhase::Begin => {
                assert_eq!(
                    b.load(Ordering::Relaxed),
                    c.load(Ordering::Relaxed),
                    "Begin must alternate with Complete"
                );
                b.fetch_add(1, Ordering::Relaxed);
                let mut list = VarList::new();
                list.push("dpi", state.dpi.nlev(), state.dpi.as_mut_slice());
                pending = Some(exchange_gathered_begin(
                    &mut ctx,
                    &locale,
                    &list,
                    500 + step,
                ));
                step += 1;
            }
            HaloPhase::Complete => {
                c.fetch_add(1, Ordering::Relaxed);
                let mut list = VarList::new();
                list.push("dpi", state.dpi.nlev(), state.dpi.as_mut_slice());
                let receipt = exchange_gathered_complete(
                    pending.take().expect("Complete without a pending Begin"),
                    &mut ctx,
                    &locale,
                    &mut list,
                )
                .expect("fault-free exchange");
                m.fetch_add(receipt.messages_sent, Ordering::Relaxed);
            }
        }));
        for _ in 0..steps {
            model.step_dyn();
        }
        let bits: Vec<u64> = model
            .state
            .dpi
            .as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        (
            bits,
            begins.load(Ordering::Relaxed),
            completes.load(Ordering::Relaxed),
            messages.load(Ordering::Relaxed),
        )
    });

    for (rank, (bits, begins, completes, messages)) in results.into_iter().enumerate() {
        assert_eq!(begins, steps, "rank {rank}: one Begin per dyn step");
        assert_eq!(completes, steps, "rank {rank}: one Complete per dyn step");
        assert!(messages > 0, "rank {rank}: the hook exchanged no messages");
        assert_eq!(
            &bits, ref_bits,
            "rank {rank}: hooked trajectory diverged from the hook-less model"
        );
    }
}
