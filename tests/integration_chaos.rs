//! Workspace-wide chaos suite: seeded fault storms driven through the whole
//! stack — substrate dispatches, DMA-carrying kernels, and gathered halo
//! exchanges — with the recovery ladder (retry → degrade-to-serial, typed
//! errors → checkpoint restore) asserted to be *deterministic*: a fixed seed
//! must produce the same faults, the same recovery actions, and the same
//! post-recovery state, bit for bit, on every run.
//!
//! The seed can be varied from the outside (the CI chaos job runs a small
//! matrix): `CHAOS_SEED=7 cargo test --release --test integration_chaos`.

use grist_core::{Checkpoint, GristModel, RunConfig};
use grist_mesh::{HaloLayout, HexMesh, Partition};
use grist_runtime::{exchange_gathered_chaos, halo_fault_key, run_world, VarList};
use sunway_sim::{FaultPlan, FaultSite, Substrate};

/// Seed for the storms below; override with `CHAOS_SEED=<n>`.
fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

fn small_config() -> RunConfig {
    RunConfig::for_level(2, 8)
}

/// One physics cycle's worth of coupled stepping.
fn storm_window(cfg: &RunConfig) -> f64 {
    cfg.dt_dyn * cfg.dyn_per_phy() as f64
}

// ---------------------------------------------------------------------------
// Dispatch / DMA storms: retry-then-degrade must be invisible in the state.
// ---------------------------------------------------------------------------

/// Run one coupled window on CPE teams under `plan` (or clean when `None`)
/// and return the post-run state hash plus the fault counters.
fn run_dispatch_storm(plan: Option<FaultPlan>) -> (u64, [u64; 3]) {
    let sub = Substrate::cpe_teams(8);
    if let Some(p) = plan {
        sub.arm_faults(p);
    }
    let cfg = small_config();
    let window = storm_window(&cfg);
    let mut m = GristModel::<f64>::with_substrate(cfg, sub);
    m.advance(window);
    let metrics = m.metrics();
    let counters = [
        metrics.counter("fault.injected"),
        metrics.counter("fault.retries"),
        metrics.counter("fault.degradations"),
    ];
    (m.state_hash(), counters)
}

#[test]
fn dispatch_fault_storm_is_bitwise_invisible_and_deterministic() {
    let seed = chaos_seed();
    // Transient rate faults plus two pinned dispatch events — one early,
    // one mid-run (the window issues ~600 dispatches) — that persist through
    // every retry and force the degrade-to-serial path.
    let plan = || {
        FaultPlan::new(seed)
            .with_rate(FaultSite::Dispatch, 0.05)
            .pin(FaultSite::Dispatch, 11)
            .pin(FaultSite::Dispatch, 350)
    };

    let (clean_hash, clean_counters) = run_dispatch_storm(None);
    assert_eq!(clean_counters, [0, 0, 0], "clean run must inject nothing");

    let (storm_hash, storm_counters) = run_dispatch_storm(Some(plan()));
    // Serial fallback runs the identical per-index kernel, so even a run
    // full of retries and degradations must match the clean run exactly.
    assert_eq!(
        storm_hash, clean_hash,
        "degrade-to-serial changed the model state (seed {seed})"
    );
    assert!(
        storm_counters[0] > 0,
        "storm injected no faults (seed {seed})"
    );
    assert!(
        storm_counters[2] >= 2,
        "two pinned events must both degrade, saw {} (seed {seed})",
        storm_counters[2]
    );

    // Same seed, fresh model, fresh plan: identical faults, identical
    // recovery, identical counters — the acceptance bar for the fault layer.
    let (again_hash, again_counters) = run_dispatch_storm(Some(plan()));
    assert_eq!(again_hash, storm_hash, "storm is not repeatable");
    assert_eq!(again_counters, storm_counters, "fault schedule drifted");
}

#[test]
fn resilient_advance_under_a_storm_completes_and_matches_clean_stepping() {
    let seed = chaos_seed();
    let cfg = small_config();
    let window = storm_window(&cfg);

    let mut clean = GristModel::<f64>::new(small_config());
    clean.advance(window);

    let sub = Substrate::cpe_teams(8);
    sub.arm_faults(
        FaultPlan::new(seed)
            .with_rate(FaultSite::Dispatch, 0.05)
            .pin(FaultSite::Dispatch, 7),
    );
    let mut chaotic = GristModel::<f64>::with_substrate(cfg, sub);
    let outcome = chaotic.advance_resilient(window);

    assert!(outcome.completed, "{}", outcome.final_health.diagnosis);
    assert_eq!(
        outcome.restores, 0,
        "dispatch faults degrade transparently; no rollback should fire"
    );
    assert!(outcome.checkpoints >= 1, "no checkpoint captured");
    // Health scans and checkpoint captures are pure observation, and the
    // degraded dispatches are bitwise identical, so the resilient chaos run
    // must equal the plain serial run.
    assert_eq!(
        chaotic.state_hash(),
        clean.state_hash(),
        "resilient stepping diverged from clean stepping (seed {seed})"
    );
}

// ---------------------------------------------------------------------------
// Checkpoint / restart: restore must be bit-for-bit.
// ---------------------------------------------------------------------------

#[test]
fn checkpoint_restore_then_advance_matches_the_uninterrupted_run() {
    // The ML suite's physics is a pure function of the column state, so the
    // checkpoint captures everything the trajectory depends on and the
    // restored run must be bitwise identical. (Conventional physics keeps
    // per-column caches — land store, radiation heating — that checkpoints
    // deliberately do not carry; its restores are stability-level, not
    // bitwise: see DESIGN.md §8.)
    let cfg = || small_config().with_ml_physics(true);
    let window = storm_window(&cfg());

    let mut primary = GristModel::<f64>::new(cfg());
    primary.advance(window);
    let ck = primary.checkpoint();
    let wire = ck.to_json();
    primary.advance(window);
    let reference = primary.state_hash();

    // A fresh process: parse the serialized checkpoint, restore into a
    // newly built model, and continue.
    let parsed = Checkpoint::from_json(&wire).expect("checkpoint round-trips through JSON");
    let mut resumed = GristModel::<f64>::new(cfg());
    resumed
        .restore(&parsed)
        .expect("restore into a fresh model");
    assert_eq!(
        resumed.state_hash(),
        ck_hash_of(&parsed, &cfg()),
        "restore is not faithful to the serialized document"
    );
    resumed.advance(window);
    assert_eq!(
        resumed.state_hash(),
        reference,
        "checkpoint -> serialize -> parse -> restore -> advance diverged \
         from the uninterrupted run"
    );
    assert_eq!(primary.metrics().counter("checkpoint.captures"), 1);
    assert!(primary.metrics().counter("checkpoint.bytes") > 0);
    assert_eq!(resumed.metrics().counter("recovery.restores"), 1);
}

/// Hash of the state a checkpoint encodes, obtained by restoring it into a
/// scratch model — lets the test pin "restore is faithful" separately from
/// "the continued trajectory matches".
fn ck_hash_of(ck: &Checkpoint, cfg: &RunConfig) -> u64 {
    let mut scratch = GristModel::<f64>::new(cfg.clone());
    scratch.restore(ck).expect("scratch restore");
    scratch.state_hash()
}

// ---------------------------------------------------------------------------
// Halo-exchange storms: typed errors, world-agreed rollback, fresh tags.
// ---------------------------------------------------------------------------

const HALO_RANKS: usize = 4;
const HALO_NLEV: usize = 3;
const HALO_ROUNDS: usize = 5;

/// Drive `HALO_ROUNDS` of update-then-exchange across 4 ranks under `plan`.
/// A failed round (any rank receiving a truncated buffer) is detected by
/// every rank through an allreduce, rolled back from the per-round
/// checkpoint, and retried under a fresh tag. Returns each rank's final
/// field and its rollback count.
fn run_halo_storm(plan: &FaultPlan, sub: &Substrate) -> (Vec<Vec<f64>>, Vec<u32>) {
    let mesh = HexMesh::build(2);
    let part = Partition::build(&mesh, HALO_RANKS, 2);
    let layout = HaloLayout::build(&mesh, &part, 1);
    let n_values = mesh.n_cells() * HALO_NLEV;

    let (results, _) = run_world(HALO_RANKS, |mut ctx| {
        let locale = &layout.locales[ctx.rank];
        let mut field = vec![0.0f64; n_values];
        for &c in &locale.owned_cells {
            for k in 0..HALO_NLEV {
                field[c as usize * HALO_NLEV + k] = c as f64 + 0.25 * k as f64;
            }
        }
        let mut saved = field.clone();
        let mut restores = 0u32;
        for round in 0..HALO_ROUNDS {
            // Local update on owned cells, then checkpoint the pre-exchange
            // state: a failed exchange leaves halos partially unpacked, so
            // the retry must start from exactly here.
            for &c in &locale.owned_cells {
                for k in 0..HALO_NLEV {
                    let v = &mut field[c as usize * HALO_NLEV + k];
                    *v = *v * 1.0625 + 1e-3 * (c as usize + k) as f64;
                }
            }
            saved.copy_from_slice(&field);
            let base_tag = round as u32 * 100;
            let mut attempt = 0u32;
            loop {
                // Fresh tag per attempt: messages parked by an aborted round
                // must never satisfy a retry's receives.
                let tag = base_tag + attempt * 10;
                let failed_here = {
                    let mut list = VarList::new();
                    list.push("phi", HALO_NLEV, &mut field);
                    exchange_gathered_chaos(&mut ctx, locale, &mut list, tag, sub.metrics(), plan)
                        .is_err()
                };
                // Every rank agrees on whether the round survived before
                // anyone commits to the result.
                let world_failures = ctx.allreduce_sum(f64::from(failed_here as u8), tag + 5);
                if world_failures == 0.0 {
                    break;
                }
                field.copy_from_slice(&saved);
                restores += 1;
                attempt += 1;
                assert!(attempt < 8, "halo storm never converged");
            }
        }
        (field, restores)
    });
    results.into_iter().unzip()
}

#[test]
fn halo_fault_storm_recovers_deterministically_from_checkpoints() {
    let seed = chaos_seed();
    // A pinned truncation guarantees at least one recovery regardless of
    // seed: rank 1's first receive of round 1's first attempt (tag 100) is
    // damaged. A low transient rate adds seed-dependent extra storms.
    let mesh = HexMesh::build(2);
    let part = Partition::build(&mesh, HALO_RANKS, 2);
    let layout = HaloLayout::build(&mesh, &part, 1);
    let pinned_src = layout.locales[1].recv.first().expect("rank 1 has halos").0;
    let plan = FaultPlan::new(seed)
        .with_rate(FaultSite::HaloExchange, 0.03)
        .pin(FaultSite::HaloExchange, halo_fault_key(1, pinned_src, 100));

    let clean_sub = Substrate::serial();
    let quiet = FaultPlan::new(seed); // no rates, no pins: injects nothing
    let (clean_fields, clean_restores) = run_halo_storm(&quiet, &clean_sub);
    assert_eq!(clean_restores, vec![0; HALO_RANKS]);
    assert_eq!(clean_sub.metrics().counter("fault.injected"), 0);

    let storm_sub = Substrate::serial();
    let (storm_fields, storm_restores) = run_halo_storm(&plan, &storm_sub);
    let total_restores: u32 = storm_restores.iter().sum();
    assert!(total_restores >= 1, "pinned truncation did not fire");
    assert!(storm_sub.metrics().counter("fault.injected") >= 1);
    // Rollback + fresh-tag retry must reconverge to the clean trajectory.
    assert_eq!(
        storm_fields, clean_fields,
        "post-recovery fields diverged from the fault-free run (seed {seed})"
    );

    // And the whole storm — faults, rollbacks, final state — must replay
    // identically under the same seed.
    let again_sub = Substrate::serial();
    let (again_fields, again_restores) = run_halo_storm(&plan, &again_sub);
    assert_eq!(again_fields, storm_fields, "storm fields not repeatable");
    assert_eq!(again_restores, storm_restores, "rollback schedule drifted");
    assert_eq!(
        again_sub.metrics().counter("fault.injected"),
        storm_sub.metrics().counter("fault.injected"),
        "injection count drifted between identical storms"
    );
}

// ---------------------------------------------------------------------------
// Observability: every rung of the ladder lands in metrics_json().
// ---------------------------------------------------------------------------

#[test]
fn fault_and_recovery_counters_surface_in_metrics_json() {
    let sub = Substrate::cpe_teams(4);
    // Pin the very first dispatch: retries burn, then degrade-to-serial.
    sub.arm_faults(FaultPlan::new(chaos_seed()).pin(FaultSite::Dispatch, 0));
    let mut m = GristModel::<f64>::with_substrate(small_config(), sub);
    m.step_dyn();
    let ck = m.checkpoint();
    m.state.u.set(0, 0, f64::NAN);
    assert_eq!(m.health().state, grist_core::RunState::Corrupt);
    m.restore(&ck).expect("restore own checkpoint");
    assert_eq!(m.health().state, grist_core::RunState::Healthy);

    let json = m.metrics_json();
    for counter in [
        "fault.injected",
        "fault.retries",
        "fault.degradations",
        "checkpoint.captures",
        "checkpoint.bytes",
        "recovery.restores",
        "health.scans",
    ] {
        assert!(
            json.contains(counter),
            "metrics_json() lacks {counter}:\n{json}"
        );
    }
}
