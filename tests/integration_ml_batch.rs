//! Cross-crate integration tests of the batched GEMM inference engine: the
//! property-style equivalence suite (batched [`MlSuite::step_columns`] vs
//! the per-column reference, bitwise, across every batch shape and both
//! execution targets), the zero-allocation steady-state guarantee, the
//! FLOP-accounting consistency check against the exact GEMM op counts the
//! lowering issues, and the surface-parameter plumbing pin.

use grist_core::{MlSuite, DEFAULT_ML_BLOCK};
use grist_ml::gemm_flops;
use grist_physics::surface::bulk_fluxes;
use grist_physics::Column;
use rand::{rngs::StdRng, Rng, SeedableRng};
use sunway_sim::Substrate;

/// Seeded column population (vendored `rand` shim — deterministic per
/// seed): the reference column with every ML-visible field perturbed.
fn random_columns(nlev: usize, n: usize, seed: u64) -> Vec<Column> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut c = Column::reference(nlev);
            for k in 0..nlev {
                c.u[k] += rng.gen_range(-5.0..5.0);
                c.v[k] += rng.gen_range(-5.0..5.0);
                c.t[k] += rng.gen_range(-3.0..3.0);
                c.qv[k] *= 1.0 + rng.gen_range(-0.2..0.2);
            }
            c.tskin += rng.gen_range(-5.0..5.0);
            c.coszr = rng.gen_range(0.0..1.0);
            c
        })
        .collect()
}

/// The batch shapes the issue calls out: degenerate, sub-block, exactly one
/// block, one past a block boundary, and a multi-block run with a tail.
fn batch_sizes() -> [usize; 5] {
    [1, 3, DEFAULT_ML_BLOCK, DEFAULT_ML_BLOCK + 1, 64]
}

#[test]
fn batched_matches_per_column_bitwise_on_both_targets() {
    let nlev = 12;
    for (ti, sub) in [Substrate::serial(), Substrate::cpe_teams(8)]
        .into_iter()
        .enumerate()
    {
        let mut suite = MlSuite::untrained(nlev, 16, 0xB10C);
        suite.sub = sub;
        for (ni, n) in batch_sizes().into_iter().enumerate() {
            let cols = random_columns(nlev, n, 1000 + (ti * 10 + ni) as u64);
            let batched = suite.step_columns(&cols);
            let reference = suite.step_columns_per_column(&cols);
            assert_eq!(batched.len(), n);
            for (i, (a, b)) in batched.iter().zip(&reference).enumerate() {
                // Bitwise: the GEMM engine preserves the per-column
                // accumulation order exactly (see grist_ml::gemm).
                assert_eq!(a.tend.dt_dt, b.tend.dt_dt, "target {ti} n {n} col {i}");
                assert_eq!(a.tend.dqv_dt, b.tend.dqv_dt, "target {ti} n {n} col {i}");
                assert_eq!(a.diag.gsw, b.diag.gsw);
                assert_eq!(a.diag.glw, b.diag.glw);
                assert_eq!(a.diag.precip, b.diag.precip);
                assert_eq!(a.diag.shflx, b.diag.shflx);
                assert_eq!(a.diag.lhflx, b.diag.lhflx);
                assert_eq!(a.diag.tskin, b.diag.tskin);
            }
        }
    }
}

#[test]
fn batched_results_are_independent_of_execution_target() {
    let nlev = 10;
    let cols = random_columns(nlev, DEFAULT_ML_BLOCK + 5, 77);
    let mut serial = MlSuite::untrained(nlev, 16, 9);
    serial.sub = Substrate::serial();
    let mut cpe = MlSuite::untrained(nlev, 16, 9);
    cpe.sub = Substrate::cpe_teams(8);
    let a = serial.step_columns(&cols);
    let b = cpe.step_columns(&cols);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.tend.dt_dt, y.tend.dt_dt);
        assert_eq!(x.tend.dqv_dt, y.tend.dqv_dt);
        assert_eq!(x.diag.gsw, y.diag.gsw);
        assert_eq!(x.diag.precip, y.diag.precip);
    }
}

#[test]
fn batched_steady_state_allocates_nothing_after_warmup() {
    let nlev = 10;
    let cols = random_columns(nlev, 48, 5); // 2 blocks at the default size
    let n_blocks = cols.len().div_ceil(DEFAULT_ML_BLOCK) as u64;

    // Serial: exactly one arena, and the event counter must go flat after
    // the first call.
    let suite = MlSuite::untrained(nlev, 16, 7);
    suite.step_columns(&cols);
    let serial_events = suite.scratch_alloc_events();
    assert!(serial_events >= 1);
    for _ in 0..6 {
        suite.step_columns(&cols);
    }
    assert_eq!(
        suite.scratch_alloc_events(),
        serial_events,
        "serial batched loop allocated in steady state"
    );

    // CPE teams: the pool creates at most one arena per concurrently active
    // block, each growing exactly as the serial arena did — so the total is
    // bounded by n_blocks × the serial count, and never moves past it.
    let mut suite = MlSuite::untrained(nlev, 16, 7);
    suite.sub = Substrate::cpe_teams(8);
    for _ in 0..4 {
        suite.step_columns(&cols);
    }
    let warm = suite.scratch_alloc_events();
    for _ in 0..6 {
        suite.step_columns(&cols);
    }
    let after = suite.scratch_alloc_events();
    assert!(after >= warm, "event counter must be monotone");
    assert!(
        after <= n_blocks * serial_events,
        "cpe pool exceeded one arena per block: {after} > {n_blocks} x {serial_events}"
    );
}

#[test]
fn flops_accounting_matches_the_exact_gemm_op_counts() {
    // Independent derivation of the GEMM shapes the batched lowering
    // issues, from the published architecture: a 5→ch k=3 input conv, five
    // residual units of two ch→ch k=3 convs, a ch→2 k=1 readout (each conv
    // is one im2col GEMM over b·nlev output positions), and the 7-layer MLP
    // (n_in→64, five 64→64, 64→n_out) on b-wide activation panels.
    let (nlev, ch) = (16usize, 64usize);
    let suite = MlSuite::untrained(nlev, ch, 4);
    let cnn = |b: usize| {
        gemm_flops(ch, b * nlev, 5 * 3)
            + 5 * 2 * gemm_flops(ch, b * nlev, ch * 3)
            + gemm_flops(2, b * nlev, ch)
    };
    let (n_in, width, n_out) = (2 * nlev + 2, 64usize, 3usize);
    let mlp = |b: usize| {
        gemm_flops(width, b, n_in) + 5 * gemm_flops(width, b, width) + gemm_flops(n_out, b, width)
    };
    for b in batch_sizes() {
        assert_eq!(
            suite.batch_flops(b),
            cnn(b) + mlp(b),
            "batch_flops(b={b}) disagrees with the lowered GEMM shapes"
        );
        assert_eq!(
            suite.batch_flops(b),
            b as u64 * suite.flops_per_column(),
            "batched op count must be exactly b x the per-column count"
        );
    }
}

#[test]
fn configured_surface_parameters_flow_through_the_batched_path() {
    let nlev = 8;
    let mut suite = MlSuite::untrained(nlev, 8, 2);
    suite.surface.ch *= 1.7;
    suite.surface.wind_floor = 2.5;
    suite.surface.beta_ocean = 0.8;
    let cols = random_columns(nlev, 5, 9);
    let out = suite.step_columns(&cols);
    for (col, o) in cols.iter().zip(&out) {
        let (sh, lh) = bulk_fluxes(col, &suite.surface, suite.surface.beta_ocean);
        assert_eq!(o.diag.shflx, sh, "configured surface lost in batching");
        assert_eq!(o.diag.lhflx, lh, "configured surface lost in batching");
    }
}
