//! Execution-target equivalence: the Serial and CpeTeams substrates must
//! produce the same trajectories. Every hot-loop kernel computes each
//! cell/edge/column index independently, so the CPE-team scheduling order
//! must not leak into the numbers — the paper's bit-reproducibility
//! requirement for moving loops onto the accelerator (§3.3).

use grist_core::{GristModel, RunConfig};
use grist_dycore::SweSolver;
use grist_mesh::HexMesh;
use sunway_sim::Substrate;

fn rel_err(a: f64, b: f64) -> f64 {
    (a - b).abs() / b.abs().max(1.0)
}

/// TC2 shallow-water `h` after 12 RK3 steps: serial vs 64-CPE teams.
#[test]
fn swe_tc2_height_matches_serial_on_cpe_teams() {
    let level = 3;
    let dt = 400.0;
    let steps = 12;

    let mut serial = SweSolver::<f64>::with_substrate(HexMesh::build(level), Substrate::serial());
    let mut teams =
        SweSolver::<f64>::with_substrate(HexMesh::build(level), Substrate::cpe_teams(64));
    let mut s_state = grist_dycore::swe::williamson_tc2::<f64>(&serial.mesh);
    let mut t_state = grist_dycore::swe::williamson_tc2::<f64>(&teams.mesh);
    for _ in 0..steps {
        serial.step_rk3(&mut s_state, dt);
        teams.step_rk3(&mut t_state, dt);
    }

    let mut worst = 0.0f64;
    for c in 0..serial.mesh.n_cells() {
        worst = worst.max(rel_err(t_state.h.at(0, c), s_state.h.at(0, c)));
    }
    assert!(
        worst <= 1e-12,
        "TC2 h diverged across substrates: rel err {worst:e}"
    );

    // The teams run must actually have dispatched through the profiler.
    let report = teams.sub.kernel_report();
    assert!(!report.is_empty(), "CPE-teams run recorded no kernels");
    // Kernel names are span-qualified (`dycore/swe_momentum_tend`).
    assert!(report
        .iter()
        .any(|r| r.name.ends_with("swe_momentum_tend") && r.calls >= steps as u64));
}

/// Coupled-model surface pressure after ≥10 dynamics steps (with physics
/// firing on its cadence): serial vs CPE teams.
#[test]
fn coupled_surface_pressure_matches_serial_on_cpe_teams() {
    let config = RunConfig::for_level(2, 10);
    let seconds = 16.0 * config.dt_dyn; // 16 dyn steps, ≥1 physics step
    let mut serial = GristModel::<f64>::with_substrate(config.clone(), Substrate::serial());
    let mut teams = GristModel::<f64>::with_substrate(config, Substrate::cpe_teams(64));
    serial.advance(seconds);
    teams.advance(seconds);

    let ps_s = serial.surface_pressure();
    let ps_t = teams.surface_pressure();
    let mut worst = 0.0f64;
    for (a, b) in ps_t.iter().zip(&ps_s) {
        worst = worst.max(rel_err(*a, *b));
    }
    assert!(
        worst <= 1e-12,
        "coupled ps diverged across substrates: rel err {worst:e}"
    );
}

/// The kernel report exposes per-kernel wall time and call counts for the
/// whole coupled step (dycore + physics share one profiler).
#[test]
fn kernel_report_covers_dycore_and_physics() {
    let config = RunConfig::for_level(2, 10);
    let seconds = 16.0 * config.dt_dyn;
    let mut m = GristModel::<f64>::with_substrate(config, Substrate::cpe_teams(16));
    m.advance(seconds);

    let report = m.kernel_report();
    assert!(!report.is_empty());
    let names: Vec<&str> = report.iter().map(|r| r.name.as_str()).collect();
    // Names carry the full trace-span path (model step → suite → kernel).
    assert!(
        names.contains(&"step/dycore/hevi_momentum_update"),
        "dycore kernel missing: {names:?}"
    );
    assert!(
        names.contains(&"step/physics/physics_columns"),
        "physics kernel missing: {names:?}"
    );
    for r in &report {
        assert!(r.calls > 0, "{}: zero calls", r.name);
        assert!(r.total_ms >= 0.0 && r.mean_us >= 0.0);
    }
    // Hottest-first ordering.
    for w in report.windows(2) {
        assert!(w[0].total_ms >= w[1].total_ms);
    }

    // The formatted table carries every kernel name.
    let text = m.kernel_report_text();
    for r in &report {
        assert!(text.contains(r.name.as_str()));
    }

    // And reset clears the accumulation.
    m.reset_kernel_report();
    assert!(m.kernel_report().is_empty());
}
