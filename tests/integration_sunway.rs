//! Cross-crate integration tests of the Sunway performance stack: the
//! dycore's cost descriptors feeding the roofline model, the LDCache/
//! distributor pipeline, and omnicopy inside a job-server offload.

use grist_dycore::kernels::{
    calc_coriolis_term_cost, compute_rrr_cost, grad_kinetic_energy_cost,
    primal_normal_flux_edge_cost, tracer_flux_limiter_cost,
};
use std::sync::atomic::Ordering;
use sunway_sim::omnicopy::{omnicopy, CopyStats, LdmArena, Space};
use sunway_sim::perf::{kernel_time, ExecTarget, KernelSpec, PerfModel};
use sunway_sim::{JobServer, SunwaySpec};

/// Translate a dycore cost descriptor into the perf model's kernel spec.
fn to_spec(name: &'static str, cost: grist_dycore::kernels::KernelCost) -> KernelSpec {
    KernelSpec {
        name,
        points: cost.points,
        flops_per_point: cost.flops_per_point,
        expensive_per_point: cost.expensive_per_point,
        arrays: cost.arrays,
        has_mixed_variant: cost.has_mixed_variant,
    }
}

#[test]
fn dycore_cost_descriptors_drive_the_fig9_model() {
    let spec = SunwaySpec::next_gen();
    let model = PerfModel::default();
    let (nc, ne, nlev) = (40_962, 122_880, 30);
    let kernels = vec![
        to_spec(
            "grad_kinetic_energy",
            grad_kinetic_energy_cost::<f64>(ne, nlev),
        ),
        to_spec(
            "primal_normal_flux_edge",
            primal_normal_flux_edge_cost::<f64>(ne, nlev),
        ),
        to_spec("compute_rrr", compute_rrr_cost::<f64>(nc, nlev)),
        to_spec("calc_coriolis_term", calc_coriolis_term_cost(ne, nlev)),
        to_spec(
            "tracer_transport_hori_flux_limiter",
            tracer_flux_limiter_cost::<f64>(ne, nlev),
        ),
    ];
    for k in &kernels {
        let base = kernel_time(k, ExecTarget::MpeDp, &spec, &model);
        let best = kernel_time(k, ExecTarget::CpeMixDst, &spec, &model);
        let speedup = base / best;
        assert!(
            (5.0..150.0).contains(&speedup),
            "{}: full-optimization speedup {speedup} out of the plausible band",
            k.name
        );
    }
    // The paper's ordering claims.
    let s = |name: &str, t: ExecTarget| {
        let k = kernels.iter().find(|k| k.name == name).unwrap();
        kernel_time(k, ExecTarget::MpeDp, &spec, &model) / kernel_time(k, t, &spec, &model)
    };
    assert!(
        s("primal_normal_flux_edge", ExecTarget::CpeMixDst)
            > s("primal_normal_flux_edge", ExecTarget::CpeDpDst),
        "divide/pow-heavy kernel must benefit from MIX"
    );
    let cor_gain =
        s("calc_coriolis_term", ExecTarget::CpeMixDst) / s("calc_coriolis_term", ExecTarget::CpeDp);
    assert!(
        (0.95..1.1).contains(&cor_gain),
        "coriolis should gain ~nothing from MIX+DST: {cor_gain}"
    );
}

#[test]
fn omnicopy_stages_columns_through_ldm_inside_an_offload() {
    // The §3.3.2/§3.3.4 pattern: "we copy a number of variables onto CPE
    // stack with omnicopy function until the cache thrashing is eliminated."
    let server = JobServer::new(8);
    let stats = CopyStats::default();
    let n_cols = 256;
    let nlev = 30;
    let main_mem: Vec<f64> = (0..n_cols * nlev).map(|i| i as f64 * 0.5).collect();
    let results: Vec<std::sync::Mutex<f64>> =
        (0..n_cols).map(|_| std::sync::Mutex::new(0.0)).collect();

    server.target_parallel_for(n_cols, 16, &|c| {
        // Per-CPE LDM scratch within the 128 KB budget.
        let mut arena = LdmArena::with_capacity(128 * 1024);
        let mut ldm_col: Vec<f64> = arena.alloc(nlev).expect("fits in LDM");
        omnicopy(
            &mut ldm_col,
            Space::Ldm,
            &main_mem[c * nlev..(c + 1) * nlev],
            Space::Main,
            &stats,
        );
        *results[c].lock().unwrap() = ldm_col.iter().sum();
    });

    assert_eq!(stats.dma_transfers.load(Ordering::Relaxed), n_cols as u64);
    assert_eq!(
        stats.dma_bytes.load(Ordering::Relaxed),
        (n_cols * nlev * 8) as u64
    );
    for c in 0..n_cols {
        let expected: f64 = main_mem[c * nlev..(c + 1) * nlev].iter().sum();
        assert_eq!(*results[c].lock().unwrap(), expected);
    }
}

#[test]
fn ldm_budget_rejects_oversized_column_blocks() {
    let spec = SunwaySpec::next_gen();
    let mut arena = LdmArena::new(&spec);
    // 60-level column block of 40 f64 variables = 19.2 KB — fits.
    assert!(arena.alloc::<f64>(60 * 40).is_ok());
    // A full G6 cell block would not.
    assert!(arena.alloc::<f64>(40_962 * 30).is_err());
}

#[test]
fn bfs_reordering_improves_measured_ldcache_hits() {
    // §3.1.3's claim, measured: run the real edge→cell indirect stream of a
    // gradient kernel through the LDCache simulator under BFS vs random cell
    // ordering.
    use grist_mesh::{bfs_cell_order, HexMesh, Permutation};
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    use sunway_sim::LdCache;

    // G6: the 40,962-cell array (320 KB as f64) overflows the 128 KB
    // LDCache, so ordering decides the hit ratio.
    let mesh = HexMesh::build(6);
    let spec = SunwaySpec::next_gen();
    let stream = |perm: &Permutation| -> f64 {
        let mut cache = LdCache::sw26010p(&spec);
        for e in 0..mesh.n_edges() {
            let [c1, c2] = mesh.edge_cells[e];
            cache.access(perm.new_of_old[c1 as usize] as u64 * 8);
            cache.access((1 << 24) + perm.new_of_old[c2 as usize] as u64 * 8);
        }
        cache.hit_ratio()
    };
    let bfs = stream(&bfs_cell_order(&mesh, 0));
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let mut shuffled: Vec<u32> = (0..mesh.n_cells() as u32).collect();
    shuffled.shuffle(&mut rng);
    let random = stream(&Permutation::from_order(shuffled));
    assert!(
        bfs > random + 0.1,
        "BFS hit ratio {bfs:.3} must clearly beat random {random:.3}"
    );
    assert!(bfs > 0.8, "BFS stream should be cache-friendly: {bfs:.3}");
}

#[test]
fn mixed_precision_halves_modeled_memory_time_workspace_wide() {
    let spec = SunwaySpec::next_gen();
    let model = PerfModel::default();
    let k64 = to_spec("grad_ke", grad_kinetic_energy_cost::<f64>(122_880, 30));
    let k32 = to_spec("grad_ke", grad_kinetic_energy_cost::<f32>(122_880, 30));
    // Same flops, half the bytes.
    assert_eq!(k64.flops_per_point, k32.flops_per_point);
    let t64 = kernel_time(&k64, ExecTarget::CpeDpDst, &spec, &model);
    let t32 = kernel_time(&k32, ExecTarget::CpeMixDst, &spec, &model);
    assert!((1.4..2.3).contains(&(t64 / t32)), "MIX ratio {}", t64 / t32);
}
