//! Cross-crate integration tests of the parallel substrate: the SWGOMP job
//! server executing real dycore kernels, the distributed-rank shallow-water
//! run with gathered halo exchanges, and the parallel I/O path.

use grist_dycore::{Field2, SweSolver};
use grist_mesh::{HaloLayout, HexMesh, Partition};
use grist_runtime::{exchange_gathered, grouped_write, run_world, VarList};
use std::sync::atomic::Ordering;
use sunway_sim::{JobServer, Substrate};

/// Run the shallow-water TC2 case distributed over `n_ranks`, exchanging
/// halos every step, and compare the assembled field with a serial run.
fn distributed_swe_matches_serial(n_ranks: usize, steps: usize) {
    let level = 3;
    let dt = 400.0;

    // --- serial reference ---
    let mesh = HexMesh::build(level);
    let mut serial = SweSolver::<f64>::new(mesh.clone());
    let mut sstate = grist_dycore::swe::williamson_tc2::<f64>(&serial.mesh);
    for _ in 0..steps {
        serial.step_rk3(&mut sstate, dt);
    }

    // --- distributed run ---
    // Each rank holds the full-size arrays but only trusts its owned cells
    // (+ halos); the halo exchange keeps them consistent. A rank-local
    // correctness check: after the run, owned cells must match serial.
    let partition = Partition::build(&mesh, n_ranks, 2);
    // Depth must cover the RK3 stencil: exchange every step with deep halos.
    let layout = HaloLayout::build(&mesh, &partition, 4);

    let (results, _) = run_world(n_ranks, |mut ctx| {
        let mesh = HexMesh::build(level);
        let mut solver = SweSolver::<f64>::new(mesh);
        let mut state = grist_dycore::swe::williamson_tc2::<f64>(&solver.mesh);
        let locale = &layout.locales[ctx.rank];
        for step in 0..steps {
            solver.step_rk3(&mut state, dt);
            // Every rank computes the full state (shared-grid emulation), so
            // to prove the exchange really transports simulation data we
            // poison the halo cells and require the messages to restore them.
            let reference = state.h.clone();
            for (_, cells) in &locale.recv {
                for &c in cells {
                    state.h.set(0, c as usize, f64::NAN);
                }
            }
            let mut list = VarList::new();
            list.push("h", 1, state.h.as_mut_slice());
            exchange_gathered(&mut ctx, locale, &mut list, 100 + step as u32)
                .expect("all ranks register the same list");
            for (_, cells) in &locale.recv {
                for &c in cells {
                    let got = state.h.at(0, c as usize);
                    let want = reference.at(0, c as usize);
                    assert!(
                        (got - want).abs() < 1e-12 * want.abs().max(1.0),
                        "halo cell {c} not restored: {got} vs {want}"
                    );
                }
            }
        }
        // Return owned-cell h values.
        locale
            .owned_cells
            .iter()
            .map(|&c| (c, state.h.at(0, c as usize)))
            .collect::<Vec<_>>()
    });

    // Assemble and compare.
    let mut assembled = vec![f64::NAN; mesh.n_cells()];
    for rank_vals in &results {
        for &(c, v) in rank_vals {
            assembled[c as usize] = v;
        }
    }
    for (c, &a) in assembled.iter().enumerate() {
        let s = sstate.h.at(0, c);
        assert!(
            (a - s).abs() < 1e-9 * s.abs().max(1.0),
            "cell {c}: distributed {a} vs serial {s}"
        );
    }
}

#[test]
fn distributed_swe_agrees_with_serial_4_ranks() {
    distributed_swe_matches_serial(4, 5);
}

#[test]
fn distributed_swe_agrees_with_serial_7_ranks() {
    distributed_swe_matches_serial(7, 3);
}

#[test]
fn job_server_executes_a_real_divergence_kernel() {
    // Map a dycore-style edge loop onto the CPE job server and compare with
    // the substrate-dispatched operator.
    let mesh = HexMesh::build(3);
    let geom: grist_dycore::ScaledGeometry<f64> = grist_dycore::ScaledGeometry::new(
        &mesh,
        grist_mesh::EARTH_RADIUS_M,
        grist_mesh::EARTH_OMEGA,
    );
    let nlev = 8;
    let flux = Field2::<f64>::from_fn(nlev, mesh.n_edges(), |k, e| ((e * 3 + k) % 17) as f64 - 8.0);
    let mut expected = Field2::<f64>::zeros(nlev, mesh.n_cells());
    grist_dycore::operators::divergence(&Substrate::serial(), &mesh, &geom, &flux, &mut expected);

    // SWGOMP path: one team-head offload over cells ("!$omp target ... do").
    let server = JobServer::new(16);
    let out: Vec<std::sync::Mutex<Vec<f64>>> = (0..mesh.n_cells())
        .map(|_| std::sync::Mutex::new(vec![0.0; nlev]))
        .collect();
    server.target_parallel_for(mesh.n_cells(), 32, &|c| {
        let mut col = vec![0.0f64; nlev];
        let rng = mesh.cell_edges.row_range(c);
        for (k, &e) in mesh.cell_edges.row(c).iter().enumerate() {
            let w = geom.cell_edge_sign[rng.start + k] * geom.edge_le[e as usize];
            for (lev, item) in col.iter_mut().enumerate() {
                *item += flux.at(lev, e as usize) * w;
            }
        }
        let ia = geom.inv_cell_area[c];
        for v in col.iter_mut() {
            *v *= ia;
        }
        *out[c].lock().unwrap() = col;
    });
    assert_eq!(
        server.stats.spawned_by_cpe.load(Ordering::Relaxed),
        (mesh.n_cells() as u64).div_ceil(32)
    );
    for (c, cell) in out.iter().enumerate() {
        let got = cell.lock().unwrap();
        for k in 0..nlev {
            assert!(
                (got[k] - expected.at(k, c)).abs() < 1e-12,
                "cell {c} lev {k}: {} vs {}",
                got[k],
                expected.at(k, c)
            );
        }
    }
}

#[test]
fn grouped_io_roundtrips_a_partitioned_field() {
    let mesh = HexMesh::build(2);
    let n_ranks = 6;
    let partition = Partition::build(&mesh, n_ranks, 1);
    let truth: Vec<f64> = (0..mesh.n_cells()).map(|c| (c as f64).sin()).collect();
    let truth_ref = &truth;
    let partition_ref = &partition;

    let (results, _) = run_world(n_ranks, move |mut ctx| {
        let owned = partition_ref.cells_of(ctx.rank);
        let data: Vec<f64> = owned.iter().map(|&c| truth_ref[c as usize]).collect();
        // One record per rank; offset = first owned cell (deterministic).
        let offset = owned.first().copied().unwrap_or(0) as u64;
        let recs = grouped_write(&mut ctx, 3, offset, &data, 9);
        (owned, recs)
    });

    // Leaders hold the records of their whole group.
    let mut n_records = 0;
    for (_, recs) in results.iter() {
        if let Some(r) = recs {
            n_records += r.len();
        }
    }
    assert_eq!(
        n_records, n_ranks,
        "every rank's record must reach a leader"
    );
}
