//! Conformance tests for the scenario regression matrix.
//!
//! Replays every committed `scenarios/*.json` pin through the
//! [`ScenarioRunner`] and fails on any bitwise drift — the same check the
//! `scenario_gate` bin runs in CI — plus the surrounding contracts: strict
//! round-tripping of the document format, typed errors (naming the field)
//! for malformed input, drift detection on a perturbed golden hash, and
//! pinned golden hashes for the initial-condition library under both
//! substrate targets.

use grist_core::checkpoint::hash_f64_bits;
use grist_core::{
    add_baroclinic_jet, add_supercell_patch, add_tropical_cyclone, parse_scenario_file,
    scenario_file_json, GristModel, RunConfig, ScenarioError, ScenarioRunner, TropicalCyclone,
};
use grist_dycore::swe::SweSolver;
use grist_dycore::swe_cases::{install_tc5_mountain, williamson_tc5, williamson_tc6};
use grist_mesh::HexMesh;
use std::fs;
use std::path::PathBuf;
use sunway_sim::Substrate;

fn scenario_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("scenarios")
}

fn committed_scenarios() -> Vec<(PathBuf, String)> {
    let mut files: Vec<PathBuf> = fs::read_dir(scenario_dir())
        .expect("scenarios/ directory")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    files.sort();
    assert!(
        files.len() >= 6,
        "the committed matrix must hold at least 6 scenarios, found {}",
        files.len()
    );
    files
        .into_iter()
        .map(|p| {
            let text = fs::read_to_string(&p).expect("readable scenario");
            (p, text)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// The matrix itself
// ---------------------------------------------------------------------------

#[test]
fn committed_matrix_replays_bitwise() {
    let runner = ScenarioRunner::new();
    let mut names = Vec::new();
    for (path, text) in committed_scenarios() {
        let (config, golden) =
            parse_scenario_file(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let golden = golden.unwrap_or_else(|| {
            panic!(
                "{}: committed scenarios must carry a golden pin",
                path.display()
            )
        });
        let run = runner
            .run(&config)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let drift = golden.diff(&run.artifact);
        assert!(
            drift.is_empty(),
            "{}: drift from golden pin:\n  {}",
            path.display(),
            drift.join("\n  ")
        );
        names.push(config.name);
    }
    // The matrix must keep its required coverage: a regional-refinement
    // scenario and an ML-vs-conventional ablation pair.
    assert!(names.iter().any(|n| n == "regional_refine"));
    assert!(names.iter().any(|n| n == "ablation_conventional"));
    assert!(names.iter().any(|n| n == "ablation_ml"));
}

#[test]
fn ablation_pair_differs_only_in_physics_and_diverges() {
    let read = |name: &str| {
        let text = fs::read_to_string(scenario_dir().join(format!("{name}.json"))).unwrap();
        parse_scenario_file(&text).unwrap()
    };
    let (conv, conv_gold) = read("ablation_conventional");
    let (ml, ml_gold) = read("ablation_ml");
    // Same experiment, one axis moved: everything but name and physics
    // matches, so any hash difference is attributable to the suite swap.
    assert_eq!(conv.case, ml.case);
    assert_eq!(conv.level, ml.level);
    assert_eq!(conv.nlev, ml.nlev);
    assert_eq!(conv.phy_steps, ml.phy_steps);
    assert_eq!(conv.precision, ml.precision);
    assert_ne!(conv.physics, ml.physics);
    let h = |g: &grist_core::ScenarioArtifact| g.hashes[0].1.clone();
    assert_ne!(
        h(&conv_gold.unwrap()),
        h(&ml_gold.unwrap()),
        "ML and conventional physics pinned identical states — the ablation measures nothing"
    );
}

#[test]
fn committed_files_are_serialization_fixed_points() {
    for (path, text) in committed_scenarios() {
        let (config, golden) = parse_scenario_file(&text).unwrap();
        let round = scenario_file_json(&config, golden.as_ref());
        assert_eq!(
            round,
            text,
            "{}: not a fixed point of scenario_file_json (regenerate with scenario_gate --update)",
            path.display()
        );
        let (config2, golden2) = parse_scenario_file(&round).unwrap();
        assert_eq!(config2, config);
        assert_eq!(golden2, golden);
    }
}

// ---------------------------------------------------------------------------
// Error paths: malformed pins fail loudly with the field named
// ---------------------------------------------------------------------------

#[test]
fn unknown_field_in_committed_pin_names_the_field() {
    let text = fs::read_to_string(scenario_dir().join("aqua_baseline.json")).unwrap();
    let bad = text.replace("\"precision\"", "\"precison\"");
    match parse_scenario_file(&bad) {
        Err(ScenarioError::UnknownField { field, .. }) => assert_eq!(field, "config.precison"),
        other => panic!("expected UnknownField naming config.precison, got {other:?}"),
    }
    match parse_scenario_file(&text.replace("\"schema\"", "\"schemas\"")) {
        Err(ScenarioError::UnknownField { field, .. }) => assert_eq!(field, "document.schemas"),
        other => panic!("{other:?}"),
    }
}

#[test]
fn malformed_documents_are_typed_errors_not_panics() {
    // Truncated JSON.
    let text = fs::read_to_string(scenario_dir().join("held_suarez.json")).unwrap();
    let truncated = &text[..text.len() / 2];
    assert!(matches!(
        parse_scenario_file(truncated),
        Err(ScenarioError::Parse(_))
    ));
    // Wrong schema tag.
    let wrong = text.replace("grist-scenario-v1", "grist-scenario-v0");
    match parse_scenario_file(&wrong) {
        Err(ScenarioError::BadValue { field, .. }) => assert_eq!(field, "document.schema"),
        other => panic!("{other:?}"),
    }
    // A string where a number belongs.
    let bad_level = text.replace("\"level\": 2", "\"level\": \"two\"");
    match parse_scenario_file(&bad_level) {
        Err(ScenarioError::BadValue { field, .. }) => assert_eq!(field, "config.level"),
        other => panic!("{other:?}"),
    }
    // A golden hash that is not 16 hex digits.
    let short_hash = regex_free_replace_first_hash(&text);
    match parse_scenario_file(&short_hash) {
        Err(ScenarioError::BadValue { field, .. }) => {
            assert!(field.starts_with("golden.hashes."), "{field}")
        }
        other => panic!("{other:?}"),
    }
}

/// Replace the first pinned 16-hex hash value with a too-short string.
fn regex_free_replace_first_hash(text: &str) -> String {
    let key = "\"state\": \"";
    let start = text.find(key).expect("a state hash") + key.len();
    let end = start + 16;
    format!("{}beef{}", &text[..start], &text[end..])
}

#[test]
fn perturbed_golden_hash_is_detected_as_drift() {
    // The deliberate-sabotage check: flip one hex digit of a committed pin
    // and the replay must FAIL. This is what makes the gate a gate.
    let text = fs::read_to_string(scenario_dir().join("aqua_baseline.json")).unwrap();
    let (config, golden) = parse_scenario_file(&text).unwrap();
    let mut golden = golden.unwrap();
    let original = golden.hashes[0].1.clone();
    let flipped = if original.as_bytes()[0] == b'0' {
        "1"
    } else {
        "0"
    };
    golden.hashes[0].1 = format!("{flipped}{}", &original[1..]);
    let run = ScenarioRunner::new().run(&config).unwrap();
    let drift = golden.diff(&run.artifact);
    assert_eq!(drift.len(), 1, "{drift:?}");
    assert!(drift[0].contains("hash state"), "{}", drift[0]);
}

// ---------------------------------------------------------------------------
// Golden hashes for the initial-condition library (satellite pins)
// ---------------------------------------------------------------------------

/// Pinned FNV-1a fingerprints of the seeded initial states. These change
/// ONLY when the case construction itself changes — and then the change
/// must be deliberate, reviewed, and re-pinned.
const TC5_INIT_HASH: &str = "4a5851c9dd675b9c";
const TC6_INIT_HASH: &str = "b74c8c06b006a459";
const TROPICAL_CYCLONE_HASH: &str = "9d89c7634bfa922a";
const BAROCLINIC_JET_HASH: &str = "74f5818afdb19526";
const SUPERCELL_HASH: &str = "056acbf53049f9a1";

fn substrates() -> [(&'static str, Substrate); 2] {
    [
        ("serial", Substrate::serial()),
        ("cpe_teams", Substrate::cpe_teams(8)),
    ]
}

#[test]
fn swe_initial_states_match_pins_on_every_substrate() {
    for (name, sub) in substrates() {
        let mesh = HexMesh::build(3);
        let mut solver = SweSolver::<f64>::with_substrate(mesh.clone(), sub.clone());
        let mut tc5 = williamson_tc5::<f64>(&mesh);
        install_tc5_mountain(&mut solver, &mut tc5);
        assert_eq!(
            format!(
                "{:016x}",
                hash_f64_bits(&[tc5.h.as_slice(), tc5.u.as_slice()])
            ),
            TC5_INIT_HASH,
            "williamson_tc5 initial state drifted ({name})"
        );
        let tc6 = williamson_tc6::<f64>(&mesh);
        assert_eq!(
            format!(
                "{:016x}",
                hash_f64_bits(&[tc6.h.as_slice(), tc6.u.as_slice()])
            ),
            TC6_INIT_HASH,
            "williamson_tc6 initial state drifted ({name})"
        );
    }
}

#[test]
fn coupled_case_library_matches_pins_on_every_substrate() {
    for (name, sub) in substrates() {
        let cfg = RunConfig::for_level(2, 6);
        let mut m = GristModel::<f64>::with_substrate(cfg.clone(), sub.clone());
        add_tropical_cyclone(&mut m, &TropicalCyclone::default());
        assert_eq!(
            format!("{:016x}", m.state_hash()),
            TROPICAL_CYCLONE_HASH,
            "add_tropical_cyclone drifted ({name})"
        );
        let mut m = GristModel::<f64>::with_substrate(cfg.clone(), sub.clone());
        add_baroclinic_jet(&mut m, 35.0, 1.0);
        assert_eq!(
            format!("{:016x}", m.state_hash()),
            BAROCLINIC_JET_HASH,
            "add_baroclinic_jet drifted ({name})"
        );
        let mut m = GristModel::<f64>::with_substrate(cfg.clone(), sub.clone());
        add_supercell_patch(&mut m, 35f64.to_radians(), (-97f64).to_radians());
        assert_eq!(
            format!("{:016x}", m.state_hash()),
            SUPERCELL_HASH,
            "add_supercell_patch drifted ({name})"
        );
    }
}
