//! Snapshot-isolation property test for the serving layer (DESIGN.md §12).
//!
//! While an ensemble advances concurrently on rank pools, every query
//! answered by the server must be attributable to **exactly one** published
//! epoch: the response's `(member, epoch)` appears exactly once in the
//! store's publish log and the response's `state_hash` equals that
//! publish's hash. A torn read — a query observing a member mid-`advance`,
//! or a half-invalidated cache — would either hash to a value never
//! published or mix two epochs' data. Exercised across `{Serial, CpeTeams}`
//! execution targets and `{f32, f64}` working precisions.

use grist_core::RunConfig;
use grist_dycore::Real;
use grist_serve::{
    default_suite, spawn_ensemble, EnsembleConfig, ForecastServer, PoolTarget, Product, Query,
    QueryEngine, Response, ServeConfig, SnapshotStore,
};
use std::collections::HashMap;
use std::sync::Arc;
use sunway_sim::Substrate;

const MEMBERS: usize = 3;
const POOLS: usize = 2;
const EPOCHS: usize = 4;

fn engine_substrate(target: PoolTarget) -> Substrate {
    match target {
        PoolTarget::Serial => Substrate::serial(),
        PoolTarget::CpeTeams(n) => Substrate::cpe_teams(n),
    }
}

fn no_torn_reads_under_concurrent_advance<R: Real>(target: PoolTarget) {
    let run = RunConfig::for_level(2, 6);
    let store = Arc::new(SnapshotStore::new(MEMBERS, 2 * EPOCHS));
    let ensemble = spawn_ensemble::<R>(
        EnsembleConfig {
            members: MEMBERS,
            rank_pools: POOLS,
            epochs: EPOCHS,
            dyn_steps_per_epoch: 2,
            run: run.clone(),
            perturb_scale: 1e-6,
            target,
        },
        Arc::clone(&store),
    );
    let engine = Arc::new(QueryEngine::<R>::new(
        Arc::clone(&store),
        run.clone(),
        engine_substrate(target),
        default_suite(run.nlev),
    ));
    // Wait until every member has an epoch-0 view (published before any
    // advance), then hammer the server while the ensemble keeps advancing.
    while (0..MEMBERS).any(|m| store.latest(m).is_none()) {
        std::thread::yield_now();
    }
    let server = Arc::new(ForecastServer::start(
        Arc::clone(&engine),
        ServeConfig {
            workers: 3,
            max_batch: 8,
        },
    ));
    let ncells = engine.n_cells();
    let clients: Vec<std::thread::JoinHandle<Vec<Response>>> = (0..4)
        .map(|client: usize| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                (0..30)
                    .map(|i| {
                        let product = match (client + i) % 3 {
                            0 => Product::Precip,
                            1 => Product::T2m,
                            _ => Product::ColumnState,
                        };
                        let q = Query::cell(
                            (client + i) % MEMBERS,
                            (client * 31 + i * 7) % ncells,
                            product,
                        );
                        server.query_blocking(q).expect("serving must not fail")
                    })
                    .collect()
            })
        })
        .collect();
    let responses: Vec<Response> = clients
        .into_iter()
        .flat_map(|c| c.join().expect("client panicked"))
        .collect();
    ensemble.join();
    assert_eq!(
        store.published_count(),
        MEMBERS * (EPOCHS + 1),
        "every member publishes every epoch"
    );

    // The property: each response matches exactly one published epoch.
    let log = store.published_log();
    let mut published: HashMap<(usize, u64), (u64, usize)> = HashMap::new();
    for &(member, epoch, hash) in &log {
        let entry = published.entry((member, epoch)).or_insert((hash, 0));
        entry.1 += 1;
    }
    assert_eq!(responses.len(), 4 * 30);
    for r in &responses {
        let (hash, count) = published
            .get(&(r.member, r.epoch))
            .unwrap_or_else(|| panic!("member {} epoch {} was never published", r.member, r.epoch));
        assert_eq!(
            *count, 1,
            "member {} epoch {} published once",
            r.member, r.epoch
        );
        assert_eq!(
            *hash, r.state_hash,
            "member {} epoch {}: response hash must be the published hash",
            r.member, r.epoch
        );
    }
    // The run was genuinely concurrent enough to be meaningful: responses
    // are pinned to real epochs, and the engine answered from at least the
    // initial epoch of every queried member.
    if let Ok(server) = Arc::try_unwrap(server) {
        server.shutdown();
    }
}

#[test]
fn no_torn_reads_serial_f64() {
    no_torn_reads_under_concurrent_advance::<f64>(PoolTarget::Serial);
}

#[test]
fn no_torn_reads_serial_f32() {
    no_torn_reads_under_concurrent_advance::<f32>(PoolTarget::Serial);
}

#[test]
fn no_torn_reads_cpe_teams_f64() {
    no_torn_reads_under_concurrent_advance::<f64>(PoolTarget::CpeTeams(4));
}

#[test]
fn no_torn_reads_cpe_teams_f32() {
    no_torn_reads_under_concurrent_advance::<f32>(PoolTarget::CpeTeams(4));
}
