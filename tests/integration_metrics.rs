//! Observability-layer guarantees: the metrics registry must describe the
//! same work regardless of execution target, round-trip losslessly through
//! its JSON export (the `BENCH_*.json` interchange format), and reset to a
//! clean slate. These invariants are what make the benchmark-baseline gate
//! in CI meaningful — a drifting or lossy registry would turn tolerance
//! checks into noise.

use grist_core::{GristModel, RunConfig};
use sunway_sim::{MetricsSnapshot, Substrate};

fn run_model(sub: Substrate) -> GristModel<f64> {
    let config = RunConfig::for_level(2, 10);
    let seconds = 16.0 * config.dt_dyn; // 16 dyn steps, ≥1 physics step
    let mut m = GristModel::<f64>::with_substrate(config, sub);
    m.advance(seconds);
    m
}

/// The logical work — which kernels ran, how often, over how many items —
/// is a property of the model, not of the execution target. Only wall
/// times and the offload counters (DMA, dispatches) may differ between
/// Serial and CpeTeams.
#[test]
fn kernel_calls_and_items_match_across_substrates() {
    let serial = run_model(Substrate::serial()).metrics_snapshot();
    let teams = run_model(Substrate::cpe_teams(16)).metrics_snapshot();

    let s_names: Vec<&String> = serial.kernels.keys().collect();
    let t_names: Vec<&String> = teams.kernels.keys().collect();
    assert_eq!(
        s_names, t_names,
        "substrates dispatched different kernel sets"
    );
    for (name, s) in &serial.kernels {
        let t = &teams.kernels[name];
        assert_eq!(s.calls, t.calls, "{name}: call count differs");
        assert_eq!(s.items, t.items, "{name}: item count differs");
    }
    // Span structure is identical too (same step → suite nesting).
    assert_eq!(
        serial.spans.keys().collect::<Vec<_>>(),
        teams.spans.keys().collect::<Vec<_>>()
    );
    for (path, s) in &serial.spans {
        assert_eq!(s.calls, teams.spans[path].calls, "span {path}");
    }
}

/// `GristModel::metrics_json` is the export the bench pipeline consumes:
/// parsing it back must reproduce the snapshot exactly (u64 counters
/// survive the f64 JSON number representation at these magnitudes).
#[test]
fn metrics_json_round_trips_exactly() {
    let m = run_model(Substrate::cpe_teams(16));
    let snap = m.metrics_snapshot();
    assert!(!snap.kernels.is_empty() && !snap.counters.is_empty());

    let parsed = MetricsSnapshot::from_json(&m.metrics_json()).expect("export must parse");
    assert_eq!(parsed, snap);

    // The offload counters the hardware model feeds are present by name.
    for key in ["substrate.dispatches", "substrate.items"] {
        assert!(
            snap.counters.contains_key(key),
            "missing counter {key}: {:?}",
            snap.counters.keys().collect::<Vec<_>>()
        );
    }
}

/// A registry holding non-finite gauge values must still export to JSON
/// and round-trip bit-exactly: gauges serialize their IEEE-754 bit pattern
/// (the pinned `"f64:<hex>"` convention in `sunway_sim::json`), so NaN
/// payloads and infinities survive the text format the `BENCH_*.json`
/// pipeline stores.
#[test]
fn metrics_json_round_trips_non_finite_gauges() {
    let m = run_model(Substrate::serial());
    let nan_payload = f64::from_bits(0x7ff8_0000_dead_beef);
    m.metrics().gauge_set("diag.cfl_max", f64::INFINITY);
    m.metrics().gauge_set("diag.blowup_residual", f64::NAN);
    m.metrics().gauge_set("diag.tagged_nan", nan_payload);
    m.metrics().gauge_set("diag.neg_inf", f64::NEG_INFINITY);

    let json = m.metrics_json();
    let parsed = MetricsSnapshot::from_json(&json).expect("non-finite export must parse");
    assert_eq!(parsed, m.metrics_snapshot());
    assert_eq!(parsed.gauge("diag.cfl_max"), Some(f64::INFINITY));
    assert_eq!(parsed.gauge("diag.neg_inf"), Some(f64::NEG_INFINITY));
    assert_eq!(
        parsed.gauge("diag.tagged_nan").map(f64::to_bits),
        Some(nan_payload.to_bits()),
        "NaN payload bits must survive the JSON round-trip"
    );
    assert!(parsed.gauge("diag.blowup_residual").unwrap().is_nan());
}

/// Reset must empty every section — kernels, spans, and counters — so a
/// baseline captured after a warm-up window starts from zero, and the
/// registry must keep working afterwards.
#[test]
fn reset_clears_all_sections_and_registry_still_records() {
    let mut m = run_model(Substrate::cpe_teams(16));
    assert!(!m.metrics_snapshot().kernels.is_empty());

    m.metrics().reset();
    let cleared = m.metrics_snapshot();
    assert!(cleared.kernels.is_empty(), "kernels survived reset");
    assert!(cleared.spans.is_empty(), "spans survived reset");
    assert!(cleared.counters.is_empty(), "counters survived reset");

    m.advance(2.0 * 400.0);
    let again = m.metrics_snapshot();
    assert!(
        !again.kernels.is_empty(),
        "registry stopped recording after reset"
    );
}
