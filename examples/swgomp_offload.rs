//! The Fig. 4 / Fig. 5 story as a runnable demo: take the paper's example
//! kernel (`tend_grad_ke_at_edge`), run it serially "on the MPE", then
//! offload it through the SWGOMP job server — the `!$omp target` path where
//! a team-head CPE distributes the loop to its team — and through the
//! `workshare` array-op path (`kinetic_energy(:,:) = 0`).
//!
//! ```text
//! cargo run --release --example swgomp_offload
//! ```

use grist_dycore::operators::ScaledGeometry;
use grist_dycore::Field2;
use grist_mesh::{HexMesh, EARTH_OMEGA, EARTH_RADIUS_M};
use std::sync::atomic::Ordering;
use std::time::Instant;
use sunway_sim::JobServer;

fn main() {
    let mesh = HexMesh::build(5);
    let nlev = 30;
    let geom: ScaledGeometry<f64> = ScaledGeometry::new(&mesh, EARTH_RADIUS_M, EARTH_OMEGA);
    let ke = Field2::<f64>::from_fn(nlev, mesh.n_cells(), |k, c| {
        (c % 101) as f64 * 0.5 + k as f64
    });
    println!(
        "grid: G5 ({} cells, {} edges), {} levels",
        mesh.n_cells(),
        mesh.n_edges(),
        nlev
    );

    // --- "MPE" serial reference ---
    let mut serial = vec![0.0f64; mesh.n_edges() * nlev];
    let t0 = Instant::now();
    for e in 0..mesh.n_edges() {
        let [c1, c2] = mesh.edge_cells[e];
        for k in 0..nlev {
            serial[e * nlev + k] =
                -(ke.at(k, c2 as usize) - ke.at(k, c1 as usize)) * geom.inv_edge_de[e];
        }
    }
    let t_serial = t0.elapsed();

    // --- SWGOMP offload: !$omp target + !$omp do ---
    let server = JobServer::new(64); // the 64 CPEs of one core group
    let tend: Vec<std::sync::atomic::AtomicU64> = (0..mesh.n_edges() * nlev)
        .map(|_| std::sync::atomic::AtomicU64::new(0))
        .collect();
    let t1 = Instant::now();
    server.target_parallel_for(mesh.n_edges(), 256, &|e| {
        let [c1, c2] = mesh.edge_cells[e];
        for k in 0..nlev {
            let v = -(ke.at(k, c2 as usize) - ke.at(k, c1 as usize)) * geom.inv_edge_de[e];
            tend[e * nlev + k].store(v.to_bits(), Ordering::Relaxed);
        }
    });
    let t_offload = t1.elapsed();

    // Verify bit-exact agreement.
    for (i, s) in serial.iter().enumerate() {
        let v = f64::from_bits(tend[i].load(Ordering::Relaxed));
        assert_eq!(v, *s, "offloaded kernel diverged at {i}");
    }

    // --- workshare array op: kinetic_energy(:,:) = 0 ---
    let mut ke_zero = ke.clone();
    server.target_workshare_fill(ke_zero.as_mut_slice(), 0.0);
    assert!(ke_zero.as_slice().iter().all(|&x| x == 0.0));

    println!("\ntend_grad_ke_at_edge (the Fig. 4 kernel):");
    println!(
        "  serial (\"MPE\"):        {:>8.2} ms",
        t_serial.as_secs_f64() * 1e3
    );
    println!(
        "  SWGOMP target offload: {:>8.2} ms (bit-exact)",
        t_offload.as_secs_f64() * 1e3
    );
    println!("\nFig. 5 job-spawning hierarchy:");
    println!(
        "  jobs spawned by MPE:       {}",
        server.stats.spawned_by_mpe.load(Ordering::Relaxed)
    );
    println!(
        "  jobs spawned by team-head CPE: {}",
        server.stats.spawned_by_cpe.load(Ordering::Relaxed)
    );
    println!(
        "  chunks executed:           {}",
        server.stats.chunks_run.load(Ordering::Relaxed)
    );
    println!("\nworkshare fill (kinetic_energy(:,:) = 0): verified.");
    println!("ok: the OpenMP-offload programming model runs the paper's example kernel.");
}
