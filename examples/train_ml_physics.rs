//! The §3.2 training pipeline, end to end: generate coarse-grained training
//! data from a fine-grid conventional-physics run (four Table-1 forcing
//! regimes), train the 11-layer CNN tendency model and the 7-layer radiation
//! MLP with the paper's 7:1 day-wise split, and report skill.
//!
//! ```text
//! cargo run --release --example train_ml_physics
//! ```

use grist_core::datagen::{generate_training_data, train_ml_suite, DataGenConfig};

fn main() {
    let cfg = DataGenConfig {
        fine_level: 3,
        coarse_level: 2,
        nlev: 12,
        steps_per_day: 24, // hourly snapshots → exact 7:1 split
        days_per_period: 1,
        n_periods: 4, // all four Table-1 regimes
        cell_stride: 2,
    };
    println!(
        "Generating training data: L{} run coarse-grained to L{}, {} regimes × {} day(s) × {} steps",
        cfg.fine_level, cfg.coarse_level, cfg.n_periods, cfg.days_per_period, cfg.steps_per_day
    );
    for p in grist_ml::TRAINING_PERIODS.iter().take(cfg.n_periods) {
        println!(
            "  period: {:22} ONI {:+.1}  MJO {:.1}",
            p.name, p.oni, p.mjo
        );
    }
    let data = generate_training_data(&cfg);
    println!(
        "  {} CNN samples, {} MLP samples ({} levels)\n",
        data.cnn.len(),
        data.mlp.len(),
        data.nlev
    );

    println!("Training (Adam, minibatch 16)...");
    let (suite, report) = train_ml_suite(&data, 16, 20, 42);
    println!(
        "  train/test split:      {:.1}:1 (paper: 7:1)",
        report.train_test_ratio
    );
    println!(
        "  CNN  test MSE:         {:.5}  (untrained: {:.1}, {:.0}x better)",
        report.cnn_test_loss,
        report.cnn_test_loss_untrained,
        report.cnn_test_loss_untrained / report.cnn_test_loss
    );
    println!(
        "  MLP  test MSE:         {:.5}  (untrained: {:.1}, {:.0}x better)",
        report.mlp_test_loss,
        report.mlp_test_loss_untrained,
        report.mlp_test_loss_untrained / report.mlp_test_loss
    );
    println!(
        "  CNN architecture:      {} conv layers, {} parameters",
        suite.cnn.n_conv_layers(),
        suite.cnn.n_params()
    );
    println!(
        "  MLP architecture:      {} layers, {} parameters",
        suite.mlp.n_layers(),
        suite.mlp.n_params()
    );
    println!("  inference FLOPs/column: {}", suite.flops_per_column());

    assert!(report.cnn_test_loss < 0.5 * report.cnn_test_loss_untrained);
    assert!(report.mlp_test_loss < 0.5 * report.mlp_test_loss_untrained);
    println!("\nok: both ML-physics modules learned the conventional suite's residuals.");
}
