//! The "23.7" extreme-rainfall scenario (Fig. 7 of the paper) at example
//! scale: an idealized Doksuri-like super typhoon, integrated for a few
//! hours, with rainfall and vortex diagnostics printed as a lat–lon map.
//!
//! ```text
//! cargo run --release --example doksuri_typhoon
//! ```

use grist_core::{add_tropical_cyclone, bin_latlon, GristModel, RunConfig, TropicalCyclone};

fn main() {
    let config = RunConfig::for_level(4, 20);
    let mut model = GristModel::<f64>::new(config);
    let tc = TropicalCyclone {
        lat: 20f64.to_radians(),
        lon: 120f64.to_radians(),
        rmax: 0.08,
        vmax: 40.0,
        warm_core: 5.0,
        moist_core: 0.8,
    };
    add_tropical_cyclone(&mut model, &tc);
    println!(
        "Doksuri-like idealized typhoon at ({:.0}N, {:.0}E), vmax {} m/s, level {} mesh",
        tc.lat.to_degrees(),
        tc.lon.to_degrees(),
        tc.vmax,
        model.config.level
    );

    let hours = 6.0;
    model.advance(hours * 3600.0);

    // Rainfall map around the storm (ASCII shading, coarse lat-lon bins).
    let rain = model.precip_accum.clone();
    let grid = bin_latlon(&model.solver.mesh, &rain, 24, 48);
    let max_rain = rain.iter().cloned().fold(0.0f64, f64::max);
    println!("\naccumulated rain after {hours} h (max {max_rain:.1} mm); storm sector map:");
    let shades = [' ', '.', ':', 'o', 'O', '#'];
    // Rows from north to south over 0–50N; columns 90–150E.
    for i in (12..19).rev() {
        let mut line = String::new();
        for &v in &grid[i][36..45] {
            let s = ((v / max_rain.max(1e-9) * (shades.len() - 1) as f64) as usize)
                .min(shades.len() - 1);
            line.push(shades[s]);
            line.push(shades[s]);
        }
        println!("  {line}");
    }

    // Storm-core diagnostics.
    let center = grist_mesh::Vec3::new(
        tc.lat.cos() * tc.lon.cos(),
        tc.lat.cos() * tc.lon.sin(),
        tc.lat.sin(),
    );
    let mesh = &model.solver.mesh;
    let nlev = model.config.nlev;
    let mut vmax_now = 0.0f64;
    for e in 0..mesh.n_edges() {
        if mesh.edge_mid[e].arc_dist(center) < 4.0 * tc.rmax {
            vmax_now = vmax_now.max(model.state.u.at(nlev - 1, e).abs());
        }
    }
    let mut rain_core = 0.0f64;
    let mut rain_far = 0.0f64;
    let (mut n_core, mut n_far) = (0, 0);
    for (c, &r) in rain.iter().enumerate() {
        let d = mesh.cell_xyz[c].arc_dist(center);
        if d < 3.0 * tc.rmax {
            rain_core += r;
            n_core += 1;
        } else if d > 1.0 {
            rain_far += r;
            n_far += 1;
        }
    }
    println!("\nmax surface wind near core: {vmax_now:.1} m/s");
    println!(
        "mean rain: storm core {:.2} mm vs far field {:.3} mm",
        rain_core / n_core as f64,
        rain_far / n_far as f64
    );
    assert!(
        rain_core / n_core as f64 > 3.0 * (rain_far / n_far as f64),
        "the typhoon should dominate the rainfall field"
    );
    println!("ok: the rain band is concentrated around the typhoon, as in Fig. 7.");
}
