//! The paper's headline projection: what does it take to run 1 km (G12)
//! global simulations at year-scale speed on the next-generation Sunway?
//! Walks the full machinery — architecture constants, weak and strong
//! scaling, and the 34-million-core endpoint.
//!
//! ```text
//! cargo run --release --example scaling_projection
//! ```

use grist_runtime::scaling::{table2_grids, weak_scaling_ladder, Scheme, SdpdModel};
use sunway_sim::SunwaySpec;

fn main() {
    let spec = SunwaySpec::next_gen();
    println!("next-generation Sunway (modeled):");
    println!(
        "  nodes: {}  cores/node: {}  total cores: {}",
        spec.nodes,
        spec.cores_per_node(),
        spec.total_cores()
    );
    println!(
        "  per CG: 1 MPE + {} CPEs, {} KB LDM ({} KB as {}-way LDCache), {:.1} GB/s DDR",
        spec.cpes_per_cg,
        spec.ldm_bytes / 1024,
        spec.ldcache_bytes / 1024,
        spec.ldcache_ways,
        spec.ddr_bandwidth / 1e9
    );
    println!(
        "  network: {}-node supernodes, {:.1}:1 oversubscribed fat tree\n",
        spec.supernode_size, spec.oversubscription
    );

    let model = SdpdModel::default();
    let grids = table2_grids();
    let mix_ml = Scheme {
        mixed: true,
        ml_physics: true,
    };

    println!("weak scaling (MIX-ML), ~320 cells per core group:");
    for (label, procs) in weak_scaling_ladder() {
        let g = grids.iter().find(|g| g.label == label).unwrap();
        let r = model.project(g, mix_ml, procs);
        println!(
            "  {label:>4} on {procs:>6} CGs ({:>8} cores): {:>6.0} SDPD, comm {:>2.0}%",
            procs * 65,
            r.sdpd,
            r.comm_fraction * 100.0
        );
    }

    let g12 = grids.iter().find(|g| g.label == "G12").unwrap();
    let g11s = grids.iter().find(|g| g.label == "G11S").unwrap();
    let top = 524_288;
    let r12 = model.project(g12, mix_ml, top);
    let r11 = model.project(g11s, mix_ml, top);
    println!(
        "\nheadline endpoints at {top} processes = {} cores:",
        top * 65
    );
    println!(
        "  G11S (3 km): {:>5.0} SDPD = {:.2} SYPD   [paper: 491 SDPD]",
        r11.sdpd,
        r11.sdpd / 365.0
    );
    println!(
        "  G12  (1 km): {:>5.0} SDPD = {:.2} SYPD   [paper: 181 SDPD ≈ 0.5 SYPD]",
        r12.sdpd,
        r12.sdpd / 365.0
    );
    println!("\nper-sim-day budget at the G12 endpoint:");
    println!(
        "  dynamics {:.0}s | tracers {:.0}s | physics {:.0}s | communication {:.0}s",
        r12.dyn_s, r12.tracer_s, r12.physics_s, r12.comm_s
    );
    assert!(r12.sdpd > 100.0, "1 km year-scale projection collapsed");
    println!("\nok: the modeled system reaches year-scale 1 km simulation speed.");
}
