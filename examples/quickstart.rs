//! Quickstart: build a coarse aqua-planet GRIST-rs model, run six hours of
//! coupled dynamics + physics, and print a handful of diagnostics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use grist_core::{GristModel, RunConfig};

fn main() {
    // Grid level 3 (~960 km cells), 15 layers — a laptop-scale analogue of
    // the paper's G6 demo configuration (demo-g6-aqua).
    let config = RunConfig::for_level(3, 15);
    println!(
        "GRIST-rs quickstart: level {} ({} layers), scheme {}",
        config.level,
        config.nlev,
        config.scheme_label()
    );
    let mut model = GristModel::<f64>::new(config);
    println!(
        "mesh: {} cells / {} edges / {} vertices",
        model.n_cells(),
        model.solver.mesh.n_edges(),
        model.solver.mesh.n_verts()
    );

    let hours = 6.0;
    let sdpd = model.measure_sdpd(hours * 3600.0);
    let ps = model.surface_pressure();
    let ps_mean = ps.iter().sum::<f64>() / ps.len() as f64;
    let umax = model
        .state
        .u
        .as_slice()
        .iter()
        .fold(0.0f64, |a, &b| a.max(b.abs()));

    println!("\nafter {hours} simulated hours:");
    println!("  mean surface dry pressure: {:.1} hPa", ps_mean / 100.0);
    println!("  max |wind|:                {umax:.2} m/s");
    println!(
        "  mean precip rate:          {:.3} mm/day",
        model.mean_precip_rate()
    );
    println!(
        "  measured speed:            {sdpd:.0} SDPD ({:.2} SYPD)",
        sdpd / 365.0
    );
    assert!(model.state.u.as_slice().iter().all(|x| x.is_finite()));
    println!("\nok: coupled model ran stably.");
}
