//! Conventional vs ML physics in a coupled "climate" run (the Fig. 8 story
//! at example scale): train the ML suite, then run both configurations side
//! by side and compare the rain bands and stability.
//!
//! ```text
//! cargo run --release --example climate_ml_vs_phys
//! ```

use grist_core::datagen::{generate_training_data, train_ml_suite, DataGenConfig};
use grist_core::{GristModel, RunConfig};

fn zonal_bands(model: &GristModel<f64>, field: &[f64], nbands: usize) -> Vec<f64> {
    let mesh = &model.solver.mesh;
    let mut sum = vec![0.0; nbands];
    let mut wgt = vec![0.0; nbands];
    for (c, &v) in field.iter().enumerate() {
        let i = (((model.lats[c] / std::f64::consts::PI + 0.5) * nbands as f64) as usize)
            .min(nbands - 1);
        sum[i] += v * mesh.cell_area[c];
        wgt[i] += mesh.cell_area[c];
    }
    sum.iter()
        .zip(&wgt)
        .map(|(s, w)| if *w > 0.0 { s / w } else { 0.0 })
        .collect()
}

fn main() {
    println!("Training the ML physics suite (short pipeline)...");
    let data = generate_training_data(&DataGenConfig {
        fine_level: 3,
        coarse_level: 2,
        nlev: 12,
        steps_per_day: 24,
        days_per_period: 1,
        n_periods: 2,
        cell_stride: 2,
    });
    let (suite, report) = train_ml_suite(&data, 16, 20, 11);
    println!(
        "  CNN test MSE {:.4}, MLP test MSE {:.4}\n",
        report.cnn_test_loss, report.mlp_test_loss
    );

    let hours = 12.0;
    let run = |ml: bool| -> (GristModel<f64>, Vec<f64>) {
        let mut m = GristModel::<f64>::new(RunConfig::for_level(3, 12));
        if ml {
            m.set_ml_suite(suite.clone());
        }
        m.advance(hours * 3600.0);
        let rain = m.precip_accum.clone();
        (m, rain)
    };

    println!("Running {hours} h with each suite at level 3...");
    let (m_conv, rain_conv) = run(false);
    let (m_ml, rain_ml) = run(true);

    let bands = 10;
    let zc = zonal_bands(&m_conv, &rain_conv, bands);
    let zm = zonal_bands(&m_ml, &rain_ml, bands);
    println!("\nzonal-mean accumulated rain (mm), south → north:");
    println!("  lat band | conventional | ML-physics");
    for i in 0..bands {
        let lat0 = -90.0 + 180.0 * i as f64 / bands as f64;
        let lat1 = lat0 + 180.0 / bands as f64;
        println!(
            "  {lat0:>4.0}..{lat1:>3.0} | {:>12.3} | {:>10.3}",
            zc[i], zm[i]
        );
    }

    // Both suites should put their rain maximum in the deep tropics.
    let argmax = |z: &[f64]| {
        z.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0
    };
    let (ic, im) = (argmax(&zc), argmax(&zm));
    println!("\nrain-band peak band: conventional {ic}, ML {im} (tropics = bands 4–5)");
    assert!(
        (3..=6).contains(&ic) && (3..=6).contains(&im),
        "rain band must be tropical"
    );
    assert!(
        m_ml.state.u.as_slice().iter().all(|x| x.is_finite()),
        "ML run must stay stable"
    );
    println!(
        "ok: both suites produce a tropical rain band and stable integrations (Fig. 8 shape)."
    );
}
