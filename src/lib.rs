//! Umbrella crate for the GRIST-rs reproduction of the PPoPP '25 paper
//! "An AI-Enhanced 1km-Resolution Seamless Global Weather and Climate Model
//! to Achieve Year-Scale Simulation Speed using 34 Million Cores".
//!
//! This crate only re-exports the workspace members so that the repository's
//! `examples/` and `tests/` directories can reach every subsystem through a
//! single dependency. The real functionality lives in the `crates/*` members:
//!
//! * [`grist_mesh`] — icosahedral hexagonal C-grid, partitioner, reordering.
//! * [`grist_dycore`] — nonhydrostatic dynamical core with mixed precision.
//! * [`grist_physics`] — conventional physics suite (radiation, microphysics, …).
//! * [`grist_ml`] — the AI-enhanced physics suite (CNN tendencies, MLP radiation).
//! * [`sunway_sim`] — simulated SW26010P architecture and SWGOMP runtime.
//! * [`grist_runtime`] — rank world, halo exchange, fat-tree network model.
//! * [`grist_core`] — the coupled model driver and experiment configurations.

pub use grist_core;
pub use grist_dycore;
pub use grist_mesh;
pub use grist_ml;
pub use grist_physics;
pub use grist_runtime;
pub use sunway_sim;
