#!/usr/bin/env bash
# Run the pinned smoke benchmark suite (Fig. 9 kernel model, Fig. 10/11
# scaling projections, and the live coupled model on the CPE-teams
# substrate) and write the machine-readable document to BENCH_0002.json at
# the repo root (override with $1). The document's "trace" section carries
# the tracing-overhead measurement; bench_smoke itself fails when disabled
# tracing costs >= 1% of the smoke window, and bench_compare re-checks the
# same absolute budget. Compare against a committed baseline with:
#   cargo run --release -p grist-bench --bin bench_compare -- \
#       BENCH_0002.json new.json --tolerance 10
# Everything runs offline (see README "Offline builds").
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_0002.json}"

echo "== bench smoke -> ${out} =="
cargo run --release -p grist-bench --bin bench_smoke -- "${out}"
