#!/usr/bin/env bash
# Regenerate the committed benchmark baselines:
#   BENCH_0002.json    — pinned smoke suite (Fig. 9 kernel model, Fig. 10/11
#                        scaling projections, live coupled model on the
#                        CPE-teams substrate; override the path with $1)
#   BENCH_scaling.json — halo-overlap gate + counter-calibrated SDPD
#                        weak/strong-scaling projections (bench_scaling)
#   BENCH_serve.json   — serving layer: batched-vs-per-query dispatch with
#                        bitwise checkpoint verification, plus traffic
#                        latency/qps under the thread-pool front-end
#                        (bench_serve; gated >= 2x batched speedup)
# The smoke document's "trace" section carries the tracing-overhead
# measurement; bench_smoke itself fails when disabled tracing costs >= 1%
# of the smoke window, and bench_compare re-checks the same absolute
# budget. bench_scaling fails unless the overlapped exchange is bitwise
# identical to the synchronous one and cuts >= 30% of the traced halo wait
# time. Compare against a committed baseline with:
#   cargo run --release -p grist-bench --bin bench_compare -- \
#       BENCH_0002.json new.json --tolerance 10
# Everything runs offline (see README "Offline builds").
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_0002.json}"

echo "== bench smoke -> ${out} =="
cargo run --release -p grist-bench --bin bench_smoke -- "${out}"

echo "== bench scaling -> BENCH_scaling.json =="
cargo run --release -p grist-bench --bin bench_scaling -- BENCH_scaling.json

echo "== bench serve -> BENCH_serve.json =="
cargo run --release -p grist-bench --bin bench_serve -- BENCH_serve.json
