#!/usr/bin/env bash
# Local CI gate: build, test, lint, and format-check the whole workspace.
# Everything runs offline (see README "Offline builds").
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release --workspace --all-targets

echo "== cargo test =="
cargo test --workspace --release -q

echo "== cargo clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo doc =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== chaos suite (3 fixed fault seeds) =="
for seed in 42 7 1234; do
    echo "-- CHAOS_SEED=$seed"
    CHAOS_SEED=$seed cargo test --release -q --test integration_chaos
    CHAOS_SEED=$seed cargo run --release -p grist-bench --bin chaos_smoke
done

echo "== kernel matrix (scalar/simd x sync/double vs scalar-sync oracle) =="
for simd in scalar simd; do
    for dma in sync double; do
        echo "-- GRIST_SIMD=$simd GRIST_DMA=$dma"
        GRIST_SIMD=$simd GRIST_DMA=$dma \
            cargo test --release -q -p grist-core --test integration_kernels
    done
done

echo "== trace report (traced multi-rank chaos run + attribution) =="
cargo run --release -p grist-bench --bin trace_report -- \
    target/trace.json target/trace_report.json

echo "== scenario regression matrix (bitwise golden-hash gate) =="
cargo run --release -p grist-bench --bin scenario_gate -- --out target/scenarios
cargo test --release -q --test integration_scenarios

echo "== bench smoke vs committed baseline =="
cargo run --release -p grist-bench --bin bench_smoke -- target/bench_smoke.json
cargo run --release -p grist-bench --bin bench_compare -- \
    BENCH_0002.json target/bench_smoke.json --tolerance 10

echo "== bench ml (batched >= 3x per-column, simd gemm >= 1.5x scalar) vs committed baseline =="
cargo run --release -p grist-bench --bin bench_ml -- target/bench_ml.json
cargo run --release -p grist-bench --bin bench_compare -- \
    BENCH_0004.json target/bench_ml.json --tolerance 10

echo "== bench partition (edge-cut / halo-surface quality) vs committed baseline =="
cargo run --release -p grist-bench --bin bench_partition -- target/bench_partition.json
cargo run --release -p grist-bench --bin bench_compare -- \
    BENCH_partition.json target/bench_partition.json --tolerance 10

echo "== serving layer (snapshot isolation + batched >= 2x per-query) vs committed baseline =="
cargo test --release -q --test integration_serve
cargo run --release -p grist-bench --bin bench_serve -- target/bench_serve.json
cargo run --release -p grist-bench --bin bench_compare -- \
    BENCH_serve.json target/bench_serve.json --tolerance 10

echo "== telemetry plane (SLO + health-alert + disabled-overhead gates) =="
cargo run --release -p grist-bench --bin obs_report -- \
    target/obs_dashboard.json target/obs_report.md

echo "== bench scaling (overlap gate + SDPD projections) vs committed baseline =="
cargo run --release -p grist-bench --bin bench_scaling -- target/bench_scaling.json
cargo run --release -p grist-bench --bin bench_compare -- \
    BENCH_scaling.json target/bench_scaling.json --tolerance 10

echo "== scaling figures (10, 11) regenerate =="
cargo run --release -p grist-bench --bin fig10_weak_scaling > /dev/null
cargo run --release -p grist-bench --bin fig11_strong_scaling > /dev/null

echo "All checks passed."
