#!/usr/bin/env bash
# Local CI gate: build, test, lint, and format-check the whole workspace.
# Everything runs offline (see README "Offline builds").
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release --workspace --all-targets

echo "== cargo test =="
cargo test --workspace --release -q

echo "== cargo clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --check

echo "All checks passed."
