//! Criterion benchmarks of the substrate layers: mesh generation and
//! partitioning, the gathered halo exchange, hyperdiffusion, the SWGOMP job
//! server, and the DMA/cache simulators themselves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grist_dycore::diffusion::{hyperdiffuse_cell, max_stable_nu4};
use grist_dycore::operators::ScaledGeometry;
use grist_dycore::Field2;
use grist_mesh::{bfs_cell_order, HaloLayout, HexMesh, Partition, EARTH_OMEGA, EARTH_RADIUS_M};
use grist_runtime::{exchange_gathered, run_world, VarList};
use sunway_sim::{simulate_streams, JobServer, LdCache, SunwaySpec};

fn bench_mesh_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("mesh");
    g.sample_size(10);
    for level in [3u32, 4, 5] {
        g.bench_with_input(BenchmarkId::new("build", level), &level, |b, &l| {
            b.iter(|| HexMesh::build(l))
        });
    }
    let mesh = HexMesh::build(4);
    g.bench_function("partition_16/G4", |b| {
        b.iter(|| Partition::build(&mesh, 16, 2))
    });
    g.bench_function("bfs_order/G4", |b| b.iter(|| bfs_cell_order(&mesh, 0)));
    g.finish();
}

fn bench_halo_exchange(c: &mut Criterion) {
    let mesh = HexMesh::build(4);
    let partition = Partition::build(&mesh, 4, 1);
    let layout = HaloLayout::build(&mesh, &partition, 1);
    let n = mesh.n_cells();
    let mut g = c.benchmark_group("exchange");
    g.sample_size(10);
    g.bench_function("gathered_4ranks_3vars/G4", |b| {
        b.iter(|| {
            let layout = &layout;
            run_world(4, move |mut ctx| {
                let locale = &layout.locales[ctx.rank];
                let mut f1 = vec![1.0f64; n * 4];
                let mut f2 = vec![2.0f64; n];
                let mut f3 = vec![3.0f64; n * 2];
                let mut list = VarList::new();
                list.push("a", 4, &mut f1);
                list.push("b", 1, &mut f2);
                list.push("c", 2, &mut f3);
                exchange_gathered(&mut ctx, locale, &mut list, 1);
            })
        })
    });
    g.finish();
}

fn bench_hyperdiffusion(c: &mut Criterion) {
    let mesh = HexMesh::build(4);
    let geom: ScaledGeometry<f64> = ScaledGeometry::new(&mesh, EARTH_RADIUS_M, EARTH_OMEGA);
    let dt = 300.0;
    let nu4 = 0.5 * max_stable_nu4(&mesh, EARTH_RADIUS_M, dt);
    let mut h = Field2::from_fn(30, mesh.n_cells(), |k, cl| ((cl + k) % 7) as f64);
    let mut l1 = Field2::zeros(30, mesh.n_cells());
    let mut l2 = Field2::zeros(30, mesh.n_cells());
    let mut g = c.benchmark_group("diffusion");
    g.sample_size(20);
    g.bench_function("hyperdiffuse_30lev/G4", |b| {
        b.iter(|| hyperdiffuse_cell(&mesh, &geom, &mut h, nu4, dt, &mut l1, &mut l2))
    });
    g.finish();
}

fn bench_swgomp(c: &mut Criterion) {
    let server = JobServer::new(16);
    let mut g = c.benchmark_group("swgomp");
    g.sample_size(20);
    g.bench_function("target_parallel_for_64k", |b| {
        b.iter(|| {
            server.target_parallel_for(65_536, 1024, &|i| {
                std::hint::black_box(i * i);
            })
        })
    });
    g.bench_function("workshare_fill_1M", |b| {
        let mut data = vec![0.0f64; 1 << 20];
        b.iter(|| server.target_workshare_fill(&mut data, 1.5))
    });
    g.finish();
}

fn bench_simulators(c: &mut Criterion) {
    let spec = SunwaySpec::next_gen();
    let mut g = c.benchmark_group("simulators");
    g.sample_size(20);
    g.bench_function("ldcache_7stream_20k", |b| {
        let bases: Vec<u64> = (0..7).map(|k| k * (1 << 20)).collect();
        b.iter(|| {
            let mut cache = LdCache::sw26010p(&spec);
            simulate_streams(&mut cache, &bases, 8, 20_000)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_mesh_build,
    bench_halo_exchange,
    bench_hyperdiffusion,
    bench_swgomp,
    bench_simulators
);
criterion_main!(benches);
