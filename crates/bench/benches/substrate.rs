//! Benchmarks of the substrate layers: mesh generation and partitioning,
//! the gathered halo exchange, hyperdiffusion, the SWGOMP job server, and
//! the DMA/cache simulators themselves. Uses the offline self-timed
//! harness in `grist_bench::Bencher`.

use grist_bench::Bencher;
use grist_dycore::diffusion::{hyperdiffuse_cell, max_stable_nu4};
use grist_dycore::operators::ScaledGeometry;
use grist_dycore::Field2;
use grist_mesh::{bfs_cell_order, HaloLayout, HexMesh, Partition, EARTH_OMEGA, EARTH_RADIUS_M};
use grist_runtime::{exchange_gathered, run_world, VarList};
use sunway_sim::{simulate_streams, JobServer, LdCache, Substrate, SunwaySpec};

fn bench_mesh_build() {
    let mut g = Bencher::group("mesh");
    for level in [3u32, 4, 5] {
        g.bench(&format!("build/G{level}"), || {
            HexMesh::build(level);
        });
    }
    let mesh = HexMesh::build(4);
    g.bench("partition_16/G4", || {
        Partition::build(&mesh, 16, 2);
    });
    g.bench("bfs_order/G4", || {
        bfs_cell_order(&mesh, 0);
    });
    g.finish();
}

fn bench_halo_exchange() {
    let mesh = HexMesh::build(4);
    let partition = Partition::build(&mesh, 4, 1);
    let layout = HaloLayout::build(&mesh, &partition, 1);
    let n = mesh.n_cells();
    let mut g = Bencher::group("exchange");
    g.bench("gathered_4ranks_3vars/G4", || {
        let layout = &layout;
        run_world(4, move |mut ctx| {
            let locale = &layout.locales[ctx.rank];
            let mut f1 = vec![1.0f64; n * 4];
            let mut f2 = vec![2.0f64; n];
            let mut f3 = vec![3.0f64; n * 2];
            let mut list = VarList::new();
            list.push("a", 4, &mut f1);
            list.push("b", 1, &mut f2);
            list.push("c", 2, &mut f3);
            exchange_gathered(&mut ctx, locale, &mut list, 1).expect("uniform lists");
        });
    });
    g.finish();
}

fn bench_hyperdiffusion() {
    let mesh = HexMesh::build(4);
    let geom: ScaledGeometry<f64> = ScaledGeometry::new(&mesh, EARTH_RADIUS_M, EARTH_OMEGA);
    let dt = 300.0;
    let nu4 = 0.5 * max_stable_nu4(&mesh, EARTH_RADIUS_M, dt);
    let mut h = Field2::from_fn(30, mesh.n_cells(), |k, cl| ((cl + k) % 7) as f64);
    let mut l1 = Field2::zeros(30, mesh.n_cells());
    let mut l2 = Field2::zeros(30, mesh.n_cells());
    let mut g = Bencher::group("diffusion");
    for (label, sub) in [
        ("serial", Substrate::serial()),
        ("cpe64", Substrate::cpe_teams(64)),
    ] {
        g.bench(&format!("hyperdiffuse_30lev/G4/{label}"), || {
            hyperdiffuse_cell(&sub, &mesh, &geom, &mut h, nu4, dt, &mut l1, &mut l2)
        });
    }
    g.finish();
}

fn bench_swgomp() {
    let server = JobServer::new(16);
    let mut g = Bencher::group("swgomp");
    g.bench("target_parallel_for_64k", || {
        server.target_parallel_for(65_536, 1024, &|i| {
            std::hint::black_box(i * i);
        })
    });
    let mut data = vec![0.0f64; 1 << 20];
    g.bench("workshare_fill_1M", || {
        server.target_workshare_fill(&mut data, 1.5)
    });
    g.finish();
}

fn bench_simulators() {
    let spec = SunwaySpec::next_gen();
    let mut g = Bencher::group("simulators");
    let bases: Vec<u64> = (0..7).map(|k| k * (1 << 20)).collect();
    g.bench("ldcache_7stream_20k", || {
        let mut cache = LdCache::sw26010p(&spec);
        simulate_streams(&mut cache, &bases, 8, 20_000);
    });
    g.finish();
}

fn main() {
    bench_mesh_build();
    bench_halo_exchange();
    bench_hyperdiffusion();
    bench_swgomp();
    bench_simulators();
}
