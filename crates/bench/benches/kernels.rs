//! Micro-benchmarks of the Fig. 9 kernels and the suite/transport hot
//! paths, in both precisions — the measured counterpart of the modeled
//! Sunway numbers (`cargo run --release --bin fig9_kernels`). Uses the
//! offline self-timed harness in `grist_bench::Bencher`.

use grist_bench::Bencher;
use grist_dycore::kernels as dk;
use grist_dycore::operators::ScaledGeometry;
use grist_dycore::tracer::{fct_transport_step, FctWorkspace};
use grist_dycore::{Field2, Real, SweSolver};
use grist_mesh::{HexMesh, Vec3, EARTH_OMEGA, EARTH_RADIUS_M};
use grist_ml::models::TendencyCnn;
use grist_physics::{Column, ColumnPhysicsState, ConventionalSuite};
use sunway_sim::Substrate;

const NLEV: usize = 30;

struct KernelData<R: Real> {
    geom: ScaledGeometry<R>,
    ke: Field2<R>,
    dpi: Field2<R>,
    theta: Field2<R>,
    dphi: Field2<R>,
    qv: Field2<R>,
    q0: Field2<R>,
    u: Field2<R>,
    out_e: Field2<R>,
    out_c: Field2<R>,
}

fn kernel_data<R: Real>(mesh: &HexMesh) -> KernelData<R> {
    let (nc, ne) = (mesh.n_cells(), mesh.n_edges());
    KernelData {
        geom: ScaledGeometry::new(mesh, EARTH_RADIUS_M, EARTH_OMEGA),
        ke: Field2::from_fn(NLEV, nc, |k, c| R::from_f64((c % 97) as f64 + k as f64)),
        dpi: Field2::constant(NLEV, nc, R::from_f64(800.0)),
        theta: Field2::constant(NLEV, nc, R::from_f64(300.0)),
        dphi: Field2::constant(NLEV, nc, R::from_f64(2200.0)),
        qv: Field2::constant(NLEV, nc, R::from_f64(0.008)),
        q0: Field2::zeros(NLEV, nc),
        u: Field2::from_fn(NLEV, ne, |k, e| R::from_f64(((e + k) % 41) as f64 * 0.1)),
        out_e: Field2::zeros(NLEV, ne),
        out_c: Field2::zeros(NLEV, nc),
    }
}

fn bench_fig9_kernels(sub: &Substrate) {
    let mesh = HexMesh::build(4);
    let mut d64 = kernel_data::<f64>(&mesh);
    let mut d32 = kernel_data::<f32>(&mesh);
    let mut g = Bencher::group("fig9_kernels");

    g.bench("grad_kinetic_energy/f64", || {
        dk::grad_kinetic_energy(sub, &mesh, &d64.geom, &d64.ke, &mut d64.out_e)
    });
    g.bench("grad_kinetic_energy/f32", || {
        dk::grad_kinetic_energy(sub, &mesh, &d32.geom, &d32.ke, &mut d32.out_e)
    });
    g.bench("primal_normal_flux_edge/f64", || {
        dk::primal_normal_flux_edge(
            sub,
            &mesh,
            &d64.geom,
            &d64.u,
            &d64.dpi,
            &d64.theta,
            &mut d64.out_e,
        )
    });
    g.bench("primal_normal_flux_edge/f32", || {
        dk::primal_normal_flux_edge(
            sub,
            &mesh,
            &d32.geom,
            &d32.u,
            &d32.dpi,
            &d32.theta,
            &mut d32.out_e,
        )
    });
    g.bench("compute_rrr/f64", || {
        dk::compute_rrr(
            sub,
            &d64.dpi,
            &d64.dphi,
            &d64.qv,
            &d64.q0,
            &d64.q0,
            &d64.theta,
            &mut d64.out_c,
        )
    });
    g.bench("compute_rrr/f32", || {
        dk::compute_rrr(
            sub,
            &d32.dpi,
            &d32.dphi,
            &d32.qv,
            &d32.q0,
            &d32.q0,
            &d32.theta,
            &mut d32.out_c,
        )
    });
    g.finish();
}

fn bench_tracer_limiter(sub: &Substrate) {
    let mesh = HexMesh::build(4);
    let geom: ScaledGeometry<f64> = ScaledGeometry::new(&mesh, EARTH_RADIUS_M, EARTH_OMEGA);
    let r2 = EARTH_RADIUS_M * EARTH_RADIUS_M;
    let mass0 = Field2::from_fn(1, mesh.n_cells(), |_, c| 1000.0 * mesh.cell_area[c] * r2);
    let flux = Field2::from_fn(1, mesh.n_edges(), |_, e| {
        let m = mesh.edge_mid[e];
        1000.0 * 1e-5 * EARTH_RADIUS_M * Vec3::new(0.0, 0.0, 1.0).cross(m).dot(mesh.edge_normal[e])
    });
    let q0 = Field2::from_fn(1, mesh.n_cells(), |_, c| {
        (-(mesh.cell_xyz[c].arc_dist(Vec3::new(1.0, 0.0, 0.0)) / 0.3).powi(2)).exp()
    });
    let mut ws = FctWorkspace::new(1, &mesh);
    let mut g = Bencher::group("tracer");
    g.bench("fct_transport_step/G4", || {
        let mut mass = mass0.clone();
        let mut q = q0.clone();
        fct_transport_step(sub, &mesh, &geom, &mut mass, &flux, &mut q, 300.0, &mut ws);
    });
    g.finish();
}

fn bench_swe_step(sub: &Substrate) {
    let mut solver = SweSolver::<f64>::with_substrate(HexMesh::build(4), sub.clone());
    let state0 = grist_dycore::swe::williamson_tc2::<f64>(&solver.mesh);
    let mut g = Bencher::group("swe");
    g.bench("rk3_step/G4", || {
        let mut s = state0.clone();
        solver.step_rk3(&mut s, 300.0);
    });
    g.finish();
}

fn bench_physics_column() {
    let suite = ConventionalSuite::default();
    let col = Column::reference(NLEV);
    let mut g = Bencher::group("physics");
    let mut st = ColumnPhysicsState::new(NLEV, true, 290.0);
    g.bench("conventional_column_step", || {
        st.since_rad = f64::INFINITY; // force radiation every call
        suite.step_column(&col, &mut st, 600.0, 1800.0);
    });
    g.finish();
}

fn bench_ml_inference() {
    let net = TendencyCnn::new(NLEV, 128, 7);
    let x = vec![0.1f32; 5 * NLEV];
    let mut y = vec![0.0f32; 2 * NLEV];
    let mut g = Bencher::group("ml");
    g.bench("tendency_cnn_infer_128ch", || net.infer(&x, &mut y));
    g.finish();
}

fn main() {
    // Run each kernel group on both execution targets so the bench compares
    // the serial path against the emulated CPE teams (§3.3).
    for (label, sub) in [
        ("serial", Substrate::serial()),
        ("cpe64", Substrate::cpe_teams(64)),
    ] {
        println!("\n# kernels on substrate: {label}");
        bench_fig9_kernels(&sub);
        bench_tracer_limiter(&sub);
        bench_swe_step(&sub);
    }
    bench_physics_column();
    bench_ml_inference();
}
