//! The telemetry-plane scenario behind the `obs_report` binary and the CI
//! `obs` job: drive the full observed stack — an ensemble advancing under
//! [`grist_serve::run_ensemble_observed`], threaded clients hammering a
//! [`grist_serve::ForecastServer`] started with an [`ObsPlane`], and a
//! 2-rank overlapped shallow-water step feeding halo-wait stalls through
//! [`ObsPlane::absorb_trace`] — then hold the plane to the issue's two
//! quantitative gates:
//!
//! * **Disabled-path overhead** — a tight probe loop times one fully
//!   disabled `mint + record latency + record batch` sequence (the cost
//!   every untelemetered query pays) and gates it at ≤ 1% of the measured
//!   serve p50.
//! * **Percentile reproducibility** — every percentile printed in the
//!   `grist-obs-v1` dashboard must be recomputable **bitwise** from the
//!   dashboard's own bucket counts: the document is re-parsed through
//!   [`HistSnapshot::from_json`] and each p50/p90/p99 is compared bit for
//!   bit against the embedded value.
//!
//! The scenario itself is the smallest configuration that exercises every
//! series: all four histograms non-empty, health samples flowing, the SLO
//! evaluated after every batch.

use std::sync::Arc;
use std::time::Instant;

use grist_core::{DynStepMode, RunConfig};
use grist_dycore::swe::{williamson_tc2, SwePhases, SweSolver};
use grist_mesh::{HaloLayout, HexMesh, Partition};
use grist_obs::{HistSnapshot, ObsPlane};
use grist_runtime::run_world;
use grist_serve::{
    default_suite, spawn_ensemble_observed, EnsembleConfig, ForecastServer, PoolTarget, Product,
    Query, QueryEngine, ServeConfig, SnapshotStore,
};
use sunway_sim::{trace, Json, Metrics, Substrate};

/// Acceptance gate: the disabled plane may cost at most this share of the
/// measured serve p50 per query.
pub const MAX_OVERHEAD_PCT: f64 = 1.0;

/// One observed-scenario run's knobs (`run_obs` pins them; tests shrink
/// them).
#[derive(Debug, Clone, Copy)]
pub struct ObsBenchConfig {
    pub level: u32,
    pub nlev: usize,
    pub members: usize,
    pub rank_pools: usize,
    pub epochs: usize,
    pub dyn_steps_per_epoch: usize,
    pub workers: usize,
    pub max_batch: usize,
    pub clients: usize,
    pub client_queries: usize,
    pub perturb_scale: f64,
    /// Ranks in the halo-wait phase (overlapped shallow-water steps).
    pub halo_ranks: usize,
    pub halo_level: u32,
    pub halo_steps: usize,
    /// Iterations of the disabled-path probe loop.
    pub overhead_iters: u64,
}

impl Default for ObsBenchConfig {
    fn default() -> Self {
        ObsBenchConfig {
            level: 2,
            nlev: 10,
            members: 3,
            rank_pools: 2,
            epochs: 2,
            dyn_steps_per_epoch: 2,
            workers: 4,
            max_batch: 16,
            clients: 4,
            client_queries: 50,
            perturb_scale: 1e-5,
            halo_ranks: 2,
            halo_level: 3,
            halo_steps: 4,
            overhead_iters: 2_000_000,
        }
    }
}

/// What the scenario produced: the plane itself (still live), the exported
/// dashboard, and the two gate measurements.
pub struct ObsBench {
    pub plane: Arc<ObsPlane>,
    /// The `grist-obs-v1` document.
    pub dashboard: Json,
    /// The human summary.
    pub markdown: String,
    /// Measured disabled-path cost of one mint + two records, nanoseconds.
    pub disabled_ns_per_query: f64,
    /// Serve latency p50 the overhead is measured against, nanoseconds.
    pub p50_ns: u64,
    /// `disabled_ns_per_query / p50_ns` as a percentage.
    pub overhead_pct: f64,
    /// (histogram, percentile) pairs the reproducibility check verified.
    pub percentiles_verified: u64,
}

/// Re-derive every percentile embedded in a dashboard from that dashboard's
/// own bucket counts and demand bitwise equality. Returns the number of
/// (histogram, percentile) pairs checked; any mismatch or malformed
/// histogram is an error.
pub fn verify_percentiles_reproducible(dashboard: &Json) -> Result<u64, String> {
    let hists = dashboard
        .get("histograms")
        .and_then(Json::as_obj)
        .ok_or("dashboard has no histograms section")?;
    let mut checked = 0u64;
    for (name, doc) in hists {
        let snap = HistSnapshot::from_json(doc).map_err(|e| format!("{name}: {e}"))?;
        let pcts = doc
            .get("percentiles")
            .and_then(Json::as_obj)
            .ok_or_else(|| format!("{name}: no percentiles"))?;
        for (key, p) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99)] {
            let embedded = pcts
                .iter()
                .find(|(k, _)| k == key)
                .and_then(|(_, v)| v.as_f64())
                .ok_or_else(|| format!("{name}: no {key}"))?;
            let recomputed = snap.percentile(p) as f64;
            if recomputed.to_bits() != embedded.to_bits() {
                return Err(format!(
                    "{name} {key}: embedded {embedded} != recomputed-from-buckets {recomputed}"
                ));
            }
            checked += 1;
        }
    }
    Ok(checked)
}

/// Time one fully disabled mint + record-latency + record-batch sequence —
/// the exact per-query cost an untelemetered server pays — in nanoseconds.
pub fn measure_disabled_path_ns(iters: u64) -> f64 {
    let off = ObsPlane::disabled();
    let off = std::hint::black_box(&off);
    let t0 = Instant::now();
    for i in 0..iters {
        let id = off.mint_trace_id();
        off.record_serve_latency_ns(i);
        off.record_batch_size(1);
        std::hint::black_box(id);
    }
    t0.elapsed().as_nanos() as f64 / iters.max(1) as f64
}

/// The halo-wait phase: a small overlapped shallow-water run on a shared
/// traced registry, whose `HaloWait` stalls the plane absorbs.
fn feed_halo_waits(cfg: &ObsBenchConfig, plane: &ObsPlane) {
    let metrics = Metrics::default();
    metrics.tracer().enable_with_capacity(1 << 16);
    let mesh = HexMesh::build(cfg.halo_level);
    let partition = Partition::build(&mesh, cfg.halo_ranks, 2);
    let layout = HaloLayout::build(&mesh, &partition, 2);
    let (layout, metrics_ref, level, steps) = (&layout, &metrics, cfg.halo_level, cfg.halo_steps);
    run_world(cfg.halo_ranks, move |mut ctx| {
        trace::set_thread_rank(ctx.rank as u32);
        let mesh = HexMesh::build(level);
        let locale = &layout.locales[ctx.rank];
        let split = locale.phase_split(&mesh, 1);
        let sub = Substrate::serial_with_metrics(metrics_ref.clone());
        let mut solver = SweSolver::<f64>::with_substrate(mesh, sub);
        let phases = SwePhases::build(&solver.mesh, &split.interior_cells);
        let mut state = williamson_tc2::<f64>(&solver.mesh);
        for step in 0..steps {
            grist_core::swe_dyn_step(
                &mut solver,
                &mut state,
                400.0,
                &mut ctx,
                locale,
                &phases,
                100 + step as u32,
                DynStepMode::Overlapped,
                Some(metrics_ref),
                None,
            )
            .expect("fault-free exchange");
        }
    });
    metrics.tracer().disable();
    plane.absorb_trace(&metrics.tracer().snapshot());
}

/// Run the pinned observed scenario.
pub fn run_obs() -> ObsBench {
    run_obs_with(ObsBenchConfig::default())
}

/// [`run_obs`] with explicit knobs.
pub fn run_obs_with(cfg: ObsBenchConfig) -> ObsBench {
    let run = RunConfig::for_level(cfg.level, cfg.nlev);
    let plane = Arc::new(ObsPlane::default());

    // ---- Observed ensemble + observed traffic, concurrently. ----
    let store = Arc::new(SnapshotStore::new(cfg.members, cfg.epochs + 1));
    let ensemble = spawn_ensemble_observed::<f64>(
        EnsembleConfig {
            members: cfg.members,
            rank_pools: cfg.rank_pools,
            epochs: cfg.epochs,
            dyn_steps_per_epoch: cfg.dyn_steps_per_epoch,
            run: run.clone(),
            perturb_scale: cfg.perturb_scale,
            target: PoolTarget::Serial,
        },
        Arc::clone(&store),
        Arc::clone(&plane),
    );
    while (0..cfg.members).any(|m| store.latest(m).is_none()) {
        std::thread::yield_now();
    }
    let engine = Arc::new(QueryEngine::<f64>::new(
        Arc::clone(&store),
        run.clone(),
        Substrate::serial(),
        default_suite(run.nlev),
    ));
    let ncells = engine.n_cells();
    let server = Arc::new(ForecastServer::start_with_obs(
        Arc::clone(&engine),
        ServeConfig {
            workers: cfg.workers,
            max_batch: cfg.max_batch,
        },
        Some(Arc::clone(&plane)),
    ));
    let clients: Vec<std::thread::JoinHandle<()>> = (0..cfg.clients)
        .map(|client| {
            let server = Arc::clone(&server);
            let members = cfg.members;
            let n = cfg.client_queries;
            std::thread::spawn(move || {
                for i in 0..n {
                    let product = match (client + i) % 3 {
                        0 => Product::Precip,
                        1 => Product::T2m,
                        _ => Product::ColumnState,
                    };
                    let q = Query::cell(
                        (client + i) % members,
                        (client * 29 + i * 7) % ncells,
                        product,
                    );
                    server.query_blocking(q).expect("traffic query");
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("traffic client panicked");
    }
    ensemble.join();
    drop(engine);
    if let Ok(server) = Arc::try_unwrap(server) {
        server.shutdown();
    }

    // ---- Halo-wait stalls from a real overlapped exchange. ----
    feed_halo_waits(&cfg, &plane);

    // ---- Disabled-path overhead probe. ----
    let disabled_ns_per_query = measure_disabled_path_ns(cfg.overhead_iters);
    let lat = plane.serve_latency_snapshot();
    let p50_ns = lat.percentile(0.50);
    let overhead_pct = if p50_ns > 0 {
        disabled_ns_per_query / p50_ns as f64 * 100.0
    } else {
        f64::INFINITY
    };

    // ---- Final SLO evaluation + export. ----
    plane.evaluate_slo();
    let dashboard = plane.dashboard();
    let markdown = plane.to_markdown();
    let percentiles_verified = verify_percentiles_reproducible(&dashboard)
        .expect("dashboard percentiles must be reproducible from bucket counts");

    ObsBench {
        plane,
        dashboard,
        markdown,
        disabled_ns_per_query,
        p50_ns,
        overhead_pct,
        percentiles_verified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ObsBenchConfig {
        ObsBenchConfig {
            level: 2,
            nlev: 6,
            members: 2,
            rank_pools: 2,
            epochs: 1,
            dyn_steps_per_epoch: 1,
            workers: 2,
            max_batch: 4,
            clients: 2,
            client_queries: 8,
            perturb_scale: 1e-6,
            halo_ranks: 2,
            halo_level: 2,
            halo_steps: 2,
            overhead_iters: 200_000,
        }
    }

    #[test]
    fn scenario_fills_every_series_and_passes_both_gates() {
        let b = run_obs_with(tiny());
        let cfg = tiny();
        let total = (cfg.clients * cfg.client_queries) as u64;
        assert_eq!(b.plane.serve_latency_snapshot().count, total);
        assert_eq!(b.plane.batch_size_snapshot().sum, total);
        assert_eq!(
            b.plane.epoch_advance_snapshot().count,
            (cfg.members * cfg.epochs) as u64
        );
        assert!(
            b.plane.halo_wait_snapshot().count > 0,
            "no halo-wait stalls absorbed"
        );
        assert_eq!(
            b.plane.watch().ingested(),
            (cfg.members * cfg.epochs) as u64
        );
        assert_eq!(
            b.plane.watch().alert_count(),
            0,
            "{:?}",
            b.plane.watch().alerts()
        );
        assert!(b.plane.last_slo_status().expect("slo evaluated").ok());
        // The two acceptance gates.
        assert_eq!(b.percentiles_verified, 12, "4 histograms x 3 percentiles");
        assert!(
            b.overhead_pct <= MAX_OVERHEAD_PCT,
            "disabled path costs {:.3} ns/query = {:.4}% of p50 ({} ns)",
            b.disabled_ns_per_query,
            b.overhead_pct,
            b.p50_ns
        );
    }

    #[test]
    fn reproducibility_check_rejects_a_doctored_dashboard() {
        let p = ObsPlane::default();
        p.record_serve_latency_ns(2_000_000);
        p.record_batch_size(4);
        let good = p.dashboard();
        assert_eq!(verify_percentiles_reproducible(&good).unwrap(), 12);
        // Doctor one embedded percentile and the check must fail.
        fn doctor(v: &mut Json) {
            if let Json::Obj(fields) = v {
                for (k, val) in fields.iter_mut() {
                    if k == "p99" {
                        *val = Json::Num(12345.0);
                        return;
                    }
                    doctor(val);
                }
            }
        }
        let mut bad = good.clone();
        doctor(&mut bad);
        assert!(verify_percentiles_reproducible(&bad).is_err());
    }

    #[test]
    fn disabled_path_probe_reports_nanosecond_scale_costs() {
        let ns = measure_disabled_path_ns(100_000);
        assert!(ns > 0.0 && ns < 1_000.0, "implausible probe: {ns} ns");
    }
}
