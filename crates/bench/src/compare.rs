//! Baseline comparison for `BENCH_*.json` documents — the logic behind the
//! `bench_compare` binary and the CI bench-smoke gate.
//!
//! Two tolerance regimes, reflecting what is and is not deterministic in the
//! smoke suite (see [`crate::smoke`]):
//!
//! * **Deterministic quantities** — kernel call/item/byte counts, the
//!   hardware-model counters, and the analytic projections — are held to
//!   `tolerance` percent in *both* directions: an unexplained drop in
//!   `ldcache.misses` is as much a behavioral change as a rise.
//!   `sdpd.*` projections are the exception: higher is strictly better, so
//!   only a drop flags.
//! * **Wall-clock times** (kernel/span `nanos`) vary with host load, so they
//!   are gated only *upward* at the looser `time_tolerance`, and only for
//!   entries whose baseline time clears `min_time_ns` (tiny kernels jitter
//!   by orders of magnitude).
//! * **Serving projections** (`BENCH_serve.json`) are wall-derived, so they
//!   get the loose wall band instead of the deterministic one:
//!   `serve.latency.*` (p50/p99) flags only *upward* past `time_tolerance`,
//!   and `serve.qps.*` is higher-is-better, flagging only a collapse below
//!   `old / (1 + time_tolerance/100)`.
//!
//! The optional `trace` section (tracing-overhead measurement, see
//! `crate::smoke::trace_overhead`) is gated **absolutely** rather than
//! against the baseline: `overhead_off_pct` must stay under the 1%
//! disabled-tracing budget regardless of what the baseline measured on its
//! host. A baseline without the section never flags its appearance (older
//! baselines predate it), but a baseline *with* the section flags its
//! disappearance like any other lost coverage.
//!
//! A kernel, span, counter, or projection present in the baseline but
//! missing from the new document always flags — silently losing coverage
//! must not pass the gate. The reverse also flags: an entry present in the
//! new document but absent from the baseline means the baseline no longer
//! describes the workload and must be regenerated, not silently accepted.
//! Zero-valued baseline entries get an explicit "appeared with zero
//! baseline" diagnostic instead of a meaningless infinite percentage.

use std::fmt;
use sunway_sim::{Json, MetricsSnapshot};

/// Tolerances for one comparison run.
#[derive(Debug, Clone, Copy)]
pub struct CompareConfig {
    /// Percent band for deterministic quantities (both directions).
    pub tolerance: f64,
    /// Percent band for wall-time regressions (upward only).
    pub time_tolerance: f64,
    /// Wall-time entries below this baseline total are not time-gated.
    pub min_time_ns: u64,
}

/// Absolute budget for `trace.overhead_off_pct`: compiled-in but disabled
/// tracing may cost at most this share of the smoke window.
pub const TRACE_OFF_BUDGET_PCT: f64 = 1.0;

impl Default for CompareConfig {
    fn default() -> Self {
        CompareConfig {
            tolerance: 10.0,
            time_tolerance: 400.0,
            min_time_ns: 5_000_000,
        }
    }
}

/// One detected regression. `new` is NaN when the entry vanished from the
/// new document; `old` is NaN when the entry has no baseline at all.
#[derive(Debug, Clone)]
pub struct Regression {
    pub what: String,
    pub old: f64,
    pub new: f64,
    pub limit_pct: f64,
}

impl fmt::Display for Regression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.old.is_nan() {
            write!(
                f,
                "{}: missing from baseline (new document has {}) — regenerate the baseline",
                self.what, self.new
            )
        } else if self.new.is_nan() {
            write!(
                f,
                "{}: present in baseline ({}) but missing",
                self.what, self.old
            )
        } else if self.old == 0.0 {
            // A percentage against a zero baseline is undefined; say what
            // actually happened instead of printing "inf%".
            write!(
                f,
                "{}: appeared with zero baseline (new {}, limit {}%)",
                self.what, self.new, self.limit_pct
            )
        } else if self.limit_pct == 0.0 {
            // Absolute gate (see `over_budget`): `old` carries the budget,
            // not a baseline measurement, so a relative percentage would
            // mislead.
            write!(
                f,
                "{}: {} exceeds the absolute budget {}",
                self.what, self.new, self.old
            )
        } else {
            let pct = (self.new - self.old) / self.old * 100.0;
            write!(
                f,
                "{}: {} -> {} ({:+.1}%, limit {}%)",
                self.what, self.old, self.new, pct, self.limit_pct
            )
        }
    }
}

/// Compare two benchmark documents; `Err` for malformed inputs, otherwise
/// the (possibly empty) list of regressions.
pub fn compare_docs(
    old: &Json,
    new: &Json,
    cfg: &CompareConfig,
) -> Result<Vec<Regression>, String> {
    for (label, doc) in [("baseline", old), ("new", new)] {
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{label} document has no \"schema\" string"))?;
        if schema != crate::smoke::SCHEMA {
            return Err(format!(
                "{label} document has schema {schema:?}, expected {:?}",
                crate::smoke::SCHEMA
            ));
        }
    }
    let old_m = doc_metrics("baseline", old)?;
    let new_m = doc_metrics("new", new)?;

    let mut out = Vec::new();

    for (name, o) in &old_m.kernels {
        match new_m.kernels.get(name) {
            None => out.push(missing(format!("kernel {name}"), o.calls as f64)),
            Some(n) => {
                check_count(
                    &mut out,
                    format!("kernel {name} calls"),
                    o.calls,
                    n.calls,
                    cfg,
                );
                check_count(
                    &mut out,
                    format!("kernel {name} items"),
                    o.items,
                    n.items,
                    cfg,
                );
                check_count(
                    &mut out,
                    format!("kernel {name} bytes"),
                    o.bytes,
                    n.bytes,
                    cfg,
                );
                check_time(
                    &mut out,
                    format!("kernel {name} nanos"),
                    o.nanos,
                    n.nanos,
                    cfg,
                );
            }
        }
    }
    for (name, o) in &old_m.spans {
        match new_m.spans.get(name) {
            None => out.push(missing(format!("span {name}"), o.calls as f64)),
            Some(n) => {
                check_count(
                    &mut out,
                    format!("span {name} calls"),
                    o.calls,
                    n.calls,
                    cfg,
                );
                check_time(
                    &mut out,
                    format!("span {name} nanos"),
                    o.nanos,
                    n.nanos,
                    cfg,
                );
            }
        }
    }
    for (name, &o) in &old_m.counters {
        match new_m.counters.get(name) {
            None => out.push(missing(format!("counter {name}"), o as f64)),
            Some(&n) => check_count(&mut out, format!("counter {name}"), o, n, cfg),
        }
    }

    // Projections: numeric leaf map; sdpd.* is higher-is-better.
    let old_p = projections(old);
    let new_p = projections(new);
    for (key, o) in &old_p {
        let Some(&n) = new_p.get(key) else {
            out.push(missing(format!("projection {key}"), *o));
            continue;
        };
        let band = cfg.tolerance / 100.0;
        let time_band = cfg.time_tolerance / 100.0;
        let (regressed, limit_pct) = if *o == 0.0 {
            // No meaningful relative band exists; any appearance flags with
            // the explicit zero-baseline diagnostic.
            (n != 0.0, cfg.tolerance)
        } else if key.starts_with("serve.latency.") {
            // Wall-derived latency percentile: upward-only, wall band.
            (n > o * (1.0 + time_band), cfg.time_tolerance)
        } else if key.starts_with("serve.qps.") {
            // Wall-derived throughput: higher is better; only a collapse
            // beyond the wall band flags.
            (n < o / (1.0 + time_band), cfg.time_tolerance)
        } else if key.starts_with("sdpd.") {
            (n < o * (1.0 - band), cfg.tolerance)
        } else {
            ((n - o).abs() > o.abs() * band, cfg.tolerance)
        };
        if regressed {
            out.push(Regression {
                what: format!("projection {key}"),
                old: *o,
                new: n,
                limit_pct,
            });
        }
    }

    // Tracing overhead: an absolute gate, not a drift gate — the budget is
    // a property of the tracing design (disabled instrumentation must be
    // free), so it holds whatever the baseline's host happened to measure.
    let trace_pct = |doc: &Json| {
        doc.get("trace")
            .map(|t| t.get("overhead_off_pct").and_then(Json::as_f64))
    };
    match (trace_pct(old), trace_pct(new)) {
        (Some(o), None) => out.push(missing(
            "trace overhead_off_pct".into(),
            o.unwrap_or(f64::NAN),
        )),
        (_, Some(None)) => {
            return Err("new document trace section has no numeric overhead_off_pct".into())
        }
        (_, Some(Some(pct))) if pct.is_nan() || pct >= TRACE_OFF_BUDGET_PCT => out.push(
            over_budget("trace overhead_off_pct".into(), pct, TRACE_OFF_BUDGET_PCT),
        ),
        _ => {}
    }

    // Entries the baseline has never seen: the baseline no longer describes
    // the workload, so flag each one instead of silently accepting it.
    for (name, n) in &new_m.kernels {
        if !old_m.kernels.contains_key(name) {
            out.push(unbaselined(format!("kernel {name}"), n.calls as f64));
        }
    }
    for (name, n) in &new_m.spans {
        if !old_m.spans.contains_key(name) {
            out.push(unbaselined(format!("span {name}"), n.calls as f64));
        }
    }
    for (name, &n) in &new_m.counters {
        if !old_m.counters.contains_key(name) {
            out.push(unbaselined(format!("counter {name}"), n as f64));
        }
    }
    for (key, &n) in &new_p {
        if !old_p.contains_key(key) {
            out.push(unbaselined(format!("projection {key}"), n));
        }
    }

    Ok(out)
}

/// Render a baseline-vs-current delta table as GitHub-flavored markdown —
/// the `bench_compare --markdown-summary` payload CI appends to
/// `$GITHUB_STEP_SUMMARY`. Every projection, counter, and kernel/span wall
/// time appearing in either document gets a row, so drift is visible in the
/// job summary even when it stays inside the gate's tolerance. Deterministic
/// quantities that moved at all are bolded; wall rows are only informative.
pub fn markdown_delta_table(old: &Json, new: &Json) -> Result<String, String> {
    let old_m = doc_metrics("baseline", old)?;
    let new_m = doc_metrics("new", new)?;
    let mut rows: Vec<(String, Option<f64>, Option<f64>, bool)> = Vec::new();

    let old_p = projections(old);
    let new_p = projections(new);
    let keys: std::collections::BTreeSet<&String> = old_p.keys().chain(new_p.keys()).collect();
    for k in keys {
        rows.push((
            format!("projection `{k}`"),
            old_p.get(k).copied(),
            new_p.get(k).copied(),
            true,
        ));
    }
    let counter_keys: std::collections::BTreeSet<&String> =
        old_m.counters.keys().chain(new_m.counters.keys()).collect();
    for k in counter_keys {
        rows.push((
            format!("counter `{k}`"),
            old_m.counters.get(k).map(|&v| v as f64),
            new_m.counters.get(k).map(|&v| v as f64),
            true,
        ));
    }
    let kernel_keys: std::collections::BTreeSet<&String> =
        old_m.kernels.keys().chain(new_m.kernels.keys()).collect();
    for k in kernel_keys {
        rows.push((
            format!("kernel `{k}` ms"),
            old_m.kernels.get(k).map(|v| v.nanos as f64 / 1e6),
            new_m.kernels.get(k).map(|v| v.nanos as f64 / 1e6),
            false,
        ));
    }
    let span_keys: std::collections::BTreeSet<&String> =
        old_m.spans.keys().chain(new_m.spans.keys()).collect();
    for k in span_keys {
        rows.push((
            format!("span `{k}` ms"),
            old_m.spans.get(k).map(|v| v.nanos as f64 / 1e6),
            new_m.spans.get(k).map(|v| v.nanos as f64 / 1e6),
            false,
        ));
    }

    let mut out = String::from("| entry | baseline | current | delta |\n|---|---|---|---|\n");
    let num = |v: Option<f64>| v.map_or("—".to_string(), crate::fmt);
    for (name, o, n, deterministic) in rows {
        let delta = match (o, n) {
            (Some(o), Some(n)) if o != 0.0 => {
                let pct = (n - o) / o * 100.0;
                if pct == 0.0 {
                    "0%".to_string()
                } else {
                    format!("{pct:+.1}%")
                }
            }
            (Some(o), Some(n)) if o == n => "0%".to_string(),
            _ => "—".to_string(),
        };
        let moved = deterministic && delta != "0%";
        let (b0, b1) = if moved { ("**", "**") } else { ("", "") };
        out.push_str(&format!(
            "| {name} | {} | {} | {b0}{delta}{b1} |\n",
            num(o),
            num(n)
        ));
    }
    Ok(out)
}

fn doc_metrics(label: &str, doc: &Json) -> Result<MetricsSnapshot, String> {
    let v = doc
        .get("metrics")
        .ok_or_else(|| format!("{label} document has no \"metrics\" section"))?;
    MetricsSnapshot::from_json_value(v).map_err(|e| format!("{label} metrics: {e}"))
}

fn projections(doc: &Json) -> std::collections::BTreeMap<String, f64> {
    doc.get("projections")
        .and_then(Json::as_obj)
        .map(|fields| {
            fields
                .iter()
                .filter_map(|(k, v)| v.as_f64().map(|x| (k.clone(), x)))
                .collect()
        })
        .unwrap_or_default()
}

fn missing(what: String, old: f64) -> Regression {
    Regression {
        what,
        old,
        new: f64::NAN,
        limit_pct: 0.0,
    }
}

fn unbaselined(what: String, new: f64) -> Regression {
    Regression {
        what,
        old: f64::NAN,
        new,
        limit_pct: 0.0,
    }
}

/// Absolute-budget violation: `old` carries the budget itself (there is no
/// baseline to compare against) and `limit_pct: 0.0` selects the dedicated
/// rendering in [`Regression`]'s `Display`.
fn over_budget(what: String, new: f64, budget: f64) -> Regression {
    Regression {
        what,
        old: budget,
        new,
        limit_pct: 0.0,
    }
}

/// Deterministic count: relative deviation beyond `tolerance` in either
/// direction flags. A zero baseline has no relative band, so any nonzero
/// new value flags with the explicit zero-baseline diagnostic.
fn check_count(out: &mut Vec<Regression>, what: String, old: u64, new: u64, cfg: &CompareConfig) {
    let (o, n) = (old as f64, new as f64);
    let regressed = if old == 0 {
        new != 0
    } else {
        (n - o).abs() / o > cfg.tolerance / 100.0
    };
    if regressed {
        out.push(Regression {
            what,
            old: o,
            new: n,
            limit_pct: cfg.tolerance,
        });
    }
}

/// Wall time: only an *increase* beyond `time_tolerance` flags, and only for
/// entries big enough to time reliably.
fn check_time(out: &mut Vec<Regression>, what: String, old: u64, new: u64, cfg: &CompareConfig) {
    if old < cfg.min_time_ns {
        return;
    }
    let (o, n) = (old as f64, new as f64);
    if n > o * (1.0 + cfg.time_tolerance / 100.0) {
        out.push(Regression {
            what,
            old: o,
            new: n,
            limit_pct: cfg.time_tolerance,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(kernel_nanos: u64, calls: u64, misses: u64, sdpd: f64) -> Json {
        Json::parse(&format!(
            r#"{{
              "schema": "grist-bench-v1",
              "config": {{"level": 2}},
              "projections": {{"sdpd.weak.G6.p128": {sdpd}, "fig9.compute_rrr.MPE-DP_s": 0.5}},
              "metrics": {{
                "kernels": {{"step/dycore/compute_rrr":
                  {{"calls": {calls}, "nanos": {kernel_nanos}, "items": 100, "bytes": 800}}}},
                "spans": {{"step": {{"calls": {calls}, "nanos": {kernel_nanos}}}}},
                "counters": {{"ldcache.misses": {misses}}}
              }}
            }}"#
        ))
        .expect("test doc parses")
    }

    #[test]
    fn identical_documents_pass() {
        let a = doc(50_000_000, 16, 1000, 300.0);
        let r = compare_docs(&a, &a, &CompareConfig::default()).unwrap();
        assert!(r.is_empty(), "{r:?}");
    }

    #[test]
    fn noisy_wall_time_within_band_passes_but_blowup_flags() {
        let old = doc(50_000_000, 16, 1000, 300.0);
        let cfg = CompareConfig::default();
        // 3x slower: inside the 400% band.
        let r = compare_docs(&old, &doc(150_000_000, 16, 1000, 300.0), &cfg).unwrap();
        assert!(r.is_empty(), "{r:?}");
        // 6x slower: flags both the kernel and the span.
        let r = compare_docs(&old, &doc(300_000_000, 16, 1000, 300.0), &cfg).unwrap();
        assert_eq!(r.len(), 2, "{r:?}");
        assert!(r.iter().all(|x| x.what.ends_with("nanos")));
        // Faster never flags.
        let r = compare_docs(&old, &doc(1_000_000, 16, 1000, 300.0), &cfg).unwrap();
        assert!(r.is_empty(), "{r:?}");
    }

    #[test]
    fn tiny_kernels_are_not_time_gated() {
        let cfg = CompareConfig::default();
        let r = compare_docs(
            &doc(1_000, 16, 1000, 300.0),
            &doc(900_000, 16, 1000, 300.0),
            &cfg,
        )
        .unwrap();
        assert!(r.is_empty(), "sub-floor jitter must not flag: {r:?}");
    }

    #[test]
    fn counter_drift_flags_in_both_directions() {
        let old = doc(50_000_000, 16, 1000, 300.0);
        let cfg = CompareConfig::default();
        for bad in [1200, 800] {
            let r = compare_docs(&old, &doc(50_000_000, 16, bad, 300.0), &cfg).unwrap();
            assert_eq!(r.len(), 1, "{r:?}");
            assert!(r[0].what.contains("ldcache.misses"));
        }
        // Within 10%: fine.
        let r = compare_docs(&old, &doc(50_000_000, 16, 1050, 300.0), &cfg).unwrap();
        assert!(r.is_empty(), "{r:?}");
    }

    #[test]
    fn call_count_change_flags() {
        let old = doc(50_000_000, 16, 1000, 300.0);
        let r = compare_docs(
            &old,
            &doc(50_000_000, 32, 1000, 300.0),
            &CompareConfig::default(),
        )
        .unwrap();
        assert!(r.iter().any(|x| x.what.contains("calls")), "{r:?}");
    }

    #[test]
    fn sdpd_projection_is_higher_is_better() {
        let old = doc(50_000_000, 16, 1000, 300.0);
        let cfg = CompareConfig::default();
        // 50% faster projection: improvement, passes.
        let r = compare_docs(&old, &doc(50_000_000, 16, 1000, 450.0), &cfg).unwrap();
        assert!(r.is_empty(), "{r:?}");
        // 20% drop: regression.
        let r = compare_docs(&old, &doc(50_000_000, 16, 1000, 240.0), &cfg).unwrap();
        assert_eq!(r.len(), 1, "{r:?}");
        assert!(r[0].what.contains("sdpd"));
    }

    /// A serve-style document with latency/qps projections.
    fn serve_doc(p50_ms: f64, p99_ms: f64, qps: f64) -> Json {
        Json::parse(&format!(
            r#"{{
              "schema": "grist-bench-v1",
              "projections": {{
                "serve.latency.p50_ms": {p50_ms},
                "serve.latency.p99_ms": {p99_ms},
                "serve.qps.traffic": {qps}
              }},
              "metrics": {{}}
            }}"#
        ))
        .expect("serve doc parses")
    }

    #[test]
    fn serve_latency_projections_are_upward_only_at_the_wall_band() {
        let old = serve_doc(1.0, 4.0, 5000.0);
        // The default time_tolerance is 400%. Faster, and moderately
        // slower (3x < 5x), both pass.
        let cfg = CompareConfig::default();
        assert!(compare_docs(&old, &serve_doc(0.2, 1.0, 5000.0), &cfg)
            .unwrap()
            .is_empty());
        assert!(compare_docs(&old, &serve_doc(3.0, 12.0, 5000.0), &cfg)
            .unwrap()
            .is_empty());
        // 6x slower p99 flags, with the wall-band limit in the message.
        let r = compare_docs(&old, &serve_doc(1.0, 24.0, 5000.0), &cfg).unwrap();
        assert_eq!(r.len(), 1, "{r:?}");
        assert!(r[0].what.contains("serve.latency.p99_ms"), "{}", r[0]);
        assert_eq!(r[0].limit_pct, cfg.time_tolerance);
    }

    #[test]
    fn serve_qps_projection_is_higher_is_better_at_the_wall_band() {
        let old = serve_doc(1.0, 4.0, 5000.0);
        let cfg = CompareConfig::default();
        // Faster serving never flags; a 2x drop stays inside the 5x band.
        assert!(compare_docs(&old, &serve_doc(1.0, 4.0, 50_000.0), &cfg)
            .unwrap()
            .is_empty());
        assert!(compare_docs(&old, &serve_doc(1.0, 4.0, 2500.0), &cfg)
            .unwrap()
            .is_empty());
        // A 10x collapse flags.
        let r = compare_docs(&old, &serve_doc(1.0, 4.0, 500.0), &cfg).unwrap();
        assert_eq!(r.len(), 1, "{r:?}");
        assert!(r[0].what.contains("serve.qps.traffic"), "{}", r[0]);
    }

    #[test]
    fn missing_kernel_flags() {
        let old = doc(50_000_000, 16, 1000, 300.0);
        let mut new = doc(50_000_000, 16, 1000, 300.0);
        // Rename the kernel out from under the baseline.
        let Json::Obj(fields) = &mut new else {
            panic!()
        };
        let metrics = &mut fields.iter_mut().find(|(k, _)| k == "metrics").unwrap().1;
        let Json::Obj(mf) = metrics else { panic!() };
        let kernels = &mut mf.iter_mut().find(|(k, _)| k == "kernels").unwrap().1;
        let Json::Obj(kf) = kernels else { panic!() };
        kf[0].0 = "step/dycore/renamed".into();
        let r = compare_docs(&old, &new, &CompareConfig::default()).unwrap();
        assert!(
            r.iter()
                .any(|x| x.what.contains("compute_rrr") && x.new.is_nan()),
            "{r:?}"
        );
    }

    #[test]
    fn zero_baseline_counter_is_a_diagnostic_not_a_division_by_zero() {
        let old = doc(50_000_000, 16, 0, 300.0);
        let cfg = CompareConfig::default();
        // Zero stays zero: fine.
        let r = compare_docs(&old, &doc(50_000_000, 16, 0, 300.0), &cfg).unwrap();
        assert!(r.is_empty(), "{r:?}");
        // Any appearance over a zero baseline flags, readably.
        let r = compare_docs(&old, &doc(50_000_000, 16, 7, 300.0), &cfg).unwrap();
        assert_eq!(r.len(), 1, "{r:?}");
        let text = r[0].to_string();
        assert!(text.contains("ldcache.misses"), "{text}");
        assert!(text.contains("zero baseline"), "{text}");
        assert!(!text.contains("inf"), "no infinite percentage: {text}");
    }

    #[test]
    fn new_only_entries_are_flagged_not_silently_passed() {
        let old = doc(50_000_000, 16, 1000, 300.0);
        let mut new = doc(50_000_000, 16, 1000, 300.0);
        // Grow the new document: an extra counter the baseline never saw.
        let Json::Obj(fields) = &mut new else {
            panic!()
        };
        let metrics = &mut fields.iter_mut().find(|(k, _)| k == "metrics").unwrap().1;
        let Json::Obj(mf) = metrics else { panic!() };
        let counters = &mut mf.iter_mut().find(|(k, _)| k == "counters").unwrap().1;
        let Json::Obj(cf) = counters else { panic!() };
        cf.push(("fault.injected".into(), Json::Num(3.0)));
        let r = compare_docs(&old, &new, &CompareConfig::default()).unwrap();
        assert_eq!(r.len(), 1, "{r:?}");
        assert!(r[0].old.is_nan());
        let text = r[0].to_string();
        assert!(text.contains("fault.injected"), "{text}");
        assert!(text.contains("missing from baseline"), "{text}");
        assert!(text.contains("regenerate"), "{text}");
    }

    #[test]
    fn zero_baseline_projection_flags_on_appearance() {
        let old = doc(50_000_000, 16, 1000, 0.0);
        let cfg = CompareConfig::default();
        let r = compare_docs(&old, &doc(50_000_000, 16, 1000, 0.0), &cfg).unwrap();
        assert!(r.is_empty(), "{r:?}");
        let r = compare_docs(&old, &doc(50_000_000, 16, 1000, 1.0e-12), &cfg).unwrap();
        assert_eq!(r.len(), 1, "{r:?}");
        assert!(r[0].to_string().contains("zero baseline"), "{}", r[0]);
    }

    /// Append a `trace` section (as `bench_smoke` does) to a test document.
    fn with_trace(mut doc: Json, overhead_off_pct: Json) -> Json {
        let Json::Obj(fields) = &mut doc else {
            panic!()
        };
        fields.push((
            "trace".into(),
            Json::Obj(vec![("overhead_off_pct".into(), overhead_off_pct)]),
        ));
        doc
    }

    #[test]
    fn trace_overhead_is_gated_absolutely_not_against_baseline() {
        let cfg = CompareConfig::default();
        let base = doc(50_000_000, 16, 1000, 300.0);
        // Baseline without the section: appearance never flags, budget holds.
        let ok = with_trace(base.clone(), Json::Num(0.02));
        assert!(compare_docs(&base, &ok, &cfg).unwrap().is_empty());
        let r = compare_docs(&base, &with_trace(base.clone(), Json::Num(2.5)), &cfg).unwrap();
        assert_eq!(r.len(), 1, "{r:?}");
        let text = r[0].to_string();
        assert!(text.contains("overhead_off_pct"), "{text}");
        assert!(text.contains("absolute budget 1"), "{text}");
        // Even a baseline that itself blew the budget does not excuse it.
        let bad_base = with_trace(base.clone(), Json::Num(3.0));
        let r = compare_docs(&bad_base, &with_trace(base.clone(), Json::Num(2.5)), &cfg).unwrap();
        assert_eq!(r.len(), 1, "{r:?}");
    }

    #[test]
    fn trace_section_lost_from_new_document_flags() {
        let cfg = CompareConfig::default();
        let plain = doc(50_000_000, 16, 1000, 300.0);
        let base = with_trace(plain.clone(), Json::Num(0.02));
        let r = compare_docs(&base, &plain, &cfg).unwrap();
        assert_eq!(r.len(), 1, "{r:?}");
        assert!(r[0].new.is_nan());
        assert!(r[0].to_string().contains("overhead_off_pct"), "{}", r[0]);
    }

    #[test]
    fn trace_section_without_a_numeric_overhead_is_an_error() {
        let cfg = CompareConfig::default();
        let base = doc(50_000_000, 16, 1000, 300.0);
        let bad = with_trace(base.clone(), Json::Str("fast".into()));
        let err = compare_docs(&base, &bad, &cfg).unwrap_err();
        assert!(err.contains("overhead_off_pct"), "{err}");
    }

    #[test]
    fn schema_mismatch_is_an_error() {
        let good = doc(1, 1, 1, 1.0);
        let bad = Json::parse(r#"{"schema": "other", "metrics": {}}"#).unwrap();
        assert!(compare_docs(&good, &bad, &CompareConfig::default()).is_err());
        let none = Json::parse("{}").unwrap();
        assert!(compare_docs(&none, &good, &CompareConfig::default()).is_err());
    }

    #[test]
    fn markdown_delta_table_lists_every_entry_and_bolds_movement() {
        let old = doc(50_000_000, 16, 1000, 300.0);
        let new = doc(60_000_000, 16, 1100, 300.0);
        let md = markdown_delta_table(&old, &new).unwrap();
        assert!(md.starts_with("| entry | baseline | current | delta |"));
        for needle in [
            "projection `sdpd.weak.G6.p128`",
            "counter `ldcache.misses`",
            "kernel `step/dycore/compute_rrr` ms",
            "span `step` ms",
        ] {
            assert!(md.contains(needle), "missing {needle} in:\n{md}");
        }
        // The moved counter is bolded; the unmoved projection is not.
        assert!(md.contains("**+10.0%**"), "{md}");
        let sdpd_row = md
            .lines()
            .find(|l| l.contains("sdpd.weak"))
            .expect("sdpd row");
        assert!(sdpd_row.contains("| 0% |"), "{sdpd_row}");
        // Wall-time rows are informative, never bolded.
        let kernel_row = md
            .lines()
            .find(|l| l.contains("compute_rrr"))
            .expect("kernel row");
        assert!(!kernel_row.contains("**"), "{kernel_row}");
        assert!(markdown_delta_table(&Json::Null, &old).is_err());
    }

    #[test]
    fn regressions_render_readably() {
        let old = doc(50_000_000, 16, 1000, 300.0);
        let r = compare_docs(
            &old,
            &doc(50_000_000, 16, 2000, 300.0),
            &CompareConfig::default(),
        )
        .unwrap();
        let text = r[0].to_string();
        assert!(text.contains("ldcache.misses"), "{text}");
        assert!(text.contains("+100.0%"), "{text}");
    }
}
