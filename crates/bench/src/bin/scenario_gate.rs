//! Replay the committed scenario matrix and fail on any drift — the CI
//! conformance gate for `scenarios/*.json`.
//!
//! Usage:
//!   cargo run --release -p grist-bench --bin scenario_gate -- \
//!       [--dir scenarios] [--out target/scenarios] [--update]
//!
//! Each scenario document is parsed strictly (`grist-scenario-v1`), run
//! TWICE, and the two artifacts compared bitwise to each other — a scenario
//! that is not two-run stable is a harness bug and fails the gate before
//! any golden comparison. The stable artifact is then compared bitwise
//! against the committed `golden` block: state hashes, diagnostic bit
//! patterns, and exact counters must all match.
//!
//! `--update` rewrites every scenario file with the freshly computed golden
//! block instead of comparing (for intentional physics/kernel changes —
//! review the diff). Per-scenario artifacts and metrics snapshots are
//! always written to `--out` for CI upload.
//!
//! Exit codes: 0 = all pinned and matching, 1 = drift / missing golden /
//! unstable scenario, 2 = bad usage or unreadable input.

use grist_core::{parse_scenario_file, scenario_file_json, ScenarioRunner};
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: scenario_gate [--dir scenarios] [--out target/scenarios] [--update]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut dir = PathBuf::from("scenarios");
    let mut out = PathBuf::from("target/scenarios");
    let mut update = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--dir" => match argv.next() {
                Some(v) => dir = PathBuf::from(v),
                None => return usage(),
            },
            "--out" => match argv.next() {
                Some(v) => out = PathBuf::from(v),
                None => return usage(),
            },
            "--update" => update = true,
            _ => return usage(),
        }
    }

    let mut files: Vec<PathBuf> = match fs::read_dir(&dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect(),
        Err(e) => {
            eprintln!("scenario_gate: cannot read {}: {e}", dir.display());
            return ExitCode::from(2);
        }
    };
    files.sort();
    if files.is_empty() {
        eprintln!("scenario_gate: no *.json scenarios in {}", dir.display());
        return ExitCode::from(2);
    }
    if let Err(e) = fs::create_dir_all(&out) {
        eprintln!("scenario_gate: cannot create {}: {e}", out.display());
        return ExitCode::from(2);
    }

    let runner = ScenarioRunner::new();
    let mut failures = 0usize;
    for path in &files {
        match gate_one(&runner, path, &out, update) {
            Ok(msg) => println!("PASS {}: {msg}", path.display()),
            Err(msg) => {
                failures += 1;
                eprintln!("FAIL {}: {msg}", path.display());
            }
        }
    }
    println!(
        "scenario_gate: {} scenario(s), {} failure(s){}",
        files.len(),
        failures,
        if update { " [golden pins updated]" } else { "" }
    );
    if failures > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn gate_one(
    runner: &ScenarioRunner,
    path: &Path,
    out: &Path,
    update: bool,
) -> Result<String, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("unreadable: {e}"))?;
    let (config, golden) = parse_scenario_file(&text).map_err(|e| e.to_string())?;
    let stem = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("scenario");
    if config.name != stem {
        return Err(format!(
            "config.name {:?} does not match file stem {stem:?}",
            config.name
        ));
    }

    // Two independent runs: the artifact must be bitwise reproducible
    // before it is worth comparing against anything.
    let first = runner.run(&config).map_err(|e| e.to_string())?;
    let second = runner.run(&config).map_err(|e| e.to_string())?;
    let instability = first.artifact.diff(&second.artifact);
    if !instability.is_empty() {
        return Err(format!("not two-run stable: {}", instability.join("; ")));
    }

    fs::write(
        out.join(format!("{}.artifact.json", config.name)),
        scenario_file_json(&config, Some(&first.artifact)),
    )
    .map_err(|e| format!("cannot write artifact: {e}"))?;
    fs::write(
        out.join(format!("{}.metrics.json", config.name)),
        &first.metrics_json,
    )
    .map_err(|e| format!("cannot write metrics: {e}"))?;

    if update {
        fs::write(path, scenario_file_json(&config, Some(&first.artifact)))
            .map_err(|e| format!("cannot rewrite pin: {e}"))?;
        return Ok(format!(
            "pinned {} hash(es), {} diagnostic(s), {} counter(s)",
            first.artifact.hashes.len(),
            first.artifact.diagnostics.len(),
            first.artifact.counters.len()
        ));
    }

    let golden = golden.ok_or_else(|| {
        "no golden block committed (run with --update and review the diff)".to_string()
    })?;
    let drift = golden.diff(&first.artifact);
    if !drift.is_empty() {
        return Err(format!("drift from golden pin: {}", drift.join("; ")));
    }
    Ok(format!(
        "{} hash(es), {} diagnostic(s), {} counter(s) bitwise-stable",
        golden.hashes.len(),
        golden.diagnostics.len(),
        golden.counters.len()
    ))
}
