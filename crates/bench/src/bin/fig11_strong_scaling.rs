//! Regenerates **Figure 11**: strong scaling of the G12 (1.47–1.92 km) grid
//! under all four Table-3 schemes, plus G11S (2.94–3.83 km) under MIX-ML,
//! from 32,768 to 524,288 processes. Efficiency follows the paper's eq. (2):
//! `eff(N) = (P_N / N) / (P_32768 / 32768)`.

use grist_bench::{fmt, Table};
use grist_runtime::scaling::{grid_by_label, Scheme, SdpdModel};

fn main() {
    let model = SdpdModel::default();
    let g12 = &grid_by_label("G12").expect("Table 2 row");
    let g11s = &grid_by_label("G11S").expect("Table 2 row");
    let procs: Vec<usize> = (0..5).map(|i| 32_768usize << i).collect();

    println!("# Figure 11: strong scaling, 32,768 → 524,288 CGs\n");
    let mut t = Table::new(&[
        "procs",
        "G12 DP-PHY",
        "G12 DP-ML",
        "G12 MIX-PHY",
        "G12 MIX-ML",
        "G12 MIX-ML eff",
        "G11S MIX-ML",
        "G11S MIX-ML eff",
    ]);
    let schemes = Scheme::all();
    let base_g12 = model
        .project(
            g12,
            Scheme {
                mixed: true,
                ml_physics: true,
            },
            procs[0],
        )
        .sdpd;
    let base_g11s = model
        .project(
            g11s,
            Scheme {
                mixed: true,
                ml_physics: true,
            },
            procs[0],
        )
        .sdpd;
    for &p in &procs {
        let vals: Vec<f64> = schemes
            .iter()
            .map(|&s| model.project(g12, s, p).sdpd)
            .collect();
        let g12_mixml = vals[3];
        let g11s_mixml = model
            .project(
                g11s,
                Scheme {
                    mixed: true,
                    ml_physics: true,
                },
                p,
            )
            .sdpd;
        let scale = p as f64 / procs[0] as f64;
        t.row(&[
            p.to_string(),
            fmt(vals[0]),
            fmt(vals[1]),
            fmt(vals[2]),
            fmt(vals[3]),
            fmt(g12_mixml / base_g12 / scale),
            fmt(g11s_mixml),
            fmt(g11s_mixml / base_g11s / scale),
        ]);
    }
    t.print();
    t.write_csv("fig11_strong_scaling").expect("csv");

    let top = procs[procs.len() - 1];
    let final_g12 = model
        .project(
            g12,
            Scheme {
                mixed: true,
                ml_physics: true,
            },
            top,
        )
        .sdpd;
    let final_g11s = model
        .project(
            g11s,
            Scheme {
                mixed: true,
                ml_physics: true,
            },
            top,
        )
        .sdpd;
    println!(
        "\nEndpoints at {top} processes (paper: 491 SDPD G11S, 181 SDPD G12; \
         modeled substrate — shapes, not absolutes):\n\
         - G11S MIX-ML: {:.0} SDPD ({:.2} SYPD)\n\
         - G12  MIX-ML: {:.0} SDPD ({:.2} SYPD)\n\
         - G11S/G12 ratio: {:.2} (paper: {:.2})",
        final_g11s,
        final_g11s / 365.0,
        final_g12,
        final_g12 / 365.0,
        final_g11s / final_g12,
        491.0 / 181.0
    );
}
