//! Regenerates **Figure 10**: weak scaling from 128 to 524,288 processes
//! (CGs) with ~320 cells/CG, all grids on the G12 timestep, for the MIX-PHY
//! and MIX-ML schemes. Reports SDPD, the paper's efficiency
//! `eff(N) = P_N / P_128` (eq. 1), and the communication-time share (which
//! the paper observes rising from 19% to 37%).

use grist_bench::{fmt, Table};
use grist_runtime::scaling::{grid_by_label, weak_scaling_ladder, Scheme, SdpdModel};

fn main() {
    let model = SdpdModel::default();
    let ladder = weak_scaling_ladder();

    println!("# Figure 10: weak scaling (mixed precision), 128 → 524,288 CGs\n");
    let mut t = Table::new(&[
        "grid",
        "procs",
        "cores",
        "MIX-PHY SDPD",
        "MIX-PHY eff",
        "MIX-ML SDPD",
        "MIX-ML eff",
        "comm share",
    ]);

    let mix_phy = Scheme {
        mixed: true,
        ml_physics: false,
    };
    let mix_ml = Scheme {
        mixed: true,
        ml_physics: true,
    };
    let mut base_phy = 0.0;
    let mut base_ml = 0.0;
    let mut shares = Vec::new();
    for (i, (label, procs)) in ladder.iter().enumerate() {
        let g = grid_by_label(label).expect("ladder labels are Table 2 rows");
        let r_phy = model.project(&g, mix_phy, *procs);
        let r_ml = model.project(&g, mix_ml, *procs);
        if i == 0 {
            base_phy = r_phy.sdpd;
            base_ml = r_ml.sdpd;
        }
        shares.push(r_phy.comm_fraction);
        t.row(&[
            label.to_string(),
            procs.to_string(),
            (procs * 65).to_string(),
            fmt(r_phy.sdpd),
            fmt(r_phy.sdpd / base_phy),
            fmt(r_ml.sdpd),
            fmt(r_ml.sdpd / base_ml),
            format!("{:.0}%", r_phy.comm_fraction * 100.0),
        ]);
    }
    t.print();
    t.write_csv("fig10_weak_scaling").expect("csv");

    println!(
        "\nShape checks vs the paper:\n\
         - MIX-ML above MIX-PHY at every point: {}\n\
         - communication share rises ({}% -> {}%; paper: 19% -> 37%)\n\
         - largest run uses 524,288 × 65 = 34,078,720 cores (\"34 million cores\")",
        {
            let ok = ladder.iter().all(|(label, procs)| {
                let g = grid_by_label(label).expect("ladder labels are Table 2 rows");
                model.project(&g, mix_ml, *procs).sdpd > model.project(&g, mix_phy, *procs).sdpd
            });
            if ok {
                "yes"
            } else {
                "NO"
            }
        },
        (shares.first().unwrap() * 100.0).round(),
        (shares.last().unwrap() * 100.0).round(),
    );
}
