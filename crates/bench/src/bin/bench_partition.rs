//! Emit the pinned partition-quality document behind `BENCH_partition.json`
//! (see [`grist_bench::partition`]): edge-cut, balance, and measured
//! halo-surface profiles over the part-count ladder.
//!
//! Usage: `cargo run --release -p grist-bench --bin bench_partition -- [OUT.json]`
//! (defaults to stdout). The document is fully deterministic; CI gates it
//! against the committed baseline with `bench_compare`.

use grist_bench::partition::run_partition;
use grist_bench::Table;
use std::io::Write;

fn main() {
    let bench = run_partition();

    let mut table = Table::new(&[
        "parts",
        "edge_cut",
        "imbalance",
        "max_degree",
        "mean_halo",
        "max_ratio",
        "surface_coeff",
    ]);
    for r in &bench.rungs {
        table.row(&[
            r.n_parts.to_string(),
            r.edge_cut.to_string(),
            format!("{:.4}", r.imbalance),
            r.max_part_degree.to_string(),
            format!("{:.1}", r.mean_halo),
            format!("{:.4}", r.max_ratio),
            format!("{:.4}", r.surface_coeff),
        ]);
    }
    table.print();

    let text = bench.doc.pretty();
    match std::env::args().nth(1) {
        Some(path) => {
            std::fs::write(&path, &text).unwrap_or_else(|e| {
                eprintln!("bench_partition: cannot write {path}: {e}");
                std::process::exit(2);
            });
            eprintln!("bench_partition: wrote {path} ({} bytes)", text.len());
        }
        None => {
            std::io::stdout()
                .write_all(text.as_bytes())
                .expect("stdout");
        }
    }
}
