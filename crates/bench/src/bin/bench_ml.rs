//! Runs the pinned batched-vs-per-column ML inference benchmark and writes
//! the `BENCH_0004.json` document (see `grist_bench::ml` for what runs).
//!
//! Usage:
//!   cargo run --release -p grist-bench --bin bench_ml -- \
//!       [OUT.json] [--min-speedup X] [--min-simd-speedup X]
//!
//! Defaults to stdout when no path is given. The binary fails (exit 1) when
//! the batched engine is slower than `--min-speedup` × the per-column path
//! on the *serial* target (acceptance floor 3×), or when the SIMD GEMM
//! microkernel is slower than `--min-simd-speedup` × the scalar oracle on
//! the pinned macro-tile shape (floor 1.5×, best-of-N minima). Pass 0 to
//! either flag to disable that gate when exploring.

use std::io::Write;

fn main() {
    let mut out_path: Option<String> = None;
    let mut min_speedup = 3.0f64;
    let mut min_simd_speedup = 1.5f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut num = |name: &str| -> f64 {
            args.next()
                .unwrap_or_else(|| usage(&format!("{name} needs a value")))
                .parse()
                .unwrap_or_else(|_| usage(&format!("{name} value must be a number")))
        };
        match arg.as_str() {
            "--min-speedup" => min_speedup = num("--min-speedup"),
            "--min-simd-speedup" => min_simd_speedup = num("--min-simd-speedup"),
            _ if arg.starts_with("--") => usage(&format!("unknown flag {arg}")),
            _ if out_path.is_none() => out_path = Some(arg),
            _ => usage("at most one output path"),
        }
    }

    let bench = grist_bench::ml::run_ml();
    eprintln!(
        "bench_ml: serial batched/per-column speedup {:.2}x, cpe {:.2}x, \
         gemm simd/scalar {:.2}x",
        bench.serial_speedup, bench.cpe_speedup, bench.gemm_simd_speedup
    );

    let text = bench.doc.pretty();
    match out_path {
        Some(path) => {
            std::fs::write(&path, &text).unwrap_or_else(|e| {
                eprintln!("bench_ml: cannot write {path}: {e}");
                std::process::exit(2);
            });
            eprintln!("bench_ml: wrote {path} ({} bytes)", text.len());
        }
        None => {
            std::io::stdout()
                .write_all(text.as_bytes())
                .expect("stdout");
        }
    }

    if bench.serial_speedup < min_speedup {
        eprintln!(
            "bench_ml: FAIL — serial speedup {:.2}x below the {min_speedup}x floor",
            bench.serial_speedup
        );
        std::process::exit(1);
    }
    if bench.gemm_simd_speedup < min_simd_speedup {
        eprintln!(
            "bench_ml: FAIL — gemm simd speedup {:.2}x below the {min_simd_speedup}x floor",
            bench.gemm_simd_speedup
        );
        std::process::exit(1);
    }
}

fn usage(msg: &str) -> ! {
    eprintln!(
        "bench_ml: {msg}\n\
         usage: bench_ml [OUT.json] [--min-speedup X] [--min-simd-speedup X]"
    );
    std::process::exit(2);
}
