//! Regenerates the **§4.7 efficiency comparison**: "ML diagnosed surface
//! radiation requires approximately twice the number of FLOPS operations
//! compared to RRTMG. However, it can achieve peak FLOPS ranging from 74% to
//! 84% during computation, a significant improvement over the 6% in RRTMG."
//!
//! The conventional side is *measured* (the radiation scheme's FLOP ledger);
//! the ML side uses the exact layer FLOP counts of the CNN/MLP; the peak
//! fractions come from the instruction-mix model of `grist-ml::flops`.

use grist_bench::{fmt, Table};
use grist_ml::flops::{achieved_peak_fraction, ml_mix, rrtmg_like_mix};
use grist_ml::models::RadiationMlp;
use grist_physics::radiation::{radiation, RadiationConfig};
use grist_physics::Column;

fn main() {
    let nlev = 30;
    let col = Column::reference(nlev);
    let (_, _, ledger) = radiation(&col, &RadiationConfig::default());

    // The MLP that replaces the radiation *diagnostics* (gsw/glw); sized so
    // its FLOP count lands near 2× the measured conventional ledger, as the
    // paper reports for their configuration.
    let conv_flops = ledger.total() as f64;
    let mut width = 64;
    let mut mlp = RadiationMlp::new(2 * nlev + 2, width, 7);
    while (mlp.flops() as f64) < 2.0 * conv_flops && width < 4096 {
        width *= 2;
        mlp = RadiationMlp::new(2 * nlev + 2, width, 7);
    }

    let conv = rrtmg_like_mix(
        ledger.cheap as f64,
        ledger.expensive as f64,
        ledger.branches as f64,
    );
    let ml = ml_mix(mlp.flops() as f64);
    let f_conv = achieved_peak_fraction(&conv);
    let f_ml = achieved_peak_fraction(&ml);
    let t_conv = (conv.cheap_flops + conv.expensive_ops) / f_conv;
    let t_ml = (ml.cheap_flops + ml.expensive_ops) / f_ml;

    println!("# §4.7: conventional (RRTMG-like) vs ML radiation diagnostics, per column\n");
    let mut t = Table::new(&["quantity", "RRTMG-like", "ML radiation (MLP)"]);
    t.row(&[
        "FLOPs per column".into(),
        fmt(conv_flops),
        fmt(mlp.flops() as f64),
    ]);
    t.row(&[
        "FLOP ratio vs RRTMG".into(),
        "1.0".into(),
        fmt(mlp.flops() as f64 / conv_flops),
    ]);
    t.row(&[
        "achieved peak fraction".into(),
        format!("{:.1}%", f_conv * 100.0),
        format!("{:.1}%", f_ml * 100.0),
    ]);
    t.row(&["relative time".into(), "1.0".into(), fmt(t_ml / t_conv)]);
    t.row(&["speedup".into(), "-".into(), fmt(t_conv / t_ml)]);
    t.print();
    t.write_csv("flops_radiation").expect("csv");

    println!(
        "\nPaper targets: ~2x FLOPs, 74-84% vs 6% of peak; here: {:.1}x FLOPs, {:.0}% vs {:.0}%.",
        mlp.flops() as f64 / conv_flops,
        f_ml * 100.0,
        f_conv * 100.0
    );
    assert!(f_ml > 0.70, "ML fraction out of band");
    assert!(f_conv < 0.15, "conventional fraction out of band");
    assert!(t_conv / t_ml > 2.0, "ML radiation must win overall");
}
