//! Regenerates **Figure 8** in shape: rainfall from the conventional vs the
//! ML-based parameterization. The paper shows (a, b) 3-hour rain rate at
//! high resolution, and (c–f) annual-mean rainfall at G6 and G8 — the ML
//! suite reproduces the conventional suite's rain band at both resolutions
//! ("resolution-adaptive": trained at one coarse-grained resolution, applied
//! across resolutions).
//!
//! Here: train the ML suite once on coarse-grained fine-run data (the
//! §3.2.1 workflow), then compare zonal-mean precipitation between the
//! conventional and ML runs at *two* grid levels, plus a short
//! high-resolution integration — the three panels' worth of evidence.

#![allow(clippy::needless_range_loop)]

use grist_bench::{fmt, Table};
use grist_core::datagen::{generate_training_data, train_ml_suite, DataGenConfig};
use grist_core::{spatial_correlation, GristModel, RunConfig};

/// Run `hours` and return per-cell mean precip rate (mm/day).
fn precip_run(
    level: u32,
    nlev: usize,
    hours: f64,
    suite: Option<grist_core::MlSuite>,
) -> (grist_mesh::HexMesh, Vec<f64>) {
    let cfg = RunConfig::for_level(level, nlev).with_ml_physics(false);
    let mut m = GristModel::<f64>::new(cfg);
    if let Some(s) = suite {
        m.set_ml_suite(s);
    }
    m.advance(hours * 3600.0);
    let rate: Vec<f64> = m
        .precip_accum
        .iter()
        .map(|&mm| mm / (hours / 24.0))
        .collect();
    (m.solver.mesh.clone(), rate)
}

/// Zonal-mean profile in `nbands` latitude bands.
fn zonal_mean(mesh: &grist_mesh::HexMesh, field: &[f64], nbands: usize) -> Vec<f64> {
    let mut sum = vec![0.0; nbands];
    let mut wgt = vec![0.0; nbands];
    for c in 0..mesh.n_cells() {
        let lat = mesh.cell_xyz[c].lat();
        let i = (((lat / std::f64::consts::PI + 0.5) * nbands as f64) as usize).min(nbands - 1);
        sum[i] += field[c] * mesh.cell_area[c];
        wgt[i] += mesh.cell_area[c];
    }
    sum.iter()
        .zip(&wgt)
        .map(|(s, w)| if *w > 0.0 { s / w } else { 0.0 })
        .collect()
}

fn main() {
    // --- train the ML suite (the §3.2 pipeline) ---
    println!("# Figure 8 (shape): conventional vs ML-based parameterization rainfall\n");
    println!("Training the ML suite on coarse-grained fine-run data...");
    let data = generate_training_data(&DataGenConfig {
        fine_level: 3,
        coarse_level: 2,
        nlev: 12,
        steps_per_day: 24, // 3 test steps/day → the paper's exact 7:1 split
        days_per_period: 1,
        n_periods: 2,
        cell_stride: 2,
    });
    let (suite, report) = train_ml_suite(&data, 16, 25, 7);
    println!(
        "  CNN test loss: {:.4} (untrained {:.4}); MLP test loss {:.4} (untrained {:.4}); split {:.1}:1\n",
        report.cnn_test_loss,
        report.cnn_test_loss_untrained,
        report.mlp_test_loss,
        report.mlp_test_loss_untrained,
        report.train_test_ratio
    );

    let hours = 6.0;
    let nbands = 12;
    let mut t = Table::new(&[
        "grid (analogue)",
        "suite",
        "global precip (mm/day)",
        "tropics/extratropics",
        "zonal corr vs conventional",
    ]);

    let mut shape_ok = true;
    for (level, label) in [(2u32, "L2 (G6 analogue)"), (3u32, "L3 (G8 analogue)")] {
        let (mesh, conv) = precip_run(level, 12, hours, None);
        let (_, ml) = precip_run(level, 12, hours, Some(suite.clone()));
        let zc = zonal_mean(&mesh, &conv, nbands);
        let zm = zonal_mean(&mesh, &ml, nbands);
        // Pearson correlation of the zonal profiles.
        let corr = {
            let n = nbands as f64;
            let (ma, mb) = (zc.iter().sum::<f64>() / n, zm.iter().sum::<f64>() / n);
            let mut cov = 0.0;
            let mut va = 0.0;
            let mut vb = 0.0;
            for i in 0..nbands {
                cov += (zc[i] - ma) * (zm[i] - mb);
                va += (zc[i] - ma).powi(2);
                vb += (zm[i] - mb).powi(2);
            }
            if va * vb > 0.0 {
                cov / (va * vb).sqrt()
            } else {
                0.0
            }
        };
        let gm = |mesh: &grist_mesh::HexMesh, f: &[f64]| -> f64 {
            let w: f64 = mesh.cell_area.iter().sum();
            f.iter()
                .zip(&mesh.cell_area)
                .map(|(v, a)| v * a)
                .sum::<f64>()
                / w
        };
        let band_ratio = |mesh: &grist_mesh::HexMesh, f: &[f64]| -> f64 {
            let mut tr = 0.0;
            let mut trw = 0.0;
            let mut ex = 0.0;
            let mut exw = 0.0;
            for c in 0..mesh.n_cells() {
                let lat = mesh.cell_xyz[c].lat().to_degrees().abs();
                if lat < 20.0 {
                    tr += f[c] * mesh.cell_area[c];
                    trw += mesh.cell_area[c];
                } else if lat > 40.0 {
                    ex += f[c] * mesh.cell_area[c];
                    exw += mesh.cell_area[c];
                }
            }
            (tr / trw) / (ex / exw).max(0.05)
        };
        for (name, field) in [("Conventional", &conv), ("ML-physics", &ml)] {
            t.row(&[
                label.to_string(),
                name.to_string(),
                fmt(gm(&mesh, field)),
                fmt(band_ratio(&mesh, field)),
                if name == "Conventional" {
                    "1.0".into()
                } else {
                    fmt(corr)
                },
            ]);
        }
        if corr < 0.3 {
            shape_ok = false;
        }
        let _ = spatial_correlation(&mesh, &conv, &ml);
    }

    // Panel (a,b) analogue: short 3-hour high-resolution integration with the
    // (cross-resolution) ML suite stays stable and produces rain.
    let (_, hi_ml) = precip_run(4, 12, 3.0, Some(suite.clone()));
    let hi_finite = hi_ml.iter().all(|x| x.is_finite());
    let hi_rain: f64 = hi_ml.iter().cloned().fold(0.0, f64::max);

    t.print();
    t.write_csv("fig8_ml_physics").expect("csv");
    println!(
        "\n3-hour L4 (high-res) integration with the ML suite: finite = {hi_finite}, peak rain {} mm/day",
        fmt(hi_rain)
    );
    println!(
        "Paper shape — ML suite reproduces the conventional rain band across \
         resolutions: {}",
        if shape_ok { "holds" } else { "DOES NOT hold" }
    );
}
