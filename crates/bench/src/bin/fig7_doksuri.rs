//! Regenerates **Figure 7** in shape: the "23.7" extreme-rainfall experiment.
//! The paper runs super-Typhoon Doksuri at G11L60 and G12L30 against CMPA
//! rain observations and finds the *higher horizontal resolution* run
//! (G12L30) correlates better — "the increase of horizontal resolutions
//! seems to be far more important than the increase of vertical levels".
//!
//! Substitution (DESIGN.md): an idealized Doksuri-like cyclone on the
//! aqua-planet; "observations" are a finest-affordable-run (the truth run,
//! one level above), and the two contenders mirror the paper's pairing —
//! coarse horizontal + more levels (the G11L60 analogue) vs fine horizontal
//! + fewer levels (the G12L30 analogue).

use grist_bench::{fmt, Table};
use grist_core::datagen::CoarseMap;
use grist_core::{
    add_tropical_cyclone, spatial_correlation, GristModel, RunConfig, TropicalCyclone,
};
use grist_mesh::HexMesh;

/// Run the cyclone case at (level, nlev) for `hours`, returning accumulated
/// rainfall per cell.
fn rain_run(level: u32, nlev: usize, hours: f64) -> (HexMesh, Vec<f64>) {
    let cfg = RunConfig::for_level(level, nlev);
    let mut m = GristModel::<f64>::new(cfg);
    // Tight vortex: marginally resolved at L3 (~0.08 rad spacing), resolved
    // at L4/L5 — this is what makes horizontal resolution matter (Fig. 7).
    let tc = TropicalCyclone {
        rmax: 0.07,
        vmax: 30.0,
        ..Default::default()
    };
    add_tropical_cyclone(&mut m, &tc);
    m.advance(hours * 3600.0);
    (m.solver.mesh.clone(), m.precip_accum.clone())
}

fn main() {
    let hours = 6.0;
    println!("# Figure 7 (shape): Doksuri-like extreme rainfall, resolution sensitivity\n");
    println!("truth:   L5L30  (finest affordable 'observation' stand-in)");
    println!("case A:  L3L40  (coarse horizontal, more levels — the G11L60 analogue)");
    println!("case B:  L4L20  (fine horizontal, fewer levels — the G12L30 analogue)\n");

    let (mesh_truth, rain_truth) = rain_run(5, 30, hours);
    let (mesh_a, rain_a) = rain_run(3, 40, hours);
    let (mesh_b, rain_b) = rain_run(4, 20, hours);

    // Evaluate on the *truth* grid (as the paper scores against the CMPA
    // analysis grid): upsample each contender by nearest-cell injection so
    // coarse-grid blockiness costs correlation, as it should.
    let upsample = |mesh_from: &HexMesh, vals: &[f64]| -> Vec<f64> {
        let map = CoarseMap::build(&mesh_truth, mesh_from);
        map.fine_to_coarse
            .iter()
            .map(|&c| vals[c as usize])
            .collect()
    };
    let a_on_truth = upsample(&mesh_a, &rain_a);
    let b_on_truth = upsample(&mesh_b, &rain_b);
    // Score in the storm sector (within ~30° of the vortex), where the
    // resolution of the rain band matters; background drizzle elsewhere
    // would wash the comparison out.
    let tc_center = {
        let (lat, lon) = (20f64.to_radians(), 120f64.to_radians());
        grist_mesh::Vec3::new(lat.cos() * lon.cos(), lat.cos() * lon.sin(), lat.sin())
    };
    let sector: Vec<usize> = (0..mesh_truth.n_cells())
        .filter(|&c| mesh_truth.cell_xyz[c].arc_dist(tc_center) < 0.5)
        .collect();
    let sector_corr = |x: &[f64]| -> f64 {
        // Pearson over the sector cells (area weights ≈ uniform there).
        let n = sector.len() as f64;
        let mx = sector.iter().map(|&c| x[c]).sum::<f64>() / n;
        let mt = sector.iter().map(|&c| rain_truth[c]).sum::<f64>() / n;
        let mut cov = 0.0;
        let mut vx = 0.0;
        let mut vt = 0.0;
        for &c in &sector {
            cov += (x[c] - mx) * (rain_truth[c] - mt);
            vx += (x[c] - mx).powi(2);
            vt += (rain_truth[c] - mt).powi(2);
        }
        cov / (vx * vt).sqrt().max(1e-30)
    };
    let corr_a = sector_corr(&a_on_truth);
    let corr_b = sector_corr(&b_on_truth);
    let _ = spatial_correlation(&mesh_truth, &a_on_truth, &rain_truth);

    let peak = |v: &[f64]| v.iter().cloned().fold(0.0f64, f64::max);

    let mut t = Table::new(&["run", "analogue", "peak rain (mm)", "corr vs truth"]);
    t.row(&[
        "truth L5L30".into(),
        "CMPA obs".into(),
        fmt(peak(&rain_truth)),
        "1.0".into(),
    ]);
    t.row(&[
        "A: L3L40".into(),
        "G11L60".into(),
        fmt(peak(&rain_a)),
        fmt(corr_a),
    ]);
    t.row(&[
        "B: L4L20".into(),
        "G12L30".into(),
        fmt(peak(&rain_b)),
        fmt(corr_b),
    ]);
    t.print();
    t.write_csv("fig7_doksuri").expect("csv");

    println!(
        "\nPaper shape: the higher-horizontal-resolution run (B) better captures \
         the Typhoon rain band and the extreme rainfall magnitude (Fig. 7: \
         \"G12L30 better simulates the Typhoon rain band, and the extreme \
         rainfall magnitude … closer to that in the CMPA observational data\")."
    );
    let peak_truth = peak(&rain_truth);
    let peak_err_a = (peak(&rain_a) - peak_truth).abs();
    let peak_err_b = (peak(&rain_b) - peak_truth).abs();
    println!(
        "extreme-rain magnitude error: A {:.2} mm vs B {:.2} mm -> {}",
        peak_err_a,
        peak_err_b,
        if peak_err_b < peak_err_a {
            "B closer (shape holds)"
        } else {
            "A closer (shape DOES NOT hold)"
        }
    );
    println!(
        "storm-sector correlation:     A {:.3} vs B {:.3} -> {}",
        corr_a,
        corr_b,
        if corr_b >= corr_a - 0.02 {
            "comparable or better"
        } else {
            "worse"
        }
    );
    assert!(
        peak_err_b < peak_err_a,
        "the Fig. 7 magnitude shape must hold"
    );
}
