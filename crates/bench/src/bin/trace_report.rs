//! Traced multi-rank chaos scenario + performance-attribution report.
//!
//! Runs a short resilient coupled window on every rank of a 4-rank world
//! (each rank drives its own CPE-teams substrate over one *shared* metrics
//! registry, so all lanes share a clock origin), with ML physics on, a
//! seeded dispatch-fault storm per rank (transient retries plus one pinned
//! fault that forces degrade-to-serial), and one gathered halo-exchange
//! round with a pinned in-flight truncation — then:
//!
//! 1. exports the event trace as Chrome/Perfetto `trace_event` JSON
//!    (load it at <https://ui.perfetto.dev>),
//! 2. validates it (balanced `B`/`E`, per-lane monotone timestamps,
//!    >= 4 rank lanes, halo-wait events, >= 1 fault-injection event), and
//! 3. computes the roofline/critical-path attribution report
//!    (`sunway_sim::analyze`), written as JSON and printed as text.
//!
//! Usage:
//!   cargo run --release -p grist-bench --bin trace_report -- \
//!       [--json] [TRACE_OUT.json [REPORT_OUT.json]]
//!
//! Defaults: `target/trace.json` and `target/trace_report.json`; `--json`
//! prints the report document on stdout instead of the text table. Seed
//! with `CHAOS_SEED=<n>` (default 42). Exits nonzero when the trace fails
//! validation or misses any of the acceptance events above.

use grist_core::{GristModel, RunConfig};
use grist_mesh::{HaloLayout, HexMesh, Partition};
use grist_runtime::{exchange_gathered_chaos, halo_fault_key, run_world, VarList};
use sunway_sim::{
    analyze, trace, validate_chrome, EventKind, FaultPlan, FaultSite, Metrics, RooflineInputs,
    Substrate, SunwaySpec,
};

const RANKS: usize = 4;
const LEVEL: u32 = 2;
const NLEV: usize = 8;
const CPES: usize = 8;
const HALO_MESH_LEVEL: u32 = 3;
const HALO_TAG: u32 = 7;

fn fail(msg: &str) -> ! {
    eprintln!("trace_report: FAIL — {msg}");
    std::process::exit(1);
}

fn main() {
    let mut paths: Vec<String> = Vec::new();
    let mut json_mode = false;
    for a in std::env::args().skip(1) {
        if a == "--json" {
            json_mode = true;
        } else {
            paths.push(a);
        }
    }
    let trace_out = paths.first().cloned().unwrap_or("target/trace.json".into());
    let report_out = paths
        .get(1)
        .cloned()
        .unwrap_or("target/trace_report.json".into());
    let seed: u64 = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    // One shared registry: every rank's substrate clones it, so all lanes
    // land in one tracer with a single clock origin.
    let metrics = Metrics::default();
    metrics.tracer().enable();

    let mesh = HexMesh::build(HALO_MESH_LEVEL);
    let partition = Partition::build(&mesh, RANKS, 2);
    let layout = HaloLayout::build(&mesh, &partition, 1);
    let n = mesh.n_cells();
    // Pin the in-flight truncation onto a (receiver, sender) pair that
    // actually exchanges, like the chaos suite does.
    let victim = layout
        .locales
        .iter()
        .find(|l| !l.recv.is_empty())
        .expect("some rank has halos");
    let (vrank, vsrc) = (victim.rank, victim.recv[0].0);
    let halo_plan = FaultPlan::new(seed).pin(
        FaultSite::HaloExchange,
        halo_fault_key(vrank, vsrc, HALO_TAG),
    );

    run_world(RANKS, |mut ctx| {
        trace::set_thread_rank(ctx.rank as u32);

        // Resilient coupled window under a per-rank dispatch-fault storm.
        let sub = Substrate::cpe_teams_with_metrics(CPES, metrics.clone());
        sub.arm_faults(
            FaultPlan::new(seed.wrapping_add(ctx.rank as u64))
                .with_rate(FaultSite::Dispatch, 0.02)
                .pin(FaultSite::Dispatch, 11),
        );
        let cfg = RunConfig::for_level(LEVEL, NLEV).with_ml_physics(true);
        let window = cfg.dt_dyn * cfg.dyn_per_phy() as f64;
        let mut model = GristModel::<f64>::with_substrate(cfg, sub);
        model.advance_resilient(window);

        // One gathered halo round; the pinned truncation surfaces as a
        // typed error on the victim rank and a fault event in the trace.
        let locale = &layout.locales[ctx.rank];
        let mut h = vec![0.0f64; n * NLEV];
        let mut list = VarList::new();
        list.push("h", NLEV, &mut h);
        let r =
            exchange_gathered_chaos(&mut ctx, locale, &mut list, HALO_TAG, &metrics, &halo_plan);
        if ctx.rank == vrank {
            if r.is_ok() {
                fail("pinned halo truncation did not surface on the victim rank");
            }
        } else {
            r.expect("clean ranks exchange successfully");
        }
    });
    metrics.tracer().disable();

    let snap = metrics.tracer().snapshot();
    let chrome = snap.to_chrome_json();
    let stats = match validate_chrome(&chrome) {
        Ok(s) => s,
        Err(e) => fail(&format!("exported trace fails schema validation: {e}")),
    };
    if stats.ranks < RANKS {
        fail(&format!(
            "only {} rank lanes traced, need {RANKS}",
            stats.ranks
        ));
    }
    if snap.count_kind(EventKind::HaloWait) == 0 {
        fail("no halo-wait events traced");
    }
    if snap.count_kind(EventKind::Fault) == 0 {
        fail("no fault-injection events traced");
    }

    // Roofline inputs: arch constants plus the exact ML FLOP counters,
    // mirroring `GristModel::roofline_inputs` over the shared registry.
    let mut inputs = RooflineInputs::from_arch(&SunwaySpec::next_gen());
    for (counter, leaf) in [
        ("ml.flops_batched", "ml_physics_blocks"),
        ("ml.flops_percol", "ml_physics_columns"),
    ] {
        let v = metrics.counter(counter);
        if v > 0 {
            inputs.flops_by_kernel.insert(leaf.into(), v);
        }
    }
    let report = analyze(&snap, &inputs);

    for (path, text) in [
        (&trace_out, snap.to_chrome_string()),
        (&report_out, report.to_json().pretty()),
    ] {
        if let Some(dir) = std::path::Path::new(path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        std::fs::write(path, &text).unwrap_or_else(|e| {
            eprintln!("trace_report: cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("trace_report: wrote {path} ({} bytes)", text.len());
    }

    if json_mode {
        println!("{}", report.to_json().pretty());
    } else {
        print!("{}", report.to_text());
        println!(
            "trace_report: {} events across {} lanes / {} ranks ({} B / {} E / {} i), {} dropped",
            stats.events,
            stats.lanes,
            stats.ranks,
            stats.begins,
            stats.ends,
            stats.instants,
            snap.dropped
        );
        println!("trace_report: OK — open {trace_out} at https://ui.perfetto.dev");
    }
}
