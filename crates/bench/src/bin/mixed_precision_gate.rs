//! Regenerates the **§3.4 mixed-precision validation hierarchy**: "We have
//! performed a hierarchy of tests ranging from idealized tropical cyclone,
//! supercell, baroclinic waves to real-world long-term climate simulations
//! … we establish a 5% error threshold", gauged by the relative L2 norm of
//! surface pressure (`ps`, mass field) and relative vorticity (`vor`,
//! velocity field) against the double-precision gold run (§3.4.1).

use grist_bench::{fmt, Table};
use grist_core::{
    add_baroclinic_jet, add_supercell_patch, add_tropical_cyclone, precision_gate, RunConfig,
    TropicalCyclone,
};

fn main() {
    let cfg = RunConfig::for_level(3, 12);
    let hours = 6.0;
    let sim_seconds = hours * 3600.0;

    println!(
        "# §3.4 mixed-precision gate: f32 working precision vs f64 gold, {hours} h @ G{}L{}\n",
        cfg.level, cfg.nlev
    );
    let mut t = Table::new(&["case", "ps rel-L2", "vor rel-L2", "threshold", "verdict"]);

    let mut run = |name: &str, gate: grist_core::PrecisionGate| {
        let verdict = if gate.passes() { "PASS" } else { "FAIL" };
        t.row(&[
            name.to_string(),
            fmt(gate.ps_error),
            fmt(gate.vor_error),
            fmt(gate.threshold),
            verdict.to_string(),
        ]);
        assert!(gate.passes(), "{name}: mixed-precision gate failed");
    };

    run(
        "idealized tropical cyclone",
        precision_gate(&cfg, sim_seconds, |m| {
            add_tropical_cyclone(
                m,
                &TropicalCyclone {
                    rmax: 0.12,
                    ..Default::default()
                },
            )
        }),
    );
    run(
        "supercell patch",
        precision_gate(&cfg, sim_seconds, |m| add_supercell_patch(m, 0.6, 0.3)),
    );
    run(
        "baroclinic wave",
        precision_gate(&cfg, sim_seconds, |m| add_baroclinic_jet(m, 25.0, 1.0)),
    );
    run(
        "aqua-planet (rest + physics)",
        precision_gate(&cfg, sim_seconds, |_| {}),
    );

    t.print();
    t.write_csv("mixed_precision_gate").expect("csv");
    println!("\nAll cases under the paper's 5% threshold.");
}
