//! Regenerates **Figure 9**: per-kernel CPE speedups over the MPE
//! double-precision baseline, for the four variants DP / DP+DST / MIX /
//! MIX+DST, on the G6 grid (the artifact's 128-process, 100 km demo case).
//!
//! Two tables are produced:
//! 1. the modeled Sunway speedups (roofline + LDCache simulator), which is
//!    the Fig. 9 reproduction proper, and
//! 2. measured host-CPU timings of the *real* kernels in f64 vs f32 — the
//!    portable sanity check that mixed precision pays off on bandwidth-bound
//!    kernels on commodity hardware too. The f64 pass is also run with the
//!    scalar-reference kernels (`KernelMode::ScalarReference`) so the lane
//!    kernels' measured speedup shows up next to the precision ratio.
//!
//! Pass `--json` to emit one machine-readable document (schema
//! `grist-fig9-v1`) on stdout instead of the tables/CSVs.

use grist_bench::{fmt, Table};
use grist_dycore::kernels as dk;
use grist_dycore::operators::ScaledGeometry;
use grist_dycore::{Field2, Real};
use grist_mesh::{HexMesh, EARTH_OMEGA, EARTH_RADIUS_M};
use std::time::Instant;
use sunway_sim::perf::{fig9_kernels, fig9_table, ExecTarget, PerfModel};
use sunway_sim::{format_kernel_report, Json, KernelMode, Substrate, SunwaySpec};

fn time_host_kernels<R: Real>(
    sub: &Substrate,
    mesh: &HexMesh,
    nlev: usize,
    reps: usize,
) -> Vec<(&'static str, f64)> {
    let geom: ScaledGeometry<R> = ScaledGeometry::new(mesh, EARTH_RADIUS_M, EARTH_OMEGA);
    let (nc, ne) = (mesh.n_cells(), mesh.n_edges());
    let ke = Field2::<R>::from_fn(nlev, nc, |k, c| R::from_f64((c % 97) as f64 + k as f64));
    let dpi = Field2::<R>::constant(nlev, nc, R::from_f64(800.0));
    let theta = Field2::<R>::constant(nlev, nc, R::from_f64(300.0));
    let dphi = Field2::<R>::constant(nlev, nc, R::from_f64(2200.0));
    let qv = Field2::<R>::constant(nlev, nc, R::from_f64(0.008));
    let q0 = Field2::<R>::zeros(nlev, nc);
    let u = Field2::<R>::from_fn(nlev, ne, |k, e| R::from_f64(((e + k) % 41) as f64 * 0.1));
    let pv = Field2::<R>::constant(nlev, ne, R::from_f64(1e-4));
    let vt = Field2::<R>::from_fn(nlev, ne, |_, e| R::from_f64((e % 13) as f64));
    let mut out_e = Field2::<R>::zeros(nlev, ne);
    let mut out_c = Field2::<R>::zeros(nlev, nc);

    let mut results = Vec::new();
    let timeit = |f: &mut dyn FnMut()| -> f64 {
        f(); // warm up
        let t0 = Instant::now();
        for _ in 0..reps {
            f();
        }
        t0.elapsed().as_secs_f64() / reps as f64
    };
    results.push((
        "grad_kinetic_energy",
        timeit(&mut || dk::grad_kinetic_energy(sub, mesh, &geom, &ke, &mut out_e)),
    ));
    results.push((
        "primal_normal_flux_edge",
        timeit(&mut || dk::primal_normal_flux_edge(sub, mesh, &geom, &u, &dpi, &theta, &mut out_e)),
    ));
    results.push((
        "compute_rrr",
        timeit(&mut || dk::compute_rrr(sub, &dpi, &dphi, &qv, &q0, &q0, &theta, &mut out_c)),
    ));
    results.push((
        "calc_coriolis_term",
        timeit(&mut || dk::calc_coriolis_term(sub, &pv, &vt, &mut out_e)),
    ));
    results
}

fn main() {
    let json_mode = std::env::args().any(|a| a == "--json");
    let spec = SunwaySpec::next_gen();
    let model = PerfModel::default();
    let nlev = 30;

    let kernels = fig9_kernels(40_962, 122_880, nlev);
    let table = fig9_table(&kernels, &spec, &model);

    let mesh = HexMesh::build(5);
    let reps = 10;
    let sub = Substrate::cpe_teams(64);
    // Scalar-reference pass first, then the lane kernels (the production
    // default) for the f64/f32 comparison — same substrate, mode-switched.
    sub.set_kernel_mode(KernelMode::ScalarReference);
    let t64_scalar = time_host_kernels::<f64>(&sub, &mesh, nlev, reps);
    sub.set_kernel_mode(KernelMode::Simd);
    let t64 = time_host_kernels::<f64>(&sub, &mesh, nlev, reps);
    let t32 = time_host_kernels::<f32>(&sub, &mesh, nlev, reps);

    if json_mode {
        let mut modeled: Vec<(String, Json)> = Vec::new();
        for row in &table {
            for &(target, s) in &row.speedup {
                modeled.push((format!("{}.{}", row.name, target.label()), Json::Num(s)));
            }
        }
        let mut host: Vec<(String, Json)> = Vec::new();
        for (((name, a), (_, b)), (_, s)) in t64.iter().zip(&t32).zip(&t64_scalar) {
            host.push((format!("{name}.scalar_f64_ms"), Json::Num(s * 1e3)));
            host.push((format!("{name}.f64_ms"), Json::Num(a * 1e3)));
            host.push((format!("{name}.f32_ms"), Json::Num(b * 1e3)));
            host.push((format!("{name}.ratio"), Json::Num(a / b)));
            host.push((format!("{name}.lanes_speedup"), Json::Num(s / a)));
        }
        let doc = Json::Obj(vec![
            ("schema".into(), Json::Str("grist-fig9-v1".into())),
            (
                "config".into(),
                Json::Obj(vec![
                    ("cells".into(), Json::Num(40_962.0)),
                    ("edges".into(), Json::Num(122_880.0)),
                    ("nlev".into(), Json::Num(nlev as f64)),
                    ("host_mesh_level".into(), Json::Num(5.0)),
                    ("host_reps".into(), Json::Num(reps as f64)),
                ]),
            ),
            ("modeled_speedup".into(), Json::Obj(modeled)),
            ("host".into(), Json::Obj(host)),
        ]);
        println!("{}", doc.pretty());
        return;
    }

    println!("# Figure 9 (modeled): kernel speedups over MPE-DP, G6 grid, 64 CPEs/CG\n");
    let mut t = Table::new(&["kernel", "CPE-DP", "CPE-DP+DST", "CPE-MIX", "CPE-MIX+DST"]);
    for row in &table {
        let get = |target: ExecTarget| -> String {
            fmt(row
                .speedup
                .iter()
                .find(|&&(tt, _)| tt == target)
                .map(|&(_, s)| s)
                .unwrap())
        };
        t.row(&[
            row.name.to_string(),
            get(ExecTarget::CpeDp),
            get(ExecTarget::CpeDpDst),
            get(ExecTarget::CpeMix),
            get(ExecTarget::CpeMixDst),
        ]);
    }
    t.print();
    t.write_csv("fig9_modeled").expect("csv");
    println!("\nPaper band check: major-kernel CPE-MIX+DST speedups should sit near 20–70x\n");

    println!("# Host measurement: real kernels, f64 vs f32 (G5 grid, {nlev} levels)\n");
    let mut th = Table::new(&[
        "kernel",
        "scalar f64 (ms)",
        "f64 (ms)",
        "f32 (ms)",
        "f64/f32",
        "lanes",
    ]);
    for (((name, a), (_, b)), (_, s)) in t64.iter().zip(&t32).zip(&t64_scalar) {
        th.row(&[
            name.to_string(),
            fmt(s * 1e3),
            fmt(a * 1e3),
            fmt(b * 1e3),
            fmt(a / b),
            fmt(s / a),
        ]);
    }
    th.print();
    th.write_csv("fig9_host").expect("csv");

    println!("\n# Substrate kernel report (CPE-teams target, f64+f32 passes)\n");
    print!("{}", format_kernel_report(&sub.kernel_report()));
}
