//! Runs the pinned serving benchmark and writes the `BENCH_serve.json`
//! document (see `grist_bench::serve` for what runs).
//!
//! Usage:
//!   cargo run --release -p grist-bench --bin bench_serve -- \
//!       [OUT.json] [--min-speedup X]
//!
//! Defaults to stdout when no path is given. The binary fails (exit 1) when
//! the batched dispatch path is slower than `--min-speedup` × the per-query
//! reference path (acceptance floor 2×), or when the bitwise
//! recompute-from-checkpoint verification covered nothing. The verification
//! itself has no tolerance: any served product differing from its source
//! checkpoint by a single bit panics inside the run. Pass 0 to the flag to
//! disable the speedup gate when exploring.

use std::io::Write;

fn main() {
    let mut out_path: Option<String> = None;
    let mut min_speedup = 2.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--min-speedup" => {
                min_speedup = args
                    .next()
                    .unwrap_or_else(|| usage("--min-speedup needs a value"))
                    .parse()
                    .unwrap_or_else(|_| usage("--min-speedup value must be a number"));
            }
            _ if arg.starts_with("--") => usage(&format!("unknown flag {arg}")),
            _ if out_path.is_none() => out_path = Some(arg),
            _ => usage("at most one output path"),
        }
    }

    let bench = grist_bench::serve::run_serve();
    eprintln!(
        "bench_serve: batched/per-query speedup {:.2}x, {} products verified \
         bitwise against checkpoints; traffic p50 {:.3} ms, p99 {:.3} ms, \
         {:.0} qps",
        bench.speedup, bench.verified_products, bench.p50_ms, bench.p99_ms, bench.qps
    );

    let text = bench.doc.pretty();
    match out_path {
        Some(path) => {
            std::fs::write(&path, &text).unwrap_or_else(|e| {
                eprintln!("bench_serve: cannot write {path}: {e}");
                std::process::exit(2);
            });
            eprintln!("bench_serve: wrote {path} ({} bytes)", text.len());
        }
        None => {
            std::io::stdout()
                .write_all(text.as_bytes())
                .expect("stdout");
        }
    }

    if bench.verified_products == 0 {
        eprintln!("bench_serve: FAIL — the bitwise verification covered no products");
        std::process::exit(1);
    }
    if bench.speedup < min_speedup {
        eprintln!(
            "bench_serve: FAIL — batched speedup {:.2}x below the {min_speedup}x floor",
            bench.speedup
        );
        std::process::exit(1);
    }
}

fn usage(msg: &str) -> ! {
    eprintln!(
        "bench_serve: {msg}\n\
         usage: bench_serve [OUT.json] [--min-speedup X]"
    );
    std::process::exit(2);
}
