//! Compare a fresh `BENCH_*.json` document against a committed baseline and
//! exit nonzero when anything regressed — the CI bench gate.
//!
//! Usage:
//!   cargo run --release -p grist-bench --bin bench_compare -- \
//!       OLD.json NEW.json [--tolerance PCT] [--time-tolerance PCT] \
//!       [--markdown-summary]
//!
//! `--markdown-summary` additionally prints a baseline-vs-current delta
//! table as GitHub-flavored markdown on stdout, for appending to
//! `$GITHUB_STEP_SUMMARY` in CI. The table is emitted whether or not the
//! gate passes; the human pass/fail messages go to stderr so stdout stays
//! clean markdown.
//!
//! Exit codes: 0 = no regressions, 1 = regressions found, 2 = bad
//! usage/unreadable/malformed input.

use grist_bench::compare::{compare_docs, markdown_delta_table, CompareConfig};
use sunway_sim::Json;

fn usage() -> ! {
    eprintln!(
        "usage: bench_compare OLD.json NEW.json [--tolerance PCT] [--time-tolerance PCT] \
         [--markdown-summary]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<&str> = Vec::new();
    let mut cfg = CompareConfig::default();
    let mut markdown = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut pct = |name: &str| -> f64 {
            it.next()
                .and_then(|v| v.parse().ok())
                .filter(|p: &f64| p.is_finite() && *p >= 0.0)
                .unwrap_or_else(|| {
                    eprintln!("bench_compare: {name} needs a non-negative percentage");
                    usage();
                })
        };
        match a.as_str() {
            "--tolerance" => cfg.tolerance = pct("--tolerance"),
            "--time-tolerance" => cfg.time_tolerance = pct("--time-tolerance"),
            "--markdown-summary" => markdown = true,
            _ if a.starts_with("--") => usage(),
            other => paths.push(other),
        }
    }
    let [old_path, new_path] = paths[..] else {
        usage();
    };

    let load = |path: &str| -> Json {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("bench_compare: cannot read {path}: {e}");
            std::process::exit(2);
        });
        Json::parse(&text).unwrap_or_else(|e| {
            eprintln!("bench_compare: {path}: {e}");
            std::process::exit(2);
        })
    };
    let old = load(old_path);
    let new = load(new_path);

    if markdown {
        match markdown_delta_table(&old, &new) {
            Ok(table) => {
                println!("### `{new_path}` vs `{old_path}`\n");
                println!("{table}");
            }
            Err(e) => {
                eprintln!("bench_compare: {e}");
                std::process::exit(2);
            }
        }
    }

    match compare_docs(&old, &new, &cfg) {
        Err(e) => {
            eprintln!("bench_compare: {e}");
            std::process::exit(2);
        }
        Ok(regressions) if regressions.is_empty() => {
            eprintln!(
                "bench_compare: OK — {new_path} within tolerance of {old_path} \
                 (counters ±{}%, wall times +{}%)",
                cfg.tolerance, cfg.time_tolerance
            );
        }
        Ok(regressions) => {
            eprintln!(
                "bench_compare: {} regression(s) in {new_path} vs {old_path}:",
                regressions.len()
            );
            for r in &regressions {
                eprintln!("  {r}");
            }
            std::process::exit(1);
        }
    }
}
