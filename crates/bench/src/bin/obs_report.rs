//! The telemetry-plane report behind the CI `obs` job: run the observed
//! serving scenario ([`grist_bench::obs`]), emit the machine-readable
//! `grist-obs-v1` dashboard JSON plus the human Markdown summary, and gate:
//!
//! * any SLO breach recorded during or after the scenario,
//! * any `HealthWatch` alert,
//! * disabled-path overhead above 1% of the measured serve p50,
//! * any embedded percentile not bitwise reproducible from its own bucket
//!   counts (checked inside the scenario; a mismatch panics there).
//!
//! Usage: `cargo run --release -p grist-bench --bin obs_report -- \
//!   [DASHBOARD.json [REPORT.md]]` — with no arguments the JSON goes to
//! stdout and the Markdown to stderr. Exit codes: 0 = all gates pass,
//! 1 = a gate failed (the report is still written first, so CI uploads the
//! evidence of the failure).

use grist_bench::obs::{run_obs, MAX_OVERHEAD_PCT};
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let b = run_obs();

    let json = b.dashboard.pretty();
    match args.first() {
        Some(path) => {
            std::fs::write(path, &json).unwrap_or_else(|e| {
                eprintln!("obs_report: cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("obs_report: dashboard -> {path}");
        }
        None => println!("{json}"),
    }
    match args.get(1) {
        Some(path) => {
            std::fs::write(path, &b.markdown).unwrap_or_else(|e| {
                eprintln!("obs_report: cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("obs_report: markdown -> {path}");
        }
        None => eprint!("{}", b.markdown),
    }

    eprintln!(
        "obs_report: {} queries, p50 {:.3} ms, disabled path {:.2} ns/query \
         ({:.4}% of p50, limit {MAX_OVERHEAD_PCT}%), {} percentiles verified bitwise",
        b.plane.serve_latency_snapshot().count,
        b.p50_ns as f64 / 1e6,
        b.disabled_ns_per_query,
        b.overhead_pct,
        b.percentiles_verified,
    );

    let mut failed = false;
    let alerts = b.plane.watch().alerts();
    if !alerts.is_empty() {
        failed = true;
        eprintln!("obs_report: FAIL — {} health alert(s):", alerts.len());
        for a in &alerts {
            eprintln!(
                "  {} at epoch {}: {:.6e} (threshold {:.6e})",
                a.kind.name(),
                a.epoch,
                a.value,
                a.threshold
            );
        }
    }
    if b.plane.slo_breaches() > 0 {
        failed = true;
        eprintln!(
            "obs_report: FAIL — {} SLO breach(es) in {} evaluation(s): {:?}",
            b.plane.slo_breaches(),
            b.plane.slo_evals(),
            b.plane.last_slo_status().map(|s| s.violated),
        );
    }
    if b.overhead_pct > MAX_OVERHEAD_PCT {
        failed = true;
        eprintln!(
            "obs_report: FAIL — disabled-path overhead {:.4}% of serve p50 \
             exceeds the {MAX_OVERHEAD_PCT}% budget",
            b.overhead_pct
        );
    }

    let _ = std::io::stderr().flush();
    if failed {
        std::process::exit(1);
    }
    eprintln!("obs_report: OK");
}
