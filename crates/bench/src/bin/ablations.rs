//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. **BFS index reordering** (§3.1.3) — cache-locality metric and LDCache
//!    hit ratio with and without the breadth-first renumbering.
//! 2. **Gathered halo exchange** (§3.1.3) — message count of the linked-list
//!    single-call exchange vs one message per variable.
//! 3. **Address distribution** (§3.3.3) — LDCache hit ratio sweep over the
//!    number of concurrently streamed arrays, aligned vs distributed.
//! 4. **Grouped parallel I/O** (§3.1.3) — concurrent writer counts.

use grist_bench::{fmt, Table};
use grist_mesh::{bfs_cell_order, edge_index_span, HexMesh, Partition, Permutation};
use grist_runtime::pio::n_writers;
use sunway_sim::distributor::{AllocPolicy, PoolAllocator};
use sunway_sim::ldcache::{simulate_streams, LdCache};
use sunway_sim::SunwaySpec;

fn main() {
    let spec = SunwaySpec::next_gen();

    // ---------------- 1. BFS reorder ----------------
    println!("# Ablation 1: BFS index-sequence optimization (§3.1.3)\n");
    let mesh = HexMesh::build(5);
    let ident = Permutation::identity(mesh.n_cells());
    let bfs = bfs_cell_order(&mesh, 0);
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let mut shuffled: Vec<u32> = (0..mesh.n_cells() as u32).collect();
    shuffled.shuffle(&mut rng);
    let random = Permutation::from_order(shuffled);

    let mut t1 = Table::new(&["ordering", "mean edge index span", "vs random"]);
    let spans = [
        ("random", edge_index_span(&mesh, &random)),
        ("construction order", edge_index_span(&mesh, &ident)),
        ("BFS", edge_index_span(&mesh, &bfs)),
    ];
    for (name, s) in spans {
        t1.row(&[name.into(), fmt(s), fmt(s / spans[0].1)]);
    }
    t1.print();
    t1.write_csv("ablation_bfs").expect("csv");

    // ---------------- 2. Gathered exchange ----------------
    println!("\n# Ablation 2: gathered vs per-variable halo exchange\n");
    let partition = Partition::build(&mesh, 16, 2);
    let layout = grist_mesh::HaloLayout::build(&mesh, &partition, 1);
    let pairs = layout.message_count();
    let mut t2 = Table::new(&[
        "variables",
        "gathered msgs",
        "per-variable msgs",
        "reduction",
    ]);
    for nvars in [1usize, 4, 10, 20] {
        t2.row(&[
            nvars.to_string(),
            pairs.to_string(),
            (pairs * nvars).to_string(),
            format!("{nvars}x"),
        ]);
    }
    t2.print();
    t2.write_csv("ablation_exchange").expect("csv");

    // ---------------- 3. Address distribution sweep ----------------
    println!("\n# Ablation 3: LDCache hit ratio vs streamed arrays (Fig. 6 mechanism)\n");
    let mut t3 = Table::new(&["arrays", "aligned hit%", "distributed hit%"]);
    for n in 1..=10usize {
        let mut hit = [0.0f64; 2];
        for (i, policy) in [AllocPolicy::Aligned, AllocPolicy::Distributed]
            .iter()
            .enumerate()
        {
            let mut alloc = PoolAllocator::new(*policy, &spec, n.max(1));
            let bases: Vec<u64> = (0..n).map(|_| alloc.alloc(512 * 1024)).collect();
            let mut cache = LdCache::sw26010p(&spec);
            hit[i] = simulate_streams(&mut cache, &bases, 8, 20_000);
        }
        t3.row(&[
            n.to_string(),
            format!("{:.1}", hit[0] * 100.0),
            format!("{:.1}", hit[1] * 100.0),
        ]);
    }
    t3.print();
    t3.write_csv("ablation_distributor").expect("csv");
    println!("\n(The aligned layout collapses once arrays exceed the 4 cache ways.)");

    // ---------------- 3b. BFS reorder → measured LDCache hits ----------------
    // Feed the *actual* edge→cell indirect access stream of a gradient-type
    // kernel through the cache simulator under each cell ordering.
    println!("\n# Ablation 3b: cell ordering vs LDCache hit ratio (real index streams, G6)\n");
    let mesh6 = HexMesh::build(6);
    let ident6 = Permutation::identity(mesh6.n_cells());
    let bfs6 = bfs_cell_order(&mesh6, 0);
    let mut shuffled6: Vec<u32> = (0..mesh6.n_cells() as u32).collect();
    shuffled6.shuffle(&mut rng);
    let random6 = Permutation::from_order(shuffled6);
    let mesh = &mesh6;
    let mut t3b = Table::new(&["ordering", "hit ratio %"]);
    let run_stream = |perm: &Permutation| -> f64 {
        let mut cache = LdCache::sw26010p(&spec);
        // Two cell arrays (e.g. ke at c1 and c2) + one edge output stream.
        let cell_base0: u64 = 0;
        let cell_base1: u64 = 1 << 24;
        let edge_base: u64 = 1 << 25;
        for e in 0..mesh.n_edges() {
            let [c1, c2] = mesh.edge_cells[e];
            let a = perm.new_of_old[c1 as usize] as u64;
            let b = perm.new_of_old[c2 as usize] as u64;
            cache.access(cell_base0 + a * 8);
            cache.access(cell_base1 + b * 8);
            cache.access(edge_base + e as u64 * 8);
        }
        cache.hit_ratio()
    };
    for (name, perm) in [
        ("random", &random6),
        ("construction order", &ident6),
        ("BFS", &bfs6),
    ] {
        t3b.row(&[name.into(), format!("{:.1}", run_stream(perm) * 100.0)]);
    }
    t3b.print();
    t3b.write_csv("ablation_reorder_cache").expect("csv");

    // ---------------- 4. Grouped I/O ----------------
    println!("\n# Ablation 4: grouped parallel I/O writer counts\n");
    let mut t4 = Table::new(&["processes", "group=1 (naive)", "group=64", "group=256"]);
    for p in [128usize, 32_768, 524_288] {
        t4.row(&[
            p.to_string(),
            n_writers(p, 1).to_string(),
            n_writers(p, 64).to_string(),
            n_writers(p, 256).to_string(),
        ]);
    }
    t4.print();
    t4.write_csv("ablation_pio").expect("csv");
}
