//! The halo-overlap scaling benchmark behind `BENCH_scaling.json`:
//!
//! 1. Runs the 4-rank phased shallow-water scenario twice — once with the
//!    synchronous gathered exchange, once with the async begin/complete
//!    overlap — on traced CPE-teams substrates, and **gates** that
//!    (a) the two modes are bitwise identical, (b) their deterministic
//!    counters agree, and (c) `trace::analyze`'s halo wait-vs-transfer
//!    split shows the overlapped mode cutting wait time by at least 30%.
//! 2. Calibrates the SDPD projection model from the run's *deterministic*
//!    counters ([`grist_runtime::scaling::MeasuredCosts`]) — never wall
//!    times — with a pinned overlap factor, and emits weak- (128 →
//!    524,288) and strong-scaling projections.
//! 3. Writes a `grist-bench-v1` document whose gated `metrics` and
//!    `projections` sections are byte-identical across machines (kernel
//!    and span wall nanos are zeroed; everything else is counter-derived).
//!    The live wait measurements go in the non-gated `overlap` section.
//!
//! Usage: `cargo run --release -p grist-bench --bin bench_scaling -- [OUT.json]`
//! (defaults to stdout). Exit codes: 0 = gates pass, 1 = a gate failed.

use grist_core::DynStepMode;
use grist_dycore::swe::{williamson_tc2, SwePhases, SweSolver};
use grist_mesh::{HaloLayout, HexMesh, Partition};
use grist_runtime::run_world;
use grist_runtime::scaling::{
    grid_by_label, weak_scaling_efficiencies, weak_scaling_ladder, MeasuredCosts, Scheme,
    SdpdModel, SdpdModelConfig,
};
use std::io::Write;
use sunway_sim::{analyze, trace, Json, Metrics, RooflineInputs, Substrate, SunwaySpec};

const RANKS: usize = 4;
const LEVEL: u32 = 4;
const STEPS: usize = 16;
const CPES: usize = 8;
const DT: f64 = 400.0;

/// The committed projections use this overlap fraction — the floor the
/// live gate enforces — so the baseline stays deterministic while the
/// measured reduction may run well past it.
const PINNED_OVERLAP: f64 = 0.30;

/// Live gate: overlapped halo wait must be at most this share of the
/// synchronous wait (≥ 30% reduction).
const MAX_WAIT_RATIO: f64 = 0.70;

fn fail(msg: &str) -> ! {
    eprintln!("bench_scaling: FAIL — {msg}");
    std::process::exit(1);
}

/// Run the phased 4-rank scenario in `mode` on a shared traced registry;
/// return the registry and each rank's final `h` bit pattern.
fn run_mode(mode: DynStepMode) -> (Metrics, Vec<Vec<u64>>) {
    let metrics = Metrics::default();
    metrics.tracer().enable_with_capacity(1 << 20);

    let mesh = HexMesh::build(LEVEL);
    let partition = Partition::build(&mesh, RANKS, 2);
    let layout = HaloLayout::build(&mesh, &partition, 2);
    let (layout, metrics_ref) = (&layout, &metrics);

    let (results, _) = run_world(RANKS, move |mut ctx| {
        trace::set_thread_rank(ctx.rank as u32);
        let mesh = HexMesh::build(LEVEL);
        let locale = &layout.locales[ctx.rank];
        let split = locale.phase_split(&mesh, 1);
        let sub = Substrate::cpe_teams_with_metrics(CPES, metrics_ref.clone());
        let mut solver = SweSolver::<f64>::with_substrate(mesh, sub);
        let phases = SwePhases::build(&solver.mesh, &split.interior_cells);
        let mut state = williamson_tc2::<f64>(&solver.mesh);
        for step in 0..STEPS {
            grist_core::swe_dyn_step(
                &mut solver,
                &mut state,
                DT,
                &mut ctx,
                locale,
                &phases,
                100 + step as u32,
                mode,
                Some(metrics_ref),
                None,
            )
            .expect("fault-free exchange");
            // Step barrier in BOTH modes: aligned step starts make the wait
            // split measure the exchange structure (when messages travel
            // relative to the interior compute), not accumulated scheduler
            // drift between ranks.
            ctx.barrier(10_000 + step as u32);
        }
        state.h.as_slice().iter().map(|v| v.to_bits()).collect()
    });
    metrics.tracer().disable();
    (metrics, results)
}

fn main() {
    let (sync_metrics, sync_states) = run_mode(DynStepMode::Synchronous);
    let (ovl_metrics, ovl_states) = run_mode(DynStepMode::Overlapped);

    // --- gate: bitwise identity between the modes ---
    for rank in 0..RANKS {
        if sync_states[rank] != ovl_states[rank] {
            fail(&format!(
                "rank {rank}: overlapped state is not bitwise identical to synchronous"
            ));
        }
    }

    // --- gate: identical deterministic counters ---
    let sync_snap = sync_metrics.snapshot();
    let ovl_snap = ovl_metrics.snapshot();
    if sync_snap.counters != ovl_snap.counters {
        let diff: Vec<String> = sync_snap
            .counters
            .iter()
            .filter(|(k, v)| ovl_snap.counters.get(*k) != Some(v))
            .map(|(k, v)| {
                format!(
                    "{k}: sync {v} vs overlapped {}",
                    ovl_snap
                        .counters
                        .get(k)
                        .map_or("absent".into(), u64::to_string)
                )
            })
            .collect();
        fail(&format!(
            "counter mismatch between modes: {}",
            diff.join(", ")
        ));
    }

    // --- gate: measured wait reduction via the trace attribution ---
    let inputs = RooflineInputs::from_arch(&SunwaySpec::next_gen());
    let halo_sync = analyze(&sync_metrics.tracer().snapshot(), &inputs).halo;
    let halo_ovl = analyze(&ovl_metrics.tracer().snapshot(), &inputs).halo;
    if halo_sync.exchanges == 0 || halo_ovl.exchanges == 0 {
        fail("no halo exchange events traced");
    }
    if halo_sync.wait_ns == 0 {
        fail("synchronous run recorded zero halo wait: nothing to overlap");
    }
    let ratio = halo_ovl.wait_ns as f64 / halo_sync.wait_ns as f64;
    let reduction_pct = (1.0 - ratio) * 100.0;
    eprintln!(
        "bench_scaling: halo wait {} ns (sync) -> {} ns (overlapped), {:.1}% reduction \
         (transfer {} ns -> {} ns)",
        halo_sync.wait_ns,
        halo_ovl.wait_ns,
        reduction_pct,
        halo_sync.transfer_ns,
        halo_ovl.transfer_ns,
    );
    if ratio > MAX_WAIT_RATIO {
        fail(&format!(
            "overlap hides only {reduction_pct:.1}% of halo wait time, need >= {:.0}%",
            (1.0 - MAX_WAIT_RATIO) * 100.0
        ));
    }

    // --- calibrate the SDPD model from the deterministic counters ---
    let costs = MeasuredCosts::from_metrics(&sync_metrics, (RANKS * STEPS) as u64)
        .unwrap_or_else(|e| fail(&format!("calibration: {e}")));
    // Measure the halo-surface coefficient from the same partition the run
    // used instead of the analytic 3.5 guess (gated per part count in
    // BENCH_partition.json; here it feeds the comm term of the projections).
    let mesh = HexMesh::build(LEVEL);
    let surface = Partition::build(&mesh, RANKS, 2).surface_profile(&mesh);
    let model = SdpdModel {
        cfg: SdpdModelConfig::default()
            .with_measured(&costs, PINNED_OVERLAP)
            .with_measured_surface(surface.surface_coeff),
        ..SdpdModel::default()
    };
    let mix_ml = Scheme {
        mixed: true,
        ml_physics: true,
    };

    let mut projections: Vec<(String, f64)> = Vec::new();
    let ladder = weak_scaling_ladder();
    for (label, procs) in &ladder {
        let r = model.project(
            &grid_by_label(label).expect("ladder labels are Table 2 rows"),
            mix_ml,
            *procs,
        );
        projections.push((format!("sdpd.weak.{label}.p{procs}"), r.sdpd));
        projections.push((format!("commfrac.weak.{label}.p{procs}"), r.comm_fraction));
    }
    for (procs, eff) in weak_scaling_efficiencies(&model, mix_ml, &ladder)
        .unwrap_or_else(|e| fail(&format!("weak-scaling efficiencies: {e}")))
    {
        projections.push((format!("eff.weak.p{procs}"), eff));
    }
    for label in ["G12", "G11S"] {
        let g = grid_by_label(label).expect("Table 2 row");
        for i in 0..5 {
            let procs = 32_768usize << i;
            let r = model.project(&g, mix_ml, procs);
            projections.push((format!("sdpd.strong.{label}.p{procs}"), r.sdpd));
        }
    }
    projections.sort_by(|a, b| a.0.cmp(&b.0));

    // --- assemble the document: gated sections are wall-free ---
    let mut snap = sync_snap;
    for k in snap.kernels.values_mut() {
        k.nanos = 0;
    }
    for s in snap.spans.values_mut() {
        s.nanos = 0;
    }
    let doc = Json::Obj(vec![
        (
            "schema".into(),
            Json::Str(grist_bench::smoke::SCHEMA.into()),
        ),
        (
            "config".into(),
            Json::Obj(vec![
                ("ranks".into(), Json::Num(RANKS as f64)),
                ("mesh_level".into(), Json::Num(LEVEL as f64)),
                ("steps".into(), Json::Num(STEPS as f64)),
                ("cpes".into(), Json::Num(CPES as f64)),
                ("pinned_overlap_factor".into(), Json::Num(PINNED_OVERLAP)),
                (
                    "measured_surface_coeff".into(),
                    Json::Num(surface.surface_coeff),
                ),
            ]),
        ),
        (
            "projections".into(),
            Json::Obj(
                projections
                    .into_iter()
                    .map(|(k, v)| (k, Json::Num(v)))
                    .collect(),
            ),
        ),
        ("metrics".into(), snap.to_json_value()),
        // Live measurements: informative record, not gated (wall-derived).
        (
            "overlap".into(),
            Json::Obj(vec![
                ("wait_sync_ns".into(), Json::Num(halo_sync.wait_ns as f64)),
                (
                    "wait_overlapped_ns".into(),
                    Json::Num(halo_ovl.wait_ns as f64),
                ),
                ("reduction_pct".into(), Json::Num(reduction_pct)),
            ]),
        ),
    ]);

    let text = doc.pretty();
    match std::env::args().nth(1) {
        Some(path) => {
            std::fs::write(&path, &text).unwrap_or_else(|e| {
                eprintln!("bench_scaling: cannot write {path}: {e}");
                std::process::exit(2);
            });
            eprintln!("bench_scaling: wrote {path} ({} bytes)", text.len());
        }
        None => {
            std::io::stdout()
                .write_all(text.as_bytes())
                .expect("stdout");
        }
    }
    eprintln!(
        "bench_scaling: OK — bitwise-equal modes, counters identical, \
         {reduction_pct:.1}% wait reduction (gate {:.0}%)",
        (1.0 - MAX_WAIT_RATIO) * 100.0
    );
}
