//! Chaos smoke scenario: one coupled window on the CPE-teams substrate run
//! clean and again under a seeded fault storm (transient dispatch faults
//! plus two pinned events that force degrade-to-serial), asserting the
//! recovery ladder leaves the model state bitwise identical.
//!
//! Prints the fault/recovery counters and the two state hashes; exits
//! nonzero when parity is broken. Seed with `CHAOS_SEED=<n>` (default 42).
//!
//! Usage: `cargo run --release -p grist-bench --bin chaos_smoke`

use grist_core::{GristModel, RunConfig};
use sunway_sim::{FaultPlan, FaultSite, Substrate};

const SMOKE_LEVEL: u32 = 2;
const SMOKE_NLEV: usize = 10;
const SMOKE_CPES: usize = 16;

fn run_window(plan: Option<FaultPlan>) -> (u64, [u64; 3], u64) {
    let sub = Substrate::cpe_teams(SMOKE_CPES);
    if let Some(p) = plan {
        sub.arm_faults(p);
    }
    let cfg = RunConfig::for_level(SMOKE_LEVEL, SMOKE_NLEV);
    let window = cfg.dt_dyn * cfg.dyn_per_phy() as f64;
    let mut m = GristModel::<f64>::with_substrate(cfg, sub);
    let outcome = m.advance_resilient(window);
    let metrics = m.metrics();
    let counters = [
        metrics.counter("fault.injected"),
        metrics.counter("fault.retries"),
        metrics.counter("fault.degradations"),
    ];
    (m.state_hash(), counters, outcome.checkpoints)
}

fn main() {
    let seed: u64 = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let plan = FaultPlan::new(seed)
        .with_rate(FaultSite::Dispatch, 0.05)
        .pin(FaultSite::Dispatch, 11)
        .pin(FaultSite::Dispatch, 350);

    let (clean_hash, _, _) = run_window(None);
    let (storm_hash, counters, checkpoints) = run_window(Some(plan));

    println!("chaos_smoke: seed               {seed}");
    println!("chaos_smoke: clean state hash   {clean_hash:#018x}");
    println!("chaos_smoke: storm state hash   {storm_hash:#018x}");
    println!("chaos_smoke: fault.injected     {}", counters[0]);
    println!("chaos_smoke: fault.retries      {}", counters[1]);
    println!("chaos_smoke: fault.degradations {}", counters[2]);
    println!("chaos_smoke: checkpoints        {checkpoints}");

    if counters[0] == 0 || counters[2] < 2 {
        eprintln!("chaos_smoke: FAIL — storm did not exercise the degrade path");
        std::process::exit(1);
    }
    if storm_hash != clean_hash {
        eprintln!("chaos_smoke: FAIL — degraded run diverged from the clean run");
        std::process::exit(1);
    }
    println!("chaos_smoke: OK — storm recovered to bitwise parity");
}
