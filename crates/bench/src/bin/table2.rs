//! Regenerates **Table 2** (grid & timestep configurations) and **Table 3**
//! (scheme matrix). Counts at levels ≤ 7 are verified against actually-built
//! meshes; higher levels use the closed forms validated by those builds.

use grist_bench::{fmt, Table};
use grist_core::{table2_grids, table3_schemes};
use grist_mesh::{HexMesh, EARTH_RADIUS_M};

fn main() {
    println!("# Table 2: Configuration of grids and timesteps\n");
    let mut t = Table::new(&[
        "Label",
        "Resolution(km)",
        "Layers",
        "Dyn",
        "Trac",
        "Phy",
        "Rad",
        "Cells",
        "Edges",
        "Vertices",
        "verified",
    ]);
    for g in table2_grids() {
        let level = match g.label {
            "G12" => 12,
            "G11W" | "G11S" => 11,
            "G10" => 10,
            "G9" => 9,
            "G8" => 8,
            "G6" => 6,
            other => panic!("unknown grid {other}"),
        };
        // Verify counts by construction where tractable.
        let (verified, res_km) = if level <= 6 {
            let mesh = HexMesh::build(level);
            assert_eq!(mesh.n_cells(), g.cells);
            assert_eq!(mesh.n_edges(), g.edges);
            assert_eq!(mesh.n_verts(), g.verts);
            ("mesh-built", mesh.mean_spacing_km(EARTH_RADIUS_M))
        } else {
            // Mean spacing scales by exactly 2 per level from a built mesh.
            let base = HexMesh::build(6).mean_spacing_km(EARTH_RADIUS_M);
            ("closed-form", base / 2f64.powi(level as i32 - 6))
        };
        t.row(&[
            g.label.to_string(),
            fmt(res_km),
            g.nlev.to_string(),
            fmt(g.dt_dyn),
            fmt(g.dt_trac),
            fmt(g.dt_phy),
            fmt(g.dt_rad),
            g.cells.to_string(),
            g.edges.to_string(),
            g.verts.to_string(),
            verified.to_string(),
        ]);
    }
    t.print();
    let p = t.write_csv("table2").expect("write csv");
    println!("\n(csv: {})\n", p.display());

    println!("# Table 3: Configuration of schemes\n");
    let mut t3 = Table::new(&["Label", "Dycore", "Physics"]);
    for s in table3_schemes() {
        let dyc = if s.mixed {
            "mixed precision"
        } else {
            "double precision"
        };
        let phy = if s.ml_physics {
            "ML-physics"
        } else {
            "Conventional"
        };
        t3.row(&[s.label().to_string(), dyc.to_string(), phy.to_string()]);
    }
    t3.print();
    t3.write_csv("table3").expect("write csv");
}
