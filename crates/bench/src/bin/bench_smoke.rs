//! Runs the pinned smoke benchmark suite and writes the `BENCH_*.json`
//! document (see `grist_bench::smoke` for exactly what runs).
//!
//! Usage: `cargo run --release -p grist-bench --bin bench_smoke -- [OUT.json]`
//! (defaults to stdout when no path is given).

use std::io::Write;

fn main() {
    let text = grist_bench::smoke::run_smoke().pretty();
    match std::env::args().nth(1) {
        Some(path) => {
            std::fs::write(&path, &text).unwrap_or_else(|e| {
                eprintln!("bench_smoke: cannot write {path}: {e}");
                std::process::exit(2);
            });
            eprintln!("bench_smoke: wrote {path} ({} bytes)", text.len());
        }
        None => {
            std::io::stdout()
                .write_all(text.as_bytes())
                .expect("stdout");
        }
    }
}
