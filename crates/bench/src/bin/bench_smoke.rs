//! Runs the pinned smoke benchmark suite and writes the `BENCH_*.json`
//! document (see `grist_bench::smoke` for exactly what runs), then appends
//! the tracing-overhead measurement as the document's `"trace"` section and
//! fails the run when compiled-in-but-disabled tracing costs >= 1% of the
//! smoke window (`grist_bench::smoke::trace_overhead` explains how that
//! number is made robust to host noise).
//!
//! Usage: `cargo run --release -p grist-bench --bin bench_smoke -- [OUT.json]`
//! (defaults to stdout when no path is given).

use std::io::Write;
use sunway_sim::Json;

fn main() {
    let mut doc = grist_bench::smoke::run_smoke();
    let trace = grist_bench::smoke::trace_overhead();
    let off_pct = trace
        .get("overhead_off_pct")
        .and_then(Json::as_f64)
        .expect("trace_overhead reports overhead_off_pct");
    let Json::Obj(fields) = &mut doc else {
        unreachable!("run_smoke returns an object document");
    };
    fields.push(("trace".into(), trace));

    let text = doc.pretty();
    match std::env::args().nth(1) {
        Some(path) => {
            std::fs::write(&path, &text).unwrap_or_else(|e| {
                eprintln!("bench_smoke: cannot write {path}: {e}");
                std::process::exit(2);
            });
            eprintln!("bench_smoke: wrote {path} ({} bytes)", text.len());
        }
        None => {
            std::io::stdout()
                .write_all(text.as_bytes())
                .expect("stdout");
        }
    }

    eprintln!("bench_smoke: tracing-disabled overhead {off_pct:.4}% (budget 1%)");
    if off_pct.is_nan() || off_pct >= 1.0 {
        eprintln!("bench_smoke: FAIL — disabled tracing must cost < 1% of the smoke window");
        std::process::exit(1);
    }
}
