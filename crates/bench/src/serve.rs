//! The pinned serving benchmark behind `BENCH_serve.json`: batched query
//! dispatch ([`grist_serve::QueryEngine::serve_batch`]) against the
//! per-query reference path ([`grist_serve::QueryEngine::serve_one_percol`])
//! on a real ensemble's published snapshots, plus a threaded traffic phase
//! measuring end-to-end latency through the [`grist_serve::ForecastServer`]
//! front-end.
//!
//! Two phases:
//!
//! * **Phase A (deterministic)** — run the pinned ensemble to completion in
//!   the foreground, then time both serving paths over the same query set
//!   with the derived-product cache **disabled**, so every query pays its
//!   full ML dispatch and the ratio isolates batching. Every batched answer
//!   is then verified **bitwise** against a recompute from the source
//!   epoch's checkpoint in the [`crate::compare`]-gated document: a fresh
//!   model restores the published [`grist_serve::EpochView`], re-extracts
//!   columns, and re-runs the pinned suite per column. The counters and
//!   kernel call/item counts this phase emits are deterministic and held to
//!   the tight tolerance.
//! * **Phase B (traffic)** — a fresh store, the ensemble advancing on a
//!   background thread, and client threads hammering the server while it
//!   runs. Per-query latencies (p50/p99) and aggregate throughput land in
//!   `serve.latency.*` / `serve.qps.*` projections, which the compare gate
//!   holds to the loose wall band (upward-only / higher-is-better), and as
//!   gauges on the metrics registry (informational; gauges are not gated).
//!
//! The `bench_serve` binary enforces the acceptance floor: batched ≥ 2× the
//! per-query path. The bitwise recompute check has no tolerance at all — a
//! single differing bit panics the run.

use std::sync::Arc;
use std::time::Instant;

use grist_core::{extract_columns, GristModel, RunConfig};
use grist_obs::Histogram;
use grist_serve::{
    default_suite, derive, run_ensemble, spawn_ensemble, EnsembleConfig, ForecastServer,
    PoolTarget, Product, ProductData, Query, QueryEngine, Response, Select, ServeConfig,
    SnapshotStore,
};
use sunway_sim::{Json, Substrate};

use crate::smoke::SCHEMA;

/// Pinned configuration. Changing any of these invalidates the committed
/// `BENCH_serve.json`; regenerate it when you do.
pub const SERVE_LEVEL: u32 = 2;
pub const SERVE_NLEV: usize = 10;
pub const SERVE_MEMBERS: usize = 3;
pub const SERVE_POOLS: usize = 2;
pub const SERVE_EPOCHS: usize = 2;
pub const SERVE_DYN_STEPS_PER_EPOCH: usize = 2;
/// Queries per timed pass (Phase A) — mixed precip/t2m over all members.
pub const SERVE_QUERIES: usize = 96;
/// Batch size the batched path chunks the query set into.
pub const SERVE_BATCH: usize = 32;
/// Timed passes per path (one extra warm-up pass pays restores + arenas).
pub const SERVE_ITERS: usize = 2;
/// Phase B front-end sizing and synthetic traffic volume.
pub const SERVE_WORKERS: usize = 4;
pub const SERVE_MAX_BATCH: usize = 32;
pub const SERVE_CLIENTS: usize = 4;
pub const SERVE_CLIENT_QUERIES: usize = 60;
pub const SERVE_PERTURB: f64 = 1e-5;

/// One bench run's knobs (the test suite shrinks them; `run_serve` pins
/// them).
#[derive(Debug, Clone, Copy)]
pub struct ServeBenchConfig {
    pub level: u32,
    pub nlev: usize,
    pub members: usize,
    pub rank_pools: usize,
    pub epochs: usize,
    pub dyn_steps_per_epoch: usize,
    pub queries: usize,
    pub serve_batch: usize,
    pub iters: usize,
    pub workers: usize,
    pub max_batch: usize,
    pub clients: usize,
    pub client_queries: usize,
    pub perturb_scale: f64,
}

impl Default for ServeBenchConfig {
    fn default() -> Self {
        ServeBenchConfig {
            level: SERVE_LEVEL,
            nlev: SERVE_NLEV,
            members: SERVE_MEMBERS,
            rank_pools: SERVE_POOLS,
            epochs: SERVE_EPOCHS,
            dyn_steps_per_epoch: SERVE_DYN_STEPS_PER_EPOCH,
            queries: SERVE_QUERIES,
            serve_batch: SERVE_BATCH,
            iters: SERVE_ITERS,
            workers: SERVE_WORKERS,
            max_batch: SERVE_MAX_BATCH,
            clients: SERVE_CLIENTS,
            client_queries: SERVE_CLIENT_QUERIES,
            perturb_scale: SERVE_PERTURB,
        }
    }
}

/// The assembled document plus the headline numbers the binary gates on.
#[derive(Debug)]
pub struct ServeBench {
    pub doc: Json,
    /// Batched / per-query throughput ratio (Phase A, cache disabled).
    pub speedup: f64,
    /// Products checked bitwise against a checkpoint recompute. The check
    /// itself panics on any mismatch, so a positive count means it ran.
    pub verified_products: u64,
    /// Phase B end-to-end latency percentiles, milliseconds.
    pub p50_ms: f64,
    pub p99_ms: f64,
    /// Phase B aggregate queries per second through the front-end.
    pub qps: f64,
}

fn ensemble_config(cfg: &ServeBenchConfig, run: &RunConfig) -> EnsembleConfig {
    EnsembleConfig {
        members: cfg.members,
        rank_pools: cfg.rank_pools,
        epochs: cfg.epochs,
        dyn_steps_per_epoch: cfg.dyn_steps_per_epoch,
        run: run.clone(),
        perturb_scale: cfg.perturb_scale,
        target: PoolTarget::Serial,
    }
}

/// The deterministic Phase A query set: derived products only (both paths
/// pay one ML dispatch per queried cell once the cache is off).
fn timing_queries(cfg: &ServeBenchConfig, ncells: usize) -> Vec<Query> {
    (0..cfg.queries)
        .map(|i| {
            let product = if i % 2 == 0 {
                Product::Precip
            } else {
                Product::T2m
            };
            Query::cell(i % cfg.members, (i * 13) % ncells, product)
        })
        .collect()
}

/// Recompute every served product from the *published checkpoint* of the
/// epoch each response claims, and demand bitwise equality. This is the
/// benchmark's correctness anchor: the fast path may not drift from the
/// model state by a single bit. Returns the number of products checked.
fn verify_against_checkpoints(
    store: &SnapshotStore,
    run: &RunConfig,
    queries: &[Query],
    responses: &[Result<Response, grist_serve::ServeError>],
) -> u64 {
    let sub = Substrate::serial();
    let mut verified = 0u64;
    for (q, r) in queries.iter().zip(responses) {
        let r = r.as_ref().expect("verification query must be served");
        let view = store
            .get(r.member, r.epoch)
            .expect("served epoch must still be in the store");
        assert_eq!(
            view.state_hash, r.state_hash,
            "response hash must be the published hash"
        );
        let mut model = GristModel::<f64>::with_substrate(run.clone(), sub.clone());
        model
            .restore(&view.checkpoint)
            .expect("published checkpoint restores");
        assert_eq!(
            model.state_hash(),
            view.state_hash,
            "checkpoint restores to the published state"
        );
        let cols = extract_columns(&mut model.solver, &model.state, &model.surface);
        match &r.data {
            ProductData::Columns(states) => {
                for (&c, s) in r.cells.iter().zip(states) {
                    let col = &cols[c];
                    assert!(
                        s.p == col.p
                            && s.t == col.t
                            && s.qv == col.qv
                            && s.u == col.u
                            && s.v == col.v
                            && s.tskin == col.tskin,
                        "served column state differs from the checkpoint at cell {c}"
                    );
                    verified += 1;
                }
            }
            ProductData::Scalars(vals) => {
                let mut suite = default_suite(run.nlev);
                suite.sub = sub.clone();
                let qcols: Vec<_> = r.cells.iter().map(|&c| cols[c].clone()).collect();
                let outs = suite.step_columns_per_column(&qcols);
                for (((col, out), &got), &c) in qcols.iter().zip(&outs).zip(vals).zip(&r.cells) {
                    let d = derive(col, out);
                    let want = match q.product {
                        Product::T2m => d.t2m,
                        _ => d.precip,
                    };
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "served {:?} at cell {c} differs from the checkpoint recompute \
                         ({got} vs {want})",
                        q.product
                    );
                    verified += 1;
                }
            }
        }
    }
    verified
}

/// Run the pinned serving benchmark and assemble the `BENCH_serve.json`
/// document.
pub fn run_serve() -> ServeBench {
    run_serve_with(ServeBenchConfig::default())
}

/// [`run_serve`] with explicit knobs (tests use a miniature configuration).
pub fn run_serve_with(cfg: ServeBenchConfig) -> ServeBench {
    let run = RunConfig::for_level(cfg.level, cfg.nlev);

    // ---- Phase A: deterministic batched-vs-per-query measurement. ----
    // Keep every published epoch around: the recompute verifier needs the
    // source checkpoint of whatever epoch each response was served from.
    let store = Arc::new(SnapshotStore::new(cfg.members, cfg.epochs + 1));
    run_ensemble::<f64>(&ensemble_config(&cfg, &run), &store);

    let sub = Substrate::serial();
    let engine = QueryEngine::<f64>::new(
        Arc::clone(&store),
        run.clone(),
        sub.clone(),
        default_suite(run.nlev),
    )
    .with_cache(false); // every query pays its dispatch: the ratio is pure batching
    let ncells = engine.n_cells();
    let queries = timing_queries(&cfg, ncells);

    // Warm-up pays the replica restores and the scratch-arena growth once.
    for q in &queries {
        engine.serve_one_percol(q).expect("warm-up query");
    }
    let t0 = Instant::now();
    for _ in 0..cfg.iters {
        for q in &queries {
            std::hint::black_box(engine.serve_one_percol(q).expect("percol query"));
        }
    }
    let percol_s = t0.elapsed().as_secs_f64();

    for chunk in queries.chunks(cfg.serve_batch) {
        engine.serve_batch(chunk); // warm-up
    }
    let t0 = Instant::now();
    for _ in 0..cfg.iters {
        for chunk in queries.chunks(cfg.serve_batch) {
            std::hint::black_box(engine.serve_batch(chunk));
        }
    }
    let batched_s = t0.elapsed().as_secs_f64();

    let q_total = (cfg.iters * cfg.queries) as f64;
    let qps_of = |secs: f64| q_total / secs.max(1e-12);
    let speedup = qps_of(batched_s) / qps_of(percol_s).max(1e-12);

    // The verification set: the full timing set plus the non-scalar shapes
    // (raw columns, point and region selectors) so every product kind is
    // anchored to a checkpoint recompute.
    let mut verify_queries = queries.clone();
    verify_queries.push(Query::cell(0, 0, Product::ColumnState));
    verify_queries.push(Query::point(0, 0.4, 1.0, Product::T2m));
    verify_queries.push(Query {
        member: cfg.members - 1,
        select: Select::Region {
            lat: (-2.0, 2.0),
            lon: (-4.0, 4.0),
        },
        product: Product::Precip,
    });
    let responses = engine.serve_batch(&verify_queries);
    let verified_products = verify_against_checkpoints(&store, &run, &verify_queries, &responses);

    // ---- Phase B: synthetic heavy traffic against a live ensemble. ----
    let traffic_store = Arc::new(SnapshotStore::new(cfg.members, cfg.epochs + 1));
    let ensemble = spawn_ensemble::<f64>(ensemble_config(&cfg, &run), Arc::clone(&traffic_store));
    while (0..cfg.members).any(|m| traffic_store.latest(m).is_none()) {
        std::thread::yield_now();
    }
    let traffic_engine = Arc::new(QueryEngine::<f64>::new(
        Arc::clone(&traffic_store),
        run.clone(),
        Substrate::serial(),
        default_suite(run.nlev),
    ));
    let server = Arc::new(ForecastServer::start(
        Arc::clone(&traffic_engine),
        ServeConfig {
            workers: cfg.workers,
            max_batch: cfg.max_batch,
        },
    ));
    // Per-query latencies stream into the shared log-bucketed histogram
    // (grist-obs) — the same implementation the live telemetry plane uses,
    // so the bench and the SLO gate can never disagree on what "p99" means.
    let lat_hist = Arc::new(Histogram::new());
    let t0 = Instant::now();
    let clients: Vec<std::thread::JoinHandle<()>> = (0..cfg.clients)
        .map(|client| {
            let server = Arc::clone(&server);
            let lat_hist = Arc::clone(&lat_hist);
            let members = cfg.members;
            let n = cfg.client_queries;
            std::thread::spawn(move || {
                for i in 0..n {
                    let product = match (client + i) % 3 {
                        0 => Product::Precip,
                        1 => Product::T2m,
                        _ => Product::ColumnState,
                    };
                    let q = Query::cell(
                        (client + i) % members,
                        (client * 37 + i * 11) % ncells,
                        product,
                    );
                    let t = Instant::now();
                    server.query_blocking(q).expect("traffic query");
                    lat_hist.record(t.elapsed().as_nanos() as u64);
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("traffic client panicked");
    }
    let wall_s = t0.elapsed().as_secs_f64();
    ensemble.join();
    drop(traffic_engine);
    if let Ok(server) = Arc::try_unwrap(server) {
        server.shutdown();
    }
    let lat = lat_hist.snapshot();
    let (p50_ms, p99_ms) = (lat.percentile_ms(0.50), lat.percentile_ms(0.99));
    let qps = lat.count as f64 / wall_s.max(1e-12);

    // ---- Assemble the document. ----
    // Deterministic projections get the tight band; the `serve.latency.*` /
    // `serve.qps.*` keys get the loose wall-derived gate (see
    // `crate::compare`).
    let n = |x: f64| Json::Num(x);
    let projections = Json::Obj(vec![
        ("serve.queries_per_pass".into(), n(cfg.queries as f64)),
        (
            "serve.batches_per_pass".into(),
            n(cfg.queries.div_ceil(cfg.serve_batch) as f64),
        ),
        (
            "serve.verified_products".into(),
            n(verified_products as f64),
        ),
        (
            "serve.ensemble_publishes".into(),
            n((cfg.members * (cfg.epochs + 1)) as f64),
        ),
        ("serve.latency.p50_ms".into(), n(p50_ms)),
        ("serve.latency.p99_ms".into(), n(p99_ms)),
        ("serve.qps.traffic".into(), n(qps)),
        ("serve.qps.batched".into(), n(qps_of(batched_s))),
        ("serve.qps.percol".into(), n(qps_of(percol_s))),
    ]);

    // Host-dependent headline numbers; the compare gate ignores this
    // section entirely.
    let report = Json::Obj(vec![
        ("percol_qps".into(), n(qps_of(percol_s))),
        ("batched_qps".into(), n(qps_of(batched_s))),
        ("speedup_batched_over_percol".into(), n(speedup)),
        ("traffic.total_queries".into(), n(lat.count as f64)),
        ("traffic.wall_s".into(), n(wall_s)),
        ("traffic.qps".into(), n(qps)),
        ("traffic.p50_ms".into(), n(p50_ms)),
        ("traffic.p99_ms".into(), n(p99_ms)),
        ("traffic.max_ms".into(), n(lat.max as f64 / 1e6)),
    ]);

    // The metrics section is the Phase A engine registry: its counters and
    // kernel call/item counts are deterministic. Phase B latency lands on
    // it as gauges — preserved in the artifact, ignored by the gate.
    let metrics = engine.substrate().metrics();
    metrics.gauge_set("serve.latency.p50_ms", p50_ms);
    metrics.gauge_set("serve.latency.p99_ms", p99_ms);
    metrics.gauge_set("serve.qps.traffic", qps);
    let snap = metrics.snapshot();

    let config = Json::Obj(vec![
        ("level".into(), n(cfg.level as f64)),
        ("nlev".into(), n(cfg.nlev as f64)),
        ("members".into(), n(cfg.members as f64)),
        ("rank_pools".into(), n(cfg.rank_pools as f64)),
        ("epochs".into(), n(cfg.epochs as f64)),
        (
            "dyn_steps_per_epoch".into(),
            n(cfg.dyn_steps_per_epoch as f64),
        ),
        ("queries".into(), n(cfg.queries as f64)),
        ("serve_batch".into(), n(cfg.serve_batch as f64)),
        ("iters".into(), n(cfg.iters as f64)),
        ("workers".into(), n(cfg.workers as f64)),
        ("max_batch".into(), n(cfg.max_batch as f64)),
        ("clients".into(), n(cfg.clients as f64)),
        ("client_queries".into(), n(cfg.client_queries as f64)),
        ("perturb_scale".into(), n(cfg.perturb_scale)),
    ]);

    let doc = Json::Obj(vec![
        ("schema".into(), Json::Str(SCHEMA.into())),
        ("config".into(), config),
        ("projections".into(), projections),
        ("report".into(), report),
        ("metrics".into(), snap.to_json_value()),
    ]);

    ServeBench {
        doc,
        speedup,
        verified_products,
        p50_ms,
        p99_ms,
        qps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunway_sim::MetricsSnapshot;

    fn tiny() -> ServeBenchConfig {
        ServeBenchConfig {
            level: 2,
            nlev: 6,
            members: 2,
            rank_pools: 2,
            epochs: 1,
            dyn_steps_per_epoch: 1,
            queries: 12,
            serve_batch: 4,
            iters: 1,
            workers: 2,
            max_batch: 4,
            clients: 2,
            client_queries: 6,
            perturb_scale: 1e-6,
        }
    }

    #[test]
    fn document_has_the_bench_schema_and_sections() {
        let b = run_serve_with(tiny());
        assert_eq!(b.doc.get("schema").and_then(Json::as_str), Some(SCHEMA));
        for section in ["config", "projections", "report", "metrics"] {
            assert!(b.doc.get(section).is_some(), "missing {section}");
        }
        assert!(b.speedup.is_finite() && b.speedup > 0.0);
        assert!(b.qps > 0.0 && b.p50_ms >= 0.0 && b.p99_ms >= b.p50_ms);
        // The verification set covered the timing queries plus the column,
        // point, and region extras.
        assert!(b.verified_products as usize > tiny().queries);
    }

    #[test]
    fn latency_lands_in_projections_and_gauges() {
        let b = run_serve_with(tiny());
        let p = |key: &str| {
            b.doc
                .get("projections")
                .and_then(|p| p.get(key))
                .and_then(Json::as_f64)
                .unwrap_or_else(|| panic!("missing projection {key}"))
        };
        assert_eq!(p("serve.latency.p50_ms"), b.p50_ms);
        assert_eq!(p("serve.latency.p99_ms"), b.p99_ms);
        assert_eq!(p("serve.qps.traffic"), b.qps);
        let snap = MetricsSnapshot::from_json_value(b.doc.get("metrics").unwrap()).unwrap();
        assert_eq!(snap.gauge("serve.latency.p50_ms"), Some(b.p50_ms));
        assert_eq!(snap.gauge("serve.qps.traffic"), Some(b.qps));
    }

    /// Satellite pin: the shared histogram percentile and the retired
    /// sort-and-index estimator use the same rank convention, so on a
    /// seeded sample they land in the same bucket — exactly equal once the
    /// sample is quantized to bucket lower bounds, and within the layout's
    /// 1/16 relative quantization on raw values.
    #[test]
    fn histogram_percentiles_agree_with_sort_and_index_on_a_seeded_sample() {
        use grist_obs::{bucket_index, bucket_lo};
        // The retired estimator, kept as the pin's reference.
        fn sort_index(sorted: &[u64], p: f64) -> u64 {
            sorted[((sorted.len() - 1) as f64 * p).round() as usize]
        }
        let mut x = 0x0123_4567_89ab_cdefu64;
        let mut sample: Vec<u64> = (0..5000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % 200_000_000 // ns-scale latencies up to 200 ms
            })
            .collect();
        let h = Histogram::new();
        for &v in &sample {
            h.record(v);
        }
        let snap = h.snapshot();
        sample.sort_unstable();
        for p in [0.50, 0.90, 0.99] {
            let reference = sort_index(&sample, p);
            let got = snap.percentile(p);
            assert_eq!(
                got,
                bucket_lo(bucket_index(reference)),
                "p{p}: same rank, same bucket"
            );
            assert!(
                got <= reference && (reference - got) as f64 <= reference as f64 / 16.0,
                "p{p}: {got} vs {reference} exceeds the 1/16 quantization bound"
            );
        }
        // Pre-quantized sample (bucket_lo∘bucket_index is monotone, so the
        // sorted order survives): the two methods agree exactly.
        let quantized: Vec<u64> = sample.iter().map(|&v| bucket_lo(bucket_index(v))).collect();
        let h2 = Histogram::new();
        for &v in &quantized {
            h2.record(v);
        }
        let snap2 = h2.snapshot();
        for p in [0.0, 0.50, 0.90, 0.99, 1.0] {
            assert_eq!(snap2.percentile(p), sort_index(&quantized, p), "p{p}");
        }
    }

    #[test]
    fn deterministic_quantities_survive_the_compare_gate() {
        let cfg = tiny();
        let a = run_serve_with(cfg);
        let b = run_serve_with(cfg);
        // Counters, kernel counts, and the deterministic projections must
        // agree exactly; wall-derived latency/qps jitters between runs on a
        // tiny configuration, so give the wall band effectively no limit —
        // the tight band still applies to everything deterministic.
        let r = crate::compare::compare_docs(
            &a.doc,
            &b.doc,
            &crate::compare::CompareConfig {
                tolerance: 0.0,
                time_tolerance: 1e12,
                min_time_ns: u64::MAX,
            },
        )
        .unwrap();
        assert!(r.is_empty(), "nondeterministic bench document: {r:?}");
        // Both passes dispatched the same ML cells: the batched path saves
        // calls, never work.
        let snap = MetricsSnapshot::from_json_value(a.doc.get("metrics").unwrap()).unwrap();
        let percol = &snap.kernels["serve_percol/ml/ml_physics_columns"];
        assert_eq!(
            percol.items,
            ((cfg.iters + 1) * cfg.queries) as u64,
            "one per-column dispatch per query per pass"
        );
        let batches = snap.counters["serve.batches"];
        assert!(
            batches < snap.counters["serve.queries"],
            "batching happened: {batches} batches"
        );
    }
}
