//! The pinned ML-inference benchmark behind `BENCH_0004.json`: the batched
//! GEMM engine ([`grist_core::MlSuite::step_columns`]) against the
//! per-column matrix–vector reference
//! ([`grist_core::MlSuite::step_columns_per_column`]) on both execution
//! targets, every knob pinned so the document is reproducible.
//!
//! The document reuses the `grist-bench-v1` schema, so the same
//! [`crate::compare`] gate applies: kernel call/item/byte counts, the
//! `dma.*` counters, and the analytic projections (per-column FLOPs, the
//! serial steady-state allocation-event count) are deterministic and held
//! to the tight tolerance; kernel/span wall times are gated upward-only.
//! The measured columns-per-second rates and the batched-vs-per-column
//! speedup live in a separate `report` section the compare gate ignores —
//! they are host-dependent, but the `bench_ml` binary itself enforces the
//! acceptance floor (batched ≥ 3× per-column on the serial target).

use std::time::Instant;

use grist_core::MlSuite;
use grist_physics::Column;
use sunway_sim::{Json, MetricsSnapshot, Substrate};

use crate::smoke::{merge_snapshots, SCHEMA};

/// Pinned configuration — the production-like suite shape from the issue:
/// 16 levels, 64 CNN channels. Changing any of these invalidates the
/// committed `BENCH_0004.json`; regenerate it when you do.
pub const ML_NLEV: usize = 16;
pub const ML_CHANNELS: usize = 64;
/// Columns per `step_columns` call: 8 blocks of the default 32-column
/// block, enough to spread over the CPE teams.
pub const ML_COLUMNS: usize = 256;
/// Timed calls per path (one extra warm-up call pays arena growth).
pub const ML_ITERS: usize = 2;
pub const ML_CPES: usize = 16;
pub const ML_SEED: u64 = 4;

/// One bench run's knobs (the test suite shrinks them; `run_ml` pins them).
#[derive(Debug, Clone, Copy)]
pub struct MlBenchConfig {
    pub nlev: usize,
    pub channels: usize,
    pub columns: usize,
    pub iters: usize,
    pub n_cpes: usize,
    pub seed: u64,
}

impl Default for MlBenchConfig {
    fn default() -> Self {
        MlBenchConfig {
            nlev: ML_NLEV,
            channels: ML_CHANNELS,
            columns: ML_COLUMNS,
            iters: ML_ITERS,
            n_cpes: ML_CPES,
            seed: ML_SEED,
        }
    }
}

/// The assembled document plus the headline numbers the binary gates on.
#[derive(Debug)]
pub struct MlBench {
    pub doc: Json,
    /// Batched / per-column columns-per-second ratio, serial target.
    pub serial_speedup: f64,
    /// Same ratio on the CPE-teams target.
    pub cpe_speedup: f64,
}

/// Measured wall times and metrics for one execution target.
struct TargetRun {
    percol_s: f64,
    batched_s: f64,
    snap: MetricsSnapshot,
    alloc_events: u64,
}

/// Deterministic column population: the reference column perturbed by two
/// small index-dependent bumps (same recipe as the equivalence tests).
pub fn ml_columns(nlev: usize, n: usize) -> Vec<Column> {
    (0..n)
        .map(|i| {
            let mut c = Column::reference(nlev);
            c.t[nlev / 2] += (i % 17) as f64 * 0.3;
            c.qv[nlev - 1] *= 1.0 + 0.01 * (i % 5) as f64;
            c
        })
        .collect()
}

/// Time both inference paths on one substrate. The `label` span prefixes
/// every kernel key (`serial/ml/ml_physics_blocks`, …) so the two targets'
/// registries merge without collisions.
fn bench_target(
    sub: Substrate,
    label: &'static str,
    cols: &[Column],
    cfg: &MlBenchConfig,
) -> TargetRun {
    let mut suite = MlSuite::untrained(cfg.nlev, cfg.channels, cfg.seed);
    suite.sub = sub.clone();
    let (percol_s, batched_s);
    {
        let _span = sub.span(label);

        suite.step_columns_per_column(cols); // warm-up
        let t0 = Instant::now();
        for _ in 0..cfg.iters {
            std::hint::black_box(suite.step_columns_per_column(cols));
        }
        percol_s = t0.elapsed().as_secs_f64();

        suite.step_columns(cols); // warm-up grows the scratch arenas
        let t0 = Instant::now();
        for _ in 0..cfg.iters {
            std::hint::black_box(suite.step_columns(cols));
        }
        batched_s = t0.elapsed().as_secs_f64();
    }
    TargetRun {
        percol_s,
        batched_s,
        snap: sub.metrics().snapshot(),
        alloc_events: suite.scratch_alloc_events(),
    }
}

/// Run the pinned ML benchmark and assemble the `BENCH_0004.json` document.
pub fn run_ml() -> MlBench {
    run_ml_with(MlBenchConfig::default())
}

/// [`run_ml`] with explicit knobs (tests use a miniature configuration).
pub fn run_ml_with(cfg: MlBenchConfig) -> MlBench {
    let cols = ml_columns(cfg.nlev, cfg.columns);
    let serial = bench_target(Substrate::serial(), "serial", &cols, &cfg);
    let cpe = bench_target(Substrate::cpe_teams(cfg.n_cpes), "cpe", &cols, &cfg);

    let suite = MlSuite::untrained(cfg.nlev, cfg.channels, cfg.seed);
    let block = suite.block;

    // Deterministic projections, gated tight by the compare pipeline. The
    // serial scratch-pool event count is the zero-alloc guarantee in
    // baseline form: one arena plus its fixed warm-up growths, flat no
    // matter how many timed iterations ran. (The CPE-teams count depends on
    // how many workers were concurrently active, so it is reported, not
    // projected.)
    let projections = Json::Obj(vec![
        (
            "ml.flops_per_column".into(),
            Json::Num(suite.flops_per_column() as f64),
        ),
        (
            "ml.batch_flops_block".into(),
            Json::Num(suite.batch_flops(block) as f64),
        ),
        (
            "ml.alloc_events_serial_steady".into(),
            Json::Num(serial.alloc_events as f64),
        ),
    ]);

    let cols_total = (cfg.iters * cfg.columns) as f64;
    let rate = |secs: f64| cols_total / secs.max(1e-12);
    let ns_per_col = |secs: f64| secs * 1e9 / cols_total;
    let serial_speedup = rate(serial.batched_s) / rate(serial.percol_s).max(1e-12);
    let cpe_speedup = rate(cpe.batched_s) / rate(cpe.percol_s).max(1e-12);

    // Host-dependent headline numbers; the compare gate ignores this
    // section (wall-time drift is gated through the kernel nanos instead).
    let report = Json::Obj(vec![
        (
            "serial.percol_cols_per_s".into(),
            Json::Num(rate(serial.percol_s)),
        ),
        (
            "serial.batched_cols_per_s".into(),
            Json::Num(rate(serial.batched_s)),
        ),
        (
            "serial.percol_ns_per_col".into(),
            Json::Num(ns_per_col(serial.percol_s)),
        ),
        (
            "serial.batched_ns_per_col".into(),
            Json::Num(ns_per_col(serial.batched_s)),
        ),
        ("serial.speedup".into(), Json::Num(serial_speedup)),
        (
            "cpe.percol_cols_per_s".into(),
            Json::Num(rate(cpe.percol_s)),
        ),
        (
            "cpe.batched_cols_per_s".into(),
            Json::Num(rate(cpe.batched_s)),
        ),
        (
            "cpe.percol_ns_per_col".into(),
            Json::Num(ns_per_col(cpe.percol_s)),
        ),
        (
            "cpe.batched_ns_per_col".into(),
            Json::Num(ns_per_col(cpe.batched_s)),
        ),
        ("cpe.speedup".into(), Json::Num(cpe_speedup)),
        (
            "cpe.alloc_events".into(),
            Json::Num(cpe.alloc_events as f64),
        ),
    ]);

    let mut snap = serial.snap;
    merge_snapshots(&mut snap, &cpe.snap);

    let n = |x: f64| Json::Num(x);
    let config = Json::Obj(vec![
        ("nlev".into(), n(cfg.nlev as f64)),
        ("channels".into(), n(cfg.channels as f64)),
        ("columns".into(), n(cfg.columns as f64)),
        ("block".into(), n(block as f64)),
        ("iters".into(), n(cfg.iters as f64)),
        ("n_cpes".into(), n(cfg.n_cpes as f64)),
        ("seed".into(), n(cfg.seed as f64)),
    ]);

    let doc = Json::Obj(vec![
        ("schema".into(), Json::Str(SCHEMA.into())),
        ("config".into(), config),
        ("projections".into(), projections),
        ("report".into(), report),
        ("metrics".into(), snap.to_json_value()),
    ]);

    MlBench {
        doc,
        serial_speedup,
        cpe_speedup,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MlBenchConfig {
        MlBenchConfig {
            nlev: 6,
            channels: 8,
            columns: 12,
            iters: 1,
            n_cpes: 4,
            seed: 3,
        }
    }

    #[test]
    fn document_has_the_bench_schema_and_sections() {
        let b = run_ml_with(tiny());
        assert_eq!(b.doc.get("schema").and_then(Json::as_str), Some(SCHEMA));
        for section in ["config", "projections", "report", "metrics"] {
            assert!(b.doc.get(section).is_some(), "missing {section}");
        }
        assert!(b.serial_speedup.is_finite() && b.serial_speedup > 0.0);
        assert!(b.cpe_speedup.is_finite() && b.cpe_speedup > 0.0);
    }

    #[test]
    fn kernel_counts_are_deterministic_and_target_prefixed() {
        let cfg = tiny();
        let b = run_ml_with(cfg);
        let snap = MetricsSnapshot::from_json_value(b.doc.get("metrics").unwrap()).unwrap();
        // warm-up + iters calls of each path, on each target.
        let calls = (cfg.iters + 1) as u64;
        let n_blocks = cfg.columns.div_ceil(grist_core::DEFAULT_ML_BLOCK) as u64;
        for target in ["serial", "cpe"] {
            let percol = &snap.kernels[&format!("{target}/ml/ml_physics_columns")];
            assert_eq!(percol.calls, calls);
            assert_eq!(percol.items, calls * cfg.columns as u64);
            let batched = &snap.kernels[&format!("{target}/ml/ml_physics_blocks")];
            assert_eq!(batched.calls, calls);
            assert_eq!(batched.items, calls * n_blocks);
        }
        // Two documents from the same config agree on every deterministic
        // quantity (the compare gate's premise).
        let b2 = run_ml_with(cfg);
        let r = crate::compare::compare_docs(
            &b.doc,
            &b2.doc,
            &crate::compare::CompareConfig::default(),
        )
        .unwrap();
        assert!(r.is_empty(), "nondeterministic bench document: {r:?}");
    }

    #[test]
    fn serial_alloc_events_projection_is_flat() {
        let a = run_ml_with(tiny());
        let v = a
            .doc
            .get("projections")
            .and_then(|p| p.get("ml.alloc_events_serial_steady"))
            .and_then(Json::as_f64)
            .unwrap();
        assert!(v >= 1.0, "at least the one serial arena: {v}");
        // More timed iterations must not move it — zero-alloc steady state.
        let mut cfg = tiny();
        cfg.iters = 3;
        let b = run_ml_with(cfg);
        let v2 = b
            .doc
            .get("projections")
            .and_then(|p| p.get("ml.alloc_events_serial_steady"))
            .and_then(Json::as_f64)
            .unwrap();
        assert_eq!(v, v2, "serial scratch pool grew after warm-up");
    }
}
