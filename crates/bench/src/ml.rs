//! The pinned ML-inference benchmark behind `BENCH_0004.json`: the batched
//! GEMM engine ([`grist_core::MlSuite::step_columns`]) against the
//! per-column matrix–vector reference
//! ([`grist_core::MlSuite::step_columns_per_column`]) on both execution
//! targets, every knob pinned so the document is reproducible.
//!
//! The document reuses the `grist-bench-v1` schema, so the same
//! [`crate::compare`] gate applies: kernel call/item/byte counts, the
//! `dma.*` counters, and the analytic projections (per-column FLOPs, the
//! serial steady-state allocation-event count) are deterministic and held
//! to the tight tolerance; kernel/span wall times are gated upward-only.
//! The measured columns-per-second rates and the batched-vs-per-column
//! speedup live in a separate `report` section the compare gate ignores —
//! they are host-dependent, but the `bench_ml` binary itself enforces the
//! acceptance floor (batched ≥ 3× per-column on the serial target).

use std::time::Instant;

use grist_core::MlSuite;
use grist_ml::{gemm_flops, gemm_lane_utilization, gemm_nn_with, GemmVariant};
use grist_physics::Column;
use sunway_sim::{Json, MetricsSnapshot, Substrate};

use crate::smoke::{merge_snapshots, SCHEMA};

/// Pinned configuration — the production-like suite shape from the issue:
/// 16 levels, 64 CNN channels. Changing any of these invalidates the
/// committed `BENCH_0004.json`; regenerate it when you do.
pub const ML_NLEV: usize = 16;
pub const ML_CHANNELS: usize = 64;
/// Columns per `step_columns` call: 8 blocks of the default 32-column
/// block, enough to spread over the CPE teams.
pub const ML_COLUMNS: usize = 256;
/// Timed calls per path (one extra warm-up call pays arena growth).
pub const ML_ITERS: usize = 2;
pub const ML_CPES: usize = 16;
pub const ML_SEED: u64 = 4;

/// Pinned GEMM-microkernel probe shape: one full `MC × NC × KC` macro-tile
/// of the blocked kernel (`grist_ml::gemm::{MC, NC, KC}`), the steady-state
/// shape every inference layer decomposes into.
pub const GEMM_M: usize = 64;
pub const GEMM_N: usize = 512;
pub const GEMM_K: usize = 192;
/// Best-of-N trials for the GEMM probe. Min-time over independent trials is
/// the standard defence against scheduler noise on shared CI hosts: the
/// fastest observed run is the closest to the hardware's actual capability,
/// and a ratio of two minima is far more stable than a ratio of means.
pub const GEMM_TRIALS: usize = 11;

/// One bench run's knobs (the test suite shrinks them; `run_ml` pins them).
#[derive(Debug, Clone, Copy)]
pub struct MlBenchConfig {
    pub nlev: usize,
    pub channels: usize,
    pub columns: usize,
    pub iters: usize,
    pub n_cpes: usize,
    pub seed: u64,
    /// GEMM probe shape (m, n, k) and best-of-N trial count.
    pub gemm_shape: (usize, usize, usize),
    pub gemm_trials: usize,
}

impl Default for MlBenchConfig {
    fn default() -> Self {
        MlBenchConfig {
            nlev: ML_NLEV,
            channels: ML_CHANNELS,
            columns: ML_COLUMNS,
            iters: ML_ITERS,
            n_cpes: ML_CPES,
            seed: ML_SEED,
            gemm_shape: (GEMM_M, GEMM_N, GEMM_K),
            gemm_trials: GEMM_TRIALS,
        }
    }
}

/// The assembled document plus the headline numbers the binary gates on.
#[derive(Debug)]
pub struct MlBench {
    pub doc: Json,
    /// Batched / per-column columns-per-second ratio, serial target.
    pub serial_speedup: f64,
    /// Same ratio on the CPE-teams target.
    pub cpe_speedup: f64,
    /// SIMD / scalar GEMM throughput ratio on the pinned probe shape
    /// (best-of-N minima; the `bench_ml` binary gates this ≥ 1.5×).
    pub gemm_simd_speedup: f64,
}

/// Measured scalar-vs-SIMD throughput of the raw GEMM microkernel.
#[derive(Debug, Clone, Copy)]
pub struct GemmProbe {
    pub scalar_gflops: f64,
    pub simd_gflops: f64,
    pub speedup: f64,
}

/// Best-of-N min-time probe of `gemm_nn_with` in both variants on one
/// shape. Also asserts the two variants agree bitwise — the probe runs in
/// every bench invocation, so a lane-kernel equivalence break cannot ship a
/// baseline.
pub fn gemm_probe(m: usize, n: usize, k: usize, trials: usize) -> GemmProbe {
    // Deterministic operands in a tame range (no overflow over k MACs).
    let a: Vec<f32> = (0..m * k)
        .map(|i| ((i % 251) as f32 - 125.0) * 1e-2)
        .collect();
    let b: Vec<f32> = (0..k * n)
        .map(|i| ((i % 241) as f32 - 120.0) * 1e-2)
        .collect();
    let flops = gemm_flops(m, n, k) as f64;

    let mut outputs: Vec<Vec<u32>> = Vec::with_capacity(2);
    let mut best = [f64::INFINITY; 2];
    for (slot, variant) in [GemmVariant::Scalar, GemmVariant::Simd]
        .into_iter()
        .enumerate()
    {
        let mut c = vec![0.0f32; m * n];
        gemm_nn_with(variant, m, n, k, &a, &b, &mut c); // warm-up
        for _ in 0..trials.max(1) {
            c.fill(0.0);
            let t0 = Instant::now();
            gemm_nn_with(variant, m, n, k, &a, &b, std::hint::black_box(&mut c));
            best[slot] = best[slot].min(t0.elapsed().as_secs_f64());
        }
        outputs.push(c.iter().map(|v| v.to_bits()).collect());
    }
    assert_eq!(
        outputs[0], outputs[1],
        "SIMD GEMM is not bitwise equal to the scalar oracle on {m}x{n}x{k}"
    );

    let gflops = |secs: f64| flops / secs.max(1e-12) / 1e9;
    GemmProbe {
        scalar_gflops: gflops(best[0]),
        simd_gflops: gflops(best[1]),
        speedup: best[0] / best[1].max(1e-12),
    }
}

/// Measured wall times and metrics for one execution target.
struct TargetRun {
    percol_s: f64,
    batched_s: f64,
    snap: MetricsSnapshot,
    alloc_events: u64,
}

/// Deterministic column population: the reference column perturbed by two
/// small index-dependent bumps (same recipe as the equivalence tests).
pub fn ml_columns(nlev: usize, n: usize) -> Vec<Column> {
    (0..n)
        .map(|i| {
            let mut c = Column::reference(nlev);
            c.t[nlev / 2] += (i % 17) as f64 * 0.3;
            c.qv[nlev - 1] *= 1.0 + 0.01 * (i % 5) as f64;
            c
        })
        .collect()
}

/// Time both inference paths on one substrate. The `label` span prefixes
/// every kernel key (`serial/ml/ml_physics_blocks`, …) so the two targets'
/// registries merge without collisions.
fn bench_target(
    sub: Substrate,
    label: &'static str,
    cols: &[Column],
    cfg: &MlBenchConfig,
) -> TargetRun {
    let mut suite = MlSuite::untrained(cfg.nlev, cfg.channels, cfg.seed);
    suite.sub = sub.clone();
    let (percol_s, batched_s);
    {
        let _span = sub.span(label);

        suite.step_columns_per_column(cols); // warm-up
        let t0 = Instant::now();
        for _ in 0..cfg.iters {
            std::hint::black_box(suite.step_columns_per_column(cols));
        }
        percol_s = t0.elapsed().as_secs_f64();

        suite.step_columns(cols); // warm-up grows the scratch arenas
        let t0 = Instant::now();
        for _ in 0..cfg.iters {
            std::hint::black_box(suite.step_columns(cols));
        }
        batched_s = t0.elapsed().as_secs_f64();
    }
    TargetRun {
        percol_s,
        batched_s,
        snap: sub.metrics().snapshot(),
        alloc_events: suite.scratch_alloc_events(),
    }
}

/// Run the pinned ML benchmark and assemble the `BENCH_0004.json` document.
pub fn run_ml() -> MlBench {
    run_ml_with(MlBenchConfig::default())
}

/// [`run_ml`] with explicit knobs (tests use a miniature configuration).
pub fn run_ml_with(cfg: MlBenchConfig) -> MlBench {
    let cols = ml_columns(cfg.nlev, cfg.columns);
    let serial = bench_target(Substrate::serial(), "serial", &cols, &cfg);
    let cpe = bench_target(Substrate::cpe_teams(cfg.n_cpes), "cpe", &cols, &cfg);
    let (gm, gn, gk) = cfg.gemm_shape;
    let gemm = gemm_probe(gm, gn, gk, cfg.gemm_trials);

    let suite = MlSuite::untrained(cfg.nlev, cfg.channels, cfg.seed);
    let block = suite.block;

    // Deterministic projections, gated tight by the compare pipeline. The
    // serial scratch-pool event count is the zero-alloc guarantee in
    // baseline form: one arena plus its fixed warm-up growths, flat no
    // matter how many timed iterations ran. (The CPE-teams count depends on
    // how many workers were concurrently active, so it is reported, not
    // projected.)
    let projections = Json::Obj(vec![
        (
            "ml.flops_per_column".into(),
            Json::Num(suite.flops_per_column() as f64),
        ),
        (
            "ml.batch_flops_block".into(),
            Json::Num(suite.batch_flops(block) as f64),
        ),
        (
            "ml.alloc_events_serial_steady".into(),
            Json::Num(serial.alloc_events as f64),
        ),
        // Fraction of probe-shape MACs inside full SIMD lane tiles —
        // deterministic blocking replay, so the gate pins it: a blocking
        // change that strands work in the scalar edge strips flags here.
        (
            "ml.gemm_lane_utilization".into(),
            Json::Num(gemm_lane_utilization(gm, gn)),
        ),
    ]);

    let cols_total = (cfg.iters * cfg.columns) as f64;
    let rate = |secs: f64| cols_total / secs.max(1e-12);
    let ns_per_col = |secs: f64| secs * 1e9 / cols_total;
    let serial_speedup = rate(serial.batched_s) / rate(serial.percol_s).max(1e-12);
    let cpe_speedup = rate(cpe.batched_s) / rate(cpe.percol_s).max(1e-12);

    // Host-dependent headline numbers; the compare gate ignores this
    // section (wall-time drift is gated through the kernel nanos instead).
    let report = Json::Obj(vec![
        (
            "serial.percol_cols_per_s".into(),
            Json::Num(rate(serial.percol_s)),
        ),
        (
            "serial.batched_cols_per_s".into(),
            Json::Num(rate(serial.batched_s)),
        ),
        (
            "serial.percol_ns_per_col".into(),
            Json::Num(ns_per_col(serial.percol_s)),
        ),
        (
            "serial.batched_ns_per_col".into(),
            Json::Num(ns_per_col(serial.batched_s)),
        ),
        ("serial.speedup".into(), Json::Num(serial_speedup)),
        (
            "cpe.percol_cols_per_s".into(),
            Json::Num(rate(cpe.percol_s)),
        ),
        (
            "cpe.batched_cols_per_s".into(),
            Json::Num(rate(cpe.batched_s)),
        ),
        (
            "cpe.percol_ns_per_col".into(),
            Json::Num(ns_per_col(cpe.percol_s)),
        ),
        (
            "cpe.batched_ns_per_col".into(),
            Json::Num(ns_per_col(cpe.batched_s)),
        ),
        ("cpe.speedup".into(), Json::Num(cpe_speedup)),
        (
            "cpe.alloc_events".into(),
            Json::Num(cpe.alloc_events as f64),
        ),
        ("gemm.scalar_gflops".into(), Json::Num(gemm.scalar_gflops)),
        ("gemm.simd_gflops".into(), Json::Num(gemm.simd_gflops)),
        ("gemm.simd_speedup".into(), Json::Num(gemm.speedup)),
    ]);

    let mut snap = serial.snap;
    merge_snapshots(&mut snap, &cpe.snap);

    let n = |x: f64| Json::Num(x);
    let config = Json::Obj(vec![
        ("nlev".into(), n(cfg.nlev as f64)),
        ("channels".into(), n(cfg.channels as f64)),
        ("columns".into(), n(cfg.columns as f64)),
        ("block".into(), n(block as f64)),
        ("iters".into(), n(cfg.iters as f64)),
        ("n_cpes".into(), n(cfg.n_cpes as f64)),
        ("seed".into(), n(cfg.seed as f64)),
        ("gemm_m".into(), n(gm as f64)),
        ("gemm_n".into(), n(gn as f64)),
        ("gemm_k".into(), n(gk as f64)),
        ("gemm_trials".into(), n(cfg.gemm_trials as f64)),
    ]);

    let doc = Json::Obj(vec![
        ("schema".into(), Json::Str(SCHEMA.into())),
        ("config".into(), config),
        ("projections".into(), projections),
        ("report".into(), report),
        ("metrics".into(), snap.to_json_value()),
    ]);

    MlBench {
        doc,
        serial_speedup,
        cpe_speedup,
        gemm_simd_speedup: gemm.speedup,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MlBenchConfig {
        MlBenchConfig {
            nlev: 6,
            channels: 8,
            columns: 12,
            iters: 1,
            n_cpes: 4,
            seed: 3,
            gemm_shape: (16, 32, 24),
            gemm_trials: 2,
        }
    }

    #[test]
    fn document_has_the_bench_schema_and_sections() {
        let b = run_ml_with(tiny());
        assert_eq!(b.doc.get("schema").and_then(Json::as_str), Some(SCHEMA));
        for section in ["config", "projections", "report", "metrics"] {
            assert!(b.doc.get(section).is_some(), "missing {section}");
        }
        assert!(b.serial_speedup.is_finite() && b.serial_speedup > 0.0);
        assert!(b.cpe_speedup.is_finite() && b.cpe_speedup > 0.0);
        assert!(b.gemm_simd_speedup.is_finite() && b.gemm_simd_speedup > 0.0);
    }

    #[test]
    fn gemm_probe_reports_positive_rates_and_checks_equivalence() {
        // The probe itself asserts scalar/simd bitwise equality internally;
        // a clean return means the oracle check ran on this shape.
        let p = gemm_probe(32, 48, 40, 3);
        assert!(p.scalar_gflops > 0.0 && p.simd_gflops > 0.0);
        assert!(p.speedup > 0.0 && p.speedup.is_finite());
    }

    #[test]
    fn lane_utilization_projection_is_pinned_for_the_probe_shape() {
        let b = run_ml_with(tiny());
        let v = b
            .doc
            .get("projections")
            .and_then(|p| p.get("ml.gemm_lane_utilization"))
            .and_then(Json::as_f64)
            .unwrap();
        assert_eq!(v, gemm_lane_utilization(16, 32));
        assert!(v > 0.0 && v <= 1.0);
    }

    #[test]
    fn kernel_counts_are_deterministic_and_target_prefixed() {
        let cfg = tiny();
        let b = run_ml_with(cfg);
        let snap = MetricsSnapshot::from_json_value(b.doc.get("metrics").unwrap()).unwrap();
        // warm-up + iters calls of each path, on each target.
        let calls = (cfg.iters + 1) as u64;
        let n_blocks = cfg.columns.div_ceil(grist_core::DEFAULT_ML_BLOCK) as u64;
        for target in ["serial", "cpe"] {
            let percol = &snap.kernels[&format!("{target}/ml/ml_physics_columns")];
            assert_eq!(percol.calls, calls);
            assert_eq!(percol.items, calls * cfg.columns as u64);
            let batched = &snap.kernels[&format!("{target}/ml/ml_physics_blocks")];
            assert_eq!(batched.calls, calls);
            assert_eq!(batched.items, calls * n_blocks);
        }
        // Two documents from the same config agree on every deterministic
        // quantity (the compare gate's premise).
        let b2 = run_ml_with(cfg);
        let r = crate::compare::compare_docs(
            &b.doc,
            &b2.doc,
            &crate::compare::CompareConfig::default(),
        )
        .unwrap();
        assert!(r.is_empty(), "nondeterministic bench document: {r:?}");
    }

    #[test]
    fn serial_alloc_events_projection_is_flat() {
        let a = run_ml_with(tiny());
        let v = a
            .doc
            .get("projections")
            .and_then(|p| p.get("ml.alloc_events_serial_steady"))
            .and_then(Json::as_f64)
            .unwrap();
        assert!(v >= 1.0, "at least the one serial arena: {v}");
        // More timed iterations must not move it — zero-alloc steady state.
        let mut cfg = tiny();
        cfg.iters = 3;
        let b = run_ml_with(cfg);
        let v2 = b
            .doc
            .get("projections")
            .and_then(|p| p.get("ml.alloc_events_serial_steady"))
            .and_then(Json::as_f64)
            .unwrap();
        assert_eq!(v, v2, "serial scratch pool grew after warm-up");
    }
}
