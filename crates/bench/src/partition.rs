//! The pinned partition-quality benchmark behind `BENCH_partition.json`:
//! edge-cut, balance, and measured halo-surface profiles of the graph
//! partitioner over a part-count ladder on one mesh (ROADMAP item 1's
//! quality gate).
//!
//! Everything in the document is **deterministic** — the partitioner is
//! seeded greedy growth plus boundary refinement with no randomness — so
//! the standard [`crate::compare`] gate holds every projection to the tight
//! tolerance. There are no kernels or wall times here; the `metrics`
//! section is an empty snapshot kept only so the schema (and the compare
//! pipeline) stay uniform across the `BENCH_*` family.
//!
//! The `surface_coeff` projections are the measured replacement for the
//! analytic `halo_surface_fraction ≈ 3.5` guess in
//! `grist_runtime::scaling::SdpdModelConfig`: `bench_scaling` feeds the
//! coefficient measured on its own partition into the model via
//! `with_measured_surface`, and this suite gates the coefficient's drift
//! across the ladder so a partitioner regression (ragged boundaries, split
//! parts) shows up as a bench failure, not as silently worse projections.

use grist_mesh::{HexMesh, Partition};
use sunway_sim::{Json, MetricsSnapshot};

use crate::smoke::SCHEMA;

/// Pinned mesh refinement level (G5: 10,242 cells — big enough that the
/// 64-part surface law is in its asymptotic regime, small enough to
/// partition three times in well under a second).
pub const PART_LEVEL: u32 = 5;
/// Part-count ladder: a 4× step per rung, spanning the rank counts the
/// halo/scaling suites use.
pub const PART_LADDER: [usize; 3] = [4, 16, 64];
/// Boundary-refinement passes, matching the halo and scaling benches.
pub const PART_REFINE_PASSES: usize = 2;

/// Per-rung quality numbers, in ladder order (the binary prints these as a
/// table; the document carries them as flat projections).
#[derive(Debug, Clone, Copy)]
pub struct PartitionRung {
    pub n_parts: usize,
    pub edge_cut: usize,
    pub imbalance: f64,
    pub max_part_degree: usize,
    pub mean_halo: f64,
    pub max_ratio: f64,
    pub surface_coeff: f64,
}

/// The assembled document plus the rung table behind it.
#[derive(Debug)]
pub struct PartitionBench {
    pub doc: Json,
    pub rungs: Vec<PartitionRung>,
}

/// Run the pinned ladder and assemble the `BENCH_partition.json` document.
pub fn run_partition() -> PartitionBench {
    run_partition_with(PART_LEVEL, &PART_LADDER)
}

/// [`run_partition`] with explicit knobs (tests use a smaller mesh).
pub fn run_partition_with(level: u32, ladder: &[usize]) -> PartitionBench {
    let mesh = HexMesh::build(level);
    let mut rungs = Vec::with_capacity(ladder.len());
    let mut projections: Vec<(String, f64)> = Vec::new();
    for &n_parts in ladder {
        let partition = Partition::build(&mesh, n_parts, PART_REFINE_PASSES);
        let q = partition.quality(&mesh);
        let s = partition.surface_profile(&mesh);
        rungs.push(PartitionRung {
            n_parts,
            edge_cut: q.edge_cut,
            imbalance: q.imbalance,
            max_part_degree: q.max_part_degree,
            mean_halo: s.mean_halo,
            max_ratio: s.max_ratio,
            surface_coeff: s.surface_coeff,
        });
        let pre = format!("partition.L{level}.p{n_parts}");
        projections.push((format!("{pre}.edge_cut"), q.edge_cut as f64));
        projections.push((format!("{pre}.imbalance"), q.imbalance));
        projections.push((format!("{pre}.max_part_degree"), q.max_part_degree as f64));
        projections.push((format!("{pre}.mean_halo"), s.mean_halo));
        projections.push((format!("{pre}.max_ratio"), s.max_ratio));
        projections.push((format!("{pre}.surface_coeff"), s.surface_coeff));
    }
    projections.sort_by(|a, b| a.0.cmp(&b.0));

    let doc = Json::Obj(vec![
        ("schema".into(), Json::Str(SCHEMA.into())),
        (
            "config".into(),
            Json::Obj(vec![
                ("mesh_level".into(), Json::Num(level as f64)),
                ("n_cells".into(), Json::Num(mesh.n_cells() as f64)),
                ("refine_passes".into(), Json::Num(PART_REFINE_PASSES as f64)),
                (
                    "ladder".into(),
                    Json::Arr(ladder.iter().map(|&p| Json::Num(p as f64)).collect()),
                ),
            ]),
        ),
        (
            "projections".into(),
            Json::Obj(
                projections
                    .into_iter()
                    .map(|(k, v)| (k, Json::Num(v)))
                    .collect(),
            ),
        ),
        // No kernels run here; the empty snapshot keeps the document in the
        // uniform grist-bench-v1 shape the compare gate expects.
        ("metrics".into(), MetricsSnapshot::default().to_json_value()),
    ]);

    PartitionBench { doc, rungs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare::{compare_docs, CompareConfig};

    #[test]
    fn document_has_the_bench_schema_and_sections() {
        let b = run_partition_with(3, &[2, 4]);
        assert_eq!(b.doc.get("schema").and_then(Json::as_str), Some(SCHEMA));
        for section in ["config", "projections", "metrics"] {
            assert!(b.doc.get(section).is_some(), "missing {section}");
        }
        assert_eq!(b.rungs.len(), 2);
    }

    #[test]
    fn ladder_projections_are_deterministic_under_the_compare_gate() {
        let a = run_partition_with(3, &[2, 4]);
        let b = run_partition_with(3, &[2, 4]);
        let r = compare_docs(&a.doc, &b.doc, &CompareConfig::default()).unwrap();
        assert!(r.is_empty(), "nondeterministic partition bench: {r:?}");
    }

    #[test]
    fn edge_cut_grows_and_halo_shrinks_up_the_ladder() {
        let b = run_partition_with(4, &[4, 16]);
        let (r4, r16) = (&b.rungs[0], &b.rungs[1]);
        assert!(
            r16.edge_cut > r4.edge_cut,
            "more parts must cut more edges: {} vs {}",
            r4.edge_cut,
            r16.edge_cut
        );
        assert!(
            r16.mean_halo < r4.mean_halo,
            "per-part halo must shrink with part size: {} vs {}",
            r4.mean_halo,
            r16.mean_halo
        );
        for r in &b.rungs {
            assert!(r.imbalance >= 1.0 && r.imbalance < 1.5, "{r:?}");
            assert!(r.surface_coeff > 0.5 && r.surface_coeff < 10.0, "{r:?}");
            assert!(r.max_ratio > 0.0 && r.max_ratio < 2.0, "{r:?}");
        }
    }

    #[test]
    fn a_partitioner_regression_is_caught_by_the_gate() {
        let good = run_partition_with(3, &[4]);
        let mut bad = run_partition_with(3, &[4]);
        // Simulate a 2x edge-cut blowup in the new document.
        let Json::Obj(fields) = &mut bad.doc else {
            panic!()
        };
        let proj = &mut fields
            .iter_mut()
            .find(|(k, _)| k == "projections")
            .unwrap()
            .1;
        let Json::Obj(pf) = proj else { panic!() };
        for (k, v) in pf.iter_mut() {
            if k.ends_with(".edge_cut") {
                let Json::Num(x) = v else { panic!() };
                *x *= 2.0;
            }
        }
        let r = compare_docs(&good.doc, &bad.doc, &CompareConfig::default()).unwrap();
        assert_eq!(r.len(), 1, "{r:?}");
        assert!(r[0].what.contains("edge_cut"), "{}", r[0]);
    }
}
