//! The pinned smoke benchmark behind `scripts/bench.sh` and the committed
//! `BENCH_*.json` baselines: a miniature pass over the repo's three
//! evaluation axes (Fig. 9 kernel model, Fig. 10/11 scaling projections, and
//! the live coupled model on the CPE-teams substrate), every knob pinned so
//! the document is reproducible.
//!
//! Everything except wall-clock nanoseconds is deterministic: kernel call /
//! item / byte counts, the `dma.*` / `ldcache.*` / `alloc.*` / `halo.*`
//! hardware-model counters, and the analytic SDPD projections. The
//! [`crate::compare`] gate therefore holds those to a tight tolerance and
//! wall times to a loose one.

use grist_core::{GristModel, RunConfig};
use grist_mesh::{HaloLayout, HexMesh, Partition};
use grist_runtime::scaling::{table2_grids, weak_scaling_ladder, Scheme, SdpdModel};
use grist_runtime::{exchange_gathered_metered, run_world, VarList};
use sunway_sim::dma::{simulate_dma_batch_metered, DmaRequest};
use sunway_sim::perf::{fig9_kernels, kernel_time_metered, ExecTarget, PerfModel};
use sunway_sim::{Json, Metrics, MetricsSnapshot, Substrate, SunwaySpec};

/// Document schema tag checked by [`crate::compare::compare_docs`].
pub const SCHEMA: &str = "grist-bench-v1";

/// Pinned smoke configuration — changing any of these invalidates committed
/// baselines, so bump the `BENCH_*.json` sequence number when you do.
pub const SMOKE_LEVEL: u32 = 2;
pub const SMOKE_NLEV: usize = 10;
pub const SMOKE_CPES: usize = 16;
pub const SMOKE_DYN_STEPS: usize = 16;
/// Fig. 9 model sizes: the G6 grid of the paper's 100 km demo case.
pub const FIG9_CELLS: usize = 40_962;
pub const FIG9_EDGES: usize = 122_880;
pub const FIG9_NLEV: usize = 30;
/// Halo-exchange smoke world.
pub const HALO_RANKS: usize = 4;
pub const HALO_MESH_LEVEL: u32 = 3;

/// Run the full smoke suite and assemble the benchmark document.
pub fn run_smoke() -> Json {
    let config = RunConfig::for_level(SMOKE_LEVEL, SMOKE_NLEV);

    // --- live coupled model on the CPE-teams substrate (kernel section) ---
    let mut model =
        GristModel::<f64>::with_substrate(config.clone(), Substrate::cpe_teams(SMOKE_CPES));
    model.advance(SMOKE_DYN_STEPS as f64 * config.dt_dyn);
    let mut snap = model.metrics_snapshot();

    // --- hardware-model smokes, recorded into a second registry ---
    let extra = Metrics::default();
    let spec = SunwaySpec::next_gen();
    let perf = PerfModel::default();

    // Fig. 9: modeled kernel times for every kernel × target, metered so the
    // LDCache/allocator simulators fill `ldcache.*` / `alloc.*`.
    let mut projections: Vec<(String, f64)> = Vec::new();
    for k in &fig9_kernels(FIG9_CELLS, FIG9_EDGES, FIG9_NLEV) {
        for target in ExecTarget::fig9_all() {
            let t = kernel_time_metered(k, target, &spec, &perf, &extra);
            projections.push((format!("fig9.{}.{}_s", k.name, target.label()), t));
        }
    }

    // DMA engine: the omnicopy batch shape (64 CPEs × 192 KB).
    let reqs: Vec<DmaRequest> = (0..64)
        .map(|cpe| DmaRequest {
            cpe,
            bytes: 192 * 1024,
            issue_t: 0.0,
        })
        .collect();
    simulate_dma_batch_metered(&spec, &reqs, &extra);

    // Halo exchange: a 4-rank world swapping a two-variable gather list,
    // metered into `halo.*` (the registry is shared across rank threads).
    {
        let mesh = HexMesh::build(HALO_MESH_LEVEL);
        let partition = Partition::build(&mesh, HALO_RANKS, 2);
        let layout = HaloLayout::build(&mesh, &partition, 1);
        let n = mesh.n_cells();
        let metrics = &extra;
        run_world(HALO_RANKS, |mut ctx| {
            let locale = &layout.locales[ctx.rank];
            let mut h = vec![0.0f64; n * SMOKE_NLEV];
            let mut u = vec![0.0f64; n * SMOKE_NLEV];
            let mut list = VarList::new();
            list.push("h", SMOKE_NLEV, &mut h);
            list.push("u", SMOKE_NLEV, &mut u);
            exchange_gathered_metered(&mut ctx, locale, &mut list, 1, metrics)
                .expect("uniform smoke lists")
        });
    }

    // Fig. 10: the weak-scaling ladder under the full MIX-ML scheme.
    let sdpd = SdpdModel::default();
    let grids = table2_grids();
    let mix_ml = Scheme {
        mixed: true,
        ml_physics: true,
    };
    for (label, procs) in weak_scaling_ladder() {
        let grid = grids
            .iter()
            .find(|g| g.label == label)
            .expect("ladder grid present in Table 2");
        let r = sdpd.project(grid, mix_ml, procs);
        projections.push((format!("sdpd.weak.{label}.p{procs}"), r.sdpd));
        projections.push((format!("commfrac.weak.{label}.p{procs}"), r.comm_fraction));
    }

    // Fig. 11: strong scaling of the G6 grid across every Table-3 scheme.
    let g6 = grids
        .iter()
        .find(|g| g.label == "G6")
        .expect("G6 in Table 2");
    for procs in [64usize, 256, 1024] {
        for scheme in Scheme::all() {
            let r = sdpd.project(g6, scheme, procs);
            projections.push((
                format!("sdpd.strong.G6.{}.p{procs}", scheme.label()),
                r.sdpd,
            ));
        }
    }

    // Merge the hardware-model registry into the model snapshot (counter
    // namespaces are summed; the extra registry records no kernels/spans).
    merge_snapshots(&mut snap, &extra.snapshot());

    projections.sort_by(|a, b| a.0.cmp(&b.0));
    Json::Obj(vec![
        ("schema".into(), Json::Str(SCHEMA.into())),
        ("config".into(), config_json(&config)),
        (
            "projections".into(),
            Json::Obj(
                projections
                    .into_iter()
                    .map(|(k, v)| (k, Json::Num(v)))
                    .collect(),
            ),
        ),
        ("metrics".into(), snap.to_json_value()),
    ])
}

/// Tracing-overhead measurement behind the smoke document's `"trace"`
/// section (inserted by the `bench_smoke` binary; deliberately *not* part
/// of [`run_smoke`] so the pinned `metrics`/`projections` sections are
/// byte-identical whether or not the overhead probe runs).
///
/// The headline number, `overhead_off_pct`, is the cost of *compiled-in but
/// disabled* tracing, estimated robustly instead of by differencing two
/// noisy wall times: a tight probe measures the disabled fast path (one
/// relaxed atomic load) in ns/event, a traced window counts how many events
/// the workload would record, and the product over the untraced window's
/// wall time bounds the disabled overhead. `overhead_on_pct` (the full
/// cost of recording) is reported for context but is wall-vs-wall and
/// therefore noisy; only the `off` number is gated (< 1% — see
/// [`crate::compare`] and the `bench_smoke` binary).
pub fn trace_overhead() -> Json {
    const PROBE_CALLS: u64 = 4_000_000;

    // (a) Disabled fast path in isolation: `Tracer::begin` is the guard
    // every instrumented site runs first, and when tracing is off it is the
    // *only* thing that runs.
    let probe = Metrics::default();
    let tracer = probe.tracer();
    let t0 = std::time::Instant::now();
    for _ in 0..PROBE_CALLS {
        std::hint::black_box(tracer.begin());
    }
    let off_ns_per_event = t0.elapsed().as_nanos() as f64 / PROBE_CALLS as f64;

    // (b) The smoke model window, untraced and traced. The traced run also
    // yields the event count (recorded + evicted) the workload generates.
    let run_window = |traced: bool| -> (f64, u64) {
        let metrics = Metrics::default();
        if traced {
            metrics.tracer().enable();
        }
        let config = RunConfig::for_level(SMOKE_LEVEL, SMOKE_NLEV);
        let mut model = GristModel::<f64>::with_substrate(
            config.clone(),
            Substrate::cpe_teams_with_metrics(SMOKE_CPES, metrics.clone()),
        );
        let t0 = std::time::Instant::now();
        model.advance(SMOKE_DYN_STEPS as f64 * config.dt_dyn);
        let wall = t0.elapsed().as_secs_f64();
        let snap = metrics.tracer().snapshot();
        (wall, snap.total_events() as u64 + snap.dropped)
    };
    let (wall_off, _) = run_window(false);
    let (wall_on, events) = run_window(true);

    let overhead_off_pct = off_ns_per_event * events as f64 / (wall_off * 1e9) * 100.0;
    let overhead_on_pct = (wall_on - wall_off) / wall_off * 100.0;
    Json::Obj(vec![
        ("probe_calls".into(), Json::Num(PROBE_CALLS as f64)),
        ("off_ns_per_event".into(), Json::Num(off_ns_per_event)),
        ("events_per_window".into(), Json::Num(events as f64)),
        ("window_off_ms".into(), Json::Num(wall_off * 1e3)),
        ("window_on_ms".into(), Json::Num(wall_on * 1e3)),
        ("overhead_off_pct".into(), Json::Num(overhead_off_pct)),
        ("overhead_on_pct".into(), Json::Num(overhead_on_pct)),
    ])
}

/// Fold `extra` into `base` (sum on key collision in every section).
pub fn merge_snapshots(base: &mut MetricsSnapshot, extra: &MetricsSnapshot) {
    for (k, s) in &extra.kernels {
        let e = base.kernels.entry(k.clone()).or_default();
        e.calls += s.calls;
        e.nanos += s.nanos;
        e.items += s.items;
        e.bytes += s.bytes;
    }
    for (k, s) in &extra.spans {
        let e = base.spans.entry(k.clone()).or_default();
        e.calls += s.calls;
        e.nanos += s.nanos;
    }
    for (k, &v) in &extra.counters {
        *base.counters.entry(k.clone()).or_default() += v;
    }
}

fn config_json(config: &RunConfig) -> Json {
    let n = |x: f64| Json::Num(x);
    Json::Obj(vec![
        ("level".into(), n(SMOKE_LEVEL as f64)),
        ("nlev".into(), n(SMOKE_NLEV as f64)),
        ("n_cpes".into(), n(SMOKE_CPES as f64)),
        ("dyn_steps".into(), n(SMOKE_DYN_STEPS as f64)),
        ("dt_dyn".into(), n(config.dt_dyn)),
        ("fig9_cells".into(), n(FIG9_CELLS as f64)),
        ("fig9_edges".into(), n(FIG9_EDGES as f64)),
        ("fig9_nlev".into(), n(FIG9_NLEV as f64)),
        ("halo_ranks".into(), n(HALO_RANKS as f64)),
        ("halo_mesh_level".into(), n(HALO_MESH_LEVEL as f64)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunway_sim::KernelStats;

    #[test]
    fn merge_sums_overlapping_sections() {
        let mut a = MetricsSnapshot::default();
        a.kernels.insert(
            "k".into(),
            KernelStats {
                calls: 1,
                nanos: 10,
                items: 5,
                bytes: 0,
            },
        );
        a.counters.insert("dma.bytes".into(), 100);
        let mut b = MetricsSnapshot::default();
        b.kernels.insert(
            "k".into(),
            KernelStats {
                calls: 2,
                nanos: 20,
                items: 5,
                bytes: 8,
            },
        );
        b.counters.insert("dma.bytes".into(), 28);
        b.counters.insert("halo.messages".into(), 3);
        merge_snapshots(&mut a, &b);
        assert_eq!(a.kernels["k"].calls, 3);
        assert_eq!(a.kernels["k"].bytes, 8);
        assert_eq!(a.counters["dma.bytes"], 128);
        assert_eq!(a.counters["halo.messages"], 3);
    }
}
