//! Shared helpers for the figure/table harness binaries (aligned-column
//! table printing, CSV output into `results/`), plus the benchmark-baseline
//! pipeline: [`smoke`] produces the pinned `BENCH_*.json` documents and
//! [`compare`] gates a fresh run against a committed baseline.

// Indexed loops mirror the Fortran stencil kernels they reproduce and are
// clearer than iterator chains for staggered-grid code.
#![allow(clippy::needless_range_loop)]
pub mod compare;
pub mod ml;
pub mod obs;
pub mod partition;
pub mod serve;
pub mod smoke;

use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// A simple text table accumulated row by row.
#[derive(Debug, Default)]
pub struct Table {
    pub header: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Print with aligned columns.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let parts: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            println!("| {} |", parts.join(" | "));
        };
        line(&self.header);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        line(&sep);
        for row in &self.rows {
            line(row);
        }
    }

    /// Also write as CSV under `results/<name>.csv`.
    pub fn write_csv(&self, name: &str) -> std::io::Result<PathBuf> {
        let dir = PathBuf::from("results");
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut f = fs::File::create(&path)?;
        writeln!(f, "{}", self.header.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(path)
    }
}

/// Minimal self-timed benchmark harness for the `harness = false` bench
/// targets: the workspace builds fully offline (see README "Offline
/// builds"), so criterion is not available. Each benchmark warms up once,
/// then repeats in batches until ~200 ms of samples accumulate, reporting
/// the best and mean per-iteration times.
#[derive(Debug, Default)]
pub struct Bencher {
    group: String,
    rows: Vec<(String, f64, f64)>,
}

impl Bencher {
    pub fn group(name: &str) -> Self {
        Bencher {
            group: name.to_string(),
            rows: Vec::new(),
        }
    }

    /// Time `f`, storing best/mean seconds per iteration under `name`.
    pub fn bench<F: FnMut()>(&mut self, name: &str, mut f: F) {
        f(); // warm-up (first call pays allocation/fault costs)
        let budget = std::time::Duration::from_millis(200);
        let started = std::time::Instant::now();
        let mut best = f64::INFINITY;
        let mut total = 0.0;
        let mut iters = 0u64;
        // Batch size chosen from one probe call so very fast closures are
        // not dominated by timer overhead.
        let probe = {
            let t0 = std::time::Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        };
        let batch = ((1e-4 / probe.max(1e-9)) as u64).clamp(1, 10_000);
        while started.elapsed() < budget && iters < 1_000_000 {
            let t0 = std::time::Instant::now();
            for _ in 0..batch {
                f();
            }
            let per_iter = t0.elapsed().as_secs_f64() / batch as f64;
            best = best.min(per_iter);
            total += per_iter * batch as f64;
            iters += batch;
        }
        self.rows
            .push((name.to_string(), best, total / iters as f64));
    }

    /// Print the group's results as an aligned table (and a CSV).
    pub fn finish(self) {
        println!("\n## {}\n", self.group);
        let mut t = Table::new(&["benchmark", "best", "mean"]);
        for (name, best, mean) in &self.rows {
            t.row(&[name.clone(), fmt_time(*best), fmt_time(*mean)]);
        }
        t.print();
        let _ = t.write_csv(&format!("bench_{}", self.group));
    }
}

/// Render a duration in seconds with an auto-scaled unit.
pub fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Format a float compactly.
pub fn fmt(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 || x.abs() < 0.01 {
        format!("{x:.3e}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rows_align_with_header() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(&["1".into(), "2".into()]);
        assert_eq!(t.rows.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_panics() {
        let mut t = Table::new(&["a"]);
        t.row(&["1".into(), "2".into()]);
    }

    #[test]
    fn fmt_picks_sensible_representations() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(1.5), "1.500");
        assert!(fmt(12345.0).contains('e'));
        assert!(fmt(0.0001).contains('e'));
    }

    #[test]
    fn fmt_time_scales_units() {
        assert_eq!(fmt_time(2.0), "2.000 s");
        assert_eq!(fmt_time(2e-3), "2.000 ms");
        assert_eq!(fmt_time(2e-6), "2.000 us");
        assert_eq!(fmt_time(2e-9), "2.0 ns");
    }

    #[test]
    fn bencher_records_positive_times() {
        let mut b = Bencher::group("selftest");
        b.bench("spin", || {
            std::hint::black_box((0..100).sum::<u64>());
        });
        assert_eq!(b.rows.len(), 1);
        assert!(b.rows[0].1 > 0.0 && b.rows[0].2 >= b.rows[0].1);
    }
}
