//! Shared helpers for the figure/table harness binaries: aligned-column
//! table printing and CSV output into `results/`.

// Indexed loops mirror the Fortran stencil kernels they reproduce and are
// clearer than iterator chains for staggered-grid code.
#![allow(clippy::needless_range_loop)]
use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// A simple text table accumulated row by row.
#[derive(Debug, Default)]
pub struct Table {
    pub header: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(header: &[&str]) -> Self {
        Table { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Print with aligned columns.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let parts: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            println!("| {} |", parts.join(" | "));
        };
        line(&self.header);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        line(&sep);
        for row in &self.rows {
            line(row);
        }
    }

    /// Also write as CSV under `results/<name>.csv`.
    pub fn write_csv(&self, name: &str) -> std::io::Result<PathBuf> {
        let dir = PathBuf::from("results");
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut f = fs::File::create(&path)?;
        writeln!(f, "{}", self.header.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(path)
    }
}

/// Format a float compactly.
pub fn fmt(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 || x.abs() < 0.01 {
        format!("{x:.3e}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rows_align_with_header() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(&["1".into(), "2".into()]);
        assert_eq!(t.rows.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_panics() {
        let mut t = Table::new(&["a"]);
        t.row(&["1".into(), "2".into()]);
    }

    #[test]
    fn fmt_picks_sensible_representations() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(1.5), "1.500");
        assert!(fmt(12345.0).contains('e'));
        assert!(fmt(0.0001).contains('e'));
    }
}
