//! Training-data machinery for the ML physics suite (§3.2.1–3.2.2):
//! per-channel normalization, and the paper's train/test split — "the
//! testing set consists of three randomly selected time steps per day, while
//! the remaining time steps are allocated for training, maintaining a
//! training/testing ratio of 7:1".

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One (input, target) pair in raw physical units.
#[derive(Debug, Clone)]
pub struct Sample {
    pub x: Vec<f32>,
    pub y: Vec<f32>,
    /// Simulated day the sample came from (drives the paper's split).
    pub day: usize,
    /// Time step within the day.
    pub step: usize,
}

/// A dataset with the paper's day-wise train/test split.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    pub train: Vec<Sample>,
    pub test: Vec<Sample>,
}

impl Dataset {
    /// Split `samples` per the paper: for each simulated day, 3 randomly
    /// selected time steps go to the test set; the rest train. With 24
    /// steps/day this yields the stated 7:1 ratio.
    pub fn split_by_day(samples: Vec<Sample>, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let max_day = samples.iter().map(|s| s.day).max().unwrap_or(0);
        let mut test_steps: Vec<Vec<usize>> = Vec::with_capacity(max_day + 1);
        for day in 0..=max_day {
            let mut steps: Vec<usize> = samples
                .iter()
                .filter(|s| s.day == day)
                .map(|s| s.step)
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect();
            steps.shuffle(&mut rng);
            steps.truncate(3);
            test_steps.push(steps);
        }
        let mut ds = Dataset::default();
        for s in samples {
            if test_steps[s.day].contains(&s.step) {
                ds.test.push(s);
            } else {
                ds.train.push(s);
            }
        }
        ds
    }

    pub fn ratio(&self) -> f64 {
        self.train.len() as f64 / self.test.len().max(1) as f64
    }
}

/// Per-channel standardization statistics for channel-major data
/// (`n_channels` blocks of `block_len` values each).
#[derive(Debug, Clone)]
pub struct ChannelNormalizer {
    pub n_channels: usize,
    pub block_len: usize,
    /// (mean, std) per channel; std floored to avoid division blow-ups.
    pub stats: Vec<(f32, f32)>,
}

impl ChannelNormalizer {
    /// Fit on a set of vectors, each laid out `[n_channels × block_len]`.
    pub fn fit<'a>(
        vecs: impl Iterator<Item = &'a Vec<f32>> + Clone,
        n_channels: usize,
        block_len: usize,
    ) -> Self {
        let mut stats = Vec::with_capacity(n_channels);
        for ch in 0..n_channels {
            let mut n = 0u64;
            let mut mean = 0.0f64;
            let mut m2 = 0.0f64;
            for v in vecs.clone() {
                for &x in &v[ch * block_len..(ch + 1) * block_len] {
                    n += 1;
                    let d = x as f64 - mean;
                    mean += d / n as f64;
                    m2 += d * (x as f64 - mean);
                }
            }
            let var = if n > 1 { m2 / (n - 1) as f64 } else { 0.0 };
            let sd = var.sqrt().max(1e-12) as f32;
            stats.push((mean as f32, sd));
        }
        ChannelNormalizer {
            n_channels,
            block_len,
            stats,
        }
    }

    /// `(x - mean) / std` in place.
    pub fn normalize(&self, v: &mut [f32]) {
        for ch in 0..self.n_channels {
            let (mu, sd) = self.stats[ch];
            for x in &mut v[ch * self.block_len..(ch + 1) * self.block_len] {
                *x = (*x - mu) / sd;
            }
        }
    }

    /// Inverse transform in place.
    pub fn denormalize(&self, v: &mut [f32]) {
        for ch in 0..self.n_channels {
            let (mu, sd) = self.stats[ch];
            for x in &mut v[ch * self.block_len..(ch + 1) * self.block_len] {
                *x = *x * sd + mu;
            }
        }
    }

    /// As `(mean, 1/std)` pairs for the models' built-in input scaling.
    pub fn as_inv_pairs(&self) -> Vec<(f32, f32)> {
        self.stats.iter().map(|&(mu, sd)| (mu, 1.0 / sd)).collect()
    }
}

/// The paper's Table 1: the four selected 20-day periods with their climate
/// regime descriptors, used by the synthetic data generator to vary forcing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingPeriod {
    pub name: &'static str,
    /// Oceanic Niño Index (El Niño > 0, La Niña < 0).
    pub oni: f64,
    /// Representative real-time multivariate MJO amplitude.
    pub mjo: f64,
    /// Season encoded as the solar declination used for forcing \[rad\].
    pub solar_declination: f64,
}

/// Table 1 of the paper.
pub const TRAINING_PERIODS: [TrainingPeriod; 4] = [
    TrainingPeriod {
        name: "1-20 January 1998",
        oni: 2.2,
        mjo: 1.3,
        solar_declination: -0.40,
    },
    TrainingPeriod {
        name: "1-20 April 2005",
        oni: 0.4,
        mjo: 3.2,
        solar_declination: 0.10,
    },
    TrainingPeriod {
        name: "10-29 July 2015",
        oni: -0.4,
        mjo: 0.6,
        solar_declination: 0.37,
    },
    TrainingPeriod {
        name: "1-20 October 1988",
        oni: -1.5,
        mjo: 1.8,
        solar_declination: -0.10,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_samples(days: usize, steps_per_day: usize) -> Vec<Sample> {
        let mut v = Vec::new();
        for day in 0..days {
            for step in 0..steps_per_day {
                v.push(Sample {
                    x: vec![day as f32, step as f32],
                    y: vec![0.0],
                    day,
                    step,
                });
            }
        }
        v
    }

    #[test]
    fn split_matches_paper_ratio() {
        // 24 steps/day, 3 to test ⇒ 21:3 = 7:1 exactly.
        let ds = Dataset::split_by_day(fake_samples(20, 24), 42);
        assert_eq!(ds.test.len(), 20 * 3);
        assert_eq!(ds.train.len(), 20 * 21);
        assert!((ds.ratio() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn split_is_disjoint_and_complete() {
        let all = fake_samples(5, 10);
        let n = all.len();
        let ds = Dataset::split_by_day(all, 7);
        assert_eq!(ds.train.len() + ds.test.len(), n);
        for t in &ds.test {
            assert!(
                !ds.train.iter().any(|s| s.day == t.day && s.step == t.step),
                "sample in both sets"
            );
        }
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let a = Dataset::split_by_day(fake_samples(4, 12), 9);
        let b = Dataset::split_by_day(fake_samples(4, 12), 9);
        let key = |d: &Dataset| -> Vec<(usize, usize)> {
            d.test.iter().map(|s| (s.day, s.step)).collect()
        };
        assert_eq!(key(&a), key(&b));
    }

    #[test]
    fn normalizer_standardizes_each_channel() {
        let data: Vec<Vec<f32>> = (0..100)
            .map(|i| {
                let mut v = vec![0.0f32; 6];
                for k in 0..3 {
                    v[k] = 10.0 + (i as f32) * 0.1; // channel 0: big offset
                }
                for k in 3..6 {
                    v[k] = -0.001 * (i as f32); // channel 1: tiny scale
                }
                v
            })
            .collect();
        let norm = ChannelNormalizer::fit(data.iter(), 2, 3);
        let mut v = data[50].clone();
        norm.normalize(&mut v);
        assert!(
            v.iter().all(|&x| x.abs() < 3.0),
            "normalized values too large: {v:?}"
        );
        let mut w = v.clone();
        norm.denormalize(&mut w);
        for (a, b) in w.iter().zip(&data[50]) {
            assert!((a - b).abs() < 1e-3, "roundtrip failed: {a} vs {b}");
        }
    }

    #[test]
    fn table1_periods_cover_enso_spread() {
        let onis: Vec<f64> = TRAINING_PERIODS.iter().map(|p| p.oni).collect();
        assert!(
            onis.iter().cloned().fold(f64::MIN, f64::max) > 2.0,
            "El Niño case present"
        );
        assert!(
            onis.iter().cloned().fold(f64::MAX, f64::min) < -1.0,
            "La Niña case present"
        );
        assert_eq!(TRAINING_PERIODS.len(), 4, "four seasons");
    }
}
