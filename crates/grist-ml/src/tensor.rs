//! Minimal neural-network building blocks: parameters with gradient and
//! Adam moment storage, dense and 1-D convolution layers with hand-written
//! forward/backward passes, and activations.
//!
//! The paper's ML physics suite is deliberately compact — an 11-layer 1-D CNN
//! (~0.5 M parameters) and a 7-layer MLP — so a small, dependency-free,
//! layer-wise backprop implementation is both sufficient and easy to audit.
//! All compute is `f32`: "exploiting a mixed-precision scheme for ML-based
//! parameterizations is straightforward at the operator level due to the
//! model's compact design" (§3.4).

use rand::rngs::StdRng;
use rand::Rng;

/// A trainable parameter tensor with gradient and Adam moments.
#[derive(Debug, Clone)]
pub struct Param {
    pub w: Vec<f32>,
    pub g: Vec<f32>,
    pub m: Vec<f32>,
    pub v: Vec<f32>,
}

impl Param {
    /// He-uniform initialization for a parameter with `fan_in` inputs.
    pub fn he(n: usize, fan_in: usize, rng: &mut StdRng) -> Self {
        let bound = (6.0 / fan_in as f32).sqrt();
        let w = (0..n).map(|_| rng.gen_range(-bound..bound)).collect();
        Param {
            w,
            g: vec![0.0; n],
            m: vec![0.0; n],
            v: vec![0.0; n],
        }
    }

    pub fn zeros(n: usize) -> Self {
        Param {
            w: vec![0.0; n],
            g: vec![0.0; n],
            m: vec![0.0; n],
            v: vec![0.0; n],
        }
    }

    pub fn len(&self) -> usize {
        self.w.len()
    }

    pub fn is_empty(&self) -> bool {
        self.w.is_empty()
    }

    pub fn zero_grad(&mut self) {
        self.g.fill(0.0);
    }
}

/// Fully-connected layer `y = W x + b`.
#[derive(Debug, Clone)]
pub struct Dense {
    pub n_in: usize,
    pub n_out: usize,
    pub weight: Param, // row-major [n_out × n_in]
    pub bias: Param,
    cached_x: Vec<f32>,
}

impl Dense {
    pub fn new(n_in: usize, n_out: usize, rng: &mut StdRng) -> Self {
        Dense {
            n_in,
            n_out,
            weight: Param::he(n_out * n_in, n_in, rng),
            bias: Param::zeros(n_out),
            cached_x: Vec::new(),
        }
    }

    pub fn forward(&mut self, x: &[f32]) -> Vec<f32> {
        debug_assert_eq!(x.len(), self.n_in);
        self.cached_x = x.to_vec();
        let mut y = self.bias.w.clone();
        for o in 0..self.n_out {
            let row = &self.weight.w[o * self.n_in..(o + 1) * self.n_in];
            let mut acc = 0.0f32;
            for (wi, xi) in row.iter().zip(x) {
                acc += wi * xi;
            }
            y[o] += acc;
        }
        y
    }

    /// Inference-only forward (no caching) — the hot path of the coupled run.
    pub fn infer(&self, x: &[f32], y: &mut [f32]) {
        debug_assert_eq!(x.len(), self.n_in);
        debug_assert_eq!(y.len(), self.n_out);
        y.copy_from_slice(&self.bias.w);
        for o in 0..self.n_out {
            let row = &self.weight.w[o * self.n_in..(o + 1) * self.n_in];
            let mut acc = 0.0f32;
            for (wi, xi) in row.iter().zip(x) {
                acc += wi * xi;
            }
            y[o] += acc;
        }
    }

    pub fn backward(&mut self, grad_y: &[f32]) -> Vec<f32> {
        debug_assert_eq!(grad_y.len(), self.n_out);
        let x = &self.cached_x;
        let mut grad_x = vec![0.0f32; self.n_in];
        for o in 0..self.n_out {
            let gy = grad_y[o];
            self.bias.g[o] += gy;
            let row_w = &self.weight.w[o * self.n_in..(o + 1) * self.n_in];
            let row_g = &mut self.weight.g[o * self.n_in..(o + 1) * self.n_in];
            for i in 0..self.n_in {
                row_g[i] += gy * x[i];
                grad_x[i] += gy * row_w[i];
            }
        }
        grad_x
    }

    pub fn n_params(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    /// FLOPs of one forward pass (mul+add per weight).
    pub fn flops(&self) -> u64 {
        2 * (self.n_out as u64) * (self.n_in as u64)
    }
}

/// 1-D convolution over the vertical dimension with "same" (zero) padding —
/// the layer the paper uses "to capture the vertical characteristics of
/// temperature, humidity, and other atmospheric variables" (§3.2.3).
///
/// Data layout: channel-major `[ch × len]`.
#[derive(Debug, Clone)]
pub struct Conv1d {
    pub c_in: usize,
    pub c_out: usize,
    pub ksize: usize,
    pub len: usize,
    pub weight: Param, // [c_out × c_in × ksize]
    pub bias: Param,   // [c_out]
    cached_x: Vec<f32>,
}

impl Conv1d {
    pub fn new(c_in: usize, c_out: usize, ksize: usize, len: usize, rng: &mut StdRng) -> Self {
        assert!(ksize % 2 == 1, "odd kernel for same padding");
        Conv1d {
            c_in,
            c_out,
            ksize,
            len,
            weight: Param::he(c_out * c_in * ksize, c_in * ksize, rng),
            bias: Param::zeros(c_out),
            cached_x: Vec::new(),
        }
    }

    #[inline]
    fn widx(&self, co: usize, ci: usize, k: usize) -> usize {
        (co * self.c_in + ci) * self.ksize + k
    }

    pub fn forward(&mut self, x: &[f32]) -> Vec<f32> {
        self.cached_x = x.to_vec();
        let mut y = vec![0.0f32; self.c_out * self.len];
        self.infer(x, &mut y);
        y
    }

    pub fn infer(&self, x: &[f32], y: &mut [f32]) {
        debug_assert_eq!(x.len(), self.c_in * self.len);
        debug_assert_eq!(y.len(), self.c_out * self.len);
        let half = self.ksize / 2;
        for co in 0..self.c_out {
            let yrow = &mut y[co * self.len..(co + 1) * self.len];
            yrow.fill(self.bias.w[co]);
            for ci in 0..self.c_in {
                let xrow = &x[ci * self.len..(ci + 1) * self.len];
                for k in 0..self.ksize {
                    let w = self.weight.w[self.widx(co, ci, k)];
                    // y[p] += w * x[p + k - half] where in range
                    let shift = k as isize - half as isize;
                    let (p_lo, p_hi) = if shift < 0 {
                        ((-shift) as usize, self.len)
                    } else {
                        (0, self.len - shift as usize)
                    };
                    for p in p_lo..p_hi {
                        yrow[p] += w * xrow[(p as isize + shift) as usize];
                    }
                }
            }
        }
    }

    pub fn backward(&mut self, grad_y: &[f32]) -> Vec<f32> {
        let x = &self.cached_x;
        let half = self.ksize / 2;
        let mut grad_x = vec![0.0f32; self.c_in * self.len];
        for co in 0..self.c_out {
            let gy = &grad_y[co * self.len..(co + 1) * self.len];
            self.bias.g[co] += gy.iter().sum::<f32>();
            for ci in 0..self.c_in {
                let xrow = &x[ci * self.len..(ci + 1) * self.len];
                let gx = &mut grad_x[ci * self.len..(ci + 1) * self.len];
                for k in 0..self.ksize {
                    let wi = self.widx(co, ci, k);
                    let w = self.weight.w[wi];
                    let shift = k as isize - half as isize;
                    let (p_lo, p_hi) = if shift < 0 {
                        ((-shift) as usize, self.len)
                    } else {
                        (0, self.len - shift as usize)
                    };
                    let mut gw = 0.0f32;
                    for p in p_lo..p_hi {
                        let xi = xrow[(p as isize + shift) as usize];
                        gw += gy[p] * xi;
                        gx[(p as isize + shift) as usize] += gy[p] * w;
                    }
                    self.weight.g[wi] += gw;
                }
            }
        }
        grad_x
    }

    pub fn n_params(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    pub fn flops(&self) -> u64 {
        2 * (self.c_out * self.c_in * self.ksize * self.len) as u64
    }
}

/// ReLU activation (stateful: caches the mask).
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Vec<bool>,
}

impl Relu {
    pub fn forward(&mut self, x: &[f32]) -> Vec<f32> {
        self.mask = x.iter().map(|&v| v > 0.0).collect();
        x.iter().map(|&v| v.max(0.0)).collect()
    }

    pub fn infer(x: &mut [f32]) {
        for v in x.iter_mut() {
            *v = v.max(0.0);
        }
    }

    pub fn backward(&self, grad_y: &[f32]) -> Vec<f32> {
        grad_y
            .iter()
            .zip(&self.mask)
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect()
    }
}

/// Mean-squared-error loss; returns (loss, dLoss/dPred).
pub fn mse_loss(pred: &[f32], target: &[f32]) -> (f32, Vec<f32>) {
    assert_eq!(pred.len(), target.len());
    let n = pred.len() as f32;
    let mut loss = 0.0f32;
    let grad = pred
        .iter()
        .zip(target)
        .map(|(&p, &t)| {
            let d = p - t;
            loss += d * d;
            2.0 * d / n
        })
        .collect();
    (loss / n, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1234)
    }

    #[test]
    fn dense_forward_matches_manual() {
        let mut r = rng();
        let mut d = Dense::new(2, 2, &mut r);
        d.weight.w = vec![1.0, 2.0, 3.0, 4.0];
        d.bias.w = vec![0.5, -0.5];
        let y = d.forward(&[1.0, -1.0]);
        assert_eq!(y, vec![1.0 - 2.0 + 0.5, 3.0 - 4.0 - 0.5]);
    }

    #[test]
    fn dense_infer_matches_forward() {
        let mut r = rng();
        let mut d = Dense::new(7, 5, &mut r);
        let x: Vec<f32> = (0..7).map(|i| i as f32 * 0.3 - 1.0).collect();
        let y1 = d.forward(&x);
        let mut y2 = vec![0.0; 5];
        d.infer(&x, &mut y2);
        assert_eq!(y1, y2);
    }

    /// Finite-difference gradient check for a layer.
    fn check_grad<F: FnMut(&mut [f32]) -> f32>(w: &mut [f32], g: &[f32], mut loss_fn: F) {
        let eps = 1e-3f32;
        for i in (0..w.len()).step_by(w.len().div_ceil(7)) {
            let orig = w[i];
            w[i] = orig + eps;
            let lp = loss_fn(w);
            w[i] = orig - eps;
            let lm = loss_fn(w);
            w[i] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - g[i]).abs() < 2e-2 * (1.0 + fd.abs().max(g[i].abs())),
                "grad mismatch at {i}: fd {fd} vs analytic {}",
                g[i]
            );
        }
    }

    #[test]
    fn dense_backward_gradient_check() {
        let mut r = rng();
        let mut d = Dense::new(6, 4, &mut r);
        let x: Vec<f32> = (0..6).map(|i| (i as f32 * 0.7).sin()).collect();
        let t: Vec<f32> = (0..4).map(|i| (i as f32 * 0.3).cos()).collect();
        let y = d.forward(&x);
        let (_, gy) = mse_loss(&y, &t);
        d.weight.zero_grad();
        d.bias.zero_grad();
        let gx = d.backward(&gy);

        // weight grads
        let g = d.weight.g.clone();
        let mut d2 = d.clone();
        check_grad(&mut d.weight.w.clone(), &g, |w| {
            d2.weight.w.copy_from_slice(w);
            let y = d2.forward(&x);
            mse_loss(&y, &t).0
        });

        // input grads
        let mut d3 = d.clone();
        let mut xv = x.clone();
        check_grad(&mut xv, &gx, |xx| {
            let y = d3.forward(xx);
            mse_loss(&y, &t).0
        });
    }

    #[test]
    fn conv1d_same_padding_preserves_length() {
        let mut r = rng();
        let mut c = Conv1d::new(3, 5, 3, 30, &mut r);
        let x = vec![0.1f32; 3 * 30];
        let y = c.forward(&x);
        assert_eq!(y.len(), 5 * 30);
    }

    #[test]
    fn conv1d_identity_kernel_passes_signal() {
        let mut r = rng();
        let mut c = Conv1d::new(1, 1, 3, 10, &mut r);
        c.weight.w = vec![0.0, 1.0, 0.0]; // delta at centre
        c.bias.w = vec![0.0];
        let x: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let y = c.forward(&x);
        assert_eq!(y, x);
    }

    #[test]
    fn conv1d_backward_gradient_check() {
        let mut r = rng();
        let mut c = Conv1d::new(2, 3, 3, 8, &mut r);
        let x: Vec<f32> = (0..16).map(|i| (i as f32 * 0.37).sin()).collect();
        let t: Vec<f32> = (0..24).map(|i| (i as f32 * 0.21).cos()).collect();
        let y = c.forward(&x);
        let (_, gy) = mse_loss(&y, &t);
        c.weight.zero_grad();
        c.bias.zero_grad();
        let gx = c.backward(&gy);

        let g = c.weight.g.clone();
        let mut c2 = c.clone();
        check_grad(&mut c.weight.w.clone(), &g, |w| {
            c2.weight.w.copy_from_slice(w);
            let y = c2.forward(&x);
            mse_loss(&y, &t).0
        });

        let mut c3 = c.clone();
        let mut xv = x.clone();
        check_grad(&mut xv, &gx, |xx| {
            let y = c3.forward(xx);
            mse_loss(&y, &t).0
        });
    }

    #[test]
    fn relu_masks_negatives_in_both_directions() {
        let mut r = Relu::default();
        let y = r.forward(&[-1.0, 2.0, -3.0, 4.0]);
        assert_eq!(y, vec![0.0, 2.0, 0.0, 4.0]);
        let g = r.backward(&[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(g, vec![0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn mse_loss_gradient_is_correct() {
        let (l, g) = mse_loss(&[1.0, 2.0], &[0.0, 0.0]);
        assert!((l - 2.5).abs() < 1e-6);
        assert_eq!(g, vec![1.0, 2.0]);
    }
}
