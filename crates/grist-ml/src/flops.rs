//! Achieved-fraction-of-peak model for the §4.7 efficiency comparison:
//! "ML diagnosed surface radiation requires approximately twice the number
//! of FLOPS operations compared to RRTMG. However, it can achieve peak FLOPS
//! ranging from 74% to 84% during computation, a significant improvement
//! over the 6% in RRTMG, resulting in a substantial improvement of modeling
//! speed."
//!
//! The model maps a workload's instruction mix to the fraction of a
//! CPE cluster's peak it can sustain: dense fused-multiply-add streams run
//! near peak, while per-element branches and long-latency scalar operations
//! (exp/div/pow — unpipelined on SW26010P-class cores) serialize execution.

/// Instruction-mix summary of a workload (per output point or in total —
/// only ratios matter).
#[derive(Debug, Clone, Copy)]
pub struct WorkloadMix {
    /// Cheap pipelined flops (add/mul/fma).
    pub cheap_flops: f64,
    /// Expensive scalar ops (exp, div, pow) — `EXPENSIVE_LATENCY`× slower.
    pub expensive_ops: f64,
    /// Data-dependent branches per cheap flop region.
    pub branches: f64,
    /// Fraction of the cheap flops that vectorize (0–1). Dense matmul ≈ 1,
    /// indirect-indexed physics loops ≪ 1.
    pub vector_fraction: f64,
}

/// Relative cost of one expensive op vs one pipelined flop.
pub const EXPENSIVE_LATENCY: f64 = 20.0;
/// Pipeline-flush cost of a mispredictable branch, in flop-equivalents.
pub const BRANCH_COST: f64 = 8.0;
/// SIMD width of the modeled core (f32 lanes).
pub const SIMD_WIDTH: f64 = 8.0;
/// Upper bound on achievable fraction (instruction issue, load/store and
/// loop overheads) — set to the top of the paper's observed 74–84% band.
pub const MAX_FRACTION: f64 = 0.84;

/// Fraction of peak the workload sustains.
pub fn achieved_peak_fraction(mix: &WorkloadMix) -> f64 {
    // Useful work = cheap flops. Issue slots consumed:
    //  - vectorized cheap flops: 1/SIMD_WIDTH slot each
    //  - scalar cheap flops: 1 slot each
    //  - expensive ops: EXPENSIVE_LATENCY slots
    //  - branches: BRANCH_COST slots
    let vec_flops = mix.cheap_flops * mix.vector_fraction;
    let scalar_flops = mix.cheap_flops - vec_flops;
    let slots = vec_flops / SIMD_WIDTH
        + scalar_flops
        + mix.expensive_ops * EXPENSIVE_LATENCY
        + mix.branches * BRANCH_COST;
    if slots <= 0.0 {
        return 0.0;
    }
    // Peak = SIMD_WIDTH flops per slot.
    ((mix.cheap_flops + mix.expensive_ops) / (slots * SIMD_WIDTH)).min(MAX_FRACTION)
}

/// Fraction of a `m×n×k` GEMM's multiply-adds executed inside full
/// `MR_SIMD × NR_SIMD` lane tiles of the SIMD microkernel (the rest runs
/// through the scalar edge strips). Computed by replaying the exact cache
/// blocking; `k` cancels because every C cell performs `k` MACs. Feeds the
/// bench report so a shape-driven utilization drop is visible next to the
/// measured speedup.
pub fn gemm_lane_utilization(m: usize, n: usize) -> f64 {
    use crate::gemm::simd::{MR_SIMD, NR_SIMD};
    use crate::gemm::{MC, NC};
    if m == 0 || n == 0 {
        return 0.0;
    }
    let mut lane_cells = 0u64;
    let mut jc = 0;
    while jc < n {
        let nc = NC.min(n - jc);
        let mut ic = 0;
        while ic < m {
            let mc = MC.min(m - ic);
            lane_cells += ((mc - mc % MR_SIMD) * (nc - nc % NR_SIMD)) as u64;
            ic += MC;
        }
        jc += NC;
    }
    lane_cells as f64 / (m as f64 * n as f64)
}

/// The canonical RRTMG-like instruction mix (per §4.7's 6%): modest flop
/// count, heavy exp/div use, per-layer cloud branches, little vectorization.
pub fn rrtmg_like_mix(cheap: f64, expensive: f64, branches: f64) -> WorkloadMix {
    WorkloadMix {
        cheap_flops: cheap,
        expensive_ops: expensive,
        branches,
        vector_fraction: 0.25,
    }
}

/// The ML-radiation mix: nearly pure dense matmul.
pub fn ml_mix(flops: f64) -> WorkloadMix {
    WorkloadMix {
        cheap_flops: flops,
        expensive_ops: 0.0,
        branches: 0.0,
        vector_fraction: 0.995,
    }
}

/// Effective execution time (arbitrary units): flops / (peak · fraction).
pub fn effective_time(mix: &WorkloadMix) -> f64 {
    let frac = achieved_peak_fraction(mix);
    (mix.cheap_flops + mix.expensive_ops) / frac.max(1e-9)
}

/// Summary of the §4.7 conventional-vs-ML radiation comparison.
#[derive(Debug, Clone, Copy)]
pub struct RadiationComparison {
    pub conv_flops: f64,
    pub ml_flops: f64,
    pub conv_fraction: f64,
    pub ml_fraction: f64,
    /// time(conventional) / time(ML) — the modelled speedup.
    pub speedup: f64,
}

/// Build the comparison from measured ledgers.
pub fn compare_radiation(
    conv_cheap: f64,
    conv_expensive: f64,
    conv_branches: f64,
    ml_flops: f64,
) -> RadiationComparison {
    let conv = rrtmg_like_mix(conv_cheap, conv_expensive, conv_branches);
    let ml = ml_mix(ml_flops);
    RadiationComparison {
        conv_flops: conv_cheap + conv_expensive,
        ml_flops,
        conv_fraction: achieved_peak_fraction(&conv),
        ml_fraction: achieved_peak_fraction(&ml),
        speedup: effective_time(&conv) / effective_time(&ml),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_matmul_lands_in_paper_band() {
        let f = achieved_peak_fraction(&ml_mix(1e9));
        assert!((0.74..=0.84).contains(&f), "ML fraction {f} outside 74–84%");
    }

    #[test]
    fn rrtmg_mix_lands_near_six_percent() {
        // Ratios measured from our two-stream scheme: ~7 cheap flops per
        // expensive op, ~1 branch per 12 cheap flops.
        let f = achieved_peak_fraction(&rrtmg_like_mix(7.0, 1.0, 0.6));
        assert!(
            (0.02..=0.12).contains(&f),
            "RRTMG fraction {f} outside 2–12%"
        );
    }

    #[test]
    fn ml_with_double_flops_still_wins() {
        // The paper's headline: 2× the FLOPs, still much faster.
        let cmp = compare_radiation(7.0e9, 1.0e9, 0.6e9, 16.0e9);
        assert!(cmp.ml_flops / cmp.conv_flops >= 1.9);
        assert!(cmp.speedup > 3.0, "ML speedup only {}", cmp.speedup);
        assert!(cmp.ml_fraction > 10.0 * cmp.conv_fraction);
    }

    #[test]
    fn fraction_monotone_in_vectorization() {
        let lo = achieved_peak_fraction(&WorkloadMix {
            cheap_flops: 100.0,
            expensive_ops: 0.0,
            branches: 0.0,
            vector_fraction: 0.1,
        });
        let hi = achieved_peak_fraction(&WorkloadMix {
            cheap_flops: 100.0,
            expensive_ops: 0.0,
            branches: 0.0,
            vector_fraction: 0.9,
        });
        assert!(hi > lo);
    }

    #[test]
    fn lane_utilization_full_tiles_and_edges() {
        // Tile-aligned shapes are fully covered…
        assert_eq!(gemm_lane_utilization(64, 512), 1.0);
        assert_eq!(gemm_lane_utilization(4, 16), 1.0);
        // …degenerate shapes are not…
        assert_eq!(gemm_lane_utilization(0, 16), 0.0);
        assert_eq!(gemm_lane_utilization(3, 8), 0.0);
        // …and a ragged shape lands strictly between.
        let u = gemm_lane_utilization(65, 17);
        assert!(0.0 < u && u < 1.0, "utilization {u}");
    }

    #[test]
    fn empty_workload_is_zero() {
        let f = achieved_peak_fraction(&WorkloadMix {
            cheap_flops: 0.0,
            expensive_ops: 0.0,
            branches: 0.0,
            vector_fraction: 1.0,
        });
        assert_eq!(f, 0.0);
    }
}
