//! One register-blocked, cache-tiled `f32` GEMM kernel — the "simplified,
//! unified computational pattern (primarily matrix multiplication)" that the
//! paper's AI-enhanced physics suite reduces to (§3.2.3, §3.3.4).
//!
//! Every layer of the batched inference engine ([`crate::batch`]) lowers to
//! exactly one call of [`gemm_nn`]: `Conv1d` through an im2col panel and
//! `Dense` on transposed activation panels. The kernel therefore carries the
//! entire steady-state FLOP budget of the coupled ML physics run, and its
//! two properties are load-bearing:
//!
//! 1. **Zero allocations.** The kernel works in place on caller-provided
//!    row-major slices; blocking is done with index arithmetic, not packing
//!    buffers, so the steady-state inference loop performs no heap traffic
//!    (asserted by the scratch-arena counters in `grist-core`).
//! 2. **Deterministic accumulation order.** Each output element `C[i][j]`
//!    accumulates its dot product strictly in increasing-`k` order with a
//!    single accumulator (the cache tiles partition `k` into contiguous
//!    panels visited in order, and the micro-kernel never splits `k` across
//!    partial sums). `C[i][j]`'s value is therefore *bitwise identical* to a
//!    naive `for k { c += a[k]*b[k] }` loop — which is exactly what the
//!    per-column `Conv1d::infer` / `Dense::infer` paths compute. Batched and
//!    per-column inference agree bit for bit, which keeps the substrate's
//!    degrade-to-serial fault path and the chaos suite's bitwise-determinism
//!    guarantees intact.
//!
//! Blocking parameters follow the classic three-level scheme (BLIS/GotoBLAS
//! loop nest, also the structure of the ESCAPE weather-dwarf GEMM ports):
//! an `MR × NR` register tile accumulated over a `KC`-deep panel, swept over
//! `MC × NC` cache blocks. The sizes below target a ~32 KB L1 / 256 KB
//! L2-per-core host (and map directly onto a 256 KB CPE LDM: one `MC × KC`
//! A-panel plus a `KC × NR` B-sliver fit comfortably).

pub mod simd;

/// Which [`gemm_nn`]-compatible microkernel a caller selects. Both variants
/// are *bitwise identical* (the lane kernel keeps one unfused accumulator
/// per output element in the same increasing-`k` order — see [`simd`]);
/// [`GemmVariant::Scalar`] is the reference oracle the CI kernel matrix
/// checks the lanes against. `grist-core` maps the substrate's
/// `KernelMode` onto this enum (grist-ml does not depend on sunway-sim).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GemmVariant {
    /// The scalar reference kernel ([`gemm_nn`]).
    Scalar,
    /// Explicit lane groups ([`simd::gemm_nn_simd`]). Production default.
    #[default]
    Simd,
}

/// Dispatch `C += A·B` to the selected microkernel variant.
pub fn gemm_nn_with(
    variant: GemmVariant,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    match variant {
        GemmVariant::Scalar => gemm_nn(m, n, k, a, b, c),
        GemmVariant::Simd => simd::gemm_nn_simd(m, n, k, a, b, c),
    }
}

/// Rows of the register tile (accumulators live in `MR × NR` registers).
pub const MR: usize = 4;
/// Columns of the register tile — 8 f32 lanes, one AVX2/VSX vector.
pub const NR: usize = 8;
/// Rows of A per cache block.
pub const MC: usize = 64;
/// Depth of the k-panel held in cache (f32 elements).
pub const KC: usize = 192;
/// Columns of B per cache block.
pub const NC: usize = 512;

/// FLOPs of one `C[m×n] += A[m×k]·B[k×n]` invocation (mul+add per term).
#[inline]
pub fn gemm_flops(m: usize, n: usize, k: usize) -> u64 {
    2 * m as u64 * n as u64 * k as u64
}

/// `C[m×n] += A[m×k] · B[k×n]`, all row-major and contiguous (leading
/// dimensions `k`, `n`, `n`).
///
/// The caller owns the initial contents of `C` (bias rows, zeros, or a
/// residual), which is how bias addition stays in the same accumulation
/// order as the per-column reference kernels.
pub fn gemm_nn(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "A shape mismatch");
    assert_eq!(b.len(), k * n, "B shape mismatch");
    assert_eq!(c.len(), m * n, "C shape mismatch");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    // Cache blocking: jc over NC columns of B/C, pc over KC-deep panels
    // (visited in increasing k order — see the determinism note above),
    // ic over MC rows of A/C.
    let mut jc = 0;
    while jc < n {
        let nc = NC.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            let mut ic = 0;
            while ic < m {
                let mc = MC.min(m - ic);
                block_kernel(a, b, c, k, n, ic, jc, pc, mc, nc, kc);
                ic += MC;
            }
            pc += KC;
        }
        jc += NC;
    }
}

/// One `mc × nc` cache block of C, accumulated over a `kc`-deep panel:
/// swept by `MR × NR` register tiles with scalar edge tiles.
#[allow(clippy::too_many_arguments)]
pub(crate) fn block_kernel(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    lda_k: usize,
    ldn: usize,
    ic: usize,
    jc: usize,
    pc: usize,
    mc: usize,
    nc: usize,
    kc: usize,
) {
    let mut ir = 0;
    while ir < mc {
        let mr = MR.min(mc - ir);
        let mut jr = 0;
        while jr < nc {
            let nr = NR.min(nc - jr);
            let i0 = ic + ir;
            let j0 = jc + jr;
            if mr == MR && nr == NR {
                micro_full(a, b, c, lda_k, ldn, i0, j0, pc, kc);
            } else {
                micro_edge(a, b, c, lda_k, ldn, i0, j0, pc, kc, mr, nr);
            }
            jr += NR;
        }
        ir += MR;
    }
}

/// The full `MR × NR` register tile: `MR·NR` independent accumulators, each
/// walking `k` sequentially (one accumulator per output element — never
/// split, preserving bitwise dot-product order). The `j` loop over `NR`
/// contiguous lanes auto-vectorizes.
#[allow(clippy::too_many_arguments)]
#[inline]
fn micro_full(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    lda_k: usize,
    ldn: usize,
    i0: usize,
    j0: usize,
    pc: usize,
    kc: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for (i, row) in acc.iter_mut().enumerate() {
        let base = (i0 + i) * ldn + j0;
        row.copy_from_slice(&c[base..base + NR]);
    }
    for p in 0..kc {
        let bp = &b[(pc + p) * ldn + j0..(pc + p) * ldn + j0 + NR];
        for (i, row) in acc.iter_mut().enumerate() {
            let av = a[(i0 + i) * lda_k + pc + p];
            for (cv, &bv) in row.iter_mut().zip(bp) {
                *cv += av * bv;
            }
        }
    }
    for (i, row) in acc.iter().enumerate() {
        let base = (i0 + i) * ldn + j0;
        c[base..base + NR].copy_from_slice(row);
    }
}

/// Edge tile (`mr < MR` or `nr < NR`): same accumulation discipline,
/// scalar-indexed.
#[allow(clippy::too_many_arguments)]
#[inline]
fn micro_edge(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    lda_k: usize,
    ldn: usize,
    i0: usize,
    j0: usize,
    pc: usize,
    kc: usize,
    mr: usize,
    nr: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for (i, row) in acc.iter_mut().enumerate().take(mr) {
        let base = (i0 + i) * ldn + j0;
        row[..nr].copy_from_slice(&c[base..base + nr]);
    }
    for p in 0..kc {
        let brow = (pc + p) * ldn + j0;
        for (i, row) in acc.iter_mut().enumerate().take(mr) {
            let av = a[(i0 + i) * lda_k + pc + p];
            for (j, cv) in row.iter_mut().enumerate().take(nr) {
                *cv += av * b[brow + j];
            }
        }
    }
    for (i, row) in acc.iter().enumerate().take(mr) {
        let base = (i0 + i) * ldn + j0;
        c[base..base + nr].copy_from_slice(&row[..nr]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The order-defining reference: a single accumulator seeded from C
    /// (the bias prefill), then products added in increasing-k order — the
    /// loop `Conv1d::infer` runs per output element.
    fn naive(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        for i in 0..m {
            for j in 0..n {
                let mut acc = c[i * n + j];
                for p in 0..k {
                    acc += a[i * k + p] * b[p * n + j];
                }
                c[i * n + j] = acc;
            }
        }
    }

    fn fill(n: usize, seed: u32) -> Vec<f32> {
        (0..n)
            .map(|i| ((i as f32 + seed as f32 * 0.7) * 0.137).sin())
            .collect()
    }

    #[test]
    fn matches_naive_bitwise_on_many_shapes() {
        // Shapes straddling every blocking boundary: register-tile tails,
        // KC/MC/NC edges, degenerate dims.
        let shapes = [
            (1, 1, 1),
            (3, 5, 7),
            (MR, NR, KC),
            (MR + 1, NR + 1, KC + 1),
            (MC, NC.min(64), 40),
            (MC + 3, 70, KC + 5),
            (2, 515, 9),
            (128, 192, 15),
            (5, 8, 400),
        ];
        for &(m, n, k) in &shapes {
            let a = fill(m * k, 1);
            let b = fill(k * n, 2);
            let mut c1 = fill(m * n, 3); // nonzero init: C += semantics
            let mut c2 = c1.clone();
            gemm_nn(m, n, k, &a, &b, &mut c1);
            naive(m, n, k, &a, &b, &mut c2);
            assert_eq!(c1, c2, "bitwise mismatch at shape {m}x{n}x{k}");
        }
    }

    #[test]
    fn accumulates_rather_than_overwrites() {
        let a = vec![1.0f32; 2 * 3];
        let b = vec![1.0f32; 3 * 2];
        let mut c = vec![10.0f32; 4];
        gemm_nn(2, 2, 3, &a, &b, &mut c);
        assert_eq!(c, vec![13.0; 4]);
    }

    #[test]
    fn empty_dims_are_noops() {
        let mut c = vec![1.0f32; 4];
        gemm_nn(0, 0, 0, &[], &[], &mut []);
        gemm_nn(2, 2, 0, &[], &[], &mut c);
        assert_eq!(c, vec![1.0; 4]);
    }

    #[test]
    #[should_panic(expected = "A shape mismatch")]
    fn shape_mismatch_panics() {
        let mut c = vec![0.0f32; 4];
        gemm_nn(2, 2, 2, &[0.0; 3], &[0.0; 4], &mut c);
    }

    #[test]
    fn flops_count_is_2mnk() {
        assert_eq!(gemm_flops(3, 5, 7), 2 * 3 * 5 * 7);
    }
}
