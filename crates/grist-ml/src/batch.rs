//! Batched inference: lowering the physics networks onto the GEMM kernel.
//!
//! `MlSuite` packs blocks of `B` columns into row-major `[B × n_in]` stage
//! matrices; this module runs the whole block through the networks with
//! every layer lowered to one [`gemm_nn`](crate::gemm::gemm_nn) call:
//!
//! * `Conv1d` → **im2col + GEMM**. The weight tensor `[c_out × c_in × ksize]`
//!   is *already* the row-major GEMM `A` matrix `[c_out × (c_in·ksize)]`.
//!   `im2col` gathers the input into `Col[(c_in·ksize) × (B·len)]` where
//!   column `b·len + p` holds the receptive field of output level `p` of
//!   sample `b` (zero padding materialized as 0.0). `C` is prefilled with
//!   bias rows, matching the per-column kernel which fills `y` with the bias
//!   before accumulating.
//! * `Dense` → **GEMM on feature-major panels**. Activations live as
//!   `[width × B]` (one transpose on entry, one on exit), `C` starts at zero
//!   and the bias is added after — the per-column kernel computes
//!   `bias + acc`, the batched one `acc + bias`; f32 addition is
//!   commutative, so the results are bitwise identical.
//!
//! Because [`gemm_nn`](crate::gemm::gemm_nn) accumulates each output
//! element strictly in increasing-`k` order (see `gemm.rs`), and the `k`
//! axis here enumerates
//! `(ci, k)` / input features in exactly the order the per-column loops
//! visit them, **batched and per-column inference agree bit for bit** (the
//! only nominal difference is that zero padding contributes explicit
//! `w · 0.0` terms, which cannot change a sum). That property is what lets
//! the substrate's degrade-to-serial fault path and the chaos suite's
//! bitwise-determinism tests keep holding with the batched engine wired in.
//!
//! All intermediate storage comes from caller-provided scratch arenas
//! ([`CnnScratch`], [`MlpScratch`], [`ColumnScratch`]) that only grow on
//! first use (or a larger batch) and count every growth — the zero-alloc
//! steady-state acceptance test asserts the counters stop moving.

use crate::gemm::{gemm_flops, gemm_nn_with, GemmVariant};
use crate::models::{RadiationMlp, TendencyCnn, CNN_INPUT_CHANNELS, CNN_OUTPUT_CHANNELS};
use crate::tensor::{Conv1d, Dense, Relu};

/// Where sample `s`, channel `ci`, level `p` lives in a flat buffer:
/// `x[s · samp_stride + ci · chan_stride + p]`.
///
/// Two layouts appear in the CNN pipeline: the stage input `[B × 5·nlev]`
/// (samples outermost) and batch activations `[ch × B·nlev]` (channels
/// outermost). Parameterizing `im2col` over the strides lets one gather
/// routine serve both.
#[derive(Debug, Clone, Copy)]
pub struct SampleLayout {
    pub chan_stride: usize,
    pub samp_stride: usize,
}

impl SampleLayout {
    /// The packed stage matrix `[B × n_ch·len]`, row-major per sample.
    pub fn stage(len: usize, n_ch: usize) -> Self {
        SampleLayout {
            chan_stride: len,
            samp_stride: n_ch * len,
        }
    }

    /// Batch activations `[ch × B·len]`: channel rows of `B` concatenated
    /// per-sample level profiles.
    pub fn batch_act(b: usize, len: usize) -> Self {
        SampleLayout {
            chan_stride: b * len,
            samp_stride: len,
        }
    }
}

/// Gather `Col[(c_in·ksize) × (B·len)]` for a same-padded 1-D convolution:
/// `Col[ci·ksize + k][s·len + p] = x(s, ci, p + k − ksize/2)`, zero outside
/// the profile. Row order `(ci, k)` matches the per-column accumulation
/// order of `Conv1d::infer`.
fn im2col(
    x: &[f32],
    lay: SampleLayout,
    b: usize,
    c_in: usize,
    ksize: usize,
    len: usize,
    col: &mut [f32],
) {
    let half = ksize / 2;
    let row_len = b * len;
    debug_assert_eq!(col.len(), c_in * ksize * row_len);
    for ci in 0..c_in {
        for k in 0..ksize {
            let shift = k as isize - half as isize;
            let p_lo = if shift < 0 {
                ((-shift) as usize).min(len)
            } else {
                0
            };
            let p_hi = len.saturating_sub(shift.max(0) as usize).max(p_lo);
            let row0 = (ci * ksize + k) * row_len;
            for s in 0..b {
                let dst = &mut col[row0 + s * len..row0 + (s + 1) * len];
                dst[..p_lo].fill(0.0);
                dst[p_hi..].fill(0.0);
                if p_hi > p_lo {
                    let src0 = s * lay.samp_stride + ci * lay.chan_stride;
                    let s_lo = (p_lo as isize + shift) as usize;
                    let s_hi = (p_hi as isize + shift) as usize;
                    dst[p_lo..p_hi].copy_from_slice(&x[src0 + s_lo..src0 + s_hi]);
                }
            }
        }
    }
}

/// One batched convolution layer: bias-prefill `y [c_out × B·len]`, then
/// `y += W · Col`. For 1×1 kernels on batch-activation inputs the source
/// *is* the im2col matrix, so the gather is skipped.
fn conv_batch(
    variant: GemmVariant,
    conv: &Conv1d,
    b: usize,
    x: &[f32],
    lay: SampleLayout,
    col: &mut [f32],
    y: &mut [f32],
) {
    let row_len = b * conv.len;
    debug_assert_eq!(y.len(), conv.c_out * row_len);
    for co in 0..conv.c_out {
        y[co * row_len..(co + 1) * row_len].fill(conv.bias.w[co]);
    }
    if conv.ksize == 1 && lay.chan_stride == row_len && lay.samp_stride == conv.len {
        debug_assert_eq!(x.len(), conv.c_in * row_len);
        gemm_nn_with(
            variant,
            conv.c_out,
            row_len,
            conv.c_in,
            &conv.weight.w,
            x,
            y,
        );
    } else {
        let kdim = conv.c_in * conv.ksize;
        let col = &mut col[..kdim * row_len];
        im2col(x, lay, b, conv.c_in, conv.ksize, conv.len, col);
        gemm_nn_with(variant, conv.c_out, row_len, kdim, &conv.weight.w, col, y);
    }
}

/// One batched dense layer on feature-major panels: `y [n_out × B] = W · x`
/// then `+ bias` (bias after the dot product, as the per-column kernel
/// effectively computes — f32 addition commutes).
fn dense_batch(variant: GemmVariant, layer: &Dense, b: usize, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), layer.n_in * b);
    debug_assert_eq!(y.len(), layer.n_out * b);
    y.fill(0.0);
    gemm_nn_with(variant, layer.n_out, b, layer.n_in, &layer.weight.w, x, y);
    for o in 0..layer.n_out {
        let bias = layer.bias.w[o];
        for v in &mut y[o * b..(o + 1) * b] {
            *v += bias;
        }
    }
}

/// Scratch arena for [`TendencyCnn::infer_batch`]: the im2col panel and
/// three ping-pong activation planes. Grows only when first used or when
/// the batch gets larger; every growth increments [`Self::grows`].
#[derive(Debug, Clone, Default)]
pub struct CnnScratch {
    col: Vec<f32>,
    act_a: Vec<f32>,
    act_b: Vec<f32>,
    act_c: Vec<f32>,
    grows: u64,
}

impl CnnScratch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of times any buffer here had to (re)allocate. Constant across
    /// calls ⇒ the steady-state loop is allocation-free.
    pub fn grows(&self) -> u64 {
        self.grows
    }

    fn ensure(&mut self, col_n: usize, act_n: usize) {
        if self.col.len() < col_n || self.act_a.len() < act_n {
            self.grows += 1;
            if self.col.len() < col_n {
                self.col.resize(col_n, 0.0);
            }
            if self.act_a.len() < act_n {
                self.act_a.resize(act_n, 0.0);
                self.act_b.resize(act_n, 0.0);
                self.act_c.resize(act_n, 0.0);
            }
        }
    }
}

/// Scratch arena for [`RadiationMlp::infer_batch`]: the transposed input
/// panel, two ping-pong activation panels, and the pre-transpose output.
#[derive(Debug, Clone, Default)]
pub struct MlpScratch {
    xt: Vec<f32>,
    h: Vec<f32>,
    z: Vec<f32>,
    out: Vec<f32>,
    grows: u64,
}

impl MlpScratch {
    pub fn new() -> Self {
        Self::default()
    }

    /// See [`CnnScratch::grows`].
    pub fn grows(&self) -> u64 {
        self.grows
    }

    fn ensure(&mut self, xt_n: usize, h_n: usize, out_n: usize) {
        if self.xt.len() < xt_n || self.h.len() < h_n || self.out.len() < out_n {
            self.grows += 1;
            if self.xt.len() < xt_n {
                self.xt.resize(xt_n, 0.0);
            }
            if self.h.len() < h_n {
                self.h.resize(h_n, 0.0);
                self.z.resize(h_n, 0.0);
            }
            if self.out.len() < out_n {
                self.out.resize(out_n, 0.0);
            }
        }
    }
}

/// Scratch for the *per-column* `infer_into` paths (the satellite fix for
/// the old allocate-per-call `infer`): three planes sized to the larger of
/// the CNN activation (`channels·nlev`) and MLP width.
#[derive(Debug, Clone, Default)]
pub struct ColumnScratch {
    a: Vec<f32>,
    b: Vec<f32>,
    c: Vec<f32>,
    grows: u64,
}

impl ColumnScratch {
    pub fn new() -> Self {
        Self::default()
    }

    /// See [`CnnScratch::grows`].
    pub fn grows(&self) -> u64 {
        self.grows
    }

    /// Hand out the three planes at exactly `n` elements each.
    pub(crate) fn planes(&mut self, n: usize) -> (&mut [f32], &mut [f32], &mut [f32]) {
        if self.a.len() < n {
            self.grows += 1;
            self.a.resize(n, 0.0);
            self.b.resize(n, 0.0);
            self.c.resize(n, 0.0);
        }
        (&mut self.a[..n], &mut self.b[..n], &mut self.c[..n])
    }
}

impl TendencyCnn {
    /// Batched inference on `b` *normalized* samples.
    ///
    /// `xs` is the packed stage matrix `[b × 5·nlev]` (row-major per
    /// sample), `ys` receives `[b × 2·nlev]` normalized outputs. Bitwise
    /// identical to calling [`TendencyCnn::infer`] per sample.
    pub fn infer_batch(&self, b: usize, xs: &[f32], ys: &mut [f32], s: &mut CnnScratch) {
        self.infer_batch_with(GemmVariant::default(), b, xs, ys, s);
    }

    /// [`Self::infer_batch`] with an explicit [`GemmVariant`] — both
    /// variants produce identical bits; the caller (usually `grist-core`
    /// mapping the substrate's `KernelMode`) picks the microkernel.
    pub fn infer_batch_with(
        &self,
        variant: GemmVariant,
        b: usize,
        xs: &[f32],
        ys: &mut [f32],
        s: &mut CnnScratch,
    ) {
        assert_eq!(xs.len(), b * CNN_INPUT_CHANNELS * self.nlev);
        assert_eq!(ys.len(), b * CNN_OUTPUT_CHANNELS * self.nlev);
        if b == 0 {
            return;
        }
        let row_len = b * self.nlev;
        let ch = self.channels;
        let col_n = (3 * ch).max(3 * CNN_INPUT_CHANNELS) * row_len;
        let act_n = ch.max(CNN_OUTPUT_CHANNELS) * row_len;
        s.ensure(col_n, act_n);
        let stage = SampleLayout::stage(self.nlev, CNN_INPUT_CHANNELS);
        let act = SampleLayout::batch_act(b, self.nlev);
        let CnnScratch {
            col,
            act_a,
            act_b,
            act_c,
            ..
        } = s;
        let plane = ch * row_len;
        let (mut a, bb, mut c) = (&mut act_a[..plane], &mut act_b[..], &mut act_c[..plane]);
        conv_batch(variant, &self.input, b, xs, stage, col, a);
        Relu::infer(a);
        for r in &self.res {
            let h1 = &mut bb[..plane];
            conv_batch(variant, &r.conv1, b, a, act, col, h1);
            Relu::infer(h1);
            conv_batch(variant, &r.conv2, b, h1, act, col, c);
            for (o, &xi) in c.iter_mut().zip(a.iter()) {
                *o += xi;
            }
            std::mem::swap(&mut a, &mut c);
        }
        let out = &mut bb[..CNN_OUTPUT_CHANNELS * row_len];
        conv_batch(variant, &self.output, b, a, act, col, out);
        // Un-batch [2 × b·nlev] → per-sample rows [b × 2·nlev].
        for smp in 0..b {
            for co in 0..CNN_OUTPUT_CHANNELS {
                let dst =
                    &mut ys[smp * CNN_OUTPUT_CHANNELS * self.nlev + co * self.nlev..][..self.nlev];
                dst.copy_from_slice(&out[co * row_len + smp * self.nlev..][..self.nlev]);
            }
        }
    }
}

impl RadiationMlp {
    /// Batched inference on `b` *normalized* samples: `xs` is `[b × n_in]`
    /// row-major, `ys` receives `[b × n_out]` normalized outputs. Bitwise
    /// identical to calling [`RadiationMlp::infer`] per sample.
    pub fn infer_batch(&self, b: usize, xs: &[f32], ys: &mut [f32], s: &mut MlpScratch) {
        self.infer_batch_with(GemmVariant::default(), b, xs, ys, s);
    }

    /// [`Self::infer_batch`] with an explicit [`GemmVariant`]; see
    /// [`TendencyCnn::infer_batch_with`].
    pub fn infer_batch_with(
        &self,
        variant: GemmVariant,
        b: usize,
        xs: &[f32],
        ys: &mut [f32],
        s: &mut MlpScratch,
    ) {
        assert_eq!(xs.len(), b * self.n_in);
        assert_eq!(ys.len(), b * self.n_out);
        if b == 0 {
            return;
        }
        s.ensure(self.n_in * b, self.width * b, self.n_out * b);
        let MlpScratch { xt, h, z, out, .. } = s;
        let xt = &mut xt[..self.n_in * b];
        for smp in 0..b {
            for i in 0..self.n_in {
                xt[i * b + smp] = xs[smp * self.n_in + i];
            }
        }
        let h = &mut h[..self.width * b];
        let z = &mut z[..self.width * b];
        dense_batch(variant, &self.input, b, xt, h);
        Relu::infer(h);
        for layer in &self.hidden {
            dense_batch(variant, layer, b, h, z);
            Relu::infer(z);
            for (a, &v) in h.iter_mut().zip(z.iter()) {
                *a += v;
            }
        }
        let out = &mut out[..self.n_out * b];
        dense_batch(variant, &self.output, b, h, out);
        for smp in 0..b {
            for o in 0..self.n_out {
                ys[smp * self.n_out + o] = out[o * b + smp];
            }
        }
    }
}

/// FLOPs [`TendencyCnn::infer_batch`] issues for a block of `b` samples —
/// computed from the exact GEMM shapes the lowering performs (one per conv
/// layer). Equals `b × TendencyCnn::flops()`, which the consistency test
/// pins.
pub fn cnn_batch_flops(net: &TendencyCnn, b: usize) -> u64 {
    let n = b * net.nlev;
    let conv = |c: &Conv1d| gemm_flops(c.c_out, n, c.c_in * c.ksize);
    conv(&net.input)
        + net
            .res
            .iter()
            .map(|r| conv(&r.conv1) + conv(&r.conv2))
            .sum::<u64>()
        + conv(&net.output)
}

/// FLOPs [`RadiationMlp::infer_batch`] issues for a block of `b` samples
/// (one GEMM per dense layer). Equals `b × RadiationMlp::flops()`.
pub fn mlp_batch_flops(net: &RadiationMlp, b: usize) -> u64 {
    let dense = |d: &Dense| gemm_flops(d.n_out, b, d.n_in);
    dense(&net.input) + net.hidden.iter().map(dense).sum::<u64>() + dense(&net.output)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize, seed: usize) -> Vec<f32> {
        (0..n)
            .map(|i| ((i + 7 * seed) as f32 * 0.173).sin())
            .collect()
    }

    #[test]
    fn cnn_batch_is_bitwise_equal_to_per_column() {
        let net = TendencyCnn::new(10, 16, 3);
        for b in [1usize, 2, 3, 5, 8] {
            let xs: Vec<f32> = (0..b).flat_map(|s| sample(5 * 10, s)).collect();
            let mut ys = vec![0.0f32; b * 2 * 10];
            let mut scratch = CnnScratch::new();
            net.infer_batch(b, &xs, &mut ys, &mut scratch);
            for s in 0..b {
                let mut y1 = vec![0.0f32; 2 * 10];
                net.infer(&xs[s * 50..(s + 1) * 50], &mut y1);
                assert_eq!(&ys[s * 20..(s + 1) * 20], &y1[..], "b={b} sample {s}");
            }
        }
    }

    #[test]
    fn mlp_batch_is_bitwise_equal_to_per_column() {
        let net = RadiationMlp::with_outputs(12, 3, 16, 5);
        for b in [1usize, 2, 4, 7] {
            let xs: Vec<f32> = (0..b).flat_map(|s| sample(12, s)).collect();
            let mut ys = vec![0.0f32; b * 3];
            let mut scratch = MlpScratch::new();
            net.infer_batch(b, &xs, &mut ys, &mut scratch);
            for s in 0..b {
                let y1 = net.infer(&xs[s * 12..(s + 1) * 12]);
                assert_eq!(&ys[s * 3..(s + 1) * 3], &y1[..], "b={b} sample {s}");
            }
        }
    }

    #[test]
    fn batch_variants_agree_bitwise() {
        let net = TendencyCnn::new(12, 16, 2);
        let mlp = RadiationMlp::with_outputs(14, 3, 16, 4);
        for b in [1usize, 3, 5] {
            let xs: Vec<f32> = (0..b).flat_map(|s| sample(5 * 12, s)).collect();
            let mut y_sc = vec![0.0f32; b * 2 * 12];
            let mut y_simd = y_sc.clone();
            let mut cs = CnnScratch::new();
            net.infer_batch_with(GemmVariant::Scalar, b, &xs, &mut y_sc, &mut cs);
            net.infer_batch_with(GemmVariant::Simd, b, &xs, &mut y_simd, &mut cs);
            assert_eq!(y_sc, y_simd, "CNN variant mismatch at b={b}");

            let xm: Vec<f32> = (0..b).flat_map(|s| sample(14, s + 9)).collect();
            let mut z_sc = vec![0.0f32; b * 3];
            let mut z_simd = z_sc.clone();
            let mut ms = MlpScratch::new();
            mlp.infer_batch_with(GemmVariant::Scalar, b, &xm, &mut z_sc, &mut ms);
            mlp.infer_batch_with(GemmVariant::Simd, b, &xm, &mut z_simd, &mut ms);
            assert_eq!(z_sc, z_simd, "MLP variant mismatch at b={b}");
        }
    }

    #[test]
    fn scratch_arenas_stop_growing_after_first_call() {
        let net = TendencyCnn::new(8, 8, 1);
        let mlp = RadiationMlp::new(6, 8, 2);
        let mut cs = CnnScratch::new();
        let mut ms = MlpScratch::new();
        let xs = sample(4 * 5 * 8, 0);
        let mut ys = vec![0.0f32; 4 * 2 * 8];
        let xm = sample(4 * 6, 1);
        let mut ym = vec![0.0f32; 4 * 2];
        net.infer_batch(4, &xs, &mut ys, &mut cs);
        mlp.infer_batch(4, &xm, &mut ym, &mut ms);
        let (g1, g2) = (cs.grows(), ms.grows());
        assert!(g1 >= 1 && g2 >= 1);
        for _ in 0..5 {
            net.infer_batch(4, &xs, &mut ys, &mut cs);
            mlp.infer_batch(4, &xm, &mut ym, &mut ms);
            // A smaller batch must reuse the large-batch buffers too.
            net.infer_batch(2, &xs[..2 * 5 * 8], &mut ys[..2 * 2 * 8], &mut cs);
            mlp.infer_batch(2, &xm[..2 * 6], &mut ym[..2 * 2], &mut ms);
        }
        assert_eq!(cs.grows(), g1, "CNN scratch reallocated in steady state");
        assert_eq!(ms.grows(), g2, "MLP scratch reallocated in steady state");
    }

    #[test]
    fn batch_flops_are_exactly_b_times_single_column() {
        let net = TendencyCnn::new(16, 64, 9);
        let mlp = RadiationMlp::with_outputs(34, 3, 64, 9);
        for b in [1u64, 3, 32, 33] {
            assert_eq!(cnn_batch_flops(&net, b as usize), b * net.flops());
            assert_eq!(mlp_batch_flops(&mlp, b as usize), b * mlp.flops());
        }
    }

    #[test]
    fn im2col_materializes_zero_padding() {
        // 1 channel, k=3, len=4, one sample: rows are shifted copies with
        // zeros at the out-of-range edge.
        let x = [1.0f32, 2.0, 3.0, 4.0];
        let mut col = vec![9.0f32; 3 * 4];
        im2col(&x, SampleLayout::stage(4, 1), 1, 1, 3, 4, &mut col);
        assert_eq!(&col[0..4], &[0.0, 1.0, 2.0, 3.0]); // k=0, shift −1
        assert_eq!(&col[4..8], &[1.0, 2.0, 3.0, 4.0]); // k=1, centred
        assert_eq!(&col[8..12], &[2.0, 3.0, 4.0, 0.0]); // k=2, shift +1
    }

    #[test]
    fn batch_of_zero_columns_is_a_noop() {
        let net = TendencyCnn::new(4, 4, 1);
        let mut scratch = CnnScratch::new();
        net.infer_batch(0, &[], &mut [], &mut scratch);
        assert_eq!(scratch.grows(), 0);
    }
}
