//! Explicit-lane GEMM microkernel: the same BLIS blocking as the scalar
//! reference, with the register tile widened to `MR × 2·LANE_WIDTH` blocks
//! of a portable lane type.
//!
//! **The lane-grouping rule that preserves bitwise equivalence:** lanes run
//! across *independent output elements* (`NR_SIMD` adjacent columns of `C`),
//! never across the `k` reduction. Each `C[i][j]` keeps exactly one
//! accumulator lane that walks `k` strictly in increasing order, and every
//! lane step is an unfused multiply-then-add (`acc + a·b` as two IEEE ops,
//! matching the scalar kernel — [`Lanes::accum`] deliberately does *not*
//! use `f32::mul_add`). The lane kernel therefore performs, per output
//! element, the exact same sequence of IEEE-754 operations as the scalar
//! oracle, and the results agree bit for bit. The CI kernel matrix
//! (`tests/integration_kernels.rs`) enforces this.
//!
//! What the lanes buy over the auto-vectorized scalar kernel is a larger
//! register tile (4×16 instead of 4×8: each B sliver load is amortized
//! over 4 A broadcasts and each broadcast over 2 slivers), the BLIS tile
//! order (`jr` outer, so one `KC × NR_SIMD` B sliver stays cache-hot
//! across every row tile), hoisted row slices (no per-`p` bounds checks in
//! the hot loop), and a guaranteed vector shape — `[f32; 8]` arrays that
//! LLVM lowers to full-width vector mul/add on any 256-bit target without
//! relying on the cost model.

use super::{block_kernel, KC, MC, NC};

/// f32 lanes per vector register group (AVX2/VSX width, and the SIMD width
/// the Sunway CPE model in `grist_ml::flops` assumes).
pub const LANE_WIDTH: usize = 8;
/// Lane groups per register-tile row: the SIMD tile is `MR_SIMD × NR_SIMD`.
pub const NR_GROUPS: usize = 2;
/// Columns of the SIMD register tile.
pub const NR_SIMD: usize = LANE_WIDTH * NR_GROUPS;
/// Rows of the SIMD register tile: 4×2 lane groups = 8 live accumulator
/// registers plus two B slivers and one broadcast on a 16-register
/// 256-bit target — comfortably spill-free (a 6-row tile measured slower
/// here: the extra accumulators push temporaries to the stack).
pub const MR_SIMD: usize = 4;

/// A portable lane group: a fixed-size block of `f32` elements on which all
/// arithmetic is elementwise and *unfused*, compiled to vector code via the
/// fixed array shape. The trait exists so kernels are written against lane
/// semantics, not a concrete width; [`F32x8`] is the only implementation
/// the shipped kernels instantiate.
pub trait Lanes: Copy {
    /// Number of f32 elements in the group.
    const WIDTH: usize;
    /// Broadcast one scalar to every lane.
    fn splat(v: f32) -> Self;
    /// Load `Self::WIDTH` consecutive elements from the head of `src`.
    fn load(src: &[f32]) -> Self;
    /// Store the lanes to the head of `dst`.
    fn store(self, dst: &mut [f32]);
    /// Elementwise `self + a·b` as two separate IEEE operations per lane
    /// (multiply, then add — never a fused multiply-add, which would round
    /// once instead of twice and break bitwise equivalence with the scalar
    /// oracle).
    fn accum(self, a: Self, b: Self) -> Self;
}

/// Eight f32 lanes — one AVX2/VSX register.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F32x8(pub [f32; LANE_WIDTH]);

impl Lanes for F32x8 {
    const WIDTH: usize = LANE_WIDTH;

    #[inline(always)]
    fn splat(v: f32) -> Self {
        F32x8([v; LANE_WIDTH])
    }

    #[inline(always)]
    fn load(src: &[f32]) -> Self {
        let mut lanes = [0.0f32; LANE_WIDTH];
        lanes.copy_from_slice(&src[..LANE_WIDTH]);
        F32x8(lanes)
    }

    #[inline(always)]
    fn store(self, dst: &mut [f32]) {
        dst[..LANE_WIDTH].copy_from_slice(&self.0);
    }

    #[inline(always)]
    fn accum(self, a: Self, b: Self) -> Self {
        let mut out = self.0;
        for l in 0..LANE_WIDTH {
            // Two rounds: t = a·b, then acc + t. Matches `*cv += av * bv`.
            out[l] += a.0[l] * b.0[l];
        }
        F32x8(out)
    }
}

/// `C[m×n] += A[m×k] · B[k×n]` with the lane microkernel — bitwise
/// identical to [`super::gemm_nn`] (see the module docs for why).
pub fn gemm_nn_simd(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "A shape mismatch");
    assert_eq!(b.len(), k * n, "B shape mismatch");
    assert_eq!(c.len(), m * n, "C shape mismatch");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    // Identical cache blocking to the scalar kernel: k-panels visited in
    // increasing order, so per-element accumulation order is unchanged.
    let mut jc = 0;
    while jc < n {
        let nc = NC.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            let mut ic = 0;
            while ic < m {
                let mc = MC.min(m - ic);
                block_kernel_simd(a, b, c, k, n, ic, jc, pc, mc, nc, kc);
                ic += MC;
            }
            pc += KC;
        }
        jc += NC;
    }
}

/// One `mc × nc` cache block: full `MR × NR_SIMD` lane tiles, with the
/// remainder strips delegated to the scalar block kernel (same per-element
/// order, so the seam is invisible in the bits).
#[allow(clippy::too_many_arguments)]
fn block_kernel_simd(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    lda_k: usize,
    ldn: usize,
    ic: usize,
    jc: usize,
    pc: usize,
    mc: usize,
    nc: usize,
    kc: usize,
) {
    let m_full = mc - mc % MR_SIMD;
    let n_full = nc - nc % NR_SIMD;
    // jr outer / ir inner (the BLIS order), with the B sliver *packed*:
    // each `KC × NR_SIMD` sliver is copied once into a contiguous p-major
    // stack buffer (12 KB — LDM-sized) and then re-read by every row tile
    // with sequential, bounds-check-free loads. Packing is a pure data
    // relayout amortized over `m_full / MR_SIMD` tiles; it changes no
    // arithmetic and no per-element order, so the bits are untouched.
    let mut bpack = [0.0f32; KC * NR_SIMD];
    let mut jr = 0;
    while jr < n_full {
        for p in 0..kc {
            let src = &b[(pc + p) * ldn + jc + jr..][..NR_SIMD];
            bpack[p * NR_SIMD..][..NR_SIMD].copy_from_slice(src);
        }
        let mut ir = 0;
        while ir < m_full {
            micro_simd::<F32x8>(a, &bpack, c, lda_k, ldn, ic + ir, jc + jr, pc, kc);
            ir += MR_SIMD;
        }
        jr += NR_SIMD;
    }
    if n_full < nc {
        block_kernel(
            a,
            b,
            c,
            lda_k,
            ldn,
            ic,
            jc + n_full,
            pc,
            m_full,
            nc - n_full,
            kc,
        );
    }
    if m_full < mc {
        block_kernel(
            a,
            b,
            c,
            lda_k,
            ldn,
            ic + m_full,
            jc,
            pc,
            mc - m_full,
            nc,
            kc,
        );
    }
}

/// The `MR_SIMD × NR_SIMD` lane tile: `MR_SIMD · NR_GROUPS` accumulator
/// groups, each lane owning one output element end to end. `bpack` is the
/// packed p-major B sliver (`kc × NR_SIMD` contiguous).
#[allow(clippy::too_many_arguments)]
#[inline]
fn micro_simd<L: Lanes>(
    a: &[f32],
    bpack: &[f32],
    c: &mut [f32],
    lda_k: usize,
    ldn: usize,
    i0: usize,
    j0: usize,
    pc: usize,
    kc: usize,
) {
    let mut acc = [[L::splat(0.0); NR_GROUPS]; MR_SIMD];
    for (i, row) in acc.iter_mut().enumerate() {
        let cbase = &c[(i0 + i) * ldn + j0..];
        for (g, lane) in row.iter_mut().enumerate() {
            *lane = L::load(&cbase[g * L::WIDTH..]);
        }
    }
    // Hoist the A row slices so the p-loop indexes with no bounds checks.
    let arow: [&[f32]; MR_SIMD] = std::array::from_fn(|i| &a[(i0 + i) * lda_k + pc..][..kc]);
    let bpack = &bpack[..kc * NR_SIMD];
    for p in 0..kc {
        let brow = &bpack[p * NR_SIMD..][..NR_SIMD];
        let bg: [L; NR_GROUPS] = std::array::from_fn(|g| L::load(&brow[g * L::WIDTH..]));
        for (row, ar) in acc.iter_mut().zip(&arow) {
            let av = L::splat(ar[p]);
            for (lane, &bv) in row.iter_mut().zip(&bg) {
                *lane = lane.accum(av, bv);
            }
        }
    }
    for (i, row) in acc.iter().enumerate() {
        let cbase = &mut c[(i0 + i) * ldn + j0..];
        for (g, lane) in row.iter().enumerate() {
            lane.store(&mut cbase[g * L::WIDTH..]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{gemm_nn, gemm_nn_with, GemmVariant};
    use super::*;

    fn fill(n: usize, seed: u32) -> Vec<f32> {
        (0..n)
            .map(|i| ((i as f32 + seed as f32 * 0.7) * 0.137).sin())
            .collect()
    }

    #[test]
    fn lane_kernel_is_bitwise_equal_to_scalar_oracle() {
        // Shapes straddling the SIMD tile (4×16), the scalar remainder
        // strips, and every cache-blocking boundary.
        let shapes = [
            (1, 1, 1),
            (3, 5, 7),
            (MR_SIMD, NR_SIMD, KC),
            (MR_SIMD + 1, NR_SIMD + 1, KC + 1),
            (MR_SIMD, NR_SIMD - 1, 33),
            (MC, 64, 40),
            (MC + 3, 70, KC + 5),
            (2, 515, 9),
            (128, 192, 15),
            (5, 16, 400),
            (64, 512, 192),
        ];
        for &(m, n, k) in &shapes {
            let a = fill(m * k, 1);
            let b = fill(k * n, 2);
            let mut c1 = fill(m * n, 3); // nonzero init: C += semantics
            let mut c2 = c1.clone();
            gemm_nn_simd(m, n, k, &a, &b, &mut c1);
            gemm_nn(m, n, k, &a, &b, &mut c2);
            assert_eq!(c1, c2, "bitwise mismatch at shape {m}x{n}x{k}");
        }
    }

    #[test]
    fn variant_dispatch_selects_both_kernels() {
        let (m, n, k) = (9, 33, 21);
        let a = fill(m * k, 4);
        let b = fill(k * n, 5);
        let mut c1 = fill(m * n, 6);
        let mut c2 = c1.clone();
        gemm_nn_with(GemmVariant::Scalar, m, n, k, &a, &b, &mut c1);
        gemm_nn_with(GemmVariant::Simd, m, n, k, &a, &b, &mut c2);
        assert_eq!(c1, c2);
        assert_eq!(GemmVariant::default(), GemmVariant::Simd);
    }

    #[test]
    fn accum_is_unfused_mul_then_add() {
        // A witness triple where fma(a, b, c) != a*b + c in f32: the fused
        // form keeps the low product bits across the add.
        let a = 1.0 + f32::EPSILON;
        let b = 1.0 - f32::EPSILON;
        let c = -1.0f32;
        let two_round = a * b + c;
        assert_ne!(
            two_round,
            a.mul_add(b, c),
            "triple does not discriminate fma"
        );
        let lanes = F32x8::splat(c).accum(F32x8::splat(a), F32x8::splat(b));
        assert_eq!(lanes.0, [two_round; LANE_WIDTH]);
    }

    #[test]
    fn empty_dims_are_noops() {
        let mut c = vec![1.0f32; 4];
        gemm_nn_simd(0, 0, 0, &[], &[], &mut []);
        gemm_nn_simd(2, 2, 0, &[], &[], &mut c);
        assert_eq!(c, vec![1.0; 4]);
    }

    #[test]
    fn lane_load_store_round_trip() {
        let src: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let v = F32x8::load(&src[1..]);
        let mut dst = [0.0f32; 9];
        v.store(&mut dst[..8]);
        assert_eq!(&dst[..8], &src[1..9]);
    }
}
