//! The Adam optimizer, operating on [`Param`] tensors.

use crate::tensor::Param;

/// Adam hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct AdamConfig {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    /// L2 weight decay (decoupled, AdamW-style).
    pub weight_decay: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
        }
    }
}

/// Optimizer state shared across all parameters (the per-parameter moments
/// live in the `Param`s themselves).
#[derive(Debug, Clone)]
pub struct Adam {
    pub cfg: AdamConfig,
    /// Step counter for bias correction.
    pub t: u64,
}

impl Adam {
    pub fn new(cfg: AdamConfig) -> Self {
        Adam { cfg, t: 0 }
    }

    /// Begin a step (advances the bias-correction counter). Call once per
    /// minibatch, then [`Self::update`] on every parameter.
    pub fn begin_step(&mut self) {
        self.t += 1;
    }

    /// Apply one Adam update to `p` and clear its gradient.
    pub fn update(&self, p: &mut Param) {
        let c = &self.cfg;
        let t = self.t.max(1) as i32;
        let bc1 = 1.0 - c.beta1.powi(t);
        let bc2 = 1.0 - c.beta2.powi(t);
        for i in 0..p.w.len() {
            let g = p.g[i] + c.weight_decay * p.w[i];
            p.m[i] = c.beta1 * p.m[i] + (1.0 - c.beta1) * g;
            p.v[i] = c.beta2 * p.v[i] + (1.0 - c.beta2) * g * g;
            let mhat = p.m[i] / bc1;
            let vhat = p.v[i] / bc2;
            p.w[i] -= c.lr * mhat / (vhat.sqrt() + c.eps);
        }
        p.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_minimizes_a_quadratic() {
        // min (w-3)², starting at 0.
        let mut p = Param::zeros(1);
        let mut opt = Adam::new(AdamConfig {
            lr: 0.1,
            ..Default::default()
        });
        for _ in 0..500 {
            opt.begin_step();
            p.g[0] = 2.0 * (p.w[0] - 3.0);
            opt.update(&mut p);
        }
        assert!((p.w[0] - 3.0).abs() < 1e-2, "w = {}", p.w[0]);
    }

    #[test]
    fn adam_clears_gradients_after_update() {
        let mut p = Param::zeros(4);
        p.g = vec![1.0; 4];
        let mut opt = Adam::new(AdamConfig::default());
        opt.begin_step();
        opt.update(&mut p);
        assert!(p.g.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn weight_decay_pulls_toward_zero() {
        let mut p = Param::zeros(1);
        p.w[0] = 1.0;
        let mut opt = Adam::new(AdamConfig {
            lr: 0.05,
            weight_decay: 1.0,
            ..Default::default()
        });
        for _ in 0..200 {
            opt.begin_step();
            opt.update(&mut p); // zero loss gradient; only decay acts
        }
        assert!(p.w[0].abs() < 0.1, "w = {}", p.w[0]);
    }

    #[test]
    fn first_step_bias_correction_keeps_magnitude_near_lr() {
        let mut p = Param::zeros(1);
        p.g[0] = 1e-4; // tiny gradient
        let mut opt = Adam::new(AdamConfig {
            lr: 0.01,
            ..Default::default()
        });
        opt.begin_step();
        opt.update(&mut p);
        // Bias-corrected Adam's first step has magnitude ≈ lr regardless of
        // gradient scale.
        assert!((p.w[0].abs() - 0.01).abs() < 1e-3, "step = {}", p.w[0]);
    }
}
