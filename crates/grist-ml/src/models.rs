//! The two networks of the ML-based physics suite (§3.2.3):
//!
//! * [`TendencyCnn`] — "one-dimensional convolutional layers to capture the
//!   vertical characteristics of temperature, humidity, and other
//!   atmospheric variables … five ResUnits, culminating in an 11-layer deep
//!   CNN with a parameter count close to half a million", predicting the Q1
//!   and Q2 profiles from (U, V, T, Q, P) profiles.
//! * [`RadiationMlp`] — "a 7-layer Multilayer Perceptron with residual
//!   connections" predicting surface downward shortwave (`gsw`) and longwave
//!   (`glw`) radiation, with `tskin` and `coszr` appended to the inputs "to
//!   provide physical features of the model top insolation and surface
//!   state".

use crate::batch::ColumnScratch;
use crate::io::{
    check_magic, read_f32_vec, read_norm_pairs, read_u64, write_f32_slice, write_magic,
    write_norm_pairs, write_u64, KIND_CNN, KIND_MLP,
};
use crate::optim::Adam;
use crate::tensor::{mse_loss, Conv1d, Dense, Relu};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};

/// Number of input channels of the tendency CNN: U, V, T, Q, P.
pub const CNN_INPUT_CHANNELS: usize = 5;
/// Number of output channels: Q1 (heating) and Q2 (moistening).
pub const CNN_OUTPUT_CHANNELS: usize = 2;

/// One residual unit: conv → ReLU → conv, added to the input.
#[derive(Debug, Clone)]
pub(crate) struct ResUnit {
    pub(crate) conv1: Conv1d,
    relu: Relu,
    pub(crate) conv2: Conv1d,
}

impl ResUnit {
    fn new(ch: usize, nlev: usize, rng: &mut StdRng) -> Self {
        ResUnit {
            conv1: Conv1d::new(ch, ch, 3, nlev, rng),
            relu: Relu::default(),
            conv2: Conv1d::new(ch, ch, 3, nlev, rng),
        }
    }

    fn forward(&mut self, x: &[f32]) -> Vec<f32> {
        let h = self.conv1.forward(x);
        let h = self.relu.forward(&h);
        let h = self.conv2.forward(&h);
        h.iter().zip(x).map(|(a, b)| a + b).collect()
    }

    fn infer(&self, x: &[f32], h1: &mut [f32], h2: &mut [f32]) {
        self.conv1.infer(x, h1);
        Relu::infer(h1);
        self.conv2.infer(h1, h2);
        for (o, &xi) in h2.iter_mut().zip(x) {
            *o += xi;
        }
    }

    fn backward(&mut self, grad: &[f32]) -> Vec<f32> {
        let g = self.conv2.backward(grad);
        let g = self.relu.backward(&g);
        let mut gx = self.conv1.backward(&g);
        for (a, b) in gx.iter_mut().zip(grad) {
            *a += b; // residual skip path
        }
        gx
    }
}

/// The 11-layer tendency CNN (input conv + 5 ResUnits + output conv).
#[derive(Debug, Clone)]
pub struct TendencyCnn {
    pub nlev: usize,
    pub channels: usize,
    pub(crate) input: Conv1d,
    input_relu: Relu,
    pub(crate) res: Vec<ResUnit>,
    pub(crate) output: Conv1d,
    /// Per-channel input normalization (mean, 1/std) — fit on training data.
    pub in_norm: Vec<(f32, f32)>,
    /// Per-channel output denormalization (mean, std).
    pub out_norm: Vec<(f32, f32)>,
}

impl TendencyCnn {
    /// Build with `channels` hidden width. `channels = 128` gives ≈ 0.5 M
    /// parameters at any `nlev`, matching the paper.
    pub fn new(nlev: usize, channels: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        TendencyCnn {
            nlev,
            channels,
            input: Conv1d::new(CNN_INPUT_CHANNELS, channels, 3, nlev, &mut rng),
            input_relu: Relu::default(),
            res: (0..5)
                .map(|_| ResUnit::new(channels, nlev, &mut rng))
                .collect(),
            // 1×1 per-level linear readout head (not counted among the
            // "11-layer deep CNN" k=3 convolution layers).
            output: Conv1d::new(channels, CNN_OUTPUT_CHANNELS, 1, nlev, &mut rng),
            in_norm: vec![(0.0, 1.0); CNN_INPUT_CHANNELS],
            out_norm: vec![(0.0, 1.0); CNN_OUTPUT_CHANNELS],
        }
    }

    /// Total trainable parameters.
    pub fn n_params(&self) -> usize {
        self.input.n_params()
            + self
                .res
                .iter()
                .map(|r| r.conv1.n_params() + r.conv2.n_params())
                .sum::<usize>()
            + self.output.n_params()
    }

    /// Deep (k = 3) conv layers in the network — the paper's "11-layer deep
    /// CNN": one input conv plus two per ResUnit; the 1×1 readout head is a
    /// linear projection, not a deep layer.
    pub fn n_conv_layers(&self) -> usize {
        1 + 2 * self.res.len()
    }

    /// FLOPs of one forward (inference) pass.
    pub fn flops(&self) -> u64 {
        self.input.flops()
            + self
                .res
                .iter()
                .map(|r| r.conv1.flops() + r.conv2.flops())
                .sum::<u64>()
            + self.output.flops()
    }

    /// Normalize a raw `[5 × nlev]` input in place.
    pub fn normalize_input(&self, x: &mut [f32]) {
        for ch in 0..CNN_INPUT_CHANNELS {
            let (mu, inv_sd) = self.in_norm[ch];
            for v in &mut x[ch * self.nlev..(ch + 1) * self.nlev] {
                *v = (*v - mu) * inv_sd;
            }
        }
    }

    /// Denormalize a `[2 × nlev]` network output in place.
    pub fn denormalize_output(&self, y: &mut [f32]) {
        for ch in 0..CNN_OUTPUT_CHANNELS {
            let (mu, sd) = self.out_norm[ch];
            for v in &mut y[ch * self.nlev..(ch + 1) * self.nlev] {
                *v = *v * sd + mu;
            }
        }
    }

    /// Training forward pass on a *normalized* input.
    pub fn forward(&mut self, x: &[f32]) -> Vec<f32> {
        let h = self.input.forward(x);
        let mut h = self.input_relu.forward(&h);
        for r in &mut self.res {
            h = r.forward(&h);
        }
        self.output.forward(&h)
    }

    /// Inference on a normalized input, writing the normalized output.
    ///
    /// Convenience wrapper over [`Self::infer_into`] that allocates fresh
    /// scratch — fine for one-off calls; hot loops should hold a
    /// [`ColumnScratch`] (or batch with
    /// [`Self::infer_batch`](crate::batch)) instead.
    pub fn infer(&self, x: &[f32], y: &mut [f32]) {
        let mut scratch = ColumnScratch::new();
        self.infer_into(x, y, &mut scratch);
    }

    /// Inference on a normalized input using caller-provided scratch: no
    /// allocations once `scratch` has warmed up.
    pub fn infer_into(&self, x: &[f32], y: &mut [f32], scratch: &mut ColumnScratch) {
        let n = self.channels * self.nlev;
        let (mut a, b, mut c) = scratch.planes(n);
        self.input.infer(x, a);
        Relu::infer(a);
        for r in &self.res {
            r.infer(a, b, c);
            std::mem::swap(&mut a, &mut c);
        }
        self.output.infer(a, y);
    }

    /// One SGD sample: forward, MSE vs `target` (normalized), backward.
    /// Returns the loss. Gradients accumulate until the optimizer step.
    pub fn train_sample(&mut self, x: &[f32], target: &[f32]) -> f32 {
        let y = self.forward(x);
        let (loss, gy) = mse_loss(&y, target);
        let g = self.output.backward(&gy);
        let mut g = g;
        for r in self.res.iter_mut().rev() {
            g = r.backward(&g);
        }
        let g = self.input_relu.backward(&g);
        self.input.backward(&g);
        loss
    }

    /// Apply one optimizer step to every parameter.
    pub fn optimizer_step(&mut self, opt: &mut Adam) {
        opt.begin_step();
        opt.update(&mut self.input.weight);
        opt.update(&mut self.input.bias);
        for r in &mut self.res {
            opt.update(&mut r.conv1.weight);
            opt.update(&mut r.conv1.bias);
            opt.update(&mut r.conv2.weight);
            opt.update(&mut r.conv2.bias);
        }
        opt.update(&mut self.output.weight);
        opt.update(&mut self.output.bias);
    }

    fn param_tensors(&self) -> Vec<&[f32]> {
        let mut v: Vec<&[f32]> = vec![&self.input.weight.w, &self.input.bias.w];
        for r in &self.res {
            v.push(&r.conv1.weight.w);
            v.push(&r.conv1.bias.w);
            v.push(&r.conv2.weight.w);
            v.push(&r.conv2.bias.w);
        }
        v.push(&self.output.weight.w);
        v.push(&self.output.bias.w);
        v
    }

    fn param_tensors_mut(&mut self) -> Vec<&mut Vec<f32>> {
        let mut v: Vec<&mut Vec<f32>> = vec![&mut self.input.weight.w, &mut self.input.bias.w];
        for r in &mut self.res {
            v.push(&mut r.conv1.weight.w);
            v.push(&mut r.conv1.bias.w);
            v.push(&mut r.conv2.weight.w);
            v.push(&mut r.conv2.bias.w);
        }
        v.push(&mut self.output.weight.w);
        v.push(&mut self.output.bias.w);
        v
    }

    /// Serialize architecture, weights and normalization to a writer.
    pub fn save_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        write_magic(w, KIND_CNN)?;
        write_u64(w, self.nlev as u64)?;
        write_u64(w, self.channels as u64)?;
        write_norm_pairs(w, &self.in_norm)?;
        write_norm_pairs(w, &self.out_norm)?;
        for t in self.param_tensors() {
            write_f32_slice(w, t)?;
        }
        Ok(())
    }

    /// Deserialize a model saved with [`Self::save_to`].
    pub fn load_from(r: &mut impl Read) -> std::io::Result<TendencyCnn> {
        check_magic(r, KIND_CNN)?;
        let nlev = read_u64(r)? as usize;
        let channels = read_u64(r)? as usize;
        let mut net = TendencyCnn::new(nlev, channels, 0);
        net.in_norm = read_norm_pairs(r)?;
        net.out_norm = read_norm_pairs(r)?;
        for t in net.param_tensors_mut() {
            let loaded = read_f32_vec(r)?;
            if loaded.len() != t.len() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("tensor size mismatch: {} vs {}", loaded.len(), t.len()),
                ));
            }
            *t = loaded;
        }
        Ok(net)
    }
}

/// The 7-layer residual MLP for the surface diagnostics — primarily the
/// radiation pair (`gsw`, `glw`) of §3.2.3, with optional extra outputs
/// (e.g. surface precipitation) for the diagnostic module.
#[derive(Debug, Clone)]
pub struct RadiationMlp {
    pub n_in: usize,
    pub n_out: usize,
    pub width: usize,
    pub(crate) input: Dense,
    pub(crate) hidden: Vec<Dense>, // 5 hidden layers with residual skips
    pub(crate) output: Dense,
    relus: Vec<Relu>,
    pub in_norm: Vec<(f32, f32)>,
    /// (mean, std) per output (gsw, glw, …).
    pub out_norm: Vec<(f32, f32)>,
}

impl RadiationMlp {
    /// `n_in` = flattened input length (e.g. T and Q profiles + tskin +
    /// coszr); two outputs (gsw, glw) as in the paper.
    pub fn new(n_in: usize, width: usize, seed: u64) -> Self {
        Self::with_outputs(n_in, 2, width, seed)
    }

    /// Variant with `n_out` diagnostic outputs.
    pub fn with_outputs(n_in: usize, n_out: usize, width: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        RadiationMlp {
            n_in,
            n_out,
            width,
            input: Dense::new(n_in, width, &mut rng),
            hidden: (0..5).map(|_| Dense::new(width, width, &mut rng)).collect(),
            output: Dense::new(width, n_out, &mut rng),
            relus: (0..6).map(|_| Relu::default()).collect(),
            in_norm: vec![(0.0, 1.0); n_in],
            out_norm: vec![(0.0, 1.0); n_out],
        }
    }

    /// Dense layers in the network (the paper's "7-layer MLP").
    pub fn n_layers(&self) -> usize {
        2 + self.hidden.len()
    }

    pub fn n_params(&self) -> usize {
        self.input.n_params()
            + self.hidden.iter().map(|h| h.n_params()).sum::<usize>()
            + self.output.n_params()
    }

    pub fn flops(&self) -> u64 {
        self.input.flops()
            + self.hidden.iter().map(|h| h.flops()).sum::<u64>()
            + self.output.flops()
    }

    pub fn normalize_input(&self, x: &mut [f32]) {
        for (v, &(mu, inv_sd)) in x.iter_mut().zip(&self.in_norm) {
            *v = (*v - mu) * inv_sd;
        }
    }

    pub fn denormalize_output(&self, y: &mut [f32]) {
        for (v, &(mu, sd)) in y.iter_mut().zip(&self.out_norm) {
            *v = *v * sd + mu;
        }
    }

    pub fn forward(&mut self, x: &[f32]) -> Vec<f32> {
        let h = self.input.forward(x);
        let mut h = self.relus[0].forward(&h);
        for (i, layer) in self.hidden.iter_mut().enumerate() {
            let z = layer.forward(&h);
            let z = self.relus[i + 1].forward(&z);
            // residual skip
            h = z.iter().zip(&h).map(|(a, b)| a + b).collect();
        }
        self.output.forward(&h)
    }

    /// Inference returning the diagnostics in normalized space.
    ///
    /// Convenience wrapper over [`Self::infer_into`] that allocates fresh
    /// scratch and an output Vec per call — hot loops should hold a
    /// [`ColumnScratch`] or batch instead.
    pub fn infer(&self, x: &[f32]) -> Vec<f32> {
        let mut scratch = ColumnScratch::new();
        let mut out = vec![0.0f32; self.n_out];
        self.infer_into(x, &mut out, &mut scratch);
        out
    }

    /// Inference writing the normalized diagnostics into `y` using
    /// caller-provided scratch: no allocations once `scratch` has warmed up.
    pub fn infer_into(&self, x: &[f32], y: &mut [f32], scratch: &mut ColumnScratch) {
        debug_assert_eq!(y.len(), self.n_out);
        let (h, z, _) = scratch.planes(self.width);
        self.input.infer(x, h);
        Relu::infer(h);
        for layer in &self.hidden {
            layer.infer(h, z);
            Relu::infer(z);
            for (a, b) in h.iter_mut().zip(z.iter()) {
                *a += b;
            }
        }
        self.output.infer(h, y);
    }

    pub fn train_sample(&mut self, x: &[f32], target: &[f32]) -> f32 {
        let y = self.forward(x);
        let (loss, gy) = mse_loss(&y, target);
        let mut g = self.output.backward(&gy);
        for (i, layer) in self.hidden.iter_mut().enumerate().rev() {
            // Residual block: h_out = relu(layer(h_in)) + h_in, so the
            // gradient reaching h_in is the skip-path gradient plus the
            // gradient back-propagated through relu∘layer.
            let gz = self.relus[i + 1].backward(&g);
            let g_layer = layer.backward(&gz);
            for (a, b) in g.iter_mut().zip(&g_layer) {
                *a += b;
            }
        }
        let g = self.relus[0].backward(&g);
        self.input.backward(&g);
        loss
    }

    pub fn optimizer_step(&mut self, opt: &mut Adam) {
        opt.begin_step();
        opt.update(&mut self.input.weight);
        opt.update(&mut self.input.bias);
        for h in &mut self.hidden {
            opt.update(&mut h.weight);
            opt.update(&mut h.bias);
        }
        opt.update(&mut self.output.weight);
        opt.update(&mut self.output.bias);
    }

    fn param_tensors(&self) -> Vec<&[f32]> {
        let mut v: Vec<&[f32]> = vec![&self.input.weight.w, &self.input.bias.w];
        for h in &self.hidden {
            v.push(&h.weight.w);
            v.push(&h.bias.w);
        }
        v.push(&self.output.weight.w);
        v.push(&self.output.bias.w);
        v
    }

    fn param_tensors_mut(&mut self) -> Vec<&mut Vec<f32>> {
        let mut v: Vec<&mut Vec<f32>> = vec![&mut self.input.weight.w, &mut self.input.bias.w];
        for h in &mut self.hidden {
            v.push(&mut h.weight.w);
            v.push(&mut h.bias.w);
        }
        v.push(&mut self.output.weight.w);
        v.push(&mut self.output.bias.w);
        v
    }

    /// Serialize architecture, weights and normalization to a writer.
    pub fn save_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        write_magic(w, KIND_MLP)?;
        write_u64(w, self.n_in as u64)?;
        write_u64(w, self.n_out as u64)?;
        write_u64(w, self.width as u64)?;
        write_norm_pairs(w, &self.in_norm)?;
        write_norm_pairs(w, &self.out_norm)?;
        for t in self.param_tensors() {
            write_f32_slice(w, t)?;
        }
        Ok(())
    }

    /// Deserialize a model saved with [`Self::save_to`].
    pub fn load_from(r: &mut impl Read) -> std::io::Result<RadiationMlp> {
        check_magic(r, KIND_MLP)?;
        let n_in = read_u64(r)? as usize;
        let n_out = read_u64(r)? as usize;
        let width = read_u64(r)? as usize;
        let mut net = RadiationMlp::with_outputs(n_in, n_out, width, 0);
        net.in_norm = read_norm_pairs(r)?;
        net.out_norm = read_norm_pairs(r)?;
        for t in net.param_tensors_mut() {
            let loaded = read_f32_vec(r)?;
            if loaded.len() != t.len() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "tensor size mismatch",
                ));
            }
            *t = loaded;
        }
        Ok(net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::AdamConfig;

    #[test]
    fn cnn_matches_paper_architecture() {
        let net = TendencyCnn::new(30, 128, 7);
        assert_eq!(net.n_conv_layers(), 11, "paper: 11-layer deep CNN");
        let p = net.n_params();
        assert!(
            (400_000..600_000).contains(&p),
            "paper: parameter count close to half a million; got {p}"
        );
    }

    #[test]
    fn mlp_matches_paper_architecture() {
        let net = RadiationMlp::new(62, 128, 7);
        assert_eq!(net.n_layers(), 7, "paper: 7-layer MLP");
    }

    #[test]
    fn cnn_infer_matches_forward() {
        let mut net = TendencyCnn::new(10, 16, 3);
        let x: Vec<f32> = (0..5 * 10).map(|i| (i as f32 * 0.13).sin()).collect();
        let y1 = net.forward(&x);
        let mut y2 = vec![0.0f32; 2 * 10];
        net.infer(&x, &mut y2);
        for (a, b) in y1.iter().zip(&y2) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn mlp_infer_matches_forward() {
        let mut net = RadiationMlp::new(12, 16, 3);
        let x: Vec<f32> = (0..12).map(|i| (i as f32 * 0.3).cos()).collect();
        let y1 = net.forward(&x);
        let y2 = net.infer(&x);
        assert!((y1[0] - y2[0]).abs() < 1e-5);
        assert!((y1[1] - y2[1]).abs() < 1e-5);
        assert_eq!(y2.len(), 2);
    }

    #[test]
    fn cnn_can_learn_a_simple_mapping() {
        // Learn y = smoothed(-x) for channel 0: loss must fall sharply.
        let mut net = TendencyCnn::new(8, 8, 42);
        let mut opt = Adam::new(AdamConfig {
            lr: 3e-3,
            ..Default::default()
        });
        let samples: Vec<(Vec<f32>, Vec<f32>)> = (0..32)
            .map(|s| {
                let x: Vec<f32> = (0..5 * 8).map(|i| ((i + s) as f32 * 0.41).sin()).collect();
                let mut y = vec![0.0f32; 2 * 8];
                for k in 0..8 {
                    y[k] = -x[2 * 8 + k]; // Q1 = −T channel
                    y[8 + k] = 0.5 * x[3 * 8 + k]; // Q2 = Q/2 channel
                }
                (x, y)
            })
            .collect();
        let loss0: f32 = samples
            .iter()
            .map(|(x, y)| {
                let p = net.forward(x);
                mse_loss(&p, y).0
            })
            .sum();
        for epoch in 0..60 {
            for (x, y) in &samples {
                net.train_sample(x, y);
            }
            net.optimizer_step(&mut opt);
            let _ = epoch;
        }
        let loss1: f32 = samples
            .iter()
            .map(|(x, y)| {
                let p = net.forward(x);
                mse_loss(&p, y).0
            })
            .sum();
        assert!(loss1 < 0.2 * loss0, "training failed: {loss0} -> {loss1}");
    }

    #[test]
    fn mlp_can_learn_a_scalar_function() {
        let mut net = RadiationMlp::new(4, 16, 9);
        let mut opt = Adam::new(AdamConfig {
            lr: 3e-3,
            ..Default::default()
        });
        let data: Vec<(Vec<f32>, Vec<f32>)> = (0..64)
            .map(|s| {
                let x: Vec<f32> = (0..4).map(|i| ((s * 4 + i) as f32 * 0.17).sin()).collect();
                let t = vec![x[0] * x[1] + 0.3 * x[2], x[3] - 0.5 * x[0]];
                (x, t)
            })
            .collect();
        let eval = |net: &mut RadiationMlp| -> f32 {
            data.iter()
                .map(|(x, t)| mse_loss(&net.forward(x), t).0)
                .sum()
        };
        let l0 = eval(&mut net);
        for _ in 0..150 {
            for (x, t) in &data {
                net.train_sample(x, t);
            }
            net.optimizer_step(&mut opt);
        }
        let l1 = eval(&mut net);
        assert!(l1 < 0.1 * l0, "MLP training failed: {l0} -> {l1}");
    }

    #[test]
    fn normalization_roundtrip() {
        let mut net = TendencyCnn::new(4, 4, 1);
        net.in_norm = vec![(1.0, 0.5); 5];
        let mut x = vec![3.0f32; 20];
        net.normalize_input(&mut x);
        assert!(x.iter().all(|&v| (v - 1.0).abs() < 1e-6));
        net.out_norm = vec![(2.0, 10.0); 2];
        let mut y = vec![0.1f32; 8];
        net.denormalize_output(&mut y);
        assert!(y.iter().all(|&v| (v - 3.0).abs() < 1e-6));

        // The diagnostic MLP's per-output denormalization.
        let mut mlp = RadiationMlp::with_outputs(4, 3, 8, 1);
        mlp.out_norm = vec![(1.0, 2.0), (10.0, 1.0), (0.0, 5.0)];
        let mut d = vec![0.5f32, 0.5, 0.5];
        mlp.denormalize_output(&mut d);
        assert_eq!(d, vec![2.0, 10.5, 2.5]);
    }

    #[test]
    fn cnn_save_load_roundtrips_inference_exactly() {
        let mut net = TendencyCnn::new(8, 8, 77);
        net.in_norm = vec![(1.0, 0.5); 5];
        net.out_norm = vec![(2.0, 3.0), (-1.0, 0.25)];
        let mut buf = Vec::new();
        net.save_to(&mut buf).unwrap();
        let back = TendencyCnn::load_from(&mut buf.as_slice()).unwrap();
        let x: Vec<f32> = (0..5 * 8).map(|i| (i as f32 * 0.21).sin()).collect();
        let mut y1 = vec![0.0f32; 16];
        let mut y2 = vec![0.0f32; 16];
        net.infer(&x, &mut y1);
        back.infer(&x, &mut y2);
        assert_eq!(y1, y2);
        assert_eq!(back.in_norm, net.in_norm);
        assert_eq!(back.out_norm, net.out_norm);
    }

    #[test]
    fn mlp_save_load_roundtrips_inference_exactly() {
        let net = RadiationMlp::with_outputs(10, 3, 16, 99);
        let mut buf = Vec::new();
        net.save_to(&mut buf).unwrap();
        let back = RadiationMlp::load_from(&mut buf.as_slice()).unwrap();
        let x: Vec<f32> = (0..10).map(|i| (i as f32 * 0.7).cos()).collect();
        assert_eq!(net.infer(&x), back.infer(&x));
    }

    #[test]
    fn load_rejects_cross_kind_files() {
        let cnn = TendencyCnn::new(4, 4, 1);
        let mut buf = Vec::new();
        cnn.save_to(&mut buf).unwrap();
        assert!(RadiationMlp::load_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn flops_scale_with_width() {
        let a = TendencyCnn::new(30, 32, 1).flops();
        let b = TendencyCnn::new(30, 64, 1).flops();
        let r = b as f64 / a as f64;
        assert!(
            (3.0..4.5).contains(&r),
            "flops ratio {r} (≈4x expected for 2x width)"
        );
    }
}
