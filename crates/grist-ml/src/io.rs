//! Weight serialization for the ML physics models: a small self-describing
//! binary format (magic, architecture header, raw little-endian f32 tensors)
//! with exact round-trip — how a trained suite ships with the model, as the
//! paper's artifact distributes "the weight of AI-enhanced physics suite
//! along with its corresponding parameter files".

use std::io::{self, Read, Write};

pub(crate) const MAGIC: &[u8; 8] = b"GRISTML1";

pub(crate) fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub(crate) fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

pub(crate) fn write_f32_slice(w: &mut impl Write, v: &[f32]) -> io::Result<()> {
    write_u64(w, v.len() as u64)?;
    for &x in v {
        w.write_all(&x.to_le_bytes())?;
    }
    Ok(())
}

pub(crate) fn read_f32_vec(r: &mut impl Read) -> io::Result<Vec<f32>> {
    let n = read_u64(r)? as usize;
    if n > (1 << 28) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "tensor too large",
        ));
    }
    let mut buf = vec![0u8; n * 4];
    r.read_exact(&mut buf)?;
    Ok(buf
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
        .collect())
}

pub(crate) fn write_norm_pairs(w: &mut impl Write, pairs: &[(f32, f32)]) -> io::Result<()> {
    let flat: Vec<f32> = pairs.iter().flat_map(|&(a, b)| [a, b]).collect();
    write_f32_slice(w, &flat)
}

pub(crate) fn read_norm_pairs(r: &mut impl Read) -> io::Result<Vec<(f32, f32)>> {
    let flat = read_f32_vec(r)?;
    if flat.len() % 2 != 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "odd norm vector",
        ));
    }
    Ok(flat.chunks_exact(2).map(|c| (c[0], c[1])).collect())
}

pub(crate) fn check_magic(r: &mut impl Read, kind: u64) -> io::Result<()> {
    let mut m = [0u8; 8];
    r.read_exact(&mut m)?;
    if &m != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let k = read_u64(r)?;
    if k != kind {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "wrong model kind",
        ));
    }
    Ok(())
}

pub(crate) fn write_magic(w: &mut impl Write, kind: u64) -> io::Result<()> {
    w.write_all(MAGIC)?;
    write_u64(w, kind)
}

/// Model-kind tags.
pub(crate) const KIND_CNN: u64 = 1;
pub(crate) const KIND_MLP: u64 = 2;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_slice_roundtrip() {
        let v = vec![1.5f32, -0.25, f32::MIN_POSITIVE, 1e30];
        let mut buf = Vec::new();
        write_f32_slice(&mut buf, &v).unwrap();
        let back = read_f32_vec(&mut buf.as_slice()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn norm_pairs_roundtrip() {
        let p = vec![(1.0f32, 2.0f32), (-3.0, 0.5)];
        let mut buf = Vec::new();
        write_norm_pairs(&mut buf, &p).unwrap();
        assert_eq!(read_norm_pairs(&mut buf.as_slice()).unwrap(), p);
    }

    #[test]
    fn magic_rejects_wrong_kind() {
        let mut buf = Vec::new();
        write_magic(&mut buf, KIND_CNN).unwrap();
        assert!(check_magic(&mut buf.as_slice(), KIND_MLP).is_err());
        let mut buf2 = Vec::new();
        write_magic(&mut buf2, KIND_MLP).unwrap();
        assert!(check_magic(&mut buf2.as_slice(), KIND_MLP).is_ok());
    }

    #[test]
    fn truncated_data_is_an_error_not_a_panic() {
        let v = vec![1.0f32; 16];
        let mut buf = Vec::new();
        write_f32_slice(&mut buf, &v).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_f32_vec(&mut buf.as_slice()).is_err());
    }
}
