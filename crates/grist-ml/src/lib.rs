//! # grist-ml
//!
//! The AI-enhanced physics suite of the GRIST-rs reproduction (§3.2): a
//! dependency-free f32 neural-network library (dense + 1-D conv layers with
//! hand-written backprop and Adam), the paper's two models — the 11-layer
//! ~0.5M-parameter [`TendencyCnn`] for the Q1/Q2
//! physical tendencies and the 7-layer residual
//! [`RadiationMlp`] for the `gsw`/`glw` surface
//! radiation diagnostics — plus the train/test split and normalization
//! machinery of §3.2.1 and the achieved-peak-fraction model behind §4.7's
//! efficiency claims.

// Indexed loops mirror the Fortran stencil kernels they reproduce and are
// clearer than iterator chains for staggered-grid code.
#![allow(clippy::needless_range_loop)]
pub mod batch;
pub mod data;
pub mod ensemble;
pub mod flops;
pub mod gemm;
pub mod io;
pub mod models;
pub mod optim;
pub mod tensor;

pub use batch::{
    cnn_batch_flops, mlp_batch_flops, CnnScratch, ColumnScratch, MlpScratch, SampleLayout,
};
pub use data::{ChannelNormalizer, Dataset, Sample, TrainingPeriod, TRAINING_PERIODS};
pub use ensemble::CnnEnsemble;
pub use flops::{
    achieved_peak_fraction, compare_radiation, gemm_lane_utilization, RadiationComparison,
    WorkloadMix,
};
pub use gemm::simd::{gemm_nn_simd, F32x8, Lanes, LANE_WIDTH, MR_SIMD, NR_SIMD};
pub use gemm::{gemm_flops, gemm_nn, gemm_nn_with, GemmVariant};
pub use models::{RadiationMlp, TendencyCnn, CNN_INPUT_CHANNELS, CNN_OUTPUT_CHANNELS};
pub use optim::{Adam, AdamConfig};
pub use tensor::{mse_loss, Conv1d, Dense, Param, Relu};
