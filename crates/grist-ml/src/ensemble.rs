//! Ensembles of tendency networks — the stabilization technique of Han et
//! al. 2023 ("An ensemble of neural networks for moist physics processes,
//! its generalizability and stable integration"), which the paper cites as
//! part of its ML-physics lineage. Averaging independently-initialized
//! members suppresses the individual networks' out-of-distribution
//! excursions that destabilize long coupled runs.

use crate::models::TendencyCnn;
use crate::optim::Adam;

/// An ensemble of independently-seeded [`TendencyCnn`] members whose
/// prediction is the member mean.
#[derive(Debug, Clone)]
pub struct CnnEnsemble {
    pub members: Vec<TendencyCnn>,
}

impl CnnEnsemble {
    /// Build `n` members with distinct seeds (identical architecture).
    pub fn new(n: usize, nlev: usize, channels: usize, seed: u64) -> Self {
        assert!(n >= 1);
        CnnEnsemble {
            members: (0..n)
                .map(|i| TendencyCnn::new(nlev, channels, seed.wrapping_add(i as u64 * 7919)))
                .collect(),
        }
    }

    pub fn len(&self) -> usize {
        self.members.len()
    }

    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Share one normalization across members (fit once on training data).
    pub fn set_norms(&mut self, in_norm: Vec<(f32, f32)>, out_norm: Vec<(f32, f32)>) {
        for m in &mut self.members {
            m.in_norm = in_norm.clone();
            m.out_norm = out_norm.clone();
        }
    }

    /// Mean prediction over the members, on a *normalized* input.
    pub fn infer(&self, x: &[f32], y: &mut [f32]) {
        y.fill(0.0);
        let mut tmp = vec![0.0f32; y.len()];
        for m in &self.members {
            m.infer(x, &mut tmp);
            for (a, b) in y.iter_mut().zip(&tmp) {
                *a += b;
            }
        }
        let inv = 1.0 / self.members.len() as f32;
        for a in y.iter_mut() {
            *a *= inv;
        }
    }

    /// Per-point ensemble spread (std over members) — the uncertainty
    /// signal used to detect out-of-distribution inputs.
    pub fn spread(&self, x: &[f32], out: &mut [f32]) {
        let n = self.members.len() as f32;
        let mut mean = vec![0.0f32; out.len()];
        self.infer(x, &mut mean);
        out.fill(0.0);
        let mut tmp = vec![0.0f32; out.len()];
        for m in &self.members {
            m.infer(x, &mut tmp);
            for (o, (&t, &mu)) in out.iter_mut().zip(tmp.iter().zip(&mean)) {
                *o += (t - mu) * (t - mu);
            }
        }
        for o in out.iter_mut() {
            *o = (*o / n).sqrt();
        }
    }

    /// Train every member on the same (normalized) samples; each member gets
    /// its own optimizer state.
    pub fn train_epoch(
        &mut self,
        samples: &[(Vec<f32>, Vec<f32>)],
        opts: &mut [Adam],
        batch: usize,
    ) -> f32 {
        assert_eq!(opts.len(), self.members.len());
        let mut total = 0.0f32;
        for (m, opt) in self.members.iter_mut().zip(opts.iter_mut()) {
            for chunk in samples.chunks(batch) {
                for (x, y) in chunk {
                    total += m.train_sample(x, y);
                }
                m.optimizer_step(opt);
            }
        }
        total / (samples.len().max(1) * self.members.len()) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::AdamConfig;
    use crate::tensor::mse_loss;

    fn toy_samples(nlev: usize, n: usize) -> Vec<(Vec<f32>, Vec<f32>)> {
        (0..n)
            .map(|s| {
                let x: Vec<f32> = (0..5 * nlev)
                    .map(|i| ((i + s) as f32 * 0.37).sin())
                    .collect();
                let mut y = vec![0.0f32; 2 * nlev];
                for k in 0..nlev {
                    y[k] = -0.5 * x[2 * nlev + k];
                    y[nlev + k] = 0.3 * x[3 * nlev + k];
                }
                (x, y)
            })
            .collect()
    }

    #[test]
    fn ensemble_mean_equals_single_member_when_n_is_one() {
        let ens = CnnEnsemble::new(1, 6, 8, 5);
        let x = vec![0.2f32; 5 * 6];
        let mut ye = vec![0.0f32; 12];
        let mut ym = vec![0.0f32; 12];
        ens.infer(&x, &mut ye);
        ens.members[0].infer(&x, &mut ym);
        assert_eq!(ye, ym);
    }

    #[test]
    fn members_differ_and_mean_interpolates() {
        let ens = CnnEnsemble::new(3, 6, 8, 5);
        let x = vec![0.2f32; 5 * 6];
        let mut outs = Vec::new();
        for m in &ens.members {
            let mut y = vec![0.0f32; 12];
            m.infer(&x, &mut y);
            outs.push(y);
        }
        assert_ne!(outs[0], outs[1], "distinct seeds must differ");
        let mut mean = vec![0.0f32; 12];
        ens.infer(&x, &mut mean);
        for i in 0..12 {
            let lo = outs.iter().map(|o| o[i]).fold(f32::MAX, f32::min);
            let hi = outs.iter().map(|o| o[i]).fold(f32::MIN, f32::max);
            assert!(mean[i] >= lo - 1e-6 && mean[i] <= hi + 1e-6);
        }
    }

    #[test]
    fn spread_is_zero_for_duplicate_members_positive_otherwise() {
        let mut ens = CnnEnsemble::new(2, 4, 8, 9);
        let x = vec![0.5f32; 20];
        let mut spread = vec![0.0f32; 8];
        ens.spread(&x, &mut spread);
        assert!(
            spread.iter().any(|&s| s > 0.0),
            "independent members must disagree"
        );
        ens.members[1] = ens.members[0].clone();
        ens.spread(&x, &mut spread);
        assert!(
            spread.iter().all(|&s| s < 1e-7),
            "identical members must agree"
        );
    }

    #[test]
    fn ensemble_trains_and_beats_its_untrained_self() {
        let nlev = 6;
        let samples = toy_samples(nlev, 24);
        let mut ens = CnnEnsemble::new(2, nlev, 8, 17);
        let mut opts: Vec<Adam> = (0..2)
            .map(|_| {
                Adam::new(AdamConfig {
                    lr: 3e-3,
                    ..Default::default()
                })
            })
            .collect();
        let eval = |ens: &CnnEnsemble| -> f32 {
            let mut y = vec![0.0f32; 2 * nlev];
            samples
                .iter()
                .map(|(x, t)| {
                    ens.infer(x, &mut y);
                    mse_loss(&y, t).0
                })
                .sum()
        };
        let l0 = eval(&ens);
        for _ in 0..40 {
            ens.train_epoch(&samples, &mut opts, 8);
        }
        let l1 = eval(&ens);
        assert!(l1 < 0.3 * l0, "ensemble failed to train: {l0} -> {l1}");
    }

    #[test]
    fn ensemble_mean_is_smoother_than_members_off_distribution() {
        // Train on a narrow input range, probe far outside it: the ensemble
        // mean's excursion is bounded by the largest member excursion.
        let nlev = 4;
        let samples = toy_samples(nlev, 16);
        let mut ens = CnnEnsemble::new(4, nlev, 8, 23);
        let mut opts: Vec<Adam> = (0..4)
            .map(|_| {
                Adam::new(AdamConfig {
                    lr: 3e-3,
                    ..Default::default()
                })
            })
            .collect();
        for _ in 0..20 {
            ens.train_epoch(&samples, &mut opts, 8);
        }
        let x_ood = vec![25.0f32; 5 * nlev]; // far outside training inputs
        let mut mean = vec![0.0f32; 2 * nlev];
        ens.infer(&x_ood, &mut mean);
        let mean_mag = mean.iter().map(|v| v.abs()).fold(0.0f32, f32::max);
        let worst_member = ens
            .members
            .iter()
            .map(|m| {
                let mut y = vec![0.0f32; 2 * nlev];
                m.infer(&x_ood, &mut y);
                y.iter().map(|v| v.abs()).fold(0.0f32, f32::max)
            })
            .fold(0.0f32, f32::max);
        assert!(
            mean_mag <= worst_member + 1e-6,
            "averaging must not amplify excursions: {mean_mag} vs {worst_member}"
        );
    }
}
