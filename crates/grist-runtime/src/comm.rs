//! An in-process message-passing world: the MPI stand-in.
//!
//! Each rank runs on its own OS thread with private memory; communication
//! happens only through typed point-to-point messages (std mpsc channels)
//! with `(source, tag)` matching, plus barrier and allreduce collectives.
//! Every byte that crosses a rank boundary is counted, so communication
//! volumes measured here feed the fat-tree network model directly.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};

/// Message payload (f64 values, the model's lingua franca).
type Payload = Vec<f64>;

enum Body {
    Data(Payload),
    /// World-abort poison: `failed_rank` panicked. Any rank that receives
    /// this while blocked unwinds immediately instead of waiting forever
    /// for a message the dead rank will never send.
    Abort {
        failed_rank: usize,
    },
}

struct Envelope {
    from: usize,
    tag: u32,
    body: Body,
}

/// Global communication statistics.
#[derive(Debug, Default)]
pub struct CommStats {
    pub messages: AtomicU64,
    pub bytes: AtomicU64,
}

/// One rank's endpoint in the world.
pub struct RankCtx {
    pub rank: usize,
    pub n_ranks: usize,
    peers: Vec<Sender<Envelope>>,
    inbox: Receiver<Envelope>,
    /// Out-of-order messages parked until matched.
    parked: HashMap<(usize, u32), VecDeque<Payload>>,
    stats: Arc<CommStats>,
}

impl RankCtx {
    /// Send `data` to `dest` with `tag`. A peer that has already left the
    /// world (it surfaced an error and unwound) cannot receive; the message
    /// is dropped rather than crashing the sender — survivors of a failed
    /// exchange round must outlive the rank that detected the failure.
    pub fn send(&self, dest: usize, tag: u32, data: Payload) {
        self.stats.messages.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes
            .fetch_add((data.len() * 8) as u64, Ordering::Relaxed);
        let _ = self.peers[dest].send(Envelope {
            from: self.rank,
            tag,
            body: Body::Data(data),
        });
    }

    /// Blocking receive matching `(from, tag)`. Panics with a descriptive
    /// error if the world was aborted by another rank's failure.
    pub fn recv(&mut self, from: usize, tag: u32) -> Payload {
        if let Some(q) = self.parked.get_mut(&(from, tag)) {
            if let Some(p) = q.pop_front() {
                return p;
            }
        }
        loop {
            // A disconnected inbox means every peer sender (including the
            // hub's) is gone — the world tore down around us. Surface it
            // with the same rank/tag context as an explicit abort instead
            // of a bare `expect` panic.
            let env = self.inbox.recv().unwrap_or_else(|_| {
                panic!(
                    "world aborted: every peer channel dropped while rank {} \
                     was blocked in recv(from={from}, tag={tag})",
                    self.rank
                )
            });
            let data = match env.body {
                Body::Data(data) => data,
                Body::Abort { failed_rank } => panic!(
                    "world aborted: rank {failed_rank} panicked while rank {} \
                     was blocked in recv(from={from}, tag={tag})",
                    self.rank
                ),
            };
            if env.from == from && env.tag == tag {
                return data;
            }
            self.parked
                .entry((env.from, env.tag))
                .or_default()
                .push_back(data);
        }
    }

    /// Sum-allreduce of a scalar across all ranks (binomial-tree shape is
    /// not modeled; correctness only — costs come from the network model).
    pub fn allreduce_sum(&mut self, value: f64, tag: u32) -> f64 {
        // Gather to rank 0, broadcast back. Simple and correct.
        if self.rank == 0 {
            let mut total = value;
            for r in 1..self.n_ranks {
                total += self.recv(r, tag)[0];
            }
            for r in 1..self.n_ranks {
                self.send(r, tag + 1, vec![total]);
            }
            total
        } else {
            self.send(0, tag, vec![value]);
            self.recv(0, tag + 1)[0]
        }
    }

    /// Barrier across all ranks.
    pub fn barrier(&mut self, tag: u32) {
        let _ = self.allreduce_sum(0.0, tag);
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `f` on `n_ranks` rank threads and collect their return values in rank
/// order.
///
/// If any rank panics, the failure is caught on that rank's thread, a
/// world-abort poison is broadcast so every peer blocked in `recv` unwinds
/// promptly (instead of deadlocking on a message the dead rank will never
/// send), and `run_world` re-panics on the calling thread with a message
/// naming the *first* failed rank and its panic message — cascade aborts on
/// surviving ranks never mask the root cause.
pub fn run_world<T: Send, F>(n_ranks: usize, f: F) -> (Vec<T>, Arc<CommStats>)
where
    F: Fn(RankCtx) -> T + Sync,
{
    let stats = Arc::new(CommStats::default());
    let mut senders = Vec::with_capacity(n_ranks);
    let mut receivers = Vec::with_capacity(n_ranks);
    for _ in 0..n_ranks {
        let (tx, rx) = channel::<Envelope>();
        senders.push(tx);
        receivers.push(rx);
    }
    // First failure wins: a rank that panics records itself here *before*
    // broadcasting the abort poison, so the cascade panics it triggers on
    // surviving ranks find the slot already taken.
    let failure: Mutex<Option<(usize, String)>> = Mutex::new(None);
    let mut results: Vec<Option<T>> = (0..n_ranks).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (rank, inbox) in receivers.into_iter().enumerate() {
            let peers = senders.clone();
            let ctx = RankCtx {
                rank,
                n_ranks,
                peers: peers.clone(),
                inbox,
                parked: HashMap::new(),
                stats: Arc::clone(&stats),
            };
            let f = &f;
            let failure = &failure;
            handles.push(scope.spawn(move || {
                match catch_unwind(AssertUnwindSafe(|| f(ctx))) {
                    Ok(v) => Some(v),
                    Err(payload) => {
                        let msg = panic_message(payload.as_ref());
                        {
                            let mut slot = failure.lock().unwrap();
                            if slot.is_none() {
                                *slot = Some((rank, msg));
                            }
                        }
                        // Poison every peer; a receiver that already left
                        // the world simply drops the envelope.
                        for peer in &peers {
                            let _ = peer.send(Envelope {
                                from: rank,
                                tag: 0,
                                body: Body::Abort { failed_rank: rank },
                            });
                        }
                        None
                    }
                }
            }));
        }
        for (rank, h) in handles.into_iter().enumerate() {
            results[rank] = h
                .join()
                .unwrap_or_else(|_| panic!("run_world: rank {rank} thread died unexpectedly"));
        }
    });
    if let Some((rank, msg)) = failure.into_inner().expect("failure slot") {
        panic!("run_world: rank {rank} panicked: {msg}");
    }
    (
        results
            .into_iter()
            .enumerate()
            .map(|(rank, r)| {
                r.unwrap_or_else(|| panic!("run_world: rank {rank} produced no result"))
            })
            .collect(),
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recv_on_a_torn_down_world_panics_with_rank_and_tag_context() {
        // Regression: a disconnected inbox used to surface as the bare
        // `expect("world alive")` with no hint of who was waiting on what.
        let (_tx, inbox) = {
            let (tx, rx) = channel::<Envelope>();
            drop(tx);
            ((), rx)
        };
        let mut ctx = RankCtx {
            rank: 3,
            n_ranks: 4,
            peers: Vec::new(),
            inbox,
            parked: HashMap::new(),
            stats: Arc::new(CommStats::default()),
        };
        let payload = catch_unwind(AssertUnwindSafe(|| ctx.recv(1, 9)))
            .expect_err("recv on a dead world must panic");
        let msg = panic_message(payload.as_ref());
        for needle in ["world aborted", "rank 3", "from=1", "tag=9"] {
            assert!(msg.contains(needle), "panic {msg:?} lacks {needle:?}");
        }
    }

    #[test]
    fn ring_pass_delivers_in_order() {
        let (results, _) = run_world(4, |mut ctx| {
            let next = (ctx.rank + 1) % 4;
            let prev = (ctx.rank + 3) % 4;
            ctx.send(next, 7, vec![ctx.rank as f64]);
            ctx.recv(prev, 7)[0]
        });
        assert_eq!(results, vec![3.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn tag_matching_reorders_messages() {
        let (results, _) = run_world(2, |mut ctx| {
            if ctx.rank == 0 {
                // Send two tags; receiver asks for the second first.
                ctx.send(1, 1, vec![10.0]);
                ctx.send(1, 2, vec![20.0]);
                0.0
            } else {
                let b = ctx.recv(0, 2)[0];
                let a = ctx.recv(0, 1)[0];
                a + 2.0 * b
            }
        });
        assert_eq!(results[1], 50.0);
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        let n = 6;
        let (results, _) = run_world(n, |mut ctx| ctx.allreduce_sum((ctx.rank + 1) as f64, 100));
        let expected = (n * (n + 1) / 2) as f64;
        assert!(results.iter().all(|&r| r == expected));
    }

    #[test]
    fn stats_count_bytes_and_messages() {
        let (_, stats) = run_world(2, |mut ctx| {
            if ctx.rank == 0 {
                ctx.send(1, 0, vec![1.0; 100]);
            } else {
                let _ = ctx.recv(0, 0);
            }
        });
        assert_eq!(stats.messages.load(Ordering::Relaxed), 1);
        assert_eq!(stats.bytes.load(Ordering::Relaxed), 800);
    }

    #[test]
    fn rank_panic_aborts_the_world_with_a_descriptive_error() {
        // Regression: before the world-abort poison, survivors blocked in
        // recv() on the dead rank forever and thread::scope never exited.
        let err = catch_unwind(AssertUnwindSafe(|| {
            run_world(4, |mut ctx| {
                if ctx.rank == 2 {
                    panic!("injected failure");
                }
                // Survivors block on a message rank 2 will never send.
                ctx.recv(2, 9)[0]
            })
        }))
        .expect_err("world must abort, not hang");
        let msg = panic_message(err.as_ref());
        assert!(msg.contains("rank 2"), "error must name the rank: {msg}");
        assert!(
            msg.contains("injected failure"),
            "error must carry the original panic message: {msg}"
        );
    }

    #[test]
    fn rank_panic_propagates_even_when_no_rank_is_blocked() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            run_world(3, |ctx| {
                if ctx.rank == 1 {
                    panic!("boom");
                }
                ctx.rank as f64
            })
        }))
        .expect_err("failure must propagate");
        let msg = panic_message(err.as_ref());
        assert!(msg.contains("rank 1") && msg.contains("boom"), "{msg}");
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::AtomicUsize;
        let counter = AtomicUsize::new(0);
        let (results, _) = run_world(4, |mut ctx| {
            counter.fetch_add(1, Ordering::SeqCst);
            ctx.barrier(50);
            counter.load(Ordering::SeqCst)
        });
        // After the barrier every rank must observe all 4 increments.
        assert!(results.iter().all(|&c| c == 4));
    }
}
