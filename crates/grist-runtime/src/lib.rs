//! # grist-runtime
//!
//! The parallelization facilitation layer (§3.1.3) of the GRIST-rs
//! reproduction: an in-process message-passing rank world (the MPI
//! stand-in), the linked-list gathered halo exchange, the 16:3-oversubscribed
//! fat-tree network model, grouped parallel I/O, and the SDPD scaling
//! projection behind Figs. 10–11.

// Indexed loops mirror the Fortran stencil kernels they reproduce and are
// clearer than iterator chains for staggered-grid code.
#![allow(clippy::needless_range_loop)]
pub mod collectives;
pub mod comm;
pub mod exchange;
pub mod fattree;
pub mod pio;
pub mod scaling;

pub use collectives::{allgather, allreduce_vec, broadcast, reduce};
pub use comm::{run_world, CommStats, RankCtx};
pub use exchange::{
    exchange_gathered, exchange_gathered_begin, exchange_gathered_begin_metered,
    exchange_gathered_chaos, exchange_gathered_complete, exchange_gathered_complete_chaos,
    exchange_gathered_complete_metered, exchange_gathered_metered, exchange_per_variable,
    halo_fault_key, ExchangeError, ExchangeReceipt, PendingExchange, VarList,
};
pub use fattree::{boundary_fraction, exchange_time, ExchangeProfile, ExchangeTime};
pub use pio::{grouped_write, io_group, n_writers, IoGroup};
pub use scaling::{
    grid_by_label, table2_grids, weak_scaling_efficiencies, weak_scaling_ladder, GridSpec,
    MeasuredCosts, ScalingError, Scheme, SdpdModel, SdpdModelConfig, SdpdResult,
};
