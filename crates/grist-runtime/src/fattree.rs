//! Analytic model of the next-generation Sunway interconnect (§4.1): 256-node
//! supernodes on common leaf switches, joined by a 16:3 (256:48)
//! oversubscribed multilayer fat tree.
//!
//! The model prices one halo-exchange round for a locality-aware placement
//! of a 2-D (spherical) domain decomposition: most neighbours of a rank are
//! on the same supernode; the patch-boundary fraction crosses the
//! oversubscribed uplinks, with additional contention as traffic climbs
//! levels of the tree. This is the mechanism behind the weak-scaling drop
//! the paper observes at 32,768 CGs.

use sunway_sim::SunwaySpec;

/// Placement-derived communication profile of one exchange round.
#[derive(Debug, Clone, Copy)]
pub struct ExchangeProfile {
    /// Ranks (CGs) participating.
    pub procs: usize,
    /// Bytes sent per rank per neighbour per round.
    pub msg_bytes: f64,
    /// Neighbours per rank (≈6 on a hexagonal decomposition).
    pub n_neighbors: f64,
}

/// Breakdown of one exchange round's modeled time.
#[derive(Debug, Clone, Copy)]
pub struct ExchangeTime {
    pub latency_s: f64,
    pub intra_s: f64,
    pub inter_s: f64,
}

impl ExchangeTime {
    pub fn total(&self) -> f64 {
        self.latency_s + self.intra_s + self.inter_s
    }
}

/// Fraction of a compact √N×√N rank patch that sits on the patch boundary —
/// the ranks whose halo partners live on other supernodes.
pub fn boundary_fraction(ranks_in_patch: usize) -> f64 {
    if ranks_in_patch <= 1 {
        return 1.0;
    }
    (3.5 / (ranks_in_patch as f64).sqrt()).min(1.0)
}

/// Second-level contention: once the supernode count exceeds the radix of
/// one top switch, traffic crosses an extra oversubscribed stage.
fn tree_level_factor(supernodes: f64, spec: &SunwaySpec) -> f64 {
    let radix = 48.0; // uplink ports per leaf = ports into the next level
    if supernodes <= 1.0 {
        0.0
    } else if supernodes <= radix {
        1.0
    } else {
        1.0 + (supernodes.ln() / radix.ln() - 1.0).max(0.0) * spec.oversubscription
    }
}

/// Time of one gathered halo-exchange round.
pub fn exchange_time(profile: &ExchangeProfile, spec: &SunwaySpec) -> ExchangeTime {
    let ranks_per_node = spec.cgs_per_node as f64;
    let nodes = (profile.procs as f64 / ranks_per_node).ceil();
    let ranks_per_sn = (spec.supernode_size as f64 * ranks_per_node).min(profile.procs as f64);
    let supernodes = (nodes / spec.supernode_size as f64).ceil();

    let latency_s = profile.n_neighbors * spec.net_latency;

    // Per-rank traffic split into intra- and inter-supernode shares.
    let f_ext = if supernodes <= 1.0 {
        0.0
    } else {
        boundary_fraction(ranks_per_sn as usize)
    };
    let per_rank_bytes = profile.msg_bytes * profile.n_neighbors;
    let intra_s = per_rank_bytes * (1.0 - f_ext) / spec.link_bandwidth;

    // Inter-supernode share contends for 48 uplinks shared by 1536 ranks:
    // effective per-rank uplink bandwidth = link_bw / oversubscription,
    // further derated by higher tree levels.
    let level = tree_level_factor(supernodes, spec);
    let inter_s = if level == 0.0 {
        0.0
    } else {
        per_rank_bytes * f_ext * spec.oversubscription * level / spec.link_bandwidth
    };
    ExchangeTime {
        latency_s,
        intra_s,
        inter_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SunwaySpec {
        SunwaySpec::next_gen()
    }

    fn profile(procs: usize) -> ExchangeProfile {
        ExchangeProfile {
            procs,
            msg_bytes: 100.0 * 30.0 * 8.0,
            n_neighbors: 6.0,
        }
    }

    #[test]
    fn single_supernode_pays_no_oversubscription() {
        let t = exchange_time(&profile(1024), &spec());
        assert_eq!(t.inter_s, 0.0);
        assert!(t.intra_s > 0.0);
        assert!(t.latency_s > 0.0);
    }

    #[test]
    fn exchange_time_grows_with_system_size() {
        let s = spec();
        let t_small = exchange_time(&profile(128), &s).total();
        let t_mid = exchange_time(&profile(32_768), &s).total();
        let t_large = exchange_time(&profile(524_288), &s).total();
        assert!(t_small < t_mid, "{t_small} !< {t_mid}");
        assert!(t_mid < t_large, "{t_mid} !< {t_large}");
    }

    #[test]
    fn drop_appears_when_tree_gains_a_level() {
        // The paper: "a clear drop of scalability at the scale of 32,768
        // CGs, possibly due to bandwidth oversubscription in the fat-tree".
        // 32,768 CGs ≈ 21 supernodes (multi-supernode, level 1); beyond ~48
        // supernodes the extra level kicks in.
        let s = spec();
        let t_131k = exchange_time(&profile(131_072), &s);
        let t_8k = exchange_time(&profile(8_192), &s);
        assert!(
            t_131k.inter_s > 1.5 * t_8k.inter_s,
            "top-level contention missing: {} vs {}",
            t_131k.inter_s,
            t_8k.inter_s
        );
    }

    #[test]
    fn boundary_fraction_shrinks_with_patch_size() {
        assert_eq!(boundary_fraction(1), 1.0);
        assert!(boundary_fraction(100) > boundary_fraction(1600));
        assert!(boundary_fraction(1536) < 0.1);
    }

    #[test]
    fn latency_term_scales_with_neighbor_count() {
        let s = spec();
        let mut p = profile(4096);
        let t6 = exchange_time(&p, &s).latency_s;
        p.n_neighbors = 12.0;
        let t12 = exchange_time(&p, &s).latency_s;
        assert!((t12 / t6 - 2.0).abs() < 1e-12);
    }
}
