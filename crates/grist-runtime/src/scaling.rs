//! SDPD projection model: combines the SW26010P roofline (per-kernel compute
//! time), the fat-tree exchange model, partition imbalance, and LDCache
//! residency into simulated-days-per-day for any (grid, scheme, process
//! count) — the machinery that regenerates Fig. 10 (weak scaling) and
//! Fig. 11 (strong scaling).
//!
//! Calibration constants are chosen so the *shape* of the paper's curves
//! holds (who wins, where the knees are); absolute SDPD values depend on the
//! real machine and are documented as modeled values in EXPERIMENTS.md.

use crate::fattree::{exchange_time, ExchangeProfile};
use sunway_sim::perf::{kernel_time, ExecTarget, KernelSpec, PerfModel};
use sunway_sim::{Metrics, SunwaySpec};

/// Typed failures of the scaling-model API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScalingError {
    /// A grid label that is not a row of Table 2.
    UnknownGrid {
        label: String,
        known: Vec<&'static str>,
    },
    /// A scaling ladder with no entries: there is no baseline point to
    /// normalize efficiencies against.
    EmptyLadder,
    /// Calibration needs a counter the metrics registry never recorded.
    MissingCounter { name: &'static str },
}

impl std::fmt::Display for ScalingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScalingError::UnknownGrid { label, known } => {
                write!(f, "unknown grid label {label:?}: Table 2 defines {known:?}")
            }
            ScalingError::EmptyLadder => write!(
                f,
                "scaling ladder is empty: no baseline point to normalize efficiencies against"
            ),
            ScalingError::MissingCounter { name } => write!(
                f,
                "metrics registry has no {name:?} counter: calibration needs a metered \
                 multi-rank run (Substrate::*_with_metrics + exchange_gathered_metered)"
            ),
        }
    }
}

impl std::error::Error for ScalingError {}

/// Look up a Table 2 grid by its label, with a descriptive error listing
/// the known labels instead of a bare `unwrap` panic.
pub fn grid_by_label(label: &str) -> Result<GridSpec, ScalingError> {
    let grids = table2_grids();
    grids
        .iter()
        .find(|g| g.label == label)
        .copied()
        .ok_or_else(|| ScalingError::UnknownGrid {
            label: label.to_string(),
            known: grids.iter().map(|g| g.label).collect(),
        })
}

/// Project the paper's weak-scaling efficiency `eff(N) = P_N / P_base`
/// (eq. 1) along `ladder`, normalized against the ladder's first entry.
pub fn weak_scaling_efficiencies(
    model: &SdpdModel,
    scheme: Scheme,
    ladder: &[(&str, usize)],
) -> Result<Vec<(usize, f64)>, ScalingError> {
    let (base_label, base_procs) = ladder.first().ok_or(ScalingError::EmptyLadder)?;
    let base = model
        .project(&grid_by_label(base_label)?, scheme, *base_procs)
        .sdpd;
    let mut effs = Vec::with_capacity(ladder.len());
    for (label, procs) in ladder {
        let g = grid_by_label(label)?;
        effs.push((*procs, model.project(&g, scheme, *procs).sdpd / base));
    }
    Ok(effs)
}

/// Per-step structural costs measured from a metered run's counter
/// registry. Only deterministic counters are read — never wall times — so
/// a calibration taken on one machine reproduces bit-for-bit on another.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredCosts {
    /// Kernel-group dispatches per rank per dynamics step
    /// (`substrate.dispatches`).
    pub kernel_groups_per_step: f64,
    /// Gathered halo exchanges per rank per dynamics step
    /// (`halo.exchanges`).
    pub exchanges_per_step: f64,
    /// Packed messages per exchange (`halo.messages`).
    pub messages_per_exchange: f64,
    /// Payload bytes per packed message (`halo.bytes`).
    pub bytes_per_message: f64,
}

impl MeasuredCosts {
    /// Read the per-step costs out of `metrics` after a run of
    /// `rank_steps` rank-steps (ranks × dynamics steps, since a shared
    /// registry sums over ranks).
    pub fn from_metrics(metrics: &Metrics, rank_steps: u64) -> Result<Self, ScalingError> {
        assert!(rank_steps >= 1, "calibration needs at least one step");
        let need = |name: &'static str| -> Result<f64, ScalingError> {
            match metrics.counter(name) {
                0 => Err(ScalingError::MissingCounter { name }),
                v => Ok(v as f64),
            }
        };
        let dispatches = need("substrate.dispatches")?;
        let exchanges = need("halo.exchanges")?;
        let messages = need("halo.messages")?;
        let bytes = need("halo.bytes")?;
        Ok(MeasuredCosts {
            kernel_groups_per_step: dispatches / rank_steps as f64,
            exchanges_per_step: exchanges / rank_steps as f64,
            messages_per_exchange: messages / exchanges,
            bytes_per_message: bytes / messages,
        })
    }
}

/// Grid + timestep configuration (one row of Table 2).
#[derive(Debug, Clone, Copy)]
pub struct GridSpec {
    pub label: &'static str,
    pub cells: usize,
    pub edges: usize,
    pub verts: usize,
    pub nlev: usize,
    /// Timesteps in seconds (Table 2's Dyn/Trac/Phy/Rad quadruple).
    pub dt_dyn: f64,
    pub dt_trac: f64,
    pub dt_phy: f64,
    pub dt_rad: f64,
}

/// Scheme configuration (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scheme {
    /// Mixed-precision dycore?
    pub mixed: bool,
    /// ML physics suite?
    pub ml_physics: bool,
}

impl Scheme {
    pub fn label(&self) -> &'static str {
        match (self.mixed, self.ml_physics) {
            (false, false) => "DP-PHY",
            (false, true) => "DP-ML",
            (true, false) => "MIX-PHY",
            (true, true) => "MIX-ML",
        }
    }

    pub fn all() -> [Scheme; 4] {
        [
            Scheme {
                mixed: false,
                ml_physics: false,
            },
            Scheme {
                mixed: false,
                ml_physics: true,
            },
            Scheme {
                mixed: true,
                ml_physics: false,
            },
            Scheme {
                mixed: true,
                ml_physics: true,
            },
        ]
    }
}

/// Calibration constants of the projection.
#[derive(Debug, Clone, Copy)]
pub struct SdpdModelConfig {
    /// Dyn-solver kernel-group invocations per dynamics step (RK stages ×
    /// operator groups).
    pub dyn_kernel_groups: f64,
    /// Halo exchanges per dynamics step.
    pub exchanges_per_dyn_step: f64,
    /// Variables (per-level values) carried per exchanged halo cell.
    pub exchange_vars: f64,
    /// Conventional-physics flops per column per physics step.
    pub conv_phy_flops: f64,
    /// Conventional radiation flops per column per radiation step.
    pub conv_rad_flops: f64,
    /// Achieved fraction of CG peak for conventional physics (§4.7: ~6%).
    pub conv_efficiency: f64,
    /// ML tendency-CNN flops per column per physics step.
    pub ml_phy_flops: f64,
    /// ML radiation-MLP flops per column per radiation step.
    pub ml_rad_flops: f64,
    /// Achieved fraction of CG peak for the ML suite (§4.7: 74–84%).
    pub ml_efficiency: f64,
    /// Number of transported tracers (the six prognostic tracer variables).
    pub n_tracers: f64,
    /// Load-imbalance growth per doubling of the process count.
    pub imbalance_per_doubling: f64,
    /// LDCache working-set scale factor (fraction of a CPE's share of the
    /// local points that must be resident to cut DDR traffic).
    pub ws_factor: f64,
    /// Traffic reduction at full residency.
    pub residency_saving: f64,
    /// Per-kernel-group software overhead at scale (MPE serial sections,
    /// athread spawn + barrier, MPI progress) \[s\].
    pub per_group_overhead: f64,
    /// Software latency per halo message at the 128-process baseline \[s\].
    pub msg_software_latency: f64,
    /// Relative growth of message latency per doubling of the process count
    /// (network diameter + software collective costs).
    pub latency_growth_per_doubling: f64,
    /// Fraction of the per-step communication time hidden behind interior
    /// compute by the async begin/complete exchange (0 = fully synchronous).
    /// Communication can only hide under compute that exists, so the hidden
    /// time is capped at the per-step dynamics compute.
    pub overlap_factor: f64,
    /// Halo surface coefficient: halo cells ≈ coeff · √(local cells). The
    /// default 3.5 is the analytic compact-patch guess; `bench_scaling`
    /// overrides it with the coefficient measured from the partitioner's
    /// [`grist_mesh::SurfaceProfile`] (committed in `BENCH_partition.json`).
    pub halo_surface_coeff: f64,
}

impl Default for SdpdModelConfig {
    fn default() -> Self {
        SdpdModelConfig {
            dyn_kernel_groups: 30.0,
            exchanges_per_dyn_step: 3.0,
            exchange_vars: 10.0,
            conv_phy_flops: 2.0e6,
            conv_rad_flops: 8.0e6,
            conv_efficiency: 0.06,
            ml_phy_flops: 3.0e7,
            ml_rad_flops: 3.6e5,
            ml_efficiency: 0.78,
            n_tracers: 6.0,
            imbalance_per_doubling: 0.015,
            ws_factor: 0.25,
            residency_saving: 0.6,
            per_group_overhead: 150.0e-6,
            msg_software_latency: 120.0e-6,
            latency_growth_per_doubling: 0.22,
            overlap_factor: 0.0,
            halo_surface_coeff: 3.5,
        }
    }
}

impl SdpdModelConfig {
    /// Replace the hand-set per-step structure constants with costs
    /// measured from a metered run, and set the comm/compute overlap
    /// fraction. Wall-derived constants (roofline fractions, software
    /// latencies) stay modeled: counter-derived values are deterministic
    /// across machines, wall times are not.
    pub fn with_measured(mut self, costs: &MeasuredCosts, overlap_factor: f64) -> Self {
        self.dyn_kernel_groups = costs.kernel_groups_per_step;
        self.exchanges_per_dyn_step = costs.exchanges_per_step;
        self.overlap_factor = overlap_factor.clamp(0.0, 1.0);
        self
    }

    /// Replace the analytic halo surface coefficient with one measured from
    /// the partitioner (`SurfaceProfile::surface_coeff`). Clamped away from
    /// degenerate values so a pathological partition cannot zero out the
    /// communication term.
    pub fn with_measured_surface(mut self, surface_coeff: f64) -> Self {
        self.halo_surface_coeff = surface_coeff.clamp(0.5, 10.0);
        self
    }
}

/// Per-simulated-day time breakdown and the resulting SDPD.
#[derive(Debug, Clone, Copy)]
pub struct SdpdResult {
    pub sdpd: f64,
    pub dyn_s: f64,
    pub tracer_s: f64,
    pub physics_s: f64,
    pub comm_s: f64,
    pub comm_fraction: f64,
}

/// The projection model.
#[derive(Debug, Clone, Copy)]
pub struct SdpdModel {
    pub spec: SunwaySpec,
    pub perf: PerfModel,
    pub cfg: SdpdModelConfig,
}

impl Default for SdpdModel {
    fn default() -> Self {
        SdpdModel {
            spec: SunwaySpec::next_gen(),
            perf: PerfModel::default(),
            cfg: SdpdModelConfig::default(),
        }
    }
}

impl SdpdModel {
    /// The representative per-dyn-step kernel ensemble at local sizes.
    fn dyn_kernels(&self, local_cells: usize, local_edges: usize, nlev: usize) -> Vec<KernelSpec> {
        sunway_sim::perf::fig9_kernels(local_cells, local_edges, nlev)
    }

    /// Effective traffic multiplier from LDCache residency of the local
    /// working set (the Fig. 11 plateau mechanism).
    fn residency(&self, local_edge_points: usize, arrays: f64, elem: f64) -> f64 {
        let ws = local_edge_points as f64 * arrays * elem * self.cfg.ws_factor;
        let cache = self.spec.ldcache_bytes as f64;
        ((cache - ws) / cache).clamp(0.0, 1.0)
    }

    /// Project SDPD for `grid` under `scheme` on `procs` CGs.
    pub fn project(&self, grid: &GridSpec, scheme: Scheme, procs: usize) -> SdpdResult {
        assert!(procs >= 1);
        let local_cells = grid.cells.div_ceil(procs);
        let local_edges = grid.edges.div_ceil(procs);
        let nlev = grid.nlev;
        let elem = if scheme.mixed { 4.0 } else { 8.0 };
        let target = if scheme.mixed {
            ExecTarget::CpeMixDst
        } else {
            ExecTarget::CpeDpDst
        };

        // --- dynamics compute per step ---
        let kernels = self.dyn_kernels(local_cells, local_edges, nlev);
        let mut t_group: f64 = kernels
            .iter()
            .map(|k| kernel_time(k, target, &self.spec, &self.perf))
            .sum();
        // LDCache residency of the local state trims the memory-bound part.
        let res = self.residency(local_edges * nlev, 7.0, elem);
        t_group *= 1.0 - self.cfg.residency_saving * res;
        // One dynamics step runs `dyn_kernel_groups` kernel-group
        // invocations, each costing the mean of the representative ensemble
        // plus the fixed per-group software overhead that dominates at small
        // local sizes (and caps strong scaling, as in Fig. 11).
        // Full residency also shortens the per-group overhead (resident
        // arrays skip DMA descriptor setup and kernel tails) — the mechanism
        // behind G11S's late extra efficiency in Fig. 11.
        let group_overhead = self.cfg.per_group_overhead * (1.0 - 0.35 * res);
        let dyn_per_step =
            self.cfg.dyn_kernel_groups * (t_group / kernels.len() as f64 + group_overhead);

        // --- tracer transport per tracer step ---
        let tracer_kernel = KernelSpec {
            name: "tracer_transport_hori_flux_limiter",
            points: local_edges * nlev,
            flops_per_point: 14.0,
            expensive_per_point: 1.0,
            arrays: 6,
            has_mixed_variant: true,
        };
        let tracer_per_step = kernel_time(&tracer_kernel, target, &self.spec, &self.perf)
            * self.cfg.n_tracers
            * (1.0 - self.cfg.residency_saving * res);

        // --- physics per physics/radiation step ---
        let cg_peak = self.spec.cg_peak_f64();
        let cols = local_cells as f64;
        let (phy_per_step, rad_per_step) = if scheme.ml_physics {
            (
                cols * self.cfg.ml_phy_flops / (self.cfg.ml_efficiency * cg_peak),
                cols * self.cfg.ml_rad_flops / (self.cfg.ml_efficiency * cg_peak),
            )
        } else {
            (
                cols * self.cfg.conv_phy_flops / (self.cfg.conv_efficiency * cg_peak),
                cols * self.cfg.conv_rad_flops / (self.cfg.conv_efficiency * cg_peak),
            )
        };

        // --- communication per dynamics step ---
        let halo_cells =
            (self.cfg.halo_surface_coeff * (local_cells as f64).sqrt()).min(local_cells as f64);
        let msg_bytes = halo_cells / 6.0 * nlev as f64 * self.cfg.exchange_vars * elem;
        let profile = ExchangeProfile {
            procs,
            msg_bytes,
            n_neighbors: 6.0,
        };
        // Bandwidth/contention terms from the fat-tree model, plus per-message
        // software latency that grows with system size (MPI stack, network
        // diameter) — the dominant term at these message sizes.
        let lat_growth =
            1.0 + self.cfg.latency_growth_per_doubling * ((procs.max(128) as f64) / 128.0).log2();
        let comm_per_step = (exchange_time(&profile, &self.spec).total()
            + 6.0 * self.cfg.msg_software_latency * lat_growth)
            * self.cfg.exchanges_per_dyn_step;

        // --- assemble one simulated day ---
        let n_dyn = 86_400.0 / grid.dt_dyn;
        let n_trac = 86_400.0 / grid.dt_trac;
        let n_phy = 86_400.0 / grid.dt_phy;
        let n_rad = 86_400.0 / grid.dt_rad;

        let imbalance =
            1.0 + self.cfg.imbalance_per_doubling * ((procs.max(128) as f64 / 128.0).log2());
        let dyn_s = dyn_per_step * n_dyn * imbalance;
        let tracer_s = tracer_per_step * n_trac * imbalance;
        let physics_s = (phy_per_step * n_phy + rad_per_step * n_rad) * imbalance;
        // The async begin/complete exchange hides part of the comm time
        // behind the interior compute; it can hide at most the compute that
        // actually runs while the messages are in flight.
        let hidden = self.cfg.overlap_factor * comm_per_step.min(dyn_per_step);
        let comm_s = (comm_per_step - hidden) * n_dyn;
        let total = dyn_s + tracer_s + physics_s + comm_s;
        SdpdResult {
            sdpd: 86_400.0 / total,
            dyn_s,
            tracer_s,
            physics_s,
            comm_s,
            comm_fraction: comm_s / total,
        }
    }
}

/// Table 2 of the paper as [`GridSpec`]s (30-layer rows, weak-scaling
/// timesteps equal to G12's).
pub fn table2_grids() -> Vec<GridSpec> {
    let g = |label, level: u32, dt: [f64; 4]| {
        let p = 4usize.pow(level);
        GridSpec {
            label,
            cells: 10 * p + 2,
            edges: 30 * p,
            verts: 20 * p,
            nlev: 30,
            dt_dyn: dt[0],
            dt_trac: dt[1],
            dt_phy: dt[2],
            dt_rad: dt[3],
        }
    };
    vec![
        g("G12", 12, [4.0, 30.0, 60.0, 180.0]),
        g("G11W", 11, [4.0, 30.0, 60.0, 180.0]),
        g("G11S", 11, [8.0, 60.0, 120.0, 360.0]),
        g("G10", 10, [4.0, 30.0, 60.0, 180.0]),
        g("G9", 9, [4.0, 30.0, 60.0, 180.0]),
        g("G8", 8, [4.0, 30.0, 60.0, 180.0]),
        g("G6", 6, [4.0, 30.0, 60.0, 180.0]),
    ]
}

/// The weak-scaling ladder of Fig. 10: (grid label, process count) pairs
/// with a fixed ~320 cells/CG.
pub fn weak_scaling_ladder() -> Vec<(&'static str, usize)> {
    vec![
        ("G6", 128),
        ("G8", 2_048),
        ("G9", 8_192),
        ("G10", 32_768),
        ("G11W", 131_072),
        ("G12", 524_288),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> SdpdModel {
        SdpdModel::default()
    }

    fn grid(label: &str) -> GridSpec {
        grid_by_label(label).expect("Table 2 grid")
    }

    const MIX_ML: Scheme = Scheme {
        mixed: true,
        ml_physics: true,
    };
    const MIX_PHY: Scheme = Scheme {
        mixed: true,
        ml_physics: false,
    };
    const DP_ML: Scheme = Scheme {
        mixed: false,
        ml_physics: true,
    };
    const DP_PHY: Scheme = Scheme {
        mixed: false,
        ml_physics: false,
    };

    #[test]
    fn scheme_ordering_matches_table3_expectations() {
        // At the paper's headline configuration every optimization must help:
        // MIX-ML ≥ {MIX-PHY, DP-ML} ≥ DP-PHY.
        let m = model();
        let g = grid("G12");
        let p = 524_288;
        let s = |sch: Scheme| m.project(&g, sch, p).sdpd;
        assert!(s(MIX_ML) > s(MIX_PHY), "ML physics must beat conventional");
        assert!(s(MIX_ML) > s(DP_ML), "mixed precision must beat DP");
        assert!(s(MIX_PHY) > s(DP_PHY));
        assert!(s(DP_ML) > s(DP_PHY));
    }

    #[test]
    fn strong_scaling_speedup_is_sublinear_but_real() {
        let m = model();
        let g = grid("G12");
        let s32 = m.project(&g, MIX_ML, 32_768).sdpd;
        let s524 = m.project(&g, MIX_ML, 524_288).sdpd;
        let speedup = s524 / s32;
        assert!(speedup > 2.0, "strong scaling collapsed: {speedup}");
        assert!(
            speedup < 16.0,
            "unrealistically ideal strong scaling: {speedup}"
        );
    }

    #[test]
    fn g11s_outruns_g12_at_full_scale() {
        // Fig. 11's headline: 491 SDPD (G11S) vs 181 SDPD (G12): the coarser
        // grid with its doubled timestep is ~2.7x faster.
        let m = model();
        let a = m.project(&grid("G11S"), MIX_ML, 524_288).sdpd;
        let b = m.project(&grid("G12"), MIX_ML, 524_288).sdpd;
        let ratio = a / b;
        assert!((1.8..6.0).contains(&ratio), "G11S/G12 SDPD ratio {ratio}");
    }

    #[test]
    fn weak_scaling_efficiency_declines_with_scale() {
        let m = model();
        let effs = weak_scaling_efficiencies(&m, MIX_ML, &weak_scaling_ladder())
            .expect("built-in ladder is valid");
        assert!((effs[0].1 - 1.0).abs() < 1e-12);
        // Efficiency never exceeds 1 and declines overall.
        for w in effs.windows(2) {
            assert!(w[1].1 <= w[0].1 * 1.02, "weak efficiency rose: {effs:?}");
        }
        let (_, last) = *effs.last().expect("ladder is non-empty");
        assert!(
            (0.2..0.95).contains(&last),
            "end-of-ladder efficiency {last}"
        );
    }

    #[test]
    fn unknown_grid_label_yields_a_descriptive_error() {
        let err = grid_by_label("G42").expect_err("G42 is not a Table 2 row");
        let msg = err.to_string();
        assert!(
            msg.contains("G42"),
            "message must name the bad label: {msg}"
        );
        assert!(
            msg.contains("G12"),
            "message must list the known labels: {msg}"
        );
        let err = weak_scaling_efficiencies(&model(), MIX_ML, &[("nope", 128)])
            .expect_err("bad label must propagate");
        assert!(matches!(err, ScalingError::UnknownGrid { .. }));
    }

    #[test]
    fn empty_ladder_yields_a_typed_error() {
        let err =
            weak_scaling_efficiencies(&model(), MIX_ML, &[]).expect_err("no ladder, no baseline");
        assert_eq!(err, ScalingError::EmptyLadder);
        assert!(err.to_string().contains("empty"), "{err}");
    }

    #[test]
    fn calibration_rejects_an_unmetered_registry() {
        let metrics = Metrics::default();
        let err =
            MeasuredCosts::from_metrics(&metrics, 8).expect_err("no counters were ever recorded");
        assert_eq!(
            err,
            ScalingError::MissingCounter {
                name: "substrate.dispatches"
            }
        );
        assert!(err.to_string().contains("substrate.dispatches"), "{err}");
        // A registry with kernels but no halo traffic names the halo counter.
        metrics.counter_add("substrate.dispatches", 10);
        let err = MeasuredCosts::from_metrics(&metrics, 8).expect_err("no halo counters");
        assert_eq!(
            err,
            ScalingError::MissingCounter {
                name: "halo.exchanges"
            }
        );
    }

    #[test]
    fn measured_costs_come_out_per_rank_step() {
        let metrics = Metrics::default();
        metrics.counter_add("substrate.dispatches", 120);
        metrics.counter_add("halo.exchanges", 12);
        metrics.counter_add("halo.messages", 36);
        metrics.counter_add("halo.bytes", 7_200);
        let costs = MeasuredCosts::from_metrics(&metrics, 12).expect("all counters present");
        assert_eq!(costs.kernel_groups_per_step, 10.0);
        assert_eq!(costs.exchanges_per_step, 1.0);
        assert_eq!(costs.messages_per_exchange, 3.0);
        assert_eq!(costs.bytes_per_message, 200.0);
        let cfg = SdpdModelConfig::default().with_measured(&costs, 0.4);
        assert_eq!(cfg.dyn_kernel_groups, 10.0);
        assert_eq!(cfg.exchanges_per_dyn_step, 1.0);
        assert_eq!(cfg.overlap_factor, 0.4);
    }

    #[test]
    fn overlap_factor_shrinks_comm_time_and_nothing_else() {
        let base = model();
        let mut overlapped = model();
        overlapped.cfg.overlap_factor = 0.5;
        let g = grid("G12");
        let r0 = base.project(&g, MIX_PHY, 524_288);
        let r1 = overlapped.project(&g, MIX_PHY, 524_288);
        assert_eq!(r0.dyn_s, r1.dyn_s, "overlap must not touch compute");
        assert_eq!(r0.tracer_s, r1.tracer_s);
        assert_eq!(r0.physics_s, r1.physics_s);
        assert!(r1.comm_s < r0.comm_s, "overlap must hide comm time");
        assert!(r1.sdpd > r0.sdpd, "hidden comm must raise SDPD");
        // Comm can hide at most under the compute that runs concurrently.
        assert!(r0.comm_s - r1.comm_s <= 0.5 * r0.dyn_s + 1e-9);
    }

    #[test]
    fn measured_surface_coeff_scales_comm_and_is_clamped() {
        let base = model();
        let mut wider = model();
        wider.cfg = wider.cfg.with_measured_surface(7.0);
        let g = grid("G12");
        let r0 = base.project(&g, MIX_PHY, 524_288);
        let r1 = wider.project(&g, MIX_PHY, 524_288);
        assert_eq!(r0.dyn_s, r1.dyn_s, "surface coeff must only touch comm");
        assert_eq!(r0.physics_s, r1.physics_s);
        assert!(r1.comm_s > r0.comm_s, "2× the halo must cost more comm");
        // Degenerate measurements clamp instead of zeroing the comm term.
        assert_eq!(
            SdpdModelConfig::default()
                .with_measured_surface(0.0)
                .halo_surface_coeff,
            0.5
        );
        assert_eq!(
            SdpdModelConfig::default()
                .with_measured_surface(1e9)
                .halo_surface_coeff,
            10.0
        );
    }

    #[test]
    fn comm_fraction_grows_along_the_weak_scaling_ladder() {
        // §4.7: "The proportion of communication time rises from 19% to 37%".
        let m = model();
        let first = m.project(&grid("G6"), MIX_PHY, 128).comm_fraction;
        let last = m.project(&grid("G12"), MIX_PHY, 524_288).comm_fraction;
        assert!(
            last > 1.5 * first,
            "comm fraction must grow: {first} -> {last}"
        );
        assert!((0.05..0.45).contains(&first), "baseline comm share {first}");
        assert!((0.15..0.60).contains(&last), "full-scale comm share {last}");
    }

    #[test]
    fn g11s_shows_late_cache_residency_gain() {
        // Fig. 11: G11S gains extra efficiency at the largest scale as the
        // working set drops into the LDCache.
        let m = model();
        let g = grid("G11S");
        let s1 = m.project(&g, MIX_ML, 131_072).sdpd;
        let s2 = m.project(&g, MIX_ML, 262_144).sdpd;
        let s4 = m.project(&g, MIX_ML, 524_288).sdpd;
        let first_ratio = s2 / s1;
        let second_ratio = s4 / s2;
        assert!(
            second_ratio > first_ratio * 0.9,
            "late residency gain missing: {first_ratio} then {second_ratio}"
        );
    }

    #[test]
    fn residency_decreases_with_local_size() {
        let m = model();
        assert!(m.residency(100 * 30, 7.0, 4.0) > m.residency(10_000 * 30, 7.0, 4.0));
        assert_eq!(m.residency(10_000_000, 7.0, 8.0), 0.0);
    }

    #[test]
    fn headline_sdpd_magnitudes_are_in_a_sane_band() {
        // The shape requirement: hundreds of SDPD at full scale, not 5 and
        // not 50,000.
        let m = model();
        let g12 = m.project(&grid("G12"), MIX_ML, 524_288).sdpd;
        let g11s = m.project(&grid("G11S"), MIX_ML, 524_288).sdpd;
        assert!((50.0..2000.0).contains(&g12), "G12 SDPD {g12}");
        assert!((150.0..6000.0).contains(&g11s), "G11S SDPD {g11s}");
    }
}
