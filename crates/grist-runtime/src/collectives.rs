//! Tree-based collectives over the rank world: broadcast, allgather,
//! reduce, and allreduce-vector — the small set GRIST needs beyond halo
//! exchanges (global diagnostics, namelist broadcast, I/O coordination).
//!
//! All use binomial trees (log₂P rounds) rather than the linear gather of
//! `RankCtx::allreduce_sum`, and are exercised by the integration tests at
//! odd rank counts.

use crate::comm::RankCtx;

/// Binomial-tree broadcast from `root`: every rank returns the payload.
pub fn broadcast(ctx: &mut RankCtx, root: usize, data: Vec<f64>, tag: u32) -> Vec<f64> {
    let p = ctx.n_ranks;
    // Re-index so the root is rank 0 in tree space.
    let me = (ctx.rank + p - root) % p;
    let mut have = if ctx.rank == root { Some(data) } else { None };
    // Round k: ranks < 2^k that hold the data send to (me + 2^k).
    let mut step = 1;
    while step < p {
        if me < step {
            let peer = me + step;
            if peer < p {
                let dest = (peer + root) % p;
                let payload = have.as_ref().expect("holder must have data").clone();
                ctx.send(dest, tag + step as u32, payload);
            }
        } else if me < 2 * step && have.is_none() {
            let src = ((me - step) + root) % p;
            have = Some(ctx.recv(src, tag + step as u32));
        }
        step *= 2;
    }
    have.expect("broadcast must reach every rank")
}

/// Binomial-tree reduce to `root` with a binary combiner; non-roots return
/// `None`.
pub fn reduce<F: Fn(&mut [f64], &[f64])>(
    ctx: &mut RankCtx,
    root: usize,
    mut data: Vec<f64>,
    tag: u32,
    combine: F,
) -> Option<Vec<f64>> {
    let p = ctx.n_ranks;
    let me = (ctx.rank + p - root) % p;
    let mut step = 1;
    while step < p {
        if me.is_multiple_of(2 * step) {
            let peer = me + step;
            if peer < p {
                let src = (peer + root) % p;
                let other = ctx.recv(src, tag + step as u32);
                combine(&mut data, &other);
            }
        } else if me % (2 * step) == step {
            let dest = ((me - step) + root) % p;
            ctx.send(dest, tag + step as u32, data.clone());
            return None; // sent up; done
        }
        step *= 2;
    }
    if ctx.rank == root {
        Some(data)
    } else {
        None
    }
}

/// Allreduce of a vector (reduce to 0 + broadcast).
pub fn allreduce_vec<F: Fn(&mut [f64], &[f64])>(
    ctx: &mut RankCtx,
    data: Vec<f64>,
    tag: u32,
    combine: F,
) -> Vec<f64> {
    let reduced = reduce(ctx, 0, data, tag, combine);
    let payload = reduced.unwrap_or_default();
    broadcast(ctx, 0, payload, tag + 1000)
}

/// Allgather: every rank contributes a (possibly differently-sized) vector;
/// all ranks return the rank-ordered concatenation.
pub fn allgather(ctx: &mut RankCtx, data: Vec<f64>, tag: u32) -> Vec<Vec<f64>> {
    // Gather to 0 (linear — sizes differ), then broadcast the flattened
    // result with a length header.
    let p = ctx.n_ranks;
    if ctx.rank == 0 {
        let mut parts = vec![Vec::new(); p];
        parts[0] = data;
        for r in 1..p {
            parts[r] = ctx.recv(r, tag);
        }
        // Flatten with a header: [p, len_0, ..., len_{p-1}, data...]
        let mut flat = Vec::with_capacity(1 + p + parts.iter().map(|v| v.len()).sum::<usize>());
        flat.push(p as f64);
        for part in &parts {
            flat.push(part.len() as f64);
        }
        for part in &parts {
            flat.extend_from_slice(part);
        }
        let flat = broadcast(ctx, 0, flat, tag + 500);
        unflatten(&flat)
    } else {
        ctx.send(0, tag, data);
        let flat = broadcast(ctx, 0, Vec::new(), tag + 500);
        unflatten(&flat)
    }
}

fn unflatten(flat: &[f64]) -> Vec<Vec<f64>> {
    let p = flat[0] as usize;
    let lens: Vec<usize> = (0..p).map(|i| flat[1 + i] as usize).collect();
    let mut pos = 1 + p;
    lens.iter()
        .map(|&l| {
            let v = flat[pos..pos + l].to_vec();
            pos += l;
            v
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::run_world;

    #[test]
    fn broadcast_reaches_all_ranks_from_any_root() {
        for p in [2usize, 5, 8] {
            for root in [0usize, p - 1] {
                let (results, _) = run_world(p, |mut ctx| {
                    let data = if ctx.rank == root {
                        vec![3.5, -1.0]
                    } else {
                        Vec::new()
                    };
                    broadcast(&mut ctx, root, data, 10)
                });
                assert!(
                    results.iter().all(|r| r == &vec![3.5, -1.0]),
                    "p={p} root={root}"
                );
            }
        }
    }

    #[test]
    fn reduce_sums_elementwise_on_the_root() {
        let p = 7;
        let (results, _) = run_world(p, |mut ctx| {
            let data = vec![ctx.rank as f64, 1.0];
            reduce(&mut ctx, 0, data, 20, |a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
            })
        });
        let expected = vec![(0..p).sum::<usize>() as f64, p as f64];
        assert_eq!(results[0].as_ref().unwrap(), &expected);
        assert!(results[1..].iter().all(|r| r.is_none()));
    }

    #[test]
    fn allreduce_max_agrees_on_every_rank() {
        let p = 6;
        let (results, _) = run_world(p, |mut ctx| {
            let data = vec![(ctx.rank as f64 * 7.0) % 5.0, -(ctx.rank as f64)];
            allreduce_vec(&mut ctx, data, 40, |a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x = x.max(*y);
                }
            })
        });
        for r in &results {
            assert_eq!(r, &results[0]);
        }
        assert_eq!(results[0][1], 0.0, "max of -rank is 0");
    }

    #[test]
    fn allgather_preserves_rank_order_and_sizes() {
        let p = 5;
        let (results, _) = run_world(p, |mut ctx| {
            let data = vec![ctx.rank as f64; ctx.rank + 1]; // ragged sizes
            allgather(&mut ctx, data, 60)
        });
        for r in &results {
            assert_eq!(r.len(), p);
            for (rank, part) in r.iter().enumerate() {
                assert_eq!(part.len(), rank + 1);
                assert!(part.iter().all(|&v| v == rank as f64));
            }
        }
    }

    #[test]
    fn broadcast_message_count_is_linear_not_quadratic() {
        use std::sync::atomic::Ordering;
        let p = 8;
        let (_, stats) = run_world(p, |mut ctx| {
            let data = if ctx.rank == 0 {
                vec![1.0; 64]
            } else {
                Vec::new()
            };
            broadcast(&mut ctx, 0, data, 70)
        });
        // Binomial tree: exactly p−1 messages.
        assert_eq!(stats.messages.load(Ordering::Relaxed), (p - 1) as u64);
    }
}
