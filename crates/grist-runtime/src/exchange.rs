//! Gathered halo exchange (§3.1.3): "To refine the granularity of data
//! exchange and minimize inter-process communications, a linked list is
//! utilized to gather variables for exchange, and a single call to the
//! communication interface efficiently completes the data exchange for all
//! listed variables."
//!
//! [`VarList`] is the Rust rendering of that linked list: solvers register
//! every field that needs fresh halos, then one [`exchange_gathered`] call
//! packs all of them into a single message per neighbour.

use crate::comm::RankCtx;
use grist_mesh::RankLocale;
use std::fmt;
use sunway_sim::fault::{FaultPlan, FaultSite};
use sunway_sim::trace::{self, EventKind};
use sunway_sim::Metrics;

/// A registered exchange variable: a full-size (global-cell-indexed) field
/// with `nlev` values per cell, of which only the owned cells are valid
/// before the exchange.
pub struct ExchangeVar<'a> {
    pub name: &'static str,
    pub nlev: usize,
    pub data: &'a mut [f64],
}

/// The gather list of variables for one exchange round.
#[derive(Default)]
pub struct VarList<'a> {
    vars: Vec<ExchangeVar<'a>>,
}

impl<'a> VarList<'a> {
    pub fn new() -> Self {
        VarList { vars: Vec::new() }
    }

    /// Append a variable (the "linked list" registration).
    pub fn push(&mut self, name: &'static str, nlev: usize, data: &'a mut [f64]) {
        self.vars.push(ExchangeVar { name, nlev, data });
    }

    pub fn len(&self) -> usize {
        self.vars.len()
    }

    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Values per cell across all listed variables.
    pub fn values_per_cell(&self) -> usize {
        self.vars.iter().map(|v| v.nlev).sum()
    }

    /// The list's shape: `(name, nlev)` per registered variable, in order.
    /// An async exchange records this at begin time and checks it at
    /// complete time, so the unpack cannot silently land in different
    /// fields than the pack read from.
    pub fn signature(&self) -> Vec<(&'static str, usize)> {
        self.vars.iter().map(|v| (v.name, v.nlev)).collect()
    }
}

/// A failed halo exchange: the packed buffer received from a peer does not
/// match the values the local gather list expects — ranks disagree on the
/// variable list, level counts, or halo layout. The error carries enough
/// context to identify the mismatched pairing without a debugger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExchangeError {
    /// Rank that sent the malformed message.
    pub src: usize,
    /// Receiving rank.
    pub rank: usize,
    /// Message tag of the exchange round.
    pub tag: u32,
    /// Values the receiver's list expects (`halo cells × values per cell`).
    pub expected_values: usize,
    /// Values actually received.
    pub got_values: usize,
    /// Halo cells the receiver expects from `src`.
    pub halo_cells: usize,
    /// Sum of `nlev` over the receiver's registered variables.
    pub values_per_cell: usize,
}

impl fmt::Display for ExchangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "halo exchange (tag {}): rank {} received {} values from rank {} \
             but its gather list expects {} ({} halo cells x {} values/cell) — \
             ranks disagree on the variable list or halo layout",
            self.tag,
            self.rank,
            self.got_values,
            self.src,
            self.expected_values,
            self.halo_cells,
            self.values_per_cell,
        )
    }
}

impl std::error::Error for ExchangeError {}

/// What one exchange round moved: message and payload-byte totals from this
/// rank's perspective (sends only, so summing over ranks counts each message
/// once).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExchangeReceipt {
    pub messages_sent: u64,
    pub bytes_sent: u64,
}

fn check_buffer(
    ctx: &RankCtx,
    src: usize,
    tag: u32,
    got_values: usize,
    halo_cells: usize,
    values_per_cell: usize,
) -> Result<(), ExchangeError> {
    let expected_values = halo_cells * values_per_cell;
    if got_values != expected_values {
        return Err(ExchangeError {
            src,
            rank: ctx.rank,
            tag,
            expected_values,
            got_values,
            halo_cells,
            values_per_cell,
        });
    }
    Ok(())
}

/// Pack one message per destination rank and send it. The send half of
/// every exchange — synchronous rounds call it back-to-back with
/// [`recv_and_unpack`]; the async begin/complete API splits the two around
/// interior compute.
fn pack_and_send(
    ctx: &mut RankCtx,
    locale: &RankLocale,
    list: &VarList<'_>,
    tag: u32,
) -> ExchangeReceipt {
    let per_cell = list.values_per_cell();
    let mut receipt = ExchangeReceipt::default();
    for (dest, cells) in &locale.send {
        let mut buf = Vec::with_capacity(cells.len() * per_cell);
        for &c in cells {
            for var in &list.vars {
                let base = c as usize * var.nlev;
                buf.extend_from_slice(&var.data[base..base + var.nlev]);
            }
        }
        receipt.messages_sent += 1;
        receipt.bytes_sent += (buf.len() * std::mem::size_of::<f64>()) as u64;
        ctx.send(*dest, tag, buf);
    }
    receipt
}

/// Receive one message per source rank (in the locale's mirrored order) and
/// unpack it into the gather list's halo cells. Each blocking receive is
/// traced as an [`EventKind::HaloWait`]; `plan` arms the chaos truncation
/// schedule.
fn recv_and_unpack(
    ctx: &mut RankCtx,
    locale: &RankLocale,
    list: &mut VarList<'_>,
    tag: u32,
    tracer: Option<&trace::Tracer>,
    metrics: Option<&Metrics>,
    plan: Option<&FaultPlan>,
) -> Result<(), ExchangeError> {
    let per_cell = list.values_per_cell();
    for (src, cells) in &locale.recv {
        let t_wait = tracer.and_then(|t| t.begin());
        let mut buf = ctx.recv(*src, tag);
        if let (Some(t), Some(t0)) = (tracer, t_wait) {
            t.record_complete(
                EventKind::HaloWait,
                &format!("halo_wait<-{src}"),
                t0,
                1,
                (buf.len() * std::mem::size_of::<f64>()) as u64,
            );
        }
        if let Some(plan) = plan {
            let key = halo_fault_key(ctx.rank, *src, tag);
            if plan.should_fail(FaultSite::HaloExchange, key, 0) && !buf.is_empty() {
                if let Some(m) = metrics {
                    m.counter_add("fault.injected", 1);
                }
                buf.pop();
            }
        }
        check_buffer(ctx, *src, tag, buf.len(), cells.len(), per_cell)?;
        let mut pos = 0;
        for &c in cells {
            for var in &mut list.vars {
                let base = c as usize * var.nlev;
                var.data[base..base + var.nlev].copy_from_slice(&buf[pos..pos + var.nlev]);
                pos += var.nlev;
            }
        }
    }
    Ok(())
}

/// The shared pack/send/recv/unpack core behind every gathered-exchange
/// entry point. `metrics` turns on counter recording *and* event tracing
/// (the round as an [`EventKind::HaloExchange`] duration event, each
/// blocking receive as an [`EventKind::HaloWait`]); `plan` arms the chaos
/// truncation schedule.
fn exchange_gathered_inner(
    ctx: &mut RankCtx,
    locale: &RankLocale,
    list: &mut VarList<'_>,
    tag: u32,
    metrics: Option<&Metrics>,
    plan: Option<&FaultPlan>,
) -> Result<ExchangeReceipt, ExchangeError> {
    let tracer = metrics.map(|m| m.tracer()).filter(|t| t.is_enabled());
    if tracer.is_some() {
        // Rank threads are dedicated: declare once so every event this
        // thread records (including model kernels) files under its lane.
        trace::set_thread_rank(ctx.rank as u32);
    }
    let t_round = tracer.and_then(|t| t.begin());
    let receipt = pack_and_send(ctx, locale, list, tag);
    let recv_result = recv_and_unpack(ctx, locale, list, tag, tracer, metrics, plan);
    // The round event is recorded on the error path too: a truncated round
    // still spent real wall time, and its waits are already on the
    // timeline, so omitting it would leave the analyzer's halo wait total
    // exceeding its round total. The `halo.*` success counters below keep
    // their error-free semantics.
    if let (Some(t), Some(t0)) = (tracer, t_round) {
        t.record_complete(
            EventKind::HaloExchange,
            "halo_exchange",
            t0,
            receipt.messages_sent,
            receipt.bytes_sent,
        );
    }
    recv_result?;
    if let Some(m) = metrics {
        m.counter_add("halo.exchanges", 1);
        m.counter_add("halo.messages", receipt.messages_sent);
        m.counter_add("halo.bytes", receipt.bytes_sent);
    }
    Ok(receipt)
}

/// An in-flight async exchange: [`exchange_gathered_begin`] has packed and
/// sent this rank's halo messages, and the matching
/// [`exchange_gathered_complete`] call has not yet received the neighbours'
/// replies. Holds the begin-time gather-list signature so the completion
/// can refuse to unpack into a different list.
#[must_use = "an async exchange that is begun must be completed, or peers' messages leak into the parked queue"]
pub struct PendingExchange {
    tag: u32,
    receipt: ExchangeReceipt,
    signature: Vec<(&'static str, usize)>,
}

impl PendingExchange {
    /// Tag of the in-flight round.
    pub fn tag(&self) -> u32 {
        self.tag
    }

    /// Send-side totals of the begin half.
    pub fn receipt(&self) -> ExchangeReceipt {
        self.receipt
    }
}

fn exchange_gathered_begin_inner(
    ctx: &mut RankCtx,
    locale: &RankLocale,
    list: &VarList<'_>,
    tag: u32,
    metrics: Option<&Metrics>,
) -> PendingExchange {
    let tracer = metrics.map(|m| m.tracer()).filter(|t| t.is_enabled());
    if tracer.is_some() {
        trace::set_thread_rank(ctx.rank as u32);
    }
    let t0 = tracer.and_then(|t| t.begin());
    let receipt = pack_and_send(ctx, locale, list, tag);
    // The pack+send half carries the round's message/byte counts; the
    // completion half records a zero-count HaloExchange event, so an async
    // round's *transfer* time (total minus wait) stays comparable with a
    // synchronous round's even though it spans two events.
    if let (Some(t), Some(t0)) = (tracer, t0) {
        t.record_complete(
            EventKind::HaloExchange,
            "halo_pack_send",
            t0,
            receipt.messages_sent,
            receipt.bytes_sent,
        );
    }
    PendingExchange {
        tag,
        receipt,
        signature: list.signature(),
    }
}

/// Begin an asynchronous gathered halo exchange: pack and send this rank's
/// halo messages, then return immediately so the caller can run
/// halo-independent interior kernels while neighbours' messages are in
/// flight. Pair with [`exchange_gathered_complete`] on the same gather
/// list. The overlapped pair is bitwise-equal to one [`exchange_gathered`]
/// call: identical messages, identical unpack order.
pub fn exchange_gathered_begin(
    ctx: &mut RankCtx,
    locale: &RankLocale,
    list: &VarList<'_>,
    tag: u32,
) -> PendingExchange {
    exchange_gathered_begin_inner(ctx, locale, list, tag, None)
}

/// [`exchange_gathered_begin`] with counter/trace recording (the pack+send
/// half lands as a `halo_pack_send` event; `halo.*` counters tick at
/// completion so sync and async rounds count identically).
pub fn exchange_gathered_begin_metered(
    ctx: &mut RankCtx,
    locale: &RankLocale,
    list: &VarList<'_>,
    tag: u32,
    metrics: &Metrics,
) -> PendingExchange {
    exchange_gathered_begin_inner(ctx, locale, list, tag, Some(metrics))
}

fn exchange_gathered_complete_inner(
    pending: PendingExchange,
    ctx: &mut RankCtx,
    locale: &RankLocale,
    list: &mut VarList<'_>,
    metrics: Option<&Metrics>,
    plan: Option<&FaultPlan>,
) -> Result<ExchangeReceipt, ExchangeError> {
    assert_eq!(
        pending.signature,
        list.signature(),
        "async exchange (tag {}) completed with a different gather list than it began with \
         — pack read from one set of fields, unpack would land in another",
        pending.tag
    );
    let tracer = metrics.map(|m| m.tracer()).filter(|t| t.is_enabled());
    if tracer.is_some() {
        trace::set_thread_rank(ctx.rank as u32);
    }
    let t0 = tracer.and_then(|t| t.begin());
    let recv_result = recv_and_unpack(ctx, locale, list, pending.tag, tracer, metrics, plan);
    if let (Some(t), Some(t0)) = (tracer, t0) {
        // Zero counts: the round's messages/bytes were recorded by the
        // begin half (see `exchange_gathered_begin_inner`).
        t.record_complete(EventKind::HaloExchange, "halo_recv_unpack", t0, 0, 0);
    }
    recv_result?;
    if let Some(m) = metrics {
        m.counter_add("halo.exchanges", 1);
        m.counter_add("halo.messages", pending.receipt.messages_sent);
        m.counter_add("halo.bytes", pending.receipt.bytes_sent);
    }
    Ok(pending.receipt)
}

/// Complete an asynchronous gathered halo exchange begun with
/// [`exchange_gathered_begin`]: receive one message per neighbour (in the
/// locale's mirrored order) and unpack the halos into `list`. Panics with a
/// descriptive message if `list`'s shape differs from the one the exchange
/// began with.
pub fn exchange_gathered_complete(
    pending: PendingExchange,
    ctx: &mut RankCtx,
    locale: &RankLocale,
    list: &mut VarList<'_>,
) -> Result<ExchangeReceipt, ExchangeError> {
    exchange_gathered_complete_inner(pending, ctx, locale, list, None, None)
}

/// [`exchange_gathered_complete`] with counter/trace recording: each
/// blocking receive lands as a `halo_wait` event and the `halo.*` counters
/// tick exactly as one synchronous metered round would.
pub fn exchange_gathered_complete_metered(
    pending: PendingExchange,
    ctx: &mut RankCtx,
    locale: &RankLocale,
    list: &mut VarList<'_>,
    metrics: &Metrics,
) -> Result<ExchangeReceipt, ExchangeError> {
    exchange_gathered_complete_inner(pending, ctx, locale, list, Some(metrics), None)
}

/// [`exchange_gathered_complete_metered`] under an armed [`FaultPlan`]: the
/// same [`halo_fault_key`]-addressed truncation schedule as
/// [`exchange_gathered_chaos`], applied at the receive side, so injected
/// halo faults surface through the async API as the same typed
/// [`ExchangeError`] the synchronous path reports.
pub fn exchange_gathered_complete_chaos(
    pending: PendingExchange,
    ctx: &mut RankCtx,
    locale: &RankLocale,
    list: &mut VarList<'_>,
    metrics: &Metrics,
    plan: &FaultPlan,
) -> Result<ExchangeReceipt, ExchangeError> {
    exchange_gathered_complete_inner(pending, ctx, locale, list, Some(metrics), Some(plan))
}

/// One gathered halo exchange: a single send per neighbour carrying every
/// listed variable, and a matching unpack of the received halos. A received
/// buffer whose size disagrees with the local gather list is a descriptive
/// [`ExchangeError`] rather than a slice-index panic.
pub fn exchange_gathered(
    ctx: &mut RankCtx,
    locale: &RankLocale,
    list: &mut VarList<'_>,
    tag: u32,
) -> Result<ExchangeReceipt, ExchangeError> {
    exchange_gathered_inner(ctx, locale, list, tag, None, None)
}

/// [`exchange_gathered`] plus counter recording: the round's message/byte
/// totals land in the registry's `halo.exchanges` / `halo.messages` /
/// `halo.bytes` counters (per-rank sends, so world totals match
/// [`crate::comm::CommStats`] for exchange-only traffic). With the
/// registry's tracer enabled, the round and each blocking receive also land
/// on the rank's trace lane as `halo` / `halo_wait` events.
pub fn exchange_gathered_metered(
    ctx: &mut RankCtx,
    locale: &RankLocale,
    list: &mut VarList<'_>,
    tag: u32,
    metrics: &Metrics,
) -> Result<ExchangeReceipt, ExchangeError> {
    exchange_gathered_inner(ctx, locale, list, tag, Some(metrics), None)
}

/// Deterministic event key for the halo-exchange fault site: derived from
/// `(receiving rank, sending rank, tag)` rather than a shared counter, so
/// rank-thread interleaving cannot perturb a seeded fault schedule. Exposed
/// so chaos tests can [`FaultPlan::pin`] a specific message of a specific
/// round.
pub fn halo_fault_key(rank: usize, src: usize, tag: u32) -> u64 {
    ((rank as u64) << 40) ^ ((src as u64) << 20) ^ tag as u64
}

/// [`exchange_gathered_metered`] under an armed [`FaultPlan`]: before each
/// received message is unpacked, the plan decides (keyed on
/// [`halo_fault_key`]) whether the message was truncated in flight. An
/// injected truncation drops the buffer's trailing value and ticks the
/// `fault.injected` counter; the damage then surfaces through the normal
/// malformed-buffer detection as a typed [`ExchangeError`] — the same error
/// path a real size mismatch takes, so recovery code handles both alike.
///
/// On error the remaining messages of the round are left un-received; a
/// retry after checkpoint restore must use a fresh `tag` so stale parked
/// messages cannot satisfy it.
pub fn exchange_gathered_chaos(
    ctx: &mut RankCtx,
    locale: &RankLocale,
    list: &mut VarList<'_>,
    tag: u32,
    metrics: &Metrics,
    plan: &FaultPlan,
) -> Result<ExchangeReceipt, ExchangeError> {
    exchange_gathered_inner(ctx, locale, list, tag, Some(metrics), Some(plan))
}

/// The naive alternative (one message per variable per neighbour) for the
/// gathered-exchange ablation bench.
pub fn exchange_per_variable(
    ctx: &mut RankCtx,
    locale: &RankLocale,
    list: &mut VarList<'_>,
    tag: u32,
) -> Result<ExchangeReceipt, ExchangeError> {
    let mut receipt = ExchangeReceipt::default();
    for vi in 0..list.vars.len() {
        let t = tag + vi as u32;
        for (dest, cells) in &locale.send {
            let var = &list.vars[vi];
            let mut buf = Vec::with_capacity(cells.len() * var.nlev);
            for &c in cells {
                let base = c as usize * var.nlev;
                buf.extend_from_slice(&var.data[base..base + var.nlev]);
            }
            receipt.messages_sent += 1;
            receipt.bytes_sent += (buf.len() * std::mem::size_of::<f64>()) as u64;
            ctx.send(*dest, t, buf);
        }
        for (src, cells) in &locale.recv {
            let buf = ctx.recv(*src, t);
            let var = &mut list.vars[vi];
            check_buffer(ctx, *src, t, buf.len(), cells.len(), var.nlev)?;
            let mut pos = 0;
            for &c in cells {
                let base = c as usize * var.nlev;
                var.data[base..base + var.nlev].copy_from_slice(&buf[pos..pos + var.nlev]);
                pos += var.nlev;
            }
        }
    }
    Ok(receipt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::run_world;
    use grist_mesh::{HaloLayout, HexMesh, Partition};
    use std::sync::atomic::Ordering;

    /// Each rank fills its owned cells with `f(cell, lev, var)`; after the
    /// exchange every halo cell must match the owner's values.
    fn halo_roundtrip(gathered: bool) -> (u64, u64) {
        let mesh = HexMesh::build(3);
        let parts = 5;
        let partition = Partition::build(&mesh, parts, 2);
        let layout = HaloLayout::build(&mesh, &partition, 1);
        let n = mesh.n_cells();
        let nlev = [3usize, 1, 2];
        let truth = |v: usize, c: usize, k: usize| (v * 1000 + c * 10 + k) as f64;

        let (results, stats) = run_world(parts, |mut ctx| {
            let locale = &layout.locales[ctx.rank];
            let mut fields: Vec<Vec<f64>> = nlev.iter().map(|&l| vec![f64::NAN; n * l]).collect();
            for &c in &locale.owned_cells {
                for (v, field) in fields.iter_mut().enumerate() {
                    for k in 0..nlev[v] {
                        field[c as usize * nlev[v] + k] = truth(v, c as usize, k);
                    }
                }
            }
            {
                const NAMES: [&str; 3] = ["a", "b", "c"];
                let mut list = VarList::new();
                for (v, field) in fields.iter_mut().enumerate() {
                    list.push(NAMES[v], nlev[v], field);
                }
                let receipt = if gathered {
                    exchange_gathered(&mut ctx, locale, &mut list, 10)
                } else {
                    exchange_per_variable(&mut ctx, locale, &mut list, 10)
                }
                .expect("well-formed world must exchange cleanly");
                assert_eq!(
                    receipt.messages_sent as usize,
                    locale.send.len() * if gathered { 1 } else { nlev.len() }
                );
            }
            // Verify all halo cells.
            for (_, cells) in &locale.recv {
                for &c in cells {
                    for (v, field) in fields.iter().enumerate() {
                        for k in 0..nlev[v] {
                            let got = field[c as usize * nlev[v] + k];
                            assert_eq!(got, truth(v, c as usize, k), "halo value wrong");
                        }
                    }
                }
            }
            0u8
        });
        assert_eq!(results.len(), parts);
        (
            stats.messages.load(Ordering::Relaxed),
            stats.bytes.load(Ordering::Relaxed),
        )
    }

    #[test]
    fn gathered_exchange_fills_halos_correctly() {
        halo_roundtrip(true);
    }

    #[test]
    fn per_variable_exchange_fills_halos_correctly() {
        halo_roundtrip(false);
    }

    #[test]
    fn short_buffer_is_a_descriptive_error_not_a_panic() {
        // Two ranks that disagree on the variable list: rank 0 registers one
        // variable, rank 1 registers two. Rank 1's receive must fail with a
        // diagnosable ExchangeError instead of panicking mid-unpack.
        let mesh = HexMesh::build(2);
        let parts = 2;
        let partition = Partition::build(&mesh, parts, 2);
        let layout = HaloLayout::build(&mesh, &partition, 1);
        let n = mesh.n_cells();
        let (results, _) = run_world(parts, move |mut ctx| {
            let locale = &layout.locales[ctx.rank];
            let mut f0 = vec![0.0f64; n * 2];
            let mut f1 = vec![0.0f64; n * 3];
            let mut list = VarList::new();
            list.push("a", 2, &mut f0);
            if ctx.rank == 1 {
                list.push("b", 3, &mut f1);
            }
            exchange_gathered(&mut ctx, locale, &mut list, 7).err()
        });
        // The disagreement is visible from both sides: each rank receives a
        // buffer sized for the *other* list.
        let err = results[1]
            .clone()
            .expect("rank 1 expects 5 values/cell but receives 2 — must error");
        let err0 = results[0]
            .clone()
            .expect("rank 0 expects 2 values/cell but receives 5 — must error");
        assert_eq!(err0.values_per_cell, 2);
        assert_eq!(err0.got_values, err0.halo_cells * 5);
        assert_eq!(err.rank, 1);
        assert_eq!(err.src, 0);
        assert_eq!(err.tag, 7);
        assert_eq!(err.values_per_cell, 5);
        assert_eq!(err.expected_values, err.halo_cells * 5);
        let msg = err.to_string();
        assert!(msg.contains("rank 1"), "missing receiver rank: {msg}");
        assert!(msg.contains("tag 7"), "missing tag: {msg}");
        assert!(
            msg.contains("halo cells"),
            "missing layout diagnosis: {msg}"
        );
    }

    #[test]
    fn metered_exchange_records_halo_counters() {
        let mesh = HexMesh::build(3);
        let parts = 4;
        let partition = Partition::build(&mesh, parts, 2);
        let layout = HaloLayout::build(&mesh, &partition, 1);
        let n = mesh.n_cells();
        let (results, stats) = run_world(parts, move |mut ctx| {
            let metrics = sunway_sim::Metrics::default();
            let locale = &layout.locales[ctx.rank];
            let mut f0 = vec![0.0f64; n * 2];
            let mut list = VarList::new();
            list.push("a", 2, &mut f0);
            let r = exchange_gathered_metered(&mut ctx, locale, &mut list, 3, &metrics)
                .expect("uniform lists exchange cleanly");
            assert_eq!(metrics.counter("halo.exchanges"), 1);
            assert_eq!(metrics.counter("halo.messages"), r.messages_sent);
            assert_eq!(metrics.counter("halo.bytes"), r.bytes_sent);
            (r.messages_sent, r.bytes_sent)
        });
        // Per-rank send-side receipts must sum to the world's comm totals.
        let total_msgs: u64 = results.iter().map(|r| r.0).sum();
        let total_bytes: u64 = results.iter().map(|r| r.1).sum();
        assert_eq!(total_msgs, stats.messages.load(Ordering::Relaxed));
        assert_eq!(total_bytes, stats.bytes.load(Ordering::Relaxed));
        assert!(total_msgs > 0, "level-3 mesh over 4 ranks must have halos");
    }

    #[test]
    fn gathering_cuts_message_count_not_bytes() {
        // Allreduce-free comparison: 3 variables gathered into 1 message per
        // neighbour must send 3x fewer messages but identical payload bytes.
        let (m_gather, b_gather) = halo_roundtrip(true);
        let (m_naive, b_naive) = halo_roundtrip(false);
        assert_eq!(b_gather, b_naive, "payload volume must be identical");
        assert_eq!(m_naive, 3 * m_gather, "3 vars should gather 3:1");
    }

    #[test]
    fn chaos_exchange_without_halo_faults_matches_the_metered_path() {
        let mesh = HexMesh::build(2);
        let parts = 3;
        let partition = Partition::build(&mesh, parts, 2);
        let layout = HaloLayout::build(&mesh, &partition, 1);
        let n = mesh.n_cells();
        // Dispatch-only faults armed: the halo site stays quiet.
        let plan = FaultPlan::new(4).with_rate(FaultSite::Dispatch, 1.0);
        let (results, _) = run_world(parts, |mut ctx| {
            let metrics = sunway_sim::Metrics::default();
            let locale = &layout.locales[ctx.rank];
            let mut f0 = vec![1.5f64; n * 2];
            let mut list = VarList::new();
            list.push("a", 2, &mut f0);
            let r = exchange_gathered_chaos(&mut ctx, locale, &mut list, 2, &metrics, &plan)
                .expect("no halo faults armed");
            assert_eq!(metrics.counter("fault.injected"), 0);
            assert_eq!(metrics.counter("halo.exchanges"), 1);
            r.messages_sent
        });
        assert!(results.iter().sum::<u64>() > 0);
    }

    #[test]
    fn pinned_halo_fault_truncates_exactly_the_named_message() {
        let mesh = HexMesh::build(2);
        let parts = 3;
        let partition = Partition::build(&mesh, parts, 2);
        let layout = HaloLayout::build(&mesh, &partition, 1);
        let n = mesh.n_cells();
        // Pick a (receiver, sender) pair that actually exchanges.
        let victim = layout
            .locales
            .iter()
            .find(|l| !l.recv.is_empty())
            .expect("some rank has halos");
        let (rank, src, tag) = (victim.rank, victim.recv[0].0, 31u32);
        let plan = FaultPlan::new(0).pin(FaultSite::HaloExchange, halo_fault_key(rank, src, tag));
        let (results, _) = run_world(parts, |mut ctx| {
            let metrics = sunway_sim::Metrics::default();
            let locale = &layout.locales[ctx.rank];
            let mut f0 = vec![2.0f64; n * 3];
            let mut list = VarList::new();
            list.push("a", 3, &mut f0);
            exchange_gathered_chaos(&mut ctx, locale, &mut list, tag, &metrics, &plan).err()
        });
        for (r, err) in results.iter().enumerate() {
            if r == rank {
                let e = err.clone().expect("the pinned message must fail");
                assert_eq!(e.src, src);
                assert_eq!(e.tag, tag);
                assert_eq!(
                    e.got_values,
                    e.expected_values - 1,
                    "truncation drops exactly the trailing value"
                );
            } else {
                assert!(err.is_none(), "rank {r} was not targeted: {err:?}");
            }
        }
    }

    /// Poison halos, exchange (sync or begin/complete), return every rank's
    /// raw field bits so the two modes can be compared for exact equality.
    fn exchange_mode_bits(asynchronous: bool) -> Vec<Vec<u64>> {
        let mesh = HexMesh::build(3);
        let parts = 5;
        let partition = Partition::build(&mesh, parts, 2);
        let layout = HaloLayout::build(&mesh, &partition, 1);
        let n = mesh.n_cells();
        let nlev = 3usize;
        let (results, _) = run_world(parts, |mut ctx| {
            let locale = &layout.locales[ctx.rank];
            let mut field = vec![f64::NAN; n * nlev];
            for &c in &locale.owned_cells {
                for k in 0..nlev {
                    field[c as usize * nlev + k] = ((c as usize) * 10 + k) as f64 / 3.0;
                }
            }
            {
                let mut list = VarList::new();
                list.push("h", nlev, &mut field);
                if asynchronous {
                    let pending = exchange_gathered_begin(&mut ctx, locale, &list, 17);
                    // Interior compute would run here, overlapped with the
                    // in-flight messages.
                    exchange_gathered_complete(pending, &mut ctx, locale, &mut list)
                } else {
                    exchange_gathered(&mut ctx, locale, &mut list, 17)
                }
                .expect("uniform lists exchange cleanly");
            }
            field.iter().map(|v| v.to_bits()).collect::<Vec<u64>>()
        });
        results
    }

    #[test]
    fn async_begin_complete_is_bitwise_equal_to_synchronous() {
        assert_eq!(
            exchange_mode_bits(true),
            exchange_mode_bits(false),
            "overlapped exchange must transport exactly the synchronous bytes"
        );
    }

    #[test]
    fn async_metered_counters_match_one_synchronous_round() {
        let mesh = HexMesh::build(3);
        let parts = 4;
        let partition = Partition::build(&mesh, parts, 2);
        let layout = HaloLayout::build(&mesh, &partition, 1);
        let n = mesh.n_cells();
        let (results, _) = run_world(parts, move |mut ctx| {
            let metrics = sunway_sim::Metrics::default();
            let locale = &layout.locales[ctx.rank];
            let mut f0 = vec![0.25f64; n * 2];
            let mut list = VarList::new();
            list.push("a", 2, &mut f0);
            let pending = exchange_gathered_begin_metered(&mut ctx, locale, &list, 3, &metrics);
            assert_eq!(
                metrics.counter("halo.exchanges"),
                0,
                "the round counts once, at completion"
            );
            let r =
                exchange_gathered_complete_metered(pending, &mut ctx, locale, &mut list, &metrics)
                    .expect("uniform lists exchange cleanly");
            assert_eq!(metrics.counter("halo.exchanges"), 1);
            assert_eq!(metrics.counter("halo.messages"), r.messages_sent);
            assert_eq!(metrics.counter("halo.bytes"), r.bytes_sent);
            r.messages_sent
        });
        assert!(results.iter().sum::<u64>() > 0);
    }

    #[test]
    fn async_completion_with_a_different_list_panics_descriptively() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let mesh = HexMesh::build(2);
        let parts = 2;
        let partition = Partition::build(&mesh, parts, 2);
        let layout = HaloLayout::build(&mesh, &partition, 1);
        let n = mesh.n_cells();
        let err = catch_unwind(AssertUnwindSafe(|| {
            run_world(parts, |mut ctx| {
                let locale = &layout.locales[ctx.rank];
                let mut f0 = vec![0.0f64; n * 2];
                let mut f1 = vec![0.0f64; n * 3];
                let mut list = VarList::new();
                list.push("a", 2, &mut f0);
                let pending = exchange_gathered_begin(&mut ctx, locale, &list, 4);
                // Complete with a *different* gather list: must refuse.
                let mut other = VarList::new();
                other.push("b", 3, &mut f1);
                let _ = exchange_gathered_complete(pending, &mut ctx, locale, &mut other);
            })
        }))
        .expect_err("signature mismatch must panic, not corrupt fields");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("different gather list"),
            "panic must explain the misuse: {msg}"
        );
    }

    #[test]
    fn pinned_halo_fault_surfaces_through_the_async_api() {
        let mesh = HexMesh::build(2);
        let parts = 3;
        let partition = Partition::build(&mesh, parts, 2);
        let layout = HaloLayout::build(&mesh, &partition, 1);
        let n = mesh.n_cells();
        let victim = layout
            .locales
            .iter()
            .find(|l| !l.recv.is_empty())
            .expect("some rank has halos");
        let (rank, src, tag) = (victim.rank, victim.recv[0].0, 41u32);
        let plan = FaultPlan::new(0).pin(FaultSite::HaloExchange, halo_fault_key(rank, src, tag));
        let (results, _) = run_world(parts, |mut ctx| {
            let metrics = sunway_sim::Metrics::default();
            let locale = &layout.locales[ctx.rank];
            let mut f0 = vec![2.0f64; n * 3];
            let mut list = VarList::new();
            list.push("a", 3, &mut f0);
            let pending = exchange_gathered_begin_metered(&mut ctx, locale, &list, tag, &metrics);
            let res = exchange_gathered_complete_chaos(
                pending, &mut ctx, locale, &mut list, &metrics, &plan,
            );
            (res.err(), metrics.counter("fault.injected"))
        });
        for (r, (err, injected)) in results.iter().enumerate() {
            if r == rank {
                let e = err.clone().expect("the pinned message must fail");
                assert_eq!(e.src, src);
                assert_eq!(e.tag, tag);
                assert_eq!(e.got_values, e.expected_values - 1);
                assert_eq!(*injected, 1, "exactly one injected truncation");
            } else {
                assert!(err.is_none(), "rank {r} was not targeted: {err:?}");
            }
        }
    }

    #[test]
    fn generative_roundtrip_under_permuted_partitions_and_lists() {
        use rand::rngs::StdRng;
        use rand::seq::SliceRandom;
        use rand::{Rng, SeedableRng};
        let mesh = HexMesh::build(3);
        let n = mesh.n_cells();
        const NAMES: [&str; 4] = ["w", "x", "y", "z"];
        fn truth(seed: u64, v: usize, c: usize, k: usize) -> f64 {
            (seed + 1) as f64 * 1.0e7 + (v * 100_000 + c * 10 + k) as f64
        }
        for seed in 0..6u64 {
            let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ seed);
            let parts = rng.gen_range(2usize..7);
            let iters = rng.gen_range(0usize..4);
            let partition = Partition::build(&mesh, parts, iters);
            let layout = HaloLayout::build(&mesh, &partition, 1);
            let n_vars = rng.gen_range(1usize..5);
            let nlev: Vec<usize> = (0..n_vars).map(|_| rng.gen_range(1usize..5)).collect();
            // Every rank registers in the same permuted order; unpack must
            // still land each variable's halos in the right field.
            let mut order: Vec<usize> = (0..n_vars).collect();
            order.shuffle(&mut rng);
            let (checked, _) = run_world(parts, |mut ctx| {
                let locale = &layout.locales[ctx.rank];
                let mut fields: Vec<Vec<f64>> =
                    nlev.iter().map(|&l| vec![f64::NAN; n * l]).collect();
                for &c in &locale.owned_cells {
                    for (v, field) in fields.iter_mut().enumerate() {
                        for k in 0..nlev[v] {
                            field[c as usize * nlev[v] + k] = truth(seed, v, c as usize, k);
                        }
                    }
                }
                {
                    let mut refs: Vec<Option<&mut Vec<f64>>> =
                        fields.iter_mut().map(Some).collect();
                    let mut list = VarList::new();
                    for &v in &order {
                        // A shuffled permutation visits each index once; a
                        // buggy order generator would repeat one, and the
                        // second take() would find the slot empty.
                        let field = refs[v].take().unwrap_or_else(|| {
                            panic!(
                                "seed {seed}: registration order {order:?} repeats variable \
                                 {:?} — each field can be pushed to the gather list only once",
                                NAMES[v]
                            )
                        });
                        list.push(NAMES[v], nlev[v], field);
                    }
                    exchange_gathered(&mut ctx, locale, &mut list, 100 + seed as u32)
                        .expect("agreeing permuted lists must exchange cleanly");
                }
                let mut checked = 0usize;
                for (_, cells) in &locale.recv {
                    for &c in cells {
                        for (v, field) in fields.iter().enumerate() {
                            for k in 0..nlev[v] {
                                assert_eq!(
                                    field[c as usize * nlev[v] + k],
                                    truth(seed, v, c as usize, k),
                                    "seed {seed}: halo value wrong for var {v}"
                                );
                                checked += 1;
                            }
                        }
                    }
                }
                checked
            });
            assert!(
                checked.iter().sum::<usize>() > 0,
                "seed {seed}: world had no halos to verify"
            );
        }
    }

    #[test]
    fn generative_truncated_buffers_error_deterministically() {
        let mesh = HexMesh::build(2);
        let n = mesh.n_cells();
        let mut total_errs = 0usize;
        for seed in 0..8u64 {
            let parts = 3 + (seed as usize % 3);
            let partition = Partition::build(&mesh, parts, 2);
            let layout = HaloLayout::build(&mesh, &partition, 1);
            let plan = FaultPlan::new(seed).with_rate(FaultSite::HaloExchange, 0.4);
            let storm = |plan: &FaultPlan| {
                let (results, _) = run_world(parts, |mut ctx| {
                    let metrics = sunway_sim::Metrics::default();
                    let locale = &layout.locales[ctx.rank];
                    let mut f0 = vec![1.0f64; n * 2];
                    let mut list = VarList::new();
                    list.push("a", 2, &mut f0);
                    let res =
                        exchange_gathered_chaos(&mut ctx, locale, &mut list, 5, &metrics, plan);
                    (res.err(), metrics.counter("fault.injected"))
                });
                results
            };
            let first = storm(&plan);
            let second = storm(&plan);
            assert_eq!(
                first, second,
                "seed {seed}: fault schedule must not depend on thread timing"
            );
            for (rank, (err, injected)) in first.iter().enumerate() {
                match err {
                    None => assert_eq!(
                        *injected, 0,
                        "seed {seed} rank {rank}: injection must surface as an error"
                    ),
                    Some(e) => {
                        total_errs += 1;
                        assert_eq!(e.rank, rank);
                        assert_eq!(
                            e.got_values,
                            e.expected_values - 1,
                            "seed {seed}: truncation drops exactly one value"
                        );
                        assert!(*injected >= 1);
                    }
                }
            }
        }
        assert!(
            total_errs > 0,
            "a 40% truncation rate over 8 worlds must fire at least once"
        );
    }

    #[test]
    fn generative_list_disagreement_is_caught_by_every_involved_rank() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mesh = HexMesh::build(2);
        let n = mesh.n_cells();
        for seed in 0..6u64 {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37));
            let parts = rng.gen_range(2usize..6);
            let culprit = rng.gen_range(0usize..parts);
            let extra_nlev = rng.gen_range(1usize..4);
            let partition = Partition::build(&mesh, parts, 2);
            let layout = HaloLayout::build(&mesh, &partition, 1);
            let (results, _) = run_world(parts, |mut ctx| {
                let locale = &layout.locales[ctx.rank];
                let mut f0 = vec![0.0f64; n * 2];
                let mut f1 = vec![0.0f64; n * extra_nlev];
                let mut list = VarList::new();
                list.push("a", 2, &mut f0);
                if ctx.rank == culprit {
                    list.push("b", extra_nlev, &mut f1);
                }
                exchange_gathered(&mut ctx, locale, &mut list, 9).err()
            });
            for (rank, err) in results.iter().enumerate() {
                let recv_from: Vec<usize> =
                    layout.locales[rank].recv.iter().map(|&(s, _)| s).collect();
                if rank == culprit && !recv_from.is_empty() {
                    let e = err.clone().expect("culprit expects more values than sent");
                    assert_eq!(e.values_per_cell, 2 + extra_nlev, "seed {seed}");
                } else if recv_from.contains(&culprit) {
                    // An earlier neighbour's message is clean, so the error —
                    // when it comes — must blame the culprit.
                    let e = err.clone().expect("culprit's neighbours must detect");
                    assert_eq!(e.src, culprit, "seed {seed}");
                    assert_eq!(e.got_values, e.halo_cells * (2 + extra_nlev));
                } else {
                    assert!(err.is_none(), "seed {seed} rank {rank}: {err:?}");
                }
            }
        }
    }
}
