//! Gathered halo exchange (§3.1.3): "To refine the granularity of data
//! exchange and minimize inter-process communications, a linked list is
//! utilized to gather variables for exchange, and a single call to the
//! communication interface efficiently completes the data exchange for all
//! listed variables."
//!
//! [`VarList`] is the Rust rendering of that linked list: solvers register
//! every field that needs fresh halos, then one [`exchange_gathered`] call
//! packs all of them into a single message per neighbour.

use crate::comm::RankCtx;
use grist_mesh::RankLocale;

/// A registered exchange variable: a full-size (global-cell-indexed) field
/// with `nlev` values per cell, of which only the owned cells are valid
/// before the exchange.
pub struct ExchangeVar<'a> {
    pub name: &'static str,
    pub nlev: usize,
    pub data: &'a mut [f64],
}

/// The gather list of variables for one exchange round.
#[derive(Default)]
pub struct VarList<'a> {
    vars: Vec<ExchangeVar<'a>>,
}

impl<'a> VarList<'a> {
    pub fn new() -> Self {
        VarList { vars: Vec::new() }
    }

    /// Append a variable (the "linked list" registration).
    pub fn push(&mut self, name: &'static str, nlev: usize, data: &'a mut [f64]) {
        self.vars.push(ExchangeVar { name, nlev, data });
    }

    pub fn len(&self) -> usize {
        self.vars.len()
    }

    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Values per cell across all listed variables.
    pub fn values_per_cell(&self) -> usize {
        self.vars.iter().map(|v| v.nlev).sum()
    }
}

/// One gathered halo exchange: a single send per neighbour carrying every
/// listed variable, and a matching unpack of the received halos.
pub fn exchange_gathered(ctx: &mut RankCtx, locale: &RankLocale, list: &mut VarList<'_>, tag: u32) {
    let per_cell = list.values_per_cell();
    // Pack & send: one message per destination rank.
    for (dest, cells) in &locale.send {
        let mut buf = Vec::with_capacity(cells.len() * per_cell);
        for &c in cells {
            for var in &list.vars {
                let base = c as usize * var.nlev;
                buf.extend_from_slice(&var.data[base..base + var.nlev]);
            }
        }
        ctx.send(*dest, tag, buf);
    }
    // Receive & unpack in the mirrored order.
    for (src, cells) in &locale.recv {
        let buf = ctx.recv(*src, tag);
        assert_eq!(
            buf.len(),
            cells.len() * per_cell,
            "halo message size mismatch"
        );
        let mut pos = 0;
        for &c in cells {
            for var in &mut list.vars {
                let base = c as usize * var.nlev;
                var.data[base..base + var.nlev].copy_from_slice(&buf[pos..pos + var.nlev]);
                pos += var.nlev;
            }
        }
    }
}

/// The naive alternative (one message per variable per neighbour) for the
/// gathered-exchange ablation bench.
pub fn exchange_per_variable(
    ctx: &mut RankCtx,
    locale: &RankLocale,
    list: &mut VarList<'_>,
    tag: u32,
) {
    for vi in 0..list.vars.len() {
        let t = tag + vi as u32;
        for (dest, cells) in &locale.send {
            let var = &list.vars[vi];
            let mut buf = Vec::with_capacity(cells.len() * var.nlev);
            for &c in cells {
                let base = c as usize * var.nlev;
                buf.extend_from_slice(&var.data[base..base + var.nlev]);
            }
            ctx.send(*dest, t, buf);
        }
        for (src, cells) in &locale.recv {
            let buf = ctx.recv(*src, t);
            let var = &mut list.vars[vi];
            let mut pos = 0;
            for &c in cells {
                let base = c as usize * var.nlev;
                var.data[base..base + var.nlev].copy_from_slice(&buf[pos..pos + var.nlev]);
                pos += var.nlev;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::run_world;
    use grist_mesh::{HaloLayout, HexMesh, Partition};
    use std::sync::atomic::Ordering;

    /// Each rank fills its owned cells with `f(cell, lev, var)`; after the
    /// exchange every halo cell must match the owner's values.
    fn halo_roundtrip(gathered: bool) -> (u64, u64) {
        let mesh = HexMesh::build(3);
        let parts = 5;
        let partition = Partition::build(&mesh, parts, 2);
        let layout = HaloLayout::build(&mesh, &partition, 1);
        let n = mesh.n_cells();
        let nlev = [3usize, 1, 2];
        let truth = |v: usize, c: usize, k: usize| (v * 1000 + c * 10 + k) as f64;

        let (results, stats) = run_world(parts, |mut ctx| {
            let locale = &layout.locales[ctx.rank];
            let mut fields: Vec<Vec<f64>> = nlev.iter().map(|&l| vec![f64::NAN; n * l]).collect();
            for &c in &locale.owned_cells {
                for (v, field) in fields.iter_mut().enumerate() {
                    for k in 0..nlev[v] {
                        field[c as usize * nlev[v] + k] = truth(v, c as usize, k);
                    }
                }
            }
            {
                let mut list = VarList::new();
                let mut iter = fields.iter_mut();
                let f0 = iter.next().unwrap();
                let f1 = iter.next().unwrap();
                let f2 = iter.next().unwrap();
                list.push("a", nlev[0], f0);
                list.push("b", nlev[1], f1);
                list.push("c", nlev[2], f2);
                if gathered {
                    exchange_gathered(&mut ctx, locale, &mut list, 10);
                } else {
                    exchange_per_variable(&mut ctx, locale, &mut list, 10);
                }
            }
            // Verify all halo cells.
            for (_, cells) in &locale.recv {
                for &c in cells {
                    for (v, field) in fields.iter().enumerate() {
                        for k in 0..nlev[v] {
                            let got = field[c as usize * nlev[v] + k];
                            assert_eq!(got, truth(v, c as usize, k), "halo value wrong");
                        }
                    }
                }
            }
            0u8
        });
        assert_eq!(results.len(), parts);
        (
            stats.messages.load(Ordering::Relaxed),
            stats.bytes.load(Ordering::Relaxed),
        )
    }

    #[test]
    fn gathered_exchange_fills_halos_correctly() {
        halo_roundtrip(true);
    }

    #[test]
    fn per_variable_exchange_fills_halos_correctly() {
        halo_roundtrip(false);
    }

    #[test]
    fn gathering_cuts_message_count_not_bytes() {
        // Allreduce-free comparison: 3 variables gathered into 1 message per
        // neighbour must send 3x fewer messages but identical payload bytes.
        let (m_gather, b_gather) = halo_roundtrip(true);
        let (m_naive, b_naive) = halo_roundtrip(false);
        assert_eq!(b_gather, b_naive, "payload volume must be identical");
        assert_eq!(m_naive, 3 * m_gather, "3 vars should gather 3:1");
    }
}
