//! Grouped parallel I/O (§3.1.3): "a grouped parallel I/O strategy was
//! designed and implemented to ensure efficient data I/O across a large
//! number of MPI processes."
//!
//! Ranks are organized into groups of `group_size`; members ship their
//! contribution to the group leader, which performs one aggregated write.
//! With half a million processes this reduces the number of concurrent
//! writers by the group factor — the difference between a functioning
//! parallel filesystem and a metadata meltdown.

use crate::comm::RankCtx;

/// Group geometry of a rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoGroup {
    pub leader: usize,
    pub first: usize,
    pub size: usize,
}

/// Compute the I/O group of `rank` for a world of `n_ranks` split into
/// groups of `group_size` (the last group may be short).
pub fn io_group(rank: usize, n_ranks: usize, group_size: usize) -> IoGroup {
    assert!(group_size >= 1);
    let first = rank / group_size * group_size;
    let size = group_size.min(n_ranks - first);
    IoGroup {
        leader: first,
        first,
        size,
    }
}

/// One grouped collective write. Every rank passes its local `data` (tagged
/// with its global offset); leaders return the assembled, offset-ordered
/// record to hand to the I/O backend, members return `None`.
pub fn grouped_write(
    ctx: &mut RankCtx,
    group_size: usize,
    offset: u64,
    data: &[f64],
    tag: u32,
) -> Option<Vec<(u64, Vec<f64>)>> {
    let g = io_group(ctx.rank, ctx.n_ranks, group_size);
    if ctx.rank == g.leader {
        let mut records: Vec<(u64, Vec<f64>)> = Vec::with_capacity(g.size);
        records.push((offset, data.to_vec()));
        for member in (g.first + 1)..(g.first + g.size) {
            let mut msg = ctx.recv(member, tag);
            let off = msg.remove(0) as u64;
            records.push((off, msg));
        }
        records.sort_by_key(|&(off, _)| off);
        Some(records)
    } else {
        let mut msg = Vec::with_capacity(data.len() + 1);
        msg.push(offset as f64);
        msg.extend_from_slice(data);
        ctx.send(g.leader, tag, msg);
        None
    }
}

/// Number of concurrent writers a grouped strategy produces.
pub fn n_writers(n_ranks: usize, group_size: usize) -> usize {
    n_ranks.div_ceil(group_size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::run_world;
    use std::sync::atomic::Ordering;

    #[test]
    fn group_geometry() {
        assert_eq!(
            io_group(0, 10, 4),
            IoGroup {
                leader: 0,
                first: 0,
                size: 4
            }
        );
        assert_eq!(
            io_group(5, 10, 4),
            IoGroup {
                leader: 4,
                first: 4,
                size: 4
            }
        );
        assert_eq!(
            io_group(9, 10, 4),
            IoGroup {
                leader: 8,
                first: 8,
                size: 2
            }
        );
    }

    #[test]
    fn writer_count_shrinks_by_the_group_factor() {
        assert_eq!(n_writers(524_288, 64), 8_192);
        assert_eq!(n_writers(10, 4), 3);
        assert_eq!(n_writers(8, 1), 8);
    }

    #[test]
    fn grouped_write_assembles_ordered_records() {
        let n = 9;
        let gsz = 3;
        let (results, _) = run_world(n, |mut ctx| {
            let data = vec![ctx.rank as f64; 4];
            let offset = (ctx.rank * 4) as u64;
            grouped_write(&mut ctx, gsz, offset, &data, 77)
        });
        let mut leaders = 0;
        for (rank, res) in results.iter().enumerate() {
            match res {
                Some(records) => {
                    leaders += 1;
                    assert_eq!(rank % gsz, 0, "only leaders return records");
                    assert_eq!(records.len(), gsz);
                    // Records sorted by offset, contents match the writer.
                    for w in records.windows(2) {
                        assert!(w[0].0 < w[1].0);
                    }
                    for &(off, ref v) in records {
                        let writer = (off / 4) as f64;
                        assert!(v.iter().all(|&x| x == writer));
                    }
                }
                None => assert_ne!(rank % gsz, 0),
            }
        }
        assert_eq!(leaders, 3);
    }

    #[test]
    fn grouped_write_reduces_message_concentration() {
        // With grouping, the comm layer sees (n - leaders) messages — one
        // per member — rather than n separate filesystem writers.
        let n = 8;
        let (_, stats) = run_world(n, |mut ctx| {
            let off = ctx.rank as u64;
            grouped_write(&mut ctx, 4, off, &[1.0, 2.0], 5)
        });
        assert_eq!(stats.messages.load(Ordering::Relaxed) as usize, n - 2);
    }
}
