//! A minimal, dependency-free stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no network access to a crates
//! registry, so external dependencies cannot resolve. This crate keeps the
//! `use rand::...` call sites across the workspace compiling by providing the
//! small API surface they actually use:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256** generator
//! * [`SeedableRng::seed_from_u64`] — SplitMix64 seed expansion
//! * [`Rng::gen_range`] — uniform sampling from half-open ranges
//!   (`f32`, `f64`, and the common integer types)
//! * [`seq::SliceRandom::shuffle`] — Fisher–Yates shuffle
//!
//! It makes no attempt to be stream-compatible with the real `rand 0.8`;
//! everything in the workspace that consumes randomness only relies on
//! determinism for a fixed seed, which this provides.

use std::ops::Range;

/// Core random source: everything is derived from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform f64 in `[0, 1)` using the top 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform f32 in `[0, 1)` using the top 24 bits.
    fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types that can be sampled uniformly from a `Range<T>`.
pub trait SampleUniform: Sized {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: &Range<Self>) -> Self;
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: &Range<Self>) -> Self {
        range.start + (range.end - range.start) * rng.next_f64()
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: &Range<Self>) -> Self {
        range.start + (range.end - range.start) * rng.next_f32()
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: &Range<Self>) -> Self {
                let span = (range.end as i128 - range.start as i128) as u128;
                assert!(span > 0, "gen_range called with an empty range");
                // Multiply-shift rejection-free mapping; bias is < 2^-64 and
                // irrelevant for the simulation workloads using this shim.
                let r = rng.next_u64() as u128;
                let v = (r * span) >> 64;
                (range.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u64, u32, i64, i32);

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng: RngCore {
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, &range)
    }

    /// A uniform value in `[0, 1)` (f64) — parity with `rand::Rng::gen`.
    fn gen(&mut self) -> f64 {
        self.next_f64()
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator, seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// The subset of `rand::seq::SliceRandom` the workspace uses.
    pub trait SliceRandom {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0usize..i + 1);
                self.swap(i, j);
            }
        }
    }
}

/// A generator seeded from process entropy (address-space layout + time is
/// unavailable without std::time in const contexts; we use a fixed-seed
/// fallback mixed with a monotonically bumped counter so separate calls give
/// distinct streams while staying reproducible within a process).
pub fn thread_rng() -> rngs::StdRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0x5eed);
    SeedableRng::seed_from_u64(COUNTER.fetch_add(0x9e37_79b9, Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0..1.0), b.gen_range(0.0..1.0));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-3.0..5.0);
            assert!((-3.0..5.0).contains(&x));
            let y: f32 = rng.gen_range(-0.5f32..0.5f32);
            assert!((-0.5..0.5).contains(&y));
            let k: usize = rng.gen_range(0usize..17);
            assert!(k < 17);
            let s: i32 = rng.gen_range(-4i32..4);
            assert!((-4..4).contains(&s));
        }
    }

    #[test]
    fn values_spread_over_the_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lo = 0;
        let mut hi = 0;
        for _ in 0..1000 {
            if rng.gen_range(0.0..1.0) < 0.5 {
                lo += 1;
            } else {
                hi += 1;
            }
        }
        assert!(lo > 350 && hi > 350, "lo={lo} hi={hi}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left slice sorted");
    }
}
