//! Lock-free log-bucketed streaming histograms (HDR-style).
//!
//! The registry's counters answer "how much in total"; the tracer answers
//! "when". Neither answers the question that localizes a serving or scaling
//! pathology: *what does the distribution look like while the system runs* —
//! the p99 that an SLO gates on, the long tail a mean hides. A
//! [`Histogram`] records `u64` values (nanoseconds, batch sizes, …) into a
//! fixed array of atomic buckets, so recording is wait-free (a handful of
//! relaxed atomic RMWs, no lock, no allocation) and any thread can read a
//! consistent-enough [`HistSnapshot`] at any time.
//!
//! # Bucket layout (`log16-v1`, pinned)
//!
//! Values `0..16` get exact unit buckets; every larger value lands in one of
//! 16 sub-buckets per power of two (4 bits of mantissa kept), giving a
//! relative quantization error below 1/16 = 6.25% across the whole `u64`
//! range with [`HIST_BUCKETS`] = 976 buckets total:
//!
//! ```text
//! index(v) = v                                          v < 16
//!          = (top - 3)·16 + ((v >> (top - 4)) & 15)     otherwise,
//!            where top = 63 - clz(v)  (bit index of the leading one)
//! ```
//!
//! The layout is part of the `grist-obs-v1` dashboard contract: bucket
//! indices serialize into JSON, and every percentile a report prints must be
//! recomputable *bitwise* from those counts alone (see
//! [`HistSnapshot::percentile`], which is a pure function of the counts).
//!
//! # Percentile convention
//!
//! [`HistSnapshot::percentile`] uses the same rank convention as the
//! sort-and-index estimator it replaced in `bench::serve`:
//! `rank = round(p · (n − 1))` (0-based), returning the **lower bound** of
//! the bucket containing the rank-th smallest recorded value. On a sample
//! quantized to bucket lower bounds the two methods agree exactly; on raw
//! samples they differ by at most one bucket width (< 6.25% relative).

use std::sync::atomic::{AtomicU64, Ordering};
use sunway_sim::Json;

/// Mantissa bits kept per value (sub-buckets per octave = 2^4 = 16).
pub const HIST_SUB_BITS: u32 = 4;
/// Sub-buckets per power of two.
pub const HIST_SUB: usize = 1 << HIST_SUB_BITS;
/// Total bucket count for the full `u64` domain under the `log16-v1` layout.
pub const HIST_BUCKETS: usize = (64 - HIST_SUB_BITS as usize + 1) * HIST_SUB;
/// The layout tag serialized with every snapshot.
pub const HIST_LAYOUT: &str = "log16-v1";

/// Bucket index of a value under the pinned `log16-v1` layout.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < HIST_SUB as u64 {
        v as usize
    } else {
        let top = 63 - v.leading_zeros();
        let sub = ((v >> (top - HIST_SUB_BITS)) & (HIST_SUB as u64 - 1)) as usize;
        (top - HIST_SUB_BITS + 1) as usize * HIST_SUB + sub
    }
}

/// Inclusive lower bound of bucket `i` (the percentile representative).
#[inline]
pub fn bucket_lo(i: usize) -> u64 {
    debug_assert!(i < HIST_BUCKETS);
    if i < HIST_SUB {
        i as u64
    } else {
        let group = (i / HIST_SUB) as u32; // >= 1
        let sub = (i % HIST_SUB) as u64;
        let top = group + HIST_SUB_BITS - 1;
        (HIST_SUB as u64 + sub) << (top - HIST_SUB_BITS)
    }
}

/// Inclusive upper bound of bucket `i`.
#[inline]
pub fn bucket_hi(i: usize) -> u64 {
    if i + 1 < HIST_BUCKETS {
        bucket_lo(i + 1) - 1
    } else {
        u64::MAX
    }
}

/// A wait-free streaming histogram over `u64` values.
///
/// `record` costs a few relaxed atomic RMWs and never blocks; `snapshot`
/// reads every bucket without stopping writers (a snapshot taken mid-record
/// may be ahead/behind by in-flight records on individual fields, but any
/// snapshot taken after writers quiesce is exact).
#[derive(Debug)]
pub struct Histogram {
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    min: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
        }
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one value. Wait-free; callable from any thread.
    #[inline]
    pub fn record(&self, v: u64) {
        self.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
    }

    /// Values recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Freeze the current bucket counts and scalar stats.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
        }
    }
}

/// A frozen histogram: bucket counts plus exact count/sum/max/min.
/// Mergeable ([`Self::merge`]) and JSON round-trippable
/// ([`Self::to_json`]/[`Self::from_json`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// One count per `log16-v1` bucket (length [`HIST_BUCKETS`]).
    pub counts: Vec<u64>,
    pub count: u64,
    pub sum: u64,
    /// Largest value recorded, tracked exactly (0 when empty).
    pub max: u64,
    /// Smallest value recorded, tracked exactly (`u64::MAX` when empty).
    pub min: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot {
            counts: vec![0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
            min: u64::MAX,
        }
    }
}

impl HistSnapshot {
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of the recorded values (0 when empty). Exact: the sum is
    /// accumulated from raw values, not bucket representatives.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The p-th percentile (p in `[0, 1]`) as the lower bound of the bucket
    /// holding the rank-th smallest value, `rank = round(p·(n−1))`.
    ///
    /// A **pure function of the bucket counts**: re-reading the counts from
    /// a serialized snapshot reproduces every reported percentile bitwise.
    /// Quantization error is below 6.25% of the true sample percentile.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (p.clamp(0.0, 1.0) * (self.count - 1) as f64).round() as u64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum > rank {
                return bucket_lo(i);
            }
        }
        // Unreachable when count equals the bucket total; safe fallback for
        // a torn concurrent snapshot where count ran ahead of the buckets.
        bucket_lo(
            self.counts
                .iter()
                .rposition(|&c| c > 0)
                .unwrap_or(HIST_BUCKETS - 1),
        )
    }

    /// [`Self::percentile`] converted from nanoseconds to milliseconds.
    pub fn percentile_ms(&self, p: f64) -> f64 {
        self.percentile(p) as f64 / 1e6
    }

    /// Element-wise sum of two snapshots: the histogram of the union of the
    /// two recorded populations (`merge(a, b) == snapshot(records_a ∪
    /// records_b)` exactly, bucket by bucket).
    pub fn merge(&self, other: &HistSnapshot) -> HistSnapshot {
        HistSnapshot {
            counts: self
                .counts
                .iter()
                .zip(&other.counts)
                .map(|(&a, &b)| a + b)
                .collect(),
            count: self.count + other.count,
            sum: self.sum + other.sum,
            max: self.max.max(other.max),
            min: self.min.min(other.min),
        }
    }

    /// Serialize with sparse bucket encoding: only non-zero buckets appear,
    /// keyed by decimal index. `min` is omitted when empty (it is the
    /// sentinel `u64::MAX`, which a JSON number cannot hold exactly).
    pub fn to_json(&self) -> Json {
        let buckets: Vec<(String, Json)> = self
            .counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (i.to_string(), Json::Num(c as f64)))
            .collect();
        let mut fields = vec![
            ("layout".into(), Json::Str(HIST_LAYOUT.into())),
            ("count".into(), Json::Num(self.count as f64)),
            ("sum".into(), Json::Num(self.sum as f64)),
            ("max".into(), Json::Num(self.max as f64)),
        ];
        if self.count > 0 {
            fields.push(("min".into(), Json::Num(self.min as f64)));
        }
        fields.push(("buckets".into(), Json::Obj(buckets)));
        Json::Obj(fields)
    }

    /// Rebuild from [`Self::to_json`] output. Rejects unknown layouts and
    /// out-of-range bucket indices.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let layout = v
            .get("layout")
            .and_then(Json::as_str)
            .ok_or("histogram: missing layout")?;
        if layout != HIST_LAYOUT {
            return Err(format!(
                "histogram: layout {layout:?} is not {HIST_LAYOUT:?}"
            ));
        }
        let num = |k: &str| -> Result<u64, String> {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("histogram: bad or missing field {k:?}"))
        };
        let mut snap = HistSnapshot {
            count: num("count")?,
            sum: num("sum")?,
            max: num("max")?,
            ..HistSnapshot::default()
        };
        if snap.count > 0 {
            snap.min = num("min")?;
        }
        let buckets = v
            .get("buckets")
            .and_then(Json::as_obj)
            .ok_or("histogram: missing buckets object")?;
        for (key, val) in buckets {
            let i: usize = key
                .parse()
                .map_err(|_| format!("histogram: bad bucket index {key:?}"))?;
            if i >= HIST_BUCKETS {
                return Err(format!("histogram: bucket index {i} out of range"));
            }
            let c = val
                .as_u64()
                .ok_or_else(|| format!("histogram: bucket {i}: not a count"))?;
            snap.counts[i] = c;
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_pinned() {
        // The log16-v1 contract: these mappings may never change without a
        // new layout tag (serialized snapshots would silently re-bucket).
        assert_eq!(HIST_BUCKETS, 976);
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize, "unit bucket {v}");
        }
        assert_eq!(bucket_index(16), 16);
        assert_eq!(bucket_index(31), 31);
        assert_eq!(bucket_index(32), 32);
        assert_eq!(bucket_index(33), 32, "sub-bucket width 2 at 32..64");
        assert_eq!(bucket_index(34), 33);
        assert_eq!(bucket_index(1_000), bucket_index(1_023));
        assert_ne!(bucket_index(1_023), bucket_index(1_024));
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_tile_the_u64_domain() {
        // Lower bounds are strictly increasing, every value lands in the
        // bucket whose [lo, hi] range contains it, and ranges tile.
        for i in 1..HIST_BUCKETS {
            assert!(bucket_lo(i) > bucket_lo(i - 1), "bucket {i} not monotone");
            assert_eq!(bucket_hi(i - 1), bucket_lo(i) - 1, "gap before bucket {i}");
        }
        assert_eq!(bucket_lo(0), 0);
        assert_eq!(bucket_hi(HIST_BUCKETS - 1), u64::MAX);
        for v in [0, 1, 15, 16, 17, 100, 999, 65_535, 1 << 40, u64::MAX] {
            let i = bucket_index(v);
            assert!(
                bucket_lo(i) <= v && v <= bucket_hi(i),
                "value {v} bucket {i}"
            );
        }
    }

    #[test]
    fn quantization_error_stays_below_one_sixteenth() {
        let mut v = 17u64;
        while v < u64::MAX / 3 {
            let lo = bucket_lo(bucket_index(v));
            assert!(lo <= v);
            let err = (v - lo) as f64 / v as f64;
            assert!(err < 1.0 / 16.0, "value {v}: error {err}");
            v = v * 3 + 1;
        }
    }

    #[test]
    fn percentiles_and_stats_from_a_known_population() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 5050);
        assert_eq!(s.max, 100);
        assert_eq!(s.min, 1);
        assert_eq!(s.mean(), 50.5);
        // rank(0.5) = round(0.5·99) = 50 (0-based) → value 51, bucket lo 48.
        assert_eq!(s.percentile(0.50), bucket_lo(bucket_index(51)));
        assert_eq!(s.percentile(0.0), 1);
        assert_eq!(s.percentile(1.0), bucket_lo(bucket_index(100)));
        // Small exact-bucket population: percentiles are exact.
        let h2 = Histogram::new();
        for v in [2u64, 4, 6, 8, 10] {
            h2.record(v);
        }
        assert_eq!(h2.snapshot().percentile(0.5), 6);
    }

    #[test]
    fn empty_snapshot_is_well_defined() {
        let s = Histogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.percentile(0.99), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max, 0);
        let back = HistSnapshot::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let (a, b, c) = (Histogram::new(), Histogram::new(), Histogram::new());
        for i in 0..500u64 {
            let v = i * i % 7919;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            c.record(v);
        }
        let merged = a.snapshot().merge(&b.snapshot());
        assert_eq!(merged, c.snapshot(), "merge must equal combined recording");
    }

    #[test]
    fn json_round_trip_is_exact_and_percentiles_reproduce_bitwise() {
        let h = Histogram::new();
        let mut x = 0x2545_f491_4f6c_dd1du64;
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            h.record(x % 50_000_000); // ns-scale values up to 50 ms
        }
        let s = h.snapshot();
        let back = HistSnapshot::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
        for p in [0.5, 0.9, 0.99, 0.999] {
            assert_eq!(back.percentile(p), s.percentile(p));
            assert_eq!(
                back.percentile_ms(p).to_bits(),
                s.percentile_ms(p).to_bits(),
                "p{p} must reproduce bitwise from serialized bucket counts"
            );
        }
    }

    #[test]
    fn from_json_rejects_foreign_layouts_and_bad_buckets() {
        let s = Histogram::new().snapshot();
        let mut doc = s.to_json();
        if let Json::Obj(fields) = &mut doc {
            fields[0].1 = Json::Str("log8-v0".into());
        }
        assert!(HistSnapshot::from_json(&doc)
            .unwrap_err()
            .contains("layout"));
        let bad = Json::Obj(vec![
            ("layout".into(), Json::Str(HIST_LAYOUT.into())),
            ("count".into(), Json::Num(1.0)),
            ("sum".into(), Json::Num(1.0)),
            ("max".into(), Json::Num(1.0)),
            ("min".into(), Json::Num(1.0)),
            (
                "buckets".into(),
                Json::Obj(vec![("99999".into(), Json::Num(1.0))]),
            ),
        ]);
        assert!(HistSnapshot::from_json(&bad)
            .unwrap_err()
            .contains("out of range"));
    }
}
