//! The telemetry plane: one shared hub tying histograms, trace-ID minting,
//! the health watch, and the SLO policy together.
//!
//! An [`ObsPlane`] is `Arc`-shared between the serving front-end (latency,
//! batch size, SLO evaluation), the simulation loop (epoch advance, health
//! samples), and the reporting bin (dashboard export). Every recording entry
//! point starts with a single relaxed atomic load of the `enabled` flag —
//! the disabled path is the same "one predictable branch" contract the
//! tracer pins, and `bench::obs` measures it against the serve p50 (gated
//! ≤ 1%).

use crate::hist::{HistSnapshot, Histogram};
use crate::slo::{SloPolicy, SloStatus};
use crate::watch::{Alert, HealthSample, HealthWatch, WatchThresholds};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;
use sunway_sim::{EventKind, Json, Metrics, TraceSnapshot};

/// Dashboard schema tag emitted by [`ObsPlane::dashboard`].
pub const DASHBOARD_VERSION: &str = "grist-obs-v1";

/// The live telemetry hub. Cheap to share (`Arc<ObsPlane>`), wait-free to
/// record into, safe to snapshot from any thread at any time.
#[derive(Debug)]
pub struct ObsPlane {
    enabled: AtomicBool,
    next_trace_id: AtomicU64,
    /// Per-query serve latency, nanoseconds.
    serve_latency: Histogram,
    /// Per-dispatch batch size, queries.
    batch_size: Histogram,
    /// Per-epoch model advance wall time, nanoseconds.
    epoch_advance: Histogram,
    /// Per-event halo-wait stall, nanoseconds (fed from trace snapshots).
    halo_wait: Histogram,
    watch: HealthWatch,
    policy: SloPolicy,
    started: Instant,
    slo_evals: AtomicU64,
    slo_breaches: AtomicU64,
    last_status: Mutex<Option<SloStatus>>,
}

impl Default for ObsPlane {
    fn default() -> Self {
        Self::new(SloPolicy::default(), WatchThresholds::default())
    }
}

impl ObsPlane {
    /// An enabled plane with the given policy and health thresholds,
    /// keeping the last 4096 health samples.
    pub fn new(policy: SloPolicy, thresholds: WatchThresholds) -> Self {
        ObsPlane {
            enabled: AtomicBool::new(true),
            next_trace_id: AtomicU64::new(1),
            serve_latency: Histogram::new(),
            batch_size: Histogram::new(),
            epoch_advance: Histogram::new(),
            halo_wait: Histogram::new(),
            watch: HealthWatch::new(thresholds, 4096),
            policy,
            started: Instant::now(),
            slo_evals: AtomicU64::new(0),
            slo_breaches: AtomicU64::new(0),
            last_status: Mutex::new(None),
        }
    }

    /// A plane that records nothing until [`Self::set_enabled`] — the
    /// configuration whose per-call cost the overhead gate measures.
    pub fn disabled() -> Self {
        let p = Self::default();
        p.enabled.store(false, Ordering::Relaxed);
        p
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    pub fn policy(&self) -> SloPolicy {
        self.policy
    }

    pub fn watch(&self) -> &HealthWatch {
        &self.watch
    }

    /// Mint a request-scoped trace ID (monotone from 1). Returns 0 — the
    /// reserved "untraced" ID — when the plane is disabled, so flow events
    /// are suppressed end to end at one atomic load of cost.
    #[inline]
    pub fn mint_trace_id(&self) -> u64 {
        if !self.enabled.load(Ordering::Relaxed) {
            return 0;
        }
        self.next_trace_id.fetch_add(1, Ordering::Relaxed)
    }

    #[inline]
    pub fn record_serve_latency_ns(&self, ns: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.serve_latency.record(ns);
        }
    }

    #[inline]
    pub fn record_batch_size(&self, queries: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.batch_size.record(queries);
        }
    }

    #[inline]
    pub fn record_epoch_advance_ns(&self, ns: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.epoch_advance.record(ns);
        }
    }

    #[inline]
    pub fn record_halo_wait_ns(&self, ns: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.halo_wait.record(ns);
        }
    }

    /// Ingest one epoch's physics diagnostics; returns newly raised alerts.
    pub fn ingest_health(&self, sample: HealthSample) -> Vec<Alert> {
        if !self.enabled.load(Ordering::Relaxed) {
            return Vec::new();
        }
        self.watch.ingest(sample)
    }

    /// Feed every `HaloWait` stall in a trace snapshot into the halo-wait
    /// histogram (the tracer owns the timing; the plane owns the
    /// distribution).
    pub fn absorb_trace(&self, snap: &TraceSnapshot) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        for lane in &snap.lanes {
            for ev in &lane.events {
                if ev.kind == EventKind::HaloWait {
                    self.halo_wait.record(ev.dur_ns);
                }
            }
        }
    }

    pub fn serve_latency_snapshot(&self) -> HistSnapshot {
        self.serve_latency.snapshot()
    }

    pub fn batch_size_snapshot(&self) -> HistSnapshot {
        self.batch_size.snapshot()
    }

    pub fn epoch_advance_snapshot(&self) -> HistSnapshot {
        self.epoch_advance.snapshot()
    }

    pub fn halo_wait_snapshot(&self) -> HistSnapshot {
        self.halo_wait.snapshot()
    }

    /// Seconds since the plane was created — the qps window.
    pub fn window_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Evaluate the SLO policy against the current latency distribution and
    /// alert count. Called by the server after each batch and by
    /// `obs_report` at scenario end; every evaluation is tallied, breaches
    /// separately.
    pub fn evaluate_slo(&self) -> SloStatus {
        let status = self.policy.evaluate(
            &self.serve_latency.snapshot(),
            self.window_s(),
            self.watch.alert_count(),
        );
        self.slo_evals.fetch_add(1, Ordering::Relaxed);
        if !status.ok() {
            self.slo_breaches.fetch_add(1, Ordering::Relaxed);
        }
        *self.last_status.lock().expect("obs plane poisoned") = Some(status.clone());
        status
    }

    pub fn slo_evals(&self) -> u64 {
        self.slo_evals.load(Ordering::Relaxed)
    }

    pub fn slo_breaches(&self) -> u64 {
        self.slo_breaches.load(Ordering::Relaxed)
    }

    pub fn last_slo_status(&self) -> Option<SloStatus> {
        self.last_status.lock().expect("obs plane poisoned").clone()
    }

    /// Mirror the plane's state into a [`Metrics`] registry so alerts and
    /// SLO results ride along in `metrics_json()` next to kernels and
    /// counters. Counters are brought up to the plane's totals (monotone
    /// delta), gauges overwritten.
    pub fn export_metrics(&self, metrics: &Metrics) {
        let raise = |name: &str, target: u64| {
            let cur = metrics.counter(name);
            if target > cur {
                metrics.counter_add(name, target - cur);
            }
        };
        raise("obs.health.alerts", self.watch.alert_count());
        raise("obs.slo.evals", self.slo_evals());
        raise("obs.slo.breaches", self.slo_breaches());
        for alert in self.watch.alerts() {
            raise(&format!("obs.alert.{}", alert.kind.name()), {
                // per-kind count: recompute from the alert list
                self.watch
                    .alerts()
                    .iter()
                    .filter(|a| a.kind == alert.kind)
                    .count() as u64
            });
        }
        let lat = self.serve_latency.snapshot();
        if !lat.is_empty() {
            metrics.gauge_set("obs.serve.p50_ms", lat.percentile_ms(0.50));
            metrics.gauge_set("obs.serve.p99_ms", lat.percentile_ms(0.99));
            metrics.gauge_set("obs.serve.max_ms", lat.max as f64 / 1e6);
        }
        if let Some(status) = self.last_slo_status() {
            metrics.gauge_set("obs.slo.qps", status.qps);
        }
    }

    fn hist_json(snap: &HistSnapshot) -> Json {
        // Percentiles are included for human readers; the contract is that
        // each one is recomputable bitwise from `buckets` alone (checked by
        // obs_report's reproducibility gate).
        let mut doc = snap.to_json();
        if let Json::Obj(fields) = &mut doc {
            fields.push((
                "percentiles".into(),
                Json::Obj(vec![
                    ("p50".into(), Json::Num(snap.percentile(0.50) as f64)),
                    ("p90".into(), Json::Num(snap.percentile(0.90) as f64)),
                    ("p99".into(), Json::Num(snap.percentile(0.99) as f64)),
                ]),
            ));
        }
        doc
    }

    /// The machine-readable `grist-obs-v1` dashboard document.
    pub fn dashboard(&self) -> Json {
        Json::Obj(vec![
            ("version".into(), Json::Str(DASHBOARD_VERSION.into())),
            ("enabled".into(), Json::Bool(self.is_enabled())),
            ("window_s".into(), Json::Num(self.window_s())),
            (
                "trace_ids_minted".into(),
                Json::Num((self.next_trace_id.load(Ordering::Relaxed) - 1) as f64),
            ),
            (
                "histograms".into(),
                Json::Obj(vec![
                    (
                        "serve_latency_ns".into(),
                        Self::hist_json(&self.serve_latency.snapshot()),
                    ),
                    (
                        "batch_size".into(),
                        Self::hist_json(&self.batch_size.snapshot()),
                    ),
                    (
                        "epoch_advance_ns".into(),
                        Self::hist_json(&self.epoch_advance.snapshot()),
                    ),
                    (
                        "halo_wait_ns".into(),
                        Self::hist_json(&self.halo_wait.snapshot()),
                    ),
                ]),
            ),
            ("health".into(), self.watch.to_json()),
            (
                "slo".into(),
                Json::Obj(vec![
                    ("policy".into(), self.policy.to_json()),
                    ("evals".into(), Json::Num(self.slo_evals() as f64)),
                    ("breaches".into(), Json::Num(self.slo_breaches() as f64)),
                    (
                        "last".into(),
                        self.last_slo_status()
                            .map(|s| s.to_json())
                            .unwrap_or(Json::Null),
                    ),
                ]),
            ),
        ])
    }

    /// Human summary of the same state, Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("## Telemetry plane\n\n");
        out.push_str("| series | count | p50 | p90 | p99 | max |\n");
        out.push_str("|---|---|---|---|---|---|\n");
        type Fmt<'a> = &'a dyn Fn(u64) -> String;
        let ms = |ns: u64| format!("{:.3} ms", ns as f64 / 1e6);
        let rows: [(&str, HistSnapshot, Fmt); 4] = [
            ("serve latency", self.serve_latency.snapshot(), &ms),
            ("batch size", self.batch_size.snapshot(), &|v| v.to_string()),
            ("epoch advance", self.epoch_advance.snapshot(), &ms),
            ("halo wait", self.halo_wait.snapshot(), &ms),
        ];
        for (name, snap, fmt) in rows {
            if snap.is_empty() {
                out.push_str(&format!("| {name} | 0 | – | – | – | – |\n"));
            } else {
                out.push_str(&format!(
                    "| {name} | {} | {} | {} | {} | {} |\n",
                    snap.count,
                    fmt(snap.percentile(0.50)),
                    fmt(snap.percentile(0.90)),
                    fmt(snap.percentile(0.99)),
                    fmt(snap.max),
                ));
            }
        }
        let alerts = self.watch.alerts();
        out.push_str(&format!(
            "\n**Health**: {} samples, {} alert(s)\n",
            self.watch.ingested(),
            alerts.len()
        ));
        for a in &alerts {
            out.push_str(&format!(
                "- ⚠ `{}` at epoch {}: {:.6e} (threshold {:.6e})\n",
                a.kind.name(),
                a.epoch,
                a.value,
                a.threshold
            ));
        }
        match self.last_slo_status() {
            Some(s) if s.ok() => out.push_str(&format!(
                "\n**SLO**: OK — p99 {:.3} ms, {:.1} qps, {} alert(s), {} eval(s)\n",
                s.p99_ms,
                s.qps,
                s.alerts,
                self.slo_evals()
            )),
            Some(s) => {
                let terms: Vec<&str> = s.violated.iter().map(|t| t.name()).collect();
                out.push_str(&format!(
                    "\n**SLO**: BREACHED ({}) — p99 {:.3} ms, {:.1} qps, {} alert(s)\n",
                    terms.join(", "),
                    s.p99_ms,
                    s.qps,
                    s.alerts
                ));
            }
            None => out.push_str("\n**SLO**: not yet evaluated\n"),
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plane_records_nothing_and_mints_zero() {
        let p = ObsPlane::disabled();
        assert_eq!(p.mint_trace_id(), 0);
        p.record_serve_latency_ns(1_000_000);
        p.record_batch_size(8);
        p.record_epoch_advance_ns(5_000_000);
        p.record_halo_wait_ns(100);
        assert!(p
            .ingest_health(HealthSample {
                epoch: 0,
                mass: f64::NAN, // would alert if ingested
                energy: 0.0,
                cfl: 99.0,
                max_abs_u: 9e9,
                non_finite: 5,
                corrupt: true,
                trace_dropped: 3,
            })
            .is_empty());
        assert!(p.serve_latency_snapshot().is_empty());
        assert!(p.batch_size_snapshot().is_empty());
        assert!(p.epoch_advance_snapshot().is_empty());
        assert!(p.halo_wait_snapshot().is_empty());
        assert_eq!(p.watch().alert_count(), 0);
        // Re-enabling starts minting from 1.
        p.set_enabled(true);
        assert_eq!(p.mint_trace_id(), 1);
        assert_eq!(p.mint_trace_id(), 2);
    }

    #[test]
    fn slo_evaluation_tallies_and_exports_to_metrics() {
        let p = ObsPlane::new(
            SloPolicy {
                p99_latency_ms: 1.0,
                qps_floor: 0.0,
                alert_budget: 0,
                min_queries: 1,
            },
            WatchThresholds::default(),
        );
        p.record_serve_latency_ns(500_000); // 0.5 ms: ok
        assert!(p.evaluate_slo().ok());
        p.record_serve_latency_ns(50_000_000); // 50 ms p99: breach
        assert!(!p.evaluate_slo().ok());
        assert_eq!(p.slo_evals(), 2);
        assert_eq!(p.slo_breaches(), 1);

        let m = Metrics::default();
        p.export_metrics(&m);
        assert_eq!(m.counter("obs.slo.evals"), 2);
        assert_eq!(m.counter("obs.slo.breaches"), 1);
        assert!(m.gauge("obs.serve.p99_ms").unwrap() > 1.0);
        // Re-export is idempotent: counters mirror totals, not re-add.
        p.export_metrics(&m);
        assert_eq!(m.counter("obs.slo.evals"), 2);
    }

    #[test]
    fn dashboard_document_has_the_v1_shape() {
        let p = ObsPlane::default();
        p.record_serve_latency_ns(2_000_000);
        p.record_batch_size(4);
        p.evaluate_slo();
        let d = p.dashboard();
        assert_eq!(
            d.get("version").and_then(Json::as_str),
            Some(DASHBOARD_VERSION)
        );
        let hists = d.get("histograms").unwrap();
        for key in [
            "serve_latency_ns",
            "batch_size",
            "epoch_advance_ns",
            "halo_wait_ns",
        ] {
            let h = hists.get(key).unwrap_or_else(|| panic!("missing {key}"));
            assert_eq!(
                h.get("layout").and_then(Json::as_str),
                Some(crate::hist::HIST_LAYOUT)
            );
        }
        assert!(d
            .get("slo")
            .unwrap()
            .get("last")
            .unwrap()
            .get("ok")
            .is_some());
        // Parse/serialize round trip through the in-tree JSON writer.
        let text = d.pretty();
        assert!(Json::parse(&text).is_ok());
        // Markdown renders without panicking and names the SLO verdict.
        assert!(p.to_markdown().contains("**SLO**"));
    }
}
