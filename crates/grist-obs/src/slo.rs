//! SLO policy: the contract the serving stack is held to, evaluated
//! continuously against the live histograms and the health watch.
//!
//! An [`SloPolicy`] is three numbers — a p99 latency ceiling, a throughput
//! floor, and an alert budget — and [`SloPolicy::evaluate`] turns a moment's
//! telemetry into an [`SloStatus`] listing every violated term. The server
//! evaluates after each batch (cheap: one histogram snapshot); `obs_report`
//! evaluates once more at the end of a traffic scenario and gates CI on the
//! result.

use crate::hist::HistSnapshot;
use sunway_sim::Json;

/// Serving-stack service-level objectives.
#[derive(Debug, Clone, Copy)]
pub struct SloPolicy {
    /// p99 per-query serve latency ceiling, milliseconds.
    pub p99_latency_ms: f64,
    /// Sustained throughput floor, queries per second. Only enforced once
    /// at least [`Self::min_queries`] queries have been observed, so an
    /// idle or warming-up server is not a breach.
    pub qps_floor: f64,
    /// Health-watch alerts tolerated before the SLO is breached.
    pub alert_budget: u64,
    /// Minimum observed queries before latency/qps terms are enforced.
    pub min_queries: u64,
}

impl Default for SloPolicy {
    fn default() -> Self {
        // CI smoke defaults: generous enough that a loaded shared runner
        // passes comfortably, tight enough that a real serving regression
        // (an order of magnitude, a stall, a physics alert) fails loudly.
        SloPolicy {
            p99_latency_ms: 2_500.0,
            qps_floor: 1.0,
            alert_budget: 0,
            min_queries: 16,
        }
    }
}

/// One term of the policy that a status can report as violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloTerm {
    P99Latency,
    QpsFloor,
    AlertBudget,
}

impl SloTerm {
    pub fn name(self) -> &'static str {
        match self {
            SloTerm::P99Latency => "p99_latency",
            SloTerm::QpsFloor => "qps_floor",
            SloTerm::AlertBudget => "alert_budget",
        }
    }
}

/// The outcome of one policy evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct SloStatus {
    /// Queries observed at evaluation time.
    pub queries: u64,
    /// Observed p99 latency in ms (0 when no queries yet).
    pub p99_ms: f64,
    /// Observed throughput in queries/s.
    pub qps: f64,
    /// Health alerts charged against the budget.
    pub alerts: u64,
    /// Terms violated; empty means the SLO holds.
    pub violated: Vec<SloTerm>,
}

impl SloStatus {
    pub fn ok(&self) -> bool {
        self.violated.is_empty()
    }

    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("ok".into(), Json::Bool(self.ok())),
            ("queries".into(), Json::Num(self.queries as f64)),
            ("p99_ms".into(), Json::Num(self.p99_ms)),
            ("qps".into(), Json::Num(self.qps)),
            ("alerts".into(), Json::Num(self.alerts as f64)),
            (
                "violated".into(),
                Json::Arr(
                    self.violated
                        .iter()
                        .map(|t| Json::Str(t.name().into()))
                        .collect(),
                ),
            ),
        ])
    }
}

impl SloPolicy {
    /// Evaluate against a latency snapshot, the wall-clock window it was
    /// recorded over, and the current health-alert count.
    pub fn evaluate(&self, latency: &HistSnapshot, window_s: f64, alerts: u64) -> SloStatus {
        let queries = latency.count;
        let p99_ms = latency.percentile_ms(0.99);
        let qps = if window_s > 0.0 {
            queries as f64 / window_s
        } else {
            0.0
        };
        let mut violated = Vec::new();
        if queries >= self.min_queries {
            if p99_ms > self.p99_latency_ms {
                violated.push(SloTerm::P99Latency);
            }
            if qps < self.qps_floor {
                violated.push(SloTerm::QpsFloor);
            }
        }
        if alerts > self.alert_budget {
            violated.push(SloTerm::AlertBudget);
        }
        SloStatus {
            queries,
            p99_ms,
            qps,
            alerts,
            violated,
        }
    }

    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("p99_latency_ms".into(), Json::Num(self.p99_latency_ms)),
            ("qps_floor".into(), Json::Num(self.qps_floor)),
            ("alert_budget".into(), Json::Num(self.alert_budget as f64)),
            ("min_queries".into(), Json::Num(self.min_queries as f64)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    fn latencies(ns: &[u64]) -> HistSnapshot {
        let h = Histogram::new();
        for &v in ns {
            h.record(v);
        }
        h.snapshot()
    }

    #[test]
    fn holding_slo_reports_ok() {
        let policy = SloPolicy::default();
        let snap = latencies(&vec![2_000_000u64; 64]); // 2 ms each
        let st = policy.evaluate(&snap, 4.0, 0);
        assert!(st.ok(), "{:?}", st.violated);
        assert_eq!(st.queries, 64);
        assert_eq!(st.qps, 16.0);
        assert!(st.p99_ms < 2.1);
    }

    #[test]
    fn each_term_can_violate_independently() {
        let policy = SloPolicy {
            p99_latency_ms: 1.0,
            qps_floor: 100.0,
            alert_budget: 0,
            min_queries: 4,
        };
        // Slow and sparse: both latency and qps terms trip.
        let st = policy.evaluate(&latencies(&[5_000_000u64; 8]), 8.0, 0);
        assert_eq!(st.violated, vec![SloTerm::P99Latency, SloTerm::QpsFloor]);
        // Fast and dense but over alert budget.
        let st = policy.evaluate(&latencies(&vec![100_000u64; 1_000]), 1.0, 2);
        assert_eq!(st.violated, vec![SloTerm::AlertBudget]);
        assert!(!st.ok());
    }

    #[test]
    fn warmup_exempts_latency_and_qps_but_not_alerts() {
        let policy = SloPolicy {
            p99_latency_ms: 0.001,
            qps_floor: 1e9,
            alert_budget: 0,
            min_queries: 100,
        };
        let st = policy.evaluate(&latencies(&[9_000_000u64; 5]), 1e6, 0);
        assert!(st.ok(), "below min_queries: perf terms not enforced");
        let st = policy.evaluate(&latencies(&[9_000_000u64; 5]), 1e6, 1);
        assert_eq!(st.violated, vec![SloTerm::AlertBudget]);
    }

    #[test]
    fn status_json_names_violated_terms() {
        let policy = SloPolicy {
            p99_latency_ms: 0.5,
            qps_floor: 0.0,
            alert_budget: 0,
            min_queries: 1,
        };
        let st = policy.evaluate(&latencies(&[4_000_000]), 1.0, 0);
        let j = st.to_json();
        assert_eq!(j.get("ok"), Some(&Json::Bool(false)));
        let v = j.get("violated").and_then(Json::as_arr).unwrap();
        assert_eq!(v[0].as_str(), Some("p99_latency"));
    }
}
