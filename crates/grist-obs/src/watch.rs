//! Physics health watch: ring-buffered diagnostic time series with
//! edge-triggered, typed threshold alerts.
//!
//! The per-call `health.rs` scan answers "is this state sane right now";
//! [`HealthWatch`] answers the streaming question — *is the run drifting* —
//! by ingesting one [`HealthSample`] per epoch (mass/energy conservation
//! drift against the first sample, CFL margin, non-finite census, tracer
//! ring drops) into a bounded ring and emitting an [`Alert`] each time a
//! series *crosses* its threshold. Alerts are edge-triggered: a run sitting
//! above a threshold alerts once on the crossing, not once per epoch, so an
//! alert budget of zero is a meaningful SLO term.

use std::collections::VecDeque;
use std::sync::Mutex;
use sunway_sim::Json;

/// One epoch's worth of streaming diagnostics, as sampled by
/// `GristModel::advance_observed` (or synthesized by tests).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthSample {
    /// Model epoch (dyn-step count) at sampling time.
    pub epoch: u64,
    /// Total mass from the energy budget (conservation reference).
    pub mass: f64,
    /// Total energy (kinetic + internal + potential) from the budget.
    pub energy: f64,
    /// Advective CFL number from the health scan.
    pub cfl: f64,
    /// Largest |u| seen in the state.
    pub max_abs_u: f64,
    /// Non-finite values found (NaN/Inf census).
    pub non_finite: u64,
    /// `true` when the health scan diagnosed `RunState::Corrupt`.
    pub corrupt: bool,
    /// Cumulative tracer ring-lane drops at sampling time.
    pub trace_dropped: u64,
}

/// What crossed a threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AlertKind {
    /// Relative mass drift from the first sample exceeded the threshold.
    MassDrift,
    /// Relative energy drift from the first sample exceeded the threshold.
    EnergyDrift,
    /// CFL number exceeded the stability margin.
    CflMargin,
    /// Peak wind exceeded the physical plausibility bound.
    Wind,
    /// Health scan found non-finite values or diagnosed corruption.
    Corrupt,
    /// Tracer ring lanes dropped events since the previous sample.
    TraceDrop,
}

impl AlertKind {
    pub fn name(self) -> &'static str {
        match self {
            AlertKind::MassDrift => "mass_drift",
            AlertKind::EnergyDrift => "energy_drift",
            AlertKind::CflMargin => "cfl_margin",
            AlertKind::Wind => "wind",
            AlertKind::Corrupt => "corrupt",
            AlertKind::TraceDrop => "trace_drop",
        }
    }
}

/// A typed threshold-crossing event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Alert {
    pub kind: AlertKind,
    /// Epoch of the sample that crossed.
    pub epoch: u64,
    /// The observed value at the crossing.
    pub value: f64,
    /// The threshold it crossed.
    pub threshold: f64,
}

impl Alert {
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("kind".into(), Json::Str(self.kind.name().into())),
            ("epoch".into(), Json::Num(self.epoch as f64)),
            ("value".into(), Json::Num(self.value)),
            ("threshold".into(), Json::Num(self.threshold)),
        ])
    }
}

/// Crossing thresholds. Defaults are deliberately loose physical-sanity
/// bounds (matching `health.rs` where a counterpart exists) so a healthy CI
/// run never trips them; tighten per-deployment as baselines accumulate.
#[derive(Debug, Clone, Copy)]
pub struct WatchThresholds {
    /// Relative mass drift |m/m₀ − 1| bound.
    pub max_mass_drift: f64,
    /// Relative energy drift |E/E₀ − 1| bound.
    pub max_energy_drift: f64,
    /// CFL stability margin (mirrors `HealthThresholds::max_cfl`).
    pub max_cfl: f64,
    /// Physical wind bound in m/s (mirrors `HealthThresholds::max_wind`).
    pub max_wind: f64,
}

impl Default for WatchThresholds {
    fn default() -> Self {
        WatchThresholds {
            max_mass_drift: 1e-6,
            max_energy_drift: 5e-2,
            max_cfl: 2.0,
            max_wind: 350.0,
        }
    }
}

#[derive(Debug, Default)]
struct WatchState {
    samples: VecDeque<HealthSample>,
    /// Mass/energy of the first sample — the conservation reference.
    baseline: Option<(f64, f64)>,
    /// Which alert kinds are currently "above threshold" (for edge trigger).
    active: Vec<AlertKind>,
    alerts: Vec<Alert>,
    ingested: u64,
    last_trace_dropped: u64,
}

/// Ring-buffered health time series + edge-triggered alerting.
#[derive(Debug)]
pub struct HealthWatch {
    thresholds: WatchThresholds,
    capacity: usize,
    state: Mutex<WatchState>,
}

impl HealthWatch {
    /// A watch keeping the most recent `capacity` samples.
    pub fn new(thresholds: WatchThresholds, capacity: usize) -> Self {
        assert!(capacity >= 1);
        HealthWatch {
            thresholds,
            capacity,
            state: Mutex::new(WatchState::default()),
        }
    }

    pub fn thresholds(&self) -> WatchThresholds {
        self.thresholds
    }

    /// Ingest one epoch sample; returns alerts newly raised by this sample
    /// (also retained internally for the dashboard export).
    pub fn ingest(&self, s: HealthSample) -> Vec<Alert> {
        let mut st = self.state.lock().expect("health watch poisoned");
        let (m0, e0) = *st.baseline.get_or_insert((s.mass, s.energy));
        let t = &self.thresholds;

        let rel = |v: f64, v0: f64| {
            if v0 == 0.0 {
                v.abs()
            } else {
                (v / v0 - 1.0).abs()
            }
        };
        let mass_drift = rel(s.mass, m0);
        let energy_drift = rel(s.energy, e0);
        let trace_new = s.trace_dropped.saturating_sub(st.last_trace_dropped);
        st.last_trace_dropped = s.trace_dropped;

        // (kind, currently-over?, observed value, threshold)
        let checks = [
            (
                AlertKind::MassDrift,
                mass_drift > t.max_mass_drift,
                mass_drift,
                t.max_mass_drift,
            ),
            (
                AlertKind::EnergyDrift,
                energy_drift > t.max_energy_drift,
                energy_drift,
                t.max_energy_drift,
            ),
            (AlertKind::CflMargin, s.cfl > t.max_cfl, s.cfl, t.max_cfl),
            (
                AlertKind::Wind,
                s.max_abs_u > t.max_wind,
                s.max_abs_u,
                t.max_wind,
            ),
            (
                AlertKind::Corrupt,
                s.corrupt || s.non_finite > 0,
                s.non_finite as f64,
                0.0,
            ),
            (AlertKind::TraceDrop, trace_new > 0, trace_new as f64, 0.0),
        ];

        let mut raised = Vec::new();
        for (kind, over, value, threshold) in checks {
            let was_active = st.active.contains(&kind);
            if over && !was_active {
                let alert = Alert {
                    kind,
                    epoch: s.epoch,
                    value,
                    threshold,
                };
                st.active.push(kind);
                st.alerts.push(alert);
                raised.push(alert);
            } else if !over && was_active {
                st.active.retain(|&k| k != kind);
            }
        }

        if st.samples.len() == self.capacity {
            st.samples.pop_front();
        }
        st.samples.push_back(s);
        st.ingested += 1;
        raised
    }

    /// Every alert raised over the watch's lifetime, in raise order.
    pub fn alerts(&self) -> Vec<Alert> {
        self.state
            .lock()
            .expect("health watch poisoned")
            .alerts
            .clone()
    }

    /// Total alerts raised (edge crossings, not over-threshold epochs).
    pub fn alert_count(&self) -> u64 {
        self.state
            .lock()
            .expect("health watch poisoned")
            .alerts
            .len() as u64
    }

    /// Samples ingested over the watch's lifetime (ring may hold fewer).
    pub fn ingested(&self) -> u64 {
        self.state.lock().expect("health watch poisoned").ingested
    }

    /// The retained ring, oldest first.
    pub fn series(&self) -> Vec<HealthSample> {
        let st = self.state.lock().expect("health watch poisoned");
        st.samples.iter().copied().collect()
    }

    /// Dashboard fragment: retained series (compact parallel arrays),
    /// alert list, and lifetime totals.
    pub fn to_json(&self) -> Json {
        let st = self.state.lock().expect("health watch poisoned");
        let col = |f: &dyn Fn(&HealthSample) -> f64| {
            Json::Arr(st.samples.iter().map(|s| Json::Num(f(s))).collect())
        };
        Json::Obj(vec![
            ("ingested".into(), Json::Num(st.ingested as f64)),
            ("retained".into(), Json::Num(st.samples.len() as f64)),
            ("epoch".into(), col(&|s| s.epoch as f64)),
            ("mass".into(), col(&|s| s.mass)),
            ("energy".into(), col(&|s| s.energy)),
            ("cfl".into(), col(&|s| s.cfl)),
            ("max_abs_u".into(), col(&|s| s.max_abs_u)),
            (
                "alerts".into(),
                Json::Arr(st.alerts.iter().map(Alert::to_json).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(epoch: u64) -> HealthSample {
        HealthSample {
            epoch,
            mass: 1.0e9,
            energy: 5.0e14,
            cfl: 0.4,
            max_abs_u: 40.0,
            non_finite: 0,
            corrupt: false,
            trace_dropped: 0,
        }
    }

    #[test]
    fn healthy_stream_raises_nothing() {
        let w = HealthWatch::new(WatchThresholds::default(), 16);
        for e in 0..50 {
            let mut s = sample(e);
            s.mass *= 1.0 + 1e-9 * e as f64; // well under 1e-6 drift
            assert!(w.ingest(s).is_empty(), "epoch {e}");
        }
        assert_eq!(w.alert_count(), 0);
        assert_eq!(w.ingested(), 50);
        assert_eq!(w.series().len(), 16, "ring keeps the newest 16");
        assert_eq!(w.series()[0].epoch, 34);
    }

    #[test]
    fn alerts_are_edge_triggered_per_kind() {
        let w = HealthWatch::new(WatchThresholds::default(), 8);
        w.ingest(sample(0));
        // Three consecutive over-threshold epochs → exactly one alert.
        for e in 1..4 {
            let mut s = sample(e);
            s.cfl = 3.5;
            w.ingest(s);
        }
        // Recover, then cross again → a second alert.
        w.ingest(sample(4));
        let mut s = sample(5);
        s.cfl = 2.7;
        let raised = w.ingest(s);
        assert_eq!(raised.len(), 1);
        let alerts = w.alerts();
        assert_eq!(alerts.len(), 2);
        assert!(alerts.iter().all(|a| a.kind == AlertKind::CflMargin));
        assert_eq!(alerts[0].epoch, 1);
        assert_eq!(alerts[1].epoch, 5);
        assert_eq!(alerts[1].value, 2.7);
        assert_eq!(alerts[1].threshold, 2.0);
    }

    #[test]
    fn drift_is_measured_against_the_first_sample() {
        let w = HealthWatch::new(WatchThresholds::default(), 8);
        w.ingest(sample(0));
        let mut s = sample(1);
        s.mass *= 1.0 + 2e-6; // over the 1e-6 relative bound
        let raised = w.ingest(s);
        assert_eq!(raised.len(), 1);
        assert_eq!(raised[0].kind, AlertKind::MassDrift);
        assert!((raised[0].value - 2e-6).abs() < 1e-9);
    }

    #[test]
    fn corruption_and_trace_drops_alert_on_increase() {
        let w = HealthWatch::new(WatchThresholds::default(), 8);
        let mut s = sample(0);
        s.trace_dropped = 7;
        // First sample: drops baseline is 0, so 7 new drops alert.
        let raised = w.ingest(s);
        assert_eq!(raised.len(), 1);
        assert_eq!(raised[0].kind, AlertKind::TraceDrop);
        assert_eq!(raised[0].value, 7.0);
        // Steady cumulative count: no new drops, no new alert.
        let mut s1 = sample(1);
        s1.trace_dropped = 7;
        assert!(w.ingest(s1).is_empty());
        // NaNs appear → Corrupt.
        let mut s2 = sample(2);
        s2.trace_dropped = 7;
        s2.non_finite = 3;
        let raised = w.ingest(s2);
        assert_eq!(raised.len(), 1);
        assert_eq!(raised[0].kind, AlertKind::Corrupt);
    }

    #[test]
    fn json_export_carries_series_and_alerts() {
        let w = HealthWatch::new(WatchThresholds::default(), 4);
        for e in 0..3 {
            let mut s = sample(e);
            if e == 2 {
                s.max_abs_u = 400.0;
            }
            w.ingest(s);
        }
        let j = w.to_json();
        assert_eq!(j.get("ingested").and_then(Json::as_u64), Some(3));
        assert_eq!(j.get("retained").and_then(Json::as_u64), Some(3));
        let alerts = j.get("alerts").and_then(Json::as_arr).unwrap();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].get("kind").and_then(Json::as_str), Some("wind"));
    }
}
