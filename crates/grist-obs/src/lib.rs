//! # grist-obs — the live telemetry plane
//!
//! The registries that already exist answer post-hoc questions: `Metrics`
//! totals what happened, `Tracer` replays when. At 34M-core scale (and at
//! serving scale) the operative questions are *live*: what is the p99 right
//! now, is the physics drifting, did a ring drop events, is the SLO still
//! holding. This crate layers that plane on top without touching the hot
//! paths' disabled-cost contract:
//!
//! - [`hist`] — lock-free log-bucketed streaming histograms (`log16-v1`
//!   layout, pinned by tests) with exact p50/p90/p99/max readout and
//!   mergeable, JSON-round-trippable snapshots.
//! - [`watch`] — ring-buffered physics health time series (mass/energy
//!   drift, CFL margin, NaN census, tracer drops) with edge-triggered typed
//!   alerts.
//! - [`slo`] — an `SloPolicy` (p99 ceiling, qps floor, alert budget)
//!   evaluated continuously against the live distributions.
//! - [`plane`] — the [`ObsPlane`] hub the server, the model loop, and the
//!   `obs_report` bin all share.
//!
//! Request-scoped trace IDs are minted here ([`ObsPlane::mint_trace_id`])
//! and carried through the serving stack into the tracer's `flow` events
//! (see `sunway_sim::trace`), joining a served answer to its kernel spans in
//! the Perfetto export.

pub mod hist;
pub mod plane;
pub mod slo;
pub mod watch;

pub use hist::{
    bucket_hi, bucket_index, bucket_lo, HistSnapshot, Histogram, HIST_BUCKETS, HIST_LAYOUT,
};
pub use plane::{ObsPlane, DASHBOARD_VERSION};
pub use slo::{SloPolicy, SloStatus, SloTerm};
pub use watch::{Alert, AlertKind, HealthSample, HealthWatch, WatchThresholds};

#[cfg(test)]
mod concurrency_tests {
    use super::*;
    use std::sync::Arc;

    /// Satellite: N threads × M records — total count, exact bucket sums,
    /// and merge(snapshot_a, snapshot_b) == snapshot_combined.
    #[test]
    fn concurrent_recording_loses_nothing_and_merges_exactly() {
        const THREADS: u64 = 8;
        const RECORDS: u64 = 20_000;

        // Deterministic per-thread value stream (xorshift); thread t records
        // values(t). We rebuild the expected bucket sums serially.
        fn values(t: u64) -> impl Iterator<Item = u64> {
            let mut x = 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(t + 1) | 1;
            (0..RECORDS).map(move |_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % 100_000_000 // ns-scale, spans many octaves
            })
        }

        let shared = Arc::new(Histogram::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let h = Arc::clone(&shared);
                std::thread::spawn(move || {
                    for v in values(t) {
                        h.record(v);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = shared.snapshot();

        // Serial reference over the identical value streams.
        let reference = Histogram::new();
        for t in 0..THREADS {
            for v in values(t) {
                reference.record(v);
            }
        }
        let expect = reference.snapshot();

        assert_eq!(snap.count, THREADS * RECORDS, "total count");
        assert_eq!(snap, expect, "bucket-exact equality under contention");

        // Partition the same population across two histograms; the merged
        // snapshot must equal the combined one bucket for bucket.
        let (a, b) = (Histogram::new(), Histogram::new());
        for t in 0..THREADS {
            let h = if t % 2 == 0 { &a } else { &b };
            for v in values(t) {
                h.record(v);
            }
        }
        assert_eq!(a.snapshot().merge(&b.snapshot()), expect);
    }
}
