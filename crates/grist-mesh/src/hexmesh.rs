//! The unstructured hexagonal-pentagonal C-grid mesh: the Voronoi dual of the
//! geodesic icosahedral triangulation.
//!
//! Terminology follows GRIST/MPAS conventions:
//!
//! * **cells**  — the hexagons/pentagons (one per triangulation vertex);
//!   mass points. There are always exactly 12 pentagons.
//! * **edges**  — shared cell interfaces (one per triangulation edge);
//!   normal-velocity points of the C-grid staggering.
//! * **verts**  — the dual (triangle) vertices (one per triangulation face);
//!   vorticity points.
//!
//! All geometry lives on the **unit sphere**; physical models scale by the
//! planetary radius. The dual vertex of each triangle is its circumcenter, so
//! the mesh is a true spherical Voronoi diagram: every primal (Voronoi) edge
//! is the perpendicular bisector of its dual (Delaunay) edge, the property the
//! C-grid discretization relies on.

use crate::icosahedron::Triangulation;
use crate::vec3::{spherical_triangle_area, Vec3};
use std::collections::HashMap;

/// Compressed sparse row adjacency: variable-degree rows of `u32` indices.
#[derive(Debug, Clone, Default)]
pub struct Csr {
    pub offsets: Vec<u32>,
    pub values: Vec<u32>,
}

impl Csr {
    /// Build from per-row vectors.
    pub fn from_rows(rows: &[Vec<u32>]) -> Self {
        let mut offsets = Vec::with_capacity(rows.len() + 1);
        let mut values = Vec::new();
        offsets.push(0);
        for r in rows {
            values.extend_from_slice(r);
            offsets.push(values.len() as u32);
        }
        Csr { offsets, values }
    }

    #[inline]
    pub fn row(&self, i: usize) -> &[u32] {
        &self.values[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Range of value-array positions belonging to row `i`; useful for
    /// accessing auxiliary arrays aligned with `values` (e.g. edge signs).
    #[inline]
    pub fn row_range(&self, i: usize) -> std::ops::Range<usize> {
        self.offsets[i] as usize..self.offsets[i + 1] as usize
    }

    pub fn n_rows(&self) -> usize {
        self.offsets.len() - 1
    }
}

/// The hexagonal C-grid mesh with full connectivity and spherical geometry.
#[derive(Debug, Clone)]
pub struct HexMesh {
    /// Subdivision level (`G<level>` in the paper's Table 2).
    pub level: u32,

    // ---- positions (unit sphere) ----
    /// Cell (mass point) positions.
    pub cell_xyz: Vec<Vec3>,
    /// Dual vertex (vorticity point) positions: triangle circumcenters.
    pub vert_xyz: Vec<Vec3>,
    /// Edge midpoints (crossing point of primal and dual edge).
    pub edge_mid: Vec<Vec3>,

    // ---- connectivity ----
    /// The two cells sharing each edge; the edge normal points from
    /// `edge_cells[e][0]` to `edge_cells[e][1]`.
    pub edge_cells: Vec<[u32; 2]>,
    /// The two dual vertices bounding each edge; the edge tangent points
    /// from `edge_verts[e][0]` to `edge_verts[e][1]`, chosen so that
    /// (normal, tangent, radial) is right-handed.
    pub edge_verts: Vec<[u32; 2]>,
    /// Edges of each cell, ordered counter-clockwise (5 for pentagons,
    /// 6 for hexagons).
    pub cell_edges: Csr,
    /// Aligned with `cell_edges.values`: `+1` where the edge normal points
    /// out of the cell, `-1` where it points in.
    pub cell_edge_sign: Vec<f64>,
    /// Neighbouring cell across each entry of `cell_edges` (same ordering).
    pub cell_neighbors: Csr,
    /// Dual vertices (corners) of each cell, CCW, aligned so that
    /// `cell_verts.row(c)[k]` sits between `cell_edges.row(c)[k]` and
    /// `cell_edges.row(c)[k+1]` going CCW (exact interleaving is not relied
    /// upon by the solvers; only the CCW ordering is).
    pub cell_verts: Csr,
    /// The three cells at the corners of each dual triangle.
    pub vert_cells: Vec<[u32; 3]>,
    /// The three edges bounding each dual triangle.
    pub vert_edges: Vec<[u32; 3]>,
    /// `+1` where traversing the edge's dual segment from cell 0 to cell 1 is
    /// counter-clockwise around the vertex, `-1` otherwise. Each edge gets
    /// opposite signs from its two vertices.
    pub vert_edge_sign: Vec<[f64; 3]>,

    // ---- metric terms (unit sphere) ----
    /// Cell areas; sums to 4π.
    pub cell_area: Vec<f64>,
    /// Dual (triangle) areas; sums to 4π.
    pub vert_area: Vec<f64>,
    /// Primal edge length: arc length of the Voronoi interface (between the
    /// two dual vertices). GRIST's `edt_leng`.
    pub edge_le: Vec<f64>,
    /// Dual edge length: arc distance between the two cell centers.
    pub edge_de: Vec<f64>,
    /// Unit normal at the edge midpoint (tangent to sphere, cell0 → cell1).
    pub edge_normal: Vec<Vec3>,
    /// Unit tangent at the edge midpoint (vert0 → vert1).
    pub edge_tangent: Vec<Vec3>,
}

impl HexMesh {
    pub fn n_cells(&self) -> usize {
        self.cell_xyz.len()
    }
    pub fn n_edges(&self) -> usize {
        self.edge_cells.len()
    }
    pub fn n_verts(&self) -> usize {
        self.vert_xyz.len()
    }

    /// Build the level-`level` mesh (cells = `10·4^level + 2`).
    pub fn build(level: u32) -> Self {
        let tri = Triangulation::geodesic(level);
        Self::from_triangulation(level, &tri)
    }

    /// Construct the Voronoi dual of an arbitrary spherical triangulation.
    pub fn from_triangulation(level: u32, tri: &Triangulation) -> Self {
        let n_cells = tri.verts.len();
        let n_verts = tri.faces.len();
        let cell_xyz = tri.verts.clone();

        // Dual vertices: circumcenters. For a CCW face the plane normal
        // (b−a)×(c−a) already points outward, so normalizing it lands the
        // circumcenter on the correct hemisphere.
        let vert_xyz: Vec<Vec3> = tri
            .faces
            .iter()
            .map(|&[a, b, c]| {
                let (a, b, c) = (
                    tri.verts[a as usize],
                    tri.verts[b as usize],
                    tri.verts[c as usize],
                );
                (b - a).cross(c - a).normalized()
            })
            .collect();

        // Edges: dedup the triangulation edges, remembering adjacent faces.
        let mut edge_ids: HashMap<(u32, u32), u32> = HashMap::with_capacity(3 * n_verts / 2);
        let mut edge_cells: Vec<[u32; 2]> = Vec::with_capacity(3 * n_verts / 2);
        let mut edge_faces: Vec<[u32; 2]> = Vec::with_capacity(3 * n_verts / 2);
        for (f, &[a, b, c]) in tri.faces.iter().enumerate() {
            for &(p, q) in &[(a, b), (b, c), (c, a)] {
                let key = (p.min(q), p.max(q));
                match edge_ids.get(&key) {
                    Some(&e) => edge_faces[e as usize][1] = f as u32,
                    None => {
                        let e = edge_cells.len() as u32;
                        edge_ids.insert(key, e);
                        edge_cells.push([key.0, key.1]);
                        edge_faces.push([f as u32, u32::MAX]);
                    }
                }
            }
        }
        let n_edges = edge_cells.len();
        assert!(
            edge_faces.iter().all(|f| f[1] != u32::MAX),
            "open surface: every edge must have two adjacent faces"
        );

        // Per-edge geometry and orientation conventions.
        let mut edge_mid = Vec::with_capacity(n_edges);
        let mut edge_normal = Vec::with_capacity(n_edges);
        let mut edge_tangent = Vec::with_capacity(n_edges);
        let mut edge_verts = Vec::with_capacity(n_edges);
        let mut edge_le = Vec::with_capacity(n_edges);
        let mut edge_de = Vec::with_capacity(n_edges);
        for e in 0..n_edges {
            let [c1, c2] = edge_cells[e];
            let (p1, p2) = (cell_xyz[c1 as usize], cell_xyz[c2 as usize]);
            let m = ((p1 + p2) * 0.5).normalized();
            let n = (p2 - p1).tangent_at(m).normalized();
            // Right-handed frame: tangent = radial × normal, so n × t = r̂.
            let t = m.cross(n);
            let [fa, fb] = edge_faces[e];
            let (va, vb) = (vert_xyz[fa as usize], vert_xyz[fb as usize]);
            // Order dual vertices along +t.
            let (v1, v2) = if (vb - va).dot(t) >= 0.0 {
                (fa, fb)
            } else {
                (fb, fa)
            };
            edge_verts.push([v1, v2]);
            edge_le.push(vert_xyz[v1 as usize].arc_dist(vert_xyz[v2 as usize]));
            edge_de.push(p1.arc_dist(p2));
            edge_mid.push(m);
            edge_normal.push(n);
            edge_tangent.push(t);
        }

        // Cell → incident edges, CCW-ordered by azimuth around the cell.
        let mut cell_edge_rows: Vec<Vec<u32>> = vec![Vec::with_capacity(6); n_cells];
        for (e, &[c1, c2]) in edge_cells.iter().enumerate() {
            cell_edge_rows[c1 as usize].push(e as u32);
            cell_edge_rows[c2 as usize].push(e as u32);
        }
        // Cell → corner dual vertices.
        let mut cell_vert_rows: Vec<Vec<u32>> = vec![Vec::with_capacity(6); n_cells];
        for (f, &[a, b, c]) in tri.faces.iter().enumerate() {
            for v in [a, b, c] {
                cell_vert_rows[v as usize].push(f as u32);
            }
        }
        let azimuth_sort = |center: Vec3, ids: &mut Vec<u32>, pos: &dyn Fn(u32) -> Vec3| {
            let east = center.east();
            let north = center.north();
            ids.sort_by(|&i, &j| {
                let ang = |k: u32| {
                    let d = (pos(k) - center).tangent_at(center);
                    d.dot(north).atan2(d.dot(east))
                };
                ang(i).partial_cmp(&ang(j)).unwrap()
            });
        };
        for c in 0..n_cells {
            let center = cell_xyz[c];
            azimuth_sort(center, &mut cell_edge_rows[c], &|e| edge_mid[e as usize]);
            azimuth_sort(center, &mut cell_vert_rows[c], &|v| vert_xyz[v as usize]);
        }
        let cell_edges = Csr::from_rows(&cell_edge_rows);
        let cell_verts = Csr::from_rows(&cell_vert_rows);

        // Signs and neighbours aligned with cell_edges.values.
        let mut cell_edge_sign = vec![0.0; cell_edges.values.len()];
        let mut neighbor_rows: Vec<Vec<u32>> = vec![Vec::with_capacity(6); n_cells];
        for c in 0..n_cells {
            for (k, &e) in cell_edges.row(c).iter().enumerate() {
                let [c1, c2] = edge_cells[e as usize];
                let (sign, nb) = if c as u32 == c1 {
                    (1.0, c2)
                } else {
                    (-1.0, c1)
                };
                cell_edge_sign[cell_edges.row_range(c).start + k] = sign;
                neighbor_rows[c].push(nb);
            }
        }
        let cell_neighbors = Csr::from_rows(&neighbor_rows);

        // Dual triangle connectivity and orientation.
        let mut vert_cells = vec![[0u32; 3]; n_verts];
        for (f, &face) in tri.faces.iter().enumerate() {
            vert_cells[f] = face;
        }
        let mut vert_edge_rows: Vec<Vec<u32>> = vec![Vec::with_capacity(3); n_verts];
        for (e, &[v1, v2]) in edge_verts.iter().enumerate() {
            vert_edge_rows[v1 as usize].push(e as u32);
            vert_edge_rows[v2 as usize].push(e as u32);
        }
        let mut vert_edges = vec![[0u32; 3]; n_verts];
        let mut vert_edge_sign = vec![[0.0f64; 3]; n_verts];
        for v in 0..n_verts {
            assert_eq!(vert_edge_rows[v].len(), 3, "dual vertex degree must be 3");
            let p = vert_xyz[v];
            for (k, &e) in vert_edge_rows[v].iter().enumerate() {
                vert_edges[v][k] = e;
                let [c1, c2] = edge_cells[e as usize];
                let d = cell_xyz[c2 as usize] - cell_xyz[c1 as usize];
                let ccw = p.cross(edge_mid[e as usize]);
                vert_edge_sign[v][k] = if d.dot(ccw) >= 0.0 { 1.0 } else { -1.0 };
            }
        }

        // Areas.
        let vert_area: Vec<f64> = (0..n_verts)
            .map(|v| {
                let [a, b, c] = vert_cells[v];
                spherical_triangle_area(
                    cell_xyz[a as usize],
                    cell_xyz[b as usize],
                    cell_xyz[c as usize],
                )
                .abs()
            })
            .collect();
        let cell_area: Vec<f64> = (0..n_cells)
            .map(|c| {
                let corners = cell_verts.row(c);
                let n = corners.len();
                let mut a = 0.0;
                for k in 0..n {
                    let p = vert_xyz[corners[k] as usize];
                    let q = vert_xyz[corners[(k + 1) % n] as usize];
                    a += spherical_triangle_area(cell_xyz[c], p, q);
                }
                a.abs()
            })
            .collect();

        HexMesh {
            level,
            cell_xyz,
            vert_xyz,
            edge_mid,
            edge_cells,
            edge_verts,
            cell_edges,
            cell_edge_sign,
            cell_neighbors,
            cell_verts,
            vert_cells,
            vert_edges,
            vert_edge_sign,
            cell_area,
            vert_area,
            edge_le,
            edge_de,
            edge_normal,
            edge_tangent,
        }
    }

    /// Mean cell spacing in kilometres for an Earth-radius sphere — the
    /// "Resolution (km)" column of Table 2.
    pub fn mean_spacing_km(&self, rearth_m: f64) -> f64 {
        let mean_de: f64 = self.edge_de.iter().sum::<f64>() / self.n_edges() as f64;
        mean_de * rearth_m / 1000.0
    }

    /// Coriolis parameter `2Ω sin(lat)` at every edge midpoint.
    pub fn coriolis_at_edges(&self, omega: f64) -> Vec<f64> {
        self.edge_mid
            .iter()
            .map(|m| 2.0 * omega * m.lat().sin())
            .collect()
    }

    /// Coriolis parameter `2Ω sin(lat)` at every dual vertex.
    pub fn coriolis_at_verts(&self, omega: f64) -> Vec<f64> {
        self.vert_xyz
            .iter()
            .map(|p| 2.0 * omega * p.lat().sin())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn mesh() -> HexMesh {
        HexMesh::build(3)
    }

    #[test]
    fn counts_follow_closed_forms() {
        let m = mesh();
        let p = 4usize.pow(3);
        assert_eq!(m.n_cells(), 10 * p + 2);
        assert_eq!(m.n_edges(), 30 * p);
        assert_eq!(m.n_verts(), 20 * p);
    }

    #[test]
    fn euler_characteristic() {
        let m = mesh();
        assert_eq!(m.n_cells() + m.n_verts() - m.n_edges(), 2);
    }

    #[test]
    fn exactly_twelve_pentagons() {
        let m = mesh();
        let pentagons = (0..m.n_cells())
            .filter(|&c| m.cell_edges.row(c).len() == 5)
            .count();
        let hexagons = (0..m.n_cells())
            .filter(|&c| m.cell_edges.row(c).len() == 6)
            .count();
        assert_eq!(pentagons, 12);
        assert_eq!(pentagons + hexagons, m.n_cells());
    }

    #[test]
    fn cell_areas_tile_the_sphere() {
        let m = mesh();
        let total: f64 = m.cell_area.iter().sum();
        assert!((total - 4.0 * PI).abs() < 1e-9, "total = {total}");
        assert!(m.cell_area.iter().all(|&a| a > 0.0));
    }

    #[test]
    fn dual_areas_tile_the_sphere() {
        let m = mesh();
        let total: f64 = m.vert_area.iter().sum();
        assert!((total - 4.0 * PI).abs() < 1e-9, "total = {total}");
    }

    #[test]
    fn edge_frames_are_right_handed_orthonormal() {
        let m = mesh();
        for e in 0..m.n_edges() {
            let (n, t, r) = (m.edge_normal[e], m.edge_tangent[e], m.edge_mid[e]);
            assert!(n.dot(t).abs() < 1e-12);
            assert!(n.dot(r).abs() < 1e-12);
            assert!((n.cross(t) - r).norm() < 1e-12);
        }
    }

    #[test]
    fn edge_tangent_points_from_v1_to_v2() {
        let m = mesh();
        for e in 0..m.n_edges() {
            let [v1, v2] = m.edge_verts[e];
            let d = m.vert_xyz[v2 as usize] - m.vert_xyz[v1 as usize];
            assert!(d.dot(m.edge_tangent[e]) > 0.0, "edge {e}");
        }
    }

    #[test]
    fn cell_edge_signs_are_outward() {
        let m = mesh();
        for c in 0..m.n_cells() {
            let rng = m.cell_edges.row_range(c);
            for (k, &e) in m.cell_edges.row(c).iter().enumerate() {
                let sign = m.cell_edge_sign[rng.start + k];
                let outward =
                    (m.edge_mid[e as usize] - m.cell_xyz[c]).tangent_at(m.edge_mid[e as usize]);
                assert!(
                    sign * m.edge_normal[e as usize].dot(outward) > 0.0,
                    "cell {c} edge {e}: sign does not point outward"
                );
            }
        }
    }

    #[test]
    fn each_edge_has_one_positive_one_negative_cell_sign() {
        let m = mesh();
        let mut sum = vec![0.0; m.n_edges()];
        let mut count = vec![0u32; m.n_edges()];
        for c in 0..m.n_cells() {
            let rng = m.cell_edges.row_range(c);
            for (k, &e) in m.cell_edges.row(c).iter().enumerate() {
                sum[e as usize] += m.cell_edge_sign[rng.start + k];
                count[e as usize] += 1;
            }
        }
        assert!(sum.iter().all(|&s| s.abs() < 1e-12));
        assert!(count.iter().all(|&c| c == 2));
    }

    #[test]
    fn vert_edge_signs_opposite_across_shared_edge() {
        let m = mesh();
        let mut sum = vec![0.0; m.n_edges()];
        for v in 0..m.n_verts() {
            for k in 0..3 {
                sum[m.vert_edges[v][k] as usize] += m.vert_edge_sign[v][k];
            }
        }
        assert!(sum.iter().all(|&s| s.abs() < 1e-12));
    }

    #[test]
    fn circumcenters_are_equidistant_from_corner_cells() {
        let m = mesh();
        for v in 0..m.n_verts() {
            let p = m.vert_xyz[v];
            let d: Vec<f64> = m.vert_cells[v]
                .iter()
                .map(|&c| p.arc_dist(m.cell_xyz[c as usize]))
                .collect();
            assert!((d[0] - d[1]).abs() < 1e-10 && (d[0] - d[2]).abs() < 1e-10);
        }
    }

    #[test]
    fn g_level_spacing_is_in_table2_band() {
        // Table 2 gives G6 spacing 92.5–113 km; the *mean* dual-edge spacing
        // of our un-optimized (no spring dynamics) grid should land nearby.
        let m = HexMesh::build(6);
        let km = m.mean_spacing_km(6.371e6);
        assert!(km > 85.0 && km < 135.0, "G6 spacing {km} km");
    }

    #[test]
    fn neighbors_align_with_edges() {
        let m = mesh();
        for c in 0..m.n_cells() {
            let edges = m.cell_edges.row(c);
            let nbs = m.cell_neighbors.row(c);
            assert_eq!(edges.len(), nbs.len());
            for (&e, &nb) in edges.iter().zip(nbs) {
                let [c1, c2] = m.edge_cells[e as usize];
                assert!(
                    (c1 == c as u32 && c2 == nb) || (c2 == c as u32 && c1 == nb),
                    "cell {c}: edge {e} does not connect to neighbor {nb}"
                );
            }
        }
    }
}
