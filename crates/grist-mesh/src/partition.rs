//! Horizontal domain decomposition — the METIS stand-in (§3.1.2).
//!
//! The paper partitions the global cell graph with METIS to balance load and
//! minimize communication. We implement the same service from scratch:
//! recursive inertial (longest-axis) bisection over cell coordinates followed
//! by a Kernighan–Lin-style boundary refinement on the cell adjacency graph.
//! Quality is reported as load imbalance and edge cut, the two quantities
//! that drive the scaling figures.

use crate::hexmesh::HexMesh;
use crate::vec3::Vec3;

/// Cell → part assignment plus quality metrics.
#[derive(Debug, Clone)]
pub struct Partition {
    pub n_parts: usize,
    /// Part id per cell.
    pub part: Vec<u32>,
}

/// A lat/lon window whose cells carry extra computational weight — the
/// first cut of variable-resolution regional refinement ("seamless"
/// global-to-regional, the GRIST lineage's namesake capability). A cell
/// inside the window stands in for `weight` cells of a locally densified
/// grid, so a refinement-aware partition assigns *fewer* cells to the
/// ranks that own the window, keeping per-rank work balanced when the
/// regional grid is refined.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefinementWindow {
    /// Window bounds \[rad\]; latitudes in (-π/2, π/2), longitudes in
    /// (-π, π] matching [`crate::Vec3::lon`]. `lon_min > lon_max` wraps
    /// across the antimeridian.
    pub lat_min: f64,
    pub lat_max: f64,
    pub lon_min: f64,
    pub lon_max: f64,
    /// Computational weight of a window cell relative to an exterior cell
    /// (≥ 1; e.g. 4.0 ≈ one 2× horizontal refinement level).
    pub weight: f64,
}

impl RefinementWindow {
    /// Whether the (lat, lon) point \[rad\] falls inside the window.
    pub fn contains(&self, lat: f64, lon: f64) -> bool {
        if lat < self.lat_min || lat > self.lat_max {
            return false;
        }
        if self.lon_min <= self.lon_max {
            (self.lon_min..=self.lon_max).contains(&lon)
        } else {
            // Antimeridian wrap: inside if east of lon_min OR west of lon_max.
            lon >= self.lon_min || lon <= self.lon_max
        }
    }

    /// Per-cell weight vector over `mesh` (`weight` inside, 1 outside).
    pub fn weights(&self, mesh: &HexMesh) -> Vec<f64> {
        mesh.cell_xyz
            .iter()
            .map(|p| {
                if self.contains(p.lat(), p.lon()) {
                    self.weight
                } else {
                    1.0
                }
            })
            .collect()
    }

    /// Cells inside the window.
    pub fn cells(&self, mesh: &HexMesh) -> Vec<u32> {
        (0..mesh.n_cells() as u32)
            .filter(|&c| {
                let p = mesh.cell_xyz[c as usize];
                self.contains(p.lat(), p.lon())
            })
            .collect()
    }
}

/// Quality metrics of a [`Partition`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionQuality {
    /// `max part size / mean part size` (1.0 is perfect).
    pub imbalance: f64,
    /// Number of mesh edges whose two cells live in different parts —
    /// proportional to total halo-exchange volume.
    pub edge_cut: usize,
    /// Largest number of distinct neighbouring parts of any part.
    pub max_part_degree: usize,
}

/// Measured halo-surface profile of a [`Partition`]: how many remote cells
/// each rank actually touches, summarized as the surface-to-volume law the
/// SDPD scaling model consumes (`halo ≈ coeff · √owned` for compact 2-D
/// subdomains).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurfaceProfile {
    pub n_parts: usize,
    /// Mean owned cells per part.
    pub mean_cells: f64,
    /// Mean halo width: distinct remote neighbour cells per part.
    pub mean_halo: f64,
    /// Worst-case halo/owned ratio over the parts (communication-boundedness
    /// of the unluckiest rank).
    pub max_ratio: f64,
    /// The measured surface coefficient `mean_halo / √mean_cells` — the
    /// replacement for the analytic 3.5 guess in `SdpdModelConfig`.
    pub surface_coeff: f64,
}

impl Partition {
    /// Partition `mesh` into `n_parts` parts.
    ///
    /// `refine_passes` controls how many KL boundary-refinement sweeps run on
    /// each bisection (0 = raw geometric bisection).
    pub fn build(mesh: &HexMesh, n_parts: usize, refine_passes: usize) -> Self {
        assert!(n_parts >= 1);
        let n = mesh.n_cells();
        let mut part = vec![0u32; n];
        let all: Vec<u32> = (0..n as u32).collect();
        let mut next_id = 0u32;
        bisect_recursive(mesh, &all, n_parts, refine_passes, &mut part, &mut next_id);
        debug_assert_eq!(next_id as usize, n_parts);
        Partition { n_parts, part }
    }

    /// Cells owned by `rank`.
    pub fn cells_of(&self, rank: usize) -> Vec<u32> {
        self.part
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p as usize == rank)
            .map(|(c, _)| c as u32)
            .collect()
    }

    /// Compute the quality metrics against the owning mesh.
    pub fn quality(&self, mesh: &HexMesh) -> PartitionQuality {
        let mut sizes = vec![0usize; self.n_parts];
        for &p in &self.part {
            sizes[p as usize] += 1;
        }
        let mean = mesh.n_cells() as f64 / self.n_parts as f64;
        let imbalance = sizes.iter().copied().max().unwrap_or(0) as f64 / mean;

        let mut edge_cut = 0usize;
        let mut nbr_parts: Vec<std::collections::BTreeSet<u32>> =
            vec![Default::default(); self.n_parts];
        for &[c1, c2] in &mesh.edge_cells {
            let (p1, p2) = (self.part[c1 as usize], self.part[c2 as usize]);
            if p1 != p2 {
                edge_cut += 1;
                nbr_parts[p1 as usize].insert(p2);
                nbr_parts[p2 as usize].insert(p1);
            }
        }
        let max_part_degree = nbr_parts.iter().map(|s| s.len()).max().unwrap_or(0);
        PartitionQuality {
            imbalance,
            edge_cut,
            max_part_degree,
        }
    }

    /// Refinement-aware partition: like [`Self::build`], but every cell in
    /// `window` carries `window.weight` computational weight and the
    /// bisection balances *weighted* load, so the ranks owning the refined
    /// region receive proportionally fewer cells.
    pub fn build_refined(
        mesh: &HexMesh,
        n_parts: usize,
        refine_passes: usize,
        window: &RefinementWindow,
    ) -> Self {
        assert!(window.weight >= 1.0, "refinement weight must be ≥ 1");
        Self::build_weighted(mesh, n_parts, refine_passes, &window.weights(mesh))
    }

    /// Weighted partition: recursive inertial bisection splitting at the
    /// weighted median, with KL refinement restricted to equal-weight swaps
    /// (so boundary smoothing can never unbalance the weighted load).
    pub fn build_weighted(
        mesh: &HexMesh,
        n_parts: usize,
        refine_passes: usize,
        weights: &[f64],
    ) -> Self {
        assert!(n_parts >= 1);
        assert_eq!(weights.len(), mesh.n_cells(), "one weight per cell");
        assert!(
            weights.iter().all(|&w| w.is_finite() && w > 0.0),
            "weights must be positive and finite"
        );
        let n = mesh.n_cells();
        let mut part = vec![0u32; n];
        let all: Vec<u32> = (0..n as u32).collect();
        let mut next_id = 0u32;
        bisect_recursive_weighted(
            mesh,
            &all,
            n_parts,
            refine_passes,
            weights,
            &mut part,
            &mut next_id,
        );
        debug_assert_eq!(next_id as usize, n_parts);
        Partition { n_parts, part }
    }

    /// [`Self::quality`] with the load measured in `weights` instead of cell
    /// counts: `imbalance` becomes `max part weight / mean part weight`.
    /// Edge cut and part degree are weight-independent and identical to
    /// [`Self::quality`].
    pub fn weighted_quality(&self, mesh: &HexMesh, weights: &[f64]) -> PartitionQuality {
        assert_eq!(weights.len(), mesh.n_cells());
        let mut loads = vec![0.0f64; self.n_parts];
        for (c, &p) in self.part.iter().enumerate() {
            loads[p as usize] += weights[c];
        }
        let mean = weights.iter().sum::<f64>() / self.n_parts as f64;
        let q = self.quality(mesh);
        PartitionQuality {
            imbalance: loads.iter().fold(0.0f64, |a, &b| a.max(b)) / mean,
            ..q
        }
    }

    /// Measure the halo surface-to-volume profile: for every part, the set
    /// of distinct remote cells adjacent to its owned cells (its one-deep
    /// halo), reduced to the mean/worst ratios and the surface coefficient.
    pub fn surface_profile(&self, mesh: &HexMesh) -> SurfaceProfile {
        let mut sizes = vec![0usize; self.n_parts];
        for &p in &self.part {
            sizes[p as usize] += 1;
        }
        let mut halos: Vec<std::collections::BTreeSet<u32>> =
            vec![Default::default(); self.n_parts];
        for &[c1, c2] in &mesh.edge_cells {
            let (p1, p2) = (self.part[c1 as usize], self.part[c2 as usize]);
            if p1 != p2 {
                halos[p1 as usize].insert(c2);
                halos[p2 as usize].insert(c1);
            }
        }
        let mean_cells = mesh.n_cells() as f64 / self.n_parts as f64;
        let mean_halo = halos.iter().map(|h| h.len()).sum::<usize>() as f64 / self.n_parts as f64;
        let max_ratio = halos
            .iter()
            .zip(&sizes)
            .map(|(h, &s)| h.len() as f64 / (s.max(1)) as f64)
            .fold(0.0f64, f64::max);
        SurfaceProfile {
            n_parts: self.n_parts,
            mean_cells,
            mean_halo,
            max_ratio,
            surface_coeff: mean_halo / mean_cells.sqrt(),
        }
    }
}

/// Recursively split `cells` into `k` parts, writing final part ids.
fn bisect_recursive(
    mesh: &HexMesh,
    cells: &[u32],
    k: usize,
    refine_passes: usize,
    part: &mut [u32],
    next_id: &mut u32,
) {
    if k == 1 {
        let id = *next_id;
        *next_id += 1;
        for &c in cells {
            part[c as usize] = id;
        }
        return;
    }
    let k_left = k / 2;
    let k_right = k - k_left;
    let target_left = (cells.len() * k_left + k / 2) / k; // proportional split
    let (mut left, mut right) = inertial_split(mesh, cells, target_left);
    if refine_passes > 0 {
        kl_refine(mesh, &mut left, &mut right, target_left, refine_passes);
    }
    bisect_recursive(mesh, &left, k_left, refine_passes, part, next_id);
    bisect_recursive(mesh, &right, k_right, refine_passes, part, next_id);
}

/// Weighted twin of [`bisect_recursive`]: subtree targets and split points
/// follow the cumulative cell weight instead of the cell count.
fn bisect_recursive_weighted(
    mesh: &HexMesh,
    cells: &[u32],
    k: usize,
    refine_passes: usize,
    weights: &[f64],
    part: &mut [u32],
    next_id: &mut u32,
) {
    if k == 1 {
        let id = *next_id;
        *next_id += 1;
        for &c in cells {
            part[c as usize] = id;
        }
        return;
    }
    let k_left = k / 2;
    let k_right = k - k_left;
    let total: f64 = cells.iter().map(|&c| weights[c as usize]).sum();
    let target_weight = total * k_left as f64 / k as f64;
    let (mut left, mut right) = inertial_split_weighted(mesh, cells, target_weight, weights);
    if refine_passes > 0 {
        kl_refine_weighted(mesh, &mut left, &mut right, weights, refine_passes);
    }
    bisect_recursive_weighted(mesh, &left, k_left, refine_passes, weights, part, next_id);
    bisect_recursive_weighted(mesh, &right, k_right, refine_passes, weights, part, next_id);
}

/// Split `cells` by the plane through the weighted median along the direction
/// of largest coordinate extent (a cheap inertial axis).
fn inertial_split(mesh: &HexMesh, cells: &[u32], target_left: usize) -> (Vec<u32>, Vec<u32>) {
    let keyed = cells_by_principal_axis(mesh, cells);
    let left = keyed[..target_left].iter().map(|&(_, c)| c).collect();
    let right = keyed[target_left..].iter().map(|&(_, c)| c).collect();
    (left, right)
}

/// Weighted twin of [`inertial_split`]: walk the axis-sorted cells until the
/// accumulated weight first reaches `target_weight` (every subset gets at
/// least one cell).
fn inertial_split_weighted(
    mesh: &HexMesh,
    cells: &[u32],
    target_weight: f64,
    weights: &[f64],
) -> (Vec<u32>, Vec<u32>) {
    let keyed = cells_by_principal_axis(mesh, cells);
    let mut acc = 0.0f64;
    let mut split = keyed.len() - 1; // leave ≥ 1 cell on the right
    for (i, &(_, c)) in keyed.iter().enumerate() {
        acc += weights[c as usize];
        if acc >= target_weight && i + 1 < keyed.len() {
            split = i + 1;
            break;
        }
    }
    let split = split.max(1);
    let left = keyed[..split].iter().map(|&(_, c)| c).collect();
    let right = keyed[split..].iter().map(|&(_, c)| c).collect();
    (left, right)
}

/// Sort `cells` along the direction of largest coordinate extent (a cheap
/// inertial axis), ties broken by cell id for determinism.
fn cells_by_principal_axis(mesh: &HexMesh, cells: &[u32]) -> Vec<(f64, u32)> {
    // Principal direction: covariance power iteration (3 iterations suffice
    // for a split direction).
    let n = cells.len() as f64;
    let mut mean = Vec3::ZERO;
    for &c in cells {
        mean += mesh.cell_xyz[c as usize];
    }
    mean = mean / n;
    // Covariance matrix (symmetric 3x3).
    let mut cov = [[0.0f64; 3]; 3];
    for &c in cells {
        let d = mesh.cell_xyz[c as usize] - mean;
        let v = [d.x, d.y, d.z];
        for i in 0..3 {
            for j in 0..3 {
                cov[i][j] += v[i] * v[j];
            }
        }
    }
    let mut dir = Vec3::new(1.0, 0.7, 0.3); // generic start, not an eigenvector
    for _ in 0..8 {
        let v = [dir.x, dir.y, dir.z];
        let w = [
            cov[0][0] * v[0] + cov[0][1] * v[1] + cov[0][2] * v[2],
            cov[1][0] * v[0] + cov[1][1] * v[1] + cov[1][2] * v[2],
            cov[2][0] * v[0] + cov[2][1] * v[1] + cov[2][2] * v[2],
        ];
        let nv = Vec3::new(w[0], w[1], w[2]);
        if nv.norm() < 1e-30 {
            break;
        }
        dir = nv.normalized();
    }

    let mut keyed: Vec<(f64, u32)> = cells
        .iter()
        .map(|&c| (mesh.cell_xyz[c as usize].dot(dir), c))
        .collect();
    keyed.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
    keyed
}

/// Greedy Kernighan–Lin-style refinement: repeatedly swap the boundary pair
/// with the best combined gain. Sizes stay exactly at `target_left`.
fn kl_refine(
    mesh: &HexMesh,
    left: &mut [u32],
    right: &mut [u32],
    _target_left: usize,
    passes: usize,
) {
    use std::collections::HashSet;
    for _ in 0..passes {
        let lset: HashSet<u32> = left.iter().copied().collect();
        // Gain of moving cell c to the other side: (external − internal) edges.
        let gain = |c: u32, in_left: bool| -> i64 {
            let mut g = 0i64;
            for &nb in mesh.cell_neighbors.row(c as usize) {
                let nb_left = lset.contains(&nb);
                if nb_left == in_left {
                    g -= 1;
                } else {
                    g += 1;
                }
            }
            g
        };
        let mut best_l: Option<(i64, usize)> = None;
        for (i, &c) in left.iter().enumerate() {
            let g = gain(c, true);
            if best_l.is_none_or(|(bg, _)| g > bg) {
                best_l = Some((g, i));
            }
        }
        let mut best_r: Option<(i64, usize)> = None;
        for (j, &c) in right.iter().enumerate() {
            let g = gain(c, false);
            if best_r.is_none_or(|(bg, _)| g > bg) {
                best_r = Some((g, j));
            }
        }
        match (best_l, best_r) {
            (Some((gl, i)), Some((gr, j))) => {
                // Swapping keeps balance; the pair-gain over-counts by 2 if
                // the two cells are adjacent.
                let adjacent = mesh
                    .cell_neighbors
                    .row(left[i] as usize)
                    .contains(&right[j]);
                let pair_gain = gl + gr - if adjacent { 2 } else { 0 };
                if pair_gain > 0 {
                    std::mem::swap(&mut left[i], &mut right[j]);
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
}

/// Weighted twin of [`kl_refine`]: only cells with bitwise-equal weights may
/// swap, so the weighted balance achieved by the split is preserved exactly.
fn kl_refine_weighted(
    mesh: &HexMesh,
    left: &mut [u32],
    right: &mut [u32],
    weights: &[f64],
    passes: usize,
) {
    use std::collections::{HashMap, HashSet};
    for _ in 0..passes {
        let lset: HashSet<u32> = left.iter().copied().collect();
        let gain = |c: u32, in_left: bool| -> i64 {
            let mut g = 0i64;
            for &nb in mesh.cell_neighbors.row(c as usize) {
                let nb_left = lset.contains(&nb);
                if nb_left == in_left {
                    g -= 1;
                } else {
                    g += 1;
                }
            }
            g
        };
        // Best candidate per weight class (f64 bit pattern) on each side.
        let mut best_l: HashMap<u64, (i64, usize)> = HashMap::new();
        for (i, &c) in left.iter().enumerate() {
            let g = gain(c, true);
            let key = weights[c as usize].to_bits();
            let e = best_l.entry(key).or_insert((g, i));
            if g > e.0 {
                *e = (g, i);
            }
        }
        let mut best_r: HashMap<u64, (i64, usize)> = HashMap::new();
        for (j, &c) in right.iter().enumerate() {
            let g = gain(c, false);
            let key = weights[c as usize].to_bits();
            let e = best_r.entry(key).or_insert((g, j));
            if g > e.0 {
                *e = (g, j);
            }
        }
        // Pick the class with the best pair gain, deterministically (ties
        // broken by weight bit pattern).
        let mut best: Option<(i64, u64, usize, usize)> = None;
        for (&key, &(gl, i)) in &best_l {
            let Some(&(gr, j)) = best_r.get(&key) else {
                continue;
            };
            let adjacent = mesh
                .cell_neighbors
                .row(left[i] as usize)
                .contains(&right[j]);
            let pair_gain = gl + gr - if adjacent { 2 } else { 0 };
            if best.is_none_or(|(bg, bk, _, _)| pair_gain > bg || (pair_gain == bg && key < bk)) {
                best = Some((pair_gain, key, i, j));
            }
        }
        match best {
            Some((pair_gain, _, i, j)) if pair_gain > 0 => {
                std::mem::swap(&mut left[i], &mut right[j]);
            }
            _ => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_all_cells_exactly_once() {
        let mesh = HexMesh::build(3);
        let p = Partition::build(&mesh, 7, 2);
        assert_eq!(p.part.len(), mesh.n_cells());
        let total: usize = (0..7).map(|r| p.cells_of(r).len()).sum();
        assert_eq!(total, mesh.n_cells());
        assert!(p.part.iter().all(|&x| (x as usize) < 7));
    }

    #[test]
    fn balance_is_tight() {
        let mesh = HexMesh::build(4);
        for parts in [2usize, 4, 8, 16] {
            let p = Partition::build(&mesh, parts, 2);
            let q = p.quality(&mesh);
            assert!(
                q.imbalance < 1.01,
                "{parts} parts imbalance {}",
                q.imbalance
            );
        }
    }

    #[test]
    fn edge_cut_scales_like_surface_not_volume() {
        // For good geometric partitions of a 2-sphere mesh, doubling the part
        // count should grow the cut by roughly sqrt(2), definitely less than 2x.
        let mesh = HexMesh::build(5);
        let q4 = Partition::build(&mesh, 4, 1).quality(&mesh);
        let q16 = Partition::build(&mesh, 16, 1).quality(&mesh);
        assert!(
            (q16.edge_cut as f64) < 3.0 * q4.edge_cut as f64,
            "cut growth too fast: {} -> {}",
            q4.edge_cut,
            q16.edge_cut
        );
    }

    #[test]
    fn refinement_does_not_worsen_a_single_bisection() {
        // KL swaps only on positive pair gain, so a single bisection's cut is
        // monotonically non-increasing under refinement.
        let mesh = HexMesh::build(4);
        let raw = Partition::build(&mesh, 2, 0).quality(&mesh);
        let refined = Partition::build(&mesh, 2, 16).quality(&mesh);
        assert!(refined.edge_cut <= raw.edge_cut);
    }

    #[test]
    fn kway_refinement_stays_near_raw_quality() {
        // For k-way recursive bisection the refined cut is not guaranteed to
        // dominate (refinement reshapes the subsets fed to deeper splits),
        // but it must stay in the same quality class.
        let mesh = HexMesh::build(4);
        let raw = Partition::build(&mesh, 8, 0).quality(&mesh);
        let refined = Partition::build(&mesh, 8, 8).quality(&mesh);
        assert!((refined.edge_cut as f64) < 1.25 * raw.edge_cut as f64);
    }

    #[test]
    fn surface_profile_tracks_the_sqrt_law() {
        let mesh = HexMesh::build(5);
        let p = Partition::build(&mesh, 16, 2);
        let s = p.surface_profile(&mesh);
        assert_eq!(s.n_parts, 16);
        assert!((s.mean_cells - mesh.n_cells() as f64 / 16.0).abs() < 1e-9);
        // Compact 2-D subdomains: the perimeter coefficient sits in a
        // narrow band around the hex-tile ideal (≈ 3.7 · √n for perfect
        // hexagonal patches).
        assert!(
            (2.0..7.0).contains(&s.surface_coeff),
            "surface coeff {}",
            s.surface_coeff
        );
        assert!(
            s.max_ratio < 1.0,
            "halo larger than interior: {}",
            s.max_ratio
        );
        // The mean halo and the edge cut describe the same boundary: each
        // cut edge contributes one halo cell to each side, minus shared
        // corners — so total halo ≤ 2·cut.
        let q = p.quality(&mesh);
        assert!(s.mean_halo * 16.0 <= 2.0 * q.edge_cut as f64);
    }

    #[test]
    fn surface_coeff_is_stable_across_part_counts() {
        // The coefficient is the *shape* of a subdomain boundary, so it
        // should be roughly scale-free while halo counts vary 2×.
        let mesh = HexMesh::build(5);
        let s4 = Partition::build(&mesh, 4, 2).surface_profile(&mesh);
        let s16 = Partition::build(&mesh, 16, 2).surface_profile(&mesh);
        assert!(s4.mean_halo > 1.5 * s16.mean_halo);
        let ratio = s4.surface_coeff / s16.surface_coeff;
        assert!((0.5..2.0).contains(&ratio), "coeff drift {ratio}");
    }

    #[test]
    fn single_part_has_zero_cut() {
        let mesh = HexMesh::build(3);
        let q = Partition::build(&mesh, 1, 2).quality(&mesh);
        assert_eq!(q.edge_cut, 0);
        assert_eq!(q.imbalance, 1.0);
    }

    #[test]
    fn non_power_of_two_part_counts_stay_balanced() {
        let mesh = HexMesh::build(4);
        let p = Partition::build(&mesh, 6, 1);
        let q = p.quality(&mesh);
        assert!(q.imbalance < 1.05, "imbalance {}", q.imbalance);
    }

    fn test_window() -> RefinementWindow {
        RefinementWindow {
            lat_min: 0.1,
            lat_max: 0.7,
            lon_min: -0.5,
            lon_max: 0.9,
            weight: 4.0,
        }
    }

    #[test]
    fn refinement_window_contains_and_wraps() {
        let w = test_window();
        assert!(w.contains(0.4, 0.0));
        assert!(!w.contains(-0.2, 0.0));
        assert!(!w.contains(0.4, 2.0));
        // Antimeridian wrap: lon_min > lon_max.
        let wrap = RefinementWindow {
            lon_min: 3.0,
            lon_max: -3.0,
            ..w
        };
        assert!(wrap.contains(0.4, 3.1));
        assert!(wrap.contains(0.4, -3.1));
        assert!(!wrap.contains(0.4, 0.0));
    }

    #[test]
    fn uniform_weights_match_unweighted_build() {
        // With all weights 1.0 the weighted median and the count median agree
        // up to split-index rounding; the partition must be equally balanced.
        let mesh = HexMesh::build(3);
        let w = vec![1.0; mesh.n_cells()];
        let p = Partition::build_weighted(&mesh, 8, 2, &w);
        let q = p.weighted_quality(&mesh, &w);
        assert!(q.imbalance < 1.05, "imbalance {}", q.imbalance);
        assert_eq!(q.edge_cut, p.quality(&mesh).edge_cut);
    }

    #[test]
    fn refined_build_balances_weighted_load() {
        let mesh = HexMesh::build(4);
        let window = test_window();
        let n_window = window.cells(&mesh).len();
        assert!(n_window > 20, "window too small: {n_window} cells");
        let p = Partition::build_refined(&mesh, 8, 2, &window);
        // Weighted load must stay balanced...
        let wq = p.weighted_quality(&mesh, &window.weights(&mesh));
        assert!(wq.imbalance < 1.05, "weighted imbalance {}", wq.imbalance);
        // ...which forces raw cell counts to be *unbalanced*: ranks owning
        // the 4x-weighted window hold far fewer cells.
        let q = p.quality(&mesh);
        assert!(q.imbalance > 1.1, "cell imbalance only {}", q.imbalance);
        let min_cells = (0..8).map(|r| p.cells_of(r).len()).min().unwrap();
        let mean = mesh.n_cells() as f64 / 8.0;
        assert!(
            (min_cells as f64) < 0.8 * mean,
            "window ranks not lightened: min {min_cells} vs mean {mean}"
        );
    }

    #[test]
    fn weighted_refinement_does_not_worsen_a_single_bisection() {
        // Equal-weight-class swaps only fire on positive pair gain, so a
        // single weighted bisection's cut is monotone under refinement.
        let mesh = HexMesh::build(4);
        let w = test_window().weights(&mesh);
        let raw = Partition::build_weighted(&mesh, 2, 0, &w);
        let refined = Partition::build_weighted(&mesh, 2, 16, &w);
        assert!(refined.quality(&mesh).edge_cut <= raw.quality(&mesh).edge_cut);
        // And refinement must preserve the weighted balance bitwise.
        assert_eq!(
            raw.weighted_quality(&mesh, &w).imbalance.to_bits(),
            refined.weighted_quality(&mesh, &w).imbalance.to_bits()
        );
    }

    #[test]
    fn weighted_build_is_deterministic() {
        let mesh = HexMesh::build(3);
        let window = test_window();
        let a = Partition::build_refined(&mesh, 6, 2, &window);
        let b = Partition::build_refined(&mesh, 6, 2, &window);
        assert_eq!(a.part, b.part);
    }

    #[test]
    #[should_panic(expected = "one weight per cell")]
    fn weighted_build_rejects_wrong_length() {
        let mesh = HexMesh::build(2);
        let _ = Partition::build_weighted(&mesh, 2, 0, &[1.0, 2.0]);
    }
}
