//! Minimal 3-vector used for spherical geometry on the unit sphere.
//!
//! All mesh geometry is carried on the unit sphere and scaled by the Earth
//! radius only where physical lengths/areas are required, mirroring how GRIST
//! stores `rearth`-normalized geometry.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// A 3-component double-precision vector.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Vec3 {
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    #[inline]
    pub fn norm2(self) -> f64 {
        self.dot(self)
    }

    #[inline]
    pub fn norm(self) -> f64 {
        self.norm2().sqrt()
    }

    /// Unit vector in the same direction. Panics on the zero vector in debug
    /// builds; in release a zero vector yields NaNs, which the mesh builder
    /// never produces.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        debug_assert!(n > 0.0, "normalizing zero vector");
        self / n
    }

    /// Great-circle (geodesic) distance between two *unit* vectors.
    ///
    /// Uses the numerically robust `atan2(|a×b|, a·b)` form, accurate for
    /// both nearly-parallel and nearly-antipodal points.
    #[inline]
    pub fn arc_dist(self, o: Vec3) -> f64 {
        self.cross(o).norm().atan2(self.dot(o))
    }

    /// Latitude (radians) of a unit vector.
    #[inline]
    pub fn lat(self) -> f64 {
        self.z.clamp(-1.0, 1.0).asin()
    }

    /// Longitude (radians, in (-pi, pi]) of a unit vector.
    #[inline]
    pub fn lon(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Local unit east vector at this (unit) position. At the exact poles
    /// (where "east" is undefined — and subdivided icosahedra *do* place
    /// cells there) an arbitrary but fixed tangent direction is returned, so
    /// per-point tangent frames stay well-defined.
    #[inline]
    pub fn east(self) -> Vec3 {
        let e = Vec3::new(-self.y, self.x, 0.0);
        if e.norm2() < 1e-24 {
            Vec3::new(1.0, 0.0, 0.0)
        } else {
            e.normalized()
        }
    }

    /// Local unit north vector at this (unit) position.
    #[inline]
    pub fn north(self) -> Vec3 {
        // At the equator r=(1,0,0), east=(0,1,0), r×east=(0,0,1): north.
        self.cross(self.east())
    }

    /// Component of `self` tangent to the sphere at unit position `p`.
    #[inline]
    pub fn tangent_at(self, p: Vec3) -> Vec3 {
        self - p * self.dot(p)
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

/// Signed area (spherical excess) of the spherical triangle `(a, b, c)` on the
/// unit sphere. Positive when the vertices are counter-clockwise seen from
/// outside the sphere.
///
/// Uses the Eriksson/van-Oosterom–Strackee formula
/// `tan(E/2) = a·(b×c) / (1 + a·b + b·c + c·a)`, which is robust for the
/// small, well-shaped triangles produced by icosahedral subdivision.
pub fn spherical_triangle_area(a: Vec3, b: Vec3, c: Vec3) -> f64 {
    let num = a.dot(b.cross(c));
    let den = 1.0 + a.dot(b) + b.dot(c) + c.dot(a);
    2.0 * num.atan2(den)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arc_distance_matches_acos_off_axis() {
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::new(0.0, 1.0, 0.0);
        assert!((a.arc_dist(b) - std::f64::consts::FRAC_PI_2).abs() < 1e-14);
    }

    #[test]
    fn arc_distance_near_parallel_is_stable() {
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::new(1.0, 1e-9, 0.0).normalized();
        let d = a.arc_dist(b);
        assert!((d - 1e-9).abs() < 1e-15, "d = {d}");
    }

    #[test]
    fn octant_triangle_area_is_half_pi() {
        // One octant of the sphere has area 4π/8 = π/2.
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::new(0.0, 1.0, 0.0);
        let c = Vec3::new(0.0, 0.0, 1.0);
        assert!((spherical_triangle_area(a, b, c) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn triangle_area_sign_flips_with_orientation() {
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::new(0.0, 1.0, 0.0);
        let c = Vec3::new(0.0, 0.0, 1.0);
        let e1 = spherical_triangle_area(a, b, c);
        let e2 = spherical_triangle_area(a, c, b);
        assert!((e1 + e2).abs() < 1e-12);
    }

    #[test]
    fn east_north_form_right_handed_frame() {
        let p = Vec3::new(0.3, -0.5, 0.4).normalized();
        let e = p.east();
        let n = p.north();
        assert!(e.dot(p).abs() < 1e-12);
        assert!(n.dot(p).abs() < 1e-12);
        assert!(e.dot(n).abs() < 1e-12);
        // east × north = radial (right-handed)
        assert!((e.cross(n) - p).norm() < 1e-12);
    }

    #[test]
    fn lat_lon_roundtrip() {
        let p = Vec3::new(0.2, 0.7, -0.3).normalized();
        let (lat, lon) = (p.lat(), p.lon());
        let q = Vec3::new(lat.cos() * lon.cos(), lat.cos() * lon.sin(), lat.sin());
        assert!((p - q).norm() < 1e-12);
    }

    #[test]
    fn tangent_projection_removes_radial_part() {
        let p = Vec3::new(0.0, 0.0, 1.0);
        let v = Vec3::new(1.0, 2.0, 3.0);
        let t = v.tangent_at(p);
        assert!(t.dot(p).abs() < 1e-12);
        assert!((t - Vec3::new(1.0, 2.0, 0.0)).norm() < 1e-12);
    }
}
