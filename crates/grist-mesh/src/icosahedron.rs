//! The base icosahedron and its level-`L` geodesic subdivision.
//!
//! The GRIST grid hierarchy ("G-levels", Table 2 of the paper) is obtained by
//! `L` rounds of edge-midpoint subdivision of the icosahedron projected onto
//! the unit sphere. The resulting triangulation has
//!
//! * `10·4^L + 2` vertices  (→ cells of the hexagonal dual),
//! * `30·4^L`     edges     (→ edges of the dual),
//! * `20·4^L`     faces     (→ vertices of the dual).

use crate::vec3::Vec3;
use std::collections::HashMap;

/// A triangulation of the unit sphere: vertex positions plus CCW-oriented
/// (seen from outside) triangular faces.
#[derive(Debug, Clone)]
pub struct Triangulation {
    pub verts: Vec<Vec3>,
    pub faces: Vec<[u32; 3]>,
}

impl Triangulation {
    /// The regular icosahedron inscribed in the unit sphere, with all faces
    /// oriented counter-clockwise when viewed from outside.
    pub fn icosahedron() -> Self {
        let phi = (1.0 + 5.0_f64.sqrt()) / 2.0;
        let raw = [
            (-1.0, phi, 0.0),
            (1.0, phi, 0.0),
            (-1.0, -phi, 0.0),
            (1.0, -phi, 0.0),
            (0.0, -1.0, phi),
            (0.0, 1.0, phi),
            (0.0, -1.0, -phi),
            (0.0, 1.0, -phi),
            (phi, 0.0, -1.0),
            (phi, 0.0, 1.0),
            (-phi, 0.0, -1.0),
            (-phi, 0.0, 1.0),
        ];
        let verts: Vec<Vec3> = raw
            .iter()
            .map(|&(x, y, z)| Vec3::new(x, y, z).normalized())
            .collect();
        // Standard CCW face table for the vertex order above.
        let faces: Vec<[u32; 3]> = vec![
            [0, 11, 5],
            [0, 5, 1],
            [0, 1, 7],
            [0, 7, 10],
            [0, 10, 11],
            [1, 5, 9],
            [5, 11, 4],
            [11, 10, 2],
            [10, 7, 6],
            [7, 1, 8],
            [3, 9, 4],
            [3, 4, 2],
            [3, 2, 6],
            [3, 6, 8],
            [3, 8, 9],
            [4, 9, 5],
            [2, 4, 11],
            [6, 2, 10],
            [8, 6, 7],
            [9, 8, 1],
        ];
        let t = Triangulation { verts, faces };
        debug_assert!(t.faces_are_ccw());
        t
    }

    /// One round of midpoint subdivision: each face splits into 4, new
    /// vertices are the normalized edge midpoints (shared between the two
    /// faces adjacent to each edge).
    pub fn subdivide_once(&self) -> Self {
        let mut verts = self.verts.clone();
        let mut midpoint: HashMap<(u32, u32), u32> = HashMap::with_capacity(self.faces.len() * 2);
        let mut faces = Vec::with_capacity(self.faces.len() * 4);

        let mut mid = |a: u32, b: u32, verts: &mut Vec<Vec3>| -> u32 {
            let key = (a.min(b), a.max(b));
            *midpoint.entry(key).or_insert_with(|| {
                let m = ((verts[a as usize] + verts[b as usize]) * 0.5).normalized();
                verts.push(m);
                (verts.len() - 1) as u32
            })
        };

        for &[a, b, c] in &self.faces {
            let ab = mid(a, b, &mut verts);
            let bc = mid(b, c, &mut verts);
            let ca = mid(c, a, &mut verts);
            faces.push([a, ab, ca]);
            faces.push([b, bc, ab]);
            faces.push([c, ca, bc]);
            faces.push([ab, bc, ca]);
        }
        Triangulation { verts, faces }
    }

    /// Subdivide the icosahedron `level` times (G-level `level` in the
    /// paper's nomenclature).
    pub fn geodesic(level: u32) -> Self {
        let mut t = Self::icosahedron();
        for _ in 0..level {
            t = t.subdivide_once();
        }
        t
    }

    /// Expected counts for a level-`level` geodesic grid.
    pub fn expected_counts(level: u32) -> (usize, usize, usize) {
        let p = 4usize.pow(level);
        (10 * p + 2, 30 * p, 20 * p)
    }

    /// Number of edges, derived from Euler's formula `V - E + F = 2`.
    pub fn n_edges(&self) -> usize {
        self.verts.len() + self.faces.len() - 2
    }

    /// Check that every face is counter-clockwise when viewed from outside
    /// the sphere, i.e. the face normal points outward.
    pub fn faces_are_ccw(&self) -> bool {
        self.faces.iter().all(|&[a, b, c]| {
            let (a, b, c) = (
                self.verts[a as usize],
                self.verts[b as usize],
                self.verts[c as usize],
            );
            (b - a).cross(c - a).dot(a + b + c) > 0.0
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn icosahedron_counts_and_unit_vertices() {
        let t = Triangulation::icosahedron();
        assert_eq!(t.verts.len(), 12);
        assert_eq!(t.faces.len(), 20);
        for v in &t.verts {
            assert!((v.norm() - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn geodesic_counts_match_closed_form() {
        for level in 0..5 {
            let t = Triangulation::geodesic(level);
            let (nv, ne, nf) = Triangulation::expected_counts(level);
            assert_eq!(t.verts.len(), nv, "level {level} verts");
            assert_eq!(t.faces.len(), nf, "level {level} faces");
            assert_eq!(t.n_edges(), ne, "level {level} edges");
        }
    }

    #[test]
    fn subdivision_preserves_orientation() {
        let t = Triangulation::geodesic(3);
        assert!(t.faces_are_ccw());
    }

    #[test]
    fn subdivided_vertices_on_unit_sphere() {
        let t = Triangulation::geodesic(3);
        for v in &t.verts {
            assert!((v.norm() - 1.0).abs() < 1e-13);
        }
    }

    #[test]
    fn table2_grid_counts() {
        // Table 2: G6 has 41.0K cells / 123K edges / 81.9K vertices.
        let (cells, edges, verts) = Triangulation::expected_counts(6);
        assert_eq!(cells, 40_962);
        assert_eq!(edges, 122_880);
        assert_eq!(verts, 81_920);
        // G12 (1km) has 167M cells / 503M edges / 336M vertices.
        let (cells, edges, verts) = Triangulation::expected_counts(12);
        assert_eq!(cells, 167_772_162);
        assert_eq!(edges, 503_316_480);
        assert_eq!(verts, 335_544_320);
    }
}
