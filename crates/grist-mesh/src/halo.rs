//! Halo (ghost-cell) layout for a partitioned mesh.
//!
//! Given a [`Partition`], each rank owns a contiguous set of cells and needs
//! read access to `depth` rings of neighbouring cells owned by other ranks.
//! This module computes, per rank: the owned cells, the halo cells (grouped by
//! owning rank), and the matching send lists — the static schedule consumed by
//! `grist-runtime`'s gathered halo exchange (§3.1.3).

use crate::hexmesh::HexMesh;
use crate::partition::Partition;
use std::collections::{BTreeMap, BTreeSet};

/// The communication schedule of one rank.
#[derive(Debug, Clone)]
pub struct RankLocale {
    pub rank: usize,
    /// Cells this rank owns (global ids, sorted).
    pub owned_cells: Vec<u32>,
    /// Ghost cells this rank reads, grouped by the owning rank.
    /// Sorted by peer rank; cell lists sorted by global id.
    pub recv: Vec<(usize, Vec<u32>)>,
    /// Owned cells this rank must send, grouped by destination rank.
    pub send: Vec<(usize, Vec<u32>)>,
    /// Edges interior to or on the boundary of the owned region
    /// (both cells owned, or exactly one owned — the rank computes fluxes on
    /// all of these once halos are valid).
    pub local_edges: Vec<u32>,
}

/// Partition of one rank's owned region into a halo-independent interior
/// and a halo-adjacent boundary, the static schedule behind overlapping
/// halo exchange with interior compute: while neighbour messages are in
/// flight, kernels restricted to `interior_cells` / `interior_edges` read
/// only owned data, so they can run concurrently with the exchange; the
/// boundary remainder runs after the halos arrive.
#[derive(Debug, Clone)]
pub struct PhaseSplit {
    /// Owned cells at least `pad` rings away from any non-owned cell
    /// (every neighbour within `pad` hops is owned).
    pub interior_cells: Vec<u32>,
    /// Owned cells within `pad` rings of a non-owned cell.
    pub boundary_cells: Vec<u32>,
    /// Local edges with both adjacent cells interior.
    pub interior_edges: Vec<u32>,
    /// The remaining local edges (at least one adjacent cell is boundary
    /// or non-owned).
    pub boundary_edges: Vec<u32>,
}

impl RankLocale {
    /// Split the owned region for exchange/compute overlap. `pad` is the
    /// stencil radius the interior phase must tolerate: with `pad = p`,
    /// every cell within `p` hops of an interior cell is owned, so any
    /// chain of depth-1 kernels that stays `p` rings deep never reads a
    /// halo value. All four index lists are sorted; interior and boundary
    /// sets are disjoint and together cover exactly the owned cells /
    /// local edges.
    pub fn phase_split(&self, mesh: &HexMesh, pad: usize) -> PhaseSplit {
        assert!(pad >= 1, "interior pad must be at least 1");
        let owned: BTreeSet<u32> = self.owned_cells.iter().copied().collect();
        // Ring 1: owned cells touching a non-owned cell; grow `pad - 1`
        // more rings inward.
        let mut boundary: BTreeSet<u32> = self
            .owned_cells
            .iter()
            .copied()
            .filter(|&c| {
                mesh.cell_neighbors
                    .row(c as usize)
                    .iter()
                    .any(|nb| !owned.contains(nb))
            })
            .collect();
        let mut frontier = boundary.clone();
        for _ in 1..pad {
            let mut next = BTreeSet::new();
            for &c in &frontier {
                for &nb in mesh.cell_neighbors.row(c as usize) {
                    if owned.contains(&nb) && !boundary.contains(&nb) {
                        next.insert(nb);
                    }
                }
            }
            boundary.extend(next.iter().copied());
            frontier = next;
        }
        let interior_cells: Vec<u32> = self
            .owned_cells
            .iter()
            .copied()
            .filter(|c| !boundary.contains(c))
            .collect();
        let interior_set: BTreeSet<u32> = interior_cells.iter().copied().collect();
        let mut interior_edges = Vec::new();
        let mut boundary_edges = Vec::new();
        for &e in &self.local_edges {
            let [c1, c2] = mesh.edge_cells[e as usize];
            if interior_set.contains(&c1) && interior_set.contains(&c2) {
                interior_edges.push(e);
            } else {
                boundary_edges.push(e);
            }
        }
        PhaseSplit {
            interior_cells,
            boundary_cells: boundary.into_iter().collect(),
            interior_edges,
            boundary_edges,
        }
    }
}

/// Halo layouts for every rank of a partition.
#[derive(Debug, Clone)]
pub struct HaloLayout {
    pub depth: usize,
    pub locales: Vec<RankLocale>,
}

impl HaloLayout {
    /// Build a `depth`-ring halo layout (depth ≥ 1).
    pub fn build(mesh: &HexMesh, partition: &Partition, depth: usize) -> Self {
        assert!(depth >= 1, "halo depth must be at least 1");
        let n_parts = partition.n_parts;
        let mut locales = Vec::with_capacity(n_parts);

        for rank in 0..n_parts {
            let owned: Vec<u32> = partition.cells_of(rank);
            let owned_set: BTreeSet<u32> = owned.iter().copied().collect();

            // Grow `depth` rings outward from the owned region.
            let mut halo: BTreeSet<u32> = BTreeSet::new();
            let mut frontier: BTreeSet<u32> = owned_set.clone();
            for _ in 0..depth {
                let mut next = BTreeSet::new();
                for &c in &frontier {
                    for &nb in mesh.cell_neighbors.row(c as usize) {
                        if !owned_set.contains(&nb) && !halo.contains(&nb) {
                            next.insert(nb);
                        }
                    }
                }
                halo.extend(next.iter().copied());
                frontier = next;
            }

            let mut recv_by_rank: BTreeMap<usize, Vec<u32>> = BTreeMap::new();
            for &c in &halo {
                recv_by_rank
                    .entry(partition.part[c as usize] as usize)
                    .or_default()
                    .push(c);
            }

            let local_edges: Vec<u32> = (0..mesh.n_edges() as u32)
                .filter(|&e| {
                    let [c1, c2] = mesh.edge_cells[e as usize];
                    owned_set.contains(&c1) || owned_set.contains(&c2)
                })
                .collect();

            locales.push(RankLocale {
                rank,
                owned_cells: owned,
                recv: recv_by_rank.into_iter().collect(),
                send: Vec::new(), // filled below
                local_edges,
            });
        }

        // Send lists mirror the recv lists: rank r sends to s exactly the
        // cells s receives from r, in the same order.
        let mut sends: Vec<BTreeMap<usize, Vec<u32>>> = vec![BTreeMap::new(); n_parts];
        for loc in &locales {
            for (peer, cells) in &loc.recv {
                sends[*peer].insert(loc.rank, cells.clone());
            }
        }
        for (rank, send_map) in sends.into_iter().enumerate() {
            locales[rank].send = send_map.into_iter().collect();
        }

        HaloLayout { depth, locales }
    }

    /// Total number of cell values moved in one full exchange (sum over all
    /// send lists) — the per-variable communication volume.
    pub fn exchange_volume(&self) -> usize {
        self.locales
            .iter()
            .map(|l| l.send.iter().map(|(_, v)| v.len()).sum::<usize>())
            .sum()
    }

    /// Total number of point-to-point messages per exchange round.
    pub fn message_count(&self) -> usize {
        self.locales.iter().map(|l| l.send.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(level: u32, parts: usize, depth: usize) -> (HexMesh, Partition, HaloLayout) {
        let mesh = HexMesh::build(level);
        let p = Partition::build(&mesh, parts, 2);
        let h = HaloLayout::build(&mesh, &p, depth);
        (mesh, p, h)
    }

    #[test]
    fn send_and_recv_schedules_mirror() {
        let (_, _, h) = setup(3, 5, 1);
        for loc in &h.locales {
            for (peer, cells) in &loc.recv {
                let peer_send = h.locales[*peer]
                    .send
                    .iter()
                    .find(|(d, _)| *d == loc.rank)
                    .map(|(_, v)| v)
                    .expect("missing mirrored send list");
                assert_eq!(peer_send, cells);
            }
        }
    }

    #[test]
    fn halo_cells_are_owned_by_the_stated_peer() {
        let (_, p, h) = setup(3, 5, 2);
        for loc in &h.locales {
            for (peer, cells) in &loc.recv {
                for &c in cells {
                    assert_eq!(p.part[c as usize] as usize, *peer);
                }
            }
        }
    }

    #[test]
    fn depth1_halo_covers_all_boundary_neighbors() {
        let (mesh, p, h) = setup(3, 4, 1);
        for loc in &h.locales {
            let owned: BTreeSet<u32> = loc.owned_cells.iter().copied().collect();
            let halo: BTreeSet<u32> = loc
                .recv
                .iter()
                .flat_map(|(_, v)| v.iter().copied())
                .collect();
            for &c in &loc.owned_cells {
                for &nb in mesh.cell_neighbors.row(c as usize) {
                    if p.part[nb as usize] as usize != loc.rank {
                        assert!(
                            halo.contains(&nb),
                            "rank {} missing halo cell {nb}",
                            loc.rank
                        );
                    }
                }
                let _ = owned;
            }
        }
    }

    #[test]
    fn deeper_halo_is_superset() {
        let mesh = HexMesh::build(3);
        let p = Partition::build(&mesh, 4, 2);
        let h1 = HaloLayout::build(&mesh, &p, 1);
        let h2 = HaloLayout::build(&mesh, &p, 2);
        for (l1, l2) in h1.locales.iter().zip(&h2.locales) {
            let s1: BTreeSet<u32> = l1
                .recv
                .iter()
                .flat_map(|(_, v)| v.iter().copied())
                .collect();
            let s2: BTreeSet<u32> = l2
                .recv
                .iter()
                .flat_map(|(_, v)| v.iter().copied())
                .collect();
            assert!(s1.is_subset(&s2));
            assert!(s2.len() >= s1.len());
        }
    }

    #[test]
    fn local_edges_cover_every_edge_at_least_once() {
        let (mesh, _, h) = setup(3, 4, 1);
        let mut covered = vec![false; mesh.n_edges()];
        for loc in &h.locales {
            for &e in &loc.local_edges {
                covered[e as usize] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn phase_split_partitions_owned_cells_and_local_edges() {
        let (mesh, _, h) = setup(3, 5, 1);
        for loc in &h.locales {
            let split = loc.phase_split(&mesh, 1);
            let mut cells: Vec<u32> = split
                .interior_cells
                .iter()
                .chain(&split.boundary_cells)
                .copied()
                .collect();
            cells.sort_unstable();
            assert_eq!(cells, loc.owned_cells, "rank {}: cells", loc.rank);
            let interior: BTreeSet<u32> = split.interior_cells.iter().copied().collect();
            for c in &split.boundary_cells {
                assert!(!interior.contains(c), "rank {}: overlap", loc.rank);
            }
            let mut edges: Vec<u32> = split
                .interior_edges
                .iter()
                .chain(&split.boundary_edges)
                .copied()
                .collect();
            edges.sort_unstable();
            assert_eq!(edges, loc.local_edges, "rank {}: edges", loc.rank);
        }
    }

    #[test]
    fn interior_cells_only_see_owned_neighbors() {
        // The whole point of the split: a depth-1 stencil at an interior
        // cell (or either cell of an interior edge) never reads a halo.
        let (mesh, _, h) = setup(3, 5, 1);
        for loc in &h.locales {
            let owned: BTreeSet<u32> = loc.owned_cells.iter().copied().collect();
            let split = loc.phase_split(&mesh, 1);
            for &c in &split.interior_cells {
                for &nb in mesh.cell_neighbors.row(c as usize) {
                    assert!(
                        owned.contains(&nb),
                        "rank {}: interior cell {c} has non-owned neighbor {nb}",
                        loc.rank
                    );
                }
            }
            let interior: BTreeSet<u32> = split.interior_cells.iter().copied().collect();
            for &e in &split.interior_edges {
                for c in mesh.edge_cells[e as usize] {
                    assert!(interior.contains(&c), "interior edge {e} touches boundary");
                }
            }
        }
    }

    #[test]
    fn wider_pad_shrinks_the_interior_monotonically() {
        let (mesh, _, h) = setup(3, 4, 1);
        for loc in &h.locales {
            let s1 = loc.phase_split(&mesh, 1);
            let s2 = loc.phase_split(&mesh, 2);
            let i2: BTreeSet<u32> = s2.interior_cells.iter().copied().collect();
            let i1: BTreeSet<u32> = s1.interior_cells.iter().copied().collect();
            assert!(i2.is_subset(&i1), "pad 2 interior must shrink");
            // pad-2 interior cells are 2 hops from any non-owned cell.
            let owned: BTreeSet<u32> = loc.owned_cells.iter().copied().collect();
            for &c in &s2.interior_cells {
                for &nb in mesh.cell_neighbors.row(c as usize) {
                    assert!(owned.contains(&nb));
                    for &nb2 in mesh.cell_neighbors.row(nb as usize) {
                        assert!(
                            owned.contains(&nb2),
                            "cell {c}: 2-ring neighbor {nb2} not owned"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn exchange_volume_tracks_edge_cut() {
        // Depth-1 halo volume is bounded by twice the edge cut (each cut edge
        // contributes at most one halo cell on each side, and distinct cut
        // edges can share halo cells).
        let (mesh, p, h) = setup(4, 8, 1);
        let q = p.quality(&mesh);
        assert!(h.exchange_volume() <= 2 * q.edge_cut);
        assert!(h.exchange_volume() > 0);
    }
}
