//! Grid-quality metrics for the icosahedral hexagonal C-grid: the standard
//! quantities grid papers report (cell-area uniformity, primal–dual
//! orthogonality, edge-midpoint bisection error, cell regularity), used to
//! validate the mesh generator and to quantify what a grid-optimization pass
//! (spring dynamics / SCVT — not implemented, DESIGN.md) would buy.

use crate::hexmesh::HexMesh;
use crate::partition::RefinementWindow;

/// Summary statistics of one scalar quality measure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityStat {
    pub min: f64,
    pub max: f64,
    pub mean: f64,
}

impl QualityStat {
    fn from_iter(values: impl Iterator<Item = f64>) -> QualityStat {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        let mut n = 0usize;
        for v in values {
            min = min.min(v);
            max = max.max(v);
            sum += v;
            n += 1;
        }
        QualityStat {
            min,
            max,
            mean: sum / n.max(1) as f64,
        }
    }

    /// max/min ratio (1 = perfectly uniform).
    pub fn spread(&self) -> f64 {
        self.max / self.min
    }
}

/// Full quality report of a mesh.
#[derive(Debug, Clone, Copy)]
pub struct MeshQuality {
    /// Cell areas (normalized by the mean).
    pub cell_area: QualityStat,
    /// |cos| of the angle between each primal edge tangent and its dual edge
    /// direction complement — 0 means exactly orthogonal.
    pub orthogonality_defect: QualityStat,
    /// Distance between the primal/dual edge crossing point and the dual
    /// edge midpoint, normalized by the dual edge length — 0 means the
    /// Voronoi edge exactly bisects the Delaunay edge.
    pub bisection_defect: QualityStat,
    /// Per-cell ratio of the longest to shortest incident dual edge
    /// (regularity; 1 = regular polygon).
    pub cell_regularity: QualityStat,
}

/// Compute the quality report.
pub fn mesh_quality(mesh: &HexMesh) -> MeshQuality {
    let mean_area: f64 = mesh.cell_area.iter().sum::<f64>() / mesh.n_cells() as f64;
    let cell_area = QualityStat::from_iter(mesh.cell_area.iter().map(|&a| a / mean_area));

    let orthogonality_defect = QualityStat::from_iter((0..mesh.n_edges()).map(|e| {
        // normal (along dual direction) vs tangent (along primal edge):
        // orthogonal mesh ⇒ n·t = 0 at the crossing point.
        mesh.edge_normal[e].dot(mesh.edge_tangent[e]).abs()
    }));

    let bisection_defect = QualityStat::from_iter((0..mesh.n_edges()).map(|e| {
        let [c1, c2] = mesh.edge_cells[e];
        let mid_cells =
            ((mesh.cell_xyz[c1 as usize] + mesh.cell_xyz[c2 as usize]) * 0.5).normalized();
        // Crossing point ≈ intersection of the primal edge (between the two
        // dual vertices) with the dual edge: approximate with the midpoint
        // of the dual vertices projected on the sphere.
        let [v1, v2] = mesh.edge_verts[e];
        let cross = ((mesh.vert_xyz[v1 as usize] + mesh.vert_xyz[v2 as usize]) * 0.5).normalized();
        cross.arc_dist(mid_cells) / mesh.edge_de[e]
    }));

    let cell_regularity = QualityStat::from_iter((0..mesh.n_cells()).map(|c| {
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for &e in mesh.cell_edges.row(c) {
            let d = mesh.edge_de[e as usize];
            lo = lo.min(d);
            hi = hi.max(d);
        }
        hi / lo
    }));

    MeshQuality {
        cell_area,
        orthogonality_defect,
        bisection_defect,
        cell_regularity,
    }
}

/// [`mesh_quality`] restricted to a [`RefinementWindow`]: cell statistics
/// over the window's cells, edge statistics over edges whose *both* cells
/// fall inside. Gates that a regional-refinement target sits on a patch of
/// the grid at least as regular as the globe — the precondition for locally
/// densifying it without wrecking the operators.
///
/// Panics if the window contains no cell or no interior edge.
pub fn windowed_mesh_quality(mesh: &HexMesh, window: &RefinementWindow) -> MeshQuality {
    let in_window: Vec<bool> = mesh
        .cell_xyz
        .iter()
        .map(|p| window.contains(p.lat(), p.lon()))
        .collect();
    let n_in = in_window.iter().filter(|&&b| b).count();
    assert!(n_in > 0, "refinement window contains no cells");
    let edges: Vec<usize> = (0..mesh.n_edges())
        .filter(|&e| {
            let [c1, c2] = mesh.edge_cells[e];
            in_window[c1 as usize] && in_window[c2 as usize]
        })
        .collect();
    assert!(
        !edges.is_empty(),
        "refinement window contains no interior edges"
    );

    let mean_area: f64 = mesh
        .cell_area
        .iter()
        .zip(&in_window)
        .filter(|&(_, &b)| b)
        .map(|(&a, _)| a)
        .sum::<f64>()
        / n_in as f64;
    let cell_area = QualityStat::from_iter(
        mesh.cell_area
            .iter()
            .zip(&in_window)
            .filter(|&(_, &b)| b)
            .map(|(&a, _)| a / mean_area),
    );

    let orthogonality_defect = QualityStat::from_iter(
        edges
            .iter()
            .map(|&e| mesh.edge_normal[e].dot(mesh.edge_tangent[e]).abs()),
    );

    let bisection_defect = QualityStat::from_iter(edges.iter().map(|&e| {
        let [c1, c2] = mesh.edge_cells[e];
        let mid_cells =
            ((mesh.cell_xyz[c1 as usize] + mesh.cell_xyz[c2 as usize]) * 0.5).normalized();
        let [v1, v2] = mesh.edge_verts[e];
        let cross = ((mesh.vert_xyz[v1 as usize] + mesh.vert_xyz[v2 as usize]) * 0.5).normalized();
        cross.arc_dist(mid_cells) / mesh.edge_de[e]
    }));

    let cell_regularity =
        QualityStat::from_iter((0..mesh.n_cells()).filter(|&c| in_window[c]).map(|c| {
            let mut lo = f64::INFINITY;
            let mut hi = 0.0f64;
            for &e in mesh.cell_edges.row(c) {
                let d = mesh.edge_de[e as usize];
                lo = lo.min(d);
                hi = hi.max(d);
            }
            hi / lo
        }));

    MeshQuality {
        cell_area,
        orthogonality_defect,
        bisection_defect,
        cell_regularity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primal_and_dual_edges_are_orthogonal_by_construction() {
        // The circumcenter dual is a true Voronoi diagram: orthogonality is
        // exact up to floating-point noise.
        let q = mesh_quality(&HexMesh::build(4));
        assert!(
            q.orthogonality_defect.max < 1e-10,
            "defect {}",
            q.orthogonality_defect.max
        );
    }

    #[test]
    fn area_spread_matches_known_icosahedral_values() {
        // Un-optimized subdivision grids have max/min cell-area ratios near
        // 1.9 at moderate levels (literature value ~2 without SCVT).
        let q = mesh_quality(&HexMesh::build(5));
        assert!(
            (1.2..2.2).contains(&q.cell_area.spread()),
            "area spread {}",
            q.cell_area.spread()
        );
        assert!((q.cell_area.mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bisection_defect_is_small_but_nonzero() {
        // Voronoi edges bisect Delaunay edges exactly in the plane; on the
        // sphere with irregular triangles a small defect remains.
        let q = mesh_quality(&HexMesh::build(4));
        assert!(
            q.bisection_defect.mean < 0.15,
            "mean defect {}",
            q.bisection_defect.mean
        );
        assert!(
            q.bisection_defect.max < 0.5,
            "max defect {}",
            q.bisection_defect.max
        );
    }

    #[test]
    fn cells_are_reasonably_regular() {
        let q = mesh_quality(&HexMesh::build(4));
        assert!(
            q.cell_regularity.mean < 1.35,
            "mean regularity {}",
            q.cell_regularity.mean
        );
        assert!(q.cell_regularity.min >= 1.0);
    }

    #[test]
    fn windowed_quality_matches_global_class() {
        // A mid-latitude window sees the same grid family as the globe:
        // its stats must land inside (or match) the global bounds.
        let mesh = HexMesh::build(4);
        let window = RefinementWindow {
            lat_min: 0.1,
            lat_max: 0.8,
            lon_min: -0.6,
            lon_max: 0.9,
            weight: 4.0,
        };
        let global = mesh_quality(&mesh);
        let local = windowed_mesh_quality(&mesh, &window);
        assert!(local.orthogonality_defect.max <= global.orthogonality_defect.max + 1e-15);
        assert!(local.cell_regularity.max <= global.cell_regularity.max);
        assert!(local.cell_regularity.min >= 1.0);
        assert!((local.cell_area.mean - 1.0).abs() < 1e-12);
        assert!(local.bisection_defect.max <= global.bisection_defect.max);
    }

    #[test]
    #[should_panic(expected = "no cells")]
    fn empty_window_panics() {
        let mesh = HexMesh::build(3);
        let window = RefinementWindow {
            lat_min: 0.2,
            lat_max: 0.1, // inverted: empty
            lon_min: 0.0,
            lon_max: 0.1,
            weight: 2.0,
        };
        let _ = windowed_mesh_quality(&mesh, &window);
    }

    #[test]
    fn quality_is_stable_across_levels() {
        // Subdivision is self-similar: metrics should not degrade with level.
        let q3 = mesh_quality(&HexMesh::build(3));
        let q5 = mesh_quality(&HexMesh::build(5));
        assert!(q5.cell_area.spread() < 1.25 * q3.cell_area.spread());
        assert!(q5.cell_regularity.mean < 1.25 * q3.cell_regularity.mean);
    }
}
