//! # grist-mesh
//!
//! The unstructured icosahedral hexagonal C-grid substrate of the GRIST-rs
//! reproduction (PPoPP '25 "AI-Enhanced 1km-Resolution Seamless Global
//! Weather and Climate Model"): geodesic grid generation, the Voronoi dual
//! mesh with full connectivity and spherical metric terms, a METIS-style
//! graph partitioner, BFS index-sequence optimization, and halo layouts.
//!
//! ```
//! use grist_mesh::HexMesh;
//! let mesh = HexMesh::build(4); // G4: 2562 cells
//! assert_eq!(mesh.n_cells(), 2562);
//! let total_area: f64 = mesh.cell_area.iter().sum();
//! assert!((total_area - 4.0 * std::f64::consts::PI).abs() < 1e-9);
//! ```

// Indexed loops mirror the Fortran stencil kernels they reproduce and are
// clearer than iterator chains for staggered-grid code.
#![allow(clippy::needless_range_loop)]
pub mod halo;
pub mod hexmesh;
pub mod icosahedron;
pub mod partition;
pub mod quality;
pub mod reorder;
pub mod vec3;

pub use halo::{HaloLayout, PhaseSplit, RankLocale};
pub use hexmesh::{Csr, HexMesh};
pub use icosahedron::Triangulation;
pub use partition::{Partition, PartitionQuality, RefinementWindow, SurfaceProfile};
pub use quality::{mesh_quality, windowed_mesh_quality, MeshQuality, QualityStat};
pub use reorder::{aligned_edge_order, bfs_cell_order, edge_index_span, permute_mesh, Permutation};
pub use vec3::{spherical_triangle_area, Vec3};

/// Earth's mean radius in metres (the `rearth` constant of GRIST).
pub const EARTH_RADIUS_M: f64 = 6.371e6;

/// Earth's rotation rate in rad/s.
pub const EARTH_OMEGA: f64 = 7.292e-5;
