//! Index-sequence optimization (§3.1.3): breadth-first-search reordering of
//! the indirect-addressed unstructured grid to improve cache hit rates.
//!
//! The paper: "we perform the mapping through indirect addressing, and
//! optimize the index sequence using the breadth-first-search method to
//! enhance the cache hit rate." This module provides the BFS cell permutation,
//! an aligned edge ordering, and a locality metric (mean index distance across
//! edges) used by the ablation bench to quantify the benefit.

use crate::hexmesh::HexMesh;
use std::collections::VecDeque;

/// A permutation of `n` items. `new_of_old[i]` is the new index of old item
/// `i`; `old_of_new[j]` is the old index living at new position `j`.
#[derive(Debug, Clone)]
pub struct Permutation {
    pub new_of_old: Vec<u32>,
    pub old_of_new: Vec<u32>,
}

impl Permutation {
    pub fn identity(n: usize) -> Self {
        let v: Vec<u32> = (0..n as u32).collect();
        Permutation {
            new_of_old: v.clone(),
            old_of_new: v,
        }
    }

    /// Build from an `old_of_new` ordering (a visit sequence).
    pub fn from_order(old_of_new: Vec<u32>) -> Self {
        let mut new_of_old = vec![u32::MAX; old_of_new.len()];
        for (new, &old) in old_of_new.iter().enumerate() {
            assert_eq!(
                new_of_old[old as usize],
                u32::MAX,
                "duplicate index in order"
            );
            new_of_old[old as usize] = new as u32;
        }
        assert!(
            new_of_old.iter().all(|&x| x != u32::MAX),
            "order does not cover all indices"
        );
        Permutation {
            new_of_old,
            old_of_new,
        }
    }

    pub fn len(&self) -> usize {
        self.new_of_old.len()
    }

    pub fn is_empty(&self) -> bool {
        self.new_of_old.is_empty()
    }

    /// Reorder a data vector so `out[new] = data[old]`.
    pub fn apply<T: Clone>(&self, data: &[T]) -> Vec<T> {
        assert_eq!(data.len(), self.len());
        self.old_of_new
            .iter()
            .map(|&old| data[old as usize].clone())
            .collect()
    }
}

/// BFS ordering of the cell graph starting from `seed`.
///
/// Visits cells level by level, so cells that share an edge land at nearby
/// indices, which is exactly what a hardware cache (or the simulated LDCache)
/// wants from the indirect-index streams of the dycore kernels.
pub fn bfs_cell_order(mesh: &HexMesh, seed: u32) -> Permutation {
    let n = mesh.n_cells();
    assert!((seed as usize) < n);
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let mut queue = VecDeque::new();
    // Handle potential disconnection defensively (the sphere mesh is always
    // connected, but partition-local subgraphs may not be).
    let mut start = seed as usize;
    loop {
        if !seen[start] {
            seen[start] = true;
            queue.push_back(start as u32);
            while let Some(c) = queue.pop_front() {
                order.push(c);
                for &nb in mesh.cell_neighbors.row(c as usize) {
                    if !seen[nb as usize] {
                        seen[nb as usize] = true;
                        queue.push_back(nb);
                    }
                }
            }
        }
        match seen.iter().position(|&s| !s) {
            Some(next) => start = next,
            None => break,
        }
    }
    Permutation::from_order(order)
}

/// Edge ordering aligned with a cell permutation: edges sorted by the lesser
/// of their two (new) cell indices, then the greater. Kernels that walk edges
/// then touch cell arrays see near-sequential cell accesses.
pub fn aligned_edge_order(mesh: &HexMesh, cell_perm: &Permutation) -> Permutation {
    let mut keyed: Vec<(u32, u32, u32)> = (0..mesh.n_edges() as u32)
        .map(|e| {
            let [c1, c2] = mesh.edge_cells[e as usize];
            let a = cell_perm.new_of_old[c1 as usize];
            let b = cell_perm.new_of_old[c2 as usize];
            (a.min(b), a.max(b), e)
        })
        .collect();
    keyed.sort_unstable();
    Permutation::from_order(keyed.into_iter().map(|(_, _, e)| e).collect())
}

/// Locality metric: mean |i − j| over all edges, where i, j are the (new)
/// indices of the edge's two cells. Lower is better for cache behaviour.
pub fn edge_index_span(mesh: &HexMesh, cell_perm: &Permutation) -> f64 {
    let mut total = 0.0;
    for &[c1, c2] in &mesh.edge_cells {
        let a = cell_perm.new_of_old[c1 as usize] as f64;
        let b = cell_perm.new_of_old[c2 as usize] as f64;
        total += (a - b).abs();
    }
    total / mesh.n_edges() as f64
}

/// Apply a cell permutation and an edge permutation to the mesh, renumbering
/// every connectivity table. Dual vertices keep their numbering (they are
/// only read through `vert_cells` / `vert_edges`, which are updated).
pub fn permute_mesh(mesh: &HexMesh, cell_perm: &Permutation, edge_perm: &Permutation) -> HexMesh {
    assert_eq!(cell_perm.len(), mesh.n_cells());
    assert_eq!(edge_perm.len(), mesh.n_edges());
    let cmap = |c: u32| cell_perm.new_of_old[c as usize];
    let emap = |e: u32| edge_perm.new_of_old[e as usize];

    let mut out = mesh.clone();
    out.cell_xyz = cell_perm.apply(&mesh.cell_xyz);
    out.cell_area = cell_perm.apply(&mesh.cell_area);

    out.edge_mid = edge_perm.apply(&mesh.edge_mid);
    out.edge_normal = edge_perm.apply(&mesh.edge_normal);
    out.edge_tangent = edge_perm.apply(&mesh.edge_tangent);
    out.edge_le = edge_perm.apply(&mesh.edge_le);
    out.edge_de = edge_perm.apply(&mesh.edge_de);
    out.edge_cells = edge_perm
        .apply(&mesh.edge_cells)
        .into_iter()
        .map(|[a, b]| [cmap(a), cmap(b)])
        .collect();
    out.edge_verts = edge_perm.apply(&mesh.edge_verts);

    // Cell CSR tables: permute rows, remap values.
    let permute_csr_rows = |csr: &crate::hexmesh::Csr, map_val: &dyn Fn(u32) -> u32| {
        let rows: Vec<Vec<u32>> = (0..csr.n_rows())
            .map(|new_c| {
                let old_c = cell_perm.old_of_new[new_c] as usize;
                csr.row(old_c).iter().map(|&v| map_val(v)).collect()
            })
            .collect();
        crate::hexmesh::Csr::from_rows(&rows)
    };
    out.cell_edges = permute_csr_rows(&mesh.cell_edges, &emap);
    out.cell_neighbors = permute_csr_rows(&mesh.cell_neighbors, &cmap);
    out.cell_verts = permute_csr_rows(&mesh.cell_verts, &|v| v);
    // Signs follow the same row permutation (values unchanged).
    {
        let mut signs = Vec::with_capacity(mesh.cell_edge_sign.len());
        for new_c in 0..mesh.n_cells() {
            let old_c = cell_perm.old_of_new[new_c] as usize;
            let rng = mesh.cell_edges.row_range(old_c);
            signs.extend_from_slice(&mesh.cell_edge_sign[rng]);
        }
        out.cell_edge_sign = signs;
    }

    out.vert_cells = mesh
        .vert_cells
        .iter()
        .map(|&[a, b, c]| [cmap(a), cmap(b), cmap(c)])
        .collect();
    out.vert_edges = mesh
        .vert_edges
        .iter()
        .map(|&[a, b, c]| [emap(a), emap(b), emap(c)])
        .collect();
    out.vert_edge_sign = mesh.vert_edge_sign.clone();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfs_order_is_a_permutation() {
        let mesh = HexMesh::build(3);
        let p = bfs_cell_order(&mesh, 0);
        assert_eq!(p.len(), mesh.n_cells());
        let mut seen = vec![false; p.len()];
        for &o in &p.old_of_new {
            assert!(!seen[o as usize]);
            seen[o as usize] = true;
        }
    }

    #[test]
    fn bfs_improves_edge_index_span_over_shuffled() {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mesh = HexMesh::build(4);
        let bfs = bfs_cell_order(&mesh, 0);
        // Compare against a random permutation (worst-case baseline).
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut shuffled: Vec<u32> = (0..mesh.n_cells() as u32).collect();
        shuffled.shuffle(&mut rng);
        let random = Permutation::from_order(shuffled);
        let span_bfs = edge_index_span(&mesh, &bfs);
        let span_rand = edge_index_span(&mesh, &random);
        assert!(
            span_bfs < span_rand / 4.0,
            "BFS span {span_bfs} not much better than random span {span_rand}"
        );
    }

    #[test]
    fn permuted_mesh_preserves_invariants() {
        let mesh = HexMesh::build(3);
        let cp = bfs_cell_order(&mesh, 5);
        let ep = aligned_edge_order(&mesh, &cp);
        let m2 = permute_mesh(&mesh, &cp, &ep);
        // Total area invariant.
        let a1: f64 = mesh.cell_area.iter().sum();
        let a2: f64 = m2.cell_area.iter().sum();
        assert!((a1 - a2).abs() < 1e-12);
        // Edge-cell consistency: positions still match across the renumbering.
        for e in 0..m2.n_edges() {
            let [c1, c2] = m2.edge_cells[e];
            let mid = (m2.cell_xyz[c1 as usize] + m2.cell_xyz[c2 as usize]).normalized();
            assert!((mid - m2.edge_mid[e]).norm() < 1e-12);
        }
        // Neighbor/edge alignment survives.
        for c in 0..m2.n_cells() {
            for (&e, &nb) in m2.cell_edges.row(c).iter().zip(m2.cell_neighbors.row(c)) {
                let [c1, c2] = m2.edge_cells[e as usize];
                assert!((c1 == c as u32 && c2 == nb) || (c2 == c as u32 && c1 == nb));
            }
        }
    }

    #[test]
    fn permutation_apply_roundtrip() {
        let p = Permutation::from_order(vec![2, 0, 3, 1]);
        let data = vec![10, 20, 30, 40];
        let out = p.apply(&data);
        assert_eq!(out, vec![30, 10, 40, 20]);
        for old in 0..4usize {
            assert_eq!(out[p.new_of_old[old] as usize], data[old]);
        }
    }
}
