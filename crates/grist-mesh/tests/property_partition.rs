//! Property tests for `Partition::build` / `build_weighted` invariants.
//!
//! Seeded sweeps over (level, n_parts, refine_passes) asserting the
//! contracts every consumer of the partitioner relies on:
//!
//! 1. every cell is assigned exactly once, to a valid part id;
//! 2. part sizes stay within the recursive-bisection balance bound;
//! 3. KL refinement (`refine_passes > 0`) never worsens the edge cut of a
//!    single bisection, and stays within a tight factor for k-way builds;
//! 4. weighted builds obey the same coverage rules and keep *weighted*
//!    balance, with refinement preserving the split weights bitwise.

use grist_mesh::{HexMesh, Partition, RefinementWindow};

/// xorshift64* — a tiny deterministic generator so the sweep is seeded and
/// reproducible without pulling in any dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn in_range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() % (hi - lo + 1) as u64) as usize
    }

    fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn assert_exact_cover(p: &Partition, mesh: &HexMesh, n_parts: usize, ctx: &str) {
    assert_eq!(p.n_parts, n_parts, "{ctx}: n_parts");
    assert_eq!(p.part.len(), mesh.n_cells(), "{ctx}: one entry per cell");
    assert!(
        p.part.iter().all(|&x| (x as usize) < n_parts),
        "{ctx}: part id out of range"
    );
    // Every part id must actually be used (recursive bisection guarantees
    // non-empty subsets), and the per-part lists must tile the cell set.
    let mut counts = vec![0usize; n_parts];
    for &x in &p.part {
        counts[x as usize] += 1;
    }
    assert!(
        counts.iter().all(|&c| c > 0),
        "{ctx}: empty part in {counts:?}"
    );
    let total: usize = (0..n_parts).map(|r| p.cells_of(r).len()).sum();
    assert_eq!(total, mesh.n_cells(), "{ctx}: cells_of does not tile");
}

#[test]
fn every_cell_assigned_exactly_once_across_sweep() {
    let mut rng = Rng(0x5eed_0001);
    for level in [2u32, 3] {
        let mesh = HexMesh::build(level);
        for _ in 0..8 {
            let n_parts = rng.in_range(1, 17);
            let passes = rng.in_range(0, 4);
            let p = Partition::build(&mesh, n_parts, passes);
            assert_exact_cover(
                &p,
                &mesh,
                n_parts,
                &format!("level {level} parts {n_parts} passes {passes}"),
            );
        }
    }
}

#[test]
fn part_sizes_stay_within_balance_bound() {
    // Recursive bisection with proportional targets keeps every part within
    // one cell of its share per split level; across ≤ 5 levels of recursion
    // a 5% envelope is generous and has held since the seed.
    let mut rng = Rng(0x5eed_0002);
    let mesh = HexMesh::build(4);
    for _ in 0..10 {
        let n_parts = rng.in_range(2, 24);
        let passes = rng.in_range(0, 3);
        let q = Partition::build(&mesh, n_parts, passes).quality(&mesh);
        assert!(
            q.imbalance < 1.05,
            "parts {n_parts} passes {passes}: imbalance {}",
            q.imbalance
        );
    }
}

#[test]
fn refinement_never_worsens_a_single_bisection_cut() {
    // For k = 2 the KL sweep only ever applies positive-gain swaps, so the
    // refined cut is monotonically non-increasing in refine_passes.
    for level in [2u32, 3, 4] {
        let mesh = HexMesh::build(level);
        let raw = Partition::build(&mesh, 2, 0).quality(&mesh).edge_cut;
        let mut prev = raw;
        for passes in [1usize, 2, 4, 8, 16] {
            let cut = Partition::build(&mesh, 2, passes).quality(&mesh).edge_cut;
            assert!(
                cut <= prev,
                "level {level}: cut rose {prev} -> {cut} at {passes} passes"
            );
            prev = cut;
        }
        assert!(prev <= raw);
    }
}

#[test]
fn kway_refinement_stays_within_factor_of_raw() {
    // k-way cuts are not strictly monotone (refined bisections reshape the
    // subsets fed to deeper splits) but must stay in the same quality class.
    let mut rng = Rng(0x5eed_0003);
    let mesh = HexMesh::build(4);
    for _ in 0..6 {
        let n_parts = rng.in_range(3, 16);
        let raw = Partition::build(&mesh, n_parts, 0).quality(&mesh).edge_cut;
        let refined = Partition::build(&mesh, n_parts, 4).quality(&mesh).edge_cut;
        assert!(
            (refined as f64) < 1.25 * raw as f64,
            "parts {n_parts}: refined cut {refined} vs raw {raw}"
        );
    }
}

#[test]
fn weighted_builds_cover_and_balance_weighted_load() {
    let mut rng = Rng(0x5eed_0004);
    let mesh = HexMesh::build(3);
    for round in 0..6 {
        let n_parts = rng.in_range(2, 12);
        let passes = rng.in_range(0, 3);
        let window = RefinementWindow {
            lat_min: rng.uniform(-0.8, 0.0),
            lat_max: rng.uniform(0.1, 0.9),
            lon_min: rng.uniform(-2.0, 0.0),
            lon_max: rng.uniform(0.1, 2.0),
            weight: rng.uniform(1.5, 6.0),
        };
        let weights = window.weights(&mesh);
        let p = Partition::build_weighted(&mesh, n_parts, passes, &weights);
        assert_exact_cover(
            &p,
            &mesh,
            n_parts,
            &format!("round {round} parts {n_parts} passes {passes}"),
        );
        let wq = p.weighted_quality(&mesh, &weights);
        // The window boundary quantizes the achievable split, so the
        // weighted bound is looser than the unweighted 1.05 — but must stay
        // far from the weight ratio itself (no part hoards the window).
        assert!(
            wq.imbalance < 1.30,
            "round {round} parts {n_parts}: weighted imbalance {}",
            wq.imbalance
        );
    }
}

#[test]
fn weighted_refinement_preserves_split_weights_bitwise() {
    let mesh = HexMesh::build(3);
    let window = RefinementWindow {
        lat_min: -0.2,
        lat_max: 0.6,
        lon_min: 0.3,
        lon_max: 1.8,
        weight: 3.0,
    };
    let weights = window.weights(&mesh);
    let sum_of = |p: &Partition, rank: usize| -> u64 {
        p.cells_of(rank)
            .iter()
            .map(|&c| weights[c as usize])
            .sum::<f64>()
            .to_bits()
    };
    let raw = Partition::build_weighted(&mesh, 2, 0, &weights);
    let refined = Partition::build_weighted(&mesh, 2, 8, &weights);
    // Equal-weight-class swaps: each side's total weight is bitwise stable.
    assert_eq!(sum_of(&raw, 0), sum_of(&refined, 0));
    assert_eq!(sum_of(&raw, 1), sum_of(&refined, 1));
    // And the cut is monotone, as in the unweighted case.
    assert!(refined.quality(&mesh).edge_cut <= raw.quality(&mesh).edge_cut);
}
