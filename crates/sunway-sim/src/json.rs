//! A minimal JSON value, writer, and recursive-descent parser.
//!
//! The workspace builds fully offline (see README "Offline builds"), so
//! serde is not available; the observability layer needs only a small,
//! dependency-free subset: objects, arrays, strings, numbers, bools, and
//! null. Numbers are carried as `f64`, which is exact for the integer
//! counters the metrics registry emits up to 2^53 (wall-clock nanoseconds
//! overflow that after ~104 days of accumulated kernel time).
//!
//! # Non-finite numbers (pinned convention)
//!
//! JSON has no literal for NaN or ±Inf, and a diagnostic export must never
//! abort the run that produced it. A non-finite [`Json::Num`] therefore
//! serializes as a *bit-pattern string*, `"f64:<16 lowercase hex digits>"`
//! (the raw IEEE-754 bits, the same wire format checkpoint fields use), so
//! the emitted document stays standard JSON and the value — including any
//! NaN payload — survives losslessly. The parser is plain JSON and reads
//! the token back as a [`Json::Str`]; [`Json::as_f64`] decodes the prefix
//! form, so numeric accessors round-trip every `f64` bit pattern exactly.

use std::fmt::Write as _;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered key/value pairs (duplicate keys keep the last).
    Obj(Vec<(String, Json)>),
}

/// Parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed, trailing
    /// garbage rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Object field lookup (None for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, also decoding the `"f64:<16 hex>"` bit-pattern string
    /// the writer emits for non-finite numbers (see the module docs).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::Str(s) => parse_f64_bits(s),
            _ => None,
        }
    }

    /// Numeric field as a non-negative integer (counters, call counts).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize with 2-space indentation and a trailing newline — the
    /// format of the committed `BENCH_*.json` baselines.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_num(out, *x),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, x: f64) {
    if !x.is_finite() {
        // Pinned convention (module docs): NaN/±Inf become bit-pattern
        // strings so the document stays standard JSON and `as_f64` can
        // recover the exact bits.
        let _ = write!(out, "\"f64:{:016x}\"", x.to_bits());
    } else if x.fract() == 0.0 && x.abs() < 9.0e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        // `{:?}` round-trips f64 exactly through parse.
        let _ = write!(out, "{x:?}");
    }
}

/// Decode the `"f64:<16 lowercase hex digits>"` bit-pattern form.
fn parse_f64_bits(s: &str) -> Option<f64> {
    let hex = s.strip_prefix("f64:")?;
    if hex.len() != 16
        || !hex
            .bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
    {
        return None;
    }
    u64::from_str_radix(hex, 16).ok().map(f64::from_bits)
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are not reassembled; the writer never
                            // emits them (it escapes only control characters).
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so always valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    s.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-3.25e2").unwrap(), Json::Num(-325.0));
        assert_eq!(
            Json::parse("\"a\\nb\"").unwrap(),
            Json::Str("a\nb".to_string())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, 2, {"b": "c"}], "d": {}}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b").unwrap().as_str(), Some("c"));
        assert_eq!(v.get("d").unwrap().as_obj().unwrap().len(), 0);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "12 34", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
        let e = Json::parse("{\"a\": }").unwrap_err();
        assert!(e.to_string().contains("byte"), "{e}");
    }

    #[test]
    fn pretty_round_trips() {
        let v = Json::Obj(vec![
            (
                "counters".into(),
                Json::Obj(vec![
                    ("dma.bytes".into(), Json::Num(12_582_912.0)),
                    ("odd".into(), Json::Num(0.125)),
                ]),
            ),
            (
                "names".into(),
                Json::Arr(vec![Json::Str("a/b".into()), Json::Null]),
            ),
            ("quote\"tab\t".into(), Json::Bool(false)),
        ]);
        let text = v.pretty();
        assert_eq!(Json::parse(&text).unwrap(), v);
        // Integers print without a fraction.
        assert!(text.contains("12582912"), "{text}");
    }

    #[test]
    fn non_finite_numbers_round_trip_as_bit_pattern_strings() {
        // Regression: `write_num` used to assert finiteness, so one NaN
        // wall-time or diagnostic aborted the whole metrics/trace export.
        let quiet_nan = f64::from_bits(0x7ff8_0000_dead_beef); // payloaded NaN
        for x in [f64::NAN, quiet_nan, f64::INFINITY, f64::NEG_INFINITY] {
            let text = Json::Num(x).pretty();
            let back = Json::parse(&text).expect("stays standard JSON");
            let y = back.as_f64().expect("bit-pattern string decodes");
            assert_eq!(y.to_bits(), x.to_bits(), "lossless for {x}");
        }
        assert_eq!(
            Json::Num(f64::INFINITY).pretty().trim(),
            "\"f64:7ff0000000000000\""
        );
        // Finite numbers keep the plain literal form.
        assert_eq!(Json::Num(2.5).pretty().trim(), "2.5");
    }

    #[test]
    fn as_f64_rejects_malformed_bit_pattern_strings() {
        for bad in [
            "f64:",
            "f64:123",               // too short
            "f64:7ff00000000000000", // too long
            "f64:7FF0000000000000",  // uppercase is not the pinned form
            "f64:7ffz000000000000",  // non-hex
            "not a number",
        ] {
            assert_eq!(Json::Str(bad.into()).as_f64(), None, "accepted {bad:?}");
        }
        // The sanctioned form decodes even when embedded in a document.
        let doc = Json::parse(r#"{"p99": "f64:7ff8000000000000"}"#).unwrap();
        assert!(doc.get("p99").unwrap().as_f64().unwrap().is_nan());
    }

    #[test]
    fn u64_accessor_guards_range_and_fraction() {
        assert_eq!(Json::Num(42.0).as_u64(), Some(42));
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(0.5).as_u64(), None);
    }

    #[test]
    fn unicode_passes_through() {
        let v = Json::parse("\"héllo → wörld\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo → wörld"));
        assert_eq!(
            Json::parse(&Json::Str("héllo → wörld".into()).pretty()).unwrap(),
            v
        );
    }
}
