//! The memory-address-distributing pool allocator of §3.3.3 / Fig. 6b:
//! "a memory-address-distributor enabled pool-based memory allocator to
//! replace the original malloc function. This allocator ensures that the
//! starting addresses of arrays are uniformly distributed across cache
//! lanes."
//!
//! The allocator manages a simulated (or real, via offsets into one backing
//! pool) address space. Allocations are rounded up to cache lines and each
//! successive allocation's *set index* is advanced by `sets / slots`, so `k`
//! concurrently streamed arrays start in `k` different cache lanes.

use crate::arch::SunwaySpec;

/// Allocation strategy, for the Fig. 9 "DST" ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocPolicy {
    /// Original malloc behaviour: way-aligned bases (thrash-prone).
    Aligned,
    /// The paper's distributor: bases staggered across cache lanes.
    Distributed,
}

/// Pool-based allocator handing out simulated byte addresses.
#[derive(Debug, Clone)]
pub struct PoolAllocator {
    pub policy: AllocPolicy,
    line: usize,
    sets: usize,
    ways: usize,
    /// Number of distribution slots (how many lanes to spread across).
    slots: usize,
    next_slot: usize,
    cursor: u64,
    allocations: Vec<(u64, usize)>,
}

impl PoolAllocator {
    pub fn new(policy: AllocPolicy, spec: &SunwaySpec, slots: usize) -> Self {
        assert!(slots >= 1);
        PoolAllocator {
            policy,
            line: spec.ldcache_line,
            sets: spec.ldcache_sets(),
            ways: spec.ldcache_ways,
            slots,
            next_slot: 0,
            cursor: 0,
            allocations: Vec::new(),
        }
    }

    /// Allocate `size` bytes; returns the base address.
    pub fn alloc(&mut self, size: usize) -> u64 {
        let way_bytes = (self.sets * self.line) as u64;
        let base = match self.policy {
            AllocPolicy::Aligned => {
                // Round the cursor up to a way boundary — the pathological
                // behaviour of a buddy-style malloc on large arrays.
                self.cursor.div_ceil(way_bytes) * way_bytes
            }
            AllocPolicy::Distributed => {
                // Advance to the next way boundary, then offset into the
                // assigned lane slot.
                let aligned = self.cursor.div_ceil(way_bytes) * way_bytes;
                let lane_stride = (self.sets / self.slots).max(1) * self.line;
                let off = (self.next_slot as u64) * lane_stride as u64;
                self.next_slot = (self.next_slot + 1) % self.slots;
                aligned + off
            }
        };
        let rounded = size.div_ceil(self.line) * self.line;
        self.cursor = base + rounded as u64;
        self.allocations.push((base, size));
        base
    }

    /// Free all allocations (pool semantics: arena reset between solver
    /// phases).
    pub fn reset(&mut self) {
        self.cursor = 0;
        self.next_slot = 0;
        self.allocations.clear();
    }

    /// Set indices (cache lanes) of all live allocation bases.
    pub fn base_sets(&self) -> Vec<usize> {
        self.allocations
            .iter()
            .map(|&(b, _)| ((b / self.line as u64) % self.sets as u64) as usize)
            .collect()
    }

    pub fn bases(&self) -> Vec<u64> {
        self.allocations.iter().map(|&(b, _)| b).collect()
    }

    /// Uniformity metric of base-address distribution across lanes: the
    /// normalized maximum bin count over `slots` equal lane bins (1.0 =
    /// everything in one lane, 1/slots = perfectly uniform).
    ///
    /// An empty pool has no distribution to measure, so the result is
    /// `f64::NAN` — not `0.0`, which would read as "better than perfectly
    /// uniform" (the metric's documented floor is `1/slots`).
    pub fn lane_concentration(&self) -> f64 {
        if self.allocations.is_empty() {
            return f64::NAN;
        }
        let mut bins = vec![0usize; self.slots];
        for s in self.base_sets() {
            bins[s * self.slots / self.sets] += 1;
        }
        *bins.iter().max().unwrap() as f64 / self.allocations.len() as f64
    }

    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Number of live allocations whose base landed on a cache set (lane)
    /// already taken by an earlier allocation — the thrash-risk count.
    /// 0 means every base starts in its own lane (the distributor's goal);
    /// the aligned policy reports `n − 1` for `n` same-size large arrays,
    /// since every way-aligned base maps to set 0.
    pub fn lane_conflicts(&self) -> u64 {
        let mut seen = std::collections::BTreeSet::new();
        self.base_sets()
            .into_iter()
            .filter(|&s| !seen.insert(s))
            .count() as u64
    }

    /// Fold the allocator's distribution quality into the metrics registry:
    /// `alloc.allocations` and `alloc.lane_conflicts`.
    pub fn record_into(&self, metrics: &crate::metrics::Metrics) {
        metrics.counter_add("alloc.allocations", self.allocations.len() as u64);
        metrics.counter_add("alloc.lane_conflicts", self.lane_conflicts());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ldcache::{simulate_streams, LdCache};

    fn spec() -> SunwaySpec {
        SunwaySpec::next_gen()
    }

    #[test]
    fn aligned_policy_puts_every_base_in_lane_zero() {
        let mut a = PoolAllocator::new(AllocPolicy::Aligned, &spec(), 8);
        for _ in 0..6 {
            a.alloc(100 * 1024);
        }
        assert!(a.base_sets().iter().all(|&s| s == 0));
        assert_eq!(a.lane_concentration(), 1.0);
    }

    #[test]
    fn distributed_policy_spreads_bases() {
        let mut a = PoolAllocator::new(AllocPolicy::Distributed, &spec(), 8);
        for _ in 0..8 {
            a.alloc(100 * 1024);
        }
        let sets = a.base_sets();
        let distinct: std::collections::BTreeSet<usize> = sets.iter().copied().collect();
        assert_eq!(
            distinct.len(),
            8,
            "8 allocations must land in 8 lanes: {sets:?}"
        );
        assert!(a.lane_concentration() <= 0.25);
    }

    #[test]
    fn distributor_fixes_the_fig6_thrashing() {
        let s = spec();
        let n_arrays = 7; // compute_rrr streams 7 arrays
        let mut aligned = PoolAllocator::new(AllocPolicy::Aligned, &s, n_arrays);
        let mut dist = PoolAllocator::new(AllocPolicy::Distributed, &s, n_arrays);
        for _ in 0..n_arrays {
            aligned.alloc(256 * 1024);
            dist.alloc(256 * 1024);
        }
        let mut cache = LdCache::sw26010p(&s);
        let r_aligned = simulate_streams(&mut cache, &aligned.bases(), 8, 20_000);
        let mut cache = LdCache::sw26010p(&s);
        let r_dist = simulate_streams(&mut cache, &dist.bases(), 8, 20_000);
        assert!(r_aligned < 0.2, "aligned should thrash: {r_aligned}");
        assert!(r_dist > 0.9, "distributed should hit: {r_dist}");
    }

    #[test]
    fn allocations_do_not_overlap() {
        for policy in [AllocPolicy::Aligned, AllocPolicy::Distributed] {
            let mut a = PoolAllocator::new(policy, &spec(), 8);
            let mut spans: Vec<(u64, u64)> = Vec::new();
            for sz in [1000usize, 64 * 1024, 200 * 1024, 8, 512 * 1024] {
                let b = a.alloc(sz);
                spans.push((b, b + sz as u64));
            }
            spans.sort();
            for w in spans.windows(2) {
                assert!(w[0].1 <= w[1].0, "overlap: {spans:?}");
            }
        }
    }

    #[test]
    fn reset_recycles_the_pool() {
        let mut a = PoolAllocator::new(AllocPolicy::Distributed, &spec(), 4);
        let b1 = a.alloc(4096);
        a.reset();
        let b2 = a.alloc(4096);
        assert_eq!(b1, b2);
    }

    #[test]
    fn empty_pool_concentration_is_nan_not_zero() {
        for policy in [AllocPolicy::Aligned, AllocPolicy::Distributed] {
            let a = PoolAllocator::new(policy, &spec(), 8);
            assert!(a.lane_concentration().is_nan());
            // And after a reset the metric goes back to undefined, not 0.0.
            let mut a = a;
            a.alloc(4096);
            assert!(!a.lane_concentration().is_nan());
            a.reset();
            assert!(a.lane_concentration().is_nan());
        }
    }

    #[test]
    fn lane_conflicts_flag_aligned_but_not_distributed_layouts() {
        let s = spec();
        let n = 7;
        let mut aligned = PoolAllocator::new(AllocPolicy::Aligned, &s, n);
        let mut dist = PoolAllocator::new(AllocPolicy::Distributed, &s, n);
        for _ in 0..n {
            aligned.alloc(256 * 1024);
            dist.alloc(256 * 1024);
        }
        assert_eq!(aligned.lane_conflicts(), (n - 1) as u64);
        assert_eq!(dist.lane_conflicts(), 0);
        let m = crate::metrics::Metrics::default();
        aligned.record_into(&m);
        assert_eq!(m.counter("alloc.allocations"), n as u64);
        assert_eq!(m.counter("alloc.lane_conflicts"), (n - 1) as u64);
    }

    #[test]
    fn single_slot_pool_is_fully_concentrated() {
        // With one distribution slot the floor and ceiling coincide: every
        // base lands in the single bin, so concentration is exactly 1.0.
        for policy in [AllocPolicy::Aligned, AllocPolicy::Distributed] {
            let mut a = PoolAllocator::new(policy, &spec(), 1);
            a.alloc(64 * 1024);
            assert_eq!(a.lane_concentration(), 1.0);
            for _ in 0..5 {
                a.alloc(100 * 1024);
            }
            assert_eq!(a.lane_concentration(), 1.0);
        }
    }
}
