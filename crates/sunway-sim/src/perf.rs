//! Roofline-style performance model for dycore kernels on SW26010P — the
//! machinery behind Fig. 9 and the scaling projections.
//!
//! The model encodes the paper's §4.6 observations:
//!
//! * "the MPE code is computation-bound" — the MPE runs scalar, latency-
//!   dominated code; mixed precision barely helps it because f32 and f64
//!   cheap flops cost the same on Sunway; only division/elemental functions
//!   speed up.
//! * "CPE code appears to be constrained by memory bandwidth, and mixed
//!   precision reduces data size, conserving memory bandwidth and increasing
//!   cache hit ratio" — the 64-CPE cluster shares 51.2 GB/s; its time is
//!   `max(compute, traffic/bandwidth)`, where traffic is inflated by LDCache
//!   misses (a miss fetches a whole 256-B line) as measured by the cache
//!   simulator.

use crate::arch::SunwaySpec;
use crate::distributor::{AllocPolicy, PoolAllocator};
use crate::ldcache::{simulate_streams, LdCache};

/// Architecture-independent kernel description (mirrors the cost descriptors
/// exported by `grist-dycore::kernels`).
#[derive(Debug, Clone, Copy)]
pub struct KernelSpec {
    pub name: &'static str,
    /// Output points (elements × levels).
    pub points: usize,
    /// Cheap flops per point.
    pub flops_per_point: f64,
    /// Expensive ops (div/pow/exp) per point.
    pub expensive_per_point: f64,
    /// Distinct arrays streamed per point.
    pub arrays: usize,
    /// Whether a mixed-precision variant exists (Fig. 9: `calc_coriolis_term`
    /// has none).
    pub has_mixed_variant: bool,
}

/// The execution variants of Fig. 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecTarget {
    /// Baseline: double precision on the management core.
    MpeDp,
    /// Double precision on 64 CPEs, malloc-aligned arrays.
    CpeDp,
    /// + memory address distribution (DST).
    CpeDpDst,
    /// Mixed precision on 64 CPEs, aligned arrays.
    CpeMix,
    /// Mixed precision + DST — the full optimization of the paper.
    CpeMixDst,
}

impl ExecTarget {
    pub fn label(self) -> &'static str {
        match self {
            ExecTarget::MpeDp => "MPE-DP",
            ExecTarget::CpeDp => "CPE-DP",
            ExecTarget::CpeDpDst => "CPE-DP+DST",
            ExecTarget::CpeMix => "CPE-MIX",
            ExecTarget::CpeMixDst => "CPE-MIX+DST",
        }
    }

    pub fn fig9_all() -> [ExecTarget; 5] {
        [
            ExecTarget::MpeDp,
            ExecTarget::CpeDp,
            ExecTarget::CpeDpDst,
            ExecTarget::CpeMix,
            ExecTarget::CpeMixDst,
        ]
    }

    fn elem_bytes(self, spec_has_mixed: bool) -> usize {
        match self {
            ExecTarget::MpeDp | ExecTarget::CpeDp | ExecTarget::CpeDpDst => 8,
            ExecTarget::CpeMix | ExecTarget::CpeMixDst => {
                if spec_has_mixed {
                    4
                } else {
                    8
                }
            }
        }
    }

    fn policy(self) -> AllocPolicy {
        match self {
            ExecTarget::CpeDpDst | ExecTarget::CpeMixDst => AllocPolicy::Distributed,
            _ => AllocPolicy::Aligned,
        }
    }
}

/// Calibration constants of the model (documented in DESIGN.md §6).
#[derive(Debug, Clone, Copy)]
pub struct PerfModel {
    /// Sustained scalar MPE throughput \[cheap-flop slots/s\] — far below
    /// peak: in-order scalar Fortran with indirect addressing.
    pub mpe_sustained: f64,
    /// Expensive-op latency in cheap-flop slots, f64.
    pub expensive_slots_f64: f64,
    /// Same in f32 ("except for division and elemental functions").
    pub expensive_slots_f32: f64,
    /// Scalar-load cost per streamed array per point on the MPE (the MPE
    /// pays cache/memory latency even when the CPE cluster streams).
    pub mpe_mem_slots_per_array: f64,
    /// Per-CPE sustained cheap-flop rate \[flops/s\].
    pub cpe_sustained: f64,
    /// Management overhead multiplier on CPE memory traffic for kernels with
    /// many concurrent streams (DMA descriptor pressure).
    pub many_stream_overhead: f64,
    /// Kernel launch + barrier cost per CPE offload \[s\].
    pub launch_overhead: f64,
}

impl Default for PerfModel {
    fn default() -> Self {
        PerfModel {
            mpe_sustained: 0.5e9,
            expensive_slots_f64: 8.0,
            expensive_slots_f32: 5.0,
            mpe_mem_slots_per_array: 1.5,
            cpe_sustained: 8.0e9,
            many_stream_overhead: 2.0,
            launch_overhead: 5.0e-6,
        }
    }
}

/// Measure the LDCache hit ratio of a kernel's stream pattern under an
/// allocation policy, using the cache and allocator simulators.
pub fn stream_hit_ratio(
    spec: &SunwaySpec,
    arrays: usize,
    elem_bytes: usize,
    policy: AllocPolicy,
) -> f64 {
    stream_hit_ratio_inner(spec, arrays, elem_bytes, policy, None)
}

/// [`stream_hit_ratio`] with counter recording: the simulated cache's
/// hit/miss/conflict-eviction totals and the allocator's lane-conflict
/// count land in the metrics registry (`ldcache.*`, `alloc.*`).
pub fn stream_hit_ratio_metered(
    spec: &SunwaySpec,
    arrays: usize,
    elem_bytes: usize,
    policy: AllocPolicy,
    metrics: &crate::metrics::Metrics,
) -> f64 {
    stream_hit_ratio_inner(spec, arrays, elem_bytes, policy, Some(metrics))
}

fn stream_hit_ratio_inner(
    spec: &SunwaySpec,
    arrays: usize,
    elem_bytes: usize,
    policy: AllocPolicy,
    metrics: Option<&crate::metrics::Metrics>,
) -> f64 {
    let mut alloc = PoolAllocator::new(policy, spec, arrays.max(1));
    let bases: Vec<u64> = (0..arrays).map(|_| alloc.alloc(512 * 1024)).collect();
    let mut cache = LdCache::sw26010p(spec);
    // Enough iterations to wash out cold misses.
    let ratio = simulate_streams(&mut cache, &bases, elem_bytes, 20_000);
    if let Some(m) = metrics {
        cache.record_into(m);
        alloc.record_into(m);
    }
    ratio
}

/// Modeled execution time of `kernel` on `target` \[seconds\].
pub fn kernel_time(
    kernel: &KernelSpec,
    target: ExecTarget,
    spec: &SunwaySpec,
    model: &PerfModel,
) -> f64 {
    kernel_time_inner(kernel, target, spec, model, None)
}

/// [`kernel_time`] with counter recording: CPE targets run the LDCache and
/// allocator simulators, whose hit/miss/conflict totals are folded into the
/// registry (the MPE path touches no simulated cache, so it records
/// nothing).
pub fn kernel_time_metered(
    kernel: &KernelSpec,
    target: ExecTarget,
    spec: &SunwaySpec,
    model: &PerfModel,
    metrics: &crate::metrics::Metrics,
) -> f64 {
    kernel_time_inner(kernel, target, spec, model, Some(metrics))
}

fn kernel_time_inner(
    kernel: &KernelSpec,
    target: ExecTarget,
    spec: &SunwaySpec,
    model: &PerfModel,
    metrics: Option<&crate::metrics::Metrics>,
) -> f64 {
    let pts = kernel.points as f64;
    let elem = target.elem_bytes(kernel.has_mixed_variant);
    let exp_slots = if elem == 4 {
        model.expensive_slots_f32
    } else {
        model.expensive_slots_f64
    };
    let slots_per_point = kernel.flops_per_point + kernel.expensive_per_point * exp_slots;

    match target {
        ExecTarget::MpeDp => {
            let mem_slots = kernel.arrays as f64 * model.mpe_mem_slots_per_array;
            // f64 expensive latency on the MPE regardless of variant.
            let mpe_slots = kernel.flops_per_point
                + kernel.expensive_per_point * model.expensive_slots_f64
                + mem_slots;
            pts * mpe_slots / model.mpe_sustained
        }
        _ => {
            let compute = pts * slots_per_point / (spec.cpes_per_cg as f64 * model.cpe_sustained);
            let hit = stream_hit_ratio_inner(spec, kernel.arrays, elem, target.policy(), metrics);
            // A miss fetches a whole cache line; traffic per access is
            // line·(1−hit) (the streaming ideal 1−hit = elem/line recovers
            // exactly elem bytes per access).
            let mut traffic = pts * kernel.arrays as f64 * spec.ldcache_line as f64 * (1.0 - hit);
            if kernel.arrays > spec.ldcache_ways {
                traffic *= model.many_stream_overhead;
            }
            let memory = traffic / spec.ddr_bandwidth;
            compute.max(memory) + model.launch_overhead
        }
    }
}

/// Fig. 9 row: speedups of every CPE variant over the MPE-DP baseline.
#[derive(Debug, Clone)]
pub struct Fig9Row {
    pub name: &'static str,
    pub speedup: Vec<(ExecTarget, f64)>,
}

/// Build the full Fig. 9 table for a set of kernels.
pub fn fig9_table(kernels: &[KernelSpec], spec: &SunwaySpec, model: &PerfModel) -> Vec<Fig9Row> {
    kernels
        .iter()
        .map(|k| {
            let base = kernel_time(k, ExecTarget::MpeDp, spec, model);
            let speedup = ExecTarget::fig9_all()[1..]
                .iter()
                .map(|&t| (t, base / kernel_time(k, t, spec, model)))
                .collect();
            Fig9Row {
                name: k.name,
                speedup,
            }
        })
        .collect()
}

/// The four named kernels of Fig. 9 at a given grid size (edges/cells ×
/// levels), with instruction mixes matching `grist-dycore::kernels`.
pub fn fig9_kernels(n_cells: usize, n_edges: usize, nlev: usize) -> Vec<KernelSpec> {
    vec![
        KernelSpec {
            name: "tracer_transport_hori_flux_limiter",
            points: n_edges * nlev,
            flops_per_point: 14.0,
            expensive_per_point: 1.0,
            arrays: 6,
            has_mixed_variant: true,
        },
        KernelSpec {
            name: "compute_rrr",
            points: n_cells * nlev,
            flops_per_point: 8.0,
            expensive_per_point: 1.0,
            arrays: 7,
            has_mixed_variant: true,
        },
        KernelSpec {
            name: "primal_normal_flux_edge",
            points: n_edges * nlev,
            flops_per_point: 9.0,
            expensive_per_point: 2.0,
            arrays: 7,
            has_mixed_variant: true,
        },
        KernelSpec {
            name: "calc_coriolis_term",
            points: n_edges * nlev,
            flops_per_point: 1.0,
            expensive_per_point: 0.0,
            arrays: 3,
            has_mixed_variant: false,
        },
        KernelSpec {
            name: "grad_kinetic_energy",
            points: n_edges * nlev,
            flops_per_point: 3.0,
            expensive_per_point: 0.0,
            arrays: 4,
            has_mixed_variant: true,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SunwaySpec, PerfModel, Vec<KernelSpec>) {
        let spec = SunwaySpec::next_gen();
        let model = PerfModel::default();
        // G6-per-CG scale: 41k cells / 128 CGs ≈ 320 cells, 960 edges, 30 lev
        let kernels = fig9_kernels(40_962, 122_880, 30);
        (spec, model, kernels)
    }

    fn speedup(k: &KernelSpec, t: ExecTarget, spec: &SunwaySpec, model: &PerfModel) -> f64 {
        kernel_time(k, ExecTarget::MpeDp, spec, model) / kernel_time(k, t, spec, model)
    }

    #[test]
    fn full_optimization_lands_in_the_20_to_70x_band() {
        // Artifact appendix: "an acceleration ratio of about 20-70x compared
        // to MPE double-precision version for major kernels".
        let (spec, model, kernels) = setup();
        for k in &kernels {
            let s = speedup(k, ExecTarget::CpeMixDst, &spec, &model);
            assert!(
                (10.0..120.0).contains(&s),
                "{}: CPE-MIX+DST speedup {s} far outside the paper band",
                k.name
            );
        }
        // And the majority strictly within 20–70.
        let in_band = kernels
            .iter()
            .filter(|k| {
                let s = speedup(k, ExecTarget::CpeMixDst, &spec, &model);
                (15.0..85.0).contains(&s)
            })
            .count();
        assert!(in_band >= 3, "only {in_band} kernels near the 20–70x band");
    }

    #[test]
    fn dst_rescues_kernels_with_more_arrays_than_ways() {
        let (spec, model, kernels) = setup();
        let rrr = kernels.iter().find(|k| k.name == "compute_rrr").unwrap();
        let no_dst = speedup(rrr, ExecTarget::CpeMix, &spec, &model);
        let dst = speedup(rrr, ExecTarget::CpeMixDst, &spec, &model);
        assert!(
            dst > 3.0 * no_dst,
            "DST must fix thrashing for 7-array kernel: {no_dst} -> {dst}"
        );
    }

    #[test]
    fn coriolis_gains_least_from_the_optimizations() {
        // §4.6: "calc_coriolis_term, lacking mixed precision optimization and
        // accessing relatively few arrays, derives minimal benefit".
        let (spec, model, kernels) = setup();
        let cor = kernels
            .iter()
            .find(|k| k.name == "calc_coriolis_term")
            .unwrap();
        let base = speedup(cor, ExecTarget::CpeDp, &spec, &model);
        let full = speedup(cor, ExecTarget::CpeMixDst, &spec, &model);
        assert!(
            full < 1.3 * base,
            "coriolis should gain little from MIX+DST: {base} -> {full}"
        );
        // while primal_normal_flux gains a lot from MIX
        let pnf = kernels
            .iter()
            .find(|k| k.name == "primal_normal_flux_edge")
            .unwrap();
        let pnf_dp = speedup(pnf, ExecTarget::CpeDpDst, &spec, &model);
        let pnf_mix = speedup(pnf, ExecTarget::CpeMixDst, &spec, &model);
        assert!(
            pnf_mix > 1.5 * pnf_dp,
            "MIX must help divide/pow-heavy kernel"
        );
    }

    #[test]
    fn mixed_precision_barely_helps_the_mpe() {
        // §4.6: "mixed precision typically does not yield significant
        // speedup on the MPE side" — our MPE path treats f32 and f64 cheap
        // flops identically, so for flop-dominated kernels the model gives
        // exactly no speedup.
        let (spec, model, kernels) = setup();
        let ke = kernels
            .iter()
            .find(|k| k.name == "grad_kinetic_energy")
            .unwrap();
        let t64 = kernel_time(ke, ExecTarget::MpeDp, &spec, &model);
        // An MPE-MIX variant would differ only in expensive-op latency; ke
        // has none, so time is identical.
        assert_eq!(ke.expensive_per_point, 0.0);
        assert!(t64 > 0.0);
    }

    #[test]
    fn mix_halves_cpe_traffic_for_bandwidth_bound_kernels() {
        let (spec, model, kernels) = setup();
        let ke = kernels
            .iter()
            .find(|k| k.name == "grad_kinetic_energy")
            .unwrap();
        let t_dp = kernel_time(ke, ExecTarget::CpeDpDst, &spec, &model);
        let t_mix = kernel_time(ke, ExecTarget::CpeMixDst, &spec, &model);
        let ratio = t_dp / t_mix;
        assert!(
            (1.5..2.5).contains(&ratio),
            "f32 should ~halve memory time: {ratio}"
        );
    }

    #[test]
    fn metered_kernel_time_matches_and_fills_cache_counters() {
        let (spec, model, kernels) = setup();
        let m = crate::metrics::Metrics::default();
        let rrr = kernels.iter().find(|k| k.name == "compute_rrr").unwrap();
        // MPE path: no simulated cache, no counters.
        let t_mpe = kernel_time_metered(rrr, ExecTarget::MpeDp, &spec, &model, &m);
        assert_eq!(t_mpe, kernel_time(rrr, ExecTarget::MpeDp, &spec, &model));
        assert_eq!(m.counter("ldcache.misses"), 0);
        // CPE path: identical time, counters populated.
        let t_cpe = kernel_time_metered(rrr, ExecTarget::CpeMix, &spec, &model, &m);
        assert_eq!(t_cpe, kernel_time(rrr, ExecTarget::CpeMix, &spec, &model));
        assert!(m.counter("ldcache.hits") + m.counter("ldcache.misses") > 0);
        assert_eq!(m.counter("alloc.allocations"), rrr.arrays as u64);
        // The un-distributed CpeMix target thrashes 7 aligned arrays.
        assert!(m.counter("ldcache.conflict_evictions") > 0);
    }

    #[test]
    fn fig9_table_is_complete() {
        let (spec, model, kernels) = setup();
        let table = fig9_table(&kernels, &spec, &model);
        assert_eq!(table.len(), kernels.len());
        for row in &table {
            assert_eq!(row.speedup.len(), 4);
            assert!(row.speedup.iter().all(|&(_, s)| s.is_finite() && s > 0.0));
        }
    }
}
