//! Event-level tracing: per-thread timelines behind the aggregated
//! [`Metrics`](crate::metrics::Metrics) registry.
//!
//! The registry answers "how much" (total nanoseconds per kernel); it cannot
//! answer "when", "in what order", or "who waited on whom" — the questions
//! behind the paper's Fig. 9 attribution, the SDPD throughput budget, and
//! the halo-wait/rank-imbalance diagnosis. This module records *timestamped
//! events* — spans, kernel dispatches, per-CPE chunk executions, DMA
//! transfers, halo exchanges and their per-message waits, fault injections,
//! retries, degradations, checkpoints, and restores — into bounded
//! per-thread ring buffers, and turns them into:
//!
//! * a Chrome/Perfetto `trace_event` JSON timeline
//!   ([`TraceSnapshot::to_chrome_json`]) with one process lane per rank and
//!   one thread lane per recording thread (driver "MPE" plus the `cpe-N`
//!   job-server workers), loadable at <https://ui.perfetto.dev>;
//! * an attribution report ([`analyze`]): per-kernel critical-path share,
//!   halo wait-vs-transfer split, rank load-imbalance factor, and a
//!   roofline placement per kernel (arithmetic intensity from exact FLOP
//!   totals + the DMA byte model vs. the [`arch`](crate::arch) peak/bandwidth).
//!
//! # Cost model
//!
//! Tracing is **off by default** and toggled at runtime ([`Tracer::enable`]
//! / [`Tracer::disable`]). Every recording entry point first does one
//! relaxed atomic load and returns — no lock, no allocation, no clock read
//! — so instrumented hot loops pay ~1 ns per *would-be* event when tracing
//! is disabled (the `bench_smoke` "trace" section measures this and CI
//! gates it below 1% of the smoke-run wall time). When enabled, each event
//! costs one clock read, one sequence-counter bump, and one push into the
//! recording thread's own ring under an uncontended mutex; a thread-local
//! cache keeps the lane lookup off the hot path.
//!
//! # Clock, epoch, and bounds
//!
//! Timestamps are nanoseconds on the host monotonic clock, relative to the
//! origin captured by the *enable* call, paired with the logical model step
//! ([`Tracer::set_step`]) so wall time can always be mapped back to
//! simulation progress. Each `enable` bumps an **epoch**: thread-local lane
//! caches are invalidated, previous events are discarded, and late events
//! from guards created under an older epoch are dropped rather than
//! misfiled. Rings hold at most `capacity` events per thread
//! ([`Tracer::enable_with_capacity`], default [`DEFAULT_RING_CAPACITY`]);
//! on overflow the *oldest whole events* are evicted (counted in
//! [`TraceSnapshot::dropped`]) so the exported timeline stays balanced —
//! begin/end pairs are derived from complete events at export time and can
//! never be orphaned by eviction.
//!
//! # Rank attribution
//!
//! The simulated-MPI rank threads in `grist-runtime` call
//! [`set_thread_rank`] once at startup; every event a thread records lands
//! in the `(rank, thread)` lane. Job-server workers inherit the
//! dispatching driver's rank per chunk, so CPE lanes file under the right
//! process in a multi-rank trace.

use crate::json::Json;
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default per-thread ring capacity (events). At the smoke-model event rate
/// this holds several thousand model steps per lane.
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

/// What an event describes. Duration kinds export as Chrome `B`/`E` pairs;
/// point kinds ([`EventKind::is_instant`]) export as `i` instants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// A [`Metrics::span`](crate::metrics::Metrics::span) region; the event
    /// name is the full span path (`step/dycore`).
    Span,
    /// One substrate kernel dispatch; the name is the span-qualified kernel
    /// path (`step/dycore/hevi_mass_flux`).
    Kernel,
    /// One CPE-chunk execution on a job-server worker thread.
    Chunk,
    /// A modeled DMA transfer attributed to a dispatch (point event at the
    /// dispatch end; `bytes`/`items` carry payload and transaction counts).
    Dma,
    /// One gathered halo-exchange round on a rank thread.
    HaloExchange,
    /// The blocking receive of one halo message within a round.
    HaloWait,
    /// A fault-plan injection fired (`fault.injected`).
    Fault,
    /// A faulted dispatch was re-issued (`fault.retries`).
    Retry,
    /// A dispatch exhausted its retry budget and ran serially
    /// (`fault.degradations`).
    Degradation,
    /// A resilience checkpoint was captured (`checkpoint.captures`).
    Checkpoint,
    /// A checkpoint was restored after corruption (`recovery.restores`).
    Restore,
    /// A request-scoped flow opened: a trace ID was minted for a submitted
    /// query (`items` carries the flow ID; exports as Chrome `s`).
    FlowBegin,
    /// The flow passed through a stage on another lane — the serving batch,
    /// then each substrate dispatch under it (exports as Chrome `t`).
    FlowStep,
    /// The flow's answer was delivered (exports as Chrome `f`).
    FlowEnd,
}

impl EventKind {
    /// Chrome `cat` label (also the grouping key in reports).
    pub fn category(self) -> &'static str {
        match self {
            EventKind::Span => "span",
            EventKind::Kernel => "kernel",
            EventKind::Chunk => "chunk",
            EventKind::Dma => "dma",
            EventKind::HaloExchange => "halo",
            EventKind::HaloWait => "halo_wait",
            EventKind::Fault => "fault",
            EventKind::Retry => "retry",
            EventKind::Degradation => "degrade",
            EventKind::Checkpoint => "checkpoint",
            EventKind::Restore => "restore",
            EventKind::FlowBegin | EventKind::FlowStep | EventKind::FlowEnd => "flow",
        }
    }

    /// Point-in-time kinds (exported as Chrome `i` events).
    pub fn is_instant(self) -> bool {
        matches!(
            self,
            EventKind::Dma
                | EventKind::Fault
                | EventKind::Retry
                | EventKind::Degradation
                | EventKind::Checkpoint
                | EventKind::Restore
        )
    }

    /// Flow-arrow kinds (exported as Chrome `s`/`t`/`f` events carrying a
    /// numeric flow `id` in [`TraceEvent::items`]).
    pub fn is_flow(self) -> bool {
        matches!(
            self,
            EventKind::FlowBegin | EventKind::FlowStep | EventKind::FlowEnd
        )
    }

    /// The Chrome `ph` letter for a flow kind (`None` otherwise).
    pub fn flow_ph(self) -> Option<&'static str> {
        match self {
            EventKind::FlowBegin => Some("s"),
            EventKind::FlowStep => Some("t"),
            EventKind::FlowEnd => Some("f"),
            _ => None,
        }
    }
}

/// One recorded event. Complete (begin + duration) rather than split
/// begin/end records, so ring eviction can never orphan half a pair.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    pub kind: EventKind,
    pub name: String,
    /// Start, nanoseconds since the tracer's enable origin.
    pub t0_ns: u64,
    /// Duration; 0 for instant kinds.
    pub dur_ns: u64,
    /// Logical model step at record time (see [`Tracer::set_step`]).
    pub step: u64,
    /// Kind-specific count (loop items, messages, transactions, …).
    pub items: u64,
    /// Kind-specific payload bytes.
    pub bytes: u64,
    /// Global record order within the epoch (ties broken deterministically).
    pub seq: u64,
}

impl TraceEvent {
    pub fn end_ns(&self) -> u64 {
        self.t0_ns + self.dur_ns
    }
}

#[derive(Debug)]
struct Ring {
    events: Vec<TraceEvent>,
    /// Index of the oldest retained event once the ring has wrapped.
    start: usize,
    cap: usize,
    dropped: u64,
    label: String,
}

impl Ring {
    fn new(cap: usize, label: String) -> Self {
        Ring {
            events: Vec::new(),
            start: 0,
            cap: cap.max(1),
            dropped: 0,
            label,
        }
    }

    fn push(&mut self, e: TraceEvent) {
        if self.events.len() < self.cap {
            self.events.push(e);
        } else {
            self.events[self.start] = e;
            self.start = (self.start + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Events oldest-first (un-rotating the ring).
    fn ordered(&self) -> Vec<TraceEvent> {
        let n = self.events.len();
        (0..n)
            .map(|i| self.events[(self.start + i) % n].clone())
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Thread identity
// ---------------------------------------------------------------------------

static NEXT_LANE: AtomicU32 = AtomicU32::new(0);
static NEXT_TRACER: AtomicU64 = AtomicU64::new(1);

struct CachedLane {
    tracer_id: u64,
    epoch: u64,
    rank: u32,
    origin: Instant,
    ring: Arc<Mutex<Ring>>,
}

thread_local! {
    static LANE: Cell<u32> = const { Cell::new(u32::MAX) };
    static RANK: Cell<u32> = const { Cell::new(0) };
    static CACHED: RefCell<Option<CachedLane>> = const { RefCell::new(None) };
    static CHUNK_T0: Cell<Option<Instant>> = const { Cell::new(None) };
    static FLOW_IDS: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Stable per-thread lane id (process-global, assigned on first use).
pub fn thread_lane() -> u32 {
    LANE.with(|l| {
        let v = l.get();
        if v != u32::MAX {
            v
        } else {
            let id = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
            l.set(id);
            id
        }
    })
}

/// Declare the simulated-MPI rank of the calling thread; subsequent events
/// it records file under this rank's process lane. Defaults to rank 0.
pub fn set_thread_rank(rank: u32) {
    RANK.with(|r| r.set(rank));
}

/// The calling thread's declared rank (see [`set_thread_rank`]).
pub fn thread_rank() -> u32 {
    RANK.with(|r| r.get())
}

/// Mark the start of a CPE chunk on the calling worker thread (paired with
/// [`Tracer::record_chunk_end`]). Used by the substrate's traced dispatch
/// wrapper; a plain thread-local store, no atomics.
pub fn chunk_begin() {
    CHUNK_T0.with(|c| c.set(Some(Instant::now())));
}

/// RAII guard restoring the calling thread's flow scope on drop (see
/// [`flow_scope`]).
#[must_use = "the scope ends when the guard drops"]
pub struct FlowScope {
    prev_len: usize,
}

/// Install request-scoped flow IDs on the calling thread for the lifetime
/// of the returned guard. While the guard lives, every
/// [`Tracer::record_scoped_flows`] call on this thread emits one
/// [`EventKind::FlowStep`] per active ID — this is how a batch of request
/// IDs rides from the serving worker into the substrate dispatch without
/// widening any kernel signature. Scopes nest (inner guards extend the set);
/// the reserved "untraced" ID 0 is filtered out. Plain thread-local pushes,
/// no atomics.
pub fn flow_scope(ids: &[u64]) -> FlowScope {
    FLOW_IDS.with(|f| {
        let mut v = f.borrow_mut();
        let prev_len = v.len();
        v.extend(ids.iter().copied().filter(|&id| id != 0));
        FlowScope { prev_len }
    })
}

impl Drop for FlowScope {
    fn drop(&mut self) {
        FLOW_IDS.with(|f| f.borrow_mut().truncate(self.prev_len));
    }
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct TracerShared {
    origin: Instant,
    capacity: usize,
    lanes: BTreeMap<(u32, u32), Arc<Mutex<Ring>>>,
}

/// The event recorder owned by a [`Metrics`](crate::metrics::Metrics)
/// registry (one per substrate-clone family). Disabled by default; see the
/// [module docs](self) for the cost model and epoch semantics.
#[derive(Debug)]
pub struct Tracer {
    id: u64,
    enabled: AtomicBool,
    epoch: AtomicU64,
    step: AtomicU64,
    seq: AtomicU64,
    shared: Mutex<TracerShared>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer {
            id: NEXT_TRACER.fetch_add(1, Ordering::Relaxed),
            enabled: AtomicBool::new(false),
            epoch: AtomicU64::new(0),
            step: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            shared: Mutex::new(TracerShared {
                origin: Instant::now(),
                capacity: DEFAULT_RING_CAPACITY,
                lanes: BTreeMap::new(),
            }),
        }
    }
}

impl Tracer {
    /// The disabled-path check every recording entry point starts with.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Start a fresh recording epoch with the default ring capacity.
    pub fn enable(&self) {
        self.enable_with_capacity(DEFAULT_RING_CAPACITY);
    }

    /// Start a fresh recording epoch: clears previous lanes, re-zeroes the
    /// clock origin and sequence counter, bumps the epoch (invalidating
    /// thread-local lane caches), and turns recording on. Each recording
    /// thread keeps at most `capacity` events (oldest evicted first).
    pub fn enable_with_capacity(&self, capacity: usize) {
        {
            let mut sh = self.shared.lock().expect("tracer poisoned");
            sh.lanes.clear();
            sh.capacity = capacity.max(1);
            sh.origin = Instant::now();
        }
        self.seq.store(0, Ordering::Relaxed);
        self.epoch.fetch_add(1, Ordering::SeqCst);
        self.enabled.store(true, Ordering::SeqCst);
    }

    /// Stop recording (events already in the rings are kept for
    /// [`Self::snapshot`]; a later [`Self::enable`] discards them).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::SeqCst);
    }

    /// The current recording epoch (bumped by every enable).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Publish the logical model step stamped onto subsequent events. In a
    /// multi-driver (multi-rank, shared-registry) run the stamp is advisory:
    /// concurrent drivers race on one cell, which only blurs the step label,
    /// never timestamps.
    pub fn set_step(&self, step: u64) {
        self.step.store(step, Ordering::Relaxed);
    }

    /// Capture a begin timestamp if tracing is on (the cheap guard pattern:
    /// `let t0 = tracer.begin(); … if let Some(t0) = t0 { tracer.record_complete(...) }`).
    #[inline]
    pub fn begin(&self) -> Option<Instant> {
        if self.is_enabled() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Record a duration event spanning `t0..now` on the calling thread's
    /// lane. No-op when disabled.
    pub fn record_complete(
        &self,
        kind: EventKind,
        name: &str,
        t0: Instant,
        items: u64,
        bytes: u64,
    ) {
        if !self.is_enabled() {
            return;
        }
        let dur = t0.elapsed().as_nanos() as u64;
        self.push(kind, name, Some(t0), dur, items, bytes);
    }

    /// Record a point event at the current time on the calling thread's
    /// lane. No-op when disabled.
    pub fn record_instant(&self, kind: EventKind, name: &str, items: u64, bytes: u64) {
        if !self.is_enabled() {
            return;
        }
        self.push(kind, name, None, 0, items, bytes);
    }

    /// Close the chunk opened by [`chunk_begin`] on this worker thread as a
    /// [`EventKind::Chunk`] event attributed to `rank`.
    pub fn record_chunk_end(&self, name: &str, rank: u32, items: u64) {
        if !self.is_enabled() {
            return;
        }
        if let Some(t0) = CHUNK_T0.with(|c| c.take()) {
            set_thread_rank(rank);
            let dur = t0.elapsed().as_nanos() as u64;
            self.push(EventKind::Chunk, name, Some(t0), dur, items, 0);
        }
    }

    /// Record one flow-arrow point event (`kind` must be a flow kind; the
    /// flow `id` lands in [`TraceEvent::items`]). No-op when disabled or for
    /// the reserved "untraced" ID 0.
    pub fn record_flow(&self, kind: EventKind, name: &str, id: u64) {
        debug_assert!(kind.is_flow(), "record_flow wants a flow kind");
        if id == 0 || !self.is_enabled() {
            return;
        }
        self.push(kind, name, None, 0, id, 0);
    }

    /// Emit one [`EventKind::FlowStep`] per flow ID active on the calling
    /// thread (see [`flow_scope`]) — called by the substrate's traced
    /// dispatch right after the kernel event, so the step files on the same
    /// lane at the dispatch position. No-op when disabled or out of scope.
    pub fn record_scoped_flows(&self, name: &str) {
        if !self.is_enabled() {
            return;
        }
        let ids = FLOW_IDS.with(|f| f.borrow().clone());
        for id in ids {
            self.push(EventKind::FlowStep, name, None, 0, id, 0);
        }
    }

    /// Events evicted from full rings so far, summed across lanes — the
    /// live counterpart of [`TraceSnapshot::dropped`], surfaced as the
    /// `trace.dropped_events` counter in the metrics JSON.
    pub fn dropped_total(&self) -> u64 {
        let sh = self.shared.lock().expect("tracer poisoned");
        sh.lanes
            .values()
            .map(|ring| ring.lock().expect("ring poisoned").dropped)
            .sum()
    }

    fn push(
        &self,
        kind: EventKind,
        name: &str,
        t0: Option<Instant>,
        dur_ns: u64,
        items: u64,
        bytes: u64,
    ) {
        let epoch = self.epoch.load(Ordering::Acquire);
        let lane = thread_lane();
        let rank = thread_rank();
        CACHED.with(|slot| {
            let mut slot = slot.borrow_mut();
            let hit = matches!(
                &*slot,
                Some(c) if c.tracer_id == self.id && c.epoch == epoch && c.rank == rank
            );
            if !hit {
                let mut sh = self.shared.lock().expect("tracer poisoned");
                let cap = sh.capacity;
                let origin = sh.origin;
                let ring = sh
                    .lanes
                    .entry((rank, lane))
                    .or_insert_with(|| {
                        let label = std::thread::current()
                            .name()
                            .map(str::to_string)
                            .unwrap_or_else(|| format!("thread-{lane}"));
                        Arc::new(Mutex::new(Ring::new(cap, label)))
                    })
                    .clone();
                *slot = Some(CachedLane {
                    tracer_id: self.id,
                    epoch,
                    rank,
                    origin,
                    ring,
                });
            }
            let cached = slot.as_ref().expect("lane cached above");
            let t0_ns = match t0 {
                Some(t) => t.saturating_duration_since(cached.origin).as_nanos() as u64,
                None => cached.origin.elapsed().as_nanos() as u64,
            };
            let seq = self.seq.fetch_add(1, Ordering::Relaxed);
            cached.ring.lock().expect("ring poisoned").push(TraceEvent {
                kind,
                name: name.to_string(),
                t0_ns,
                dur_ns,
                step: self.step.load(Ordering::Relaxed),
                items,
                bytes,
                seq,
            });
        });
    }

    /// Freeze every lane into a [`TraceSnapshot`] (recording may continue;
    /// the snapshot sees events recorded so far).
    pub fn snapshot(&self) -> TraceSnapshot {
        let sh = self.shared.lock().expect("tracer poisoned");
        let mut lanes = Vec::new();
        let mut dropped = 0u64;
        for (&(rank, thread), ring) in &sh.lanes {
            let r = ring.lock().expect("ring poisoned");
            dropped += r.dropped;
            lanes.push(LaneTrace {
                rank,
                thread,
                label: r.label.clone(),
                events: r.ordered(),
            });
        }
        TraceSnapshot {
            lanes,
            dropped,
            step: self.step.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshot + Chrome export
// ---------------------------------------------------------------------------

/// One thread's timeline within a snapshot.
#[derive(Debug, Clone)]
pub struct LaneTrace {
    /// Simulated-MPI rank (Chrome `pid`).
    pub rank: u32,
    /// Process-global thread lane id (Chrome `tid`).
    pub thread: u32,
    /// Thread name at first record (`main`, `cpe-3`, …).
    pub label: String,
    /// Events oldest-first in record order.
    pub events: Vec<TraceEvent>,
}

/// A frozen copy of every lane, exportable to Chrome `trace_event` JSON and
/// consumable by [`analyze`].
#[derive(Debug, Clone, Default)]
pub struct TraceSnapshot {
    /// Lanes sorted by `(rank, thread)`.
    pub lanes: Vec<LaneTrace>,
    /// Events evicted from full rings across all lanes.
    pub dropped: u64,
    /// Logical step at snapshot time.
    pub step: u64,
}

impl TraceSnapshot {
    pub fn total_events(&self) -> usize {
        self.lanes.iter().map(|l| l.events.len()).sum()
    }

    /// Count events of one kind across all lanes.
    pub fn count_kind(&self, kind: EventKind) -> usize {
        self.lanes
            .iter()
            .flat_map(|l| &l.events)
            .filter(|e| e.kind == kind)
            .count()
    }

    /// Ranks present in the snapshot.
    pub fn ranks(&self) -> BTreeSet<u32> {
        self.lanes.iter().map(|l| l.rank).collect()
    }

    /// Export as a Chrome/Perfetto `trace_event` document: `pid` = rank,
    /// `tid` = thread lane, with `process_name`/`thread_name` metadata,
    /// duration kinds as balanced `B`/`E` pairs and instant kinds as `i`
    /// events, timestamps in microseconds, monotone per lane.
    pub fn to_chrome_json(&self) -> Json {
        let mut events: Vec<Json> = Vec::new();
        let mut ranks_seen: BTreeSet<u32> = BTreeSet::new();
        for lane in &self.lanes {
            if ranks_seen.insert(lane.rank) {
                events.push(meta_event(
                    lane.rank,
                    lane.thread,
                    "process_name",
                    &format!("rank {}", lane.rank),
                ));
            }
            events.push(meta_event(
                lane.rank,
                lane.thread,
                "thread_name",
                &lane.label,
            ));
        }
        for lane in &self.lanes {
            lane_chrome_events(lane, &mut events);
        }
        Json::Obj(vec![
            ("displayTimeUnit".into(), Json::Str("ms".into())),
            ("traceEvents".into(), Json::Arr(events)),
        ])
    }

    /// Pretty-printed [`Self::to_chrome_json`] document.
    pub fn to_chrome_string(&self) -> String {
        self.to_chrome_json().pretty()
    }
}

fn meta_event(pid: u32, tid: u32, kind: &str, name: &str) -> Json {
    Json::Obj(vec![
        ("ph".into(), Json::Str("M".into())),
        ("pid".into(), Json::Num(pid as f64)),
        ("tid".into(), Json::Num(tid as f64)),
        ("name".into(), Json::Str(kind.into())),
        (
            "args".into(),
            Json::Obj(vec![("name".into(), Json::Str(name.into()))]),
        ),
    ])
}

fn ts_us(ns: u64) -> Json {
    Json::Num(ns as f64 / 1e3)
}

fn event_args(e: &TraceEvent) -> Json {
    Json::Obj(vec![
        ("step".into(), Json::Num(e.step as f64)),
        ("items".into(), Json::Num(e.items as f64)),
        ("bytes".into(), Json::Num(e.bytes as f64)),
    ])
}

/// Emit one lane's events as monotone, balanced Chrome records. Complete
/// events are sorted by start (ties: longer first, then record order) and
/// unwound through a stack so `B`/`E` pairs nest; end timestamps are clamped
/// monotone so clock-granularity ties can never reorder a lane.
fn lane_chrome_events(lane: &LaneTrace, out: &mut Vec<Json>) {
    let mut evs: Vec<&TraceEvent> = lane.events.iter().collect();
    evs.sort_by(|a, b| {
        a.t0_ns
            .cmp(&b.t0_ns)
            .then(b.end_ns().cmp(&a.end_ns()))
            .then(a.seq.cmp(&b.seq))
    });
    let pid = Json::Num(lane.rank as f64);
    let tid = Json::Num(lane.thread as f64);
    let mut stack: Vec<&TraceEvent> = Vec::new();
    let mut last_ts = 0u64;
    let close = |e: &TraceEvent, last_ts: &mut u64, out: &mut Vec<Json>| {
        let ts = e.end_ns().max(*last_ts);
        *last_ts = ts;
        out.push(Json::Obj(vec![
            ("ph".into(), Json::Str("E".into())),
            ("pid".into(), pid.clone()),
            ("tid".into(), tid.clone()),
            ("ts".into(), ts_us(ts)),
            ("name".into(), Json::Str(e.name.clone())),
        ]));
    };
    for e in evs {
        while let Some(&top) = stack.last() {
            if top.end_ns() <= e.t0_ns {
                stack.pop();
                close(top, &mut last_ts, out);
            } else {
                break;
            }
        }
        let ts = e.t0_ns.max(last_ts);
        last_ts = ts;
        if let Some(ph) = e.kind.flow_ph() {
            // Flow arrows: point records carrying the request's flow `id`,
            // named uniformly so Perfetto joins s → t… → f across lanes.
            let mut fields = vec![
                ("ph".into(), Json::Str(ph.into())),
                ("pid".into(), pid.clone()),
                ("tid".into(), tid.clone()),
                ("ts".into(), ts_us(ts)),
                ("name".into(), Json::Str(e.name.clone())),
                ("cat".into(), Json::Str(e.kind.category().into())),
                ("id".into(), Json::Num(e.items as f64)),
            ];
            if e.kind == EventKind::FlowEnd {
                // Bind the arrow head to the enclosing slice.
                fields.push(("bp".into(), Json::Str("e".into())));
            }
            out.push(Json::Obj(fields));
            continue;
        }
        let mut fields = vec![
            (
                "ph".into(),
                Json::Str(if e.kind.is_instant() { "i" } else { "B" }.into()),
            ),
            ("pid".into(), pid.clone()),
            ("tid".into(), tid.clone()),
            ("ts".into(), ts_us(ts)),
            ("name".into(), Json::Str(e.name.clone())),
            ("cat".into(), Json::Str(e.kind.category().into())),
        ];
        if e.kind.is_instant() {
            fields.push(("s".into(), Json::Str("t".into())));
            fields.push(("args".into(), event_args(e)));
            out.push(Json::Obj(fields));
        } else {
            fields.push(("args".into(), event_args(e)));
            out.push(Json::Obj(fields));
            stack.push(e);
        }
    }
    while let Some(top) = stack.pop() {
        close(top, &mut last_ts, out);
    }
}

// ---------------------------------------------------------------------------
// Schema validation
// ---------------------------------------------------------------------------

/// What [`validate_chrome`] verified.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChromeStats {
    pub events: usize,
    pub begins: usize,
    pub ends: usize,
    pub instants: usize,
    /// Flow-arrow records (`s`/`t`/`f`).
    pub flows: usize,
    pub metadata: usize,
    /// Distinct `(pid, tid)` lanes.
    pub lanes: usize,
    /// Distinct `pid` (rank) processes.
    pub ranks: usize,
}

/// Validate a Chrome `trace_event` document: every event carries
/// `ph`/`pid`/`tid`/`ts`, timestamps are finite, non-negative, and
/// non-decreasing per lane, every lane's `B`/`E` events are balanced with
/// matching names, and every flow record (`s`/`t`/`f`) carries a numeric
/// `id`. Returns counting stats on success.
pub fn validate_chrome(doc: &Json) -> Result<ChromeStats, String> {
    let evs = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("document has no traceEvents array")?;
    let mut stats = ChromeStats::default();
    let mut stacks: BTreeMap<(u64, u64), Vec<String>> = BTreeMap::new();
    let mut last_ts: BTreeMap<(u64, u64), f64> = BTreeMap::new();
    let mut ranks: BTreeSet<u64> = BTreeSet::new();
    for (i, e) in evs.iter().enumerate() {
        stats.events += 1;
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        if ph == "M" {
            stats.metadata += 1;
            continue;
        }
        let pid = e
            .get("pid")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event {i}: missing pid"))?;
        let tid = e
            .get("tid")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event {i}: missing tid"))?;
        let ts = e
            .get("ts")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event {i}: missing ts"))?;
        if !ts.is_finite() || ts < 0.0 {
            return Err(format!("event {i}: bad timestamp {ts}"));
        }
        let key = (pid, tid);
        ranks.insert(pid);
        if let Some(&prev) = last_ts.get(&key) {
            if ts < prev {
                return Err(format!(
                    "event {i}: lane ({pid},{tid}) timestamp regressed {prev} -> {ts}"
                ));
            }
        }
        last_ts.insert(key, ts);
        match ph {
            "B" => {
                let name = e
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("event {i}: B without a name"))?;
                stacks.entry(key).or_default().push(name.to_string());
                stats.begins += 1;
            }
            "E" => {
                let open = stacks
                    .get_mut(&key)
                    .and_then(Vec::pop)
                    .ok_or_else(|| format!("event {i}: E on lane ({pid},{tid}) with no open B"))?;
                if let Some(name) = e.get("name").and_then(Json::as_str) {
                    if name != open {
                        return Err(format!(
                            "event {i}: E named {name:?} closes B named {open:?}"
                        ));
                    }
                }
                stats.ends += 1;
            }
            "i" => stats.instants += 1,
            "s" | "t" | "f" => {
                e.get("id")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("event {i}: flow {ph:?} without a numeric id"))?;
                stats.flows += 1;
            }
            other => return Err(format!("event {i}: unsupported ph {other:?}")),
        }
    }
    for ((pid, tid), st) in &stacks {
        if !st.is_empty() {
            return Err(format!(
                "lane ({pid},{tid}): {} B event(s) never closed (first open: {:?})",
                st.len(),
                st[0]
            ));
        }
    }
    stats.lanes = last_ts.len();
    stats.ranks = ranks.len();
    Ok(stats)
}

// ---------------------------------------------------------------------------
// Attribution analysis
// ---------------------------------------------------------------------------

/// Hardware constants and exact FLOP totals driving the roofline placement.
#[derive(Debug, Clone, Default)]
pub struct RooflineInputs {
    /// Peak of the target compute engine \[FLOP/s\] (the CG's CPE cluster
    /// for offloaded kernels).
    pub peak_flops: f64,
    /// Sustained memory bandwidth \[bytes/s\] (DDR per CG).
    pub bandwidth: f64,
    /// Exact FLOP totals keyed by *leaf* kernel name (the last path
    /// segment), from the analytic per-op accounting — e.g.
    /// `MlSuite::batch_flops` sums surfaced through the `ml.flops_*`
    /// counters. A leaf claimed by more than one distinct kernel path is
    /// left unattributed (the counter cannot be split).
    pub flops_by_kernel: BTreeMap<String, u64>,
}

impl RooflineInputs {
    /// Roofline constants from a hardware spec: CPE-cluster peak vs. the
    /// per-CG DDR bandwidth (the bandwidth-bound regime of Fig. 9).
    pub fn from_arch(spec: &crate::arch::SunwaySpec) -> Self {
        RooflineInputs {
            peak_flops: spec.cg_peak_f64(),
            bandwidth: spec.ddr_bandwidth,
            flops_by_kernel: BTreeMap::new(),
        }
    }
}

/// Per-kernel attribution row (one per distinct span-qualified kernel path).
#[derive(Debug, Clone)]
pub struct KernelAttribution {
    /// Span-qualified kernel path (`step/ml/ml_physics_blocks`).
    pub name: String,
    pub calls: u64,
    pub total_ns: u64,
    pub items: u64,
    pub bytes: u64,
    /// Share of summed kernel time across every lane (the Fig. 9 column).
    pub share_busy: f64,
    /// Share of the critical rank's busy time spent in this kernel — the
    /// critical rank is the busiest one, whose timeline bounds the step, so
    /// this is each kernel's stake in the end-to-end critical path.
    pub cp_share: f64,
    /// Exact FLOPs, when the leaf name is covered by
    /// [`RooflineInputs::flops_by_kernel`].
    pub flops: Option<u64>,
    /// Arithmetic intensity \[FLOP/byte\]; `None` without FLOPs or without
    /// modeled DMA bytes (serial-target dispatches stream no DMA).
    pub ai: Option<f64>,
    /// Achieved throughput \[GFLOP/s\] over the kernel's own wall time.
    pub gflops: Option<f64>,
    /// Achieved / roofline-allowed throughput at this AI.
    pub peak_fraction: Option<f64>,
    /// `"memory"` below the ridge AI, `"compute"` at or above it.
    pub bound: Option<&'static str>,
}

/// Halo-exchange wait/transfer split summed over rank lanes.
#[derive(Debug, Clone, Copy, Default)]
pub struct HaloAttribution {
    /// Exchange rounds traced.
    pub exchanges: u64,
    /// Individual message waits traced.
    pub waits: u64,
    /// Total round duration.
    pub total_ns: u64,
    /// Time blocked in receives.
    pub wait_ns: u64,
    /// Round time outside receives (pack/send/unpack).
    pub transfer_ns: u64,
}

/// One rank's busy time (kernel + halo durations; CPE chunk events are the
/// same work seen from the worker side and are excluded to avoid double
/// counting).
#[derive(Debug, Clone, Copy)]
pub struct RankLoad {
    pub rank: u32,
    pub busy_ns: u64,
    pub events: u64,
}

/// The attribution report computed by [`analyze`].
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// Trace extent: last event end minus first event start.
    pub wall_ns: u64,
    /// Kernel rows, hottest first.
    pub kernels: Vec<KernelAttribution>,
    pub halo: HaloAttribution,
    /// Per-rank busy time, rank order.
    pub ranks: Vec<RankLoad>,
    /// The busiest (critical-path) rank.
    pub critical_rank: u32,
    /// Max over mean rank busy time (1.0 = perfectly balanced).
    pub imbalance: f64,
    /// Events evicted from full rings (attribution below is partial if > 0).
    pub dropped: u64,
    pub peak_flops: f64,
    pub bandwidth: f64,
    /// Ridge-point arithmetic intensity \[FLOP/byte\].
    pub ridge_ai: f64,
}

/// Compute the attribution report from a snapshot: per-kernel totals and
/// critical-path shares, the halo wait/transfer split, rank imbalance, and
/// a roofline placement for every kernel with exact FLOP coverage.
pub fn analyze(snap: &TraceSnapshot, inputs: &RooflineInputs) -> TraceReport {
    let mut t_min = u64::MAX;
    let mut t_max = 0u64;
    struct KernelAcc {
        calls: u64,
        total_ns: u64,
        items: u64,
        bytes: u64,
        cp_ns: u64,
    }
    let mut kernels: BTreeMap<String, KernelAcc> = BTreeMap::new();
    let mut halo = HaloAttribution::default();
    let mut rank_busy: BTreeMap<u32, RankLoad> = BTreeMap::new();
    for lane in &snap.lanes {
        for e in &lane.events {
            t_min = t_min.min(e.t0_ns);
            t_max = t_max.max(e.end_ns());
            match e.kind {
                EventKind::Kernel => {
                    let acc = kernels.entry(e.name.clone()).or_insert(KernelAcc {
                        calls: 0,
                        total_ns: 0,
                        items: 0,
                        bytes: 0,
                        cp_ns: 0,
                    });
                    acc.calls += 1;
                    acc.total_ns += e.dur_ns;
                    acc.items += e.items;
                    acc.bytes += e.bytes;
                }
                EventKind::HaloExchange => {
                    halo.exchanges += 1;
                    halo.total_ns += e.dur_ns;
                }
                EventKind::HaloWait => {
                    halo.waits += 1;
                    halo.wait_ns += e.dur_ns;
                }
                _ => {}
            }
            if matches!(e.kind, EventKind::Kernel | EventKind::HaloExchange) {
                let load = rank_busy.entry(lane.rank).or_insert(RankLoad {
                    rank: lane.rank,
                    busy_ns: 0,
                    events: 0,
                });
                load.busy_ns += e.dur_ns;
                load.events += 1;
            }
        }
    }
    halo.transfer_ns = halo.total_ns.saturating_sub(halo.wait_ns);
    let wall_ns = if t_min == u64::MAX { 0 } else { t_max - t_min };

    let ranks: Vec<RankLoad> = rank_busy.values().copied().collect();
    let critical_rank = ranks
        .iter()
        .max_by_key(|r| r.busy_ns)
        .map(|r| r.rank)
        .unwrap_or(0);
    let imbalance = if ranks.is_empty() {
        1.0
    } else {
        let max = ranks.iter().map(|r| r.busy_ns).max().unwrap_or(0) as f64;
        let mean = ranks.iter().map(|r| r.busy_ns as f64).sum::<f64>() / ranks.len() as f64;
        if mean > 0.0 {
            max / mean
        } else {
            1.0
        }
    };

    // Second pass: kernel time on the critical rank only.
    for lane in snap.lanes.iter().filter(|l| l.rank == critical_rank) {
        for e in lane.events.iter().filter(|e| e.kind == EventKind::Kernel) {
            if let Some(acc) = kernels.get_mut(&e.name) {
                acc.cp_ns += e.dur_ns;
            }
        }
    }
    let busy_total: u64 = kernels.values().map(|a| a.total_ns).sum();
    let cp_busy: u64 = kernels.values().map(|a| a.cp_ns).sum();

    // FLOP attribution by leaf name — only when the leaf maps to exactly one
    // kernel path, since a shared counter cannot be split between paths.
    let mut leaf_count: BTreeMap<&str, u32> = BTreeMap::new();
    for name in kernels.keys() {
        *leaf_count.entry(leaf(name)).or_insert(0) += 1;
    }
    let ridge_ai = if inputs.bandwidth > 0.0 {
        inputs.peak_flops / inputs.bandwidth
    } else {
        f64::INFINITY
    };
    let mut rows: Vec<KernelAttribution> = kernels
        .iter()
        .map(|(name, acc)| {
            let flops = inputs
                .flops_by_kernel
                .get(leaf(name))
                .copied()
                .filter(|_| leaf_count.get(leaf(name)) == Some(&1));
            let gflops = flops.map(|f| {
                if acc.total_ns > 0 {
                    f as f64 / acc.total_ns as f64
                } else {
                    0.0
                }
            });
            let ai = flops.and_then(|f| {
                if acc.bytes > 0 {
                    Some(f as f64 / acc.bytes as f64)
                } else {
                    None
                }
            });
            let (peak_fraction, bound) = match (ai, gflops) {
                (Some(ai), Some(g)) => {
                    let roof_gflops = (inputs.peak_flops.min(ai * inputs.bandwidth)) / 1e9;
                    let frac = if roof_gflops > 0.0 {
                        g / roof_gflops
                    } else {
                        0.0
                    };
                    let bound = if ai < ridge_ai { "memory" } else { "compute" };
                    (Some(frac), Some(bound))
                }
                _ => (None, None),
            };
            KernelAttribution {
                name: name.clone(),
                calls: acc.calls,
                total_ns: acc.total_ns,
                items: acc.items,
                bytes: acc.bytes,
                share_busy: if busy_total > 0 {
                    acc.total_ns as f64 / busy_total as f64
                } else {
                    0.0
                },
                cp_share: if cp_busy > 0 {
                    acc.cp_ns as f64 / cp_busy as f64
                } else {
                    0.0
                },
                flops,
                ai,
                gflops,
                peak_fraction,
                bound,
            }
        })
        .collect();
    rows.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));

    TraceReport {
        wall_ns,
        kernels: rows,
        halo,
        ranks,
        critical_rank,
        imbalance,
        dropped: snap.dropped,
        peak_flops: inputs.peak_flops,
        bandwidth: inputs.bandwidth,
        ridge_ai,
    }
}

fn leaf(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}

fn opt_num(v: Option<f64>) -> Json {
    match v {
        Some(x) if x.is_finite() => Json::Num(x),
        _ => Json::Null,
    }
}

impl TraceReport {
    /// Structured form (schema `grist-trace-report-v1`) for CI diffing.
    pub fn to_json(&self) -> Json {
        let kernels = self
            .kernels
            .iter()
            .map(|k| {
                Json::Obj(vec![
                    ("name".into(), Json::Str(k.name.clone())),
                    ("calls".into(), Json::Num(k.calls as f64)),
                    ("total_ns".into(), Json::Num(k.total_ns as f64)),
                    ("items".into(), Json::Num(k.items as f64)),
                    ("bytes".into(), Json::Num(k.bytes as f64)),
                    ("share_busy".into(), Json::Num(k.share_busy)),
                    ("cp_share".into(), Json::Num(k.cp_share)),
                    (
                        "flops".into(),
                        k.flops.map_or(Json::Null, |f| Json::Num(f as f64)),
                    ),
                    ("ai".into(), opt_num(k.ai)),
                    ("gflops".into(), opt_num(k.gflops)),
                    ("peak_fraction".into(), opt_num(k.peak_fraction)),
                    (
                        "bound".into(),
                        k.bound.map_or(Json::Null, |b| Json::Str(b.into())),
                    ),
                ])
            })
            .collect();
        let ranks = self
            .ranks
            .iter()
            .map(|r| {
                Json::Obj(vec![
                    ("rank".into(), Json::Num(r.rank as f64)),
                    ("busy_ns".into(), Json::Num(r.busy_ns as f64)),
                    ("events".into(), Json::Num(r.events as f64)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::Str("grist-trace-report-v1".into())),
            ("wall_ns".into(), Json::Num(self.wall_ns as f64)),
            ("kernels".into(), Json::Arr(kernels)),
            (
                "halo".into(),
                Json::Obj(vec![
                    ("exchanges".into(), Json::Num(self.halo.exchanges as f64)),
                    ("waits".into(), Json::Num(self.halo.waits as f64)),
                    ("total_ns".into(), Json::Num(self.halo.total_ns as f64)),
                    ("wait_ns".into(), Json::Num(self.halo.wait_ns as f64)),
                    (
                        "transfer_ns".into(),
                        Json::Num(self.halo.transfer_ns as f64),
                    ),
                ]),
            ),
            ("ranks".into(), Json::Arr(ranks)),
            ("critical_rank".into(), Json::Num(self.critical_rank as f64)),
            ("imbalance".into(), Json::Num(self.imbalance)),
            ("dropped".into(), Json::Num(self.dropped as f64)),
            ("peak_flops".into(), Json::Num(self.peak_flops)),
            ("bandwidth".into(), Json::Num(self.bandwidth)),
            ("ridge_ai".into(), Json::Num(self.ridge_ai)),
        ])
    }

    /// Fig. 9-style aligned text table.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "trace report  wall {:.3} ms  ranks {}  imbalance {:.3}  critical rank {}  dropped {}\n",
            self.wall_ns as f64 / 1e6,
            self.ranks.len(),
            self.imbalance,
            self.critical_rank,
            self.dropped
        ));
        out.push_str(&format!(
            "roofline      peak {:.1} GFLOP/s  bw {:.1} GB/s  ridge AI {:.2} FLOP/B\n",
            self.peak_flops / 1e9,
            self.bandwidth / 1e9,
            self.ridge_ai
        ));
        out.push_str(&format!(
            "halo          {} rounds  {} waits  wait {:.3} ms  transfer {:.3} ms\n",
            self.halo.exchanges,
            self.halo.waits,
            self.halo.wait_ns as f64 / 1e6,
            self.halo.transfer_ns as f64 / 1e6,
        ));
        out.push_str(&format!(
            "{:<34} {:>7} {:>11} {:>7} {:>7} {:>9} {:>9} {:>8}\n",
            "kernel", "calls", "total ms", "busy%", "cp%", "AI", "GFLOP/s", "bound"
        ));
        for k in &self.kernels {
            let ai = k.ai.map_or("-".to_string(), |v| format!("{v:.3}"));
            let gf = k.gflops.map_or("-".to_string(), |v| format!("{v:.3}"));
            out.push_str(&format!(
                "{:<34} {:>7} {:>11.3} {:>6.1}% {:>6.1}% {:>9} {:>9} {:>8}\n",
                k.name,
                k.calls,
                k.total_ns as f64 / 1e6,
                k.share_busy * 100.0,
                k.cp_share * 100.0,
                ai,
                gf,
                k.bound.unwrap_or("-"),
            ));
        }
        for r in &self.ranks {
            out.push_str(&format!(
                "rank {:<3} busy {:>11.3} ms  ({} events)\n",
                r.rank,
                r.busy_ns as f64 / 1e6,
                r.events
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn ev(kind: EventKind, name: &str, t0: u64, dur: u64, items: u64, bytes: u64) -> TraceEvent {
        TraceEvent {
            kind,
            name: name.into(),
            t0_ns: t0,
            dur_ns: dur,
            step: 0,
            items,
            bytes,
            seq: t0,
        }
    }

    fn lane(rank: u32, thread: u32, events: Vec<TraceEvent>) -> LaneTrace {
        LaneTrace {
            rank,
            thread,
            label: format!("t{thread}"),
            events,
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::default();
        assert!(!t.is_enabled());
        assert!(t.begin().is_none());
        t.record_instant(EventKind::Fault, "x", 1, 0);
        t.record_complete(EventKind::Kernel, "k", Instant::now(), 1, 0);
        assert_eq!(t.snapshot().total_events(), 0);
    }

    #[test]
    fn enable_records_and_reenable_starts_a_fresh_epoch() {
        let t = Tracer::default();
        t.enable();
        let e0 = t.epoch();
        let t0 = t.begin().expect("enabled");
        t.record_complete(EventKind::Kernel, "k", t0, 10, 0);
        t.record_instant(EventKind::Checkpoint, "checkpoint.captures", 1, 64);
        let snap = t.snapshot();
        assert_eq!(snap.total_events(), 2);
        assert_eq!(snap.count_kind(EventKind::Kernel), 1);
        assert_eq!(snap.count_kind(EventKind::Checkpoint), 1);
        // Re-enable discards history and bumps the epoch.
        t.enable();
        assert!(t.epoch() > e0);
        assert_eq!(t.snapshot().total_events(), 0);
        t.disable();
        t.record_instant(EventKind::Fault, "x", 1, 0);
        assert_eq!(t.snapshot().total_events(), 0);
    }

    #[test]
    fn ring_keeps_the_newest_events_and_counts_drops() {
        let t = Tracer::default();
        t.enable_with_capacity(4);
        for i in 0..10u64 {
            t.record_instant(EventKind::Dma, &format!("d{i}"), i, 0);
        }
        let snap = t.snapshot();
        assert_eq!(snap.total_events(), 4);
        assert_eq!(snap.dropped, 6);
        let names: Vec<&str> = snap.lanes[0]
            .events
            .iter()
            .map(|e| e.name.as_str())
            .collect();
        assert_eq!(names, ["d6", "d7", "d8", "d9"], "oldest evicted first");
        // Sequence numbers stay ordered after un-rotation.
        let seqs: Vec<u64> = snap.lanes[0].events.iter().map(|e| e.seq).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn flow_events_export_as_joined_arrows_and_validate() {
        let t = Tracer::default();
        t.enable();
        // One request's life: begin on the server thread, step on the
        // worker (batch + dispatch via flow scope), end back on the server.
        t.record_flow(EventKind::FlowBegin, "request", 42);
        t.record_flow(EventKind::FlowStep, "serve", 42);
        {
            let _scope = flow_scope(&[42, 0]); // 0 is filtered out
            t.record_scoped_flows("serve/step_columns");
        }
        t.record_scoped_flows("after-scope"); // out of scope: no event
        t.record_flow(EventKind::FlowEnd, "request", 42);
        t.record_flow(EventKind::FlowBegin, "request", 0); // untraced id: dropped

        let snap = t.snapshot();
        assert_eq!(snap.count_kind(EventKind::FlowBegin), 1);
        assert_eq!(snap.count_kind(EventKind::FlowStep), 2);
        assert_eq!(snap.count_kind(EventKind::FlowEnd), 1);
        let ids: Vec<u64> = snap.lanes[0]
            .events
            .iter()
            .filter(|e| e.kind.is_flow())
            .map(|e| e.items)
            .collect();
        assert!(ids.iter().all(|&id| id == 42));

        let doc = snap.to_chrome_json();
        let stats = validate_chrome(&doc).expect("flow document validates");
        assert_eq!(stats.flows, 4);
        // Every flow record carries ph s/t/f, cat "flow", and the id.
        let evs = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let flows: Vec<&Json> = evs
            .iter()
            .filter(|e| {
                matches!(
                    e.get("ph").and_then(Json::as_str),
                    Some("s") | Some("t") | Some("f")
                )
            })
            .collect();
        assert_eq!(flows.len(), 4);
        for f in &flows {
            assert_eq!(f.get("cat").and_then(Json::as_str), Some("flow"));
            assert_eq!(f.get("id").and_then(Json::as_u64), Some(42));
        }
        assert_eq!(
            flows
                .iter()
                .filter(|f| f.get("bp").and_then(Json::as_str) == Some("e"))
                .count(),
            1,
            "exactly the FlowEnd binds to the enclosing slice end"
        );
    }

    #[test]
    fn nested_flow_scopes_stack_and_unwind() {
        let t = Tracer::default();
        t.enable();
        let _outer = flow_scope(&[1, 2]);
        {
            let _inner = flow_scope(&[3]);
            t.record_scoped_flows("k");
        }
        t.record_scoped_flows("k");
        let snap = t.snapshot();
        let ids: Vec<u64> = snap.lanes[0].events.iter().map(|e| e.items).collect();
        assert_eq!(ids, [1, 2, 3, 1, 2], "inner scope extends, then unwinds");
    }

    #[test]
    fn validate_chrome_rejects_flow_records_without_ids() {
        let doc = Json::Obj(vec![(
            "traceEvents".into(),
            Json::Arr(vec![Json::Obj(vec![
                ("ph".into(), Json::Str("s".into())),
                ("pid".into(), Json::Num(0.0)),
                ("tid".into(), Json::Num(0.0)),
                ("ts".into(), Json::Num(1.0)),
                ("name".into(), Json::Str("request".into())),
            ])]),
        )]);
        let err = validate_chrome(&doc).unwrap_err();
        assert!(err.contains("without a numeric id"), "{err}");
    }

    #[test]
    fn dropped_total_tracks_ring_evictions_live() {
        let t = Tracer::default();
        t.enable_with_capacity(2);
        assert_eq!(t.dropped_total(), 0);
        for i in 0..5u64 {
            t.record_instant(EventKind::Dma, &format!("d{i}"), i, 0);
        }
        assert_eq!(t.dropped_total(), 3);
        assert_eq!(t.snapshot().dropped, 3, "live count matches snapshot");
    }

    #[test]
    fn events_carry_step_and_rank_lanes() {
        let t = Tracer::default();
        t.enable();
        t.set_step(7);
        t.record_instant(EventKind::Restore, "recovery.restores", 1, 0);
        let snap = t.snapshot();
        assert_eq!(snap.lanes.len(), 1);
        assert_eq!(snap.lanes[0].events[0].step, 7);
        // This test thread declared no rank: lane files under rank 0.
        assert_eq!(snap.lanes[0].rank, thread_rank());
    }

    #[test]
    fn multi_thread_recording_gets_one_lane_per_thread() {
        let t = Arc::new(Tracer::default());
        t.enable();
        let mut handles = Vec::new();
        for r in 0..3u32 {
            let t = Arc::clone(&t);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("ranker-{r}"))
                    .spawn(move || {
                        set_thread_rank(r);
                        let t0 = t.begin().unwrap();
                        std::thread::sleep(Duration::from_micros(50));
                        t.record_complete(EventKind::Kernel, "work", t0, 10, 80);
                    })
                    .unwrap(),
            );
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = t.snapshot();
        assert_eq!(snap.lanes.len(), 3);
        assert_eq!(snap.ranks().len(), 3);
        for lane in &snap.lanes {
            assert!(lane.label.starts_with("ranker-"), "label: {}", lane.label);
            assert_eq!(lane.events.len(), 1);
            assert!(lane.events[0].dur_ns >= 50_000);
        }
    }

    #[test]
    fn chrome_export_is_balanced_nested_and_validates() {
        let snap = TraceSnapshot {
            lanes: vec![lane(
                0,
                0,
                vec![
                    ev(EventKind::Span, "step", 0, 100, 0, 0),
                    ev(EventKind::Kernel, "step/flux", 10, 30, 64, 512),
                    ev(EventKind::Dma, "step/flux", 40, 0, 2, 512),
                    ev(EventKind::Kernel, "step/adv", 50, 40, 64, 0),
                ],
            )],
            dropped: 0,
            step: 1,
        };
        let doc = snap.to_chrome_json();
        let stats = validate_chrome(&doc).expect("well-formed trace");
        assert_eq!(stats.begins, 3);
        assert_eq!(stats.ends, 3);
        assert_eq!(stats.instants, 1);
        assert_eq!(stats.lanes, 1);
        assert_eq!(stats.ranks, 1);
        assert_eq!(stats.metadata, 2, "process_name + thread_name");
        // B/E nesting: the span must close after both kernels.
        let evs = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let phs: Vec<&str> = evs
            .iter()
            .filter_map(|e| e.get("ph").and_then(Json::as_str))
            .filter(|p| *p != "M")
            .collect();
        // flux ends at 40, exactly where the DMA instant sits: the E is
        // emitted first (close-on-tie), then the instant, then adv.
        assert_eq!(phs, ["B", "B", "E", "i", "B", "E", "E"]);
    }

    #[test]
    fn chrome_export_clamps_overlap_to_monotone_timestamps() {
        // Pathological overlap (clock-granularity ties): must still validate.
        let snap = TraceSnapshot {
            lanes: vec![lane(
                0,
                0,
                vec![
                    ev(EventKind::Kernel, "a", 0, 50, 0, 0),
                    ev(EventKind::Kernel, "b", 10, 60, 0, 0),
                ],
            )],
            dropped: 0,
            step: 0,
        };
        let doc = snap.to_chrome_json();
        validate_chrome(&doc).expect("clamped export must stay monotone and balanced");
    }

    #[test]
    fn validator_rejects_unbalanced_and_regressing_documents() {
        let b = |ts: f64, name: &str| {
            Json::Obj(vec![
                ("ph".into(), Json::Str("B".into())),
                ("pid".into(), Json::Num(0.0)),
                ("tid".into(), Json::Num(0.0)),
                ("ts".into(), Json::Num(ts)),
                ("name".into(), Json::Str(name.into())),
            ])
        };
        let e = |ts: f64, name: &str| {
            Json::Obj(vec![
                ("ph".into(), Json::Str("E".into())),
                ("pid".into(), Json::Num(0.0)),
                ("tid".into(), Json::Num(0.0)),
                ("ts".into(), Json::Num(ts)),
                ("name".into(), Json::Str(name.into())),
            ])
        };
        let doc = |evs: Vec<Json>| Json::Obj(vec![("traceEvents".into(), Json::Arr(evs))]);

        assert!(
            validate_chrome(&Json::Obj(vec![])).is_err(),
            "no traceEvents"
        );
        let unclosed = doc(vec![b(0.0, "x")]);
        assert!(validate_chrome(&unclosed)
            .unwrap_err()
            .contains("never closed"));
        let orphan = doc(vec![e(1.0, "x")]);
        assert!(validate_chrome(&orphan).unwrap_err().contains("no open B"));
        let regress = doc(vec![b(5.0, "x"), e(1.0, "x")]);
        assert!(validate_chrome(&regress).unwrap_err().contains("regressed"));
        let mismatch = doc(vec![b(0.0, "x"), e(1.0, "y")]);
        assert!(validate_chrome(&mismatch).unwrap_err().contains("closes B"));
        assert!(validate_chrome(&doc(vec![b(0.0, "x"), e(1.0, "x")])).is_ok());
    }

    #[test]
    fn analyze_attributes_kernels_halo_and_imbalance() {
        // Rank 0: 300ns of flux + a halo round (100ns, 60ns waiting).
        // Rank 1: 100ns of flux. Imbalance = 400 / 250 = 1.6.
        let snap = TraceSnapshot {
            lanes: vec![
                lane(
                    0,
                    0,
                    vec![
                        ev(EventKind::Kernel, "step/flux", 0, 300, 64, 600),
                        ev(EventKind::HaloExchange, "halo_exchange", 300, 100, 2, 160),
                        ev(EventKind::HaloWait, "halo_wait<-1", 310, 60, 1, 80),
                        ev(EventKind::Fault, "fault.injected", 350, 0, 1, 0),
                    ],
                ),
                lane(
                    1,
                    1,
                    vec![ev(EventKind::Kernel, "step/flux", 0, 100, 64, 200)],
                ),
            ],
            dropped: 0,
            step: 3,
        };
        let mut inputs = RooflineInputs {
            peak_flops: 1.0e12,
            bandwidth: 0.5e12,
            flops_by_kernel: BTreeMap::new(),
        };
        inputs.flops_by_kernel.insert("flux".into(), 4000);
        let rep = analyze(&snap, &inputs);
        assert_eq!(rep.wall_ns, 400);
        assert_eq!(rep.critical_rank, 0);
        assert!((rep.imbalance - 1.6).abs() < 1e-12, "{}", rep.imbalance);
        assert_eq!(rep.halo.exchanges, 1);
        assert_eq!(rep.halo.waits, 1);
        assert_eq!(rep.halo.wait_ns, 60);
        assert_eq!(rep.halo.transfer_ns, 40);
        assert_eq!(rep.kernels.len(), 1);
        let k = &rep.kernels[0];
        assert_eq!(k.calls, 2);
        assert_eq!(k.total_ns, 400);
        assert_eq!(k.bytes, 800);
        assert_eq!(k.flops, Some(4000));
        // AI = 4000 FLOP / 800 B = 5 FLOP/B; ridge = 2 FLOP/B => compute bound.
        assert_eq!(k.ai, Some(5.0));
        assert_eq!(k.bound, Some("compute"));
        // GFLOP/s = 4000 / 400ns = 10; roofline allows 1000 => 1%.
        assert!((k.gflops.unwrap() - 10.0).abs() < 1e-12);
        assert!((k.peak_fraction.unwrap() - 0.01).abs() < 1e-12);
        assert_eq!(k.share_busy, 1.0, "only kernel");
        assert_eq!(k.cp_share, 1.0, "only kernel on the critical rank");
        // Report serializes and renders.
        let j = rep.to_json();
        assert_eq!(
            j.get("schema").and_then(Json::as_str),
            Some("grist-trace-report-v1")
        );
        let text = rep.to_text();
        assert!(text.contains("step/flux"), "{text}");
        assert!(text.contains("imbalance 1.600"), "{text}");
    }

    #[test]
    fn analyze_leaves_ambiguous_leaves_and_missing_bytes_unplaced() {
        let snap = TraceSnapshot {
            lanes: vec![lane(
                0,
                0,
                vec![
                    ev(EventKind::Kernel, "a/work", 0, 10, 1, 0),
                    ev(EventKind::Kernel, "b/work", 10, 10, 1, 100),
                    ev(EventKind::Kernel, "solo", 20, 10, 1, 0),
                ],
            )],
            dropped: 0,
            step: 0,
        };
        let mut inputs = RooflineInputs {
            peak_flops: 1e12,
            bandwidth: 1e11,
            ..RooflineInputs::default()
        };
        inputs.flops_by_kernel.insert("work".into(), 100);
        inputs.flops_by_kernel.insert("solo".into(), 100);
        let rep = analyze(&snap, &inputs);
        let get = |n: &str| rep.kernels.iter().find(|k| k.name == n).unwrap();
        // "work" appears under two paths: the shared counter is not split.
        assert_eq!(get("a/work").flops, None);
        assert_eq!(get("b/work").flops, None);
        // "solo" has FLOPs but no DMA bytes: throughput yes, AI no.
        let solo = get("solo");
        assert_eq!(solo.flops, Some(100));
        assert!(solo.gflops.is_some());
        assert_eq!(solo.ai, None);
        assert_eq!(solo.bound, None);
    }

    #[test]
    fn roofline_inputs_from_arch_use_cg_peak_and_ddr_bandwidth() {
        let spec = crate::arch::SunwaySpec::next_gen();
        let ri = RooflineInputs::from_arch(&spec);
        assert_eq!(ri.peak_flops, spec.cg_peak_f64());
        assert_eq!(ri.bandwidth, spec.ddr_bandwidth);
    }

    #[test]
    fn empty_snapshot_analyzes_and_exports_cleanly() {
        let snap = TraceSnapshot::default();
        let rep = analyze(&snap, &RooflineInputs::default());
        assert_eq!(rep.wall_ns, 0);
        assert_eq!(rep.imbalance, 1.0);
        assert!(rep.kernels.is_empty());
        let stats = validate_chrome(&snap.to_chrome_json()).expect("empty trace valid");
        assert_eq!(stats.events, 0);
    }
}
