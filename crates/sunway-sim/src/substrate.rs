//! The execution-target layer: one handle threaded through every model hot
//! loop, deciding *where* a kernel's iterations run.
//!
//! The paper offloads every dycore/physics loop to the 64 CPEs of a core
//! group through SWGOMP's job server (§3.3.1, Fig. 4–5), with the
//! memory-address-distributing pool allocator (§3.3.3) assigned per core
//! group. [`Substrate`] packages that choice: either the loop runs serially
//! on the "MPE" (the calling thread), or it is shipped through
//! [`JobServer::target_parallel_for`] — the `!$omp target` path — chunked to
//! emulate CPE teams.
//!
//! Kernels are *named* at the dispatch site; the substrate records wall
//! time, invocation counts, dispatched items, and attributed DMA bytes per
//! name in a shared [`Metrics`] registry, under the trace-span path the
//! driver currently has open (e.g. `step/dycore/hevi_mass_flux`). That feeds
//! the Fig. 9-style measured table, `GristModel::kernel_report()`, and the
//! machine-readable `GristModel::metrics_json()` consumed by the
//! `BENCH_*.json` baseline pipeline.
//!
//! Cloning a `Substrate` is cheap and shares the job server *and* the
//! metrics registry, so a solver and the model driver holding clones of the
//! same substrate accumulate into one report.

use crate::distributor::AllocPolicy;
use crate::fault::{FaultError, FaultPlan, FaultSite};
use crate::metrics::{Metrics, SpanGuard};
use crate::swgomp::JobServer;
use crate::trace::{self, EventKind};
use std::fmt;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Where loop iterations execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecTargetKind {
    /// Run on the calling thread (the MPE), no offload.
    Serial,
    /// Offload through the SWGOMP job server to emulated CPE teams.
    CpeTeams,
}

/// Which microkernel implementation lane-aware hot loops select.
///
/// The scalar path is the *bitwise-reference oracle*: the SIMD lane kernels
/// keep one accumulator per output element walking `k` in the same order
/// (no FMA contraction), so both modes produce identical bits — the CI
/// kernel matrix asserts exactly that. Selected per-substrate; the
/// `GRIST_SIMD` env var (`scalar` | `simd`) sets the default for every
/// substrate built in the process, which is how the CI matrix drives whole
/// test suites through one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// Plain scalar loops — the equivalence oracle.
    ScalarReference,
    /// Explicit lane-group kernels (`grist_ml::gemm::simd`, the dycore
    /// lane helpers). Production default.
    #[default]
    Simd,
}

impl KernelMode {
    /// Read `GRIST_SIMD` (`scalar`/`scalar-reference`/`0`/`off` vs.
    /// `simd`/`1`/`on`); unset defaults to [`KernelMode::Simd`]. Unknown
    /// values panic so a typo'd CI matrix cell cannot silently test the
    /// wrong kernel.
    pub fn from_env() -> Self {
        match std::env::var("GRIST_SIMD").ok().as_deref() {
            None | Some("") => KernelMode::Simd,
            Some("scalar") | Some("scalar-reference") | Some("0") | Some("off") => {
                KernelMode::ScalarReference
            }
            Some("simd") | Some("1") | Some("on") => KernelMode::Simd,
            Some(other) => panic!("GRIST_SIMD={other:?}: expected `scalar` or `simd`"),
        }
    }

    fn to_u8(self) -> u8 {
        match self {
            KernelMode::ScalarReference => 0,
            KernelMode::Simd => 1,
        }
    }

    fn from_u8(v: u8) -> Self {
        if v == 0 {
            KernelMode::ScalarReference
        } else {
            KernelMode::Simd
        }
    }
}

/// How LDM staging transfers are scheduled by the omnicopy pipeline.
///
/// Both modes move the same bytes in the same chunks (DMA counters are
/// identical); double buffering only changes *when* the get of chunk `k+1`
/// is issued — overlapped with the compute of chunk `k`. Selected
/// per-substrate; the `GRIST_DMA` env var (`sync` | `double`) sets the
/// process-wide default. Defaults to [`DmaMode::Synchronous`] so existing
/// counter baselines are unaffected unless a caller opts in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DmaMode {
    /// get → compute → put, one chunk at a time.
    #[default]
    Synchronous,
    /// Two LDM buffer slots; prefetch of chunk `k+1` overlaps compute of
    /// chunk `k` (the SWGOMP/O2ATH `omnicopy` idiom).
    DoubleBuffered,
}

impl DmaMode {
    /// Read `GRIST_DMA` (`sync`/`synchronous` vs. `double`/
    /// `double-buffered`); unset defaults to [`DmaMode::Synchronous`].
    /// Unknown values panic (see [`KernelMode::from_env`]).
    pub fn from_env() -> Self {
        match std::env::var("GRIST_DMA").ok().as_deref() {
            None | Some("") => DmaMode::Synchronous,
            Some("sync") | Some("synchronous") => DmaMode::Synchronous,
            Some("double") | Some("double-buffered") | Some("db") => DmaMode::DoubleBuffered,
            Some(other) => panic!("GRIST_DMA={other:?}: expected `sync` or `double`"),
        }
    }

    fn to_u8(self) -> u8 {
        match self {
            DmaMode::Synchronous => 0,
            DmaMode::DoubleBuffered => 1,
        }
    }

    fn from_u8(v: u8) -> Self {
        if v == 0 {
            DmaMode::Synchronous
        } else {
            DmaMode::DoubleBuffered
        }
    }
}

/// One row of a kernel report, ready for display. `name` is the full
/// span-qualified kernel path (e.g. `step/dycore/hevi_mass_flux`).
#[derive(Debug, Clone)]
pub struct KernelReportRow {
    pub name: String,
    pub calls: u64,
    pub total_ms: f64,
    pub mean_us: f64,
}

/// Turn the registry's kernel table into display rows, sorted by total time
/// descending (the Fig. 9 convention: hottest kernel first).
pub fn kernel_report_rows(metrics: &Metrics) -> Vec<KernelReportRow> {
    let mut rows: Vec<KernelReportRow> = metrics
        .kernel_snapshot()
        .into_iter()
        .map(|(name, s)| KernelReportRow {
            name,
            calls: s.calls,
            total_ms: s.nanos as f64 / 1e6,
            mean_us: if s.calls == 0 {
                0.0
            } else {
                s.nanos as f64 / 1e3 / s.calls as f64
            },
        })
        .collect();
    rows.sort_by(|a, b| b.total_ms.total_cmp(&a.total_ms));
    rows
}

/// Format report rows as an aligned text table.
pub fn format_kernel_report(rows: &[KernelReportRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<26} {:>10} {:>12} {:>12}\n",
        "kernel", "calls", "total ms", "mean us"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<26} {:>10} {:>12.3} {:>12.3}\n",
            r.name, r.calls, r.total_ms, r.mean_us
        ));
    }
    out
}

struct SubstrateInner {
    kind: ExecTargetKind,
    server: Option<JobServer>,
    policy: AllocPolicy,
    metrics: Metrics,
    /// Armed chaos schedule, shared by every clone. `None` (the default)
    /// keeps the dispatch path infallible and fault-free.
    fault: Mutex<Option<FaultPlan>>,
    /// [`KernelMode`] discriminant, shared by every clone (atomics so the
    /// CI matrix and benches can flip modes without rebuilding substrates).
    kernel_mode: AtomicU8,
    /// [`DmaMode`] discriminant, shared by every clone.
    dma_mode: AtomicU8,
}

impl SubstrateInner {
    fn new(
        kind: ExecTargetKind,
        server: Option<JobServer>,
        policy: AllocPolicy,
        metrics: Metrics,
    ) -> Self {
        SubstrateInner {
            kind,
            server,
            policy,
            metrics,
            fault: Mutex::new(None),
            kernel_mode: AtomicU8::new(KernelMode::from_env().to_u8()),
            dma_mode: AtomicU8::new(DmaMode::from_env().to_u8()),
        }
    }
}

/// A cheap-to-clone handle selecting the execution target for named kernels.
///
/// Held by `SweSolver`, the HEVI `NhSolver`, and the physics suites; all
/// clones share one [`JobServer`] and one [`Metrics`] registry.
#[derive(Clone)]
pub struct Substrate {
    inner: Arc<SubstrateInner>,
}

impl fmt::Debug for Substrate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Substrate")
            .field("kind", &self.inner.kind)
            .field("n_cpes", &self.n_cpes())
            .field("policy", &self.inner.policy)
            .finish()
    }
}

impl Default for Substrate {
    fn default() -> Self {
        Substrate::serial()
    }
}

impl Substrate {
    /// The fallback target: every kernel runs on the calling thread.
    pub fn serial() -> Self {
        Substrate::serial_with_metrics(Metrics::default())
    }

    /// Serial target recording into an existing (shared) registry — the
    /// multi-rank idiom: every rank builds its own substrate over one cloned
    /// [`Metrics`], so kernel stats, counters, and the event trace merge
    /// into a single world-wide view.
    pub fn serial_with_metrics(metrics: Metrics) -> Self {
        Substrate {
            inner: Arc::new(SubstrateInner::new(
                ExecTargetKind::Serial,
                None,
                AllocPolicy::Distributed,
                metrics,
            )),
        }
    }

    /// Offload target: a persistent [`JobServer`] with `n_cpes` workers and
    /// the paper's address-distributing allocation policy.
    pub fn cpe_teams(n_cpes: usize) -> Self {
        Substrate::with_policy(n_cpes, AllocPolicy::Distributed)
    }

    /// [`Self::cpe_teams`] recording into an existing (shared) registry;
    /// see [`Self::serial_with_metrics`].
    pub fn cpe_teams_with_metrics(n_cpes: usize, metrics: Metrics) -> Self {
        Substrate {
            inner: Arc::new(SubstrateInner::new(
                ExecTargetKind::CpeTeams,
                Some(JobServer::new(n_cpes)),
                AllocPolicy::Distributed,
                metrics,
            )),
        }
    }

    /// Offload target with an explicit [`AllocPolicy`] (for the Fig. 9 DST
    /// ablation, which compares Aligned vs. Distributed).
    pub fn with_policy(n_cpes: usize, policy: AllocPolicy) -> Self {
        Substrate {
            inner: Arc::new(SubstrateInner::new(
                ExecTargetKind::CpeTeams,
                Some(JobServer::new(n_cpes)),
                policy,
                Metrics::default(),
            )),
        }
    }

    pub fn kind(&self) -> ExecTargetKind {
        self.inner.kind
    }

    /// Which microkernel implementation kernels dispatched through this
    /// substrate should use (shared by every clone).
    pub fn kernel_mode(&self) -> KernelMode {
        KernelMode::from_u8(self.inner.kernel_mode.load(Ordering::Relaxed))
    }

    /// Override the [`KernelMode`] for this substrate and every clone.
    pub fn set_kernel_mode(&self, mode: KernelMode) {
        self.inner
            .kernel_mode
            .store(mode.to_u8(), Ordering::Relaxed);
    }

    /// How LDM staging pipelines dispatched through this substrate schedule
    /// their transfers (shared by every clone).
    pub fn dma_mode(&self) -> DmaMode {
        DmaMode::from_u8(self.inner.dma_mode.load(Ordering::Relaxed))
    }

    /// Override the [`DmaMode`] for this substrate and every clone.
    pub fn set_dma_mode(&self, mode: DmaMode) {
        self.inner.dma_mode.store(mode.to_u8(), Ordering::Relaxed);
    }

    pub fn is_offload(&self) -> bool {
        self.inner.kind == ExecTargetKind::CpeTeams
    }

    /// Worker count of the offload target; 1 for the serial target (the
    /// MPE itself).
    pub fn n_cpes(&self) -> usize {
        self.inner.server.as_ref().map_or(1, |s| s.n_cpes)
    }

    pub fn alloc_policy(&self) -> AllocPolicy {
        self.inner.policy
    }

    /// The underlying job server, if this substrate offloads.
    pub fn job_server(&self) -> Option<&JobServer> {
        self.inner.server.as_ref()
    }

    /// The shared observability registry: per-kernel stats, trace spans,
    /// and hardware-model counters.
    pub fn metrics(&self) -> &Metrics {
        &self.inner.metrics
    }

    /// Open a trace span on the shared registry; kernels dispatched while
    /// the guard lives are attributed under it (see [`Metrics::span`]).
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        self.inner.metrics.span(name)
    }

    /// Dispatch `0..n_items`, untimed. Serial target runs in order on the
    /// calling thread; CpeTeams ships one team-head job whose team works the
    /// loop in chunks of `n / (4 · n_cpes)` (the workshare chunking idiom).
    pub fn parallel_for<F: Fn(usize) + Sync>(&self, n_items: usize, f: &F) {
        match &self.inner.server {
            None => {
                for i in 0..n_items {
                    f(i);
                }
            }
            Some(server) => {
                let chunk = n_items.div_ceil(4 * server.n_cpes).max(1);
                server.target_parallel_for(n_items, chunk, f);
            }
        }
    }

    /// Arm a seeded [`FaultPlan`] on this substrate (and every clone of it).
    /// Subsequent offload dispatches consult the plan and may fail, retry,
    /// or degrade to serial execution; see [`Self::run_with_bytes`].
    pub fn arm_faults(&self, plan: FaultPlan) {
        *self.inner.fault.lock().unwrap() = Some(plan);
    }

    /// Remove the armed fault plan, returning it (with its event counters
    /// still live) if one was armed.
    pub fn disarm_faults(&self) -> Option<FaultPlan> {
        self.inner.fault.lock().unwrap().take()
    }

    /// A clone of the currently armed fault plan, if any.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.inner.fault.lock().unwrap().clone()
    }

    /// Dispatch `0..n_items` as the named kernel, recording wall time, the
    /// invocation, and the item count in the shared registry.
    pub fn run<F: Fn(usize) + Sync>(&self, name: &'static str, n_items: usize, f: F) {
        self.run_with_bytes(name, n_items, 0, f);
    }

    /// [`Self::run`] with a per-item DMA payload estimate: a kernel that
    /// streams `k` arrays of `e`-byte elements per iteration passes
    /// `bytes_per_item = k·e`, and the dispatch attributes `n_items·k·e`
    /// modeled DMA bytes to the kernel *and* the global `dma.bytes` /
    /// `dma.transactions` counters (one transaction per dispatched CPE
    /// chunk, matching the omnicopy batching granularity). Offload targets
    /// only — the serial MPE path does scalar loads, not DMA.
    ///
    /// If a [`FaultPlan`] is armed and the dispatch fails through its whole
    /// retry budget (see [`Self::try_run_with_bytes`]), this infallible
    /// entry point *degrades*: the kernel runs serially on the calling MPE
    /// thread — bitwise identical results, no DMA attribution — and the
    /// `fault.degradations` counter ticks. Model hot loops therefore always
    /// complete; chaos only changes where the work ran.
    pub fn run_with_bytes<F: Fn(usize) + Sync>(
        &self,
        name: &'static str,
        n_items: usize,
        bytes_per_item: usize,
        f: F,
    ) {
        if let Err(_fault) = self.try_run_with_bytes(name, n_items, bytes_per_item, &f) {
            let metrics = &self.inner.metrics;
            metrics.counter_add("fault.degradations", 1);
            let t0 = Instant::now();
            for i in 0..n_items {
                f(i);
            }
            let nanos = t0.elapsed().as_nanos() as u64;
            if metrics.tracer().is_enabled() {
                metrics.tracer().record_complete(
                    EventKind::Kernel,
                    &metrics.qualified_kernel(name),
                    t0,
                    n_items as u64,
                    0,
                );
            }
            metrics.record_kernel(name, nanos, n_items as u64, 0);
        }
    }

    /// Fallible dispatch: consult the armed [`FaultPlan`] (if any) before
    /// offloading. A transient fault is retried up to the plan's
    /// `max_retries` (ticking `fault.injected` per fire and `fault.retries`
    /// per re-issue); a fault that persists through the budget returns the
    /// typed [`FaultError`] *without* running the kernel, leaving the
    /// degrade decision to the caller. Dispatches carrying a DMA payload
    /// (`bytes_per_item > 0`) are classified [`FaultSite::Dma`], compute-only
    /// dispatches [`FaultSite::Dispatch`]. The serial target never consults
    /// the plan — stalled dispatches and corrupt DMA are offload failure
    /// modes (the recovery ladder's terminal rung *is* serial execution).
    pub fn try_run_with_bytes<F: Fn(usize) + Sync>(
        &self,
        name: &'static str,
        n_items: usize,
        bytes_per_item: usize,
        f: &F,
    ) -> Result<(), FaultError> {
        if self.inner.server.is_some() {
            let plan = self.inner.fault.lock().unwrap().clone();
            if let Some(plan) = plan {
                let site = if bytes_per_item > 0 {
                    FaultSite::Dma
                } else {
                    FaultSite::Dispatch
                };
                let key = plan.next_key(site);
                let metrics = &self.inner.metrics;
                let mut attempt = 0u32;
                while plan.should_fail(site, key, attempt) {
                    metrics.counter_add("fault.injected", 1);
                    if attempt >= plan.max_retries() {
                        return Err(FaultError {
                            site,
                            key,
                            attempts: attempt + 1,
                        });
                    }
                    metrics.counter_add("fault.retries", 1);
                    attempt += 1;
                }
            }
        }
        self.dispatch_recorded(name, n_items, bytes_per_item, f);
        Ok(())
    }

    /// The clean dispatch path: execute on the configured target and record
    /// kernel stats plus offload/DMA counters. With tracing enabled this
    /// also emits one [`EventKind::Kernel`] event on the dispatching thread,
    /// per-chunk [`EventKind::Chunk`] events on the worker lanes (attributed
    /// to the dispatcher's rank), and a [`EventKind::Dma`] instant carrying
    /// the modeled payload.
    fn dispatch_recorded<F: Fn(usize) + Sync>(
        &self,
        name: &'static str,
        n_items: usize,
        bytes_per_item: usize,
        f: &F,
    ) {
        let metrics = &self.inner.metrics;
        let tracer = metrics.tracer();
        let traced = tracer.is_enabled();
        let qualified = if traced {
            Some(metrics.qualified_kernel(name))
        } else {
            None
        };
        let t0 = Instant::now();
        match (&self.inner.server, &qualified) {
            (Some(server), Some(qname)) if n_items > 0 => {
                // Traced offload: wrap the body so each worker opens a chunk
                // timer at its chunk's first index and closes it at the last
                // (same chunk arithmetic as `parallel_for`).
                let chunk = n_items.div_ceil(4 * server.n_cpes).max(1);
                let rank = trace::thread_rank();
                let wrapped = |i: usize| {
                    if i.is_multiple_of(chunk) {
                        trace::chunk_begin();
                    }
                    f(i);
                    if (i + 1).is_multiple_of(chunk) || i + 1 == n_items {
                        let items = (i % chunk + 1) as u64;
                        tracer.record_chunk_end(qname, rank, items);
                    }
                };
                server.target_parallel_for(n_items, chunk, &wrapped);
            }
            _ => self.parallel_for(n_items, f),
        }
        let nanos = t0.elapsed().as_nanos() as u64;
        let mut bytes = 0u64;
        let mut transactions = 0u64;
        if let Some(server) = &self.inner.server {
            metrics.counter_add("substrate.dispatches", 1);
            metrics.counter_add("substrate.items", n_items as u64);
            if bytes_per_item > 0 {
                bytes = (n_items * bytes_per_item) as u64;
                let chunk = n_items.div_ceil(4 * server.n_cpes).max(1);
                transactions = n_items.div_ceil(chunk) as u64;
                metrics.counter_add("dma.bytes", bytes);
                metrics.counter_add("dma.transactions", transactions);
            }
        }
        if let Some(qname) = &qualified {
            tracer.record_complete(EventKind::Kernel, qname, t0, n_items as u64, bytes);
            if bytes > 0 {
                tracer.record_instant(EventKind::Dma, qname, transactions, bytes);
            }
            // Stamp any request flow IDs active on this thread (see
            // `trace::flow_scope`) so served queries join their kernels.
            tracer.record_scoped_flows(qname);
        }
        metrics.record_kernel(name, nanos, n_items as u64, bytes);
    }

    /// Report rows for every kernel dispatched through this substrate (or
    /// any clone of it), hottest first.
    pub fn kernel_report(&self) -> Vec<KernelReportRow> {
        kernel_report_rows(&self.inner.metrics)
    }

    pub fn reset_profile(&self) {
        self.inner.metrics.reset();
    }
}

/// Hands out disjoint `&mut` column views of one flat slice to concurrently
/// running loop iterations.
///
/// The model's `Field2` layout is level-fastest (`col * nlev + lev`), so a
/// per-column kernel writes the contiguous window `[col*stride, (col+1)*stride)`.
/// `ColumnsMut` erases the slice to a raw base pointer (making it `Sync`) and
/// reconstitutes per-column sub-slices on demand.
pub struct ColumnsMut<'a, T> {
    ptr: *mut T,
    stride: usize,
    n_cols: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: `ColumnsMut` only exposes element access through `col`/`at`, whose
// safety contract requires callers to touch disjoint indices; the underlying
// data is owned by a `&mut [T]` the caller keeps borrowed for 'a.
unsafe impl<T: Send> Send for ColumnsMut<'_, T> {}
unsafe impl<T: Send> Sync for ColumnsMut<'_, T> {}

impl<'a, T> ColumnsMut<'a, T> {
    /// View `data` as `data.len() / stride` columns of length `stride`.
    pub fn new(data: &'a mut [T], stride: usize) -> Self {
        assert!(stride > 0, "column stride must be positive");
        assert_eq!(
            data.len() % stride,
            0,
            "slice length must be a multiple of the stride"
        );
        ColumnsMut {
            ptr: data.as_mut_ptr(),
            stride,
            n_cols: data.len() / stride,
            _marker: PhantomData,
        }
    }

    pub fn len(&self) -> usize {
        self.n_cols
    }

    pub fn is_empty(&self) -> bool {
        self.n_cols == 0
    }

    /// Mutable view of column `c`.
    ///
    /// # Safety
    /// Concurrent callers must pass distinct `c`; each column may be borrowed
    /// by at most one loop iteration at a time. The substrate's dispatchers
    /// guarantee this when `c` is the (unique) loop index.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn col(&self, c: usize) -> &mut [T] {
        debug_assert!(c < self.n_cols);
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(c * self.stride), self.stride) }
    }

    /// Mutable reference to flat element `i` (range `0..stride*len`).
    ///
    /// # Safety
    /// Concurrent callers must pass distinct `i` (same discipline as [`Self::col`]).
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn at(&self, i: usize) -> &mut T {
        debug_assert!(i < self.n_cols * self.stride);
        unsafe { &mut *self.ptr.add(i) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_cpe_teams_produce_identical_results() {
        let n = 10_000;
        let run_on = |sub: &Substrate| {
            let mut out = vec![0.0f64; n];
            {
                let cols = ColumnsMut::new(&mut out, 1);
                sub.run("square_root_scale", n, |i| {
                    // SAFETY: each index visited exactly once.
                    *unsafe { cols.at(i) } = (i as f64).sqrt() * 3.5 + 1.0;
                });
            }
            out
        };
        let serial = run_on(&Substrate::serial());
        let teams = run_on(&Substrate::cpe_teams(8));
        assert_eq!(serial, teams, "per-index kernels must be bitwise identical");
    }

    #[test]
    fn profiler_counts_calls_and_time() {
        let sub = Substrate::serial();
        for _ in 0..5 {
            sub.run("noop_kernel", 100, |_| {});
        }
        sub.run("other_kernel", 10, |_| {});
        let rows = sub.kernel_report();
        assert_eq!(rows.len(), 2);
        let noop = rows.iter().find(|r| r.name == "noop_kernel").unwrap();
        assert_eq!(noop.calls, 5);
        let other = rows.iter().find(|r| r.name == "other_kernel").unwrap();
        assert_eq!(other.calls, 1);
        sub.reset_profile();
        assert!(sub.kernel_report().is_empty());
    }

    #[test]
    fn clones_share_the_profiler() {
        let sub = Substrate::cpe_teams(4);
        let clone = sub.clone();
        clone.run("from_the_clone", 64, |_| {});
        let rows = sub.kernel_report();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].name, "from_the_clone");
        assert_eq!(rows[0].calls, 1);
    }

    #[test]
    fn columns_hand_out_disjoint_windows() {
        let nlev = 7;
        let ncols = 300;
        let mut data = vec![0.0f64; nlev * ncols];
        {
            let cols = ColumnsMut::new(&mut data, nlev);
            assert_eq!(cols.len(), ncols);
            let sub = Substrate::cpe_teams(8);
            sub.run("fill_columns", ncols, |c| {
                // SAFETY: each column index visited exactly once.
                let col = unsafe { cols.col(c) };
                for (k, v) in col.iter_mut().enumerate() {
                    *v = (c * nlev + k) as f64;
                }
            });
        }
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i as f64);
        }
    }

    #[test]
    fn spans_qualify_kernel_names_and_bytes_feed_dma_counters() {
        let sub = Substrate::cpe_teams(4);
        {
            let _step = sub.span("step");
            let _dy = sub.span("dycore");
            sub.run_with_bytes("streamed", 1000, 48, |_| {});
        }
        let rows = sub.kernel_report();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].name, "step/dycore/streamed");
        let m = sub.metrics();
        assert_eq!(m.counter("dma.bytes"), 48_000);
        assert!(m.counter("dma.transactions") >= 1);
        assert_eq!(m.counter("substrate.dispatches"), 1);
        assert_eq!(m.counter("substrate.items"), 1000);
        let snap = m.snapshot();
        assert_eq!(snap.kernels["step/dycore/streamed"].bytes, 48_000);
        assert_eq!(snap.spans["step/dycore"].calls, 1);
    }

    #[test]
    fn serial_target_attributes_no_dma_traffic() {
        let sub = Substrate::serial();
        sub.run_with_bytes("streamed", 100, 48, |_| {});
        assert_eq!(sub.metrics().counter("dma.bytes"), 0);
        assert_eq!(sub.metrics().counter("substrate.dispatches"), 0);
        let snap = sub.metrics().snapshot();
        assert_eq!(snap.kernels["streamed"].items, 100);
        assert_eq!(snap.kernels["streamed"].bytes, 0);
    }

    #[test]
    fn report_formats_into_a_table() {
        let sub = Substrate::serial();
        sub.run("alpha", 10, |_| {});
        let text = format_kernel_report(&sub.kernel_report());
        assert!(text.contains("kernel"));
        assert!(text.contains("alpha"));
    }

    #[test]
    fn pinned_dispatch_fault_degrades_to_serial_with_identical_results() {
        let n = 4096;
        let run_on = |sub: &Substrate| {
            let mut out = vec![0.0f64; n];
            {
                let cols = ColumnsMut::new(&mut out, 1);
                sub.run("faultable", n, |i| {
                    // SAFETY: each index visited exactly once.
                    *unsafe { cols.at(i) } = (i as f64).ln_1p() * 2.0;
                });
            }
            out
        };
        let clean = run_on(&Substrate::cpe_teams(4));

        let sub = Substrate::cpe_teams(4);
        // The first compute-only dispatch (key 0) fails every attempt.
        sub.arm_faults(
            FaultPlan::new(1)
                .pin(FaultSite::Dispatch, 0)
                .with_max_retries(2),
        );
        let chaotic = run_on(&sub);
        assert_eq!(clean, chaotic, "degraded serial run must match bitwise");
        let m = sub.metrics();
        assert_eq!(m.counter("fault.injected"), 3, "initial try + 2 retries");
        assert_eq!(m.counter("fault.retries"), 2);
        assert_eq!(m.counter("fault.degradations"), 1);
        // The degraded dispatch never reached the offload path.
        assert_eq!(m.counter("substrate.dispatches"), 0);
        assert_eq!(m.snapshot().kernels["faultable"].calls, 1);
    }

    #[test]
    fn try_run_surfaces_a_typed_error_instead_of_panicking() {
        let sub = Substrate::cpe_teams(4);
        sub.arm_faults(FaultPlan::new(0).pin(FaultSite::Dma, 0).with_max_retries(1));
        let err = sub
            .try_run_with_bytes("dma_kernel", 128, 8, &|_| {})
            .unwrap_err();
        assert_eq!(err.site, FaultSite::Dma);
        assert_eq!(err.key, 0);
        assert_eq!(err.attempts, 2);
        // Subsequent DMA dispatches draw fresh keys and succeed.
        assert!(sub
            .try_run_with_bytes("dma_kernel", 128, 8, &|_| {})
            .is_ok());
        assert_eq!(sub.metrics().counter("dma.bytes"), 128 * 8);
    }

    #[test]
    fn transient_fault_clears_on_retry_without_degrading() {
        // A pinned fault covers only attempt 0? No — pins persist. Use a
        // rate plan and find a seed/key where attempt 0 fires and attempt 1
        // clears, exercising the retry path deterministically.
        let mut chosen = None;
        'outer: for seed in 0..64 {
            let p = FaultPlan::new(seed).with_rate(FaultSite::Dispatch, 0.5);
            if p.should_fail(FaultSite::Dispatch, 0, 0) && !p.should_fail(FaultSite::Dispatch, 0, 1)
            {
                chosen = Some(seed);
                break 'outer;
            }
        }
        let seed = chosen.expect("some seed in 0..64 fires then clears");
        let sub = Substrate::cpe_teams(4);
        sub.arm_faults(FaultPlan::new(seed).with_rate(FaultSite::Dispatch, 0.5));
        sub.run("retryable", 256, |_| {});
        let m = sub.metrics();
        assert_eq!(m.counter("fault.injected"), 1);
        assert_eq!(m.counter("fault.retries"), 1);
        assert_eq!(m.counter("fault.degradations"), 0);
        assert_eq!(
            m.counter("substrate.dispatches"),
            1,
            "retry reached offload"
        );
    }

    #[test]
    fn disarm_restores_the_fault_free_path() {
        let sub = Substrate::cpe_teams(2);
        sub.arm_faults(FaultPlan::new(0).pin(FaultSite::Dispatch, 0));
        assert!(sub.fault_plan().is_some());
        let plan = sub.disarm_faults().expect("was armed");
        assert_eq!(plan.seed(), 0);
        assert!(sub.fault_plan().is_none());
        sub.run("calm", 64, |_| {});
        assert_eq!(sub.metrics().counter("fault.injected"), 0);
    }

    #[test]
    fn kernel_and_dma_modes_are_shared_by_clones() {
        let sub = Substrate::cpe_teams(2);
        let clone = sub.clone();
        // Unset env defaults: simd + sync (skip when a CI matrix cell pins
        // the env, since constructors read it).
        if std::env::var_os("GRIST_SIMD").is_none() {
            assert_eq!(sub.kernel_mode(), KernelMode::Simd);
        }
        if std::env::var_os("GRIST_DMA").is_none() {
            assert_eq!(sub.dma_mode(), DmaMode::Synchronous);
        }
        clone.set_kernel_mode(KernelMode::ScalarReference);
        clone.set_dma_mode(DmaMode::DoubleBuffered);
        assert_eq!(sub.kernel_mode(), KernelMode::ScalarReference);
        assert_eq!(sub.dma_mode(), DmaMode::DoubleBuffered);
    }

    #[test]
    fn serial_target_ignores_the_fault_plan() {
        let sub = Substrate::serial();
        sub.arm_faults(
            FaultPlan::new(0)
                .pin(FaultSite::Dispatch, 0)
                .with_rate(FaultSite::Dispatch, 1.0),
        );
        sub.run("mpe_kernel", 64, |_| {});
        assert_eq!(sub.metrics().counter("fault.injected"), 0);
        assert_eq!(sub.metrics().snapshot().kernels["mpe_kernel"].calls, 1);
    }
}
