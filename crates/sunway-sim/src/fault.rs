//! Deterministic fault injection for the simulated substrate.
//!
//! A production run at the paper's scale (107,520 nodes, 34M cores) cannot
//! assume a fault-free machine: CPE dispatches stall, DMA transfers corrupt,
//! and halo messages are truncated in flight. [`FaultPlan`] is a *seeded*
//! description of which of those events fail, shared (cheaply, via `Arc`)
//! between the injection sites:
//!
//! * [`Substrate::try_run_with_bytes`](crate::substrate::Substrate::try_run_with_bytes)
//!   consults an armed plan before every offload dispatch ([`FaultSite::Dispatch`]
//!   for compute-only kernels, [`FaultSite::Dma`] for dispatches carrying a
//!   modeled DMA payload);
//! * `grist-runtime`'s chaos halo exchange consults it per received message
//!   ([`FaultSite::HaloExchange`]), truncating the buffer so the failure
//!   surfaces through the normal malformed-buffer detection path.
//!
//! Every decision is a pure hash of `(seed, site, event key, attempt)` —
//! re-running the same workload with the same plan injects the *same* faults,
//! which is what makes recovery testable: two seeded chaos runs must converge
//! to the same post-recovery state.
//!
//! Two fault flavours:
//!
//! * **Rate faults** ([`FaultPlan::with_rate`]) are *transient*: each retry
//!   attempt re-rolls the hash, so a retry usually clears the fault (a stalled
//!   dispatch that succeeds on re-issue).
//! * **Pinned faults** ([`FaultPlan::pin`]) are *persistent*: the named event
//!   fails on every attempt, forcing the caller down the degrade path
//!   (serial fallback for dispatches, checkpoint restore for exchanges).

use std::collections::BTreeSet;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Where in the stack an injected fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultSite {
    /// A substrate kernel dispatch (the CPE job launch stalls).
    Dispatch,
    /// A dispatch carrying a modeled DMA payload (the transfer corrupts and
    /// is detected, so the whole dispatch must be re-issued).
    Dma,
    /// A gathered halo exchange round (a received message is truncated).
    HaloExchange,
}

impl FaultSite {
    /// Stable per-site hash salt (decisions at different sites with the same
    /// event key must be independent).
    fn salt(self) -> u64 {
        match self {
            FaultSite::Dispatch => 0x9d15_7c3a_11b2_0001,
            FaultSite::Dma => 0x9d15_7c3a_11b2_0002,
            FaultSite::HaloExchange => 0x9d15_7c3a_11b2_0003,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            FaultSite::Dispatch => "dispatch",
            FaultSite::Dma => "dma",
            FaultSite::HaloExchange => "halo-exchange",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultSite::Dispatch => 0,
            FaultSite::Dma => 1,
            FaultSite::HaloExchange => 2,
        }
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// An injected fault that persisted through every retry attempt — the typed
/// error the substrate surfaces instead of a panic. Carries enough context
/// (site, deterministic event key, attempts consumed) to correlate the
/// failure with the plan that injected it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultError {
    pub site: FaultSite,
    /// Deterministic event key the plan keyed the decision on.
    pub key: u64,
    /// Attempts consumed (first try + retries) before giving up.
    pub attempts: u32,
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "injected {} fault at event {} persisted through {} attempt(s)",
            self.site, self.key, self.attempts
        )
    }
}

impl std::error::Error for FaultError {}

/// Immutable plan configuration (shared by every clone).
#[derive(Debug, Clone, Default)]
struct PlanCfg {
    seed: u64,
    max_retries: u32,
    /// Per-site transient fault probability, 0 when unset.
    rates: [f64; 3],
    /// Persistent faults: `(site, event key)` pairs that fail every attempt.
    pinned: BTreeSet<(FaultSite, u64)>,
}

/// Per-site monotone event counters (shared by every clone, so the plan
/// assigns one key per dispatch no matter which substrate clone issues it).
#[derive(Debug, Default)]
struct SiteSeqs([AtomicU64; 3]);

/// A seeded, deterministic fault schedule. Cloning is cheap and shares the
/// event counters; build the plan (rates, pins, retry budget) *before*
/// arming it on a substrate.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    cfg: Arc<PlanCfg>,
    seqs: Arc<SiteSeqs>,
}

impl FaultPlan {
    /// A plan that injects nothing until rates or pins are added.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            cfg: Arc::new(PlanCfg {
                seed,
                max_retries: 2,
                ..Default::default()
            }),
            seqs: Arc::new(SiteSeqs::default()),
        }
    }

    pub fn seed(&self) -> u64 {
        self.cfg.seed
    }

    /// Retry budget callers should spend before degrading (first attempt not
    /// counted). Default 2.
    pub fn max_retries(&self) -> u32 {
        self.cfg.max_retries
    }

    pub fn with_max_retries(mut self, n: u32) -> Self {
        Arc::make_mut(&mut self.cfg).max_retries = n;
        self
    }

    /// Transient per-event fault probability at `site` (each attempt
    /// re-rolls, so retries usually clear the fault).
    pub fn with_rate(mut self, site: FaultSite, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "fault rate must be in [0, 1]");
        Arc::make_mut(&mut self.cfg).rates[site.index()] = rate;
        self
    }

    /// Pin a *persistent* fault: event `key` at `site` fails on every
    /// attempt, forcing the caller down its degrade path.
    pub fn pin(mut self, site: FaultSite, key: u64) -> Self {
        Arc::make_mut(&mut self.cfg).pinned.insert((site, key));
        self
    }

    /// Hand out the next deterministic event key for `site` (the substrate's
    /// dispatch counter). Sites with naturally unique keys — the halo
    /// exchange's `(rank, src, tag)` — derive theirs instead, so rank-thread
    /// interleaving cannot perturb the schedule.
    pub fn next_key(&self, site: FaultSite) -> u64 {
        self.seqs.0[site.index()].fetch_add(1, Ordering::Relaxed)
    }

    /// Zero the per-site event counters (start an identical schedule over).
    pub fn reset(&self) {
        for c in &self.seqs.0 {
            c.store(0, Ordering::Relaxed);
        }
    }

    /// Does attempt `attempt` of event `key` at `site` fail? Pure function
    /// of the plan configuration — identical runs see identical faults.
    pub fn should_fail(&self, site: FaultSite, key: u64, attempt: u32) -> bool {
        if self.cfg.pinned.contains(&(site, key)) {
            return true;
        }
        let rate = self.cfg.rates[site.index()];
        if rate <= 0.0 {
            return false;
        }
        let h = splitmix64(
            self.cfg
                .seed
                .wrapping_add(site.salt())
                .wrapping_add(splitmix64(key))
                .wrapping_add((attempt as u64).wrapping_mul(0xA076_1D64_78BD_642F)),
        );
        // Top 53 bits → uniform in [0, 1).
        ((h >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < rate
    }
}

/// SplitMix64 finalizer — the same mixer the vendored rand shim seeds with.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_plan_never_fails() {
        let p = FaultPlan::new(7);
        for key in 0..1000 {
            assert!(!p.should_fail(FaultSite::Dispatch, key, 0));
            assert!(!p.should_fail(FaultSite::Dma, key, 0));
            assert!(!p.should_fail(FaultSite::HaloExchange, key, 0));
        }
    }

    #[test]
    fn decisions_are_deterministic_for_a_seed() {
        let a = FaultPlan::new(42).with_rate(FaultSite::Dispatch, 0.25);
        let b = FaultPlan::new(42).with_rate(FaultSite::Dispatch, 0.25);
        let fire_a: Vec<bool> = (0..500)
            .map(|k| a.should_fail(FaultSite::Dispatch, k, 0))
            .collect();
        let fire_b: Vec<bool> = (0..500)
            .map(|k| b.should_fail(FaultSite::Dispatch, k, 0))
            .collect();
        assert_eq!(fire_a, fire_b);
        assert!(fire_a.iter().any(|&f| f), "25% rate must fire in 500 draws");
        assert!(fire_a.iter().any(|&f| !f), "25% rate must also pass");
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = FaultPlan::new(1).with_rate(FaultSite::Dispatch, 0.5);
        let b = FaultPlan::new(2).with_rate(FaultSite::Dispatch, 0.5);
        let same = (0..256)
            .filter(|&k| {
                a.should_fail(FaultSite::Dispatch, k, 0) == b.should_fail(FaultSite::Dispatch, k, 0)
            })
            .count();
        assert!(same < 256, "seeds 1 and 2 produced identical schedules");
    }

    #[test]
    fn rate_hits_are_roughly_calibrated() {
        let p = FaultPlan::new(9).with_rate(FaultSite::Dma, 0.1);
        let n = 10_000;
        let hits = (0..n)
            .filter(|&k| p.should_fail(FaultSite::Dma, k, 0))
            .count();
        let frac = hits as f64 / n as f64;
        assert!((0.07..0.13).contains(&frac), "10% rate measured {frac}");
    }

    #[test]
    fn retries_reroll_transient_faults() {
        let p = FaultPlan::new(3).with_rate(FaultSite::Dispatch, 0.3);
        // For every event that fails on attempt 0, some later attempt clears
        // (probability of 4 consecutive independent 30% hits is 0.8%; over
        // the keys that fire, at least one must clear within 4 retries).
        let mut cleared = 0;
        let mut fired = 0;
        for key in 0..300 {
            if p.should_fail(FaultSite::Dispatch, key, 0) {
                fired += 1;
                if (1..=4).any(|a| !p.should_fail(FaultSite::Dispatch, key, a)) {
                    cleared += 1;
                }
            }
        }
        assert!(fired > 50, "30% rate fired only {fired}/300");
        assert!(cleared > fired * 9 / 10, "{cleared}/{fired} cleared");
    }

    #[test]
    fn pinned_faults_persist_through_every_attempt() {
        let p = FaultPlan::new(0).pin(FaultSite::Dispatch, 17);
        for attempt in 0..10 {
            assert!(p.should_fail(FaultSite::Dispatch, 17, attempt));
        }
        assert!(!p.should_fail(FaultSite::Dispatch, 16, 0));
        assert!(!p.should_fail(FaultSite::Dma, 17, 0), "pins are per-site");
    }

    #[test]
    fn clones_share_event_counters() {
        let p = FaultPlan::new(5);
        let q = p.clone();
        assert_eq!(p.next_key(FaultSite::Dispatch), 0);
        assert_eq!(q.next_key(FaultSite::Dispatch), 1);
        assert_eq!(p.next_key(FaultSite::Dma), 0, "sites count independently");
        p.reset();
        assert_eq!(q.next_key(FaultSite::Dispatch), 0);
    }

    #[test]
    fn fault_error_renders_site_key_and_attempts() {
        let e = FaultError {
            site: FaultSite::Dma,
            key: 42,
            attempts: 3,
        };
        let msg = e.to_string();
        assert!(msg.contains("dma"), "{msg}");
        assert!(msg.contains("42"), "{msg}");
        assert!(msg.contains("3 attempt"), "{msg}");
    }
}
