//! A set-associative LDCache simulator with LRU replacement — the model
//! behind Fig. 6's cache-thrashing analysis.
//!
//! "Investigation revealed that many of these kernels access more than four
//! arrays within a single loop, surpassing the number of LDCache ways.
//! Arrays, when well-aligned to a size larger than one cache way and
//! accessed with similar indices, are mapped to the same cache lane, leading
//! to cache thrashing." ([`simulate_streams`] reproduces exactly this, and
//! the address-distributed counterpart that fixes it.)

use crate::arch::SunwaySpec;

/// Outcome of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    Hit,
    Miss,
}

/// LRU set-associative cache over a simulated byte-address space.
#[derive(Debug, Clone)]
pub struct LdCache {
    pub ways: usize,
    pub sets: usize,
    pub line: usize,
    /// tags[set][way]; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// Per-(set,way) last-use stamp for LRU.
    stamp: Vec<u64>,
    clock: u64,
    pub hits: u64,
    pub misses: u64,
    /// Misses that evicted a *valid* line — lane-conflict (capacity/conflict)
    /// misses, as opposed to cold misses filling an invalid way. This is the
    /// thrashing signature of Fig. 6a: aligned arrays mapping to one lane
    /// evict each other on every access.
    pub conflict_evictions: u64,
}

impl LdCache {
    pub fn new(ways: usize, sets: usize, line: usize) -> Self {
        assert!(line.is_power_of_two() && sets.is_power_of_two());
        LdCache {
            ways,
            sets,
            line,
            tags: vec![u64::MAX; ways * sets],
            stamp: vec![0; ways * sets],
            clock: 0,
            hits: 0,
            misses: 0,
            conflict_evictions: 0,
        }
    }

    /// Build with the SW26010P geometry.
    pub fn sw26010p(spec: &SunwaySpec) -> Self {
        Self::new(spec.ldcache_ways, spec.ldcache_sets(), spec.ldcache_line)
    }

    /// Access one byte address.
    pub fn access(&mut self, addr: u64) -> Access {
        self.clock += 1;
        let line_addr = addr / self.line as u64;
        let set = (line_addr % self.sets as u64) as usize;
        let tag = line_addr / self.sets as u64;
        let base = set * self.ways;
        // Hit?
        for w in 0..self.ways {
            if self.tags[base + w] == tag {
                self.stamp[base + w] = self.clock;
                self.hits += 1;
                return Access::Hit;
            }
        }
        // Miss: evict LRU.
        self.misses += 1;
        let mut victim = 0;
        let mut oldest = u64::MAX;
        let mut cold = false;
        for w in 0..self.ways {
            if self.tags[base + w] == u64::MAX {
                victim = w;
                cold = true;
                break;
            }
            if self.stamp[base + w] < oldest {
                oldest = self.stamp[base + w];
                victim = w;
            }
        }
        if !cold {
            self.conflict_evictions += 1;
        }
        self.tags[base + victim] = tag;
        self.stamp[base + victim] = self.clock;
        Access::Miss
    }

    pub fn hit_ratio(&self) -> f64 {
        if self.hits + self.misses == 0 {
            return 0.0;
        }
        self.hits as f64 / (self.hits + self.misses) as f64
    }

    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
        self.conflict_evictions = 0;
    }

    /// Fold the access statistics into the metrics registry's
    /// `ldcache.hits` / `ldcache.misses` / `ldcache.conflict_evictions`
    /// counters.
    pub fn record_into(&self, metrics: &crate::metrics::Metrics) {
        metrics.counter_add("ldcache.hits", self.hits);
        metrics.counter_add("ldcache.misses", self.misses);
        metrics.counter_add("ldcache.conflict_evictions", self.conflict_evictions);
    }
}

/// Simulate a kernel loop streaming `n` arrays of `elem_size`-byte elements
/// with identical indices (`for i { touch a0[i], a1[i], …, an[i] }`) from the
/// given base addresses. Returns the hit ratio.
pub fn simulate_streams(
    cache: &mut LdCache,
    bases: &[u64],
    elem_size: usize,
    iterations: usize,
) -> f64 {
    cache.reset_stats();
    for i in 0..iterations {
        let off = (i * elem_size) as u64;
        for &b in bases {
            cache.access(b + off);
        }
    }
    cache.hit_ratio()
}

/// Base addresses as the original `malloc` would hand them out: every array
/// aligned to a full cache-way boundary (Fig. 6a — the thrashing layout).
pub fn aligned_bases(n_arrays: usize, way_bytes: usize) -> Vec<u64> {
    (0..n_arrays).map(|k| (k * 4 * way_bytes) as u64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> LdCache {
        // 4 ways × 128 sets × 256-byte lines = 128 KB, SW26010P geometry.
        LdCache::new(4, 128, 256)
    }

    #[test]
    fn sequential_scan_of_one_array_hits_within_lines() {
        let mut c = small_cache();
        let r = simulate_streams(&mut c, &[0], 8, 10_000);
        // One miss per 256/8 = 32 accesses.
        assert!(r > 0.95, "hit ratio {r}");
    }

    #[test]
    fn four_aligned_arrays_fit_the_four_ways() {
        let mut c = small_cache();
        let bases = aligned_bases(4, 32 * 1024);
        let r = simulate_streams(&mut c, &bases, 8, 10_000);
        assert!(r > 0.95, "hit ratio {r}");
    }

    #[test]
    fn five_aligned_arrays_thrash() {
        // Fig. 6a: more arrays than ways, all mapping to the same lane ⇒
        // every access evicts the line the next array needs.
        let mut c = small_cache();
        let bases = aligned_bases(5, 32 * 1024);
        let r = simulate_streams(&mut c, &bases, 8, 10_000);
        assert!(r < 0.2, "expected thrashing, hit ratio {r}");
    }

    #[test]
    fn distributed_bases_restore_hits_for_seven_arrays() {
        // Fig. 6b: staggering the starting addresses across cache lanes lets
        // even 7 concurrent streams (compute_rrr!) coexist.
        let mut c = small_cache();
        let way = 32 * 1024u64;
        let n = 7;
        let bases: Vec<u64> = (0..n)
            .map(|k| (k as u64) * 4 * way + (k as u64) * (way / n as u64 / 256 * 256))
            .collect();
        let r = simulate_streams(&mut c, &bases, 8, 10_000);
        assert!(r > 0.9, "distributed layout still thrashing: hit ratio {r}");
    }

    #[test]
    fn lru_prefers_evicting_stale_lines() {
        let mut c = LdCache::new(2, 1, 64);
        // Fill both ways of the single set.
        assert_eq!(c.access(0), Access::Miss); // line A
        assert_eq!(c.access(64), Access::Miss); // line B
        assert_eq!(c.access(0), Access::Hit); // A is now MRU
        assert_eq!(c.access(128), Access::Miss); // evicts B (LRU)
        assert_eq!(c.access(0), Access::Hit); // A survived
        assert_eq!(c.access(64), Access::Miss); // B was evicted
    }

    #[test]
    fn conflict_evictions_separate_thrashing_from_cold_misses() {
        // A single sequential stream misses only on cold lines: no valid
        // line is ever evicted within the touched footprint.
        let mut c = small_cache();
        simulate_streams(&mut c, &[0], 8, 1000); // 8 KB < 128 KB capacity
        assert!(c.misses > 0);
        assert_eq!(c.conflict_evictions, 0, "pure cold misses expected");
        // Five way-aligned arrays thrash: almost every miss evicts a line
        // another stream still needs.
        let mut c = small_cache();
        let bases = aligned_bases(5, 32 * 1024);
        simulate_streams(&mut c, &bases, 8, 10_000);
        assert!(
            c.conflict_evictions > c.misses / 2,
            "thrashing must show as conflict evictions: {} of {} misses",
            c.conflict_evictions,
            c.misses
        );
        // And the counters flow into the registry.
        let m = crate::metrics::Metrics::default();
        c.record_into(&m);
        assert_eq!(m.counter("ldcache.misses"), c.misses);
        assert_eq!(
            m.counter("ldcache.conflict_evictions"),
            c.conflict_evictions
        );
    }

    #[test]
    fn hit_ratio_bounds() {
        let mut c = small_cache();
        assert_eq!(c.hit_ratio(), 0.0);
        c.access(0);
        assert_eq!(c.hit_ratio(), 0.0);
        c.access(0);
        assert_eq!(c.hit_ratio(), 0.5);
    }

    #[test]
    fn working_set_within_capacity_fully_hits_on_second_pass() {
        let mut c = small_cache(); // 128 KB
        let n_bytes = 64 * 1024; // half capacity
                                 // First pass: cold misses.
        for i in (0..n_bytes).step_by(8) {
            c.access(i as u64);
        }
        c.reset_stats();
        // Second pass: everything resident.
        for i in (0..n_bytes).step_by(8) {
            c.access(i as u64);
        }
        assert_eq!(c.misses, 0, "resident working set must not miss");
    }
}
