//! The unified observability registry: hierarchical trace spans, per-kernel
//! wall-time/call accounting, and named hardware-model counters — the
//! measurement spine behind the paper's evaluation (Figs. 9–11 all depend on
//! per-kernel and per-exchange attribution).
//!
//! One [`Metrics`] is shared by every clone of a
//! [`Substrate`](crate::substrate::Substrate): the model driver opens spans
//! (`step` → `dycore`/`physics`/`ml`), every named kernel dispatch records
//! under the currently open span path, and the hardware simulators
//! ([`dma`](crate::dma), [`ldcache`](crate::ldcache),
//! [`distributor`](crate::distributor), `omnicopy`, and the halo exchange in
//! `grist-runtime`) feed counters like `dma.bytes`, `ldcache.misses`, and
//! `halo.messages`. [`MetricsSnapshot`] freezes the whole registry and
//! round-trips through JSON for the `BENCH_*.json` baselines checked by
//! `bench_compare`.

use crate::json::Json;
use crate::omnicopy::CopyStats;
use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::sync::Mutex;
use std::time::Instant;

/// Accumulated cost of one named kernel (keyed by its full span path).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Dispatch count.
    pub calls: u64,
    /// Total wall time across all dispatches.
    pub nanos: u64,
    /// Total loop iterations (cells/edges/columns) dispatched.
    pub items: u64,
    /// Modeled DMA payload bytes attributed to this kernel (only kernels
    /// dispatched with an explicit per-item byte cost report nonzero).
    pub bytes: u64,
}

/// Accumulated cost of one span (keyed by its full path, e.g. `step/dycore`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStats {
    pub calls: u64,
    pub nanos: u64,
}

#[derive(Debug, Default)]
struct MetricsState {
    kernels: BTreeMap<String, KernelStats>,
    spans: BTreeMap<String, SpanStats>,
    counters: BTreeMap<String, u64>,
    /// The currently open span names, innermost last. Spans are opened by
    /// the (single) driver thread, so one stack suffices.
    stack: Vec<&'static str>,
}

/// The shared metrics registry. Interior-mutable: recording takes `&self`,
/// so clones of a substrate, solvers, and physics suites all accumulate into
/// the same registry concurrently.
#[derive(Debug, Default)]
pub struct Metrics {
    state: Mutex<MetricsState>,
}

/// RAII guard returned by [`Metrics::span`]; closes the span (recording its
/// wall time) on drop.
pub struct SpanGuard<'a> {
    metrics: &'a Metrics,
    started: Instant,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let nanos = self.started.elapsed().as_nanos() as u64;
        let mut st = self.metrics.state.lock().expect("metrics poisoned");
        let path = st.stack.join("/");
        let e = st.spans.entry(path).or_default();
        e.calls += 1;
        e.nanos += nanos;
        st.stack.pop();
    }
}

impl Metrics {
    /// Open a trace span; kernels dispatched while the guard lives are
    /// attributed under `<open spans>/<name>/<kernel>`. Spans nest:
    /// the guard records its own wall time on drop.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        self.state
            .lock()
            .expect("metrics poisoned")
            .stack
            .push(name);
        SpanGuard {
            metrics: self,
            started: Instant::now(),
        }
    }

    /// Record one dispatch of the named kernel under the open span path.
    pub fn record_kernel(&self, name: &'static str, nanos: u64, items: u64, bytes: u64) {
        let mut st = self.state.lock().expect("metrics poisoned");
        let key = if st.stack.is_empty() {
            name.to_string()
        } else {
            let mut k = st.stack.join("/");
            k.push('/');
            k.push_str(name);
            k
        };
        let e = st.kernels.entry(key).or_default();
        e.calls += 1;
        e.nanos += nanos;
        e.items += items;
        e.bytes += bytes;
    }

    /// Add `delta` to the named counter (created at zero on first use).
    pub fn counter_add(&self, name: &str, delta: u64) {
        if delta == 0 {
            return;
        }
        let mut st = self.state.lock().expect("metrics poisoned");
        match st.counters.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                st.counters.insert(name.to_string(), delta);
            }
        }
    }

    /// Current value of a counter (0 if never recorded).
    pub fn counter(&self, name: &str) -> u64 {
        self.state
            .lock()
            .expect("metrics poisoned")
            .counters
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Fold an [`omnicopy`](crate::omnicopy::omnicopy) statistics block into
    /// the DMA counters.
    pub fn absorb_copy_stats(&self, stats: &CopyStats) {
        self.counter_add(
            "dma.transactions",
            stats.dma_transfers.load(Ordering::Relaxed),
        );
        self.counter_add("dma.bytes", stats.dma_bytes.load(Ordering::Relaxed));
        self.counter_add(
            "ldm.local_copies",
            stats.local_copies.load(Ordering::Relaxed),
        );
        self.counter_add("ldm.local_bytes", stats.local_bytes.load(Ordering::Relaxed));
    }

    /// Freeze every kernel, span, and counter into a snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let st = self.state.lock().expect("metrics poisoned");
        MetricsSnapshot {
            kernels: st.kernels.clone(),
            spans: st.spans.clone(),
            counters: st.counters.clone(),
        }
    }

    /// Per-kernel stats only (the legacy profiler view).
    pub fn kernel_snapshot(&self) -> Vec<(String, KernelStats)> {
        self.state
            .lock()
            .expect("metrics poisoned")
            .kernels
            .iter()
            .map(|(n, &s)| (n.clone(), s))
            .collect()
    }

    /// Clear all kernels, spans, and counters (open spans stay open: the
    /// stack is preserved so guards still pop correctly).
    pub fn reset(&self) {
        let mut st = self.state.lock().expect("metrics poisoned");
        st.kernels.clear();
        st.spans.clear();
        st.counters.clear();
    }
}

/// An immutable copy of the registry, serializable to/from JSON.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub kernels: BTreeMap<String, KernelStats>,
    pub spans: BTreeMap<String, SpanStats>,
    pub counters: BTreeMap<String, u64>,
}

impl MetricsSnapshot {
    /// As a JSON value with `kernels`/`spans`/`counters` objects (stable,
    /// sorted key order — BTreeMap iteration).
    pub fn to_json_value(&self) -> Json {
        let kernels = self
            .kernels
            .iter()
            .map(|(name, s)| {
                (
                    name.clone(),
                    Json::Obj(vec![
                        ("calls".into(), Json::Num(s.calls as f64)),
                        ("nanos".into(), Json::Num(s.nanos as f64)),
                        ("items".into(), Json::Num(s.items as f64)),
                        ("bytes".into(), Json::Num(s.bytes as f64)),
                    ]),
                )
            })
            .collect();
        let spans = self
            .spans
            .iter()
            .map(|(name, s)| {
                (
                    name.clone(),
                    Json::Obj(vec![
                        ("calls".into(), Json::Num(s.calls as f64)),
                        ("nanos".into(), Json::Num(s.nanos as f64)),
                    ]),
                )
            })
            .collect();
        let counters = self
            .counters
            .iter()
            .map(|(name, &v)| (name.clone(), Json::Num(v as f64)))
            .collect();
        Json::Obj(vec![
            ("kernels".into(), Json::Obj(kernels)),
            ("spans".into(), Json::Obj(spans)),
            ("counters".into(), Json::Obj(counters)),
        ])
    }

    /// Pretty JSON document.
    pub fn to_json(&self) -> String {
        self.to_json_value().pretty()
    }

    /// Rebuild from a JSON value of the [`Self::to_json_value`] shape.
    /// Missing sections are treated as empty; malformed entries are errors.
    pub fn from_json_value(v: &Json) -> Result<Self, String> {
        let mut snap = MetricsSnapshot::default();
        if let Some(fields) = v.get("kernels").and_then(Json::as_obj) {
            for (name, entry) in fields {
                let get = |k: &str| -> Result<u64, String> {
                    entry
                        .get(k)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("kernel {name:?}: bad or missing field {k:?}"))
                };
                snap.kernels.insert(
                    name.clone(),
                    KernelStats {
                        calls: get("calls")?,
                        nanos: get("nanos")?,
                        items: get("items")?,
                        bytes: get("bytes")?,
                    },
                );
            }
        }
        if let Some(fields) = v.get("spans").and_then(Json::as_obj) {
            for (name, entry) in fields {
                let get = |k: &str| -> Result<u64, String> {
                    entry
                        .get(k)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("span {name:?}: bad or missing field {k:?}"))
                };
                snap.spans.insert(
                    name.clone(),
                    SpanStats {
                        calls: get("calls")?,
                        nanos: get("nanos")?,
                    },
                );
            }
        }
        if let Some(fields) = v.get("counters").and_then(Json::as_obj) {
            for (name, entry) in fields {
                let v = entry
                    .as_u64()
                    .ok_or_else(|| format!("counter {name:?}: not a non-negative integer"))?;
                snap.counters.insert(name.clone(), v);
            }
        }
        Ok(snap)
    }

    /// Parse a JSON document produced by [`Self::to_json`].
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        Self::from_json_value(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_nest_under_open_spans() {
        let m = Metrics::default();
        m.record_kernel("bare", 10, 1, 0);
        {
            let _step = m.span("step");
            {
                let _dy = m.span("dycore");
                m.record_kernel("flux", 5, 100, 800);
                m.record_kernel("flux", 7, 100, 800);
            }
            m.record_kernel("exchange", 3, 1, 0);
        }
        let snap = m.snapshot();
        assert_eq!(snap.kernels["bare"].calls, 1);
        let flux = &snap.kernels["step/dycore/flux"];
        assert_eq!(
            (flux.calls, flux.nanos, flux.items, flux.bytes),
            (2, 12, 200, 1600)
        );
        assert_eq!(snap.kernels["step/exchange"].calls, 1);
        // Both spans closed and recorded their own wall time.
        assert_eq!(snap.spans["step"].calls, 1);
        assert_eq!(snap.spans["step/dycore"].calls, 1);
        assert!(snap.spans["step"].nanos >= snap.spans["step/dycore"].nanos);
    }

    #[test]
    fn counters_accumulate_and_reset() {
        let m = Metrics::default();
        m.counter_add("dma.bytes", 100);
        m.counter_add("dma.bytes", 28);
        m.counter_add("halo.messages", 3);
        m.counter_add("never.incremented", 0); // no-op: not materialized
        assert_eq!(m.counter("dma.bytes"), 128);
        assert_eq!(m.counter("absent"), 0);
        let snap = m.snapshot();
        assert_eq!(snap.counters.len(), 2);
        m.reset();
        assert_eq!(m.counter("dma.bytes"), 0);
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn snapshot_json_round_trips_exactly() {
        let m = Metrics::default();
        {
            let _s = m.span("step");
            m.record_kernel("k1", 123_456_789, 42, 7);
        }
        m.record_kernel("k2", 1, 1, 0);
        m.counter_add("ldcache.misses", 987_654_321);
        let snap = m.snapshot();
        let text = snap.to_json();
        let back = MetricsSnapshot::from_json(&text).expect("parse back");
        assert_eq!(back, snap);
    }

    #[test]
    fn from_json_rejects_malformed_entries() {
        assert!(MetricsSnapshot::from_json("{").is_err());
        let bad = r#"{"kernels": {"k": {"calls": -1, "nanos": 0, "items": 0, "bytes": 0}}}"#;
        let e = MetricsSnapshot::from_json(bad).unwrap_err();
        assert!(e.contains("calls"), "{e}");
        let missing = r#"{"counters": {"c": "not a number"}}"#;
        assert!(MetricsSnapshot::from_json(missing).is_err());
        // Missing sections are fine.
        assert_eq!(
            MetricsSnapshot::from_json("{}").unwrap(),
            MetricsSnapshot::default()
        );
    }

    #[test]
    fn absorb_copy_stats_maps_to_dma_counters() {
        use std::sync::atomic::Ordering;
        let stats = CopyStats::default();
        stats.dma_transfers.store(4, Ordering::Relaxed);
        stats.dma_bytes.store(4096, Ordering::Relaxed);
        stats.local_copies.store(2, Ordering::Relaxed);
        stats.local_bytes.store(64, Ordering::Relaxed);
        let m = Metrics::default();
        m.absorb_copy_stats(&stats);
        assert_eq!(m.counter("dma.transactions"), 4);
        assert_eq!(m.counter("dma.bytes"), 4096);
        assert_eq!(m.counter("ldm.local_copies"), 2);
        assert_eq!(m.counter("ldm.local_bytes"), 64);
    }
}
