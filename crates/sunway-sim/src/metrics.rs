//! The unified observability registry: hierarchical trace spans, per-kernel
//! wall-time/call accounting, and named hardware-model counters — the
//! measurement spine behind the paper's evaluation (Figs. 9–11 all depend on
//! per-kernel and per-exchange attribution).
//!
//! One [`Metrics`] is shared by every clone of a
//! [`Substrate`](crate::substrate::Substrate): the model driver opens spans
//! (`step` → `dycore`/`physics`/`ml`), every named kernel dispatch records
//! under the currently open span path, and the hardware simulators
//! ([`dma`](crate::dma), [`ldcache`](crate::ldcache),
//! [`distributor`](crate::distributor), `omnicopy`, and the halo exchange in
//! `grist-runtime`) feed counters like `dma.bytes`, `ldcache.misses`, and
//! `halo.messages`. [`MetricsSnapshot`] freezes the whole registry and
//! round-trips through JSON for the `BENCH_*.json` baselines checked by
//! `bench_compare`.

use crate::json::Json;
use crate::omnicopy::CopyStats;
use crate::trace::{self, EventKind, Tracer};
use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Accumulated cost of one named kernel (keyed by its full span path).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Dispatch count.
    pub calls: u64,
    /// Total wall time across all dispatches.
    pub nanos: u64,
    /// Total loop iterations (cells/edges/columns) dispatched.
    pub items: u64,
    /// Modeled DMA payload bytes attributed to this kernel (only kernels
    /// dispatched with an explicit per-item byte cost report nonzero).
    pub bytes: u64,
}

/// Accumulated cost of one span (keyed by its full path, e.g. `step/dycore`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStats {
    pub calls: u64,
    pub nanos: u64,
}

#[derive(Debug, Default)]
struct MetricsState {
    kernels: BTreeMap<String, KernelStats>,
    spans: BTreeMap<String, SpanStats>,
    counters: BTreeMap<String, u64>,
    /// Named `f64` gauges, stored as IEEE-754 bit patterns so non-finite
    /// values (an empty latency window's NaN percentile, an infinite rate)
    /// compare and round-trip exactly. See [`Metrics::gauge_set`].
    gauges: BTreeMap<String, u64>,
    /// Currently open span names, innermost last, keyed by the opening
    /// thread's [`trace::thread_lane`]: in a shared-registry multi-rank run
    /// each driver thread keeps its own stack, so concurrent spans cannot
    /// corrupt each other's kernel paths.
    stacks: BTreeMap<u32, Vec<&'static str>>,
}

#[derive(Debug, Default)]
struct MetricsInner {
    state: Mutex<MetricsState>,
    trace: Tracer,
}

/// The shared metrics registry. Interior-mutable and cheaply cloneable:
/// recording takes `&self`, clones share one registry (`Arc` inside), so a
/// substrate's clones, solvers, physics suites — and, via
/// [`Substrate::serial_with_metrics`](crate::substrate::Substrate::serial_with_metrics),
/// whole rank worlds — all accumulate into the same registry concurrently.
#[derive(Debug, Default, Clone)]
pub struct Metrics {
    inner: Arc<MetricsInner>,
}

/// RAII guard returned by [`Metrics::span`]; closes the span (recording its
/// wall time) on drop.
pub struct SpanGuard<'a> {
    metrics: &'a Metrics,
    lane: u32,
    started: Instant,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let nanos = self.started.elapsed().as_nanos() as u64;
        let mut st = self.metrics.inner.state.lock().expect("metrics poisoned");
        let path = st
            .stacks
            .get(&self.lane)
            .map(|s| s.join("/"))
            .unwrap_or_default();
        let e = st.spans.entry(path.clone()).or_default();
        e.calls += 1;
        e.nanos += nanos;
        if let Some(stack) = st.stacks.get_mut(&self.lane) {
            stack.pop();
        }
        drop(st);
        self.metrics
            .inner
            .trace
            .record_complete(EventKind::Span, &path, self.started, 0, 0);
    }
}

/// Counters whose ticks double as trace events: resilience-ladder state
/// transitions, mirrored as instant markers on the recording thread's lane.
fn counter_trace_kind(name: &str) -> Option<EventKind> {
    match name {
        "fault.injected" => Some(EventKind::Fault),
        "fault.retries" => Some(EventKind::Retry),
        "fault.degradations" => Some(EventKind::Degradation),
        "checkpoint.captures" => Some(EventKind::Checkpoint),
        "recovery.restores" => Some(EventKind::Restore),
        _ => None,
    }
}

impl Metrics {
    /// Open a trace span **on the calling thread**; kernels this thread
    /// dispatches while the guard lives are attributed under
    /// `<open spans>/<name>/<kernel>`. Spans nest; the guard records its own
    /// wall time on drop.
    ///
    /// # Merge semantics (pinned)
    ///
    /// Span paths are *names*, not occurrences: identically-named sibling
    /// spans under the same parent — and repeated openings of the same span,
    /// like `step` once per model step — merge into one [`SpanStats`] entry
    /// and one kernel key. That is deliberate: the registry answers "how
    /// much per kind of work", keeping keys stable across step counts so
    /// `BENCH_*.json` baselines compare run-to-run. Distinguishing
    /// *occurrences* (this `step` vs. the previous one) is the job of the
    /// [`trace`] timeline, where every span guard emits its
    /// own timestamped event.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        let lane = trace::thread_lane();
        self.inner
            .state
            .lock()
            .expect("metrics poisoned")
            .stacks
            .entry(lane)
            .or_default()
            .push(name);
        SpanGuard {
            metrics: self,
            lane,
            started: Instant::now(),
        }
    }

    /// The event tracer sharing this registry's lifetime (disabled by
    /// default; see [`trace::Tracer`]).
    pub fn tracer(&self) -> &Tracer {
        &self.inner.trace
    }

    /// The calling thread's span-qualified key for `name` (what
    /// [`Self::record_kernel`] would file under right now).
    pub fn qualified_kernel(&self, name: &str) -> String {
        let lane = trace::thread_lane();
        let st = self.inner.state.lock().expect("metrics poisoned");
        match st.stacks.get(&lane) {
            Some(stack) if !stack.is_empty() => {
                let mut k = stack.join("/");
                k.push('/');
                k.push_str(name);
                k
            }
            _ => name.to_string(),
        }
    }

    /// Record one dispatch of the named kernel under the calling thread's
    /// open span path.
    pub fn record_kernel(&self, name: &'static str, nanos: u64, items: u64, bytes: u64) {
        let lane = trace::thread_lane();
        let mut st = self.inner.state.lock().expect("metrics poisoned");
        let key = match st.stacks.get(&lane) {
            Some(stack) if !stack.is_empty() => {
                let mut k = stack.join("/");
                k.push('/');
                k.push_str(name);
                k
            }
            _ => name.to_string(),
        };
        let e = st.kernels.entry(key).or_default();
        e.calls += 1;
        e.nanos += nanos;
        e.items += items;
        e.bytes += bytes;
    }

    /// Add `delta` to the named counter (created at zero on first use).
    /// Resilience counters (`fault.*`, `checkpoint.captures`,
    /// `recovery.restores`) also emit an instant trace event when tracing
    /// is enabled.
    pub fn counter_add(&self, name: &str, delta: u64) {
        if delta == 0 {
            return;
        }
        {
            let mut st = self.inner.state.lock().expect("metrics poisoned");
            match st.counters.get_mut(name) {
                Some(v) => *v += delta,
                None => {
                    st.counters.insert(name.to_string(), delta);
                }
            }
        }
        if self.inner.trace.is_enabled() {
            if let Some(kind) = counter_trace_kind(name) {
                self.inner.trace.record_instant(kind, name, delta, 0);
            }
        }
    }

    /// Set a named `f64` gauge (last write wins — latencies, rates,
    /// percentiles; counters stay monotone, gauges are levels). Non-finite
    /// values are legal and survive snapshot/JSON round-trips bit-exactly:
    /// gauges are stored as IEEE-754 bit patterns and serialized through the
    /// JSON writer's non-finite convention (see `json` module docs).
    pub fn gauge_set(&self, name: &str, value: f64) {
        self.inner
            .state
            .lock()
            .expect("metrics poisoned")
            .gauges
            .insert(name.to_string(), value.to_bits());
    }

    /// Current value of a gauge (`None` if never set).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.inner
            .state
            .lock()
            .expect("metrics poisoned")
            .gauges
            .get(name)
            .map(|&bits| f64::from_bits(bits))
    }

    /// Current value of a counter (0 if never recorded).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner
            .state
            .lock()
            .expect("metrics poisoned")
            .counters
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Fold an [`omnicopy`](crate::omnicopy::omnicopy) statistics block into
    /// the DMA counters.
    pub fn absorb_copy_stats(&self, stats: &CopyStats) {
        self.counter_add(
            "dma.transactions",
            stats.dma_transfers.load(Ordering::Relaxed),
        );
        self.counter_add("dma.bytes", stats.dma_bytes.load(Ordering::Relaxed));
        self.counter_add(
            "ldm.local_copies",
            stats.local_copies.load(Ordering::Relaxed),
        );
        self.counter_add("ldm.local_bytes", stats.local_bytes.load(Ordering::Relaxed));
    }

    /// Freeze every kernel, span, and counter into a snapshot. Tracer ring
    /// evictions surface here as a synthetic `trace.dropped_events` counter
    /// (only when non-zero, so untraced runs keep their exact counter sets).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let trace_dropped = self.inner.trace.dropped_total();
        let st = self.inner.state.lock().expect("metrics poisoned");
        let mut counters = st.counters.clone();
        if trace_dropped > 0 {
            counters.insert("trace.dropped_events".to_string(), trace_dropped);
        }
        MetricsSnapshot {
            kernels: st.kernels.clone(),
            spans: st.spans.clone(),
            counters,
            gauges: st.gauges.clone(),
        }
    }

    /// Per-kernel stats only (the legacy profiler view).
    pub fn kernel_snapshot(&self) -> Vec<(String, KernelStats)> {
        self.inner
            .state
            .lock()
            .expect("metrics poisoned")
            .kernels
            .iter()
            .map(|(n, &s)| (n.clone(), s))
            .collect()
    }

    /// Clear all kernels, spans, and counters (open spans stay open: the
    /// per-thread stacks are preserved so guards still pop correctly).
    pub fn reset(&self) {
        let mut st = self.inner.state.lock().expect("metrics poisoned");
        st.kernels.clear();
        st.spans.clear();
        st.counters.clear();
        st.gauges.clear();
    }
}

/// An immutable copy of the registry, serializable to/from JSON.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub kernels: BTreeMap<String, KernelStats>,
    pub spans: BTreeMap<String, SpanStats>,
    pub counters: BTreeMap<String, u64>,
    /// Gauge values as IEEE-754 bit patterns (so the snapshot stays `Eq`
    /// and NaN gauges compare equal); decode with [`Self::gauge`].
    pub gauges: BTreeMap<String, u64>,
}

impl MetricsSnapshot {
    /// Decoded value of a gauge (`None` if absent).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).map(|&bits| f64::from_bits(bits))
    }

    /// As a JSON value with `kernels`/`spans`/`counters` objects (stable,
    /// sorted key order — BTreeMap iteration).
    pub fn to_json_value(&self) -> Json {
        let kernels = self
            .kernels
            .iter()
            .map(|(name, s)| {
                (
                    name.clone(),
                    Json::Obj(vec![
                        ("calls".into(), Json::Num(s.calls as f64)),
                        ("nanos".into(), Json::Num(s.nanos as f64)),
                        ("items".into(), Json::Num(s.items as f64)),
                        ("bytes".into(), Json::Num(s.bytes as f64)),
                    ]),
                )
            })
            .collect();
        let spans = self
            .spans
            .iter()
            .map(|(name, s)| {
                (
                    name.clone(),
                    Json::Obj(vec![
                        ("calls".into(), Json::Num(s.calls as f64)),
                        ("nanos".into(), Json::Num(s.nanos as f64)),
                    ]),
                )
            })
            .collect();
        let counters = self
            .counters
            .iter()
            .map(|(name, &v)| (name.clone(), Json::Num(v as f64)))
            .collect();
        let mut sections = vec![
            ("kernels".into(), Json::Obj(kernels)),
            ("spans".into(), Json::Obj(spans)),
            ("counters".into(), Json::Obj(counters)),
        ];
        // Emitted only when present so documents from gauge-free registries
        // (all the pinned baselines) keep their exact historical shape.
        if !self.gauges.is_empty() {
            let gauges = self
                .gauges
                .iter()
                .map(|(name, &bits)| (name.clone(), Json::Num(f64::from_bits(bits))))
                .collect();
            sections.push(("gauges".into(), Json::Obj(gauges)));
        }
        Json::Obj(sections)
    }

    /// Pretty JSON document.
    pub fn to_json(&self) -> String {
        self.to_json_value().pretty()
    }

    /// Rebuild from a JSON value of the [`Self::to_json_value`] shape.
    /// Missing sections are treated as empty; malformed entries and
    /// duplicate keys within a section are descriptive errors (a duplicated
    /// kernel would otherwise silently shadow the earlier stats).
    pub fn from_json_value(v: &Json) -> Result<Self, String> {
        let mut snap = MetricsSnapshot::default();
        if let Some(fields) = v.get("kernels").and_then(Json::as_obj) {
            for (name, entry) in fields {
                let get = |k: &str| -> Result<u64, String> {
                    entry
                        .get(k)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("kernel {name:?}: bad or missing field {k:?}"))
                };
                let stats = KernelStats {
                    calls: get("calls")?,
                    nanos: get("nanos")?,
                    items: get("items")?,
                    bytes: get("bytes")?,
                };
                if snap.kernels.insert(name.clone(), stats).is_some() {
                    return Err(format!("kernel {name:?}: duplicate key"));
                }
            }
        }
        if let Some(fields) = v.get("spans").and_then(Json::as_obj) {
            for (name, entry) in fields {
                let get = |k: &str| -> Result<u64, String> {
                    entry
                        .get(k)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("span {name:?}: bad or missing field {k:?}"))
                };
                let stats = SpanStats {
                    calls: get("calls")?,
                    nanos: get("nanos")?,
                };
                if snap.spans.insert(name.clone(), stats).is_some() {
                    return Err(format!("span {name:?}: duplicate key"));
                }
            }
        }
        if let Some(fields) = v.get("counters").and_then(Json::as_obj) {
            for (name, entry) in fields {
                let v = entry
                    .as_u64()
                    .ok_or_else(|| format!("counter {name:?}: not a non-negative integer"))?;
                if snap.counters.insert(name.clone(), v).is_some() {
                    return Err(format!("counter {name:?}: duplicate key"));
                }
            }
        }
        if let Some(fields) = v.get("gauges").and_then(Json::as_obj) {
            for (name, entry) in fields {
                // `as_f64` also decodes the writer's non-finite bit-pattern
                // strings, so NaN/±Inf gauges come back bit-exact.
                let x = entry
                    .as_f64()
                    .ok_or_else(|| format!("gauge {name:?}: not a number"))?;
                if snap.gauges.insert(name.clone(), x.to_bits()).is_some() {
                    return Err(format!("gauge {name:?}: duplicate key"));
                }
            }
        }
        Ok(snap)
    }

    /// Parse a JSON document produced by [`Self::to_json`].
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        Self::from_json_value(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_nest_under_open_spans() {
        let m = Metrics::default();
        m.record_kernel("bare", 10, 1, 0);
        {
            let _step = m.span("step");
            {
                let _dy = m.span("dycore");
                m.record_kernel("flux", 5, 100, 800);
                m.record_kernel("flux", 7, 100, 800);
            }
            m.record_kernel("exchange", 3, 1, 0);
        }
        let snap = m.snapshot();
        assert_eq!(snap.kernels["bare"].calls, 1);
        let flux = &snap.kernels["step/dycore/flux"];
        assert_eq!(
            (flux.calls, flux.nanos, flux.items, flux.bytes),
            (2, 12, 200, 1600)
        );
        assert_eq!(snap.kernels["step/exchange"].calls, 1);
        // Both spans closed and recorded their own wall time.
        assert_eq!(snap.spans["step"].calls, 1);
        assert_eq!(snap.spans["step/dycore"].calls, 1);
        assert!(snap.spans["step"].nanos >= snap.spans["step/dycore"].nanos);
    }

    #[test]
    fn counters_accumulate_and_reset() {
        let m = Metrics::default();
        m.counter_add("dma.bytes", 100);
        m.counter_add("dma.bytes", 28);
        m.counter_add("halo.messages", 3);
        m.counter_add("never.incremented", 0); // no-op: not materialized
        assert_eq!(m.counter("dma.bytes"), 128);
        assert_eq!(m.counter("absent"), 0);
        let snap = m.snapshot();
        assert_eq!(snap.counters.len(), 2);
        m.reset();
        assert_eq!(m.counter("dma.bytes"), 0);
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn gauges_set_read_and_reset() {
        let m = Metrics::default();
        assert_eq!(m.gauge("serve.latency.p50_ms"), None);
        m.gauge_set("serve.latency.p50_ms", 1.25);
        m.gauge_set("serve.latency.p50_ms", 2.5); // last write wins
        assert_eq!(m.gauge("serve.latency.p50_ms"), Some(2.5));
        let snap = m.snapshot();
        assert_eq!(snap.gauge("serve.latency.p50_ms"), Some(2.5));
        m.reset();
        assert_eq!(m.gauge("serve.latency.p50_ms"), None);
    }

    #[test]
    fn non_finite_gauges_round_trip_through_json_exactly() {
        // Regression for the `write_num` finiteness assert: a registry
        // holding NaN/±Inf must export and re-import without aborting, and
        // the snapshot must come back bit-identical (Eq on bit patterns).
        let m = Metrics::default();
        m.counter_add("serve.queries", 7);
        m.gauge_set("serve.latency.p50_ms", 0.75);
        m.gauge_set("serve.latency.p99_ms", f64::NAN);
        m.gauge_set("serve.qps.peak", f64::INFINITY);
        m.gauge_set("serve.qps.floor", f64::NEG_INFINITY);
        m.gauge_set("nan.payload", f64::from_bits(0x7ff8_0000_0000_cafe));
        let snap = m.snapshot();
        let text = snap.to_json(); // would panic before the fix
        let back = MetricsSnapshot::from_json(&text).expect("parse back");
        assert_eq!(back, snap);
        assert!(back.gauge("serve.latency.p99_ms").unwrap().is_nan());
        assert_eq!(back.gauge("serve.qps.peak"), Some(f64::INFINITY));
        assert_eq!(
            back.gauge("nan.payload").unwrap().to_bits(),
            0x7ff8_0000_0000_cafe
        );
    }

    #[test]
    fn gauge_free_snapshots_keep_the_historical_json_shape() {
        // The committed BENCH_*.json baselines predate gauges; a registry
        // that never sets one must serialize without a "gauges" section.
        let m = Metrics::default();
        m.counter_add("dma.bytes", 1);
        let text = m.snapshot().to_json();
        assert!(!text.contains("gauges"), "{text}");
        let dup = r#"{"gauges": {"g": 1, "g": 2}}"#;
        assert!(MetricsSnapshot::from_json(dup)
            .unwrap_err()
            .contains("duplicate"));
        let bad = r#"{"gauges": {"g": "not a number"}}"#;
        assert!(MetricsSnapshot::from_json(bad).unwrap_err().contains('g'));
    }

    #[test]
    fn snapshot_json_round_trips_exactly() {
        let m = Metrics::default();
        {
            let _s = m.span("step");
            m.record_kernel("k1", 123_456_789, 42, 7);
        }
        m.record_kernel("k2", 1, 1, 0);
        m.counter_add("ldcache.misses", 987_654_321);
        let snap = m.snapshot();
        let text = snap.to_json();
        let back = MetricsSnapshot::from_json(&text).expect("parse back");
        assert_eq!(back, snap);
    }

    #[test]
    fn from_json_rejects_malformed_entries() {
        assert!(MetricsSnapshot::from_json("{").is_err());
        let bad = r#"{"kernels": {"k": {"calls": -1, "nanos": 0, "items": 0, "bytes": 0}}}"#;
        let e = MetricsSnapshot::from_json(bad).unwrap_err();
        assert!(e.contains("calls"), "{e}");
        let missing = r#"{"counters": {"c": "not a number"}}"#;
        assert!(MetricsSnapshot::from_json(missing).is_err());
        // Missing sections are fine.
        assert_eq!(
            MetricsSnapshot::from_json("{}").unwrap(),
            MetricsSnapshot::default()
        );
    }

    #[test]
    fn from_json_truncated_inputs_error_descriptively_never_panic() {
        // Every prefix of a valid document must parse-fail cleanly (or, for
        // the rare prefix that is itself valid JSON, build a snapshot).
        let m = Metrics::default();
        {
            let _s = m.span("step");
            m.record_kernel("k", 42, 7, 8);
        }
        m.counter_add("dma.bytes", 9);
        let full = m.snapshot().to_json();
        for cut in 0..full.len() {
            if !full.is_char_boundary(cut) {
                continue;
            }
            let prefix = &full[..cut];
            match MetricsSnapshot::from_json(prefix) {
                Ok(_) => {} // e.g. cut == 0 is not valid, but be permissive
                Err(e) => assert!(!e.is_empty(), "error message must be descriptive"),
            }
        }
        // A structurally truncated (but syntactically valid) entry errors
        // with the offending field named.
        let cut_field = r#"{"kernels": {"k": {"calls": 1, "nanos": 2}}}"#;
        let e = MetricsSnapshot::from_json(cut_field).unwrap_err();
        assert!(e.contains("items"), "{e}");
    }

    #[test]
    fn from_json_wrong_typed_values_error_descriptively() {
        for (doc, needle) in [
            (
                r#"{"kernels": {"k": {"calls": "3", "nanos": 0, "items": 0, "bytes": 0}}}"#,
                "calls",
            ),
            (
                r#"{"kernels": {"k": {"calls": 1.5, "nanos": 0, "items": 0, "bytes": 0}}}"#,
                "calls",
            ),
            (r#"{"kernels": {"k": [1, 2, 3, 4]}}"#, "calls"),
            (r#"{"spans": {"s": {"calls": true, "nanos": 0}}}"#, "calls"),
            (r#"{"spans": {"s": {"calls": 1, "nanos": null}}}"#, "nanos"),
            (r#"{"counters": {"c": -4}}"#, "non-negative"),
            (r#"{"counters": {"c": {}}}"#, "non-negative"),
        ] {
            let e = MetricsSnapshot::from_json(doc).unwrap_err();
            assert!(
                e.contains(needle),
                "doc {doc}: error {e:?} lacks {needle:?}"
            );
        }
    }

    #[test]
    fn from_json_duplicate_keys_are_rejected_not_last_wins() {
        let dup_kernel = r#"{"kernels": {
            "k": {"calls": 1, "nanos": 1, "items": 1, "bytes": 1},
            "k": {"calls": 2, "nanos": 2, "items": 2, "bytes": 2}}}"#;
        let e = MetricsSnapshot::from_json(dup_kernel).unwrap_err();
        assert!(e.contains("duplicate") && e.contains('k'), "{e}");
        let dup_span =
            r#"{"spans": {"s": {"calls": 1, "nanos": 1}, "s": {"calls": 1, "nanos": 1}}}"#;
        assert!(MetricsSnapshot::from_json(dup_span)
            .unwrap_err()
            .contains("duplicate"));
        let dup_counter = r#"{"counters": {"c": 1, "c": 2}}"#;
        assert!(MetricsSnapshot::from_json(dup_counter)
            .unwrap_err()
            .contains("duplicate"));
    }

    #[test]
    fn sibling_spans_with_one_name_merge_by_contract() {
        // The pinned merge semantics (see `Metrics::span` docs): same-named
        // sibling spans — and re-opened spans — share one key; occurrence
        // identity lives in the trace timeline instead.
        let m = Metrics::default();
        m.tracer().enable();
        {
            let _step = m.span("step");
            {
                let _a = m.span("physics");
                m.record_kernel("work", 5, 1, 0);
            }
            {
                let _b = m.span("physics"); // identically-named sibling
                m.record_kernel("work", 7, 1, 0);
            }
        }
        let snap = m.snapshot();
        assert_eq!(snap.spans["step/physics"].calls, 2, "siblings merge");
        let w = &snap.kernels["step/physics/work"];
        assert_eq!((w.calls, w.nanos), (2, 12), "one merged kernel key");
        // ...but the trace distinguishes the two occurrences in time.
        let tr = m.tracer().snapshot();
        let phys: Vec<_> = tr
            .lanes
            .iter()
            .flat_map(|l| &l.events)
            .filter(|e| e.kind == crate::trace::EventKind::Span && e.name == "step/physics")
            .collect();
        assert_eq!(phys.len(), 2, "two span events, one per occurrence");
        assert!(phys[0].t0_ns <= phys[1].t0_ns);
    }

    #[test]
    fn span_stacks_are_per_thread_under_a_shared_registry() {
        // Two concurrent "rank drivers" sharing one registry must not leak
        // span paths into each other's kernel keys.
        let m = Metrics::default();
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(2));
        let spawn = |name: &'static str, kernel: &'static str| {
            let m = m.clone();
            let barrier = std::sync::Arc::clone(&barrier);
            std::thread::spawn(move || {
                let _outer = m.span(name);
                barrier.wait(); // both spans open concurrently
                m.record_kernel(kernel, 1, 1, 0);
                barrier.wait();
            })
        };
        let a = spawn("alpha", "ka");
        let b = spawn("beta", "kb");
        a.join().unwrap();
        b.join().unwrap();
        let snap = m.snapshot();
        assert_eq!(snap.kernels["alpha/ka"].calls, 1);
        assert_eq!(snap.kernels["beta/kb"].calls, 1);
        assert_eq!(snap.spans["alpha"].calls, 1);
        assert_eq!(snap.spans["beta"].calls, 1);
    }

    #[test]
    fn ring_evictions_surface_as_a_dropped_events_counter() {
        let m = Metrics::default();
        // Untraced (and traced-but-unfull) registries keep their counter
        // set untouched — no synthetic zero entry.
        assert!(!m.snapshot().counters.contains_key("trace.dropped_events"));
        m.tracer().enable_with_capacity(2);
        for i in 0..6u64 {
            m.tracer()
                .record_instant(EventKind::Fault, &format!("f{i}"), 1, 0);
        }
        let snap = m.snapshot();
        assert_eq!(snap.counters.get("trace.dropped_events"), Some(&4));
        // And it rides into the JSON export next to ordinary counters.
        let json = snap.to_json_value();
        assert_eq!(
            json.get("counters")
                .and_then(|c| c.get("trace.dropped_events"))
                .and_then(Json::as_u64),
            Some(4)
        );
    }

    #[test]
    fn resilience_counters_mirror_into_trace_events() {
        use crate::trace::EventKind;
        let m = Metrics::default();
        m.counter_add("fault.injected", 1); // tracing off: counter only
        m.tracer().enable();
        m.counter_add("fault.injected", 2);
        m.counter_add("fault.retries", 1);
        m.counter_add("fault.degradations", 1);
        m.counter_add("checkpoint.captures", 1);
        m.counter_add("recovery.restores", 1);
        m.counter_add("dma.bytes", 4096); // not a resilience counter
        let snap = m.tracer().snapshot();
        assert_eq!(snap.count_kind(EventKind::Fault), 1);
        assert_eq!(snap.count_kind(EventKind::Retry), 1);
        assert_eq!(snap.count_kind(EventKind::Degradation), 1);
        assert_eq!(snap.count_kind(EventKind::Checkpoint), 1);
        assert_eq!(snap.count_kind(EventKind::Restore), 1);
        assert_eq!(snap.total_events(), 5, "dma.bytes emits no event");
        let fault = snap
            .lanes
            .iter()
            .flat_map(|l| &l.events)
            .find(|e| e.kind == EventKind::Fault)
            .unwrap();
        assert_eq!(fault.items, 2, "delta rides on the event");
        assert_eq!(m.counter("fault.injected"), 3);
    }

    #[test]
    fn qualified_kernel_matches_record_kernel_keys() {
        let m = Metrics::default();
        assert_eq!(m.qualified_kernel("bare"), "bare");
        let _s = m.span("step");
        let _d = m.span("dycore");
        assert_eq!(m.qualified_kernel("flux"), "step/dycore/flux");
    }

    #[test]
    fn absorb_copy_stats_maps_to_dma_counters() {
        use std::sync::atomic::Ordering;
        let stats = CopyStats::default();
        stats.dma_transfers.store(4, Ordering::Relaxed);
        stats.dma_bytes.store(4096, Ordering::Relaxed);
        stats.local_copies.store(2, Ordering::Relaxed);
        stats.local_bytes.store(64, Ordering::Relaxed);
        let m = Metrics::default();
        m.absorb_copy_stats(&stats);
        assert_eq!(m.counter("dma.transactions"), 4);
        assert_eq!(m.counter("dma.bytes"), 4096);
        assert_eq!(m.counter("ldm.local_copies"), 2);
        assert_eq!(m.counter("ldm.local_bytes"), 64);
    }
}
