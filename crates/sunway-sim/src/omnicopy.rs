//! `omnicopy` and the LDM scratch arena (§3.3.2): "to further utilize the
//! rest 128KB LDM, we use the device clause to enable functions to allocate
//! their stack and private variables in LDM, and implement a cross-platform
//! omnicopy function as a replacement for memcpy. This function can
//! determine whether data transfer occurs between main memory and LDM,
//! utilizing DMA automatically when feasible. On non-Sunway platforms,
//! omnicopy functions identically to memcpy."
//!
//! Here the copy is always a real `copy_from_slice`; what the Sunway side
//! adds is *accounting*: which address space each side lives in, whether the
//! transfer engages the DMA engine, and the modeled DMA time.
//!
//! [`stage_chunks`] builds the get→compute→put staging loop on top of
//! [`omnicopy`], in both scheduling modes of [`DmaMode`]: synchronous
//! (one chunk at a time) and double-buffered (two LDM slots, the get of
//! chunk *k+1* issued before the compute of chunk *k* — the overlap the
//! paper's hand-tuned kernels live on). Both modes move identical bytes in
//! identical chunks, so their [`CopyStats`] DMA counters agree exactly.

use crate::arch::SunwaySpec;
use crate::fault::{FaultPlan, FaultSite};
use crate::substrate::DmaMode;
use std::sync::atomic::{AtomicU64, Ordering};

/// Address space of a buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Space {
    /// CG shared main memory (DDR4).
    Main,
    /// Per-CPE local device memory.
    Ldm,
}

/// Transfer statistics collected by [`omnicopy`].
#[derive(Debug, Default)]
pub struct CopyStats {
    pub dma_transfers: AtomicU64,
    pub dma_bytes: AtomicU64,
    pub local_copies: AtomicU64,
    pub local_bytes: AtomicU64,
}

impl CopyStats {
    /// `(dma_transfers, dma_bytes)` as plain values — the counter pair the
    /// pipeline-parity gates compare between DMA modes.
    pub fn counts(&self) -> (u64, u64) {
        (
            self.dma_transfers.load(Ordering::Relaxed),
            self.dma_bytes.load(Ordering::Relaxed),
        )
    }

    /// Modeled total DMA time for the recorded transfers.
    pub fn dma_time(&self, spec: &SunwaySpec) -> f64 {
        let n = self.dma_transfers.load(Ordering::Relaxed) as f64;
        let b = self.dma_bytes.load(Ordering::Relaxed) as f64;
        n * spec.dma_latency + b / spec.ddr_bandwidth
    }
}

/// Copy `src` into `dst`, classifying the transfer. Cross-space transfers
/// engage the (simulated) DMA engine; same-space copies are plain memcpys.
pub fn omnicopy<T: Copy>(
    dst: &mut [T],
    dst_space: Space,
    src: &[T],
    src_space: Space,
    stats: &CopyStats,
) {
    assert_eq!(dst.len(), src.len(), "omnicopy length mismatch");
    dst.copy_from_slice(src);
    let bytes = std::mem::size_of_val(src) as u64;
    if dst_space != src_space {
        stats.dma_transfers.fetch_add(1, Ordering::Relaxed);
        stats.dma_bytes.fetch_add(bytes, Ordering::Relaxed);
    } else {
        stats.local_copies.fetch_add(1, Ordering::Relaxed);
        stats.local_bytes.fetch_add(bytes, Ordering::Relaxed);
    }
}

/// The user-managed half of a CPE's LDM: a bump arena with a hard capacity,
/// backing the "stack and private variables in LDM" usage. Exceeding the
/// budget is an explicit error — on the real chip it is a crash.
#[derive(Debug)]
pub struct LdmArena {
    capacity: usize,
    used: usize,
    high_water: usize,
}

/// Error returned when an LDM allocation exceeds the remaining budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LdmOverflow {
    pub requested: usize,
    pub available: usize,
}

impl std::fmt::Display for LdmOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "LDM overflow: requested {} bytes, {} available",
            self.requested, self.available
        )
    }
}
impl std::error::Error for LdmOverflow {}

impl LdmArena {
    /// Arena over the non-cache half of the LDM.
    pub fn new(spec: &SunwaySpec) -> Self {
        LdmArena {
            capacity: spec.ldm_bytes - spec.ldcache_bytes,
            used: 0,
            high_water: 0,
        }
    }

    pub fn with_capacity(capacity: usize) -> Self {
        LdmArena {
            capacity,
            used: 0,
            high_water: 0,
        }
    }

    /// Reserve space for `n` values of `T`; returns an owned scratch buffer
    /// (host memory standing in for LDM) charged against the budget.
    pub fn alloc<T: Copy + Default>(&mut self, n: usize) -> Result<Vec<T>, LdmOverflow> {
        let bytes = n * std::mem::size_of::<T>();
        if self.used + bytes > self.capacity {
            return Err(LdmOverflow {
                requested: bytes,
                available: self.capacity - self.used,
            });
        }
        self.used += bytes;
        self.high_water = self.high_water.max(self.used);
        Ok(vec![T::default(); n])
    }

    /// Release `n` values of `T` (stack discipline is the caller's job, as
    /// on the real hardware).
    pub fn free<T>(&mut self, n: usize) {
        self.used = self.used.saturating_sub(n * std::mem::size_of::<T>());
    }

    pub fn used(&self) -> usize {
        self.used
    }
    pub fn capacity(&self) -> usize {
        self.capacity
    }
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

/// Outcome of one [`stage_chunks`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PipelineReport {
    /// Total chunks the loop covered (staged + degraded).
    pub chunks: u64,
    /// Chunks that went through the LDM get→compute→put path.
    pub staged: u64,
    /// Gets issued *ahead* of the compute consuming them (double-buffered
    /// only; a clean double-buffered run over `n` chunks prefetches
    /// `n − 1`).
    pub prefetches: u64,
    /// Injected DMA faults observed (every attempt that fired).
    pub injected: u64,
    /// Re-issued gets after a transient fault.
    pub retries: u64,
    /// First chunk index processed on the degraded serial path, if a get
    /// fault persisted through the retry budget.
    pub degraded_at: Option<u64>,
}

/// Fault consultation for one chunk get: same retry discipline as the
/// substrate's dispatch path. `Err(())` means the fault persisted through
/// the budget and the pipeline must degrade.
fn consult_get(plan: Option<&FaultPlan>, report: &mut PipelineReport) -> Result<(), ()> {
    let Some(plan) = plan else { return Ok(()) };
    let key = plan.next_key(FaultSite::Dma);
    let mut attempt = 0u32;
    while plan.should_fail(FaultSite::Dma, key, attempt) {
        report.injected += 1;
        if attempt >= plan.max_retries() {
            return Err(());
        }
        report.retries += 1;
        attempt += 1;
    }
    Ok(())
}

/// Run `compute` over `data` in place, `chunk_len` elements at a time,
/// staging each chunk through LDM: get (Main→LDM), compute on the LDM
/// slot, put (LDM→Main).
///
/// **Scheduling.** [`DmaMode::Synchronous`] uses one LDM slot and fully
/// serializes get/compute/put per chunk. [`DmaMode::DoubleBuffered`] allocs
/// two slots and issues the get of chunk *k+1* into the idle slot before
/// computing chunk *k* (so the transfer is in flight under the compute);
/// after the last compute the final put drains the pipeline. Both modes
/// perform exactly one get and one put per chunk — byte-for-byte identical
/// [`CopyStats`] — and, since `compute` sees each chunk's bytes exactly
/// once in index order, bitwise-identical `data`.
///
/// **Faults.** If a [`FaultPlan`] is given, every chunk *get* draws one
/// [`FaultSite::Dma`] key (in chunk order — the same key sequence in both
/// modes, so a pinned key names the same chunk regardless of scheduling).
/// A fault that persists through the retry budget degrades the rest of the
/// loop to the serial path: the chunk already resident in LDM (the
/// double-buffered case) is still computed and put back — the drain — and
/// every chunk from the failed get onward is computed directly in main
/// memory, with no further DMA traffic or consultations. Results remain
/// bitwise identical; only where the work ran changes.
///
/// Errors with [`LdmOverflow`] if the slots don't fit the arena (double
/// buffering needs two, halving the largest usable `chunk_len`).
pub fn stage_chunks<T, F>(
    mode: DmaMode,
    arena: &mut LdmArena,
    chunk_len: usize,
    data: &mut [T],
    stats: &CopyStats,
    fault: Option<&FaultPlan>,
    mut compute: F,
) -> Result<PipelineReport, LdmOverflow>
where
    T: Copy + Default,
    F: FnMut(usize, &mut [T]),
{
    assert!(chunk_len > 0, "stage_chunks needs a positive chunk length");
    let n = data.len().div_ceil(chunk_len);
    let mut report = PipelineReport {
        chunks: n as u64,
        ..Default::default()
    };
    if n == 0 {
        return Ok(report);
    }
    let data_len = data.len();
    let chunk_range = move |k: usize| (k * chunk_len)..((k + 1) * chunk_len).min(data_len);

    match mode {
        DmaMode::Synchronous => {
            let mut slot: Vec<T> = arena.alloc(chunk_len)?;
            for k in 0..n {
                let rng = chunk_range(k);
                if report.degraded_at.is_none() && consult_get(fault, &mut report).is_err() {
                    report.degraded_at = Some(k as u64);
                }
                if report.degraded_at.is_some() {
                    compute(k, &mut data[rng]);
                    continue;
                }
                let len = rng.len();
                let ldm = &mut slot[..len];
                omnicopy(ldm, Space::Ldm, &data[rng.clone()], Space::Main, stats);
                compute(k, ldm);
                omnicopy(&mut data[rng], Space::Main, &slot[..len], Space::Ldm, stats);
                report.staged += 1;
            }
            arena.free::<T>(chunk_len);
        }
        DmaMode::DoubleBuffered => {
            let mut slots: [Vec<T>; 2] = [arena.alloc(chunk_len)?, arena.alloc(chunk_len)?];
            // Pipeline fill: get chunk 0.
            let mut resident = if consult_get(fault, &mut report).is_ok() {
                let rng = chunk_range(0);
                omnicopy(
                    &mut slots[0][..rng.len()],
                    Space::Ldm,
                    &data[rng],
                    Space::Main,
                    stats,
                );
                true
            } else {
                report.degraded_at = Some(0);
                false
            };
            for k in 0..n {
                if !resident {
                    // Serial path: the get for this chunk failed (or an
                    // earlier one did) — compute directly in main memory.
                    compute(k, &mut data[chunk_range(k)]);
                    continue;
                }
                // Prefetch chunk k+1 into the idle slot *before* computing
                // chunk k — the overlap point of the double buffer.
                let mut next_resident = false;
                if k + 1 < n {
                    if consult_get(fault, &mut report).is_ok() {
                        let rng = chunk_range(k + 1);
                        omnicopy(
                            &mut slots[(k + 1) % 2][..rng.len()],
                            Space::Ldm,
                            &data[rng],
                            Space::Main,
                            stats,
                        );
                        report.prefetches += 1;
                        next_resident = true;
                    } else {
                        report.degraded_at = Some(k as u64 + 1);
                    }
                }
                // Compute chunk k and drain its put — this happens even
                // when the prefetch just failed (the in-flight chunk is
                // completed cleanly, not dropped).
                let rng = chunk_range(k);
                let ldm = &mut slots[k % 2][..rng.len()];
                compute(k, ldm);
                omnicopy(
                    &mut data[rng.clone()],
                    Space::Main,
                    &slots[k % 2][..rng.len()],
                    Space::Ldm,
                    stats,
                );
                report.staged += 1;
                resident = next_resident;
            }
            arena.free::<T>(2 * chunk_len);
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_space_copy_is_dma() {
        let stats = CopyStats::default();
        let src = vec![1.0f64; 100];
        let mut dst = vec![0.0f64; 100];
        omnicopy(&mut dst, Space::Ldm, &src, Space::Main, &stats);
        assert_eq!(dst, src);
        assert_eq!(stats.dma_transfers.load(Ordering::Relaxed), 1);
        assert_eq!(stats.dma_bytes.load(Ordering::Relaxed), 800);
        assert_eq!(stats.local_copies.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn same_space_copy_is_memcpy() {
        let stats = CopyStats::default();
        let src = vec![7u32; 64];
        let mut dst = vec![0u32; 64];
        omnicopy(&mut dst, Space::Main, &src, Space::Main, &stats);
        assert_eq!(dst, src);
        assert_eq!(stats.dma_transfers.load(Ordering::Relaxed), 0);
        assert_eq!(stats.local_bytes.load(Ordering::Relaxed), 256);
    }

    #[test]
    fn dma_time_includes_latency_and_bandwidth() {
        let spec = SunwaySpec::next_gen();
        let stats = CopyStats::default();
        let src = vec![0u8; 1_000_000];
        let mut dst = vec![0u8; 1_000_000];
        omnicopy(&mut dst, Space::Ldm, &src, Space::Main, &stats);
        let t = stats.dma_time(&spec);
        assert!(t > spec.dma_latency);
        assert!(t > 1_000_000.0 / spec.ddr_bandwidth);
    }

    #[test]
    fn ldm_arena_enforces_the_128kb_budget() {
        let spec = SunwaySpec::next_gen();
        let mut arena = LdmArena::new(&spec);
        assert_eq!(arena.capacity(), 128 * 1024);
        // 16K f64 = 128 KB exactly.
        let a: Vec<f64> = arena.alloc(16 * 1024 - 8).unwrap();
        assert!(!a.is_empty());
        let err = arena.alloc::<f64>(1024).unwrap_err();
        assert!(err.available < 1024 * 8);
    }

    #[test]
    fn ldm_arena_free_returns_budget() {
        let mut arena = LdmArena::with_capacity(1024);
        let _a: Vec<f64> = arena.alloc(64).unwrap();
        assert_eq!(arena.used(), 512);
        arena.free::<f64>(64);
        assert_eq!(arena.used(), 0);
        assert_eq!(arena.high_water(), 512);
        let _b: Vec<f64> = arena.alloc(128).unwrap();
        assert_eq!(arena.used(), 1024);
    }

    /// Reference for the staged runs: the same compute applied chunkwise
    /// straight on main memory.
    fn serial_reference(chunk_len: usize, data: &mut [f32]) {
        let n = data.len().div_ceil(chunk_len);
        for k in 0..n {
            let rng = k * chunk_len..((k + 1) * chunk_len).min(data.len());
            for (i, v) in data[rng].iter_mut().enumerate() {
                *v = v.mul_add(1.5, (k * 1000 + i) as f32);
            }
        }
    }

    fn run_staged(
        mode: DmaMode,
        len: usize,
        chunk_len: usize,
    ) -> (Vec<f32>, PipelineReport, u64, u64) {
        let mut data: Vec<f32> = (0..len).map(|i| i as f32 * 0.25 - 3.0).collect();
        let mut arena = LdmArena::with_capacity(64 * 1024);
        let stats = CopyStats::default();
        let report = stage_chunks(
            mode,
            &mut arena,
            chunk_len,
            &mut data,
            &stats,
            None,
            |k, chunk| {
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = v.mul_add(1.5, (k * 1000 + i) as f32);
                }
            },
        )
        .unwrap();
        assert_eq!(arena.used(), 0, "slots must be freed");
        (
            data,
            report,
            stats.dma_transfers.load(Ordering::Relaxed),
            stats.dma_bytes.load(Ordering::Relaxed),
        )
    }

    #[test]
    fn staged_modes_are_bitwise_equal_with_identical_dma_counters() {
        // Chunk counts: 1, even, odd, non-divisible tail, single-element tail.
        for (len, chunk_len) in [(16, 16), (64, 16), (48, 16), (70, 16), (33, 16), (5, 2)] {
            let mut expect: Vec<f32> = (0..len).map(|i| i as f32 * 0.25 - 3.0).collect();
            serial_reference(chunk_len, &mut expect);
            let (d_sync, r_sync, n_sync, b_sync) = run_staged(DmaMode::Synchronous, len, chunk_len);
            let (d_db, r_db, n_db, b_db) = run_staged(DmaMode::DoubleBuffered, len, chunk_len);
            assert_eq!(d_sync, expect, "sync result ({len}/{chunk_len})");
            assert_eq!(d_db, expect, "double-buffered result ({len}/{chunk_len})");
            // DMA-counter accounting identical between modes: one get and
            // one put per chunk, same bytes.
            assert_eq!((n_sync, b_sync), (n_db, b_db), "({len}/{chunk_len})");
            let chunks = len.div_ceil(chunk_len) as u64;
            assert_eq!(n_sync, 2 * chunks);
            // get + put each move the full 4-byte payload once.
            assert_eq!(b_sync, 8 * len as u64);
            assert_eq!(r_sync.staged, chunks);
            assert_eq!(r_sync.prefetches, 0);
            assert_eq!(r_db.staged, chunks);
            assert_eq!(r_db.prefetches, chunks - 1);
            assert_eq!(r_db.degraded_at, None);
        }
    }

    #[test]
    fn staged_empty_input_is_a_noop() {
        for mode in [DmaMode::Synchronous, DmaMode::DoubleBuffered] {
            let (d, r, n, b) = run_staged(mode, 0, 16);
            assert!(d.is_empty());
            assert_eq!(r, PipelineReport::default());
            assert_eq!((n, b), (0, 0));
        }
    }

    #[test]
    fn staged_overflow_is_reported_not_panicked() {
        let mut arena = LdmArena::with_capacity(64); // 16 f32
        let mut data = vec![0.0f32; 64];
        let stats = CopyStats::default();
        // 12 f32 fits once (sync ok) but not twice (double buffering fails).
        assert!(stage_chunks(
            DmaMode::Synchronous,
            &mut arena,
            12,
            &mut data,
            &stats,
            None,
            |_, _| {}
        )
        .is_ok());
        let err = stage_chunks(
            DmaMode::DoubleBuffered,
            &mut arena,
            12,
            &mut data,
            &stats,
            None,
            |_, _| {},
        )
        .unwrap_err();
        assert_eq!(err.requested, 48);
    }

    #[test]
    fn transient_get_fault_retries_without_degrading() {
        use crate::fault::{FaultPlan, FaultSite};
        // rate = 1 would persist; use a pinned-free plan with a rate that
        // fires at least once over many keys but clears on retry sometimes.
        let plan = FaultPlan::new(42)
            .with_rate(FaultSite::Dma, 0.4)
            .with_max_retries(8);
        let mut data = vec![1.0f32; 256];
        let mut arena = LdmArena::with_capacity(4096);
        let stats = CopyStats::default();
        let report = stage_chunks(
            DmaMode::DoubleBuffered,
            &mut arena,
            16,
            &mut data,
            &stats,
            Some(&plan),
            |_, chunk| chunk.iter_mut().for_each(|v| *v += 1.0),
        )
        .unwrap();
        assert_eq!(
            report.degraded_at, None,
            "retry budget should absorb rate 0.4"
        );
        assert!(report.injected > 0, "a 0.4 rate over 16 gets should fire");
        assert_eq!(report.retries, report.injected);
        assert!(data.iter().all(|&v| v == 2.0));
    }

    #[test]
    fn persistent_get_fault_drains_in_flight_chunk_and_degrades() {
        use crate::fault::{FaultPlan, FaultSite};
        for mode in [DmaMode::Synchronous, DmaMode::DoubleBuffered] {
            // Key 3 = the get of chunk 3 in both modes (gets are key-ordered).
            let plan = FaultPlan::new(7).pin(FaultSite::Dma, 3);
            let len = 6 * 16;
            let mut data: Vec<f32> = (0..len).map(|i| i as f32).collect();
            let mut expect = data.clone();
            serial_reference(16, &mut expect);
            let mut arena = LdmArena::with_capacity(4096);
            let stats = CopyStats::default();
            let report = stage_chunks(
                mode,
                &mut arena,
                16,
                &mut data,
                &stats,
                Some(&plan),
                |k, chunk| {
                    for (i, v) in chunk.iter_mut().enumerate() {
                        *v = v.mul_add(1.5, (k * 1000 + i) as f32);
                    }
                },
            )
            .unwrap();
            // Results bitwise identical despite the degradation.
            assert_eq!(data, expect, "{mode:?}");
            assert_eq!(report.degraded_at, Some(3), "{mode:?}");
            // Chunks 0-2 staged; in double-buffered mode chunk 2 (in flight
            // when the prefetch of 3 failed) is drained, not dropped.
            assert_eq!(report.staged, 3, "{mode:?}");
            assert_eq!(report.injected, 1 + plan.max_retries() as u64);
            // Exactly the staged chunks moved through DMA: 3 gets + 3 puts.
            assert_eq!(stats.dma_transfers.load(Ordering::Relaxed), 6, "{mode:?}");
            assert_eq!(
                stats.dma_bytes.load(Ordering::Relaxed),
                2 * 3 * 16 * 4,
                "{mode:?}"
            );
            assert_eq!(arena.used(), 0);
        }
    }

    #[test]
    fn fault_on_first_get_runs_whole_loop_serially() {
        use crate::fault::{FaultPlan, FaultSite};
        for mode in [DmaMode::Synchronous, DmaMode::DoubleBuffered] {
            let plan = FaultPlan::new(1).pin(FaultSite::Dma, 0);
            let mut data = vec![1.0f32; 40];
            let mut arena = LdmArena::with_capacity(4096);
            let stats = CopyStats::default();
            let report = stage_chunks(
                mode,
                &mut arena,
                16,
                &mut data,
                &stats,
                Some(&plan),
                |_, c| c.iter_mut().for_each(|v| *v *= 2.0),
            )
            .unwrap();
            assert_eq!(report.degraded_at, Some(0), "{mode:?}");
            assert_eq!(report.staged, 0);
            assert_eq!(stats.dma_transfers.load(Ordering::Relaxed), 0);
            assert!(data.iter().all(|&v| v == 2.0));
        }
    }
}
