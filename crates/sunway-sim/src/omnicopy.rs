//! `omnicopy` and the LDM scratch arena (§3.3.2): "to further utilize the
//! rest 128KB LDM, we use the device clause to enable functions to allocate
//! their stack and private variables in LDM, and implement a cross-platform
//! omnicopy function as a replacement for memcpy. This function can
//! determine whether data transfer occurs between main memory and LDM,
//! utilizing DMA automatically when feasible. On non-Sunway platforms,
//! omnicopy functions identically to memcpy."
//!
//! Here the copy is always a real `copy_from_slice`; what the Sunway side
//! adds is *accounting*: which address space each side lives in, whether the
//! transfer engages the DMA engine, and the modeled DMA time.

use crate::arch::SunwaySpec;
use std::sync::atomic::{AtomicU64, Ordering};

/// Address space of a buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Space {
    /// CG shared main memory (DDR4).
    Main,
    /// Per-CPE local device memory.
    Ldm,
}

/// Transfer statistics collected by [`omnicopy`].
#[derive(Debug, Default)]
pub struct CopyStats {
    pub dma_transfers: AtomicU64,
    pub dma_bytes: AtomicU64,
    pub local_copies: AtomicU64,
    pub local_bytes: AtomicU64,
}

impl CopyStats {
    /// Modeled total DMA time for the recorded transfers.
    pub fn dma_time(&self, spec: &SunwaySpec) -> f64 {
        let n = self.dma_transfers.load(Ordering::Relaxed) as f64;
        let b = self.dma_bytes.load(Ordering::Relaxed) as f64;
        n * spec.dma_latency + b / spec.ddr_bandwidth
    }
}

/// Copy `src` into `dst`, classifying the transfer. Cross-space transfers
/// engage the (simulated) DMA engine; same-space copies are plain memcpys.
pub fn omnicopy<T: Copy>(
    dst: &mut [T],
    dst_space: Space,
    src: &[T],
    src_space: Space,
    stats: &CopyStats,
) {
    assert_eq!(dst.len(), src.len(), "omnicopy length mismatch");
    dst.copy_from_slice(src);
    let bytes = std::mem::size_of_val(src) as u64;
    if dst_space != src_space {
        stats.dma_transfers.fetch_add(1, Ordering::Relaxed);
        stats.dma_bytes.fetch_add(bytes, Ordering::Relaxed);
    } else {
        stats.local_copies.fetch_add(1, Ordering::Relaxed);
        stats.local_bytes.fetch_add(bytes, Ordering::Relaxed);
    }
}

/// The user-managed half of a CPE's LDM: a bump arena with a hard capacity,
/// backing the "stack and private variables in LDM" usage. Exceeding the
/// budget is an explicit error — on the real chip it is a crash.
#[derive(Debug)]
pub struct LdmArena {
    capacity: usize,
    used: usize,
    high_water: usize,
}

/// Error returned when an LDM allocation exceeds the remaining budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LdmOverflow {
    pub requested: usize,
    pub available: usize,
}

impl std::fmt::Display for LdmOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "LDM overflow: requested {} bytes, {} available",
            self.requested, self.available
        )
    }
}
impl std::error::Error for LdmOverflow {}

impl LdmArena {
    /// Arena over the non-cache half of the LDM.
    pub fn new(spec: &SunwaySpec) -> Self {
        LdmArena {
            capacity: spec.ldm_bytes - spec.ldcache_bytes,
            used: 0,
            high_water: 0,
        }
    }

    pub fn with_capacity(capacity: usize) -> Self {
        LdmArena {
            capacity,
            used: 0,
            high_water: 0,
        }
    }

    /// Reserve space for `n` values of `T`; returns an owned scratch buffer
    /// (host memory standing in for LDM) charged against the budget.
    pub fn alloc<T: Copy + Default>(&mut self, n: usize) -> Result<Vec<T>, LdmOverflow> {
        let bytes = n * std::mem::size_of::<T>();
        if self.used + bytes > self.capacity {
            return Err(LdmOverflow {
                requested: bytes,
                available: self.capacity - self.used,
            });
        }
        self.used += bytes;
        self.high_water = self.high_water.max(self.used);
        Ok(vec![T::default(); n])
    }

    /// Release `n` values of `T` (stack discipline is the caller's job, as
    /// on the real hardware).
    pub fn free<T>(&mut self, n: usize) {
        self.used = self.used.saturating_sub(n * std::mem::size_of::<T>());
    }

    pub fn used(&self) -> usize {
        self.used
    }
    pub fn capacity(&self) -> usize {
        self.capacity
    }
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_space_copy_is_dma() {
        let stats = CopyStats::default();
        let src = vec![1.0f64; 100];
        let mut dst = vec![0.0f64; 100];
        omnicopy(&mut dst, Space::Ldm, &src, Space::Main, &stats);
        assert_eq!(dst, src);
        assert_eq!(stats.dma_transfers.load(Ordering::Relaxed), 1);
        assert_eq!(stats.dma_bytes.load(Ordering::Relaxed), 800);
        assert_eq!(stats.local_copies.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn same_space_copy_is_memcpy() {
        let stats = CopyStats::default();
        let src = vec![7u32; 64];
        let mut dst = vec![0u32; 64];
        omnicopy(&mut dst, Space::Main, &src, Space::Main, &stats);
        assert_eq!(dst, src);
        assert_eq!(stats.dma_transfers.load(Ordering::Relaxed), 0);
        assert_eq!(stats.local_bytes.load(Ordering::Relaxed), 256);
    }

    #[test]
    fn dma_time_includes_latency_and_bandwidth() {
        let spec = SunwaySpec::next_gen();
        let stats = CopyStats::default();
        let src = vec![0u8; 1_000_000];
        let mut dst = vec![0u8; 1_000_000];
        omnicopy(&mut dst, Space::Ldm, &src, Space::Main, &stats);
        let t = stats.dma_time(&spec);
        assert!(t > spec.dma_latency);
        assert!(t > 1_000_000.0 / spec.ddr_bandwidth);
    }

    #[test]
    fn ldm_arena_enforces_the_128kb_budget() {
        let spec = SunwaySpec::next_gen();
        let mut arena = LdmArena::new(&spec);
        assert_eq!(arena.capacity(), 128 * 1024);
        // 16K f64 = 128 KB exactly.
        let a: Vec<f64> = arena.alloc(16 * 1024 - 8).unwrap();
        assert!(!a.is_empty());
        let err = arena.alloc::<f64>(1024).unwrap_err();
        assert!(err.available < 1024 * 8);
    }

    #[test]
    fn ldm_arena_free_returns_budget() {
        let mut arena = LdmArena::with_capacity(1024);
        let _a: Vec<f64> = arena.alloc(64).unwrap();
        assert_eq!(arena.used(), 512);
        arena.free::<f64>(64);
        assert_eq!(arena.used(), 0);
        assert_eq!(arena.high_water(), 512);
        let _b: Vec<f64> = arena.alloc(128).unwrap();
        assert_eq!(arena.used(), 1024);
    }
}
