//! Architectural constants of the modeled SW26010P processor and the
//! next-generation Sunway system (§3.3, §4.1).
//!
//! One SW26010P has 6 core groups (CGs); each CG couples one management
//! processing element (MPE) with 64 computing processing elements (CPEs) in
//! an 8×8 array — 390 cores per chip. Each CPE owns 256 KB of local device
//! memory (LDM), half of which can be configured as a 4-way set-associative
//! cache (LDCache). Each CG sees 16 GB of DDR4 at 51.2 GB/s. The full system
//! has 107,520 nodes (41,932,800 cores); 256-node supernodes hang off common
//! leaf switches in a 16:3 oversubscribed fat tree.

/// The SW26010P chip / next-gen Sunway system description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SunwaySpec {
    /// Core groups per processor.
    pub cgs_per_node: usize,
    /// CPEs per core group.
    pub cpes_per_cg: usize,
    /// Total LDM per CPE \[bytes\].
    pub ldm_bytes: usize,
    /// LDM half configured as LDCache \[bytes\].
    pub ldcache_bytes: usize,
    /// LDCache associativity (ways).
    pub ldcache_ways: usize,
    /// LDCache line size \[bytes\].
    pub ldcache_line: usize,
    /// DDR4 bandwidth per CG \[bytes/s\].
    pub ddr_bandwidth: f64,
    /// Peak f64 FLOP/s of one CPE.
    pub cpe_peak_f64: f64,
    /// Peak f64 FLOP/s of the MPE.
    pub mpe_peak_f64: f64,
    /// Relative speed of expensive ops (div/sqrt/pow/exp) in f32 vs f64 —
    /// §4.6: "the Sunway architecture generally does not exhibit higher
    /// calculation performance in single precision compared to double
    /// precision, except for division and elemental functions".
    pub f32_expensive_speedup: f64,
    /// Latency of one expensive op in units of cheap flops.
    pub expensive_latency: f64,
    /// DMA startup latency per transfer \[s\].
    pub dma_latency: f64,
    /// Total nodes in the system.
    pub nodes: usize,
    /// Nodes per supernode (one leaf switch).
    pub supernode_size: usize,
    /// Leaf uplink oversubscription (node ports : uplink ports).
    pub oversubscription: f64,
    /// Per-link network bandwidth \[bytes/s\].
    pub link_bandwidth: f64,
    /// Point-to-point message latency within a supernode \[s\].
    pub net_latency: f64,
}

impl SunwaySpec {
    /// The next-generation Sunway supercomputer as described in the paper.
    pub fn next_gen() -> Self {
        SunwaySpec {
            cgs_per_node: 6,
            cpes_per_cg: 64,
            ldm_bytes: 256 * 1024,
            ldcache_bytes: 128 * 1024,
            ldcache_ways: 4,
            ldcache_line: 256,
            ddr_bandwidth: 51.2e9,
            cpe_peak_f64: 16.0e9,
            mpe_peak_f64: 16.0e9,
            f32_expensive_speedup: 2.0,
            expensive_latency: 20.0,
            dma_latency: 1.0e-6,
            nodes: 107_520,
            supernode_size: 256,
            oversubscription: 256.0 / 48.0,
            link_bandwidth: 25.0e9,
            net_latency: 2.0e-6,
        }
    }

    /// Cores per node (MPEs + CPEs): 390 for SW26010P.
    pub fn cores_per_node(&self) -> usize {
        self.cgs_per_node * (1 + self.cpes_per_cg)
    }

    /// Total cores of the full system.
    pub fn total_cores(&self) -> usize {
        self.nodes * self.cores_per_node()
    }

    /// Total CGs (one MPI process per CG in the paper's runs).
    pub fn total_cgs(&self) -> usize {
        self.nodes * self.cgs_per_node
    }

    /// Aggregate CPE-cluster peak of one CG \[FLOP/s\].
    pub fn cg_peak_f64(&self) -> f64 {
        self.cpes_per_cg as f64 * self.cpe_peak_f64
    }

    /// Number of LDCache sets.
    pub fn ldcache_sets(&self) -> usize {
        self.ldcache_bytes / (self.ldcache_ways * self.ldcache_line)
    }

    /// Bytes covered by one cache way.
    pub fn ldcache_way_bytes(&self) -> usize {
        self.ldcache_bytes / self.ldcache_ways
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_core_counts() {
        let s = SunwaySpec::next_gen();
        assert_eq!(s.cores_per_node(), 390, "390 cores per SW26010P");
        assert_eq!(s.total_cores(), 41_932_800, "§4.1: 41,932,800 cores");
        assert_eq!(s.total_cgs(), 645_120);
        // The paper's largest run: 524,288 processes = CGs ⇒ must fit.
        assert!(s.total_cgs() > 524_288);
        // 524,288 CGs × 65 cores = 34,078,720 — the "34 million cores".
        assert_eq!(524_288 * (1 + s.cpes_per_cg), 34_078_720);
    }

    #[test]
    fn ldcache_geometry() {
        let s = SunwaySpec::next_gen();
        assert_eq!(
            s.ldcache_bytes + s.ldcache_bytes,
            s.ldm_bytes,
            "half of LDM is cache"
        );
        assert_eq!(s.ldcache_sets(), 128);
        assert_eq!(s.ldcache_way_bytes(), 32 * 1024);
    }

    #[test]
    fn network_oversubscription_is_16_to_3() {
        let s = SunwaySpec::next_gen();
        assert!((s.oversubscription - 16.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.supernode_size, 256);
    }
}
