//! # sunway-sim
//!
//! A simulated SW26010P / next-generation-Sunway substrate (§3.3, §4.1 of
//! the paper), standing in for hardware this reproduction cannot access:
//!
//! * [`arch`] — the chip/system constants (6 CGs × (1 MPE + 64 CPEs), 256 KB
//!   LDM, 51.2 GB/s DDR per CG, 107,520 nodes, 16:3 fat tree).
//! * [`ldcache`] — a 4-way set-associative LDCache simulator reproducing the
//!   Fig. 6 thrashing analysis.
//! * [`distributor`] — the memory-address-distributing pool allocator that
//!   fixes the thrashing (§3.3.3).
//! * [`swgomp`] — the SWGOMP job-server thread hierarchy (Fig. 5): MPE
//!   spawns team heads, team heads spawn team members, on real threads.
//! * [`omnicopy`](mod@omnicopy) — LDM scratch arena + DMA-aware copy (§3.3.2).
//! * [`perf`] — the roofline model behind Fig. 9 (compute-bound MPE,
//!   bandwidth-bound CPE cluster, f32 traffic halving).
//! * [`metrics`] — the unified observability registry: hierarchical trace
//!   spans, per-kernel stats, and hardware-model counters, shared by every
//!   clone of a [`substrate::Substrate`].
//! * [`json`] — the dependency-free JSON reader/writer behind the
//!   `BENCH_*.json` benchmark baselines (the workspace builds offline, so
//!   serde is unavailable).
//! * [`fault`] — seeded deterministic fault injection (stalled dispatches,
//!   corrupt DMA payloads, truncated halo messages) feeding the substrate's
//!   retry/degrade recovery ladder.
//! * [`trace`] — event-level timelines behind the aggregated registry:
//!   bounded per-thread ring buffers, Chrome/Perfetto `trace_event` export
//!   with per-rank/per-CPE lanes, and the roofline attribution report.

pub mod arch;
pub mod distributor;
pub mod dma;
pub mod fault;
pub mod json;
pub mod ldcache;
pub mod metrics;
pub mod omnicopy;
pub mod perf;
pub mod substrate;
pub mod swgomp;
pub mod trace;

pub use arch::SunwaySpec;
pub use distributor::{AllocPolicy, PoolAllocator};
pub use dma::{
    amortization_threshold, effective_bandwidth, simulate_dma_batch, simulate_dma_batch_metered,
    staged_loop_time, DmaCompletion, DmaRequest,
};
pub use fault::{FaultError, FaultPlan, FaultSite};
pub use json::{Json, JsonError};
pub use ldcache::{simulate_streams, Access, LdCache};
pub use metrics::{KernelStats, Metrics, MetricsSnapshot, SpanGuard, SpanStats};
pub use omnicopy::{
    omnicopy, stage_chunks, CopyStats, LdmArena, LdmOverflow, PipelineReport, Space,
};
pub use perf::{
    fig9_kernels, fig9_table, kernel_time, kernel_time_metered, stream_hit_ratio,
    stream_hit_ratio_metered, ExecTarget, KernelSpec, PerfModel,
};
pub use substrate::{
    format_kernel_report, kernel_report_rows, ColumnsMut, DmaMode, ExecTargetKind, KernelMode,
    KernelReportRow, Substrate,
};
pub use swgomp::{JobServer, JobStats};
pub use trace::{
    analyze, flow_scope, validate_chrome, ChromeStats, EventKind, FlowScope, RooflineInputs,
    TraceEvent, TraceReport, TraceSnapshot, Tracer,
};
