//! DMA engine model: each CPE issues asynchronous get/put descriptors
//! against the CG's shared DDR; the engine serves them with per-transfer
//! startup latency and a shared-bandwidth budget.
//!
//! `omnicopy` (§3.3.2) is the user-facing wrapper; this module answers the
//! quantitative questions behind it: how large must a transfer be to
//! amortize the descriptor cost, and how much does 64-way contention stretch
//! a batch of column loads?

use crate::arch::SunwaySpec;
use crate::substrate::DmaMode;

/// One queued DMA request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DmaRequest {
    /// Issuing CPE (0..64).
    pub cpe: usize,
    /// Transfer size \[bytes\].
    pub bytes: usize,
    /// Issue time \[s\] relative to the batch start.
    pub issue_t: f64,
}

/// Completion record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DmaCompletion {
    pub cpe: usize,
    pub finish_t: f64,
}

/// Simple fluid model of the CG DMA engine: requests are served in issue
/// order; each pays `dma_latency` startup, then streams at the DDR bandwidth
/// shared equally among all in-flight transfers. Served with an event sweep.
pub fn simulate_dma_batch(spec: &SunwaySpec, requests: &[DmaRequest]) -> Vec<DmaCompletion> {
    // Descriptor processing is serialized on the CG's DMA engine: each
    // request becomes active only after the engine has chewed through the
    // descriptors ahead of it (this is what makes many small transfers
    // latency-bound and batching profitable).
    let mut order: Vec<usize> = (0..requests.len()).collect();
    order.sort_by(|&a, &b| {
        requests[a]
            .issue_t
            .partial_cmp(&requests[b].issue_t)
            .unwrap()
    });
    let mut engine_free = 0.0f64;
    let mut reqs: Vec<(usize, f64, f64)> = Vec::with_capacity(requests.len());
    for &i in &order {
        let r = requests[i];
        let ready = r.issue_t.max(engine_free) + spec.dma_latency;
        engine_free = ready;
        reqs.push((r.cpe, ready, r.bytes as f64));
    }

    // Fluid sharing: advance time between events, draining remaining bytes
    // of active transfers at bw / n_active.
    let mut remaining: Vec<f64> = reqs.iter().map(|r| r.2).collect();
    let mut finish = vec![f64::NAN; reqs.len()];
    let mut t = reqs.first().map(|r| r.1).unwrap_or(0.0);
    let mut done = 0;
    while done < reqs.len() {
        let active: Vec<usize> = (0..reqs.len())
            .filter(|&i| finish[i].is_nan() && reqs[i].1 <= t)
            .collect();
        if active.is_empty() {
            // Jump to the next arrival.
            t = reqs
                .iter()
                .enumerate()
                .filter(|(i, _)| finish[*i].is_nan())
                .map(|(_, r)| r.1)
                .fold(f64::INFINITY, f64::min);
            continue;
        }
        let share = spec.ddr_bandwidth / active.len() as f64;
        // Time to the next event: a completion or a new arrival.
        let t_complete = active
            .iter()
            .map(|&i| remaining[i] / share)
            .fold(f64::INFINITY, f64::min);
        let t_arrival = reqs
            .iter()
            .enumerate()
            .filter(|(i, r)| finish[*i].is_nan() && r.1 > t)
            .map(|(_, r)| r.1 - t)
            .fold(f64::INFINITY, f64::min);
        let dt = t_complete.min(t_arrival);
        for &i in &active {
            remaining[i] -= share * dt;
            if remaining[i] <= 1e-9 {
                finish[i] = t + dt;
                done += 1;
            }
        }
        t += dt;
    }
    reqs.iter()
        .zip(&finish)
        .map(|(&(cpe, _, _), &finish_t)| DmaCompletion { cpe, finish_t })
        .collect()
}

/// [`simulate_dma_batch`] plus counter recording: the batch's transaction
/// and payload-byte totals land in the registry's `dma.transactions` /
/// `dma.bytes` counters before the fluid simulation runs.
pub fn simulate_dma_batch_metered(
    spec: &SunwaySpec,
    requests: &[DmaRequest],
    metrics: &crate::metrics::Metrics,
) -> Vec<DmaCompletion> {
    metrics.counter_add("dma.transactions", requests.len() as u64);
    metrics.counter_add(
        "dma.bytes",
        requests.iter().map(|r| r.bytes as u64).sum::<u64>(),
    );
    simulate_dma_batch(spec, requests)
}

/// Modeled wall time of one get→compute→put staging loop over `n_chunks`
/// chunks of `chunk_bytes` each, with `compute_s` seconds of CPE work per
/// chunk — the timing twin of `omnicopy::stage_chunks`.
///
/// One DMA engine serves gets and puts exclusively (a transfer costs
/// `dma_latency + chunk_bytes / ddr_bandwidth`); the CPE computes one chunk
/// at a time. [`DmaMode::Synchronous`] fully serializes, so the loop takes
/// `n · (2·t_dma + compute_s)` exactly. [`DmaMode::DoubleBuffered`] issues
/// the get of chunk *k+1* the moment compute of chunk *k* starts, hiding
/// transfers under compute (or compute under transfers) down to the
/// max(DMA-bound, compute-bound) floor plus fill/drain.
pub fn staged_loop_time(
    spec: &SunwaySpec,
    mode: DmaMode,
    n_chunks: usize,
    chunk_bytes: usize,
    compute_s: f64,
) -> f64 {
    let t_dma = spec.dma_latency + chunk_bytes as f64 / spec.ddr_bandwidth;
    match mode {
        DmaMode::Synchronous => n_chunks as f64 * (2.0 * t_dma + compute_s),
        DmaMode::DoubleBuffered => {
            // Exact event sweep over the two resources: the (exclusive) DMA
            // engine and the CPE. get(0) fills the pipe; for each chunk the
            // prefetch of k+1 is issued when compute(k) starts; put(k) is
            // issued when compute(k) ends; put(n−1) drains.
            if n_chunks == 0 {
                return 0.0;
            }
            let mut engine_free = t_dma; // get(0) done
            let mut get_done = t_dma; // chunk 0 resident
            let mut cpe_free = 0.0f64;
            for k in 0..n_chunks {
                let start = cpe_free.max(get_done);
                if k + 1 < n_chunks {
                    engine_free = engine_free.max(start) + t_dma;
                    get_done = engine_free;
                }
                cpe_free = start + compute_s;
                engine_free = engine_free.max(cpe_free) + t_dma;
            }
            engine_free
        }
    }
}

/// Effective bandwidth of one isolated transfer of `bytes` (amortization
/// curve: small transfers are latency-bound).
pub fn effective_bandwidth(spec: &SunwaySpec, bytes: usize) -> f64 {
    let t = spec.dma_latency + bytes as f64 / spec.ddr_bandwidth;
    bytes as f64 / t
}

/// Bytes needed to reach `frac` of the peak DDR bandwidth for one transfer.
pub fn amortization_threshold(spec: &SunwaySpec, frac: f64) -> usize {
    assert!((0.0..1.0).contains(&frac));
    // frac = B/(lat·bw + B)  ⇒  B = lat·bw·frac/(1−frac)
    (spec.dma_latency * spec.ddr_bandwidth * frac / (1.0 - frac)).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SunwaySpec {
        SunwaySpec::next_gen()
    }

    #[test]
    fn single_transfer_time_is_latency_plus_stream() {
        let s = spec();
        let reqs = [DmaRequest {
            cpe: 0,
            bytes: 1_000_000,
            issue_t: 0.0,
        }];
        let done = simulate_dma_batch(&s, &reqs);
        let expected = s.dma_latency + 1_000_000.0 / s.ddr_bandwidth;
        assert!((done[0].finish_t - expected).abs() < 1e-12);
    }

    #[test]
    fn concurrent_transfers_share_bandwidth() {
        let s = spec();
        let reqs: Vec<DmaRequest> = (0..4)
            .map(|cpe| DmaRequest {
                cpe,
                bytes: 1_000_000,
                issue_t: 0.0,
            })
            .collect();
        let done = simulate_dma_batch(&s, &reqs);
        // All four finish at ~4x the solo streaming time (plus a few
        // serialized descriptor latencies).
        let solo = 1_000_000.0 / s.ddr_bandwidth;
        let t_last = done.iter().map(|d| d.finish_t).fold(0.0, f64::max);
        assert!(
            (t_last - 4.0 * solo).abs() < 6.0 * s.dma_latency,
            "t_last {} vs 4×solo {}",
            t_last,
            4.0 * solo
        );
        // And nobody finishes before one solo streaming time.
        assert!(done.iter().all(|d| d.finish_t >= solo));
    }

    #[test]
    fn staggered_small_transfer_finishes_first() {
        let s = spec();
        let reqs = [
            DmaRequest {
                cpe: 0,
                bytes: 10_000_000,
                issue_t: 0.0,
            },
            DmaRequest {
                cpe: 1,
                bytes: 1_000,
                issue_t: 0.0,
            },
        ];
        let done = simulate_dma_batch(&s, &reqs);
        let t_small = done.iter().find(|d| d.cpe == 1).unwrap().finish_t;
        let t_big = done.iter().find(|d| d.cpe == 0).unwrap().finish_t;
        assert!(t_small < t_big);
    }

    #[test]
    fn metered_batch_counts_transactions_and_bytes() {
        let s = spec();
        let reqs: Vec<DmaRequest> = (0..8)
            .map(|cpe| DmaRequest {
                cpe,
                bytes: 1024,
                issue_t: 0.0,
            })
            .collect();
        let m = crate::metrics::Metrics::default();
        let done = simulate_dma_batch_metered(&s, &reqs, &m);
        assert_eq!(done.len(), 8);
        assert_eq!(m.counter("dma.transactions"), 8);
        assert_eq!(m.counter("dma.bytes"), 8 * 1024);
    }

    #[test]
    fn tiny_transfers_are_latency_bound() {
        let s = spec();
        // A 64-byte transfer reaches only a tiny fraction of peak.
        let eff = effective_bandwidth(&s, 64);
        assert!(eff < 0.01 * s.ddr_bandwidth, "eff = {eff}");
        // A multi-MB transfer approaches peak.
        let eff = effective_bandwidth(&s, 8 << 20);
        assert!(eff > 0.9 * s.ddr_bandwidth);
    }

    #[test]
    fn amortization_threshold_matches_effective_bandwidth() {
        let s = spec();
        for frac in [0.5, 0.9, 0.99] {
            let b = amortization_threshold(&s, frac);
            let eff = effective_bandwidth(&s, b);
            assert!(
                (eff / s.ddr_bandwidth - frac).abs() < 0.01,
                "frac {frac}: eff ratio {}",
                eff / s.ddr_bandwidth
            );
        }
        // The 90% point is ~hundreds of KB — why omnicopy batches whole
        // column blocks rather than single levels.
        let b90 = amortization_threshold(&s, 0.9);
        assert!(
            (100_000..2_000_000).contains(&b90),
            "90% threshold {b90} bytes"
        );
    }

    #[test]
    fn double_buffering_never_loses_and_hides_transfers() {
        let s = spec();
        let chunk = 48 * 1024;
        let t_dma = s.dma_latency + chunk as f64 / s.ddr_bandwidth;
        for &n in &[0usize, 1, 2, 7, 32] {
            for &compute in &[0.1 * t_dma, t_dma, 10.0 * t_dma] {
                let sync = staged_loop_time(&s, DmaMode::Synchronous, n, chunk, compute);
                let db = staged_loop_time(&s, DmaMode::DoubleBuffered, n, chunk, compute);
                assert!((sync - n as f64 * (2.0 * t_dma + compute)).abs() < 1e-12);
                assert!(db <= sync + 1e-12, "n={n} compute={compute}: {db} > {sync}");
                // Both resources are lower bounds.
                if n > 0 {
                    assert!(db + 1e-12 >= n as f64 * compute);
                    assert!(db + 1e-12 >= 2.0 * n as f64 * t_dma);
                }
            }
        }
    }

    #[test]
    fn compute_bound_loop_hides_all_but_fill_and_drain() {
        let s = spec();
        let chunk = 48 * 1024;
        let t_dma = s.dma_latency + chunk as f64 / s.ddr_bandwidth;
        let compute = 20.0 * t_dma;
        let n = 16;
        let db = staged_loop_time(&s, DmaMode::DoubleBuffered, n, chunk, compute);
        // All gets/puts except the fill get and the drain put overlap compute.
        let ideal = t_dma + n as f64 * compute + t_dma;
        assert!((db - ideal).abs() < 1e-9, "db {db} vs ideal {ideal}");
        // vs sync: saves ~2(n−1) transfers.
        let sync = staged_loop_time(&s, DmaMode::Synchronous, n, chunk, compute);
        assert!((sync - db - 2.0 * (n as f64 - 1.0) * t_dma).abs() < 1e-9);
    }

    #[test]
    fn dma_bound_loop_is_pinned_to_the_engine() {
        let s = spec();
        let chunk = 256 * 1024;
        let t_dma = s.dma_latency + chunk as f64 / s.ddr_bandwidth;
        let compute = 0.01 * t_dma;
        let n = 16;
        let db = staged_loop_time(&s, DmaMode::DoubleBuffered, n, chunk, compute);
        // The engine serves 2n transfers back to back; compute slips into
        // the gaps except for the very last chunk's compute.
        assert!(db >= 2.0 * n as f64 * t_dma);
        assert!(db <= 2.0 * n as f64 * t_dma + n as f64 * compute + 1e-9);
    }

    #[test]
    fn batch_of_64_column_loads_is_bandwidth_not_latency_dominated() {
        let s = spec();
        // 64 CPEs each pull a 30-level × 10-var f32 column block (1.2 KB)…
        let small: Vec<DmaRequest> = (0..64)
            .map(|cpe| DmaRequest {
                cpe,
                bytes: 1200,
                issue_t: 0.0,
            })
            .collect();
        let t_small = simulate_dma_batch(&s, &small)
            .iter()
            .map(|d| d.finish_t)
            .fold(0.0, f64::max);
        // …vs each pulling a 192 KB chunk (the omnicopy batching strategy).
        let big: Vec<DmaRequest> = (0..64)
            .map(|cpe| DmaRequest {
                cpe,
                bytes: 192 * 1024,
                issue_t: 0.0,
            })
            .collect();
        let t_big = simulate_dma_batch(&s, &big)
            .iter()
            .map(|d| d.finish_t)
            .fold(0.0, f64::max);
        let bytes_small = 64.0 * 1200.0;
        let bytes_big = 64.0 * 192.0 * 1024.0;
        let eff_small = bytes_small / t_small;
        let eff_big = bytes_big / t_big;
        assert!(
            eff_big > 10.0 * eff_small,
            "batching must pay: {eff_small:.2e} vs {eff_big:.2e} B/s"
        );
    }
}
